// Container tooling walkthrough: the paper's §III-D story — working with
// PLFS containers using ordinary file idioms, no FUSE mount needed.
//
// Drives the core::Router directly (the same code path the LD_PRELOAD shim
// uses), showing open/write/stat/rename/grep-style scanning/flatten/unlink
// on a container as if it were a plain file.
//
//   $ ./examples/container_tools [DIR]
#include <fcntl.h>
#include <sys/stat.h>

#include <cstdio>
#include <string>

#include "core/mounts.hpp"
#include "core/router.hpp"
#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"

using namespace ldplfs;

int main(int argc, char** argv) {
  const std::string dir = argc > 1 ? argv[1] : "/tmp/ldplfs_tools_demo";
  (void)posix::remove_tree(dir);
  if (!posix::make_dirs(dir)) return 1;

  core::MountTable mounts;
  mounts.add(dir);
  core::Router router(core::libc_calls(), mounts);

  // 1. Plain POSIX-looking code, PLFS container underneath.
  const std::string log = dir + "/app.log";
  int fd = router.open(log.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  for (int i = 0; i < 100; ++i) {
    char line[64];
    const int len = std::snprintf(line, sizeof line,
                                  "step %03d status=%s\n", i,
                                  i % 7 == 0 ? "CHECKPOINT" : "running");
    router.write(fd, line, static_cast<size_t>(len));
  }
  router.close(fd);
  std::printf("wrote %s (container: %s)\n", log.c_str(),
              plfs::is_container(log) ? "yes" : "no");

  // 2. stat sees a regular file with the logical size.
  struct ::stat st{};
  router.stat(log.c_str(), &st);
  std::printf("stat: regular=%d size=%lld\n", S_ISREG(st.st_mode),
              static_cast<long long>(st.st_size));

  // 3. grep-style scan through the router.
  fd = router.open(log.c_str(), O_RDONLY, 0);
  char buf[8192];
  ssize_t n;
  std::string content;
  while ((n = router.read(fd, buf, sizeof buf)) > 0) {
    content.append(buf, static_cast<size_t>(n));
  }
  router.close(fd);
  int checkpoints = 0;
  for (std::size_t pos = 0;
       (pos = content.find("CHECKPOINT", pos)) != std::string::npos; ++pos) {
    ++checkpoints;
  }
  std::printf("grep CHECKPOINT: %d matches\n", checkpoints);

  // 4. Rename within the mount, flatten the index, inspect.
  const std::string archived = dir + "/app.archived.log";
  router.rename(log.c_str(), archived.c_str());
  plfs::plfs_flatten(archived);
  auto index_droppings = plfs::find_index_droppings(archived);
  std::printf("after rename+flatten: %zu index dropping(s)\n",
              index_droppings.value().size());

  // 5. unlink removes the whole container.
  router.unlink(archived.c_str());
  std::printf("after unlink, exists: %s\n",
              posix::exists(archived) ? "yes" : "no");

  (void)posix::remove_tree(dir);
  std::printf("ok\n");
  return 0;
}
