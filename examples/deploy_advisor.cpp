// Deploy advisor: "should my machine deploy PLFS for this workload?" —
// answered from the closed-form model, no simulation, no benchmarking
// (the paper's §V-A vision of highlighting systems where PLFS helps or
// hurts before anyone rebuilds an MPI stack).
//
//   $ ./examples/deploy_advisor [--machine sierra|minerva]
//         [--nodes N] [--ppn P] [--mb-per-rank M] [--phases K]
//         [--compute-gap SECONDS]
//
// Prints the predicted bandwidth for plain MPI-IO and for PLFS (via LDPLFS),
// the binding regime, and a recommendation.
#include <cstdio>
#include <cstring>
#include <string>

#include "simfs/analytic.hpp"
#include "simfs/presets.hpp"

using namespace ldplfs::simfs;

namespace {

const char* arg_value(int argc, char** argv, const char* flag,
                      const char* fallback) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], flag) == 0) return argv[i + 1];
  }
  return fallback;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string machine = arg_value(argc, argv, "--machine", "sierra");
  const ClusterConfig config = machine == "minerva" ? minerva() : sierra();

  WorkloadShape shape;
  shape.nodes =
      static_cast<std::uint32_t>(std::atoi(arg_value(argc, argv, "--nodes", "64")));
  shape.ppn =
      static_cast<std::uint32_t>(std::atoi(arg_value(argc, argv, "--ppn", "12")));
  const double mb_per_rank =
      std::atof(arg_value(argc, argv, "--mb-per-rank", "205"));
  shape.phases = static_cast<std::uint32_t>(
      std::atoi(arg_value(argc, argv, "--phases", "24")));
  shape.bytes_per_rank_per_phase = static_cast<std::uint64_t>(
      mb_per_rank * 1e6 / shape.phases);
  shape.compute_between_phases_s =
      std::atof(arg_value(argc, argv, "--compute-gap", "0.02"));
  shape.independent_writers = true;

  const auto plfs = predict_plfs(config, shape);
  const auto ufs = predict_mpiio(config, shape);
  const double speedup = plfs_speedup(config, shape);

  std::printf("machine:   %s (%u I/O servers, %s metadata)\n",
              config.name.c_str(), config.io_servers,
              config.dedicated_mds ? "dedicated MDS" : "distributed");
  std::printf("workload:  %u nodes x %u ppn, %.0f MB/rank over %u phases\n\n",
              shape.nodes, shape.ppn, mb_per_rank, shape.phases);
  std::printf("  plain MPI-IO : %8.0f MB/s  (%s regime)\n",
              ufs.bandwidth_mbps, regime_name(ufs.regime));
  std::printf("  PLFS/LDPLFS  : %8.0f MB/s  (%s regime, %.1fs metadata)\n\n",
              plfs.bandwidth_mbps, regime_name(plfs.regime),
              plfs.meta_time_s);

  if (speedup > 1.25) {
    std::printf("RECOMMEND: deploy LDPLFS — predicted %.1fx speedup.\n",
                speedup);
  } else if (speedup < 0.8) {
    std::printf(
        "AVOID: PLFS predicted to HURT here (%.2fx) — the file-per-process\n"
        "explosion outweighs its wins at this scale (the paper's Fig. 5\n"
        "regime). Consider aggregated writers or a burst buffer.\n",
        speedup);
  } else {
    std::printf("NEUTRAL: predicted %.2fx — benchmark before deciding.\n",
                speedup);
  }
  return 0;
}
