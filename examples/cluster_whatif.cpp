// What-if study with the cluster simulator — the paper's future-work wish
// (§V-A): "assess the benefits of PLFS on future I/O backplanes without
// requiring extensive benchmarking".
//
// Takes the Sierra model and asks: at 3,072 cores of FLASH-IO (the Fig. 5
// collapse point), what would it take for PLFS to win again? Sweeps three
// remedies: a faster MDS, a thrash-resistant backend, and fewer droppings
// (aggregated writers).
//
//   $ ./examples/cluster_whatif
#include <cstdio>

#include "mpi/topology.hpp"
#include "simfs/presets.hpp"
#include "workloads/flash_io.hpp"

using namespace ldplfs;

namespace {

double plfs_mbps(const simfs::ClusterConfig& cfg, bool aggregate) {
  const mpi::Topology topo{256, 12};  // 3,072 cores
  simfs::ClusterModel cluster(cfg);
  mpiio::DriverOptions options;
  options.route = mpiio::Route::kLdplfs;
  options.collective_buffering = aggregate;
  mpiio::IoDriver driver(cluster, topo, options);
  workloads::FlashIoParams params;
  const std::uint64_t per_var = params.per_rank_bytes / params.num_variables;
  driver.open(true);
  for (std::uint32_t v = 0; v < params.num_variables; ++v) {
    if (v != 0) driver.compute(params.compute_between_vars_s);
    if (aggregate) {
      driver.write_collective(per_var, v);
    } else {
      driver.write_independent(per_var, v);
    }
  }
  driver.close();
  return driver.stats().write_bandwidth_mbps();
}

}  // namespace

int main() {
  std::printf("What-if: FLASH-IO at 3,072 cores on the Sierra model\n\n");

  const auto base = simfs::sierra();
  const double mpiio = workloads::run_flash_io(base, {256, 12},
                                               mpiio::Route::kMpiio, {})
                           .write_mbps;
  std::printf("%-44s %8.0f MB/s\n", "plain MPI-IO (baseline)", mpiio);
  std::printf("%-44s %8.0f MB/s   <- the Fig. 5 collapse\n",
              "PLFS as deployed", plfs_mbps(base, false));

  auto fast_mds = base;
  fast_mds.meta_op_s /= 10;
  fast_mds.mds_congestion.alpha = 0.0;
  std::printf("%-44s %8.0f MB/s\n", "PLFS + 10x MDS, no congestion",
              plfs_mbps(fast_mds, false));

  auto no_thrash = base;
  no_thrash.stream_thrash_alpha = 0.0;
  std::printf("%-44s %8.0f MB/s\n",
              "PLFS + thrash-immune backend (e.g. burst buffer)",
              plfs_mbps(no_thrash, false));

  auto both = no_thrash;
  both.meta_op_s /= 10;
  both.mds_congestion.alpha = 0.0;
  std::printf("%-44s %8.0f MB/s\n", "PLFS + both remedies",
              plfs_mbps(both, false));

  std::printf("%-44s %8.0f MB/s   <- fewer droppings\n",
              "PLFS + node-level aggregation (256 writers)",
              plfs_mbps(base, true));

  std::printf(
      "\nThe model's answer to the paper's question: the file explosion is\n"
      "the root cause — either keep the backend seek-immune or write fewer\n"
      "streams; speeding up the MDS alone does not restore the win.\n");
  return 0;
}
