// Quickstart: the PLFS API in 60 lines.
//
// Creates a container, writes through two writer streams (the n-to-n
// partitioning), reads the merged logical file back, prints the container
// internals, and cleans up.
//
//   $ ./examples/quickstart [DIR]
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <string>

#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"

using namespace ldplfs;

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/ldplfs_quickstart";
  (void)posix::remove_tree(dir);
  if (!posix::make_dirs(dir)) return 1;
  const std::string path = dir + "/hello.dat";

  // 1. Open (creates the container) and write from two "processes".
  auto fd = plfs::plfs_open(path, O_CREAT | O_RDWR, /*pid=*/100);
  if (!fd) {
    std::fprintf(stderr, "open failed: %s\n", fd.error().message().c_str());
    return 1;
  }
  const std::string a = "hello from writer A | ";
  const std::string b = "hello from writer B\n";
  plfs::plfs_write(*fd.value(),
                   {reinterpret_cast<const std::byte*>(a.data()), a.size()},
                   /*offset=*/0, /*pid=*/100);
  plfs::plfs_write(*fd.value(),
                   {reinterpret_cast<const std::byte*>(b.data()), b.size()},
                   /*offset=*/a.size(), /*pid=*/200);

  // 2. Read the merged logical file back through the same handle.
  char buf[128] = {0};
  auto n = plfs::plfs_read(*fd.value(),
                           {reinterpret_cast<std::byte*>(buf), sizeof buf - 1},
                           0);
  std::printf("logical file (%zu bytes): %s", n.value_or(0), buf);

  plfs::plfs_close(fd.value(), 100);
  plfs::plfs_close(fd.value(), 200);

  // 3. Look inside: one data + one index dropping per writer.
  auto droppings = plfs::find_data_droppings(path);
  std::printf("container %s holds %zu data droppings:\n", path.c_str(),
              droppings.value().size());
  for (const auto& d : droppings.value()) {
    std::printf("  %s\n", d.c_str());
  }

  auto attr = plfs::plfs_getattr(path);
  std::printf("plfs_getattr: size=%llu (from %s)\n",
              static_cast<unsigned long long>(attr.value().size),
              attr.value().from_hints ? "metadata hints" : "index merge");

  // 4. Clean up.
  plfs::plfs_unlink(path);
  (void)posix::remove_tree(dir);
  std::printf("ok\n");
  return 0;
}
