// Checkpoint/restart: the workload PLFS was built for (its paper is titled
// "a checkpoint filesystem for parallel applications").
//
// N worker threads stand in for MPI ranks. Each owns a strided slice of a
// shared state array and checkpoints it to ONE logical file through its own
// writer stream — n processes → 1 file for the application, n data
// droppings on disk. The restart phase reopens the container cold, reads
// every slice back, and verifies bit-exactness. A second checkpoint cycle
// overwrites in place (O_TRUNC), showing repeated checkpointing does not
// grow the container.
//
//   $ ./examples/checkpoint_restart [DIR] [WORKERS]
#include <fcntl.h>

#include <cstdio>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/md5.hpp"
#include "common/rng.hpp"
#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"

using namespace ldplfs;

namespace {

constexpr std::size_t kSliceBytes = 1u << 20;  // 1 MiB per worker per step
constexpr int kSteps = 4;                      // strided write calls

std::vector<std::byte> make_state(unsigned worker, std::uint64_t epoch,
                                  std::size_t bytes) {
  Rng rng(worker * 7919 + epoch);
  std::vector<std::byte> out(bytes);
  for (auto& byte : out) byte = static_cast<std::byte>(rng.next() & 0xFF);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string dir =
      argc > 1 ? argv[1] : "/tmp/ldplfs_checkpoint";
  const unsigned workers = argc > 2 ? std::stoul(argv[2]) : 8;
  (void)posix::remove_tree(dir);
  if (!posix::make_dirs(dir)) return 1;
  const std::string path = dir + "/checkpoint.plfs";

  for (std::uint64_t epoch = 0; epoch < 2; ++epoch) {
    // --- checkpoint: all workers write concurrently to one logical file ---
    auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY | O_TRUNC, 1);
    if (!fd) {
      std::fprintf(stderr, "open failed\n");
      return 1;
    }
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
      threads.emplace_back([&, w] {
        const auto state = make_state(w, epoch, kSliceBytes * kSteps);
        for (int step = 0; step < kSteps; ++step) {
          // Strided layout: step-major, worker-minor.
          const std::uint64_t offset =
              (static_cast<std::uint64_t>(step) * workers + w) * kSliceBytes;
          auto n = fd.value()->write(
              std::span<const std::byte>(state.data() + step * kSliceBytes,
                                         kSliceBytes),
              offset, static_cast<pid_t>(1000 + w));
          if (!n || n.value() != kSliceBytes) std::abort();
        }
      });
    }
    for (auto& t : threads) t.join();
    for (unsigned w = 0; w < workers; ++w) {
      fd.value()->close(static_cast<pid_t>(1000 + w));
    }

    // --- restart: cold open, verify every worker's slices ---
    auto rd = plfs::plfs_open(path, O_RDONLY, 2);
    if (!rd) return 1;
    bool all_ok = true;
    for (unsigned w = 0; w < workers; ++w) {
      const auto expect = make_state(w, epoch, kSliceBytes * kSteps);
      std::vector<std::byte> got(kSliceBytes);
      for (int step = 0; step < kSteps; ++step) {
        const std::uint64_t offset =
            (static_cast<std::uint64_t>(step) * workers + w) * kSliceBytes;
        auto n = rd.value()->read({got.data(), got.size()}, offset);
        if (!n || n.value() != kSliceBytes ||
            std::memcmp(got.data(), expect.data() + step * kSliceBytes,
                        kSliceBytes) != 0) {
          std::fprintf(stderr, "epoch %llu worker %u step %d: MISMATCH\n",
                       static_cast<unsigned long long>(epoch), w, step);
          all_ok = false;
        }
      }
    }
    plfs::plfs_close(rd.value(), 2);

    auto droppings = plfs::find_data_droppings(path);
    auto attr = plfs::plfs_getattr(path);
    std::printf(
        "epoch %llu: %u workers x %d steps -> logical %llu bytes in %zu "
        "droppings, restart %s\n",
        static_cast<unsigned long long>(epoch), workers, kSteps,
        static_cast<unsigned long long>(attr.value().size),
        droppings.value().size(), all_ok ? "VERIFIED" : "FAILED");
    if (!all_ok) return 1;
  }

  (void)posix::remove_tree(dir);
  std::printf("ok\n");
  return 0;
}
