// Platform presets for the two machines in the paper's Table I, plus the
// printable spec table itself.
//
// The *spec* fields are the paper's numbers verbatim. The *model* fields
// (effective server throughput, cache sizes, congestion constants) are
// calibrated so the simulator lands in the bandwidth regimes the paper
// measured — production file systems never deliver their theoretical rates,
// and the paper says so explicitly for both machines. EXPERIMENTS.md lists
// each calibrated constant next to the figure it reproduces.
#pragma once

#include <string>
#include <vector>

#include "simfs/config.hpp"

namespace ldplfs::simfs {

/// One row of Table I (printable, paper-verbatim).
struct PlatformSpec {
  std::string name;
  std::string processor;
  std::string cpu_speed;
  int cores_per_node;
  int nodes;
  std::string interconnect;
  std::string file_system;
  int io_servers;
  std::string theoretical_bandwidth;
  int data_disks;
  std::string data_disk_type;
  std::string data_disk_speed;
  std::string data_raid;
  int metadata_disks;
  std::string metadata_disk_type;
  std::string metadata_disk_speed;
  std::string metadata_raid;
};

/// Minerva: 258 nodes, GPFS, 2 I/O servers, distributed metadata.
ClusterConfig minerva();
PlatformSpec minerva_spec();

/// Sierra: 1,849 nodes, Lustre (lscratchc), 24 OSS + dedicated MDS.
ClusterConfig sierra();
PlatformSpec sierra_spec();

/// Both rows for bench/table1_platforms.
std::vector<PlatformSpec> all_platform_specs();

}  // namespace ldplfs::simfs
