#include "simfs/report.hpp"

#include <algorithm>

namespace ldplfs::simfs {

namespace {

ResourceReport::StationLine line_from(const sim::Station& station,
                                      double horizon) {
  ResourceReport::StationLine line;
  line.name = station.name();
  line.ops = station.stats().ops;
  line.busy_s = station.stats().busy_time;
  line.utilisation = station.utilisation(horizon);
  line.mean_wait_s = station.stats().mean_wait();
  line.max_queue = station.stats().max_in_system;
  return line;
}

}  // namespace

ResourceReport collect_report(const ClusterModel& cluster) {
  ResourceReport report;
  report.horizon_s = cluster.now();
  for (std::uint32_t s = 0; s < cluster.config().io_servers; ++s) {
    report.data_servers.push_back(
        line_from(cluster.data_station(s), report.horizon_s));
  }
  report.metadata = line_from(cluster.metadata_station(), report.horizon_s);
  report.cached_bytes = cluster.cached_bytes_total();
  return report;
}

void ResourceReport::print(std::FILE* out) const {
  std::fprintf(out, "resource report (horizon %.2fs)\n", horizon_s);
  std::fprintf(out, "  %-14s%10s%12s%8s%12s%10s\n", "station", "ops",
               "busy(s)", "util", "wait(ms)", "maxq");
  auto print_line = [out](const StationLine& line) {
    std::fprintf(out, "  %-14s%10llu%12.2f%7.1f%%%12.3f%10u\n",
                 line.name.c_str(),
                 static_cast<unsigned long long>(line.ops), line.busy_s,
                 100.0 * line.utilisation, 1e3 * line.mean_wait_s,
                 line.max_queue);
  };
  // Data servers are symmetric under balanced load; print first, median
  // and last to keep 24-server reports readable.
  if (data_servers.size() <= 4) {
    for (const auto& line : data_servers) print_line(line);
  } else {
    print_line(data_servers.front());
    print_line(data_servers[data_servers.size() / 2]);
    print_line(data_servers.back());
    std::fprintf(out, "  (... %zu data servers total)\n",
                 data_servers.size());
  }
  print_line(metadata);
  if (cached_bytes > 0) {
    std::fprintf(out,
                 "  cached-write path: %.2f GB drained in background "
                 "(%.0f MB/s average; not in station counters)\n",
                 static_cast<double>(cached_bytes) / 1e9,
                 horizon_s > 0
                     ? static_cast<double>(cached_bytes) / horizon_s / 1e6
                     : 0.0);
  }
  if (const auto* hot = bottleneck()) {
    std::fprintf(out, "  bottleneck: %s (%.1f%% utilised)\n",
                 hot->name.c_str(), 100.0 * hot->utilisation);
  }
}

const ResourceReport::StationLine* ResourceReport::bottleneck() const {
  const StationLine* hot = nullptr;
  for (const auto& line : data_servers) {
    if (hot == nullptr || line.utilisation > hot->utilisation) hot = &line;
  }
  if (hot == nullptr || metadata.utilisation > hot->utilisation) {
    hot = &metadata;
  }
  return hot;
}

}  // namespace ldplfs::simfs
