// ClusterModel: the simulated parallel-I/O substrate.
//
// A phase is a set of per-rank sequential op programs executed concurrently
// against shared resources:
//
//   * data servers   — one Station per I/O server (RAID array + NIC math)
//   * metadata       — one Station: dedicated single server with congestion
//                      (Lustre MDS) or distributed across the I/O servers
//                      (GPFS); this difference is the paper's Fig. 5 story
//   * extent locks   — one Station per (file, stripe): a write by a rank
//                      other than the current owner pays the lock handoff
//   * client caches  — per-node fluid write-back caches; writes to
//                      *unshared* files are absorbed at memory speed and
//                      drain in the background, which is the paper's Fig. 4
//                      write-caching effect; writes to *shared* (locked)
//                      files are synchronous, because conflicting extent
//                      locks force flush-on-conflict
//
// The model's three deliberate approximations are documented in DESIGN.md:
// fluid cache drain (no per-page events), thrash as a closed-form multiplier
// on backend efficiency, and MDS congestion as queue-length-proportional
// service inflation.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "sim/cache.hpp"
#include "sim/engine.hpp"
#include "sim/station.hpp"
#include "simfs/config.hpp"

namespace ldplfs::simfs {

enum class OpKind : std::uint8_t {
  kWrite,       // data write (cached when not locked)
  kRead,        // data read (synchronous)
  kMetaCreate,  // file/dropping create
  kMetaOpen,    // open / lookup
  kMetaStat,    // getattr / readdir-ish
  kMetaRemove,  // unlink
  kCompute,     // pure CPU delay (bytes ignored, uses cpu_s)
};

/// One operation in a rank's sequential program.
struct RankOp {
  OpKind kind = OpKind::kWrite;
  std::uint64_t bytes = 0;
  std::uint64_t file = 0;      // logical file id (lock + placement domain)
  std::uint64_t offset = 0;    // used for stripe → server placement
  bool sequential = true;      // positioning hint for the array model
  bool locked = false;         // shared-file write under extent locks
  /// Write-through: bypass the client cache and wait for the server even
  /// without a lock conflict (2012-era FUSE had no writeback cache).
  bool synchronous = false;
  /// In-place (non-log-structured) write: background drain of this stream
  /// is seek-bound, penalising the whole phase's drain rate (ablation knob).
  bool random_drain = false;
  double cpu_s = 0.0;          // added software overhead / compute time
  /// Internal bookkeeping I/O (e.g. index-dropping appends): participates
  /// in the resource model but is excluded from application byte counts.
  bool internal = false;
};

/// A rank's program for one phase.
struct RankProgram {
  std::uint32_t rank = 0;
  std::uint32_t node = 0;
  std::vector<RankOp> ops;
};

/// Outcome of one phase.
struct PhaseResult {
  double duration_s = 0.0;   // wall-clock of the phase (max rank finish)
  double start_s = 0.0;      // simulation time at phase start
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t meta_ops = 0;
};

class ClusterModel {
 public:
  explicit ClusterModel(ClusterConfig config);

  /// Execute one phase; all programs start together (SPMD). Advances the
  /// simulation clock to the end of the phase.
  PhaseResult run_phase(const std::vector<RankProgram>& programs);

  /// Let simulated time pass with no I/O (application compute); client
  /// caches keep draining.
  void advance_time(double seconds);

  [[nodiscard]] double now() const { return engine_.now(); }
  [[nodiscard]] const ClusterConfig& config() const { return config_; }
  [[nodiscard]] const sim::Station& metadata_station() const { return *mds_; }
  [[nodiscard]] const sim::Station& data_station(std::uint32_t server) const {
    return *servers_.at(server);
  }
  [[nodiscard]] sim::WriteCache& node_cache(std::uint32_t node) {
    return caches_.at(node);
  }

  /// Stripe placement: which I/O server a (file, offset) lands on.
  [[nodiscard]] std::uint32_t server_for(std::uint64_t file,
                                         std::uint64_t offset) const;

  /// Reset lock ownership (fresh file epoch between experiments).
  void reset_locks();

  /// Application bytes that took the fluid cached-write path (these never
  /// appear in station counters; the backend drained them in the
  /// background).
  [[nodiscard]] std::uint64_t cached_bytes_total() const {
    return cached_bytes_total_;
  }

 private:
  struct LockDomain {
    std::unique_ptr<sim::Station> station;
    std::uint32_t owner = UINT32_MAX;
  };

  /// Schedules op `index` of `program`; chains to the next op on completion.
  void issue(const RankProgram& program, std::size_t index,
             const std::shared_ptr<std::uint32_t>& remaining,
             double drain_share_bps);

  LockDomain& lock_domain(std::uint64_t file, std::uint64_t stripe);

  /// Synchronous data-op service time at the target server (tracks the
  /// stream-switch state of that server).
  [[nodiscard]] double data_service_s(const RankOp& op, std::uint32_t server);

  ClusterConfig config_;
  sim::Engine engine_;
  std::uint64_t cached_bytes_total_ = 0;
  // First-touch round-robin object placement (Lustre-style allocator).
  mutable std::map<std::uint64_t, std::uint32_t> file_base_;
  mutable std::uint32_t next_base_ = 0;
  std::vector<std::unique_ptr<sim::Station>> servers_;
  std::unique_ptr<sim::Station> mds_;
  std::vector<sim::WriteCache> caches_;
  double phase_thrash_ = 1.0;
  std::vector<std::uint64_t> server_last_file_;
  std::map<std::pair<std::uint64_t, std::uint64_t>, LockDomain> locks_;
};

}  // namespace ldplfs::simfs
