#include "simfs/cluster.hpp"

#include <algorithm>
#include <set>

namespace ldplfs::simfs {

ClusterModel::ClusterModel(ClusterConfig config) : config_(std::move(config)) {
  servers_.reserve(config_.io_servers);
  for (std::uint32_t s = 0; s < config_.io_servers; ++s) {
    servers_.push_back(std::make_unique<sim::Station>(
        engine_, config_.name + ".oss" + std::to_string(s), 1));
  }
  if (config_.dedicated_mds) {
    mds_ = std::make_unique<sim::Station>(engine_, config_.name + ".mds", 1,
                                          config_.mds_congestion);
  } else {
    // GPFS-style: metadata handled by the data servers collectively; no
    // single choke point, no congestion collapse.
    mds_ = std::make_unique<sim::Station>(
        engine_, config_.name + ".meta",
        std::max<std::uint32_t>(config_.io_servers, 1));
  }
  server_last_file_.assign(config_.io_servers, UINT64_MAX);
  caches_.reserve(config_.nodes);
  for (std::uint32_t n = 0; n < config_.nodes; ++n) {
    caches_.emplace_back(config_.client_cache_bytes, config_.cache_absorb_bps);
  }
}

std::uint32_t ClusterModel::server_for(std::uint64_t file,
                                       std::uint64_t offset) const {
  // Lustre-style allocation: each file's first object goes to the next
  // server in round-robin order (first-touch), and its stripes continue
  // from there. Round-robin (rather than hashing the file id) keeps
  // placement fair regardless of how callers number their files.
  auto [it, inserted] = file_base_.try_emplace(
      file, static_cast<std::uint32_t>(next_base_));
  if (inserted) next_base_ = (next_base_ + 1) % config_.io_servers;
  const std::uint64_t stripe = offset / config_.stripe_bytes;
  return static_cast<std::uint32_t>((it->second + stripe) %
                                    config_.io_servers);
}

ClusterModel::LockDomain& ClusterModel::lock_domain(std::uint64_t file,
                                                    std::uint64_t stripe) {
  auto key = std::make_pair(file, stripe);
  auto it = locks_.find(key);
  if (it == locks_.end()) {
    LockDomain domain;
    domain.station = std::make_unique<sim::Station>(
        engine_, config_.name + ".lock", 1);
    it = locks_.emplace(key, std::move(domain)).first;
  }
  return it->second;
}

void ClusterModel::reset_locks() { locks_.clear(); }

double ClusterModel::data_service_s(const RankOp& op, std::uint32_t server) {
  const bool is_write = op.kind == OpKind::kWrite;
  double array_s = config_.server_array.service_s(
      op.bytes, op.sequential, is_write);
  if (is_write) array_s *= phase_thrash_;
  const double nic_s = config_.server_nic.transfer_s(op.bytes);
  // Consecutive requests from different streams cost a head/buffer switch.
  double switch_s = 0.0;
  if (server_last_file_[server] != op.file) {
    if (server_last_file_[server] != UINT64_MAX) {
      switch_s = config_.stream_switch_s;
    }
    server_last_file_[server] = op.file;
  }
  // Transfer and disk access overlap imperfectly; the slower leg dominates.
  return config_.server_op_cpu_s + switch_s + std::max(array_s, nic_s);
}

void ClusterModel::advance_time(double seconds) {
  engine_.run_until(engine_.now() + seconds);
}

PhaseResult ClusterModel::run_phase(const std::vector<RankProgram>& programs) {
  PhaseResult result;
  result.start_s = engine_.now();
  if (programs.empty()) return result;

  // --- per-phase drain-rate computation ------------------------------------
  // Concurrent write streams = distinct (rank, file) pairs doing unlocked
  // writes; they share the backend for background drain.
  std::set<std::pair<std::uint32_t, std::uint64_t>> streams;
  std::set<std::uint32_t> active_nodes;
  bool random_drain = false;
  for (const auto& program : programs) {
    active_nodes.insert(program.node);
    for (const auto& op : program.ops) {
      if (op.kind == OpKind::kWrite && !op.locked && !op.synchronous) {
        streams.insert({program.rank, op.file});
        random_drain |= op.random_drain;
      }
      if (op.kind == OpKind::kWrite && !op.internal) {
        result.bytes_written += op.bytes;
      }
      if (op.kind == OpKind::kRead && !op.internal) {
        result.bytes_read += op.bytes;
      }
      if (op.kind == OpKind::kMetaCreate || op.kind == OpKind::kMetaOpen ||
          op.kind == OpKind::kMetaStat || op.kind == OpKind::kMetaRemove) {
        ++result.meta_ops;
      }
    }
  }
  // The thrash multiplier applies to the whole backend for this phase —
  // background drain AND synchronous writes share the same spindles.
  phase_thrash_ = config_.thrash_factor(streams.size());
  double backend_bps = config_.backend_streaming_bps() / phase_thrash_;
  if (random_drain) backend_bps /= config_.random_drain_penalty;
  const double per_node_drain =
      active_nodes.empty()
          ? backend_bps
          : std::min(backend_bps / static_cast<double>(active_nodes.size()),
                     config_.client_nic.bandwidth_bps);
  for (std::uint32_t node : active_nodes) {
    caches_.at(node).set_drain_bps(per_node_drain);
    caches_.at(node).set_capacity(config_.client_cache_bytes);
    caches_.at(node).set_per_stream_cap(config_.per_stream_cache_bytes);
  }

  // --- launch all rank programs --------------------------------------------
  auto remaining = std::make_shared<std::uint32_t>(
      static_cast<std::uint32_t>(programs.size()));
  for (const auto& program : programs) {
    issue(program, 0, remaining, per_node_drain);
  }
  engine_.run();
  result.duration_s = engine_.now() - result.start_s;
  return result;
}

void ClusterModel::issue(const RankProgram& program, std::size_t index,
                         const std::shared_ptr<std::uint32_t>& remaining,
                         double drain_share_bps) {
  if (index >= program.ops.size()) {
    --*remaining;
    return;
  }
  const RankOp& op = program.ops[index];
  auto next = [this, &program, index, remaining, drain_share_bps] {
    issue(program, index + 1, remaining, drain_share_bps);
  };

  switch (op.kind) {
    case OpKind::kCompute: {
      engine_.schedule_after(op.cpu_s, std::move(next));
      return;
    }
    case OpKind::kMetaCreate:
    case OpKind::kMetaOpen:
    case OpKind::kMetaStat:
    case OpKind::kMetaRemove: {
      // Client-side software cost, then the metadata service.
      const double service = config_.meta_op_s;
      engine_.schedule_after(op.cpu_s, [this, service, next = std::move(next)] {
        mds_->submit(service, std::move(next));
      });
      return;
    }
    case OpKind::kRead: {
      const std::uint32_t server = server_for(op.file, op.offset);
      const double service = data_service_s(op, server);
      const double client_s =
          op.cpu_s + config_.client_nic.transfer_s(op.bytes);
      engine_.schedule_after(
          client_s, [this, server, service, next = std::move(next)] {
            servers_[server]->submit(service, std::move(next));
          });
      return;
    }
    case OpKind::kWrite: {
      if (op.synchronous && !op.locked) {
        // Write-through (FUSE-style): client NIC + server round trip, no
        // cache absorption, no lock.
        const std::uint32_t server = server_for(op.file, op.offset);
        const double service = data_service_s(op, server);
        const double client_s =
            op.cpu_s + config_.client_nic.transfer_s(op.bytes);
        engine_.schedule_after(
            client_s, [this, server, service, next = std::move(next)] {
              servers_[server]->submit(service, std::move(next));
            });
        return;
      }
      if (op.locked) {
        // Shared-file write: extent lock first (handoff if the owner
        // changed), then a synchronous server write under the lock.
        const std::uint64_t stripe = op.offset / config_.stripe_bytes;
        LockDomain& lock = lock_domain(op.file, stripe);
        const bool handoff = lock.owner != program.rank;
        lock.owner = program.rank;
        const double lock_s = handoff ? config_.lock_handoff_s : 1e-7;
        const std::uint32_t server = server_for(op.file, op.offset);
        const double service = data_service_s(op, server);
        const double client_s = op.cpu_s;
        engine_.schedule_after(client_s, [this, &lock, lock_s, server, service,
                                          next = std::move(next)]() mutable {
          lock.station->submit(lock_s, [this, server, service,
                                        next = std::move(next)] {
            servers_[server]->submit(service, std::move(next));
          });
        });
        return;
      }
      // Unshared write: absorbed by the node's write-back cache; the rank
      // unblocks at memcpy speed unless the cache is full (then it stalls
      // at drain speed). Fluid model — no server events.
      sim::WriteCache& cache = caches_.at(program.node);
      cached_bytes_total_ += op.bytes;
      const sim::SimTime unblock =
          cache.admit(engine_.now() + op.cpu_s, op.bytes, op.file);
      engine_.schedule_at(unblock, std::move(next));
      return;
    }
  }
}

}  // namespace ldplfs::simfs
