// Post-run resource report for the simulator: where did the time go?
//
// The paper reasons about its results in terms of which resource saturated
// (MDS, file servers, client caches); this report makes the model's answer
// to that question inspectable after any run — the simulator equivalent of
// the server-side monitoring the authors had on Minerva and Sierra.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "simfs/cluster.hpp"

namespace ldplfs::simfs {

struct ResourceReport {
  struct StationLine {
    std::string name;
    std::uint64_t ops = 0;
    double busy_s = 0.0;
    double utilisation = 0.0;   // over the run horizon
    double mean_wait_s = 0.0;
    std::uint32_t max_queue = 0;
  };

  double horizon_s = 0.0;
  std::vector<StationLine> data_servers;
  StationLine metadata;
  /// Bytes moved through the fluid cached-write path (never hits the data
  /// stations; the backend drained it in the background).
  std::uint64_t cached_bytes = 0;

  /// Render as an aligned table to `out` (stdout by default).
  void print(std::FILE* out = stdout) const;

  /// The busiest station (metadata included) by utilisation — "what was
  /// the bottleneck?".
  [[nodiscard]] const StationLine* bottleneck() const;
};

/// Snapshot the cluster's resource statistics at its current sim time.
ResourceReport collect_report(const ClusterModel& cluster);

}  // namespace ldplfs::simfs
