// Closed-form performance model (the paper's §V-A future work: "we also
// intend to model the performance of our implementation in order to aid
// auto-optimisation of parameters, as well as assess the benefits of PLFS
// on future I/O backplanes without requiring extensive benchmarking. We
// hope to use our performance model to highlight systems where PLFS may
// have a negative effect on performance").
//
// The model predicts write bandwidth for the PLFS and shared-file MPI-IO
// routes directly from a ClusterConfig and a workload shape — no simulation.
// It identifies which regime binds:
//
//   kAbsorb — everything fits the write-back grants: bandwidth is set by
//             cache ingest (and metadata storms at very high rank counts)
//   kDrain  — caches saturate: bandwidth is the thrash-degraded backend
//             drain rate (plus the one-time cache credit)
//   kSync   — shared-file path: synchronous stripe-sized RMW writes under
//             extent locks
//
// Accuracy target (validated in tests/simfs/test_analytic.cpp): within
// ~40% of the discrete-event simulation across the paper's operating
// points, with the win/lose classification always agreeing. That is enough
// to answer "should this machine deploy PLFS for this workload?" without
// running anything.
#pragma once

#include <cstdint>
#include <string>

#include "simfs/config.hpp"

namespace ldplfs::simfs {

/// Workload shape: an SPMD job writing in synchronised phases.
struct WorkloadShape {
  std::uint32_t nodes = 1;
  std::uint32_t ppn = 1;
  std::uint64_t bytes_per_rank_per_phase = 0;
  std::uint32_t phases = 1;
  /// Wall-clock compute between consecutive phases (caches drain).
  double compute_between_phases_s = 0.0;
  /// Writers: all ranks (independent / per-process droppings) when true,
  /// one aggregator per node when false.
  bool independent_writers = true;

  [[nodiscard]] std::uint64_t nranks() const {
    return static_cast<std::uint64_t>(nodes) * ppn;
  }
  [[nodiscard]] std::uint64_t total_bytes() const {
    return bytes_per_rank_per_phase * nranks() * phases;
  }
};

enum class Regime { kAbsorb, kDrain, kSync };

const char* regime_name(Regime regime);

struct Prediction {
  double bandwidth_mbps = 0.0;  // decimal MB/s, paper convention
  double io_time_s = 0.0;       // open + writes + close
  double meta_time_s = 0.0;     // metadata share of io_time_s
  Regime regime = Regime::kSync;
};

/// PLFS route (ROMIO-PLFS / LDPLFS — the model does not resolve their
/// µs-level difference).
Prediction predict_plfs(const ClusterConfig& config,
                        const WorkloadShape& shape);

/// Plain MPI-IO shared-file route.
Prediction predict_mpiio(const ClusterConfig& config,
                         const WorkloadShape& shape);

/// The paper's deployment question, answered analytically: does PLFS help
/// here? Returns the predicted speedup factor (>1 = PLFS wins).
double plfs_speedup(const ClusterConfig& config, const WorkloadShape& shape);

}  // namespace ldplfs::simfs
