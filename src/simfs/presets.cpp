#include "simfs/presets.hpp"

#include "common/units.hpp"

namespace ldplfs::simfs {

using namespace ldplfs::literals;

ClusterConfig minerva() {
  ClusterConfig c;
  c.name = "minerva";
  c.nodes = 258;
  c.cores_per_node = 12;

  // Client side: effective per-node GPFS client throughput, not the raw IB
  // rate — single-client NSD traffic on this class of machine peaks well
  // below link speed.
  c.client_nic = {5e-6, 120e6};
  c.memcpy_bps = 6e9;
  // GPFS pagepool share available for dirty data per node (node-level;
  // GPFS has no per-stream grant limit).
  c.client_cache_bytes = 128_MiB;
  c.per_stream_cache_bytes = 0;
  c.cache_absorb_bps = 300e6;

  // Two NSD servers. 48 data disks each (96 total, 8+2 RAID-6), 2 TB
  // 7.2k nearline SAS. Effective sustained rate per server calibrated to
  // the ~250 MB/s aggregate the machine actually delivers (paper Fig. 3).
  c.io_servers = 2;
  c.server_array.disk = {0.004, 7200.0, 60e6};
  c.server_array.disks = 48;
  c.server_array.level = sim::RaidLevel::kRaid6;
  c.server_array.effective_streaming_bps = 128e6;
  c.server_nic = {5e-6, 3.2e9};
  c.server_op_cpu_s = 60e-6;
  // Switching between write streams costs the NSD a partial reposition.
  c.stream_switch_s = 1.5e-3;
  c.stripe_bytes = 4_MiB;  // GPFS block size

  // GPFS: metadata distributed across the servers; no MDS choke point.
  c.dedicated_mds = false;
  c.meta_op_s = 350e-6;

  // GPFS byte-range token handoff between clients.
  c.lock_handoff_s = 1.2e-3;

  // Small machine: thrash regime never reached, keep it off.
  c.stream_thrash_alpha = 0.0;

  c.posix_op_s = 2e-6;
  c.mpiio_op_s = 8e-6;
  c.plfs_api_op_s = 4e-6;
  c.ldplfs_op_extra_s = 1.5e-6;
  c.fuse_op_extra_s = 60e-6;   // two kernel crossings + daemon wakeup
  c.fuse_copy_bps = 1.0e9;
  return c;
}

ClusterConfig sierra() {
  ClusterConfig c;
  c.name = "sierra";
  c.nodes = 1849;
  c.cores_per_node = 12;

  // Effective single-client Lustre write throughput on lscratchc (shared
  // production system) — this is what makes the weak-scaled FLASH-IO curve
  // rise node-by-node until the backend saturates near 16 nodes.
  c.client_nic = {3e-6, 350e6};
  c.memcpy_bps = 6e9;
  // Lustre grants dirty-page headroom per stream (max_dirty_mb per OSC,
  // 32 MiB), bounded by node RAM. This is what makes BT class D writes
  // "marginally too large for cache" at 1,024 cores while class C's 6 MB
  // per process is fully absorbed (paper §IV).
  c.client_cache_bytes = 512_MiB;
  c.per_stream_cache_bytes = 32_MiB;
  // Client-side ingest rate into the cache (kernel copy + grant RPCs).
  c.cache_absorb_bps = 500e6;

  // 24 OSS over lscratchc, 3,600 disks, 450 GB 10k SAS, 8+2 RAID-6.
  // Theoretical 30 GB/s; effective per-OSS rate calibrated to the ~1.7 GB/s
  // PLFS peak of Fig. 5 (shared production file system).
  c.io_servers = 24;
  c.server_array.disk = {0.008, 10000.0, 100e6};
  c.server_array.disks = 150;
  c.server_array.level = sim::RaidLevel::kRaid6;
  c.server_array.effective_streaming_bps = 80e6;
  c.server_nic = {3e-6, 1.25e9};
  c.server_op_cpu_s = 40e-6;
  c.stream_switch_s = 1.0e-3;
  c.stripe_bytes = 1_MiB;  // Lustre default stripe

  // Dedicated MDS (RAID-10, 15k disks) — the Fig. 5 bottleneck. Congestion
  // inflates service when thousands of creates pile up.
  c.dedicated_mds = true;
  c.meta_op_s = 400e-6;
  // Mild queue-dependent inflation: thousands of concurrent creates slow
  // the MDS but do not by themselves collapse it (BT at 1,024 cores ran
  // fine); the Fig. 5 collapse is the joint effect of this and the
  // stream-thrashed data path.
  c.mds_congestion = {0.08, 512};

  c.lock_handoff_s = 1.8e-3;

  // File-per-process at scale: backend efficiency decays once each OSS
  // juggles more than ~32 concurrent write streams (seek thrash across
  // thousands of droppings — the paper's §V explanation).
  c.stream_thrash_alpha = 1.1;
  c.streams_knee_per_server = 32;

  c.posix_op_s = 2e-6;
  c.mpiio_op_s = 8e-6;
  c.plfs_api_op_s = 4e-6;
  c.ldplfs_op_extra_s = 1.5e-6;
  c.fuse_op_extra_s = 60e-6;
  c.fuse_copy_bps = 1.0e9;
  return c;
}

PlatformSpec minerva_spec() {
  return PlatformSpec{
      "Minerva", "Intel Xeon 5650", "2.66 GHz", 12, 258,
      "QLogic TrueScale 4X QDR InfiniBand", "GPFS", 2, "~4 GB/s",
      96, "2 TB Nearline SAS", "7,200 RPM", "6 (8 + 2)",
      24, "300 GB SAS", "15,000 RPM", "10"};
}

PlatformSpec sierra_spec() {
  return PlatformSpec{
      "Sierra", "Intel Xeon 5660", "2.8 GHz", 12, 1849,
      "QDR InfiniBand", "Lustre", 24, "~30 GB/s",
      3600, "450 GB SAS", "10,000 RPM", "6 (8 + 2)",
      30, "147 GB SAS", "15,000 RPM", "10"};
}

std::vector<PlatformSpec> all_platform_specs() {
  return {minerva_spec(), sierra_spec()};
}

}  // namespace ldplfs::simfs
