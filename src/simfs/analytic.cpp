#include "simfs/analytic.hpp"

#include <algorithm>
#include <cmath>

namespace ldplfs::simfs {

namespace {

/// Metadata time for `ops` requests against the metadata service, with the
/// congestion inflation the Station applies (approximated at the mean
/// queue depth, which for a synchronised storm is ~half the burst size).
double meta_storm_s(const ClusterConfig& config, double ops,
                    double burst_size) {
  double service = config.meta_op_s;
  if (config.dedicated_mds) {
    const auto& congestion = config.mds_congestion;
    if (congestion.alpha > 0.0 && burst_size > congestion.knee) {
      const double mean_excess =
          (burst_size / 2.0 - congestion.knee) / congestion.knee;
      if (mean_excess > 0) service *= 1.0 + congestion.alpha * mean_excess;
    }
    return ops * service;  // single server: fully serialised
  }
  return ops * service / std::max(1u, config.io_servers);
}

}  // namespace

const char* regime_name(Regime regime) {
  switch (regime) {
    case Regime::kAbsorb: return "absorb";
    case Regime::kDrain: return "drain";
    case Regime::kSync: return "sync";
  }
  return "?";
}

Prediction predict_plfs(const ClusterConfig& config,
                        const WorkloadShape& shape) {
  Prediction p;
  const std::uint64_t writers =
      shape.independent_writers ? shape.nranks() : shape.nodes;
  const std::uint64_t writers_per_node =
      shape.independent_writers ? shape.ppn : 1;

  // --- metadata: open storm (1 open/rank + 3 creates/writer) + close ------
  const double open_ops =
      static_cast<double>(shape.nranks()) + 3.0 * writers + 4.0;
  const double close_ops = 2.0 * writers;
  p.meta_time_s =
      meta_storm_s(config, open_ops, static_cast<double>(shape.nranks())) +
      meta_storm_s(config, close_ops, static_cast<double>(writers));

  // --- data path -----------------------------------------------------------
  // Streams: data + index dropping per writer.
  const double thrash = config.thrash_factor(2 * writers);
  const double backend = config.backend_streaming_bps() / thrash;
  const double per_node_drain =
      std::min(backend / shape.nodes, config.client_nic.bandwidth_bps);

  // Grant headroom per writer and RAM headroom per node (one-time credits).
  const std::uint64_t grant =
      config.per_stream_cache_bytes > 0
          ? std::min<std::uint64_t>(config.per_stream_cache_bytes,
                                    config.client_cache_bytes)
          : config.client_cache_bytes;
  const std::uint64_t node_credit = std::min<std::uint64_t>(
      config.client_cache_bytes, grant * writers_per_node);
  const std::uint64_t per_node_total = shape.bytes_per_rank_per_phase *
                                       shape.ppn * shape.phases;

  // Gap drain credit: between phases the cache drains for the compute time.
  const double gap_credit =
      per_node_drain * shape.compute_between_phases_s *
      std::max<std::uint32_t>(shape.phases - 1, 0);

  const double absorb_time =
      static_cast<double>(shape.total_bytes()) /
      (config.cache_absorb_bps * static_cast<double>(shape.nodes));

  const double credited = static_cast<double>(node_credit) + gap_credit;
  if (static_cast<double>(per_node_total) <= credited) {
    // Everything is absorbed; the writers never block.
    p.regime = Regime::kAbsorb;
    p.io_time_s = absorb_time + p.meta_time_s;
  } else {
    p.regime = Regime::kDrain;
    const double blocked_bytes_per_node =
        static_cast<double>(per_node_total) - credited;
    const double drain_time = blocked_bytes_per_node / per_node_drain;
    p.io_time_s = std::max(absorb_time, drain_time) + p.meta_time_s;
  }
  p.bandwidth_mbps =
      static_cast<double>(shape.total_bytes()) / p.io_time_s / 1e6;
  return p;
}

Prediction predict_mpiio(const ClusterConfig& config,
                         const WorkloadShape& shape) {
  Prediction p;
  p.regime = Regime::kSync;

  // Metadata: one create + nranks opens on one file; no storms of note.
  p.meta_time_s = meta_storm_s(config, shape.nranks() + 2.0,
                               static_cast<double>(shape.nranks()));

  // Each stripe-sized chunk is a synchronous RMW write (non-sequential at
  // the array) plus an amortised lock handoff (fresh stripes every phase).
  const std::uint64_t chunk = config.stripe_bytes;
  const double chunk_service =
      config.server_op_cpu_s +
      config.server_array.service_s(chunk, /*sequential=*/false,
                                    /*is_write=*/true);
  const double per_server_bps = static_cast<double>(chunk) / chunk_service;
  const double backend_bps =
      per_server_bps * static_cast<double>(config.io_servers);

  // Writers can also be client-limited at small node counts: each writer
  // chains chunk requests with a lock handoff and its own software cost.
  const std::uint64_t writers =
      shape.independent_writers ? shape.nranks() : shape.nodes;
  const double per_writer_chain_s =
      config.lock_handoff_s + config.mpiio_op_s + chunk_service;
  const double per_writer_bps = static_cast<double>(chunk) /
                                per_writer_chain_s;
  const double client_side_bps =
      per_writer_bps * static_cast<double>(writers);

  const double effective = std::min(backend_bps, client_side_bps);
  p.io_time_s =
      static_cast<double>(shape.total_bytes()) / effective + p.meta_time_s;
  p.bandwidth_mbps =
      static_cast<double>(shape.total_bytes()) / p.io_time_s / 1e6;
  return p;
}

double plfs_speedup(const ClusterConfig& config, const WorkloadShape& shape) {
  const double plfs = predict_plfs(config, shape).bandwidth_mbps;
  const double ufs = predict_mpiio(config, shape).bandwidth_mbps;
  return ufs > 0 ? plfs / ufs : 0.0;
}

}  // namespace ldplfs::simfs
