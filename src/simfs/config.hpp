// Cluster configuration: everything the paper's Table I specifies, plus the
// behavioural constants (lock handoff, cache sizes, congestion knees) that
// parameterise the queueing model. Presets for Minerva and Sierra live in
// presets.hpp.
#pragma once

#include <cstdint>
#include <string>

#include "sim/devices.hpp"
#include "sim/station.hpp"

namespace ldplfs::simfs {

struct ClusterConfig {
  std::string name = "cluster";

  // --- compute side ---
  std::uint32_t nodes = 64;
  std::uint32_t cores_per_node = 12;
  sim::LinkModel client_nic{2e-6, 3.2e9};  // QDR IB payload rate
  double memcpy_bps = 6e9;                 // in-node copy rate
  /// RAM available for dirty write-back data per node (upper bound).
  std::uint64_t client_cache_bytes = 512ull << 20;
  /// Per-write-stream dirty limit (Lustre max_dirty_mb per OSC). 0 = no
  /// per-stream limit (GPFS pagepool): the node bound applies directly.
  /// When set, a node's usable cache is min(client_cache_bytes,
  /// streams_on_node * per_stream_cache_bytes).
  std::uint64_t per_stream_cache_bytes = 0;
  /// Rate at which a client can push bytes INTO the write-back cache
  /// (kernel copy + grant accounting) — well below raw memcpy speed.
  double cache_absorb_bps = 500e6;

  // --- data path ---
  std::uint32_t io_servers = 2;
  sim::RaidArray server_array{};
  sim::LinkModel server_nic{2e-6, 3.2e9};
  double server_op_cpu_s = 50e-6;   // per-request server-side CPU
  /// Cost a server pays when consecutive requests belong to different
  /// files/streams (head movement + buffer switch). Amortised away by
  /// large requests, ruinous for many interleaved small ones — this is
  /// what makes FUSE's 128 KiB round trips slow at scale.
  double stream_switch_s = 0.0;
  std::uint64_t stripe_bytes = 1ull << 20;  // shared-file striping unit

  // --- metadata path ---
  /// Lustre: one dedicated MDS. GPFS: metadata distributed over the I/O
  /// servers (dedicated_mds = false → the metadata station gets io_servers
  /// parallel servers and no congestion collapse).
  bool dedicated_mds = false;
  double meta_op_s = 300e-6;            // create/open/stat service time
  sim::CongestionModel mds_congestion{};  // only meaningful for Lustre

  // --- locking (shared-file writes) ---
  double lock_handoff_s = 1.5e-3;  // extent-lock ping between clients

  /// Drain-rate divisor when a phase's cached writes are in-place rather
  /// than log-structured (RAID-6 read-modify-write + positioning on the
  /// flush path). Exercised by the log-structure ablation.
  double random_drain_penalty = 3.0;

  // --- many-stream thrash (backend efficiency loss with file-per-process
  //     at scale; the paper's "overhead of managing hundreds or thousands
  //     of files in parallel") ---
  double stream_thrash_alpha = 0.0;
  std::uint32_t streams_knee_per_server = 32;

  // --- software per-op overheads by access route ---
  double posix_op_s = 2e-6;        // raw syscall path
  double mpiio_op_s = 8e-6;        // MPI-IO software stack
  double plfs_api_op_s = 4e-6;     // PLFS container bookkeeping
  double ldplfs_op_extra_s = 1.5e-6;  // fd-table + cursor lseek dance
  // FUSE: every byte crosses the kernel twice and a user-space daemon
  // copies it; ops pay context switches.
  double fuse_op_extra_s = 12e-6;
  double fuse_copy_bps = 1.2e9;

  /// Aggregate streaming capability of the data backend, before thrash.
  [[nodiscard]] double backend_streaming_bps() const {
    const double per_server = std::min(server_array.streaming_bps(),
                                       server_nic.bandwidth_bps);
    return per_server * static_cast<double>(io_servers);
  }

  /// Thrash multiplier (>= 1) for `streams` concurrent write streams.
  [[nodiscard]] double thrash_factor(std::uint64_t streams) const {
    if (stream_thrash_alpha <= 0.0 || io_servers == 0) return 1.0;
    const double per_server =
        static_cast<double>(streams) / static_cast<double>(io_servers);
    const double knee = static_cast<double>(streams_knee_per_server);
    if (per_server <= knee) return 1.0;
    return 1.0 + stream_thrash_alpha * (per_server - knee) / knee;
  }
};

}  // namespace ldplfs::simfs
