// LANL MPI-IO Test, as configured in the paper's §III-C: every process
// writes `per_rank_bytes` (1 GiB) in `block_bytes` (8 MiB) blocks using
// blocking collective MPI-IO with collective buffering on, then a separate
// run reads the data back on the same layout. Produces Fig. 3's six panels
// when swept over {1,2,4} ppn × {1..64} nodes × four routes.
#pragma once

#include <cstdint>

#include "mpi/topology.hpp"
#include "mpiio/driver.hpp"
#include "simfs/config.hpp"

namespace ldplfs::workloads {

struct MpiioTestParams {
  std::uint64_t per_rank_bytes = 1ull << 30;  // 1 GiB
  std::uint64_t block_bytes = 8ull << 20;     // 8 MiB
};

struct MpiioTestResult {
  double write_mbps = 0.0;
  double read_mbps = 0.0;
  mpiio::IoStats write_stats;
  mpiio::IoStats read_stats;
};

/// Run a full write job then a full read job on a fresh cluster instance.
MpiioTestResult run_mpiio_test(const simfs::ClusterConfig& config,
                               const mpi::Topology& topo,
                               mpiio::Route route,
                               const MpiioTestParams& params = {});

}  // namespace ldplfs::workloads
