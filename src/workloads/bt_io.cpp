#include "workloads/bt_io.hpp"

#include <algorithm>

namespace ldplfs::workloads {

BtClass bt_class_c() {
  // 6.4 GB over 20 dumps. The C-class solve is quick: ~2.5k core-seconds
  // of computation spread over the dump interval.
  return BtClass{"C", 6871947674ull, 20, 2500.0};
}

BtClass bt_class_d() {
  // 136 GB over 20 dumps; the D-class solve is ~25× the C-class work.
  return BtClass{"D", 146028888064ull, 20, 12000.0};
}

mpi::Topology bt_topology(std::uint32_t cores, std::uint32_t cores_per_node) {
  mpi::Topology topo;
  if (cores <= cores_per_node) {
    topo.nodes = 1;
    topo.ppn = cores;
  } else {
    topo.ppn = cores_per_node;
    topo.nodes = (cores + cores_per_node - 1) / cores_per_node;
  }
  return topo;
}

BtResult run_bt(const simfs::ClusterConfig& config, const mpi::Topology& topo,
                mpiio::Route route, const BtClass& problem) {
  simfs::ClusterModel cluster(config);
  mpiio::DriverOptions options;
  options.route = route;
  mpiio::IoDriver driver(cluster, topo, options);

  const std::uint64_t per_rank_per_call =
      problem.total_bytes / problem.write_calls / topo.nranks();
  const double compute_between_dumps =
      problem.compute_core_seconds /
      static_cast<double>(problem.write_calls) /
      static_cast<double>(topo.nranks());

  driver.open(/*create=*/true);
  for (std::uint64_t call = 0; call < problem.write_calls; ++call) {
    if (call != 0) driver.compute(compute_between_dumps);
    // Each rank's dump region is written by that rank (the paper reasons
    // throughout in per-*process* write sizes — 300 KB/proc for C at 1024
    // cores, ~7 MB/proc for D — so aggregation was not coalescing these).
    driver.write_independent(per_rank_per_call, call);
  }
  driver.close();

  BtResult result;
  result.stats = driver.stats();
  // BT-IO reports data volume over I/O time (open + writes + close); the
  // solver compute between dumps is excluded, as in the benchmark.
  result.write_mbps = driver.stats().write_bandwidth_mbps();
  return result;
}

}  // namespace ldplfs::workloads
