#include "workloads/posix_patterns.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "common/rng.hpp"

namespace ldplfs::workloads {

StridedPattern make_strided_n1(int writers, int blocks_per_writer,
                               std::size_t block_bytes, std::uint64_t seed) {
  StridedPattern pattern;
  pattern.writers = writers;
  pattern.blocks_per_writer = blocks_per_writer;
  pattern.block_bytes = block_bytes;
  pattern.per_writer.resize(static_cast<std::size_t>(writers));

  Rng rng(seed);
  // Seed-derived rank permutation (Fisher-Yates).
  std::vector<int> perm(static_cast<std::size_t>(writers));
  for (int w = 0; w < writers; ++w) perm[static_cast<std::size_t>(w)] = w;
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.below(i)]);
  }

  Rng payload_rng = rng.split();
  for (int w = 0; w < writers; ++w) {
    auto& ops = pattern.per_writer[static_cast<std::size_t>(w)];
    ops.reserve(static_cast<std::size_t>(blocks_per_writer));
    for (int b = 0; b < blocks_per_writer; ++b) {
      const std::uint64_t logical_block =
          static_cast<std::uint64_t>(b) * static_cast<std::uint64_t>(writers) +
          static_cast<std::uint64_t>(perm[static_cast<std::size_t>(w)]);
      ops.push_back({logical_block * block_bytes,
                     static_cast<std::uint32_t>(block_bytes),
                     payload_rng.next()});
    }
  }
  return pattern;
}

std::vector<ReadOp> make_strided_readv(const StridedPattern& pattern,
                                       int reader, std::uint64_t seed) {
  const auto& ops =
      pattern.per_writer[static_cast<std::size_t>(reader) %
                         static_cast<std::size_t>(pattern.writers)];
  std::vector<ReadOp> segs;
  segs.reserve(ops.size());
  for (const auto& op : ops) segs.push_back({op.offset, op.length});
  Rng rng(seed ^ 0x7265616476ULL);  // "readv"
  for (std::size_t i = segs.size(); i > 1; --i) {
    std::swap(segs[i - 1], segs[rng.below(i)]);
  }
  return segs;
}

std::vector<WriteOp> make_permuted_writes(int nblocks,
                                          std::size_t block_bytes,
                                          std::uint64_t seed) {
  std::vector<WriteOp> ops;
  ops.reserve(static_cast<std::size_t>(nblocks));
  Rng rng(seed);
  for (int b = 0; b < nblocks; ++b) {
    ops.push_back({static_cast<std::uint64_t>(b) * block_bytes,
                   static_cast<std::uint32_t>(block_bytes), rng.next()});
  }
  for (std::size_t i = ops.size(); i > 1; --i) {
    std::swap(ops[i - 1], ops[rng.below(i)]);
  }
  return ops;
}

std::vector<MixedOp> make_mixed_rw(std::uint64_t file_bytes, int ops,
                                   std::size_t max_len, double read_fraction,
                                   std::uint64_t seed) {
  std::vector<MixedOp> stream;
  stream.reserve(static_cast<std::size_t>(ops));
  Rng rng(seed);
  for (int i = 0; i < ops; ++i) {
    MixedOp op;
    op.is_read = rng.uniform() < read_fraction;
    op.offset = rng.below(file_bytes);
    const std::uint64_t remaining = file_bytes - op.offset;
    const std::uint64_t len =
        1 + rng.below(std::min<std::uint64_t>(max_len, remaining));
    op.length = static_cast<std::uint32_t>(len);
    if (!op.is_read) op.fill_seed = rng.next();
    stream.push_back(op);
  }
  return stream;
}

std::vector<std::string> make_storm_names(int files, std::uint64_t seed) {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(files));
  Rng rng(seed);
  for (int i = 0; i < files; ++i) {
    char buf[48];
    std::snprintf(buf, sizeof buf, "storm.%06d.%08llx", i,
                  static_cast<unsigned long long>(rng.next() & 0xFFFFFFFFu));
    names.emplace_back(buf);
  }
  return names;
}

void fill_payload(std::span<std::byte> out, std::uint64_t seed) {
  Rng rng(seed);
  std::size_t i = 0;
  while (i + 8 <= out.size()) {
    const std::uint64_t word = rng.next();
    std::memcpy(out.data() + i, &word, 8);
    i += 8;
  }
  for (; i < out.size(); ++i) {
    out[i] = static_cast<std::byte>(rng.next() & 0xFF);
  }
}

}  // namespace ldplfs::workloads
