// NAS BT I/O pattern (paper §IV, Fig. 4): strong-scaled solution dumps.
//
// Class C writes 6.4 GB and class D 136 GB over 20 collective write calls
// (every other timestep of 40), so the per-rank write shrinks as cores
// grow — 300 KB/proc/call for C at 1024 cores, ~7 MB for D at 1024 and
// <2 MB at 4096, the numbers the paper uses to explain the write-caching
// behaviour. Between dumps the solver computes, which is when client
// caches drain.
#pragma once

#include <cstdint>

#include "mpi/topology.hpp"
#include "mpiio/driver.hpp"
#include "simfs/config.hpp"

namespace ldplfs::workloads {

struct BtClass {
  const char* name;
  std::uint64_t total_bytes;       // whole-run output volume
  std::uint64_t write_calls;       // collective writes per run
  double compute_core_seconds;     // solver work between consecutive dumps,
                                   // summed over the run, in core-seconds
};

/// Problem class C: 162³ grid → 6.4 GB output.
BtClass bt_class_c();
/// Problem class D: 408³ grid → 136 GB output.
BtClass bt_class_d();

struct BtResult {
  double write_mbps = 0.0;
  mpiio::IoStats stats;
};

/// Run one BT job (write side; BT-IO benchmarks report write bandwidth).
BtResult run_bt(const simfs::ClusterConfig& config, const mpi::Topology& topo,
                mpiio::Route route, const BtClass& problem);

/// Map a paper-style core count onto nodes × ppn for a 12-core machine.
mpi::Topology bt_topology(std::uint32_t cores, std::uint32_t cores_per_node);

}  // namespace ldplfs::workloads
