#include "workloads/mpiio_test.hpp"

namespace ldplfs::workloads {

MpiioTestResult run_mpiio_test(const simfs::ClusterConfig& config,
                               const mpi::Topology& topo, mpiio::Route route,
                               const MpiioTestParams& params) {
  MpiioTestResult result;
  const std::uint64_t phases =
      (params.per_rank_bytes + params.block_bytes - 1) / params.block_bytes;

  simfs::ClusterModel cluster(config);
  mpiio::DriverOptions options;
  options.route = route;

  // --- write job ---
  std::uint64_t writers;
  {
    mpiio::IoDriver driver(cluster, topo, options);
    driver.open(/*create=*/true);
    for (std::uint64_t phase = 0; phase < phases; ++phase) {
      driver.write_collective(params.block_bytes, phase);
    }
    driver.close();
    result.write_stats = driver.stats();
    result.write_mbps = driver.stats().write_bandwidth_mbps();
    writers = options.collective_buffering ? topo.nodes : topo.nranks();
  }

  // Let the machine settle between the write and read runs (cache drain),
  // as consecutive benchmark jobs do in reality.
  cluster.advance_time(120.0);

  // --- read job ---
  {
    mpiio::IoDriver driver(cluster, topo, options);
    driver.set_prior_writers(writers);
    driver.open(/*create=*/false);
    for (std::uint64_t phase = 0; phase < phases; ++phase) {
      driver.read_collective(params.block_bytes, phase);
    }
    driver.close();
    result.read_stats = driver.stats();
    result.read_mbps = driver.stats().read_bandwidth_mbps();
  }
  return result;
}

}  // namespace ldplfs::workloads
