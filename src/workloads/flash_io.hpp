// FLASH-IO checkpoint pattern (paper §IV, Fig. 5): weak-scaled HDF5-style
// checkpoint. Each process owns 80 blocks of 24³ cells; the checkpoint
// writes 24 unknowns dataset-by-dataset, ~205 MB per process total,
// through independent (per-rank) HDF5 writes plus header/attribute
// metadata traffic. Output grows linearly with process count — this is the
// workload whose PLFS run collapses at scale on Lustre.
#pragma once

#include <cstdint>

#include "mpi/topology.hpp"
#include "mpiio/driver.hpp"
#include "simfs/config.hpp"

namespace ldplfs::workloads {

struct FlashIoParams {
  std::uint64_t per_rank_bytes = 205ull << 20;  // ~205 MB checkpoint share
  std::uint32_t num_variables = 24;             // unknowns written in turn
  double header_metadata_ops = 10;              // HDF5 header/attr writes
  /// Buffer-packing time between dataset writes (FLASH-IO stages each
  /// unknown into a contiguous buffer before H5Dwrite — small, so caches
  /// get almost no drain window inside a checkpoint).
  double compute_between_vars_s = 0.02;
};

struct FlashIoResult {
  double write_mbps = 0.0;
  mpiio::IoStats stats;
};

FlashIoResult run_flash_io(const simfs::ClusterConfig& config,
                           const mpi::Topology& topo, mpiio::Route route,
                           const FlashIoParams& params = {});

}  // namespace ldplfs::workloads
