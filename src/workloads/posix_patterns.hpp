// Seeded access-pattern generators for the real-I/O stratum.
//
// The sim-stratum workloads in this directory (mpiio_test, bt_io,
// flash_io) describe traffic for the cluster simulator; these generators
// describe byte-level POSIX access patterns for the benchmark harness
// (src/bench_harness) and its property tests. They are pure functions of
// their parameters and seed — no I/O, no globals — which is what makes the
// harness's reproducibility oracle possible: the same `--seed` must yield
// byte-identical container contents across runs, so every offset, length,
// and payload byte is derived from the seed via the repo's SplitMix64 /
// xoshiro streams (common/rng.hpp).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace ldplfs::workloads {

/// One logical write: `length` bytes at `offset`, payload bytes generated
/// from `fill_seed` (see fill_payload).
struct WriteOp {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  std::uint64_t fill_seed = 0;
};

/// N-1 strided checkpoint pattern: `writers` ranks interleave fixed-size
/// blocks into one logical file. Rank w's b-th block lands at logical
/// block index b * writers + perm(w), where perm is a seed-derived
/// permutation of the ranks — coalesce-resistant (no two consecutive
/// logical blocks come from the same rank) and distinct across seeds.
struct StridedPattern {
  int writers = 0;
  int blocks_per_writer = 0;
  std::size_t block_bytes = 0;
  /// per_writer[w] lists rank w's writes in issue order.
  std::vector<std::vector<WriteOp>> per_writer;

  [[nodiscard]] std::uint64_t total_bytes() const {
    return static_cast<std::uint64_t>(writers) *
           static_cast<std::uint64_t>(blocks_per_writer) * block_bytes;
  }
};

StridedPattern make_strided_n1(int writers, int blocks_per_writer,
                               std::size_t block_bytes, std::uint64_t seed);

/// One segment of a list-I/O read batch: `length` bytes at `offset`.
struct ReadOp {
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
};

/// List-I/O strided read-back: the segments rank `reader` (taken mod
/// pattern.writers) must issue to fetch every block it contributed to a
/// strided N-1 file, in a seed-shuffled order — batches arrive out of
/// order, and sorting/sieving them is the I/O engine's job, not the
/// application's. The blocks are logically strided but physically
/// contiguous inside the rank's dropping, which is exactly the shape data
/// sieving collapses into one covering pread.
std::vector<ReadOp> make_strided_readv(const StridedPattern& pattern,
                                       int reader, std::uint64_t seed);

/// Coalescible permuted writes: every `block_bytes`-sized block of a
/// `nblocks * block_bytes` logical file exactly once, in a seed-derived
/// random order. Scattered at issue time (index records cannot merge as
/// they are staged) yet densely covering the file, this is the shape
/// flush-boundary extent coalescing relays into contiguous runs.
std::vector<WriteOp> make_permuted_writes(int nblocks,
                                          std::size_t block_bytes,
                                          std::uint64_t seed);

/// Mixed read/write op stream over a file of `file_bytes` (which must be
/// pre-populated): roughly `read_fraction` of ops are reads; offsets and
/// lengths are uniform with lengths in [1, max_len] clamped to EOF, so the
/// logical size never grows and the final contents are a pure function of
/// the op sequence.
struct MixedOp {
  bool is_read = false;
  std::uint64_t offset = 0;
  std::uint32_t length = 0;
  std::uint64_t fill_seed = 0;  ///< writes only
};

std::vector<MixedOp> make_mixed_rw(std::uint64_t file_bytes, int ops,
                                   std::size_t max_len, double read_fraction,
                                   std::uint64_t seed);

/// Metadata-storm name list: `files` distinct names, deterministic in the
/// seed (mdtest-style create/stat/unlink storms need stable name sets so
/// two runs touch the same dentries).
std::vector<std::string> make_storm_names(int files, std::uint64_t seed);

/// Fill `out` with the deterministic byte stream of `seed`.
void fill_payload(std::span<std::byte> out, std::uint64_t seed);

}  // namespace ldplfs::workloads
