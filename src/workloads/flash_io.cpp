#include "workloads/flash_io.hpp"

namespace ldplfs::workloads {

FlashIoResult run_flash_io(const simfs::ClusterConfig& config,
                           const mpi::Topology& topo, mpiio::Route route,
                           const FlashIoParams& params) {
  simfs::ClusterModel cluster(config);
  mpiio::DriverOptions options;
  options.route = route;
  // FLASH-IO's HDF5 path issues independent writes (one contiguous slab
  // per rank per variable); collective buffering does not kick in.
  options.collective_buffering = false;
  mpiio::IoDriver driver(cluster, topo, options);

  const std::uint64_t per_var =
      params.per_rank_bytes / params.num_variables;

  driver.open(/*create=*/true);
  for (std::uint32_t var = 0; var < params.num_variables; ++var) {
    if (var != 0) driver.compute(params.compute_between_vars_s);
    driver.write_independent(per_var, var);
  }
  driver.close();

  FlashIoResult result;
  result.stats = driver.stats();
  result.write_mbps = driver.stats().write_bandwidth_mbps();
  return result;
}

}  // namespace ldplfs::workloads
