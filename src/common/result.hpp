// Minimal expected-style result type carrying an errno value on failure.
//
// The LDPLFS core must report failures exactly the way POSIX does (return -1,
// set errno), so errors are represented as plain errno codes end to end rather
// than exceptions: the preload shim cannot let exceptions escape into foreign
// C callers.
#pragma once

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>
#include <variant>

namespace ldplfs {

/// An errno-carrying error. Zero is never a valid Errno payload.
struct Errno {
  int code = EIO;

  [[nodiscard]] std::string message() const { return std::strerror(code); }
  friend bool operator==(const Errno&, const Errno&) = default;
};

/// Result<T>: either a value or an Errno. Deliberately tiny — no monadic
/// combinators, just the operations the call sites need.
template <typename T>
class Result {
 public:
  Result(T value) : repr_(std::move(value)) {}      // NOLINT(google-explicit-constructor)
  Result(Errno error) : repr_(error) {}             // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(repr_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] T& value() & { return std::get<T>(repr_); }
  [[nodiscard]] const T& value() const& { return std::get<T>(repr_); }
  [[nodiscard]] T&& value() && { return std::get<T>(std::move(repr_)); }

  [[nodiscard]] Errno error() const { return std::get<Errno>(repr_); }
  [[nodiscard]] int error_code() const { return error().code; }

  [[nodiscard]] T value_or(T fallback) const {
    return ok() ? value() : std::move(fallback);
  }

 private:
  std::variant<T, Errno> repr_;
};

/// Result<void> analogue.
class Status {
 public:
  Status() = default;                                // success
  Status(Errno error) : error_(error) {}             // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const { return error_.code == 0; }
  explicit operator bool() const { return ok(); }
  [[nodiscard]] Errno error() const { return error_; }
  [[nodiscard]] int error_code() const { return error_.code; }

  static Status success() { return Status{}; }

 private:
  Errno error_{0};
};

}  // namespace ldplfs
