#include "common/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace ldplfs::json {

const Value* Value::find(std::string_view key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

double Value::number_at(std::string_view key, double fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_number()) ? v->as_number() : fallback;
}

std::string Value::string_at(std::string_view key, std::string fallback) const {
  const Value* v = find(key);
  return (v != nullptr && v->is_string()) ? v->as_string()
                                          : std::move(fallback);
}

void Value::push_back(Value v) {
  if (type_ == Type::kArray) items_.push_back(std::move(v));
}

void Value::set(std::string key, Value v) {
  if (type_ != Type::kObject) return;
  for (auto& [name, value] : members_) {
    if (name == key) {
      value = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

namespace {

void append_escaped(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double d) {
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf; null is the least-bad spelling
    return;
  }
  // Integers up to 2^53 print without a decimal point (counts, byte sizes).
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", d);
    out += buf;
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  // Trim to the shortest representation that round-trips.
  for (int prec = 6; prec < 17; ++prec) {
    char probe[40];
    std::snprintf(probe, sizeof probe, "%.*g", prec, d);
    if (std::strtod(probe, nullptr) == d) {
      out += probe;
      return;
    }
  }
  out += buf;
}

}  // namespace

void Value::dump_to(std::string& out, int indent, int depth) const {
  const std::string pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth + 1),
                               ' ')
                 : std::string();
  const std::string close_pad =
      indent > 0 ? std::string(static_cast<std::size_t>(indent) *
                                   static_cast<std::size_t>(depth),
                               ' ')
                 : std::string();
  const char* nl = indent > 0 ? "\n" : "";
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      out += nl;
      for (std::size_t i = 0; i < items_.size(); ++i) {
        out += pad;
        items_[i].dump_to(out, indent, depth + 1);
        if (i + 1 < items_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      out += nl;
      for (std::size_t i = 0; i < members_.size(); ++i) {
        out += pad;
        append_escaped(out, members_[i].first);
        out += indent > 0 ? ": " : ":";
        members_[i].second.dump_to(out, indent, depth + 1);
        if (i + 1 < members_.size()) out += ',';
        out += nl;
      }
      out += close_pad;
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  if (indent > 0) out += '\n';
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool parse_document(Value& out) {
    skip_ws();
    if (!parse_value(out)) return false;
    skip_ws();
    return pos_ == text_.size();
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool consume(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' ||
            text_[pos_] == '\n' || text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool parse_value(Value& out) {
    switch (peek()) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string s;
        if (!parse_string(s)) return false;
        out = Value(std::move(s));
        return true;
      }
      case 't':
        if (text_.substr(pos_, 4) != "true") return false;
        pos_ += 4;
        out = Value(true);
        return true;
      case 'f':
        if (text_.substr(pos_, 5) != "false") return false;
        pos_ += 5;
        out = Value(false);
        return true;
      case 'n':
        if (text_.substr(pos_, 4) != "null") return false;
        pos_ += 4;
        out = Value(nullptr);
        return true;
      default: return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    if (!consume('{')) return false;
    out = Value::object();
    skip_ws();
    if (consume('}')) return true;
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!consume(':')) return false;
      skip_ws();
      Value member;
      if (!parse_value(member)) return false;
      out.set(std::move(key), std::move(member));
      skip_ws();
      if (consume(',')) continue;
      return consume('}');
    }
  }

  bool parse_array(Value& out) {
    if (!consume('[')) return false;
    out = Value::array();
    skip_ws();
    if (consume(']')) return true;
    while (true) {
      skip_ws();
      Value item;
      if (!parse_value(item)) return false;
      out.push_back(std::move(item));
      skip_ws();
      if (consume(',')) continue;
      return consume(']');
    }
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    out.clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return false;
      char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'n': out += '\n'; break;
        case 't': out += '\t'; break;
        case 'r': out += '\r'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return false;
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return false;
            }
          }
          // Reports are ASCII; encode BMP code points as UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: return false;
      }
    }
    return false;
  }

  bool parse_number(Value& out) {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    if (peek() == '.') {
      ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      while (std::isdigit(static_cast<unsigned char>(peek())) != 0) ++pos_;
    }
    if (pos_ == start) return false;
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double d = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return false;
    out = Value(d);
    return true;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

Result<Value> parse(std::string_view text) {
  Parser parser(text);
  Value out;
  if (!parser.parse_document(out)) return Errno{EINVAL};
  return out;
}

Result<Value> parse_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Errno{errno != 0 ? errno : ENOENT};
  std::ostringstream body;
  body << in.rdbuf();
  return parse(body.str());
}

}  // namespace ldplfs::json
