// Statistics for the benchmark harness: summary statistics, percentile
// bootstrap confidence intervals, and the Mann-Whitney U rank test.
//
// Benchmark repetitions are small (K >= 5), skewed, and occasionally
// contaminated by scheduler noise, so the harness reasons about them with
// rank statistics rather than t-tests: the Mann-Whitney U test makes no
// normality assumption, and the bootstrap CI quantifies how much the mean
// of K noisy repetitions can be trusted. Everything here is deterministic:
// the bootstrap resampler is driven by an explicit seed (threaded from
// `ldp-bench --seed`), so two runs of the harness on the same samples
// produce bit-identical reports.
//
// For the sample sizes the harness actually uses (both sides <= 12, no
// ties), mann_whitney_u computes the *exact* null distribution of U by
// dynamic programming — at K = 5 vs 5 the smallest achievable two-sided
// p-value is 2/252 ~ 0.0079, which the normal approximation misreports as
// ~0.012 and would push a complete separation over an alpha = 0.01 gate.
// Larger samples (or tied data) use the normal approximation with midranks,
// tie-corrected variance, and continuity correction.
#pragma once

#include <cstdint>
#include <span>

namespace ldplfs::stats_math {

/// Arithmetic mean; 0 for an empty sample.
double mean(std::span<const double> xs);

/// Median (average of the two central order statistics for even n);
/// 0 for an empty sample.
double median(std::span<const double> xs);

/// Sample standard deviation (n-1 denominator); 0 when n < 2.
double sample_stddev(std::span<const double> xs);

/// Standard normal CDF.
double normal_cdf(double z);

struct Interval {
  double lo = 0.0;
  double hi = 0.0;
};

/// Percentile-bootstrap confidence interval for the mean: `resamples`
/// with-replacement resamples of xs, each reduced to its mean, interval
/// taken at the (1±confidence)/2 quantiles. Deterministic in `seed`.
/// n == 0 returns {0,0}; n == 1 returns {x,x}.
Interval bootstrap_ci_mean(std::span<const double> xs,
                           double confidence = 0.95, int resamples = 2000,
                           std::uint64_t seed = 1);

struct MannWhitney {
  double u_a = 0.0;  ///< U statistic of sample a (midranks under ties)
  double z = 0.0;    ///< normal-approximation z score (0 when sigma == 0)
  double p = 1.0;    ///< two-sided p-value
  bool exact = false;  ///< exact small-sample distribution was used
};

/// Two-sided Mann-Whitney U test of a vs b. Either side empty => p = 1.
MannWhitney mann_whitney_u(std::span<const double> a,
                           std::span<const double> b);

/// Everything the per-scenario report needs, in one call. The CI seed is
/// explicit so reports are reproducible.
struct Summary {
  int n = 0;
  double mean = 0.0;
  double median = 0.0;
  double stddev = 0.0;
  Interval ci95;
};

Summary summarize(std::span<const double> xs, std::uint64_t ci_seed);

}  // namespace ldplfs::stats_math
