#include "common/paths.hpp"

#include <vector>

#include "common/strings.hpp"

namespace ldplfs {

std::string normalize_path(std::string_view path, std::string_view cwd) {
  std::string full;
  if (!path.empty() && path.front() == '/') {
    full.assign(path);
  } else if (!cwd.empty()) {
    full.assign(cwd);
    full += '/';
    full += path;
  } else {
    full.assign(path);
  }

  const bool absolute = !full.empty() && full.front() == '/';
  std::vector<std::string> stack;
  for (auto& part : split_nonempty(full, '/')) {
    if (part == ".") continue;
    if (part == "..") {
      if (!stack.empty() && stack.back() != "..") {
        stack.pop_back();
      } else if (!absolute) {
        stack.push_back(std::move(part));
      }
      // ".." at the root of an absolute path vanishes, as in realpath(3).
      continue;
    }
    stack.push_back(std::move(part));
  }

  std::string out = absolute ? "/" : "";
  out += join(stack, "/");
  if (out.empty()) out = ".";
  return out;
}

bool path_under(std::string_view path, std::string_view root) {
  if (root.empty()) return false;
  while (root.size() > 1 && root.back() == '/') root.remove_suffix(1);
  if (path == root) return true;
  if (path.size() <= root.size()) return false;
  return path.substr(0, root.size()) == root && path[root.size()] == '/';
}

std::string path_suffix(std::string_view path, std::string_view root) {
  while (root.size() > 1 && root.back() == '/') root.remove_suffix(1);
  if (path == root) return "";
  std::string_view rest = path.substr(root.size());
  while (!rest.empty() && rest.front() == '/') rest.remove_prefix(1);
  return std::string(rest);
}

std::string path_join(std::string_view a, std::string_view b) {
  if (a.empty()) return std::string(b);
  if (b.empty()) return std::string(a);
  std::string out(a);
  while (out.size() > 1 && out.back() == '/') out.pop_back();
  if (out != "/") out += '/';
  while (!b.empty() && b.front() == '/') b.remove_prefix(1);
  out += b;
  return out;
}

std::string path_basename(std::string_view path) {
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
  if (path == "/") return "/";
  const std::size_t pos = path.rfind('/');
  if (pos == std::string_view::npos) return std::string(path);
  return std::string(path.substr(pos + 1));
}

std::string path_dirname(std::string_view path) {
  while (path.size() > 1 && path.back() == '/') path.remove_suffix(1);
  const std::size_t pos = path.rfind('/');
  if (pos == std::string_view::npos) return ".";
  if (pos == 0) return "/";
  return std::string(path.substr(0, pos));
}

}  // namespace ldplfs
