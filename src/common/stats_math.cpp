#include "common/stats_math.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace ldplfs::stats_math {
namespace {

/// Largest per-side sample size for which the exact U distribution is
/// tabulated. 12 vs 12 needs a 145-entry row over C(24,12) ~ 2.7e6
/// arrangements — trivial — while covering every rep count the harness
/// realistically runs.
constexpr std::size_t kExactLimit = 12;

double quantile_sorted(const std::vector<double>& sorted, double q) {
  if (sorted.empty()) return 0.0;
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

/// Number of arrangements of n-vs-m samples with U statistic exactly u,
/// for all u in [0, n*m]. U is determined by how many b-values precede
/// each a-value (a nondecreasing sequence bounded by m), so the counts are
/// Gaussian-binomial coefficients with the classic recurrence
///   N(u; n, m) = N(u; n, m-1) + N(u - m; n-1, m).
/// Counts fit comfortably in uint64 for n, m <= kExactLimit
/// (they sum to C(n+m, n) <= C(24, 12) ~ 2.7e6).
std::vector<std::uint64_t> exact_u_counts(std::size_t n, std::size_t m) {
  // rows[i][u] = N(u; i, j) for the current j; sweep j from 0 to m.
  std::vector<std::vector<std::uint64_t>> rows(
      n + 1, std::vector<std::uint64_t>(n * m + 1, 0));
  for (std::size_t i = 0; i <= n; ++i) rows[i][0] = 1;  // j == 0 base case
  for (std::size_t j = 1; j <= m; ++j) {
    auto prev = rows;  // values at j-1
    for (std::size_t i = 1; i <= n; ++i) {
      for (std::size_t u = 0; u <= i * j; ++u) {
        rows[i][u] = prev[i][u] + (u >= j ? rows[i - 1][u - j] : 0);
      }
    }
  }
  return rows[n];
}

}  // namespace

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

double sample_stddev(std::span<const double> xs) {
  const std::size_t n = xs.size();
  if (n < 2) return 0.0;
  const double m = mean(xs);
  double ss = 0.0;
  for (double x : xs) ss += (x - m) * (x - m);
  return std::sqrt(ss / static_cast<double>(n - 1));
}

double normal_cdf(double z) {
  return 0.5 * std::erfc(-z / std::sqrt(2.0));
}

Interval bootstrap_ci_mean(std::span<const double> xs, double confidence,
                           int resamples, std::uint64_t seed) {
  if (xs.empty()) return {};
  if (xs.size() == 1) return {xs[0], xs[0]};
  Rng rng(seed);
  std::vector<double> means;
  means.reserve(static_cast<std::size_t>(resamples));
  const auto n = xs.size();
  for (int r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += xs[rng.below(n)];
    means.push_back(sum / static_cast<double>(n));
  }
  std::sort(means.begin(), means.end());
  const double tail = (1.0 - confidence) / 2.0;
  return {quantile_sorted(means, tail), quantile_sorted(means, 1.0 - tail)};
}

MannWhitney mann_whitney_u(std::span<const double> a,
                           std::span<const double> b) {
  MannWhitney result;
  const std::size_t n = a.size();
  const std::size_t m = b.size();
  if (n == 0 || m == 0) return result;

  // Pool, sort, assign midranks.
  struct Tagged {
    double value;
    bool from_a;
  };
  std::vector<Tagged> pool;
  pool.reserve(n + m);
  for (double x : a) pool.push_back({x, true});
  for (double x : b) pool.push_back({x, false});
  std::sort(pool.begin(), pool.end(),
            [](const Tagged& lhs, const Tagged& rhs) {
              return lhs.value < rhs.value;
            });

  const std::size_t total = n + m;
  double rank_sum_a = 0.0;
  double tie_term = 0.0;  // sum over tie groups of t^3 - t
  bool any_tie = false;
  std::size_t i = 0;
  while (i < total) {
    std::size_t j = i;
    while (j + 1 < total && pool[j + 1].value == pool[i].value) ++j;
    const double t = static_cast<double>(j - i + 1);
    if (t > 1.0) {
      any_tie = true;
      tie_term += t * t * t - t;
    }
    // Ranks are 1-based; the group spanning [i, j] shares the midrank.
    const double midrank = (static_cast<double>(i + 1) +
                            static_cast<double>(j + 1)) / 2.0;
    for (std::size_t k = i; k <= j; ++k) {
      if (pool[k].from_a) rank_sum_a += midrank;
    }
    i = j + 1;
  }

  const double nn = static_cast<double>(n);
  const double mm = static_cast<double>(m);
  const double u_a = rank_sum_a - nn * (nn + 1.0) / 2.0;
  result.u_a = u_a;

  const double mu = nn * mm / 2.0;
  if (!any_tie && n <= kExactLimit && m <= kExactLimit) {
    // Exact two-sided p: with no ties U is an integer.
    const auto counts = exact_u_counts(n, m);
    std::uint64_t total_count = 0;
    for (auto c : counts) total_count += c;
    const auto u_int = static_cast<std::size_t>(std::lround(u_a));
    std::uint64_t le = 0;
    std::uint64_t ge = 0;
    for (std::size_t u = 0; u < counts.size(); ++u) {
      if (u <= u_int) le += counts[u];
      if (u >= u_int) ge += counts[u];
    }
    const double p_le = static_cast<double>(le) /
                        static_cast<double>(total_count);
    const double p_ge = static_cast<double>(ge) /
                        static_cast<double>(total_count);
    result.p = std::min(1.0, 2.0 * std::min(p_le, p_ge));
    result.exact = true;
    // Still report a z for display, without continuity fuss.
    const double sigma = std::sqrt(nn * mm * (nn + mm + 1.0) / 12.0);
    result.z = sigma > 0.0 ? (u_a - mu) / sigma : 0.0;
    return result;
  }

  // Normal approximation with tie-corrected variance and continuity
  // correction toward the mean.
  const double nt = static_cast<double>(total);
  double var = nn * mm / 12.0 *
               ((nt + 1.0) - tie_term / (nt * (nt - 1.0)));
  if (var <= 0.0) {
    // Every pooled value identical: no evidence of any shift.
    result.z = 0.0;
    result.p = 1.0;
    return result;
  }
  const double sigma = std::sqrt(var);
  double diff = u_a - mu;
  if (diff > 0.5) {
    diff -= 0.5;
  } else if (diff < -0.5) {
    diff += 0.5;
  } else {
    diff = 0.0;
  }
  result.z = diff / sigma;
  result.p = std::min(1.0, 2.0 * (1.0 - normal_cdf(std::fabs(result.z))));
  return result;
}

Summary summarize(std::span<const double> xs, std::uint64_t ci_seed) {
  Summary s;
  s.n = static_cast<int>(xs.size());
  s.mean = mean(xs);
  s.median = median(xs);
  s.stddev = sample_stddev(xs);
  s.ci95 = bootstrap_ci_mean(xs, 0.95, 2000, ci_seed);
  return s;
}

}  // namespace ldplfs::stats_math
