// Self-contained MD5 (RFC 1321) used by ldp-md5sum and by tests that compare
// container contents against flat files. Streaming interface so multi-GiB
// files hash in constant memory.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

namespace ldplfs {

class Md5 {
 public:
  Md5();

  /// Absorb more input. May be called any number of times.
  void update(std::span<const std::byte> data);
  void update(const void* data, std::size_t len);

  /// Finalise and return the 16-byte digest. The object must not be updated
  /// afterwards (construct a fresh one to hash again).
  std::array<std::uint8_t, 16> finish();

  /// Convenience: hex digest of a buffer.
  static std::string hex_digest(std::span<const std::byte> data);
  static std::string hex_digest(const std::string& data);

  /// Render a digest as lowercase hex.
  static std::string to_hex(const std::array<std::uint8_t, 16>& digest);

 private:
  void process_block(const std::uint8_t* block);

  std::array<std::uint32_t, 4> state_;
  std::uint64_t total_bytes_ = 0;
  std::array<std::uint8_t, 64> buffer_{};
  std::size_t buffered_ = 0;
};

}  // namespace ldplfs
