// String helpers used across modules. All pure functions, no allocation
// surprises beyond the returned containers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace ldplfs {

/// Split `text` on `sep`, keeping empty fields.
std::vector<std::string> split(std::string_view text, char sep);

/// Split on `sep`, dropping empty fields (handy for "a::b:" style lists).
std::vector<std::string> split_nonempty(std::string_view text, char sep);

/// Join with a separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

bool starts_with(std::string_view text, std::string_view prefix);
bool ends_with(std::string_view text, std::string_view suffix);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view text);

/// Parse a non-negative integer; returns -1 on malformed input.
long long parse_ll(std::string_view text);

}  // namespace ldplfs
