#include "common/health.hpp"

#include <time.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <mutex>

#include "common/logging.hpp"
#include "common/paths.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"

namespace ldplfs::health {

namespace {

constexpr std::uint32_t kMaxWindow = 4096;

/// Per-backend tracker. The sliding window is a circular buffer of outcome
/// bits (true = failure) whose failure count is maintained incrementally.
struct Backend {
  explicit Backend(std::string r) : root(std::move(r)) {}

  std::string root;
  BreakerState state = BreakerState::kClosed;
  int sticky_errno = 0;
  std::uint64_t opened_ns = 0;       // when the breaker last opened
  bool probe_inflight = false;       // a half-open probe was admitted
  std::uint64_t probe_started_ns = 0;

  std::vector<char> ring;            // sized lazily to the config window
  std::uint32_t ring_pos = 0;
  std::uint32_t ring_count = 0;
  std::uint32_t window_failures = 0;

  std::uint64_t ops = 0;
  std::uint64_t failures = 0;
  std::uint64_t fast_fails = 0;
  std::uint64_t trips = 0;
  std::uint64_t probes_ok = 0;
  std::uint64_t probes_failed = 0;
  std::uint64_t latency_sum_ns = 0;
};

struct State {
  std::mutex mu;
  bool latched = false;  // environment read (or reset() pinned defaults)
  RetryPolicy retry;
  FailurePolicy policy = FailurePolicy::kErrors;
  BreakerConfig breaker;
  Rng rng;  // jitter source; determinism does not matter, reseeding does not
  // Registered mount roots, longest first (innermost match wins), plus one
  // default backend for paths outside every registered root.
  std::vector<std::unique_ptr<Backend>> backends;
  Backend fallback{std::string("*")};
};

State& state() {
  static State* s = new State();  // leaked: usable during process teardown
  return *s;
}

bool parse_u64_field(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_fail(std::string* error, const char* message) {
  if (error != nullptr) *error = message;
  return false;
}

/// Read LDPLFS_RETRY / LDPLFS_ON_FAILURE / LDPLFS_BREAKER once. Caller
/// holds s.mu.
void latch_env_locked(State& s) {
  if (s.latched) return;
  s.latched = true;
  if (const char* spec = std::getenv("LDPLFS_RETRY");
      spec != nullptr && *spec != '\0') {
    std::string error;
    if (!parse_retry(spec, s.retry, &error)) {
      LDPLFS_LOG_WARN("LDPLFS_RETRY ignored: %s", error.c_str());
    }
  }
  bool breaker_requested = false;
  if (const char* spec = std::getenv("LDPLFS_ON_FAILURE");
      spec != nullptr && *spec != '\0') {
    if (parse_failure_policy(spec, s.policy)) {
      breaker_requested = true;  // naming a degraded mode arms the breaker
    } else {
      LDPLFS_LOG_WARN("LDPLFS_ON_FAILURE ignored: unknown policy '%s'", spec);
    }
  }
  if (const char* spec = std::getenv("LDPLFS_BREAKER");
      spec != nullptr && *spec != '\0') {
    std::string error;
    if (parse_breaker(spec, s.breaker)) {
      breaker_requested = true;
    } else {
      LDPLFS_LOG_WARN("LDPLFS_BREAKER ignored: %s", error.c_str());
    }
  }
  s.breaker.enabled = s.breaker.enabled || breaker_requested;
}

/// Longest registered root that owns `path`, else the default backend.
/// Caller holds s.mu.
Backend& backend_for_locked(State& s, const std::string& path) {
  if (!path.empty()) {
    for (const auto& backend : s.backends) {
      if (path_under(path, backend->root)) return *backend;
    }
  }
  return s.fallback;
}

void push_outcome_locked(State& s, Backend& b, bool failed) {
  const std::uint32_t window =
      std::clamp<std::uint32_t>(s.breaker.window, 1, kMaxWindow);
  if (b.ring.size() != window) {  // first op, or a test changed the config
    b.ring.assign(window, 0);
    b.ring_pos = 0;
    b.ring_count = 0;
    b.window_failures = 0;
  }
  if (b.ring_count == window) {
    b.window_failures -= static_cast<std::uint32_t>(b.ring[b.ring_pos]);
  } else {
    ++b.ring_count;
  }
  b.ring[b.ring_pos] = failed ? 1 : 0;
  if (failed) ++b.window_failures;
  b.ring_pos = (b.ring_pos + 1) % window;
}

void open_breaker_locked(Backend& b, int err, std::uint64_t now) {
  b.state = BreakerState::kOpen;
  b.sticky_errno = err != 0 ? err : EIO;
  b.opened_ns = now;
  b.probe_inflight = false;
  ++b.trips;
  stats::add(stats::Counter::kBreakerOpened);
  LDPLFS_LOG_WARN("backend %s: circuit breaker opened (errno=%d)",
                  b.root.c_str(), b.sticky_errno);
}

void close_breaker_locked(Backend& b) {
  b.state = BreakerState::kClosed;
  b.sticky_errno = 0;
  b.probe_inflight = false;
  // A fresh start: the window that tripped the breaker must not instantly
  // re-trip it on the first post-recovery failure.
  b.ring.clear();
  b.window_failures = 0;
  b.ring_pos = 0;
  b.ring_count = 0;
  stats::add(stats::Counter::kBreakerClosed);
  LDPLFS_LOG_WARN("backend %s: circuit breaker closed (recovered)",
                  b.root.c_str());
}

/// Move an expired open breaker to half-open. Caller holds s.mu.
void maybe_half_open_locked(State& s, Backend& b, std::uint64_t now) {
  if (b.state != BreakerState::kOpen) return;
  if (now - b.opened_ns < s.breaker.cooldown_ms * 1'000'000ULL) return;
  b.state = BreakerState::kHalfOpen;
  b.probe_inflight = false;
  stats::add(stats::Counter::kBreakerHalfOpen);
}

void fill_snapshot(const Backend& b, BackendSnapshot& out) {
  out.root = b.root;
  out.state = b.state;
  out.sticky_errno = b.sticky_errno;
  out.ops = b.ops;
  out.failures = b.failures;
  out.window_ops = b.ring_count;
  out.window_failures = b.window_failures;
  out.fast_fails = b.fast_fails;
  out.trips = b.trips;
  out.probes_ok = b.probes_ok;
  out.probes_failed = b.probes_failed;
  out.latency_sum_ns = b.latency_sum_ns;
}

}  // namespace

std::uint64_t now_ns() {
  struct timespec ts{};
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

bool parse_retry(const std::string& spec, RetryPolicy& out,
                 std::string* error) {
  const auto fields = split(spec, ',');
  if (fields.size() != 3) {
    return parse_fail(error, "expected attempts,base_ms,max_ms");
  }
  std::uint64_t attempts = 0;
  std::uint64_t base_ms = 0;
  std::uint64_t max_ms = 0;
  if (!parse_u64_field(fields[0], attempts) || attempts > 1000) {
    return parse_fail(error, "bad attempts value");
  }
  if (!parse_u64_field(fields[1], base_ms)) {
    return parse_fail(error, "bad base_ms value");
  }
  if (!parse_u64_field(fields[2], max_ms) || max_ms < base_ms) {
    return parse_fail(error, "bad max_ms value (must be >= base_ms)");
  }
  out.attempts = static_cast<int>(attempts);
  out.base_ms = base_ms;
  out.max_ms = max_ms;
  return true;
}

bool parse_failure_policy(const std::string& spec, FailurePolicy& out) {
  if (spec == "errors") {
    out = FailurePolicy::kErrors;
  } else if (spec == "readonly") {
    out = FailurePolicy::kReadonly;
  } else if (spec == "passthrough") {
    out = FailurePolicy::kPassthrough;
  } else {
    return false;
  }
  return true;
}

bool parse_breaker(const std::string& spec, BreakerConfig& out,
                   std::string* error) {
  const auto fields = split(spec, ',');
  if (fields.size() != 3) {
    return parse_fail(error, "expected threshold,window,cooldown_ms");
  }
  std::uint64_t threshold = 0;
  std::uint64_t window = 0;
  std::uint64_t cooldown = 0;
  if (!parse_u64_field(fields[0], threshold) || threshold == 0) {
    return parse_fail(error, "bad threshold value");
  }
  if (!parse_u64_field(fields[1], window) || window == 0 ||
      window > kMaxWindow || window < threshold) {
    return parse_fail(error, "bad window value (threshold..4096)");
  }
  if (!parse_u64_field(fields[2], cooldown)) {
    return parse_fail(error, "bad cooldown_ms value");
  }
  out.enabled = true;
  out.threshold = static_cast<std::uint32_t>(threshold);
  out.window = static_cast<std::uint32_t>(window);
  out.cooldown_ms = cooldown;
  return true;
}

RetryPolicy retry_policy() {
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  return s.retry;
}

FailurePolicy failure_policy() {
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  return s.policy;
}

BreakerConfig breaker_config() {
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  return s.breaker;
}

void set_retry_policy(const RetryPolicy& policy) {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.latched = true;  // explicit install: the environment must not overwrite
  s.retry = policy;
}

void set_failure_policy(FailurePolicy policy) {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.latched = true;
  s.policy = policy;
}

void set_breaker_config(const BreakerConfig& config) {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.latched = true;
  s.breaker = config;
}

std::uint64_t next_backoff_ms(std::uint64_t prev_ms) {
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  const std::uint64_t base = s.retry.base_ms;
  if (prev_ms == 0 || base >= s.retry.max_ms) {
    return std::min(base, s.retry.max_ms);
  }
  // Decorrelated jitter: uniform in [base, min(max, 3 * prev)]. Spreads
  // herd retries apart while still growing toward the ceiling.
  const std::uint64_t hi =
      std::min(s.retry.max_ms, std::max(base, 3 * prev_ms));
  if (hi <= base) return base;
  return s.rng.range(base, hi);
}

void register_backend(const std::string& root) {
  State& s = state();
  std::lock_guard lock(s.mu);
  for (const auto& backend : s.backends) {
    if (backend->root == root) return;
  }
  s.backends.push_back(std::make_unique<Backend>(root));
  // Longest root first so nested mounts attribute to the innermost backend.
  std::sort(s.backends.begin(), s.backends.end(),
            [](const auto& a, const auto& b) {
              return a->root.size() > b->root.size();
            });
}

void record(const std::string& path, OpClass cls, int err,
            std::uint64_t latency_ns) {
  (void)cls;
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  Backend& b = backend_for_locked(s, path);
  const bool failed = err != 0;
  ++b.ops;
  b.latency_sum_ns += latency_ns;
  if (failed) ++b.failures;
  push_outcome_locked(s, b, failed);
  if (!s.breaker.enabled) return;
  const std::uint64_t now = now_ns();
  switch (b.state) {
    case BreakerState::kClosed:
      if (b.window_failures >= s.breaker.threshold) {
        open_breaker_locked(b, err, now);
      }
      break;
    case BreakerState::kHalfOpen:
      // The first outcome recorded while half-open decides — normally the
      // admitted probe, but any concurrent readonly-mode read that lands
      // first is just as much evidence about the backend.
      if (failed) {
        ++b.probes_failed;
        stats::add(stats::Counter::kBreakerProbeFail);
        open_breaker_locked(b, err, now);
      } else {
        ++b.probes_ok;
        stats::add(stats::Counter::kBreakerProbeOk);
        close_breaker_locked(b);
      }
      break;
    case BreakerState::kOpen:
      break;  // e.g. readonly-mode reads; outcomes feed the window only
  }
}

int admit(const std::string& path, OpClass cls) {
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  if (!s.breaker.enabled) return 0;
  Backend& b = backend_for_locked(s, path);
  if (b.state == BreakerState::kClosed) return 0;
  const std::uint64_t now = now_ns();
  maybe_half_open_locked(s, b, now);
  if (b.state == BreakerState::kHalfOpen) {
    // One probe at a time; a probe whose stream died without recording an
    // outcome expires after another cooldown so recovery cannot wedge.
    const bool probe_expired =
        b.probe_inflight &&
        now - b.probe_started_ns > s.breaker.cooldown_ms * 1'000'000ULL;
    if (!b.probe_inflight || probe_expired) {
      b.probe_inflight = true;
      b.probe_started_ns = now;
      return 0;
    }
  }
  if (s.policy == FailurePolicy::kReadonly && cls == OpClass::kRead) {
    return 0;  // reads keep flowing in the degraded mode
  }
  ++b.fast_fails;
  stats::add(stats::Counter::kBreakerFastFail);
  if (s.policy == FailurePolicy::kReadonly) return EROFS;
  return b.sticky_errno != 0 ? b.sticky_errno : EIO;
}

bool bypass_open(const std::string& path) {
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  if (!s.breaker.enabled || s.policy != FailurePolicy::kPassthrough) {
    return false;
  }
  Backend& b = backend_for_locked(s, path);
  if (b.state == BreakerState::kClosed) return false;
  maybe_half_open_locked(s, b, now_ns());
  // Half-open: let opens route into PLFS again so a probe can run; the
  // admission check on the first posix op decides.
  return b.state == BreakerState::kOpen;
}

void trip(const std::string& path, int err) {
  State& s = state();
  std::lock_guard lock(s.mu);
  latch_env_locked(s);
  Backend& b = backend_for_locked(s, path);
  ++b.ops;
  ++b.failures;
  push_outcome_locked(s, b, /*failed=*/true);
  if (!s.breaker.enabled) return;
  if (b.state != BreakerState::kOpen) {
    open_breaker_locked(b, err, now_ns());
  }
}

std::vector<BackendSnapshot> snapshot() {
  State& s = state();
  std::lock_guard lock(s.mu);
  std::vector<BackendSnapshot> out;
  out.reserve(s.backends.size() + 1);
  for (const auto& backend : s.backends) {
    fill_snapshot(*backend, out.emplace_back());
  }
  if (s.fallback.ops > 0 || s.fallback.fast_fails > 0) {
    fill_snapshot(s.fallback, out.emplace_back());
  }
  return out;
}

void reset() {
  State& s = state();
  std::lock_guard lock(s.mu);
  s.latched = true;  // pin defaults; tests configure via the setters
  s.retry = RetryPolicy{};
  s.policy = FailurePolicy::kErrors;
  s.breaker = BreakerConfig{};
  s.backends.clear();
  s.fallback = Backend{std::string("*")};
}

const char* state_name(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

const char* policy_name(FailurePolicy policy) {
  switch (policy) {
    case FailurePolicy::kErrors: return "errors";
    case FailurePolicy::kReadonly: return "readonly";
    case FailurePolicy::kPassthrough: return "passthrough";
  }
  return "?";
}

}  // namespace ldplfs::health
