// Backend resilience engine: per-mount health tracking, the configurable
// transient-retry policy, and a circuit breaker with policy-selectable
// degraded modes.
//
// Every posix-helper outcome (src/posix/fd.cpp) is recorded here against the
// backend that owns the path — sliding-window success/failure counts plus
// latency accounting — and, when the breaker is enabled, the same window
// drives a closed → open → half-open state machine:
//
//   closed     normal operation. When the failures inside the sliding window
//              reach the threshold the breaker trips: state becomes open and
//              the tripping errno becomes *sticky*.
//   open       ops fail fast (no syscall, no retry budget) according to the
//              failure policy below. After cooldown_ms the breaker moves to
//              half-open on the next admission check.
//   half-open  exactly one op is admitted as a *probe*; everything else
//              keeps failing fast. The probe's outcome decides: success
//              closes the breaker (full service restored), failure re-opens
//              it and restarts the cooldown clock.
//
// What "fail fast" means is selected by LDPLFS_ON_FAILURE:
//
//   errors       (default) every op on the backend fails with the sticky
//                errno of the failure that tripped the breaker.
//   readonly     writes (and metadata mutations) fail with EROFS; reads keep
//                working — cached indexes and already-written droppings stay
//                readable, so a full backend that can still serve reads
//                degrades instead of dying.
//   passthrough  like errors at the posix layer, but the router additionally
//                stops routing *new opens* into PLFS while the breaker is
//                open — the application falls through to the real filesystem
//                call, trading PLFS semantics for availability.
//
// The breaker is off unless LDPLFS_ON_FAILURE or LDPLFS_BREAKER is set (or a
// test installs a config): plain fault-injection runs keep their exact
// historical semantics. Health *tracking* is always on; it costs one small
// critical section per posix-helper outcome and feeds plfs_health().
//
// Retry policy (used by the posix helpers, configured here so the breaker
// and the retry loops share one definition): LDPLFS_RETRY=attempts,base_ms,
// max_ms. A transient failure (EAGAIN/EWOULDBLOCK/EIO) is retried up to
// `attempts` times with decorrelated-jitter backoff: the first sleep is
// base_ms, each later sleep is uniform in [base_ms, min(max_ms, 3*prev)].
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace ldplfs::health {

/// Coarse op classes for admission decisions. Reads stay allowed in
/// readonly degraded mode; writes and metadata mutations do not.
enum class OpClass { kRead, kWrite };

enum class BreakerState { kClosed, kOpen, kHalfOpen };

enum class FailurePolicy { kErrors, kReadonly, kPassthrough };

/// Transient-retry policy (LDPLFS_RETRY=attempts,base_ms,max_ms).
struct RetryPolicy {
  int attempts = 4;            // retries after the first try
  std::uint64_t base_ms = 1;   // first backoff sleep
  std::uint64_t max_ms = 8;    // backoff ceiling
};

/// Breaker tuning (LDPLFS_BREAKER=threshold,window,cooldown_ms).
struct BreakerConfig {
  bool enabled = false;
  std::uint32_t threshold = 8;       // window failures that trip
  std::uint32_t window = 32;         // sliding window size (op outcomes)
  std::uint64_t cooldown_ms = 1000;  // open -> half-open delay
};

/// One backend's view for plfs_health() / diagnostics.
struct BackendSnapshot {
  std::string root;            // registered mount root ("*" = unmatched)
  BreakerState state = BreakerState::kClosed;
  int sticky_errno = 0;        // errno that tripped the breaker, 0 if closed
  std::uint64_t ops = 0;       // outcomes recorded (lifetime)
  std::uint64_t failures = 0;  // failed outcomes (lifetime)
  std::uint64_t window_ops = 0;       // outcomes in the sliding window
  std::uint64_t window_failures = 0;  // failures in the sliding window
  std::uint64_t fast_fails = 0;  // ops rejected without touching the backend
  std::uint64_t trips = 0;       // closed/half-open -> open transitions
  std::uint64_t probes_ok = 0;   // half-open probes that closed the breaker
  std::uint64_t probes_failed = 0;  // half-open probes that re-opened it
  std::uint64_t latency_sum_ns = 0;  // total recorded op latency
};

/// Parse "attempts,base_ms,max_ms". Returns false (out untouched) on a
/// malformed spec; *error gets a diagnostic when non-null.
bool parse_retry(const std::string& spec, RetryPolicy& out,
                 std::string* error = nullptr);
/// Parse "errors" | "readonly" | "passthrough".
bool parse_failure_policy(const std::string& spec, FailurePolicy& out);
/// Parse "threshold,window,cooldown_ms" (threshold <= window, both > 0).
bool parse_breaker(const std::string& spec, BreakerConfig& out,
                   std::string* error = nullptr);

/// Active policies. Latched from the environment on first use.
RetryPolicy retry_policy();
FailurePolicy failure_policy();
BreakerConfig breaker_config();

/// Test/embedding overrides (take precedence over the environment).
void set_retry_policy(const RetryPolicy& policy);
void set_failure_policy(FailurePolicy policy);
void set_breaker_config(const BreakerConfig& config);

/// Next decorrelated-jitter backoff sleep: base_ms for the first retry
/// (prev_ms == 0), then uniform in [base_ms, min(max_ms, 3 * prev_ms)].
std::uint64_t next_backoff_ms(std::uint64_t prev_ms);

/// Register a mount root as a tracked backend (idempotent). Paths that match
/// no registered root are attributed to a shared default backend, so
/// library-only use (no mount table) still gets tracking and a breaker.
void register_backend(const std::string& root);

/// Record one posix-helper outcome for the backend owning `path`
/// (err == 0 means success). Feeds the window and, when the breaker is
/// enabled, drives the state machine — including deciding a half-open probe.
void record(const std::string& path, OpClass cls, int err,
            std::uint64_t latency_ns);

/// Admission check before touching the backend. Returns 0 to proceed (also
/// when the op is elected as the half-open probe) or the errno to fail fast
/// with — the sticky errno, or EROFS for writes under the readonly policy.
int admit(const std::string& path, OpClass cls);

/// True when the router should route an open() around PLFS entirely:
/// passthrough policy and the backend's breaker is open. Half-open admits
/// opens back into PLFS so a probe can run.
bool bypass_open(const std::string& path);

/// Force the backend's breaker open with `err` as the sticky errno (used by
/// the flush-deadline watchdog). No-op when the breaker is disabled.
void trip(const std::string& path, int err);

/// Snapshot every tracked backend (registered roots plus the default
/// backend once it has recorded at least one op).
std::vector<BackendSnapshot> snapshot();

/// Monotonic nanoseconds, independent of the stats facility (available even
/// under LDPLFS_NO_STATS — the breaker clock must always run).
std::uint64_t now_ns();

/// Tests: drop all backend state and overrides, restore default policies.
/// The environment is NOT re-read after a reset — tests stay deterministic.
void reset();

const char* state_name(BreakerState state);
const char* policy_name(FailurePolicy policy);

}  // namespace ldplfs::health
