#include "common/logging.hpp"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace ldplfs {
namespace {

LogLevel level_from_env() {
  const char* env = std::getenv("LDPLFS_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kWarn;
}

std::atomic<int>& threshold_storage() {
  static std::atomic<int> threshold{static_cast<int>(level_from_env())};
  return threshold;
}

const char* level_tag(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
  }
  return "?????";
}

}  // namespace

LogLevel log_threshold() {
  return static_cast<LogLevel>(threshold_storage().load(std::memory_order_relaxed));
}

void set_log_threshold(LogLevel level) {
  threshold_storage().store(static_cast<int>(level), std::memory_order_relaxed);
}

void log_message(LogLevel level, const char* fmt, ...) {
  if (static_cast<int>(level) >
      threshold_storage().load(std::memory_order_relaxed)) {
    return;
  }
  char buf[1024];
  int off = std::snprintf(buf, sizeof buf, "[ldplfs %s] ", level_tag(level));
  if (off < 0) return;
  va_list args;
  va_start(args, fmt);
  int body = std::vsnprintf(buf + off, sizeof buf - static_cast<size_t>(off) - 1,
                            fmt, args);
  va_end(args);
  if (body < 0) return;
  size_t len = static_cast<size_t>(off) +
               std::min(static_cast<size_t>(body),
                        sizeof buf - static_cast<size_t>(off) - 1);
  buf[len++] = '\n';
  // Single write keeps messages atomic across threads for typical sizes.
  [[maybe_unused]] ssize_t rc = ::write(STDERR_FILENO, buf, len);
}

}  // namespace ldplfs
