// Fixed-size thread pool shared by the parallel read engine and the
// write-behind flush engine.
//
// One process-wide pool (ThreadPool::shared()) is sized by LDPLFS_THREADS at
// first use: unset or empty means hardware_concurrency, 0 disables the pool
// entirely (every task runs inline on the submitting thread). There is no
// work stealing and no task priorities — the submitted tasks are coarse
// (one per data dropping on reads, one aggregation buffer on writes) and
// complete in one hop, so a plain mutex-protected queue is both sufficient
// and easy to reason about under TSan.
//
// TaskGroup is the fork/join companion: submit a batch of tasks against a
// pool, then wait() for all of them. Tasks must not submit to the same
// group they run under (no nesting), which no engine does. The write-behind
// engine does not use TaskGroup — it joins through its own one-slot
// double-buffer handshake (WriteFile::FlushSlot), since it needs the flush
// *result*, not just completion.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ldplfs {

class ThreadPool {
 public:
  /// Spawn `threads` workers. 0 makes submit() run tasks inline.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `task`; runs it inline when the pool has no workers.
  void submit(std::function<void()> task);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// True once the destructor has begun: workers are draining the queue so
  /// the process can exit. Best-effort background tasks (e.g. auto-flatten
  /// compaction) should check this and bail — other static state may be
  /// mid-destruction.
  [[nodiscard]] bool stopping() {
    std::lock_guard lock(mu_);
    return stop_;
  }

  /// Process-wide pool, created on first use with env_threads() workers.
  /// Fork-safe: an atfork handler holds the queue lock across fork() and
  /// the child discards the parent's queue and respawns workers on its
  /// first submit. Tasks *running* at fork time are abandoned in the child,
  /// so callers must not fork with work in flight.
  static ThreadPool& shared();

  /// Parse LDPLFS_THREADS: unset/empty → hardware_concurrency (min 1),
  /// "0" → 0 (serial), otherwise the numeric value (clamped to 256).
  static unsigned env_threads();

 private:
  void worker_loop();
  /// atfork child handler body: drop inherited queue/threads, arm respawn.
  void handle_fork_child();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
  unsigned respawn_ = 0;  // worker count to restore after fork(), else 0
};

/// Fork/join helper over a ThreadPool: run() submits, wait() blocks until
/// every submitted task has finished. Reusable after wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
};

}  // namespace ldplfs
