// Fixed-size thread pool used by the parallel read engine.
//
// One process-wide pool (ThreadPool::shared()) is sized by LDPLFS_THREADS at
// first use: unset or empty means hardware_concurrency, 0 disables the pool
// entirely (every task runs inline on the submitting thread). There is no
// work stealing and no task priorities — read batches are coarse (one per
// data dropping) and complete in one hop, so a plain mutex-protected queue
// is both sufficient and easy to reason about under TSan.
//
// TaskGroup is the fork/join companion: submit a batch of tasks against a
// pool, then wait() for all of them. Tasks must not submit to the same
// group they run under (no nesting), which the read path never does.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace ldplfs {

class ThreadPool {
 public:
  /// Spawn `threads` workers. 0 makes submit() run tasks inline.
  explicit ThreadPool(unsigned threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue `task`; runs it inline when the pool has no workers.
  void submit(std::function<void()> task);

  [[nodiscard]] unsigned size() const {
    return static_cast<unsigned>(workers_.size());
  }

  /// Process-wide pool, created on first use with env_threads() workers.
  static ThreadPool& shared();

  /// Parse LDPLFS_THREADS: unset/empty → hardware_concurrency (min 1),
  /// "0" → 0 (serial), otherwise the numeric value (clamped to 256).
  static unsigned env_threads();

 private:
  void worker_loop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

/// Fork/join helper over a ThreadPool: run() submits, wait() blocks until
/// every submitted task has finished. Reusable after wait().
class TaskGroup {
 public:
  explicit TaskGroup(ThreadPool& pool) : pool_(pool) {}
  ~TaskGroup() { wait(); }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  void run(std::function<void()> task);
  void wait();

 private:
  ThreadPool& pool_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::size_t pending_ = 0;
};

}  // namespace ldplfs
