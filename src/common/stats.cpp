#include "common/stats.hpp"

#include <bit>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <memory>
#include <mutex>
#include <vector>

#include <unistd.h>

namespace ldplfs::stats {

namespace {

constexpr const char* kCounterNames[] = {
#define X(sym, str) str,
    LDPLFS_STATS_COUNTERS(X)
#undef X
};

constexpr const char* kHistogramNames[] = {
#define X(sym, str) str,
    LDPLFS_STATS_HISTOGRAMS(X)
#undef X
};

static_assert(sizeof(kCounterNames) / sizeof(kCounterNames[0]) ==
              kCounterCount);
static_assert(sizeof(kHistogramNames) / sizeof(kHistogramNames[0]) ==
              kHistogramCount);

}  // namespace

const char* name(Counter c) {
  return kCounterNames[static_cast<std::size_t>(c)];
}

const char* name(Histogram h) {
  return kHistogramNames[static_cast<std::size_t>(h)];
}

std::size_t bucket_for(std::uint64_t nanos) {
  if (nanos == 0) return 0;
  const std::size_t b = static_cast<std::size_t>(std::bit_width(nanos));
  return b < kHistogramBuckets ? b : kHistogramBuckets - 1;
}

std::uint64_t bucket_upper_ns(std::size_t bucket) {
  if (bucket == 0) return 0;
  if (bucket >= kHistogramBuckets - 1) return ~std::uint64_t{0};
  return (std::uint64_t{1} << bucket) - 1;
}

std::uint64_t HistogramSnapshot::percentile_ns(double q) const {
  if (count == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the q-quantile sample, 1-based; walk buckets until reached.
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    seen += buckets[i];
    if (seen >= rank) {
      const std::uint64_t upper = bucket_upper_ns(i);
      return upper < max_ns ? upper : max_ns;
    }
  }
  return max_ns;
}

Snapshot Snapshot::since(const Snapshot& before) const {
  Snapshot delta;
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    delta.counters[i] = counters[i] - before.counters[i];
  }
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const auto& now_h = histograms[i];
    const auto& then_h = before.histograms[i];
    auto& d = delta.histograms[i];
    d.count = now_h.count - then_h.count;
    d.sum_ns = now_h.sum_ns - then_h.sum_ns;
    d.max_ns = now_h.max_ns;  // max is not subtractable; keep the later max
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      d.buckets[b] = now_h.buckets[b] - then_h.buckets[b];
    }
  }
  return delta;
}

#ifndef LDPLFS_NO_STATS

namespace {

// One thread's slice of the registry. The owning thread is the only writer,
// so updates are relaxed load+store (no RMW); any thread may read concurrently
// (snapshot) and observes each cell atomically.
struct Shard {
  std::array<std::atomic<std::uint64_t>, kCounterCount> counters{};
  struct Hist {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum_ns{0};
    std::atomic<std::uint64_t> max_ns{0};
    std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  };
  std::array<Hist, kHistogramCount> histograms{};

  void merge_into(Snapshot& out) const {
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      out.counters[i] += counters[i].load(std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kHistogramCount; ++i) {
      const Hist& h = histograms[i];
      auto& o = out.histograms[i];
      o.count += h.count.load(std::memory_order_relaxed);
      o.sum_ns += h.sum_ns.load(std::memory_order_relaxed);
      const std::uint64_t m = h.max_ns.load(std::memory_order_relaxed);
      if (m > o.max_ns) o.max_ns = m;
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        o.buckets[b] += h.buckets[b].load(std::memory_order_relaxed);
      }
    }
  }

  void zero() {
    for (auto& c : counters) c.store(0, std::memory_order_relaxed);
    for (auto& h : histograms) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum_ns.store(0, std::memory_order_relaxed);
      h.max_ns.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }
};

// Registry of live shards plus the accumulator for exited threads. Kept in a
// leaky heap singleton so stats survive static-destruction order: the atexit
// dump and late TLS destructors may run after file-scope statics are gone.
struct Registry {
  std::mutex mu;
  std::vector<std::shared_ptr<Shard>> shards;
  Shard retired;  // folded-in shards of exited threads
  std::string dump_destination;
  bool dump_installed = false;
};

Registry& registry() {
  static Registry* r = new Registry();  // intentionally leaked
  return *r;
}

// Thread-exit hook: fold this thread's shard into the retired accumulator so
// its samples survive, and drop it from the live list.
struct ShardHolder {
  std::shared_ptr<Shard> shard;

  ShardHolder() : shard(std::make_shared<Shard>()) {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.shards.push_back(shard);
  }

  ~ShardHolder() {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    // fetch_add into retired: several threads may exit concurrently, and the
    // snapshot path reads retired outside this thread's ownership.
    for (std::size_t i = 0; i < kCounterCount; ++i) {
      const std::uint64_t v = shard->counters[i].load(std::memory_order_relaxed);
      if (v) r.retired.counters[i].fetch_add(v, std::memory_order_relaxed);
    }
    for (std::size_t i = 0; i < kHistogramCount; ++i) {
      const auto& h = shard->histograms[i];
      auto& d = r.retired.histograms[i];
      const std::uint64_t cnt = h.count.load(std::memory_order_relaxed);
      if (cnt) {
        d.count.fetch_add(cnt, std::memory_order_relaxed);
        d.sum_ns.fetch_add(h.sum_ns.load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
        const std::uint64_t m = h.max_ns.load(std::memory_order_relaxed);
        std::uint64_t cur = d.max_ns.load(std::memory_order_relaxed);
        while (m > cur && !d.max_ns.compare_exchange_weak(
                              cur, m, std::memory_order_relaxed)) {
        }
        for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
          const std::uint64_t bv = h.buckets[b].load(std::memory_order_relaxed);
          if (bv) d.buckets[b].fetch_add(bv, std::memory_order_relaxed);
        }
      }
    }
    for (auto it = r.shards.begin(); it != r.shards.end(); ++it) {
      if (it->get() == shard.get()) {
        r.shards.erase(it);
        break;
      }
    }
  }
};

Shard& my_shard() {
  thread_local ShardHolder holder;
  return *holder.shard;
}

void atexit_dump() { dump_now(); }

// Serialising a dump allocates, which is not async-signal-safe — so the
// handler only raises this flag. The next instrumented operation (add or
// record) notices it and writes the dump from ordinary thread context.
std::atomic<bool> g_dump_requested{false};

void sigusr1_dump(int) {
  g_dump_requested.store(true, std::memory_order_relaxed);
}

}  // namespace

namespace detail {

std::atomic<int> g_mode{-1};

std::uint64_t now_ns() {
  struct timespec ts;
  ::clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(ts.tv_nsec);
}

bool enabled_slow() {
  // Latch LDPLFS_STATS exactly once. Racing threads may both read the env,
  // but they compute the same answer; first store wins and the value never
  // changes afterwards (force_enable excepted).
  const char* env = std::getenv("LDPLFS_STATS");
  const bool on = env != nullptr && env[0] != '\0' &&
                  !(env[0] == '0' && env[1] == '\0');
  int expected = -1;
  if (g_mode.compare_exchange_strong(expected, on ? 1 : 0,
                                     std::memory_order_relaxed)) {
    if (on) configure_dump(env);
  }
  return g_mode.load(std::memory_order_relaxed) != 0;
}

// Serve a pending SIGUSR1 dump request from safe (non-signal) context.
// One relaxed load per enabled op; the exchange settles races between
// threads so only one of them writes the dump.
void maybe_service_dump() {
  if (g_dump_requested.load(std::memory_order_relaxed) &&
      g_dump_requested.exchange(false, std::memory_order_relaxed)) {
    dump_now();
  }
}

void add_slow(Counter c, std::uint64_t delta) {
  maybe_service_dump();
  auto& cell = my_shard().counters[static_cast<std::size_t>(c)];
  cell.store(cell.load(std::memory_order_relaxed) + delta,
             std::memory_order_relaxed);
}

void record_slow(Histogram h, std::uint64_t nanos) {
  maybe_service_dump();
  auto& hist = my_shard().histograms[static_cast<std::size_t>(h)];
  hist.count.store(hist.count.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
  hist.sum_ns.store(hist.sum_ns.load(std::memory_order_relaxed) + nanos,
                    std::memory_order_relaxed);
  if (nanos > hist.max_ns.load(std::memory_order_relaxed)) {
    hist.max_ns.store(nanos, std::memory_order_relaxed);
  }
  auto& bucket = hist.buckets[bucket_for(nanos)];
  bucket.store(bucket.load(std::memory_order_relaxed) + 1,
               std::memory_order_relaxed);
}

}  // namespace detail

void force_enable(bool on) {
  detail::g_mode.store(on ? 1 : 0, std::memory_order_relaxed);
}

Snapshot snapshot() {
  Snapshot out;
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& shard : r.shards) shard->merge_into(out);
  r.retired.merge_into(out);
  return out;
}

void reset() {
  Registry& r = registry();
  std::lock_guard<std::mutex> lock(r.mu);
  for (const auto& shard : r.shards) shard->zero();
  r.retired.zero();
}

std::string to_json(const Snapshot& snap) {
  std::string out;
  out.reserve(8192);
  char buf[64];
  out += "{\n  \"pid\": ";
  std::snprintf(buf, sizeof(buf), "%ld", static_cast<long>(::getpid()));
  out += buf;
  out += ",\n  \"counters\": {\n";
  for (std::size_t i = 0; i < kCounterCount; ++i) {
    out += "    \"";
    out += kCounterNames[i];
    out += "\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(snap.counters[i]));
    out += buf;
    out += (i + 1 < kCounterCount) ? ",\n" : "\n";
  }
  out += "  },\n  \"histograms\": {\n";
  for (std::size_t i = 0; i < kHistogramCount; ++i) {
    const auto& h = snap.histograms[i];
    out += "    \"";
    out += kHistogramNames[i];
    out += "\": {\"count\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(h.count));
    out += buf;
    out += ", \"sum_ns\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(h.sum_ns));
    out += buf;
    out += ", \"max_ns\": ";
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(h.max_ns));
    out += buf;
    out += ", \"buckets\": [";
    // Trailing zero buckets are elided to keep dumps small; ldp-stats and
    // the parser treat missing buckets as zero.
    std::size_t last = kHistogramBuckets;
    while (last > 0 && h.buckets[last - 1] == 0) --last;
    for (std::size_t b = 0; b < last; ++b) {
      if (b) out += ", ";
      std::snprintf(buf, sizeof(buf), "%llu",
                    static_cast<unsigned long long>(h.buckets[b]));
      out += buf;
    }
    out += "]}";
    out += (i + 1 < kHistogramCount) ? ",\n" : "\n";
  }
  out += "  }\n}\n";
  return out;
}

void configure_dump(const std::string& destination) {
  Registry& r = registry();
  bool install = false;
  {
    std::lock_guard<std::mutex> lock(r.mu);
    r.dump_destination = destination;
    if (!r.dump_installed) {
      r.dump_installed = true;
      install = true;
    }
  }
  if (install) {
    std::atexit(atexit_dump);
    struct sigaction sa;
    std::memset(&sa, 0, sizeof(sa));
    sa.sa_handler = sigusr1_dump;
    ::sigemptyset(&sa.sa_mask);
    sa.sa_flags = SA_RESTART;
    ::sigaction(SIGUSR1, &sa, nullptr);
  }
}

void dump_now() {
  std::string dest;
  {
    Registry& r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    dest = r.dump_destination;
  }
  if (dest.empty()) return;
  const std::string json = to_json(snapshot());
  if (dest == "stderr") {
    std::fwrite(json.data(), 1, json.size(), stderr);
    std::fflush(stderr);
    return;
  }
  std::FILE* f = std::fopen(dest.c_str(), "w");
  if (f == nullptr) return;  // silent: diagnostics must never break the app
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
}

#else  // LDPLFS_NO_STATS

std::string to_json(const Snapshot&) { return "{}\n"; }

#endif  // LDPLFS_NO_STATS

}  // namespace ldplfs::stats
