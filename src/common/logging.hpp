// Tiny leveled logger. The preload shim logs from inside interposed libc
// calls, so this writes directly with write(2) on a pre-formatted buffer —
// no iostreams, no allocation after setup, no locale machinery.
#pragma once

#include <cstdarg>

namespace ldplfs {

enum class LogLevel : int { kError = 0, kWarn = 1, kInfo = 2, kDebug = 3 };

/// Global threshold; messages above it are dropped. Initialised from the
/// LDPLFS_LOG environment variable ("error", "warn", "info", "debug") on
/// first use.
LogLevel log_threshold();
void set_log_threshold(LogLevel level);

/// printf-style log statement. Thread-safe (single write(2) per message).
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define LDPLFS_LOG_ERROR(...) \
  ::ldplfs::log_message(::ldplfs::LogLevel::kError, __VA_ARGS__)
#define LDPLFS_LOG_WARN(...) \
  ::ldplfs::log_message(::ldplfs::LogLevel::kWarn, __VA_ARGS__)
#define LDPLFS_LOG_INFO(...) \
  ::ldplfs::log_message(::ldplfs::LogLevel::kInfo, __VA_ARGS__)
#define LDPLFS_LOG_DEBUG(...) \
  ::ldplfs::log_message(::ldplfs::LogLevel::kDebug, __VA_ARGS__)

}  // namespace ldplfs
