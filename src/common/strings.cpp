#include "common/strings.hpp"

#include <cctype>
#include <cstdlib>

namespace ldplfs {

std::vector<std::string> split(std::string_view text, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(text.substr(start));
      return out;
    }
    out.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_nonempty(std::string_view text, char sep) {
  std::vector<std::string> out;
  for (auto& part : split(text, sep)) {
    if (!part.empty()) out.push_back(std::move(part));
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool starts_with(std::string_view text, std::string_view prefix) {
  return text.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view text, std::string_view suffix) {
  return text.size() >= suffix.size() &&
         text.substr(text.size() - suffix.size()) == suffix;
}

std::string_view trim(std::string_view text) {
  std::size_t begin = 0;
  std::size_t end = text.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

long long parse_ll(std::string_view text) {
  text = trim(text);
  if (text.empty()) return -1;
  long long value = 0;
  for (char c : text) {
    if (!std::isdigit(static_cast<unsigned char>(c))) return -1;
    value = value * 10 + (c - '0');
  }
  return value;
}

}  // namespace ldplfs
