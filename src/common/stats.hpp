// Op-level observability registry (LDPLFS_STATS) — the measurement substrate
// the paper's evaluation presupposes: per-operation counters and latency
// histograms for every layer of the shim, cheap enough to leave compiled in.
//
// Design:
//   * Counters and histograms are fixed enums (see the X-macro tables below)
//     so a hot-path update is an array index, never a string lookup.
//   * Each thread owns a *shard* of relaxed atomics. The owning thread is the
//     only writer (plain relaxed load/store, no RMW on the hot path); readers
//     merge every live shard plus the retired-thread accumulator under the
//     registry mutex. A thread that exits folds its shard into the retired
//     accumulator, so no sample is ever lost.
//   * Histograms bucket latencies by log2(nanoseconds): bucket 0 holds 0 ns,
//     bucket i holds [2^(i-1), 2^i). 40 buckets cover ~9 minutes.
//   * Everything is gated by enabled(): one relaxed atomic load on the hot
//     path when the facility is off. LDPLFS_STATS is latched on first use;
//     any non-empty value other than "0" enables collection and names the
//     dump destination ("stderr" or a file path), written at process exit
//     and on SIGUSR1. Tests and benches can flip collection on without
//     installing dumps via force_enable().
//   * Defining LDPLFS_NO_STATS compiles every entry point to a true no-op
//     (for shops that want the instrumentation gone rather than gated).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string>

namespace ldplfs::stats {

// X-macro table: enum symbol, dump name. Dump names are stable interface —
// ldp-stats, BENCH_micro.json and the docs all key on them.
#define LDPLFS_STATS_COUNTERS(X)                                \
  X(kRouterOpenRouted, "router.open.routed")                    \
  X(kRouterOpenPassthrough, "router.open.passthrough")          \
  X(kRouterCloseRouted, "router.close.routed")                  \
  X(kRouterClosePassthrough, "router.close.passthrough")        \
  X(kRouterReadRouted, "router.read.routed")                    \
  X(kRouterReadPassthrough, "router.read.passthrough")          \
  X(kRouterWriteRouted, "router.write.routed")                  \
  X(kRouterWritePassthrough, "router.write.passthrough")        \
  X(kRouterPreadRouted, "router.pread.routed")                  \
  X(kRouterPreadPassthrough, "router.pread.passthrough")        \
  X(kRouterPwriteRouted, "router.pwrite.routed")                \
  X(kRouterPwritePassthrough, "router.pwrite.passthrough")      \
  X(kRouterReadvRouted, "router.readv.routed")                  \
  X(kRouterReadvPassthrough, "router.readv.passthrough")        \
  X(kRouterWritevRouted, "router.writev.routed")                \
  X(kRouterWritevPassthrough, "router.writev.passthrough")      \
  X(kRouterPreadvRouted, "router.preadv.routed")                \
  X(kRouterPreadvPassthrough, "router.preadv.passthrough")      \
  X(kRouterPwritevRouted, "router.pwritev.routed")              \
  X(kRouterPwritevPassthrough, "router.pwritev.passthrough")    \
  X(kRouterLseekRouted, "router.lseek.routed")                  \
  X(kRouterLseekPassthrough, "router.lseek.passthrough")        \
  X(kRouterSyncRouted, "router.sync.routed")                    \
  X(kRouterSyncPassthrough, "router.sync.passthrough")          \
  X(kRouterStatRouted, "router.stat.routed")                    \
  X(kRouterStatPassthrough, "router.stat.passthrough")          \
  X(kRouterMetaRouted, "router.meta.routed")                    \
  X(kRouterMetaPassthrough, "router.meta.passthrough")          \
  X(kRouterReadBytes, "router.read.bytes")                      \
  X(kRouterWriteBytes, "router.write.bytes")                    \
  X(kPlfsHandleOpened, "plfs.handle.opened")                    \
  X(kPlfsHandleClosed, "plfs.handle.closed")                    \
  X(kPlfsWriterOpened, "plfs.writer.opened")                    \
  X(kPlfsWriterClosed, "plfs.writer.closed")                    \
  X(kPlfsIndexMerges, "plfs.index.merges")                      \
  X(kPlfsDroppingsOpened, "plfs.droppings.opened")              \
  X(kSieveReads, "sieve.reads")                                 \
  X(kSieveDirectReads, "sieve.reads.direct")                    \
  X(kSieveBytesRead, "sieve.bytes.read")                        \
  X(kSieveBytesDelivered, "sieve.bytes.delivered")              \
  X(kSieveHoleBytes, "sieve.holes.bytes")                       \
  X(kCacheIndexHit, "cache.index.hit")                          \
  X(kCacheIndexMiss, "cache.index.miss")                        \
  X(kCacheIndexInvalidation, "cache.index.invalidation")        \
  X(kCacheFdHit, "cache.fd.hit")                                \
  X(kCacheFdMiss, "cache.fd.miss")                              \
  X(kCacheFdEviction, "cache.fd.eviction")                      \
  X(kPoolSubmitted, "pool.tasks.submitted")                     \
  X(kPoolInline, "pool.tasks.inline")                           \
  X(kPoolCompleted, "pool.tasks.completed")                     \
  X(kWbFlushAsync, "wb.flush.async")                            \
  X(kWbFlushSync, "wb.flush.sync")                              \
  X(kWbFlushBytes, "wb.flush.bytes")                            \
  X(kWbBufferedBytes, "wb.buffered.bytes")                      \
  X(kWbBypass, "wb.bypass")                                     \
  X(kWbCoalesceMerged, "wb.coalesce.merged")                    \
  X(kWbPoisoned, "wb.poisoned")                                 \
  X(kWbFlushTimeout, "wb.flush.timeout")                        \
  X(kRetryAttempted, "retry.attempted")                         \
  X(kRetryExhausted, "retry.exhausted")                         \
  X(kBreakerOpened, "breaker.opened")                           \
  X(kBreakerClosed, "breaker.closed")                           \
  X(kBreakerHalfOpen, "breaker.halfopen")                       \
  X(kBreakerProbeOk, "breaker.probe.ok")                        \
  X(kBreakerProbeFail, "breaker.probe.fail")                    \
  X(kBreakerFastFail, "breaker.fastfail")                       \
  X(kMmapReads, "mmap.reads")                                   \
  X(kMmapBytes, "mmap.bytes")                                   \
  X(kMmapFallbacks, "mmap.fallbacks")                           \
  X(kMmapMaps, "mmap.maps")                                     \
  X(kMmapAppMaps, "mmap.app.maps")                              \
  X(kZeroCopyOps, "zerocopy.ops")                               \
  X(kZeroCopyBytes, "zerocopy.bytes")                           \
  X(kAutoFlattenKicked, "flatten.auto")                         \
  X(kShmGenHit, "shmeta.gen.hit")                               \
  X(kShmGenStale, "shmeta.gen.stale")                           \
  X(kShmGenBump, "shmeta.gen.bump")                             \
  X(kShmStatSkipped, "shmeta.stat.skipped")                     \
  X(kShmWriterRegistered, "shmeta.writers.registered")          \
  X(kShmWriterReclaimed, "shmeta.writers.reclaimed")            \
  X(kShmForeignWriter, "shmeta.writers.foreign")                \
  X(kShmSlotsExhausted, "shmeta.slots.exhausted")               \
  X(kShmFastCreate, "shmeta.create.fast")

#define LDPLFS_STATS_HISTOGRAMS(X)                              \
  X(kRouterOpenLatency, "router.open.latency")                  \
  X(kRouterReadLatency, "router.read.latency")                  \
  X(kRouterWriteLatency, "router.write.latency")                \
  X(kRouterPreadLatency, "router.pread.latency")                \
  X(kRouterPwriteLatency, "router.pwrite.latency")              \
  X(kRouterCloseLatency, "router.close.latency")                \
  X(kPlfsIndexMergeLatency, "plfs.index.merge.latency")         \
  X(kPoolQueueDelay, "pool.queue.delay")                        \
  X(kPoolQueueDepth, "pool.queue.depth")                        \
  X(kPoolTaskLatency, "pool.task.latency")                      \
  X(kWbFlushLatency, "wb.flush.latency")

enum class Counter : std::size_t {
#define X(sym, name) sym,
  LDPLFS_STATS_COUNTERS(X)
#undef X
      kCount
};

enum class Histogram : std::size_t {
#define X(sym, name) sym,
  LDPLFS_STATS_HISTOGRAMS(X)
#undef X
      kCount
};

inline constexpr std::size_t kCounterCount =
    static_cast<std::size_t>(Counter::kCount);
inline constexpr std::size_t kHistogramCount =
    static_cast<std::size_t>(Histogram::kCount);
inline constexpr std::size_t kHistogramBuckets = 40;

/// Dump name of a counter / histogram (the stable JSON key).
const char* name(Counter c);
const char* name(Histogram h);

/// Bucket index for a latency sample: 0 for 0 ns, else min(bit_width(ns),
/// kHistogramBuckets - 1). Bucket i > 0 covers [2^(i-1), 2^i) ns.
std::size_t bucket_for(std::uint64_t nanos);
/// Inclusive upper bound of a bucket in nanoseconds (used by percentile
/// estimation here and in ldp-stats).
std::uint64_t bucket_upper_ns(std::size_t bucket);

struct HistogramSnapshot {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};

  /// Upper bound (ns) of the bucket holding the q-quantile sample, 0 when
  /// empty. q in [0, 1].
  [[nodiscard]] std::uint64_t percentile_ns(double q) const;
};

/// Merged view of every shard at one point in time.
struct Snapshot {
  std::array<std::uint64_t, kCounterCount> counters{};
  std::array<HistogramSnapshot, kHistogramCount> histograms{};

  [[nodiscard]] std::uint64_t get(Counter c) const {
    return counters[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] const HistogramSnapshot& get(Histogram h) const {
    return histograms[static_cast<std::size_t>(h)];
  }
  /// Per-field `*this - before` (counters, histogram counts/sums/buckets).
  [[nodiscard]] Snapshot since(const Snapshot& before) const;
};

#ifndef LDPLFS_NO_STATS

namespace detail {
// -1 = not yet latched from LDPLFS_STATS, 0 = off, 1 = on.
extern std::atomic<int> g_mode;
bool enabled_slow();
std::uint64_t now_ns();
void add_slow(Counter c, std::uint64_t delta);
void record_slow(Histogram h, std::uint64_t nanos);
}  // namespace detail

/// True when collection is on. One relaxed load on the hot path once latched.
inline bool enabled() {
  const int mode = detail::g_mode.load(std::memory_order_relaxed);
  if (mode >= 0) return mode != 0;
  return detail::enabled_slow();
}

/// Turn collection on/off regardless of LDPLFS_STATS (tests, benches).
/// Does not install exit/signal dumps.
void force_enable(bool on);

/// Bump a counter. No-op when disabled.
inline void add(Counter c, std::uint64_t delta = 1) {
  if (enabled()) detail::add_slow(c, delta);
}

/// Record a latency sample (nanoseconds). No-op when disabled.
inline void record(Histogram h, std::uint64_t nanos) {
  if (enabled()) detail::record_slow(h, nanos);
}

/// Scoped latency timer: samples CLOCK_MONOTONIC only when enabled.
class Timer {
 public:
  explicit Timer(Histogram h)
      : h_(h), start_(enabled() ? detail::now_ns() : 0) {}
  ~Timer() { stop(); }
  Timer(const Timer&) = delete;
  Timer& operator=(const Timer&) = delete;

  /// Record now instead of at destruction; later calls are no-ops.
  void stop() {
    if (start_ != 0) {
      detail::record_slow(h_, detail::now_ns() - start_);
      start_ = 0;
    }
  }
  /// Abandon without recording (e.g. the op turned out to be passthrough).
  void cancel() { start_ = 0; }

 private:
  Histogram h_;
  std::uint64_t start_;
};

/// Monotonic nanoseconds (exposed for callers that time across scopes).
inline std::uint64_t now_ns() { return detail::now_ns(); }

/// Merge every shard (live and retired) into one consistent view.
Snapshot snapshot();

/// Zero every shard and the retired accumulator.
void reset();

/// Serialise a snapshot as the stable dump JSON (see docs/OBSERVABILITY.md).
std::string to_json(const Snapshot& snap);

/// Point dumps at `destination` ("stderr" or a file path) and install the
/// process-exit and SIGUSR1 dump hooks (idempotent). Called automatically
/// when LDPLFS_STATS latches enabled; exposed for tests/benches.
void configure_dump(const std::string& destination);

/// Dump snapshot() to the configured destination now. Silently does nothing
/// when no destination is configured or the destination is unwritable.
void dump_now();

#else  // LDPLFS_NO_STATS: every entry point is a true no-op.

inline bool enabled() { return false; }
inline void force_enable(bool) {}
inline void add(Counter, std::uint64_t = 1) {}
inline void record(Histogram, std::uint64_t) {}
class Timer {
 public:
  explicit Timer(Histogram) {}
  void stop() {}
  void cancel() {}
};
inline std::uint64_t now_ns() { return 0; }
inline Snapshot snapshot() { return {}; }
inline void reset() {}
std::string to_json(const Snapshot& snap);
inline void configure_dump(const std::string&) {}
inline void dump_now() {}

#endif  // LDPLFS_NO_STATS

}  // namespace ldplfs::stats
