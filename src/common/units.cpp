#include "common/units.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace ldplfs {

std::string format_bytes(std::uint64_t bytes) {
  static constexpr std::array<const char*, 5> suffix = {"B", "KiB", "MiB",
                                                        "GiB", "TiB"};
  double value = static_cast<double>(bytes);
  std::size_t idx = 0;
  while (value >= 1024.0 && idx + 1 < suffix.size()) {
    value /= 1024.0;
    ++idx;
  }
  char buf[64];
  if (idx == 0) {
    std::snprintf(buf, sizeof buf, "%llu B",
                  static_cast<unsigned long long>(bytes));
  } else {
    std::snprintf(buf, sizeof buf, "%.1f %s", value, suffix[idx]);
  }
  return buf;
}

std::uint64_t parse_bytes(const std::string& text) {
  if (text.empty()) return 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || value < 0) return 0;
  std::uint64_t mult = 1;
  while (*end == ' ' || *end == '\t') ++end;
  if (*end != '\0') {
    switch (std::toupper(static_cast<unsigned char>(*end))) {
      case 'K': mult = KiB; break;
      case 'M': mult = MiB; break;
      case 'G': mult = GiB; break;
      case 'T': mult = TiB; break;
      case 'B': mult = 1; break;
      default: return 0;
    }
  }
  return static_cast<std::uint64_t>(value * static_cast<double>(mult));
}

}  // namespace ldplfs
