// Minimal JSON value: parse, build, serialize.
//
// The benchmark harness both emits BENCH_suite.json and reads it back for
// `ldp-bench --compare`, so unlike the write-only snprintf JSON in the
// older bench code it needs a real (if tiny) document model. Scope is
// deliberately small: UTF-8 passthrough strings with the standard escapes,
// doubles for every number (integers round-trip exactly up to 2^53 — far
// beyond anything a benchmark report holds), objects preserving insertion
// order so emitted reports diff cleanly across runs.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace ldplfs::json {

class Value;
using Member = std::pair<std::string, Value>;

class Value {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Value() = default;
  Value(std::nullptr_t) {}  // NOLINT(google-explicit-constructor)
  Value(bool b) : type_(Type::kBool), bool_(b) {}  // NOLINT
  Value(double d) : type_(Type::kNumber), num_(d) {}  // NOLINT
  Value(int v) : Value(static_cast<double>(v)) {}  // NOLINT
  Value(std::int64_t v) : Value(static_cast<double>(v)) {}  // NOLINT
  Value(std::uint64_t v) : Value(static_cast<double>(v)) {}  // NOLINT
  Value(std::string s) : type_(Type::kString), str_(std::move(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT

  static Value array() {
    Value v;
    v.type_ = Type::kArray;
    return v;
  }
  static Value object() {
    Value v;
    v.type_ = Type::kObject;
    return v;
  }

  [[nodiscard]] Type type() const { return type_; }
  [[nodiscard]] bool is_null() const { return type_ == Type::kNull; }
  [[nodiscard]] bool is_number() const { return type_ == Type::kNumber; }
  [[nodiscard]] bool is_string() const { return type_ == Type::kString; }
  [[nodiscard]] bool is_array() const { return type_ == Type::kArray; }
  [[nodiscard]] bool is_object() const { return type_ == Type::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const {
    return type_ == Type::kBool ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const {
    return type_ == Type::kNumber ? num_ : fallback;
  }
  [[nodiscard]] const std::string& as_string() const { return str_; }

  [[nodiscard]] const std::vector<Value>& items() const { return items_; }
  [[nodiscard]] const std::vector<Member>& members() const { return members_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const;

  /// Convenience: find(key) as number/string with fallback.
  [[nodiscard]] double number_at(std::string_view key,
                                 double fallback = 0.0) const;
  [[nodiscard]] std::string string_at(std::string_view key,
                                      std::string fallback = "") const;

  /// Builders (no-ops unless this value has the matching type).
  void push_back(Value v);
  void set(std::string key, Value v);

  /// Serialize. `indent` > 0 pretty-prints with that many spaces per
  /// level; 0 emits a compact single line.
  [[nodiscard]] std::string dump(int indent = 2) const;

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Value> items_;
  std::vector<Member> members_;
};

/// Parse a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). Malformed input returns EINVAL, in
/// keeping with the repo-wide errno-style Result.
Result<Value> parse(std::string_view text);

/// Parse the file at `path`.
Result<Value> parse_file(const std::string& path);

}  // namespace ldplfs::json
