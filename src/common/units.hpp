// Byte-size units and helpers shared across the real and simulated strata.
#pragma once

#include <cstdint>
#include <string>

namespace ldplfs {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;
inline constexpr std::uint64_t TiB = 1024ULL * GiB;

// Decimal units (disk vendors, network links).
inline constexpr std::uint64_t KB = 1000ULL;
inline constexpr std::uint64_t MB = 1000ULL * KB;
inline constexpr std::uint64_t GB = 1000ULL * MB;

namespace literals {
constexpr std::uint64_t operator""_KiB(unsigned long long v) { return v * KiB; }
constexpr std::uint64_t operator""_MiB(unsigned long long v) { return v * MiB; }
constexpr std::uint64_t operator""_GiB(unsigned long long v) { return v * GiB; }
}  // namespace literals

/// Render a byte count as a human-readable string, e.g. "8.0 MiB".
std::string format_bytes(std::uint64_t bytes);

/// Parse strings like "8M", "1G", "512K", "4096" into a byte count.
/// Accepts suffixes K/M/G/T (binary) with optional "iB"/"B". Returns 0 on
/// malformed input.
std::uint64_t parse_bytes(const std::string& text);

}  // namespace ldplfs
