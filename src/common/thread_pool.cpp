#include "common/thread_pool.hpp"

#include <cstdlib>
#include <utility>

namespace ldplfs {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (workers_.empty()) {
    task();
    return;
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
}

unsigned ThreadPool::env_threads() {
  const char* env = std::getenv("LDPLFS_THREADS");
  if (env == nullptr || *env == '\0') {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 1;  // malformed: stay serial-safe
  return value > 256 ? 256u : static_cast<unsigned>(value);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(env_threads());
  return pool;
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    task();
    // Notify while holding the lock: wait()'s caller may destroy this
    // group the moment it observes pending_ == 0, so the notifier must be
    // done with cv_ before any waiter can get past the mutex.
    std::lock_guard lock(mu_);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace ldplfs
