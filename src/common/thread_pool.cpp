#include "common/thread_pool.hpp"

#include <pthread.h>

#include <cstdlib>
#include <utility>

#include "common/stats.hpp"

namespace ldplfs {

ThreadPool::ThreadPool(unsigned threads) {
  workers_.reserve(threads);
  for (unsigned i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ && drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::submit(std::function<void()> task) {
  if (respawn_ != 0) {
    // First submit after fork(): the child inherited the pool object but
    // none of the parent's worker threads. The atfork child handler ran
    // before any user code, so this thread is still the only one in the
    // process — restart the crew without locking.
    const unsigned n = std::exchange(respawn_, 0u);
    workers_.reserve(n);
    for (unsigned i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }
  if (workers_.empty()) {
    stats::add(stats::Counter::kPoolInline);
    task();
    stats::add(stats::Counter::kPoolCompleted);
    return;
  }
  stats::add(stats::Counter::kPoolSubmitted);
  if (stats::enabled()) {
    // Wrap only when collecting: queue delay is enqueue→start, task
    // latency is start→finish, both on the worker thread's shard.
    const std::uint64_t enqueued = stats::now_ns();
    task = [inner = std::move(task), enqueued] {
      const std::uint64_t start = stats::now_ns();
      stats::record(stats::Histogram::kPoolQueueDelay, start - enqueued);
      inner();
      stats::record(stats::Histogram::kPoolTaskLatency,
                    stats::now_ns() - start);
      stats::add(stats::Counter::kPoolCompleted);
    };
  }
  {
    std::lock_guard lock(mu_);
    queue_.push_back(std::move(task));
    stats::record(stats::Histogram::kPoolQueueDepth, queue_.size());
  }
  cv_.notify_one();
}

unsigned ThreadPool::env_threads() {
  const char* env = std::getenv("LDPLFS_THREADS");
  if (env == nullptr || *env == '\0') {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
  }
  char* end = nullptr;
  const unsigned long value = std::strtoul(env, &end, 10);
  if (end == env || *end != '\0') return 1;  // malformed: stay serial-safe
  return value > 256 ? 256u : static_cast<unsigned>(value);
}

void ThreadPool::handle_fork_child() {
  // Runs in the forked child with mu_ held (the prepare handler locked it,
  // so no worker died mid-queue-operation). The parent's worker threads do
  // not exist here: detach the stale handles (destroying a joinable
  // std::thread would terminate()), drop the parent's queued tasks — they
  // belong to the parent — and respawn lazily on the child's first submit.
  // A task that was *running* at fork time is abandoned: engines must not
  // fork with work in flight (WriteFile drains before plfs handles escape
  // to callers that fork, and the crash soak forks between operations).
  respawn_ = static_cast<unsigned>(workers_.size());
  for (auto& worker : workers_) worker.detach();
  workers_.clear();
  queue_.clear();
  mu_.unlock();
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool(env_threads());
  // Fork safety: fault-injected writers (tests, MPI-style launchers) fork
  // after this process has already used the pool. Hold mu_ across the fork
  // so the child never inherits it locked, then let the child rebuild.
  static const int atfork_registered = [] {
    ::pthread_atfork([] { shared().mu_.lock(); },
                     [] { shared().mu_.unlock(); },
                     [] { shared().handle_fork_child(); });
    return 0;
  }();
  (void)atfork_registered;
  return pool;
}

void TaskGroup::run(std::function<void()> task) {
  {
    std::lock_guard lock(mu_);
    ++pending_;
  }
  pool_.submit([this, task = std::move(task)] {
    task();
    // Notify while holding the lock: wait()'s caller may destroy this
    // group the moment it observes pending_ == 0, so the notifier must be
    // done with cv_ before any waiter can get past the mutex.
    std::lock_guard lock(mu_);
    --pending_;
    cv_.notify_all();
  });
}

void TaskGroup::wait() {
  std::unique_lock lock(mu_);
  cv_.wait(lock, [this] { return pending_ == 0; });
}

}  // namespace ldplfs
