// Path manipulation for mount-point matching.
//
// The LDPLFS core decides per-call whether a path belongs to a PLFS mount
// point; these helpers implement lexical normalisation ("." / ".." / "//"
// squashing) and prefix containment the way the dynamic loader shim needs
// them: purely lexically, with no filesystem access (an interposed open()
// must not recursively stat the world).
#pragma once

#include <string>
#include <string_view>

namespace ldplfs {

/// Lexically normalise a path: collapse "//", resolve "." and "..".
/// Keeps the path absolute if it was absolute; a relative input is resolved
/// against `cwd` when provided (otherwise left relative but squashed).
std::string normalize_path(std::string_view path, std::string_view cwd = {});

/// True when `path` equals `root` or lies underneath it (both should be
/// normalised and absolute). "/mnt/plfs" contains "/mnt/plfs/a" but not
/// "/mnt/plfsx".
bool path_under(std::string_view path, std::string_view root);

/// The portion of `path` below `root` with no leading '/'; empty when
/// path == root. Precondition: path_under(path, root).
std::string path_suffix(std::string_view path, std::string_view root);

/// Join two path fragments with exactly one '/'.
std::string path_join(std::string_view a, std::string_view b);

/// Final component ("" for "/").
std::string path_basename(std::string_view path);

/// Everything before the final component ("/" for top-level entries).
std::string path_dirname(std::string_view path);

}  // namespace ldplfs
