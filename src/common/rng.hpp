// Deterministic, splittable random streams.
//
// Both the simulator (service-time jitter) and the property tests (random
// write patterns) need reproducible randomness whose streams do not alias
// when components are created in different orders — hence SplitMix64-seeded
// xoshiro256**, one instance per consumer.
#pragma once

#include <cstdint>

namespace ldplfs {

/// SplitMix64: used to expand a single seed into independent stream seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9E3779B97F4A7C15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// xoshiro256** 1.0 — fast, high-quality, no global state.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x1d91f5ULL) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t below(std::uint64_t bound) {
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    while (true) {
      const std::uint64_t r = next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform in [lo, hi] inclusive.
  std::uint64_t range(std::uint64_t lo, std::uint64_t hi) {
    return lo + below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Derive an independent child stream (for per-component RNGs).
  Rng split() {
    std::uint64_t seed = next();
    return Rng(seed);
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace ldplfs
