// Station: a multi-server FIFO queueing resource inside the DES.
//
// Submitting work picks the earliest-available server; the completion
// callback fires at finish time. An optional congestion model inflates
// service times when the number of requests in the system exceeds a
// threshold — used for the Lustre MDS, whose real-world behaviour under
// metadata storms is super-linear degradation (lock callbacks, RPC
// retries), the effect behind the paper's Fig. 5 collapse.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace ldplfs::sim {

/// Optional congestion behaviour: service *= 1 + alpha * max(0, in_system -
/// knee) / knee. alpha == 0 disables.
struct CongestionModel {
  double alpha = 0.0;
  std::uint32_t knee = 1;
};

struct StationStats {
  std::uint64_t ops = 0;
  double busy_time = 0.0;      // summed service time across servers
  double total_wait = 0.0;     // queueing delay (excludes service)
  std::uint32_t max_in_system = 0;

  [[nodiscard]] double mean_wait() const {
    return ops == 0 ? 0.0 : total_wait / static_cast<double>(ops);
  }
};

class Station {
 public:
  Station(Engine& engine, std::string name, std::uint32_t servers,
          CongestionModel congestion = {})
      : engine_(engine),
        name_(std::move(name)),
        free_at_(std::max<std::uint32_t>(servers, 1), 0.0),
        congestion_(congestion) {}

  /// Enqueue a request needing `service` seconds; `done` fires at
  /// completion. Returns the scheduled completion time.
  SimTime submit(double service, std::function<void()> done = {});

  [[nodiscard]] const StationStats& stats() const { return stats_; }
  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::uint32_t servers() const {
    return static_cast<std::uint32_t>(free_at_.size());
  }
  [[nodiscard]] std::uint32_t in_system() const { return in_system_; }

  /// Utilisation over [0, horizon].
  [[nodiscard]] double utilisation(SimTime horizon) const {
    if (horizon <= 0) return 0.0;
    return stats_.busy_time /
           (horizon * static_cast<double>(free_at_.size()));
  }

  void reset_stats() { stats_ = {}; }

 private:
  Engine& engine_;
  std::string name_;
  std::vector<SimTime> free_at_;
  CongestionModel congestion_;
  std::uint32_t in_system_ = 0;
  StationStats stats_;
};

}  // namespace ldplfs::sim
