#include "sim/station.hpp"

namespace ldplfs::sim {

SimTime Station::submit(double service, std::function<void()> done) {
  const SimTime now = engine_.now();

  ++in_system_;
  stats_.max_in_system = std::max(stats_.max_in_system, in_system_);

  if (congestion_.alpha > 0.0 && in_system_ > congestion_.knee) {
    const double excess =
        static_cast<double>(in_system_ - congestion_.knee) /
        static_cast<double>(congestion_.knee);
    service *= 1.0 + congestion_.alpha * excess;
  }

  // Earliest-free server (FIFO across the pool).
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const SimTime start = std::max(now, *it);
  const SimTime finish = start + service;
  *it = finish;

  stats_.ops += 1;
  stats_.busy_time += service;
  stats_.total_wait += start - now;

  engine_.schedule_at(finish, [this, done = std::move(done)] {
    --in_system_;
    if (done) done();
  });
  return finish;
}

}  // namespace ldplfs::sim
