#include "sim/engine.hpp"

#include <cassert>
#include <utility>

namespace ldplfs::sim {

void Engine::schedule_at(SimTime when, std::function<void()> fn) {
  assert(when >= now_ && "cannot schedule into the past");
  queue_.push(Event{when < now_ ? now_ : when, next_seq_++, std::move(fn)});
}

SimTime Engine::run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the closure must be moved out via a
    // const_cast-free copy of the struct. Events are small; copy the
    // function once per dispatch.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  return now_;
}

SimTime Engine::run_until(SimTime until) {
  while (!queue_.empty() && queue_.top().time <= until) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ++processed_;
    ev.fn();
  }
  if (now_ < until) now_ = until;
  return now_;
}

void Engine::reset() {
  queue_ = {};
  now_ = 0.0;
  next_seq_ = 0;
  processed_ = 0;
}

}  // namespace ldplfs::sim
