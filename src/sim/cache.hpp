// Client-side write-back cache, fluid approximation.
//
// The effect the paper leans on for Fig. 4: a write small enough to fit in
// the cache "completes" at ingest speed and drains to the backend in the
// background; once the relevant dirty limit is hit the writer blocks at
// drain speed. Two limits apply, mirroring Lustre semantics:
//
//   * a per-node capacity (RAM available for dirty pages), and
//   * an optional per-stream grant (max_dirty_mb per OSC): each file
//     stream may only keep so much dirty data regardless of node headroom.
//
// Occupancy is tracked lazily — between events, dirty data decreases at
// drain_bps. Admissions are FIFO per node: (dirty_, last_update_) describe
// the state at the horizon last_update_, and an admit that arrives before
// the horizon is processed at the horizon, keeping drain accounting
// monotonic and serialising same-node ingests (they share the memory bus).
#pragma once

#include <algorithm>
#include <cstdint>
#include <unordered_map>

#include "sim/engine.hpp"

namespace ldplfs::sim {

class WriteCache {
 public:
  WriteCache(std::uint64_t capacity_bytes, double absorb_bps)
      : capacity_(capacity_bytes), absorb_bps_(absorb_bps) {}

  /// Set the rate at which dirty data drains to the backend. May change
  /// between phases (it depends on how many nodes share the backend).
  void set_drain_bps(double bps) { drain_bps_ = bps; }

  /// Node-level dirty capacity.
  void set_capacity(std::uint64_t bytes) { capacity_ = bytes; }

  /// Per-stream dirty grant; 0 disables per-stream limiting.
  void set_per_stream_cap(std::uint64_t bytes) { per_stream_cap_ = bytes; }

  [[nodiscard]] double drain_bps() const { return drain_bps_; }
  [[nodiscard]] std::uint64_t capacity() const { return capacity_; }
  [[nodiscard]] std::uint64_t per_stream_cap() const { return per_stream_cap_; }

  /// Admit `bytes` for `stream` at time `now`. Returns when the writer
  /// unblocks: ingest time if the write fits both limits, otherwise ingest
  /// plus the (queued) wait for enough drain.
  SimTime admit(SimTime now, std::uint64_t bytes, std::uint64_t stream = 0);

  /// Dirty bytes at `now` (after lazy drain).
  [[nodiscard]] std::uint64_t occupancy(SimTime now) const;

  /// Time at which the cache becomes empty if nothing else arrives.
  [[nodiscard]] SimTime drained_at(SimTime now) const;

  void reset() {
    dirty_ = 0.0;
    last_update_ = 0.0;
    drain_busy_until_ = 0.0;
    stream_dirty_.clear();
  }

 private:
  void lazy_drain(SimTime now) const;

  std::uint64_t capacity_;
  double absorb_bps_;
  std::uint64_t per_stream_cap_ = 0;
  double drain_bps_ = 100e6;
  mutable double dirty_ = 0.0;
  mutable SimTime last_update_ = 0.0;
  SimTime drain_busy_until_ = 0.0;
  // Per-stream dirty shares; drained proportionally with the total.
  mutable std::unordered_map<std::uint64_t, double> stream_dirty_;
};

inline void WriteCache::lazy_drain(SimTime now) const {
  if (now <= last_update_) return;
  const double before = dirty_;
  dirty_ = std::max(0.0, dirty_ - drain_bps_ * (now - last_update_));
  last_update_ = now;
  if (before > 0.0 && dirty_ < before) {
    if (dirty_ <= 0.0) {
      stream_dirty_.clear();
    } else {
      const double scale = dirty_ / before;
      for (auto& [stream, amount] : stream_dirty_) amount *= scale;
    }
  }
}

inline SimTime WriteCache::admit(SimTime now, std::uint64_t bytes,
                                 std::uint64_t stream) {
  const SimTime eff = std::max(now, last_update_);
  lazy_drain(eff);
  const double ingest_s = static_cast<double>(bytes) / absorb_bps_;
  const double want = static_cast<double>(bytes);
  const double node_cap = static_cast<double>(capacity_);

  // The binding constraint is whichever limit this write violates harder.
  double& sd = stream_dirty_[stream];
  double overflow = std::max(0.0, dirty_ + want - node_cap);
  if (per_stream_cap_ > 0) {
    overflow = std::max(
        overflow, sd + want - static_cast<double>(per_stream_cap_));
  }

  double block_s = 0.0;
  if (overflow > 0.0) {
    // Drain capacity is one shared resource per node: concurrent stalls
    // queue on it rather than each assuming the full drain bandwidth.
    const double drain_s = drain_bps_ > 0 ? overflow / drain_bps_ : 1e9;
    const SimTime start = std::max(eff, drain_busy_until_);
    drain_busy_until_ = start + drain_s;
    block_s = (start - eff) + drain_s;
  }
  sd = std::min(std::max(0.0, sd + want - overflow),
                per_stream_cap_ > 0 ? static_cast<double>(per_stream_cap_)
                                    : node_cap);
  dirty_ = std::min(node_cap, std::max(0.0, dirty_ + want - overflow));

  last_update_ = eff + block_s + ingest_s;
  // Drain continues during the ingest itself.
  const double before = dirty_;
  dirty_ = std::max(0.0, dirty_ - drain_bps_ * ingest_s);
  if (before > 0.0 && dirty_ < before) {
    const double scale = dirty_ > 0.0 ? dirty_ / before : 0.0;
    if (scale == 0.0) {
      stream_dirty_.clear();
    } else {
      for (auto& [key, amount] : stream_dirty_) amount *= scale;
    }
  }
  return last_update_;
}

inline std::uint64_t WriteCache::occupancy(SimTime now) const {
  lazy_drain(now);
  return static_cast<std::uint64_t>(dirty_);
}

inline SimTime WriteCache::drained_at(SimTime now) const {
  lazy_drain(now);
  if (drain_bps_ <= 0) return dirty_ > 0 ? 1e30 : now;
  return now + dirty_ / drain_bps_;
}

}  // namespace ldplfs::sim
