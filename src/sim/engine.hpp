// Discrete-event simulation engine.
//
// Time is double seconds. Events are (time, sequence, closure); the sequence
// number makes ordering deterministic when times tie, so every simulation is
// exactly reproducible for a given seed and configuration.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace ldplfs::sim {

using SimTime = double;

class Engine {
 public:
  /// Schedule `fn` at absolute time `when` (must be >= now()).
  void schedule_at(SimTime when, std::function<void()> fn);

  /// Schedule `fn` after a delay from now.
  void schedule_after(SimTime delay, std::function<void()> fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run until the event queue drains. Returns the final clock value.
  SimTime run();

  /// Run events up to and including time `until`; later events stay queued.
  SimTime run_until(SimTime until);

  [[nodiscard]] SimTime now() const { return now_; }
  [[nodiscard]] bool empty() const { return queue_.empty(); }
  [[nodiscard]] std::uint64_t events_processed() const { return processed_; }

  /// Reset clock and queue (fresh run on the same resources is the caller's
  /// responsibility).
  void reset();

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace ldplfs::sim
