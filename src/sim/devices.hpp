// Storage and network device models: pure service-time arithmetic used to
// parameterise Stations. Numbers come straight from the paper's Table I
// (disk counts, RPM, RAID levels, link speeds); the formulas are standard
// first-order models (seek + half-rotation + streaming transfer; RAID-6
// small-write read-modify-write penalty; store-and-forward links).
#pragma once

#include <algorithm>
#include <cstdint>

namespace ldplfs::sim {

/// One rotating disk.
struct DiskModel {
  double avg_seek_s = 0.008;       // average seek
  double rpm = 7200.0;             // spindle speed
  double streaming_bps = 120e6;    // sustained transfer rate (bytes/s)

  [[nodiscard]] double half_rotation_s() const { return 30.0 / rpm; }

  /// Service time of one request. Sequential requests skip positioning.
  [[nodiscard]] double service_s(std::uint64_t bytes, bool sequential) const {
    const double position = sequential ? 0.0 : avg_seek_s + half_rotation_s();
    return position + static_cast<double>(bytes) / streaming_bps;
  }
};

enum class RaidLevel { kRaid6, kRaid10 };

/// A RAID array of identical disks behind one server.
struct RaidArray {
  DiskModel disk;
  std::uint32_t disks = 10;
  RaidLevel level = RaidLevel::kRaid6;
  /// When non-zero, use this as the array's sustained rate instead of the
  /// disk sum. Presets calibrate it to *measured* server throughput on the
  /// modelled machine (controller, SAS topology and production contention
  /// make the raw disk sum unreachable in practice).
  double effective_streaming_bps = 0.0;

  /// Number of disks contributing user-data bandwidth.
  [[nodiscard]] std::uint32_t data_disks() const {
    switch (level) {
      case RaidLevel::kRaid6:
        // Table I notes 8+2 groups.
        return disks >= 2 ? disks - 2 * (disks / 10) : disks;
      case RaidLevel::kRaid10:
        return disks / 2;
    }
    return disks;
  }

  [[nodiscard]] double streaming_bps() const {
    if (effective_streaming_bps > 0.0) return effective_streaming_bps;
    return static_cast<double>(data_disks()) * disk.streaming_bps;
  }

  /// Service time for a request against the array. Small random writes on
  /// RAID-6 pay the classic read-modify-write factor (~4 disk ops → modelled
  /// as 2 extra positioning delays).
  [[nodiscard]] double service_s(std::uint64_t bytes, bool sequential,
                                 bool is_write) const {
    double position = sequential ? 0.0
                                 : disk.avg_seek_s + disk.half_rotation_s();
    if (!sequential && is_write && level == RaidLevel::kRaid6) {
      position *= 3.0;  // read-old, read-parity, write-back
    }
    return position + static_cast<double>(bytes) / streaming_bps();
  }
};

/// A point-to-point network link (NIC or per-server ingest).
struct LinkModel {
  double latency_s = 2e-6;     // one-way latency
  double bandwidth_bps = 4e9;  // QDR IB ~ 4 GB/s signalling, ~3.2 payload

  [[nodiscard]] double transfer_s(std::uint64_t bytes) const {
    return latency_s + static_cast<double>(bytes) / bandwidth_bps;
  }
};

}  // namespace ldplfs::sim
