// Deterministic syscall fault injection for crash-consistency testing.
//
// A *fault plan* describes which of the instrumented operations should
// misbehave and how. Plans come from the LDPLFS_FAULTS environment variable
// (picked up automatically by any process using the posix helpers — the
// preload shim, the ldp-* tools, test binaries) or from configure() in
// tests. With no plan installed the hot-path cost is one relaxed atomic
// load per operation.
//
// Grammar (clauses separated by ',' or ';'):
//
//   clause  := op ':' field (':' field)*
//   op      := open | close | read | write | pread | pwrite | fsync
//            | unlink | rename | mkdir | crash | any
//   field   := "after=" N     let the first N matching ops succeed
//            | "count=" K     fire at most K times (default: unlimited)
//            | "errno=" E     fail with errno E (name or number; default EIO)
//            | "short=" B     transfer at most B bytes instead of failing
//            | "delay=" U     sleep U microseconds, then proceed normally
//                             (unless the clause also fails/shorts/crashes);
//                             models per-op device/network latency
//            | "p=" P         fire probabilistically with probability P in
//                             (0, 1]; rolled per matching op after the
//                             after=/count= gates, from a deterministic rng
//                             reseeded at configure() (LDPLFS_FAULTS_SEED
//                             overrides the seed) — models flapping backends
//            | "path=" S      scope the clause to ops whose backend path
//                             contains substring S; non-matching ops skip
//                             the clause entirely (no counter advance).
//                             Only the path-aware posix helpers match path=
//                             clauses; the fd-level RealCalls wrappers have
//                             no path and never match them
//            | "crash"        _exit(137) instead of failing
//
// Examples:
//   pwrite:after=3:errno=ENOSPC   4th and every later pwrite fails ENOSPC
//   pwrite:short=1                every pwrite transfers at most 1 byte
//   pwrite:errno=EAGAIN:count=2   two transient EAGAINs, then normal
//   pread:delay=200               every pread costs an extra 200 µs (used by
//                                 bench/micro_real to model a parallel FS)
//   pwrite:delay=150              every pwrite costs an extra 150 µs (used by
//                                 bench/micro_real to model device write
//                                 latency against the write-behind engine)
//   pwrite:p=0.3:errno=EIO        each pwrite fails EIO with probability 0.3
//   pwrite:errno=EIO:path=/mnt/a  pwrites under /mnt/a fail; others proceed
//   crash:after=5                 process dies at the 6th instrumented op
//   pwrite:after=2:crash          process dies entering the 3rd pwrite
//
// Clauses are checked in order; an op counts against every clause up to and
// including the first one that fires (path=-scoped clauses the op's path
// does not match are skipped without counting). Counters are process-wide
// (a forked child starts from a copy of the parent's counters, so a child
// that wants a fresh plan should call configure() itself).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace ldplfs::posix::faults {

/// Instrumented operation classes. kAny (the "crash"/"any" spec op) matches
/// every instrumented call.
enum class Op {
  kOpen,
  kClose,
  kRead,
  kWrite,
  kPread,
  kPwrite,
  kFsync,
  kUnlink,
  kRename,
  kMkdir,
};

/// What the instrumented call site should do for this operation.
struct Outcome {
  enum class Kind {
    kNone,   ///< proceed normally
    kFail,   ///< return -1 with errno = err (do not issue the syscall)
    kShort,  ///< issue the syscall but transfer at most max_bytes
  };
  Kind kind = Kind::kNone;
  int err = 0;
  std::size_t max_bytes = 0;
};

/// Install a fault plan (replacing any previous one). An empty spec clears.
/// Returns false and fills *error on a syntax error (plan unchanged).
bool configure(const std::string& spec, std::string* error = nullptr);

/// Remove the installed plan and reset all counters.
void clear();

/// True when a plan is installed. Loads LDPLFS_FAULTS on first call.
bool active();

/// Consult the plan for the next `op` moving `requested` bytes, advancing
/// the counters. `path` (when the call site knows it) is matched against
/// path= clause scopes; an empty path matches only unscoped clauses. A
/// firing crash clause terminates the process with _exit(137) and never
/// returns.
Outcome next(Op op, std::size_t requested = 0, std::string_view path = {});

/// Spec-grammar name of an op ("pwrite", ...).
const char* op_name(Op op);

}  // namespace ldplfs::posix::faults
