#include "posix/faults.hpp"

#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <cstdlib>
#include <mutex>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "common/strings.hpp"

namespace ldplfs::posix::faults {

namespace {

constexpr int kAnyOp = -1;
constexpr std::uint64_t kUnlimited = ~std::uint64_t{0};

struct Clause {
  int op = kAnyOp;                  // Op value, or kAnyOp
  std::uint64_t after = 0;          // matching ops that succeed first
  std::uint64_t count = kUnlimited; // max firings
  int err = EIO;
  std::size_t short_bytes = 0;      // >0: short transfer instead of failure
  std::uint64_t delay_usec = 0;     // sleep before acting (latency model)
  double prob = 1.0;                // p=: firing probability per matching op
  std::string path_substr;          // path=: scope to matching backend paths
  bool fails = false;               // errno= given: delay does not absorb it
  bool crash = false;
  // runtime state
  std::uint64_t seen = 0;
  std::uint64_t fired = 0;
};

constexpr std::uint64_t kDefaultFaultSeed = 0x1d91f5ULL;

std::mutex g_mu;
std::vector<Clause> g_plan;
Rng g_rng{kDefaultFaultSeed};  // p= rolls; reseeded by configure()
std::atomic<bool> g_active{false};
std::atomic<bool> g_env_checked{false};

struct OpName {
  const char* name;
  Op op;
};
constexpr OpName kOpNames[] = {
    {"open", Op::kOpen},     {"close", Op::kClose},  {"read", Op::kRead},
    {"write", Op::kWrite},   {"pread", Op::kPread},  {"pwrite", Op::kPwrite},
    {"fsync", Op::kFsync},   {"unlink", Op::kUnlink}, {"rename", Op::kRename},
    {"mkdir", Op::kMkdir},
};

struct ErrnoName {
  const char* name;
  int value;
};
constexpr ErrnoName kErrnoNames[] = {
    {"EPERM", EPERM},   {"ENOENT", ENOENT}, {"EINTR", EINTR},
    {"EIO", EIO},       {"EBADF", EBADF},   {"EAGAIN", EAGAIN},
    {"EWOULDBLOCK", EWOULDBLOCK},           {"ENOMEM", ENOMEM},
    {"EACCES", EACCES}, {"EBUSY", EBUSY},   {"EEXIST", EEXIST},
    {"ENOTDIR", ENOTDIR}, {"EISDIR", EISDIR}, {"EINVAL", EINVAL},
    {"ENFILE", ENFILE}, {"EMFILE", EMFILE}, {"EFBIG", EFBIG},
    {"ENOSPC", ENOSPC}, {"EROFS", EROFS},   {"ENAMETOOLONG", ENAMETOOLONG},
    {"EDQUOT", EDQUOT},
};

bool parse_u64(const std::string& text, std::uint64_t& out) {
  if (text.empty()) return false;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<std::uint64_t>(c - '0');
  }
  out = value;
  return true;
}

bool parse_errno(const std::string& text, int& out) {
  for (const auto& entry : kErrnoNames) {
    if (text == entry.name) {
      out = entry.value;
      return true;
    }
  }
  std::uint64_t numeric = 0;
  if (parse_u64(text, numeric) && numeric > 0 && numeric < 4096) {
    out = static_cast<int>(numeric);
    return true;
  }
  return false;
}

bool fail(std::string* error, const std::string& message) {
  if (error != nullptr) *error = message;
  return false;
}

bool parse_clause(const std::string& text, Clause& clause,
                  std::string* error) {
  const auto fields = split(text, ':');
  if (fields.empty() || fields[0].empty()) {
    return fail(error, "empty fault clause");
  }
  const std::string& op = fields[0];
  if (op == "crash") {
    clause.op = kAnyOp;
    clause.crash = true;
  } else if (op == "any") {
    clause.op = kAnyOp;
  } else {
    bool found = false;
    for (const auto& entry : kOpNames) {
      if (op == entry.name) {
        clause.op = static_cast<int>(entry.op);
        found = true;
        break;
      }
    }
    if (!found) return fail(error, "unknown fault op '" + op + "'");
  }
  for (std::size_t i = 1; i < fields.size(); ++i) {
    const std::string& field = fields[i];
    const auto eq = field.find('=');
    const std::string key = field.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : field.substr(eq + 1);
    std::uint64_t numeric = 0;
    if (key == "after") {
      if (!parse_u64(value, numeric)) return fail(error, "bad after= value");
      clause.after = numeric;
    } else if (key == "count") {
      if (!parse_u64(value, numeric)) return fail(error, "bad count= value");
      clause.count = numeric;
    } else if (key == "errno") {
      if (!parse_errno(value, clause.err)) {
        return fail(error, "unknown errno '" + value + "'");
      }
      clause.fails = true;
    } else if (key == "delay") {
      if (!parse_u64(value, numeric)) return fail(error, "bad delay= value");
      clause.delay_usec = numeric;
    } else if (key == "short") {
      if (!parse_u64(value, numeric) || numeric == 0) {
        return fail(error, "short= needs a positive byte count");
      }
      clause.short_bytes = static_cast<std::size_t>(numeric);
    } else if (key == "p") {
      char* end = nullptr;
      const double prob = std::strtod(value.c_str(), &end);
      if (value.empty() || end == nullptr || *end != '\0' || prob <= 0.0 ||
          prob > 1.0) {
        return fail(error, "p= needs a probability in (0, 1]");
      }
      clause.prob = prob;
    } else if (key == "path") {
      if (value.empty()) {
        return fail(error, "path= needs a non-empty substring");
      }
      clause.path_substr = value;
    } else if (key == "crash") {
      clause.crash = true;
    } else {
      return fail(error, "unknown fault field '" + field + "'");
    }
  }
  return true;
}

void load_env_plan() {
  bool expected = false;
  if (!g_env_checked.compare_exchange_strong(expected, true)) return;
  const char* spec = std::getenv("LDPLFS_FAULTS");
  if (spec == nullptr || *spec == '\0') return;
  std::string error;
  if (!configure(spec, &error)) {
    LDPLFS_LOG_WARN("LDPLFS_FAULTS ignored: %s", error.c_str());
  }
}

}  // namespace

bool configure(const std::string& spec, std::string* error) {
  // configure() is an explicit install: the environment must not be able to
  // overwrite it later.
  g_env_checked.store(true);
  std::vector<Clause> plan;
  std::string normalized = spec;
  for (char& c : normalized) {
    if (c == ';' || c == ' ' || c == '\t' || c == '\n') c = ',';
  }
  for (const auto& part : split(normalized, ',')) {
    if (part.empty()) continue;
    Clause clause;
    if (!parse_clause(part, clause, error)) return false;
    plan.push_back(clause);
  }
  // Reseed the p= roll stream on every install so identical plans replay
  // identical firing patterns (LDPLFS_FAULTS_SEED overrides the seed).
  std::uint64_t seed = kDefaultFaultSeed;
  if (const char* seed_env = std::getenv("LDPLFS_FAULTS_SEED");
      seed_env != nullptr && *seed_env != '\0') {
    std::uint64_t parsed = 0;
    if (parse_u64(seed_env, parsed)) seed = parsed;
  }
  std::lock_guard lock(g_mu);
  g_plan = std::move(plan);
  g_rng = Rng(seed);
  g_active.store(!g_plan.empty(), std::memory_order_release);
  return true;
}

void clear() {
  g_env_checked.store(true);
  std::lock_guard lock(g_mu);
  g_plan.clear();
  g_active.store(false, std::memory_order_release);
}

bool active() {
  if (!g_env_checked.load(std::memory_order_acquire)) load_env_plan();
  return g_active.load(std::memory_order_acquire);
}

Outcome next(Op op, std::size_t requested, std::string_view path) {
  if (!active()) return {};
  Outcome outcome;
  std::uint64_t delay_usec = 0;
  {
    std::lock_guard lock(g_mu);
    for (auto& clause : g_plan) {
      if (clause.op != kAnyOp && clause.op != static_cast<int>(op)) continue;
      // A path=-scoped clause is invisible to ops outside its scope: they
      // advance no counters, exactly as if the clause targeted another op.
      if (!clause.path_substr.empty() &&
          path.find(clause.path_substr) == std::string_view::npos) {
        continue;
      }
      ++clause.seen;
      if (clause.seen <= clause.after || clause.fired >= clause.count) {
        continue;
      }
      if (clause.prob < 1.0 && g_rng.uniform() >= clause.prob) {
        continue;  // the roll spared this op; count= is not consumed
      }
      ++clause.fired;
      if (clause.crash) {
        LDPLFS_LOG_WARN("fault injection: crashing process at %s (op %llu)",
                        op_name(op),
                        static_cast<unsigned long long>(clause.seen));
        ::_exit(137);  // as abrupt as SIGKILL: no atexit, no destructors
      }
      delay_usec = clause.delay_usec;
      if (clause.short_bytes > 0) {
        outcome.kind = Outcome::Kind::kShort;
        outcome.max_bytes = clause.short_bytes < requested ? clause.short_bytes
                                                           : requested;
        if (outcome.max_bytes == 0) outcome.max_bytes = 1;
      } else if (clause.fails || delay_usec == 0) {
        outcome.kind = Outcome::Kind::kFail;
        outcome.err = clause.err;
      }
      break;
    }
  }
  // Sleep outside the plan lock: modeled latency on concurrent ops must
  // overlap, not serialise (the parallel read engine depends on this).
  if (delay_usec > 0) ::usleep(static_cast<useconds_t>(delay_usec));
  return outcome;
}

const char* op_name(Op op) {
  for (const auto& entry : kOpNames) {
    if (entry.op == op) return entry.name;
  }
  return "?";
}

}  // namespace ldplfs::posix::faults
