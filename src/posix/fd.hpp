// RAII wrapper over a POSIX file descriptor plus thin, errno-preserving
// wrappers for the syscalls the PLFS library needs. This is the only module
// in the real stratum that issues raw syscalls; everything above it works in
// terms of UniqueFd / Result.
//
// Every helper consults the fault-injection plan (posix/faults.hpp) before
// issuing its syscall, retries transient failures (EAGAIN / EIO) under the
// configurable LDPLFS_RETRY policy (common/health.hpp: bounded attempts,
// decorrelated-jitter backoff) — real write paths fail partially and
// transiently, and the callers above expect either full success or a final
// errno — and reports its outcome to the per-backend health tracker, which
// can fail ops fast once a backend's circuit breaker is open.
//
// To attribute fd-based helpers (pwrite_all, fsync_fd, ...) to a backend,
// open_fd records the fd → path origin in a process-wide registry;
// close_fd / UniqueFd::reset remove it. fd_origin() exposes the mapping for
// callers (e.g. the write-behind engine registers its dup'd flush fds).
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace ldplfs::posix {

namespace detail {
/// Drop a descriptor's fd → path registry entry (see fd_origin()).
void forget_fd_origin(int fd);
}  // namespace detail

/// Owning file descriptor. Move-only; closes on destruction.
class UniqueFd {
 public:
  UniqueFd() = default;
  explicit UniqueFd(int fd) : fd_(fd) {}
  ~UniqueFd() { reset(); }

  UniqueFd(const UniqueFd&) = delete;
  UniqueFd& operator=(const UniqueFd&) = delete;
  UniqueFd(UniqueFd&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}
  UniqueFd& operator=(UniqueFd&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = std::exchange(other.fd_, -1);
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  explicit operator bool() const { return valid(); }

  /// Release ownership without closing.
  [[nodiscard]] int release() { return std::exchange(fd_, -1); }

  void reset(int fd = -1) {
    if (fd_ >= 0) {
      detail::forget_fd_origin(fd_);
      ::close(fd_);
    }
    fd_ = fd;
  }

 private:
  int fd_ = -1;
};

/// open(2) returning a UniqueFd. Registers the fd's origin path so that
/// fd-based helpers can attribute outcomes to the owning backend.
Result<UniqueFd> open_fd(const std::string& path, int flags, mode_t mode = 0644);

/// Path a descriptor was open_fd'd with, or "" for unknown descriptors.
std::string fd_origin(int fd);
/// Register (or re-register) a descriptor's origin path — for descriptors
/// produced outside open_fd, e.g. dup(2)'d flush fds.
void note_fd_origin(int fd, const std::string& path);

/// Full-buffer write at the current offset; loops on short writes / EINTR.
Status write_all(int fd, std::span<const std::byte> data);

/// Positional full-buffer write.
Status pwrite_all(int fd, std::span<const std::byte> data, off_t offset);

/// Positional read; loops on EINTR; returns bytes read (short at EOF).
Result<std::size_t> pread_some(int fd, std::span<std::byte> out, off_t offset);

/// Positional read that fails with EIO unless the whole span is filled.
Status pread_all(int fd, std::span<std::byte> out, off_t offset);

/// fsync(2) returning a Status; loops on EINTR.
Status fsync_fd(int fd);

/// close(2) returning a Status, for write paths where close errors matter
/// (deferred write-back failures). The descriptor is always released, even
/// when an error is reported.
Status close_fd(int fd);

/// truncate(2) on a path.
Status truncate_path(const std::string& path, off_t length);

Result<struct ::stat> stat_path(const std::string& path);
Result<struct ::stat> fstat_fd(int fd);
bool exists(const std::string& path);
bool is_directory(const std::string& path);

Status make_dir(const std::string& path, mode_t mode = 0755);
/// mkdir -p semantics.
Status make_dirs(const std::string& path, mode_t mode = 0755);
Status remove_file(const std::string& path);
Status remove_dir(const std::string& path);
/// rm -r semantics (files + directories, depth-first).
Status remove_tree(const std::string& path);
Status rename_path(const std::string& from, const std::string& to);

/// Names of entries in a directory, excluding "." / "..", sorted.
Result<std::vector<std::string>> list_dir(const std::string& path);

/// Read a whole (small) file into a string.
Result<std::string> read_file(const std::string& path);
/// Create/replace a whole file from a string.
Status write_file(const std::string& path, std::string_view content);

}  // namespace ldplfs::posix
