#include "posix/fd.hpp"

#include <dirent.h>
#include <time.h>

#include <algorithm>
#include <cerrno>

#include "common/paths.hpp"
#include "posix/faults.hpp"

namespace ldplfs::posix {

namespace {

/// How many transient failures (EAGAIN / EIO) a data-moving helper absorbs
/// before surfacing the errno. Backoff doubles from 1 ms, so a full retry
/// budget costs ~15 ms — long enough to ride out a momentary stall, short
/// enough not to hide a dead disk.
constexpr int kTransientRetries = 4;

bool transient_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EIO;
}

void backoff_sleep(int attempt) {
  struct timespec ts{0, (1L << attempt) * 1'000'000L};
  ::nanosleep(&ts, nullptr);
}

/// Issue one pwrite/write through the fault plan.
ssize_t checked_write(int fd, const void* p, std::size_t len, off_t offset,
                      bool positional) {
  const auto fault = faults::next(
      positional ? faults::Op::kPwrite : faults::Op::kWrite, len);
  if (fault.kind == faults::Outcome::Kind::kFail) {
    errno = fault.err;
    return -1;
  }
  if (fault.kind == faults::Outcome::Kind::kShort) {
    len = std::min(len, fault.max_bytes);
  }
  return positional ? ::pwrite(fd, p, len, offset) : ::write(fd, p, len);
}

}  // namespace

Result<UniqueFd> open_fd(const std::string& path, int flags, mode_t mode) {
  if (const auto fault = faults::next(faults::Op::kOpen);
      fault.kind == faults::Outcome::Kind::kFail) {
    return Errno{fault.err};
  }
  int fd;
  do {
    fd = ::open(path.c_str(), flags, mode);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Errno{errno};
  return UniqueFd(fd);
}

Status write_all(int fd, std::span<const std::byte> data) {
  const auto* p = data.data();
  std::size_t left = data.size();
  int retries = 0;
  while (left > 0) {
    const ssize_t n = checked_write(fd, p, left, 0, /*positional=*/false);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (transient_errno(errno) && retries < kTransientRetries) {
        backoff_sleep(retries++);
        continue;
      }
      return Errno{errno};
    }
    retries = 0;
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::success();
}

Status pwrite_all(int fd, std::span<const std::byte> data, off_t offset) {
  const auto* p = data.data();
  std::size_t left = data.size();
  int retries = 0;
  while (left > 0) {
    const ssize_t n = checked_write(fd, p, left, offset, /*positional=*/true);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (transient_errno(errno) && retries < kTransientRetries) {
        backoff_sleep(retries++);
        continue;
      }
      return Errno{errno};
    }
    retries = 0;
    p += n;
    left -= static_cast<std::size_t>(n);
    offset += n;
  }
  return Status::success();
}

Result<std::size_t> pread_some(int fd, std::span<std::byte> out, off_t offset) {
  auto* p = out.data();
  std::size_t got = 0;
  int retries = 0;
  while (got < out.size()) {
    std::size_t want = out.size() - got;
    const auto fault = faults::next(faults::Op::kPread, want);
    ssize_t n;
    if (fault.kind == faults::Outcome::Kind::kFail) {
      errno = fault.err;
      n = -1;
    } else {
      if (fault.kind == faults::Outcome::Kind::kShort) {
        want = std::min(want, fault.max_bytes);
      }
      n = ::pread(fd, p + got, want, offset + static_cast<off_t>(got));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (transient_errno(errno) && retries < kTransientRetries) {
        backoff_sleep(retries++);
        continue;
      }
      return Errno{errno};
    }
    if (n == 0) break;  // EOF
    retries = 0;
    got += static_cast<std::size_t>(n);
  }
  return got;
}

Status pread_all(int fd, std::span<std::byte> out, off_t offset) {
  auto got = pread_some(fd, out, offset);
  if (!got) return got.error();
  if (got.value() != out.size()) return Errno{EIO};
  return Status::success();
}

Status fsync_fd(int fd) {
  if (const auto fault = faults::next(faults::Op::kFsync);
      fault.kind == faults::Outcome::Kind::kFail) {
    return Errno{fault.err};
  }
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Errno{errno};
  return Status::success();
}

Status close_fd(int fd) {
  // The real descriptor is always closed, even when a fault is injected:
  // POSIX leaves the fd state unspecified after a failed close, and leaking
  // descriptors under injection would make tests flaky in a useless way.
  const auto fault = faults::next(faults::Op::kClose);
  const int rc = ::close(fd);
  if (fault.kind == faults::Outcome::Kind::kFail) return Errno{fault.err};
  if (rc != 0 && errno != EINTR) return Errno{errno};
  return Status::success();
}

Status truncate_path(const std::string& path, off_t length) {
  if (::truncate(path.c_str(), length) != 0) return Errno{errno};
  return Status::success();
}

Result<struct ::stat> stat_path(const std::string& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return Errno{errno};
  return st;
}

Result<struct ::stat> fstat_fd(int fd) {
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) return Errno{errno};
  return st;
}

bool exists(const std::string& path) {
  struct ::stat st{};
  return ::lstat(path.c_str(), &st) == 0;
}

bool is_directory(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Status make_dir(const std::string& path, mode_t mode) {
  if (const auto fault = faults::next(faults::Op::kMkdir);
      fault.kind == faults::Outcome::Kind::kFail) {
    return Errno{fault.err};
  }
  if (::mkdir(path.c_str(), mode) != 0) return Errno{errno};
  return Status::success();
}

Status make_dirs(const std::string& path, mode_t mode) {
  if (path.empty()) return Errno{EINVAL};
  if (is_directory(path)) return Status::success();
  const std::string parent = path_dirname(path);
  if (parent != path && parent != "/" && parent != ".") {
    if (auto st = make_dirs(parent, mode); !st) return st;
  }
  if (::mkdir(path.c_str(), mode) != 0 && errno != EEXIST) {
    return Errno{errno};
  }
  return Status::success();
}

Status remove_file(const std::string& path) {
  if (const auto fault = faults::next(faults::Op::kUnlink);
      fault.kind == faults::Outcome::Kind::kFail) {
    return Errno{fault.err};
  }
  if (::unlink(path.c_str()) != 0) return Errno{errno};
  return Status::success();
}

Status remove_dir(const std::string& path) {
  if (::rmdir(path.c_str()) != 0) return Errno{errno};
  return Status::success();
}

Status remove_tree(const std::string& path) {
  struct ::stat st{};
  if (::lstat(path.c_str(), &st) != 0) {
    return errno == ENOENT ? Status::success() : Status(Errno{errno});
  }
  if (!S_ISDIR(st.st_mode)) return remove_file(path);
  auto entries = list_dir(path);
  if (!entries) return entries.error();
  for (const auto& name : entries.value()) {
    if (auto s = remove_tree(path_join(path, name)); !s) return s;
  }
  return remove_dir(path);
}

Status rename_path(const std::string& from, const std::string& to) {
  if (const auto fault = faults::next(faults::Op::kRename);
      fault.kind == faults::Outcome::Kind::kFail) {
    return Errno{fault.err};
  }
  if (::rename(from.c_str(), to.c_str()) != 0) return Errno{errno};
  return Status::success();
}

Result<std::vector<std::string>> list_dir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno{errno};
  std::vector<std::string> names;
  while (true) {
    errno = 0;
    const dirent* ent = ::readdir(dir);
    if (ent == nullptr) {
      const int saved = errno;
      ::closedir(dir);
      if (saved != 0) return Errno{saved};
      break;
    }
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::string> read_file(const std::string& path) {
  auto fd = open_fd(path, O_RDONLY);
  if (!fd) return fd.error();
  auto st = fstat_fd(fd.value().get());
  if (!st) return st.error();
  std::string content(static_cast<std::size_t>(st.value().st_size), '\0');
  auto got = pread_some(
      fd.value().get(),
      std::span<std::byte>(reinterpret_cast<std::byte*>(content.data()),
                           content.size()),
      0);
  if (!got) return got.error();
  content.resize(got.value());
  return content;
}

Status write_file(const std::string& path, std::string_view content) {
  auto fd = open_fd(path, O_WRONLY | O_CREAT | O_TRUNC);
  if (!fd) return fd.error();
  return write_all(fd.value().get(),
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(content.data()),
                       content.size()));
}

}  // namespace ldplfs::posix
