#include "posix/fd.hpp"

#include <dirent.h>
#include <time.h>

#include <algorithm>
#include <cerrno>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/health.hpp"
#include "common/paths.hpp"
#include "common/stats.hpp"
#include "posix/faults.hpp"

namespace ldplfs::posix {

namespace {

bool transient_errno(int err) {
  return err == EAGAIN || err == EWOULDBLOCK || err == EIO;
}

/// Sleep that survives signals: nanosleep resumes with the remaining time
/// on EINTR instead of silently truncating the backoff (a signal-heavy
/// process would otherwise burn its retry budget with near-zero sleeps).
void sleep_ms_resumable(std::uint64_t ms) {
  struct timespec req{static_cast<time_t>(ms / 1000),
                      static_cast<long>(ms % 1000) * 1'000'000L};
  while (::nanosleep(&req, &req) != 0 && errno == EINTR) {
  }
}

/// One helper call's transient-retry budget under the LDPLFS_RETRY policy
/// (common/health.hpp): bounded attempts, decorrelated-jitter backoff.
/// Progress (any bytes moved) refills the budget, mirroring the historical
/// behavior of the hardcoded retry loops.
class RetryBudget {
 public:
  /// Sleep and account for one retry. False when the budget is exhausted
  /// (the caller should surface the errno and bump retry.exhausted).
  bool next_attempt() {
    if (used_ >= policy_.attempts) return false;
    ++used_;
    stats::add(stats::Counter::kRetryAttempted);
    prev_ms_ = health::next_backoff_ms(prev_ms_);
    if (prev_ms_ > 0) sleep_ms_resumable(prev_ms_);
    return true;
  }

  void reset_progress() {
    used_ = 0;
    prev_ms_ = 0;
  }

 private:
  health::RetryPolicy policy_ = health::retry_policy();
  int used_ = 0;
  std::uint64_t prev_ms_ = 0;
};

// --- fd → origin-path registry ---------------------------------------
// Lets the fd-based helpers attribute outcomes to the backend that owns
// the descriptor (health tracking, path=-scoped fault clauses). Entries
// survive UniqueFd::release() — the eventual close_fd() removes them.

std::shared_mutex g_origin_mu;
std::unordered_map<int, std::string>& origin_map() {
  static auto* map = new std::unordered_map<int, std::string>();
  return *map;
}

/// Issue one pwrite/write through the fault plan.
ssize_t checked_write(int fd, const void* p, std::size_t len, off_t offset,
                      bool positional, const std::string& path) {
  const auto fault = faults::next(
      positional ? faults::Op::kPwrite : faults::Op::kWrite, len, path);
  if (fault.kind == faults::Outcome::Kind::kFail) {
    errno = fault.err;
    return -1;
  }
  if (fault.kind == faults::Outcome::Kind::kShort) {
    len = std::min(len, fault.max_bytes);
  }
  return positional ? ::pwrite(fd, p, len, offset) : ::write(fd, p, len);
}

}  // namespace

namespace detail {

void forget_fd_origin(int fd) {
  std::unique_lock lock(g_origin_mu);
  origin_map().erase(fd);
}

}  // namespace detail

std::string fd_origin(int fd) {
  std::shared_lock lock(g_origin_mu);
  const auto& map = origin_map();
  const auto it = map.find(fd);
  return it == map.end() ? std::string() : it->second;
}

void note_fd_origin(int fd, const std::string& path) {
  if (fd < 0) return;
  std::unique_lock lock(g_origin_mu);
  origin_map()[fd] = path;
}

Result<UniqueFd> open_fd(const std::string& path, int flags, mode_t mode) {
  const bool write_intent =
      (flags & (O_WRONLY | O_RDWR | O_CREAT | O_TRUNC | O_APPEND)) != 0;
  const auto cls =
      write_intent ? health::OpClass::kWrite : health::OpClass::kRead;
  if (const int rejected = health::admit(path, cls); rejected != 0) {
    return Errno{rejected};
  }
  RetryBudget budget;
  while (true) {
    const std::uint64_t start = health::now_ns();
    const auto fault = faults::next(faults::Op::kOpen, 0, path);
    int fd = -1;
    int err = 0;
    if (fault.kind == faults::Outcome::Kind::kFail) {
      err = fault.err;
    } else {
      do {
        fd = ::open(path.c_str(), flags, mode);
      } while (fd < 0 && errno == EINTR);
      if (fd < 0) err = errno;
    }
    health::record(path, cls, err, health::now_ns() - start);
    if (err == 0) {
      note_fd_origin(fd, path);
      return UniqueFd(fd);
    }
    if (transient_errno(err)) {
      if (budget.next_attempt()) {
        if (const int rejected = health::admit(path, cls); rejected != 0) {
          return Errno{rejected};  // the breaker tripped mid-budget
        }
        continue;
      }
      stats::add(stats::Counter::kRetryExhausted);
    }
    return Errno{err};
  }
}

Status write_all(int fd, std::span<const std::byte> data) {
  const std::string path = fd_origin(fd);
  if (const int rejected = health::admit(path, health::OpClass::kWrite);
      rejected != 0) {
    return Errno{rejected};
  }
  const auto* p = data.data();
  std::size_t left = data.size();
  RetryBudget budget;
  while (left > 0) {
    const std::uint64_t start = health::now_ns();
    const ssize_t n = checked_write(fd, p, left, 0, /*positional=*/false,
                                    path);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      health::record(path, health::OpClass::kWrite, err,
                     health::now_ns() - start);
      if (transient_errno(err)) {
        if (budget.next_attempt()) {
          if (const int rejected =
                  health::admit(path, health::OpClass::kWrite);
              rejected != 0) {
            return Errno{rejected};
          }
          continue;
        }
        stats::add(stats::Counter::kRetryExhausted);
      }
      return Errno{err};
    }
    health::record(path, health::OpClass::kWrite, 0,
                   health::now_ns() - start);
    budget.reset_progress();
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::success();
}

Status pwrite_all(int fd, std::span<const std::byte> data, off_t offset) {
  const std::string path = fd_origin(fd);
  if (const int rejected = health::admit(path, health::OpClass::kWrite);
      rejected != 0) {
    return Errno{rejected};
  }
  const auto* p = data.data();
  std::size_t left = data.size();
  RetryBudget budget;
  while (left > 0) {
    const std::uint64_t start = health::now_ns();
    const ssize_t n = checked_write(fd, p, left, offset, /*positional=*/true,
                                    path);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      health::record(path, health::OpClass::kWrite, err,
                     health::now_ns() - start);
      if (transient_errno(err)) {
        if (budget.next_attempt()) {
          if (const int rejected =
                  health::admit(path, health::OpClass::kWrite);
              rejected != 0) {
            return Errno{rejected};
          }
          continue;
        }
        stats::add(stats::Counter::kRetryExhausted);
      }
      return Errno{err};
    }
    health::record(path, health::OpClass::kWrite, 0,
                   health::now_ns() - start);
    budget.reset_progress();
    p += n;
    left -= static_cast<std::size_t>(n);
    offset += n;
  }
  return Status::success();
}

Result<std::size_t> pread_some(int fd, std::span<std::byte> out, off_t offset) {
  const std::string path = fd_origin(fd);
  if (const int rejected = health::admit(path, health::OpClass::kRead);
      rejected != 0) {
    return Errno{rejected};
  }
  auto* p = out.data();
  std::size_t got = 0;
  RetryBudget budget;
  while (got < out.size()) {
    std::size_t want = out.size() - got;
    const std::uint64_t start = health::now_ns();
    const auto fault = faults::next(faults::Op::kPread, want, path);
    ssize_t n;
    if (fault.kind == faults::Outcome::Kind::kFail) {
      errno = fault.err;
      n = -1;
    } else {
      if (fault.kind == faults::Outcome::Kind::kShort) {
        want = std::min(want, fault.max_bytes);
      }
      n = ::pread(fd, p + got, want, offset + static_cast<off_t>(got));
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      health::record(path, health::OpClass::kRead, err,
                     health::now_ns() - start);
      if (transient_errno(err)) {
        if (budget.next_attempt()) {
          if (const int rejected =
                  health::admit(path, health::OpClass::kRead);
              rejected != 0) {
            return Errno{rejected};
          }
          continue;
        }
        stats::add(stats::Counter::kRetryExhausted);
      }
      return Errno{err};
    }
    health::record(path, health::OpClass::kRead, 0,
                   health::now_ns() - start);
    if (n == 0) break;  // EOF
    budget.reset_progress();
    got += static_cast<std::size_t>(n);
  }
  return got;
}

Status pread_all(int fd, std::span<std::byte> out, off_t offset) {
  auto got = pread_some(fd, out, offset);
  if (!got) return got.error();
  if (got.value() != out.size()) return Errno{EIO};
  return Status::success();
}

Status fsync_fd(int fd) {
  const std::string path = fd_origin(fd);
  if (const int rejected = health::admit(path, health::OpClass::kWrite);
      rejected != 0) {
    return Errno{rejected};
  }
  RetryBudget budget;
  while (true) {
    const std::uint64_t start = health::now_ns();
    const auto fault = faults::next(faults::Op::kFsync, 0, path);
    int err = 0;
    if (fault.kind == faults::Outcome::Kind::kFail) {
      err = fault.err;
    } else {
      int rc;
      do {
        rc = ::fsync(fd);
      } while (rc != 0 && errno == EINTR);
      if (rc != 0) err = errno;
    }
    health::record(path, health::OpClass::kWrite, err,
                   health::now_ns() - start);
    if (err == 0) return Status::success();
    // Same transient-retry treatment as the data movers: a breaker fed by
    // per-op outcomes must see fsync and pwrite absorb (or surface) a
    // transient EIO identically, or its thresholds would skew by op mix.
    if (transient_errno(err)) {
      if (budget.next_attempt()) {
        if (const int rejected = health::admit(path, health::OpClass::kWrite);
            rejected != 0) {
          return Errno{rejected};
        }
        continue;
      }
      stats::add(stats::Counter::kRetryExhausted);
    }
    return Errno{err};
  }
}

Status close_fd(int fd) {
  const std::string path = fd_origin(fd);
  detail::forget_fd_origin(fd);
  // The real descriptor is closed exactly once, and always: POSIX leaves
  // the fd state unspecified after a failed close, and leaking descriptors
  // under injection would make tests flaky in a useless way. Transient
  // *injected* errors still get the retry treatment — the plan is
  // re-consulted, so a count=-bounded EAGAIN clause is absorbed here the
  // same way the data movers absorb it. Close is never admission-gated:
  // even on an open breaker the descriptor must be released.
  RetryBudget budget;
  bool closed = false;
  while (true) {
    const std::uint64_t start = health::now_ns();
    const auto fault = faults::next(faults::Op::kClose, 0, path);
    int err = 0;
    if (!closed) {
      const int rc = ::close(fd);
      closed = true;
      if (rc != 0 && errno != EINTR) err = errno;
    }
    if (fault.kind == faults::Outcome::Kind::kFail) err = fault.err;
    health::record(path, health::OpClass::kWrite, err,
                   health::now_ns() - start);
    if (err == 0) return Status::success();
    if (transient_errno(err)) {
      if (budget.next_attempt()) continue;
      stats::add(stats::Counter::kRetryExhausted);
    }
    return Errno{err};
  }
}

Status truncate_path(const std::string& path, off_t length) {
  if (::truncate(path.c_str(), length) != 0) return Errno{errno};
  return Status::success();
}

Result<struct ::stat> stat_path(const std::string& path) {
  struct ::stat st{};
  if (::stat(path.c_str(), &st) != 0) return Errno{errno};
  return st;
}

Result<struct ::stat> fstat_fd(int fd) {
  struct ::stat st{};
  if (::fstat(fd, &st) != 0) return Errno{errno};
  return st;
}

bool exists(const std::string& path) {
  struct ::stat st{};
  return ::lstat(path.c_str(), &st) == 0;
}

bool is_directory(const std::string& path) {
  struct ::stat st{};
  return ::stat(path.c_str(), &st) == 0 && S_ISDIR(st.st_mode);
}

Status make_dir(const std::string& path, mode_t mode) {
  if (const int rejected = health::admit(path, health::OpClass::kWrite);
      rejected != 0) {
    return Errno{rejected};
  }
  const std::uint64_t start = health::now_ns();
  int err = 0;
  if (const auto fault = faults::next(faults::Op::kMkdir, 0, path);
      fault.kind == faults::Outcome::Kind::kFail) {
    err = fault.err;
  } else if (::mkdir(path.c_str(), mode) != 0) {
    err = errno;
  }
  health::record(path, health::OpClass::kWrite, err,
                 health::now_ns() - start);
  if (err != 0) return Errno{err};
  return Status::success();
}

Status make_dirs(const std::string& path, mode_t mode) {
  if (path.empty()) return Errno{EINVAL};
  if (is_directory(path)) return Status::success();
  const std::string parent = path_dirname(path);
  if (parent != path && parent != "/" && parent != ".") {
    if (auto st = make_dirs(parent, mode); !st) return st;
  }
  if (::mkdir(path.c_str(), mode) != 0 && errno != EEXIST) {
    return Errno{errno};
  }
  return Status::success();
}

Status remove_file(const std::string& path) {
  if (const int rejected = health::admit(path, health::OpClass::kWrite);
      rejected != 0) {
    return Errno{rejected};
  }
  const std::uint64_t start = health::now_ns();
  int err = 0;
  if (const auto fault = faults::next(faults::Op::kUnlink, 0, path);
      fault.kind == faults::Outcome::Kind::kFail) {
    err = fault.err;
  } else if (::unlink(path.c_str()) != 0) {
    err = errno;
  }
  health::record(path, health::OpClass::kWrite, err,
                 health::now_ns() - start);
  if (err != 0) return Errno{err};
  return Status::success();
}

Status remove_dir(const std::string& path) {
  if (::rmdir(path.c_str()) != 0) return Errno{errno};
  return Status::success();
}

Status remove_tree(const std::string& path) {
  struct ::stat st{};
  if (::lstat(path.c_str(), &st) != 0) {
    return errno == ENOENT ? Status::success() : Status(Errno{errno});
  }
  if (!S_ISDIR(st.st_mode)) return remove_file(path);
  auto entries = list_dir(path);
  if (!entries) return entries.error();
  for (const auto& name : entries.value()) {
    if (auto s = remove_tree(path_join(path, name)); !s) return s;
  }
  return remove_dir(path);
}

Status rename_path(const std::string& from, const std::string& to) {
  if (const int rejected = health::admit(from, health::OpClass::kWrite);
      rejected != 0) {
    return Errno{rejected};
  }
  const std::uint64_t start = health::now_ns();
  int err = 0;
  if (const auto fault = faults::next(faults::Op::kRename, 0, from);
      fault.kind == faults::Outcome::Kind::kFail) {
    err = fault.err;
  } else if (::rename(from.c_str(), to.c_str()) != 0) {
    err = errno;
  }
  health::record(from, health::OpClass::kWrite, err,
                 health::now_ns() - start);
  if (err != 0) return Errno{err};
  return Status::success();
}

Result<std::vector<std::string>> list_dir(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir == nullptr) return Errno{errno};
  std::vector<std::string> names;
  while (true) {
    errno = 0;
    const dirent* ent = ::readdir(dir);
    if (ent == nullptr) {
      const int saved = errno;
      ::closedir(dir);
      if (saved != 0) return Errno{saved};
      break;
    }
    const std::string name = ent->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

Result<std::string> read_file(const std::string& path) {
  auto fd = open_fd(path, O_RDONLY);
  if (!fd) return fd.error();
  auto st = fstat_fd(fd.value().get());
  if (!st) return st.error();
  std::string content(static_cast<std::size_t>(st.value().st_size), '\0');
  auto got = pread_some(
      fd.value().get(),
      std::span<std::byte>(reinterpret_cast<std::byte*>(content.data()),
                           content.size()),
      0);
  if (!got) return got.error();
  content.resize(got.value());
  return content;
}

Status write_file(const std::string& path, std::string_view content) {
  auto fd = open_fd(path, O_WRONLY | O_CREAT | O_TRUNC);
  if (!fd) return fd.error();
  return write_all(fd.value().get(),
                   std::span<const std::byte>(
                       reinterpret_cast<const std::byte*>(content.data()),
                       content.size()));
}

}  // namespace ldplfs::posix
