// ldp-grep — fixed-string / basic-regex grep over PLFS containers and plain
// files (paper Table II).
//
//   ldp-grep [--mount DIR]... [-c] [-F] PATTERN FILE...
//
// -c  print only a count of matching lines
// -F  treat PATTERN as a fixed string (default: ECMAScript regex)
#include <fcntl.h>

#include <cstdio>
#include <cstring>
#include <regex>
#include <string>

#include "tools/tool_common.hpp"

namespace {

struct GrepOptions {
  bool count_only = false;
  bool fixed = false;
};

long long match_line(const std::string& line, const std::string& pattern,
                     const std::regex* re, const GrepOptions& opt,
                     bool show_name, const std::string& path) {
  const bool hit = opt.fixed ? line.find(pattern) != std::string::npos
                             : std::regex_search(line, *re);
  if (!hit) return 0;
  if (!opt.count_only) {
    if (show_name) {
      std::printf("%s:%s\n", path.c_str(), line.c_str());
    } else {
      std::printf("%s\n", line.c_str());
    }
  }
  return 1;
}

int grep_one(const std::string& path, const std::string& pattern,
             const std::regex* re, const GrepOptions& opt, bool show_name) {
  long long matches = 0;
  // Flattened container with LDPLFS_MMAP_READS on: split lines straight out
  // of the mapped dropping — zero routed preads, no LineReader buffering.
  if (ldplfs::tools::FlatInput flat(path); flat.valid()) {
    const char* data = flat.data();
    const std::size_t size = static_cast<std::size_t>(flat.size());
    std::string line;
    std::size_t start = 0;
    while (start < size) {
      const void* nl = std::memchr(data + start, '\n', size - start);
      const std::size_t end =
          nl != nullptr
              ? static_cast<std::size_t>(static_cast<const char*>(nl) - data)
              : size;
      line.assign(data + start, end - start);
      matches += match_line(line, pattern, re, opt, show_name, path);
      start = end + 1;
    }
  } else {
    auto& r = ldplfs::tools::router();
    const int fd = r.open(path.c_str(), O_RDONLY, 0);
    if (fd < 0) {
      std::perror(("ldp-grep: " + path).c_str());
      return 2;
    }
    ldplfs::tools::LineReader reader(fd);
    std::string line;
    while (reader.next(line)) {
      matches += match_line(line, pattern, re, opt, show_name, path);
    }
    r.close(fd);
  }
  if (opt.count_only) {
    if (show_name) {
      std::printf("%s:%lld\n", path.c_str(), matches);
    } else {
      std::printf("%lld\n", matches);
    }
  }
  return matches > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  GrepOptions opt;
  std::vector<std::string> rest;
  for (const auto& arg : parsed.args) {
    if (arg == "-c") {
      opt.count_only = true;
    } else if (arg == "-F") {
      opt.fixed = true;
    } else {
      rest.push_back(arg);
    }
  }
  if (parsed.help || rest.size() < 2) {
    std::fprintf(stderr,
                 "usage: ldp-grep [--mount DIR]... [-c] [-F] PATTERN FILE...\n");
    return parsed.help ? 0 : 2;
  }
  const std::string& pattern = rest.front();
  std::regex re;
  if (!opt.fixed) {
    try {
      re = std::regex(pattern);
    } catch (const std::regex_error&) {
      std::fprintf(stderr, "ldp-grep: bad pattern '%s'\n", pattern.c_str());
      return 2;
    }
  }
  const bool show_name = rest.size() > 2;
  int rc = 1;
  for (std::size_t i = 1; i < rest.size(); ++i) {
    const int one = grep_one(rest[i], pattern, &re, opt, show_name);
    if (one == 0 && rc == 1) rc = 0;
    if (one == 2) rc = 2;
  }
  return rc;
}
