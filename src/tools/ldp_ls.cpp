// ldp-ls — list a PLFS backend directory the way applications see it:
// containers appear as regular files with their logical sizes.
//
//   ldp-ls [--mount DIR]... [-l] DIR...
//
// -l  long format: type, logical size, dropping count
#include <cstdio>

#include "common/units.hpp"
#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "tools/tool_common.hpp"

namespace {

int ls_one(const std::string& dir, bool long_format) {
  auto entries = ldplfs::plfs::plfs_readdir(dir);
  if (!entries) {
    std::fprintf(stderr, "ldp-ls: %s: %s\n", dir.c_str(),
                 entries.error().message().c_str());
    return 1;
  }
  for (const auto& entry : entries.value()) {
    if (!long_format) {
      std::printf("%s%s\n", entry.name.c_str(),
                  entry.is_directory ? "/" : "");
      continue;
    }
    if (entry.is_plfs_file) {
      const std::string full = dir + "/" + entry.name;
      auto attr = ldplfs::plfs::plfs_getattr(full);
      auto droppings = ldplfs::plfs::find_data_droppings(full);
      std::printf("-plfs  %12llu  %3zu droppings  %s\n",
                  attr ? static_cast<unsigned long long>(attr.value().size)
                       : 0ULL,
                  droppings ? droppings.value().size() : 0, entry.name.c_str());
    } else if (entry.is_directory) {
      std::printf("d      %12s  %14s %s/\n", "-", "", entry.name.c_str());
    } else {
      std::printf("-      %12s  %14s %s\n", "-", "", entry.name.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  bool long_format = false;
  std::vector<std::string> dirs;
  for (const auto& arg : parsed.args) {
    if (arg == "-l") {
      long_format = true;
    } else {
      dirs.push_back(arg);
    }
  }
  if (parsed.help || dirs.empty()) {
    std::fprintf(stderr, "usage: ldp-ls [--mount DIR]... [-l] DIR...\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& dir : dirs) rc |= ls_one(dir, long_format);
  return rc;
}
