// ldp-compact — garbage-collect a container's log: rewrite live bytes into
// a single data dropping + flattened index, reclaiming overwritten and
// truncated history.
//
//   ldp-compact [--mount DIR]... CONTAINER...
#include <cstdio>

#include "common/units.hpp"
#include "plfs/compaction.hpp"
#include "tools/tool_common.hpp"

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  if (parsed.help || parsed.args.empty()) {
    std::fprintf(stderr, "usage: ldp-compact [--mount DIR]... CONTAINER...\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& path : parsed.args) {
    auto stats = ldplfs::plfs::plfs_compact(path);
    if (!stats) {
      std::fprintf(stderr, "ldp-compact: %s: %s\n", path.c_str(),
                   stats.error().message().c_str());
      rc = 1;
      continue;
    }
    const auto& s = stats.value();
    std::printf(
        "%s: %llu -> %llu droppings, %s live, %s reclaimed (%llu extents)\n",
        path.c_str(), static_cast<unsigned long long>(s.droppings_before),
        static_cast<unsigned long long>(s.droppings_after),
        ldplfs::format_bytes(s.live_bytes).c_str(),
        ldplfs::format_bytes(s.reclaimed_bytes).c_str(),
        static_cast<unsigned long long>(s.extents));
  }
  return rc;
}
