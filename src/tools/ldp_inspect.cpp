// ldp-inspect — dump the internal structure of a PLFS container: droppings,
// merged index extents, metadata hints, logical size. The debugging window
// into the layout the paper's Fig. 1 draws.
//
//   ldp-inspect [--mount DIR]... [-v] CONTAINER...
//   ldp-inspect --shm
//
// -v     also print every merged extent (logical → dropping@physical)
// --shm  print the shared metadata plane (LDPLFS_SHM segment) instead:
//        attachment state, claimed generation slots, registered writers
#include <cstdio>

#include "common/units.hpp"
#include "plfs/container.hpp"
#include "plfs/index.hpp"
#include "plfs/plfs.hpp"
#include "plfs/recovery.hpp"
#include "plfs/shared_meta.hpp"
#include "tools/tool_common.hpp"

namespace {

int inspect_shm() {
  namespace shmeta = ldplfs::plfs::shmeta;
  const auto view = shmeta::inspect();
  if (!view.attached) {
    if (view.name.empty()) {
      std::printf("shared metadata plane: off (LDPLFS_SHM unset)\n");
    } else {
      std::printf("shared metadata plane: NOT attached (segment %s)\n",
                  view.name.c_str());
    }
    return view.name.empty() ? 0 : 1;
  }
  std::printf("shared metadata plane: attached\n");
  std::printf("  segment:           %s\n", view.name.c_str());
  std::printf("  version:           %u\n", view.version);
  std::printf("  generation slots:  %zu / %zu in use\n", view.containers_used,
              shmeta::kContainerSlots);
  std::printf("  writer slots:      %zu / %zu registered\n",
              view.writers.size(), shmeta::kWriterSlots);
  std::printf("  dead reclaims:     %llu\n",
              static_cast<unsigned long long>(view.reclaims));
  for (const auto& w : view.writers) {
    std::printf("    writer pid=%ld key=%016llx %s\n", static_cast<long>(w.pid),
                static_cast<unsigned long long>(w.key),
                w.alive ? "(alive)" : "(DEAD, reclaimable)");
  }
  return 0;
}

int inspect_one(const std::string& path, bool verbose) {
  namespace plfs = ldplfs::plfs;
  if (!plfs::plfs_is_container(path)) {
    std::fprintf(stderr, "ldp-inspect: %s: not a PLFS container\n",
                 path.c_str());
    return 1;
  }
  std::printf("container: %s\n", path.c_str());

  auto data = plfs::find_data_droppings(path);
  auto idx = plfs::find_index_droppings(path);
  if (!data || !idx) {
    std::fprintf(stderr, "ldp-inspect: %s: cannot list droppings\n",
                 path.c_str());
    return 1;
  }
  std::printf("  data droppings:  %zu\n", data.value().size());
  std::printf("  index droppings: %zu\n", idx.value().size());

  auto hints = plfs::read_meta_hints(path);
  if (hints) {
    for (const auto& hint : hints.value()) {
      std::printf("  meta hint: host=%s pid=%ld eof=%llu bytes=%llu\n",
                  hint.host.c_str(), static_cast<long>(hint.pid),
                  static_cast<unsigned long long>(hint.eof),
                  static_cast<unsigned long long>(hint.bytes));
    }
  }

  // Crash-debris survey (read-only): what ldp-recover would repair.
  if (auto scan = plfs::plfs_scan(path)) {
    const auto& damage = scan.value();
    if (damage.torn_tail_bytes() > 0) {
      std::printf("  torn index tail: %llu byte(s) across %zu dropping(s)\n",
                  static_cast<unsigned long long>(damage.torn_tail_bytes()),
                  damage.torn_tails.size());
    }
    for (const auto& orphan : damage.orphaned_droppings) {
      std::printf("  ORPHANED data dropping (no index references it): %s\n",
                  orphan.c_str());
    }
    for (const auto& bad : damage.unreadable_droppings) {
      std::printf("  UNREADABLE index dropping: %s\n", bad.c_str());
    }
  }

  auto index = plfs::GlobalIndex::build(path);
  if (!index) {
    std::fprintf(stderr, "ldp-inspect: %s: index merge failed: %s\n",
                 path.c_str(), index.error().message().c_str());
    return 1;
  }
  const auto& gi = index.value();
  std::printf("  logical size: %llu (%s)\n",
              static_cast<unsigned long long>(gi.size()),
              ldplfs::format_bytes(gi.size()).c_str());
  std::printf("  merged extents: %zu\n", gi.extent_map().extent_count());

  std::uint64_t physical = 0;
  for (const auto& extent : gi.extent_map().extents()) physical += extent.length;
  std::printf("  live bytes: %llu (%s)\n",
              static_cast<unsigned long long>(physical),
              ldplfs::format_bytes(physical).c_str());

  if (verbose) {
    for (const auto& extent : gi.extent_map().extents()) {
      std::printf("    [%12llu, %12llu) -> %s @ %llu\n",
                  static_cast<unsigned long long>(extent.logical),
                  static_cast<unsigned long long>(extent.logical + extent.length),
                  gi.data_paths()[extent.dropping].c_str(),
                  static_cast<unsigned long long>(extent.physical));
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  bool verbose = false;
  bool shm = false;
  std::vector<std::string> paths;
  for (const auto& arg : parsed.args) {
    if (arg == "-v") {
      verbose = true;
    } else if (arg == "--shm") {
      shm = true;
    } else {
      paths.push_back(arg);
    }
  }
  if (shm && !parsed.help) return inspect_shm();
  if (parsed.help || paths.empty()) {
    std::fprintf(stderr,
                 "usage: ldp-inspect [--mount DIR]... [-v] CONTAINER...\n"
                 "       ldp-inspect --shm\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& path : paths) rc |= inspect_one(path, verbose);
  return rc;
}
