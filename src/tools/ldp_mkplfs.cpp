// ldp-mkplfs — prepare a directory as a PLFS backend/mount point and print
// the environment needed to use it with the preload shim.
//
//   ldp-mkplfs DIR...
#include <sys/stat.h>

#include <cstdio>

#include "posix/fd.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: ldp-mkplfs DIR...\n");
    return 2;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) {
    auto s = ldplfs::posix::make_dirs(argv[i]);
    if (!s) {
      std::fprintf(stderr, "ldp-mkplfs: %s: %s\n", argv[i],
                   s.error().message().c_str());
      rc = 1;
      continue;
    }
    std::printf("PLFS backend ready: %s\n", argv[i]);
    std::printf("  export LDPLFS_MOUNTS=%s\n", argv[i]);
    std::printf("  LD_PRELOAD=<build>/src/preload/libldplfs.so <app>\n");
  }
  return rc;
}
