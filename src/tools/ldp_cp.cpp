// ldp-cp — cp(1) over PLFS containers and plain files (paper Table II).
//
//   ldp-cp [--mount DIR]... SRC DST
//
// Either side may be a PLFS container: copying *from* a container extracts
// the logical file; copying *to* a path under a mount creates a container.
#include <cstdio>

#include "tools/tool_common.hpp"

namespace {
void usage() {
  std::fprintf(stderr, "usage: ldp-cp [--mount DIR]... SRC DST\n");
}
}  // namespace

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  if (parsed.help || parsed.args.size() != 2) {
    usage();
    return parsed.help ? 0 : 2;
  }
  const long long copied =
      ldplfs::tools::copy_path(parsed.args[0], parsed.args[1]);
  if (copied < 0) {
    std::perror("ldp-cp");
    return 1;
  }
  return 0;
}
