// ldp-recover — repair containers after writer crashes: clears stale
// openhosts registrations and rebuilds the metadata size hint from the
// index droppings (the crash-proof source of truth).
//
//   ldp-recover [--mount DIR]... CONTAINER...
#include <cstdio>

#include "common/units.hpp"
#include "plfs/recovery.hpp"
#include "tools/tool_common.hpp"

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  if (parsed.help || parsed.args.empty()) {
    std::fprintf(stderr, "usage: ldp-recover [--mount DIR]... CONTAINER...\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& path : parsed.args) {
    auto stats = ldplfs::plfs::plfs_recover(path);
    if (!stats) {
      std::fprintf(stderr, "ldp-recover: %s: %s\n", path.c_str(),
                   stats.error().message().c_str());
      rc = 1;
      continue;
    }
    std::printf("%s: %llu stale registration(s) cleared, size %s%s\n",
                path.c_str(),
                static_cast<unsigned long long>(
                    stats.value().stale_openhosts_removed),
                ldplfs::format_bytes(stats.value().logical_size).c_str(),
                stats.value().index_readable ? "" : " (index UNREADABLE)");
  }
  return rc;
}
