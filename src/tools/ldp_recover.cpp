// ldp-recover — repair containers after writer crashes: clears stale
// openhosts registrations, trims torn index tails, quarantines undecodable
// index droppings, flags orphaned data droppings, and rebuilds the metadata
// size hint from the index droppings (the crash-proof source of truth).
//
//   ldp-recover [--mount DIR]... CONTAINER...
#include <cstdio>

#include "common/units.hpp"
#include "plfs/recovery.hpp"
#include "tools/tool_common.hpp"

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  if (parsed.help || parsed.args.empty()) {
    std::fprintf(stderr, "usage: ldp-recover [--mount DIR]... CONTAINER...\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& path : parsed.args) {
    auto stats = ldplfs::plfs::plfs_recover(path);
    if (!stats) {
      std::fprintf(stderr, "ldp-recover: %s: %s\n", path.c_str(),
                   stats.error().message().c_str());
      rc = 1;
      continue;
    }
    const auto& s = stats.value();
    std::printf("%s: %llu stale registration(s) cleared, size %s%s\n",
                path.c_str(),
                static_cast<unsigned long long>(s.stale_openhosts_removed),
                ldplfs::format_bytes(s.logical_size).c_str(),
                s.index_readable ? "" : " (index damage quarantined)");
    if (s.torn_tail_bytes > 0) {
      std::printf("  trimmed %llu torn index tail byte(s)\n",
                  static_cast<unsigned long long>(s.torn_tail_bytes));
    }
    if (s.quarantined_droppings > 0) {
      std::printf("  quarantined %llu undecodable index dropping(s)\n",
                  static_cast<unsigned long long>(s.quarantined_droppings));
    }
    if (s.orphaned_droppings > 0) {
      std::printf(
          "  %llu orphaned data dropping(s) kept (unreferenced by any "
          "index; ldp-compact prunes them)\n",
          static_cast<unsigned long long>(s.orphaned_droppings));
    }
  }
  return rc;
}
