// ldp-flatten — merge all index droppings of a container into one flattened
// index, cutting the per-open index-merge cost for subsequent readers.
//
//   ldp-flatten [--mount DIR]... CONTAINER...
#include <cstdio>

#include "plfs/plfs.hpp"
#include "tools/tool_common.hpp"

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  if (parsed.help || parsed.args.empty()) {
    std::fprintf(stderr, "usage: ldp-flatten [--mount DIR]... CONTAINER...\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& path : parsed.args) {
    auto s = ldplfs::plfs::plfs_flatten(path);
    if (!s) {
      std::fprintf(stderr, "ldp-flatten: %s: %s\n", path.c_str(),
                   s.error().message().c_str());
      rc = 1;
    }
  }
  return rc;
}
