// ldp-md5sum — md5sum(1) over PLFS containers and plain files
// (paper Table II). Prints the same "digest  path" format as coreutils,
// so outputs are directly diffable against the system tool.
//
//   ldp-md5sum [--mount DIR]... FILE...
#include <fcntl.h>

#include <cstdio>
#include <vector>

#include "common/md5.hpp"
#include "tools/tool_common.hpp"

namespace {
int sum_one(const std::string& path) {
  // Flattened container with LDPLFS_MMAP_READS on: hash the mapped dropping
  // in place — zero routed preads.
  if (ldplfs::tools::FlatInput flat(path); flat.valid()) {
    ldplfs::Md5 hasher;
    hasher.update(flat.data(), static_cast<std::size_t>(flat.size()));
    std::printf("%s  %s\n", ldplfs::Md5::to_hex(hasher.finish()).c_str(),
                path.c_str());
    return 0;
  }
  auto& r = ldplfs::tools::router();
  const int fd = r.open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    std::perror(("ldp-md5sum: " + path).c_str());
    return 1;
  }
  ldplfs::Md5 hasher;
  // Batched refills: one routed preadv (→ plfs_readx) per megabyte instead
  // of a routed read() per chunk.
  ldplfs::tools::BatchReader reader(fd, 8, 1u << 20);
  while (true) {
    const ssize_t n = reader.fill();
    if (n < 0) {
      std::perror(("ldp-md5sum: " + path).c_str());
      r.close(fd);
      return 1;
    }
    if (n == 0) break;
    hasher.update(reader.data(), static_cast<std::size_t>(n));
  }
  r.close(fd);
  std::printf("%s  %s\n", ldplfs::Md5::to_hex(hasher.finish()).c_str(),
              path.c_str());
  return 0;
}
}  // namespace

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  if (parsed.help || parsed.args.empty()) {
    std::fprintf(stderr, "usage: ldp-md5sum [--mount DIR]... FILE...\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& path : parsed.args) rc |= sum_one(path);
  return rc;
}
