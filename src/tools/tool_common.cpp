#include "tools/tool_common.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <vector>

#include "common/stats.hpp"
#include "common/units.hpp"

namespace ldplfs::tools {

FlatInput::FlatInput(const std::string& path) {
  if (!plfs::MappedContainerRegistry::reads_enabled()) return;
  auto& r = router();
  if (!r.path_is_container(path.c_str())) return;
  auto flat = plfs::plfs_flat_dropping(r.resolve_path(path.c_str()));
  if (!flat) return;  // log-structured (ENODEV) or unreadable: not eligible
  auto region =
      plfs::MappedContainerRegistry::shared().acquire(flat.value().dropping_abs);
  if (!region) {
    // Eligible but unmappable — the caller's pread loop still works.
    stats::add(stats::Counter::kMmapFallbacks);
    return;
  }
  region_ = std::move(region).value();
  size_ = std::min<std::uint64_t>(flat.value().size, region_.size());
  stats::add(stats::Counter::kMmapReads);
  stats::add(stats::Counter::kMmapBytes, size_);
}

std::size_t io_buffer_size(std::size_t fallback) {
  static const std::uint64_t env_bytes = [] {
    const char* env = std::getenv("LDPLFS_TOOL_BUFFER");
    if (env == nullptr || *env == '\0') return std::uint64_t{0};
    return parse_bytes(env);  // 0 on malformed input → fallback
  }();
  const std::uint64_t bytes = env_bytes != 0 ? env_bytes : fallback;
  return static_cast<std::size_t>(std::clamp<std::uint64_t>(
      bytes, std::uint64_t{4} << 10, std::uint64_t{256} << 20));
}

core::Router& router() {
  static core::Router& instance = []() -> core::Router& {
    core::MountTable::instance().load_from_env();
    return core::Router::instance();
  }();
  return instance;
}

ToolArgs parse_common(int argc, char** argv) {
  ToolArgs out;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if ((arg == "--mount" || arg == "-m") && i + 1 < argc) {
      core::MountTable::instance().add(argv[++i]);
    } else if (arg.rfind("--mount=", 0) == 0) {
      core::MountTable::instance().add(arg.substr(8));
    } else if (arg == "--help" || arg == "-h") {
      out.help = true;
    } else {
      out.args.push_back(arg);
    }
  }
  router();  // force env mounts to load too
  return out;
}

BatchReader::BatchReader(int fd, int segments, std::size_t buffer_size)
    : fd_(fd), segments_(std::clamp(segments, 1, 16)),
      buffer_size_(buffer_size) {}

ssize_t BatchReader::fill() {
  if (buf_.empty()) {
    buf_.resize(buffer_size_ != 0 ? buffer_size_ : io_buffer_size());
  }
  // Slice the buffer into iovecs so the whole refill is one routed preadv:
  // on a container the vector reaches plfs_readx as one batch (one
  // snapshot, per-dropping sieved reads); on a plain file the kernel takes
  // the vector whole.
  struct ::iovec iov[16];
  const std::size_t chunk =
      std::max<std::size_t>(buf_.size() / static_cast<std::size_t>(segments_),
                            std::size_t{4} << 10);
  int cnt = 0;
  std::size_t off = 0;
  while (off < buf_.size() && cnt < segments_) {
    iov[cnt].iov_base = buf_.data() + off;
    iov[cnt].iov_len = std::min(chunk, buf_.size() - off);
    off += iov[cnt].iov_len;
    ++cnt;
  }
  const ssize_t n =
      router().preadv(fd_, iov, cnt, static_cast<off_t>(pos_));
  if (n > 0) pos_ += n;
  return n;
}

long long copy_path(const std::string& src, const std::string& dst,
                    std::size_t block_size) {
  if (block_size == 0) block_size = io_buffer_size(4u << 20);
  auto& r = router();
  const int in = r.open(src.c_str(), O_RDONLY, 0);
  if (in < 0) return -1;
  const int out = r.open(dst.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out < 0) {
    const int saved = errno;
    r.close(in);
    errno = saved;
    return -1;
  }

  BatchReader reader(in, 8, block_size);
  long long total = 0;
  long long result = 0;
  while (true) {
    const ssize_t n = reader.fill();
    if (n < 0) {
      result = -1;
      break;
    }
    if (n == 0) {
      result = total;
      break;
    }
    ssize_t written = 0;
    while (written < n) {
      const ssize_t w = r.write(out, reader.data() + written,
                                static_cast<std::size_t>(n - written));
      if (w < 0) {
        result = -1;
        break;
      }
      written += w;
    }
    if (result < 0) break;
    total += n;
  }
  const int saved = errno;
  r.close(in);
  if (r.close(out) != 0 && result >= 0) result = -1;
  if (result < 0) errno = saved;
  return result;
}

bool LineReader::next(std::string& line) {
  while (true) {
    const std::size_t pos = pending_.find('\n');
    if (pos != std::string::npos) {
      line.assign(pending_, 0, pos);
      pending_.erase(0, pos + 1);
      return true;
    }
    if (eof_) {
      if (pending_.empty()) return false;
      line = std::move(pending_);
      pending_.clear();
      return true;
    }
    const ssize_t n = reader_.fill();
    if (n <= 0) {
      eof_ = true;
      continue;
    }
    pending_.append(reader_.data(), static_cast<std::size_t>(n));
  }
}

}  // namespace ldplfs::tools
