// ldp-cat — cat(1) over PLFS containers and plain files (paper Table II).
//
//   ldp-cat [--mount DIR]... FILE...
#include <fcntl.h>
#include <unistd.h>

#include <cstdio>
#include <vector>

#include "posix/fd.hpp"
#include "tools/tool_common.hpp"

namespace {
int cat_one(const std::string& path) {
  // Flattened container with LDPLFS_MMAP_READS on: stream straight from the
  // mapped dropping — zero routed preads, no refill loop.
  if (ldplfs::tools::FlatInput flat(path); flat.valid()) {
    if (auto s = ldplfs::posix::write_all(
            STDOUT_FILENO,
            {reinterpret_cast<const std::byte*>(flat.data()),
             static_cast<size_t>(flat.size())});
        !s) {
      errno = s.error_code();
      std::perror("ldp-cat: stdout");
      return 1;
    }
    return 0;
  }
  auto& r = ldplfs::tools::router();
  const int fd = r.open(path.c_str(), O_RDONLY, 0);
  if (fd < 0) {
    std::perror(("ldp-cat: " + path).c_str());
    return 1;
  }
  // Each refill is one batched preadv — on a container that is one index
  // snapshot and one sieved read per dropping for the whole buffer.
  ldplfs::tools::BatchReader reader(fd);
  int result = 0;
  while (true) {
    const ssize_t n = reader.fill();
    if (n < 0) {
      std::perror(("ldp-cat: " + path).c_str());
      result = 1;
      break;
    }
    if (n == 0) break;
    // A pipe or tty reader may accept fewer bytes than asked (or interrupt
    // with EINTR); write_all loops until the chunk is fully delivered.
    if (auto s = ldplfs::posix::write_all(
            STDOUT_FILENO,
            {reinterpret_cast<const std::byte*>(reader.data()),
             static_cast<size_t>(n)});
        !s) {
      errno = s.error_code();
      std::perror("ldp-cat: stdout");
      result = 1;
      break;
    }
  }
  r.close(fd);
  return result;
}
}  // namespace

int main(int argc, char** argv) {
  auto parsed = ldplfs::tools::parse_common(argc, argv);
  if (parsed.help || parsed.args.empty()) {
    std::fprintf(stderr, "usage: ldp-cat [--mount DIR]... FILE...\n");
    return parsed.help ? 0 : 2;
  }
  int rc = 0;
  for (const auto& path : parsed.args) rc |= cat_one(path);
  return rc;
}
