// ldp-stats: pretty-print and diff LDPLFS_STATS dumps.
//
//   ldp-stats DUMP.json            one dump: counters sorted, histogram
//                                  count/avg/p50/p99/max per op
//   ldp-stats --diff A.json B.json counter deltas (B - A), histograms as
//                                  count deltas
//
// Dumps come from the shim itself (LDPLFS_STATS=/path.json, or SIGUSR1 for
// a mid-run snapshot) — see docs/OBSERVABILITY.md for the format. The tool
// is deliberately standalone: it parses the dump with a small recursive-
// descent JSON reader instead of linking the router, so it can inspect
// dumps from any build.
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace {

using ldplfs::stats::bucket_upper_ns;

struct HistEntry {
  std::uint64_t count = 0;
  std::uint64_t sum_ns = 0;
  std::uint64_t max_ns = 0;
  std::vector<std::uint64_t> buckets;
};

struct Dump {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, HistEntry> histograms;
};

// --- minimal JSON reader (objects, arrays, strings, unsigned numbers) ---

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool parse(Dump& out) {
    skip_ws();
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; return true; }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (key == "counters") {
        if (!parse_counters(out)) return false;
      } else if (key == "histograms") {
        if (!parse_histograms(out)) return false;
      } else {
        if (!skip_value()) return false;
      }
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

 private:
  [[nodiscard]] char peek() const {
    return pos_ < text_.size() ? text_[pos_] : '\0';
  }
  bool expect(char c) {
    if (peek() != c) return false;
    ++pos_;
    return true;
  }
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool parse_string(std::string& out) {
    if (!expect('"')) return false;
    out.clear();
    while (pos_ < text_.size() && text_[pos_] != '"') {
      if (text_[pos_] == '\\' && pos_ + 1 < text_.size()) ++pos_;
      out += text_[pos_++];
    }
    return expect('"');
  }

  bool parse_number(std::uint64_t& out) {
    out = 0;
    bool any = false;
    while (std::isdigit(static_cast<unsigned char>(peek())) != 0) {
      out = out * 10 + static_cast<std::uint64_t>(text_[pos_++] - '0');
      any = true;
    }
    return any;
  }

  bool skip_value() {
    // Good enough for our own dumps: strings, numbers, arrays, objects.
    skip_ws();
    const char c = peek();
    if (c == '"') {
      std::string s;
      return parse_string(s);
    }
    if (c == '{' || c == '[') {
      const char close = c == '{' ? '}' : ']';
      ++pos_;
      int depth = 1;
      while (pos_ < text_.size() && depth > 0) {
        const char k = text_[pos_++];
        if (k == '"') {
          while (pos_ < text_.size() && text_[pos_] != '"') {
            if (text_[pos_] == '\\') ++pos_;
            ++pos_;
          }
          ++pos_;
        } else if (k == c) {
          ++depth;
        } else if (k == close) {
          --depth;
        }
      }
      return depth == 0;
    }
    while (pos_ < text_.size() && std::strchr(",}]", text_[pos_]) == nullptr) {
      ++pos_;
    }
    return true;
  }

  bool parse_counters(Dump& out) {
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; return true; }
      std::string key;
      std::uint64_t value = 0;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (!parse_number(value)) return false;
      out.counters[key] = value;
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

  bool parse_histograms(Dump& out) {
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; return true; }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      HistEntry h;
      if (!parse_hist_entry(h)) return false;
      out.histograms[key] = std::move(h);
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

  bool parse_hist_entry(HistEntry& h) {
    if (!expect('{')) return false;
    while (true) {
      skip_ws();
      if (peek() == '}') { ++pos_; return true; }
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (!expect(':')) return false;
      skip_ws();
      if (key == "buckets") {
        if (!expect('[')) return false;
        while (true) {
          skip_ws();
          if (peek() == ']') { ++pos_; break; }
          std::uint64_t v = 0;
          if (!parse_number(v)) return false;
          h.buckets.push_back(v);
          skip_ws();
          if (peek() == ',') ++pos_;
        }
      } else {
        std::uint64_t v = 0;
        if (!parse_number(v)) return false;
        if (key == "count") h.count = v;
        else if (key == "sum_ns") h.sum_ns = v;
        else if (key == "max_ns") h.max_ns = v;
      }
      skip_ws();
      if (peek() == ',') ++pos_;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool load_dump(const char* path, Dump& out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "ldp-stats: cannot open %s\n", path);
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  const std::string body = text.str();
  Parser parser(body);
  if (!parser.parse(out)) {
    std::fprintf(stderr, "ldp-stats: %s is not a stats dump\n", path);
    return false;
  }
  return true;
}

std::uint64_t percentile(const HistEntry& h, double q) {
  if (h.count == 0) return 0;
  const std::uint64_t rank =
      static_cast<std::uint64_t>(q * static_cast<double>(h.count - 1)) + 1;
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    seen += h.buckets[i];
    if (seen >= rank) {
      const std::uint64_t upper = bucket_upper_ns(i);
      return upper < h.max_ns ? upper : h.max_ns;
    }
  }
  return h.max_ns;
}

// Most histograms record nanoseconds; *.depth records dimensionless queue
// depths and must not get a time suffix.
bool is_duration(const std::string& key) {
  const auto pos = key.rfind(".depth");
  return pos == std::string::npos || pos + 6 != key.size();
}

std::string fmt_ns(std::uint64_t ns) {
  char buf[32];
  if (ns >= 1000000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fs", static_cast<double>(ns) / 1e9);
  } else if (ns >= 1000000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fms", static_cast<double>(ns) / 1e6);
  } else if (ns >= 1000ULL) {
    std::snprintf(buf, sizeof buf, "%.2fus", static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lluns",
                  static_cast<unsigned long long>(ns));
  }
  return buf;
}

// One-line digest of the resilience engine's counters (retry budget,
// circuit breaker, flush watchdog). Printed only when any is nonzero so
// dumps from runs that never saw a fault are unchanged.
void print_resilience(const Dump& dump) {
  const auto get = [&dump](const char* key) -> std::uint64_t {
    const auto it = dump.counters.find(key);
    return it == dump.counters.end() ? 0 : it->second;
  };
  const std::uint64_t attempted = get("retry.attempted");
  const std::uint64_t exhausted = get("retry.exhausted");
  const std::uint64_t opened = get("breaker.opened");
  const std::uint64_t closed = get("breaker.closed");
  const std::uint64_t halfopen = get("breaker.halfopen");
  const std::uint64_t probe_ok = get("breaker.probe.ok");
  const std::uint64_t probe_fail = get("breaker.probe.fail");
  const std::uint64_t fastfail = get("breaker.fastfail");
  const std::uint64_t flush_timeout = get("wb.flush.timeout");
  if ((attempted | exhausted | opened | closed | halfopen | probe_ok |
       probe_fail | fastfail | flush_timeout) == 0) {
    return;
  }
  std::printf("resilience:\n");
  std::printf("  retries      %llu attempted, %llu budgets exhausted\n",
              static_cast<unsigned long long>(attempted),
              static_cast<unsigned long long>(exhausted));
  std::printf(
      "  breaker      %llu opened, %llu closed, %llu half-open "
      "(probes: %llu ok, %llu failed)\n",
      static_cast<unsigned long long>(opened),
      static_cast<unsigned long long>(closed),
      static_cast<unsigned long long>(halfopen),
      static_cast<unsigned long long>(probe_ok),
      static_cast<unsigned long long>(probe_fail));
  std::printf("  fast-fails   %llu ops rejected without touching a backend\n",
              static_cast<unsigned long long>(fastfail));
  std::printf("  flush        %llu write-behind flushes timed out\n",
              static_cast<unsigned long long>(flush_timeout));
}

// One-line digest of the shared metadata plane (LDPLFS_SHM): generation
// validation outcomes, stat calls avoided, writer-registry traffic. Printed
// only when any shmeta.* counter is nonzero, so plane-off dumps are
// unchanged.
void print_shmeta(const Dump& dump) {
  const auto get = [&dump](const char* key) -> std::uint64_t {
    const auto it = dump.counters.find(key);
    return it == dump.counters.end() ? 0 : it->second;
  };
  const std::uint64_t hit = get("shmeta.gen.hit");
  const std::uint64_t stale = get("shmeta.gen.stale");
  const std::uint64_t bumps = get("shmeta.gen.bump");
  const std::uint64_t skipped = get("shmeta.stat.skipped");
  const std::uint64_t registered = get("shmeta.writers.registered");
  const std::uint64_t reclaimed = get("shmeta.writers.reclaimed");
  const std::uint64_t foreign = get("shmeta.writers.foreign");
  const std::uint64_t exhausted = get("shmeta.slots.exhausted");
  const std::uint64_t fast_create = get("shmeta.create.fast");
  if ((hit | stale | bumps | skipped | registered | reclaimed | foreign |
       exhausted | fast_create) == 0) {
    return;
  }
  std::printf("shared metadata plane:\n");
  std::printf(
      "  generations  %llu hits, %llu stale, %llu bumps published\n",
      static_cast<unsigned long long>(hit),
      static_cast<unsigned long long>(stale),
      static_cast<unsigned long long>(bumps));
  std::printf("  stat storms  %llu fingerprint validations skipped\n",
              static_cast<unsigned long long>(skipped));
  std::printf(
      "  writers      %llu registered, %llu dead-reclaimed, "
      "%llu foreign-writer sightings\n",
      static_cast<unsigned long long>(registered),
      static_cast<unsigned long long>(reclaimed),
      static_cast<unsigned long long>(foreign));
  if (exhausted != 0) {
    std::printf("  slots        %llu lookups fell back (table exhausted)\n",
                static_cast<unsigned long long>(exhausted));
  }
  if (fast_create != 0) {
    std::printf("  fast create  %llu containers via the cheap-create path\n",
                static_cast<unsigned long long>(fast_create));
  }
}

void print_dump(const Dump& dump) {
  print_resilience(dump);
  print_shmeta(dump);
  std::printf("counters:\n");
  for (const auto& [key, value] : dump.counters) {
    if (value == 0) continue;
    std::printf("  %-28s %llu\n", key.c_str(),
                static_cast<unsigned long long>(value));
  }
  std::printf("histograms:  %-8s %-10s %-10s %-10s %s\n", "count", "avg",
              "p50", "p99", "max");
  for (const auto& [key, h] : dump.histograms) {
    if (h.count == 0) continue;
    const bool dur = is_duration(key);
    const auto fmt = [dur](std::uint64_t v) {
      if (dur) return fmt_ns(v);
      char buf[32];
      std::snprintf(buf, sizeof buf, "%llu",
                    static_cast<unsigned long long>(v));
      return std::string(buf);
    };
    std::printf("  %-28s", key.c_str());
    std::printf(" %-8llu", static_cast<unsigned long long>(h.count));
    std::printf(" %-10s", fmt(h.sum_ns / h.count).c_str());
    std::printf(" %-10s", fmt(percentile(h, 0.50)).c_str());
    std::printf(" %-10s", fmt(percentile(h, 0.99)).c_str());
    std::printf(" %s\n", fmt(h.max_ns).c_str());
  }
}

void print_diff(const Dump& before, const Dump& after) {
  std::printf("counter deltas (after - before):\n");
  for (const auto& [key, value] : after.counters) {
    const auto it = before.counters.find(key);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    if (value == base) continue;
    const long long delta =
        static_cast<long long>(value) - static_cast<long long>(base);
    std::printf("  %-28s %+lld\n", key.c_str(), delta);
  }
  std::printf("histogram count deltas:\n");
  for (const auto& [key, h] : after.histograms) {
    const auto it = before.histograms.find(key);
    const std::uint64_t base =
        it == before.histograms.end() ? 0 : it->second.count;
    if (h.count == base) continue;
    const long long delta =
        static_cast<long long>(h.count) - static_cast<long long>(base);
    std::printf("  %-28s %+lld\n", key.c_str(), delta);
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: ldp-stats DUMP.json\n"
               "       ldp-stats --diff BEFORE.json AFTER.json\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 2 && std::strcmp(argv[1], "--help") != 0) {
    Dump dump;
    if (!load_dump(argv[1], dump)) return 1;
    print_dump(dump);
    return 0;
  }
  if (argc == 4 && std::strcmp(argv[1], "--diff") == 0) {
    Dump before;
    Dump after;
    if (!load_dump(argv[2], before) || !load_dump(argv[3], after)) return 1;
    print_diff(before, after);
    return 0;
  }
  return usage();
}
