// ldp-bench: the statistically rigorous benchmark driver.
//
//   ldp-bench --suite smoke|full [--json PATH] [--seed N] [--reps K]
//             [--warmup W] [--scenario NAME[,NAME...]]
//             [--modeled-latency USEC]
//       Run the named scenario matrix (warm-up + K repetitions each) and
//       print per-scenario mean/median/stddev/95% bootstrap CI; --json
//       writes the schema-versioned BENCH_suite.json report.
//
//   ldp-bench --list
//       Print the scenario matrix (name, family).
//
//   ldp-bench --compare BASELINE.json CANDIDATE.json
//             [--alpha A] [--min-effect E]
//       Mann-Whitney U per scenario on the raw samples. Exit 1 when any
//       scenario shows a statistically significant regression (p < alpha
//       AND median slowdown > min-effect); exit 0 otherwise; exit 2 on
//       usage or unreadable/invalid reports.
//
// See docs/BENCHMARKING.md for the methodology and the tier-1 gate.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench_harness/report.hpp"
#include "bench_harness/runner.hpp"

namespace {

using namespace ldplfs;

void usage(std::FILE* to) {
  std::fputs(
      "usage: ldp-bench --suite smoke|full [--json PATH] [--seed N]\n"
      "                 [--reps K] [--warmup W] [--scenario NAME[,NAME...]]\n"
      "                 [--modeled-latency USEC]\n"
      "       ldp-bench --list\n"
      "       ldp-bench --compare BASELINE.json CANDIDATE.json\n"
      "                 [--alpha A] [--min-effect E]\n",
      to);
}

bool parse_u64(const char* s, std::uint64_t& out) {
  char* end = nullptr;
  out = std::strtoull(s, &end, 10);
  return end != nullptr && *end == '\0' && end != s;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  out = std::strtod(s, &end);
  return end != nullptr && *end == '\0' && end != s;
}

void split_names(const std::string& arg, std::vector<std::string>& out) {
  std::size_t start = 0;
  while (start <= arg.size()) {
    const std::size_t comma = arg.find(',', start);
    const std::string name =
        arg.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!name.empty()) out.push_back(name);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
}

int run_list() {
  auto suite = bench::make_suite();
  std::printf("%-16s %s\n", "scenario", "family");
  for (const auto& s : suite) {
    std::printf("%-16s %s\n", s->name(), s->family());
  }
  return 0;
}

int run_measure(const bench::RunOptions& options, const std::string& suite,
                const std::string& json_path) {
  auto results = bench::run_suite(options);
  if (!results) {
    std::fprintf(stderr, "ldp-bench: run failed: %s\n",
                 results.error().message().c_str());
    return 2;
  }

  std::printf("suite %s  seed %llu  reps %d  warmup %d%s\n", suite.c_str(),
              static_cast<unsigned long long>(options.seed), options.reps,
              options.warmup,
              options.modeled_latency_usec > 0 ? "  (modeled latency)" : "");
  std::printf("%-16s %10s %10s %10s %21s\n", "scenario", "mean_s",
              "median_s", "stddev_s", "ci95_s");
  for (const auto& r : results.value()) {
    std::printf("%-16s %10.4f %10.4f %10.4f [%9.4f,%9.4f]\n",
                r.name.c_str(), r.stats.mean, r.stats.median, r.stats.stddev,
                r.stats.ci95.lo, r.stats.ci95.hi);
  }

  if (!json_path.empty()) {
    bench::Report report;
    report.suite = suite;
    report.config = options;
    report.scenarios = std::move(results.value());
    const auto saved = bench::save_report(report, json_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "ldp-bench: cannot write %s: %s\n",
                   json_path.c_str(), saved.error().message().c_str());
      return 2;
    }
    std::printf("report: %s\n", json_path.c_str());
  }
  return 0;
}

int run_compare(const std::string& base_path, const std::string& cand_path,
                const bench::CompareOptions& options) {
  auto base = bench::load_report(base_path);
  if (!base) {
    std::fprintf(stderr, "ldp-bench: cannot load baseline %s\n",
                 base_path.c_str());
    return 2;
  }
  auto cand = bench::load_report(cand_path);
  if (!cand) {
    std::fprintf(stderr, "ldp-bench: cannot load candidate %s\n",
                 cand_path.c_str());
    return 2;
  }

  const auto cmp =
      bench::compare_reports(base.value(), cand.value(), options);
  for (const auto& warning : cmp.warnings) {
    std::fprintf(stderr, "warning: %s\n", warning.c_str());
  }
  if (cmp.verdicts.empty()) {
    std::fprintf(stderr,
                 "ldp-bench: no scenario in common between %s and %s\n",
                 base_path.c_str(), cand_path.c_str());
    return 2;
  }

  std::printf("compare: alpha %.3g, min effect %.0f%%\n", options.alpha,
              options.min_effect * 100.0);
  std::printf("%-16s %10s %10s %8s %10s %6s  %s\n", "scenario", "base_s",
              "cand_s", "change", "p", "test", "verdict");
  for (const auto& v : cmp.verdicts) {
    const char* verdict = "no significant change";
    if (v.kind == bench::Verdict::Kind::kRegression) {
      verdict = "REGRESSION";
    } else if (v.kind == bench::Verdict::Kind::kImprovement) {
      verdict = "improvement";
    }
    std::printf("%-16s %10.4f %10.4f %+7.1f%% %10.4g %6s  %s\n",
                v.name.c_str(), v.base_median, v.cand_median,
                v.rel_change * 100.0, v.p, v.exact ? "exact" : "approx",
                verdict);
  }
  if (cmp.regression) {
    std::printf("result: statistically significant regression detected\n");
    return 1;
  }
  std::printf("result: no statistically significant regression\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::RunOptions options;
  bench::CompareOptions compare_options;
  std::string suite;
  std::string json_path;
  bool list = false;
  bool compare = false;
  std::vector<std::string> compare_paths;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "ldp-bench: %s needs a value\n", what);
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--help" || arg == "-h") {
      usage(stdout);
      return 0;
    } else if (arg == "--list") {
      list = true;
    } else if (arg == "--compare") {
      compare = true;
    } else if (arg == "--suite") {
      suite = next("--suite");
    } else if (arg == "--json") {
      json_path = next("--json");
    } else if (arg == "--seed") {
      if (!parse_u64(next("--seed"), options.seed)) {
        std::fprintf(stderr, "ldp-bench: bad --seed\n");
        return 2;
      }
    } else if (arg == "--reps") {
      std::uint64_t v = 0;
      if (!parse_u64(next("--reps"), v) || v < 1 || v > 1000) {
        std::fprintf(stderr, "ldp-bench: bad --reps\n");
        return 2;
      }
      options.reps = static_cast<int>(v);
    } else if (arg == "--warmup") {
      std::uint64_t v = 0;
      if (!parse_u64(next("--warmup"), v) || v > 100) {
        std::fprintf(stderr, "ldp-bench: bad --warmup\n");
        return 2;
      }
      options.warmup = static_cast<int>(v);
    } else if (arg == "--scenario") {
      split_names(next("--scenario"), options.only);
    } else if (arg == "--modeled-latency") {
      std::uint64_t v = 0;
      if (!parse_u64(next("--modeled-latency"), v) || v > 1000000) {
        std::fprintf(stderr, "ldp-bench: bad --modeled-latency\n");
        return 2;
      }
      options.modeled_latency_usec = static_cast<unsigned>(v);
    } else if (arg == "--alpha") {
      if (!parse_double(next("--alpha"), compare_options.alpha) ||
          compare_options.alpha <= 0.0 || compare_options.alpha >= 1.0) {
        std::fprintf(stderr, "ldp-bench: bad --alpha\n");
        return 2;
      }
    } else if (arg == "--min-effect") {
      if (!parse_double(next("--min-effect"), compare_options.min_effect) ||
          compare_options.min_effect < 0.0) {
        std::fprintf(stderr, "ldp-bench: bad --min-effect\n");
        return 2;
      }
    } else if (compare && arg.rfind("--", 0) != 0) {
      compare_paths.push_back(arg);
    } else {
      std::fprintf(stderr, "ldp-bench: unknown argument %s\n", arg.c_str());
      usage(stderr);
      return 2;
    }
  }

  if (list) return run_list();
  if (compare) {
    if (compare_paths.size() != 2) {
      std::fprintf(stderr,
                   "ldp-bench: --compare needs BASELINE.json and "
                   "CANDIDATE.json\n");
      return 2;
    }
    return run_compare(compare_paths[0], compare_paths[1], compare_options);
  }

  if (suite.empty() && options.only.empty()) {
    usage(stderr);
    return 2;
  }
  if (suite == "full") {
    options.smoke = false;
  } else if (suite == "smoke" || suite.empty()) {
    options.smoke = true;
    if (suite.empty()) suite = "custom";
  } else {
    std::fprintf(stderr, "ldp-bench: unknown suite '%s'\n", suite.c_str());
    return 2;
  }
  return run_measure(options, suite, json_path);
}
