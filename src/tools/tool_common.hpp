// Shared scaffolding for the ldp-* command-line tools.
//
// Every tool routes its I/O through core::Router, so each works on PLFS
// containers and plain files alike — the LDPLFS answer (paper §III-D) to
// "how do I cat/grep/md5sum a container without a FUSE mount?".
//
// Mount points come from LDPLFS_MOUNTS / PLFS_MOUNTS / LDPLFS_RC plus any
// number of leading "--mount <dir>" flags.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/router.hpp"
#include "plfs/mapped_container.hpp"

namespace ldplfs::tools {

/// Parsed common command line: mount flags consumed, rest in `args`.
struct ToolArgs {
  std::vector<std::string> args;
  bool help = false;
};

/// Consume --mount/-m flags (registering them), --help/-h, and collect the
/// remaining positional arguments.
ToolArgs parse_common(int argc, char** argv);

/// The router every tool uses (libc + global mount table).
core::Router& router();

/// I/O buffer size for the tools' read/copy loops: LDPLFS_TOOL_BUFFER
/// (accepts "4M"-style suffixes) when set and sane, else `fallback`.
/// Latched on first use. Clamped to [4 KiB, 256 MiB].
std::size_t io_buffer_size(std::size_t fallback = 1u << 20);

/// Copy the whole of `src` to `dst` through the router (either side may be
/// a container). Returns bytes copied or -1 with errno set; prints nothing.
/// `block_size` 0 means io_buffer_size(4 MiB).
long long copy_path(const std::string& src, const std::string& dst,
                    std::size_t block_size = 0);

/// Whole-file zero-copy view of a flattened container. When
/// LDPLFS_MMAP_READS is on and `path` is an identity-flat container
/// (single dropping, logical == physical — the shape compaction produces),
/// valid() is true and data()/size() expose the logical bytes straight from
/// the shared mmap registry: the tool walks the page cache with ZERO routed
/// preads and no per-chunk BatchReader refills. Anything else — plain file,
/// log-structured container, env off, map failure — leaves valid() false
/// and the caller keeps its BatchReader loop.
class FlatInput {
 public:
  explicit FlatInput(const std::string& path);

  [[nodiscard]] bool valid() const { return region_.valid(); }
  [[nodiscard]] const char* data() const {
    return reinterpret_cast<const char*>(region_.data());
  }
  [[nodiscard]] std::uint64_t size() const { return size_; }

 private:
  plfs::MappedRegion region_;
  std::uint64_t size_ = 0;  // logical size (≤ mapped length)
};

/// Batched sequential reader over a router fd: each refill issues ONE
/// routed preadv whose iovecs slice an io_buffer_size() heap buffer into
/// segment-sized pieces. On a container that lands in the list-I/O batch
/// path (plfs_readx) — one fd-table lookup, one index snapshot, and one
/// sieved read per dropping for the whole buffer — instead of a routed
/// read() per chunk. On a plain file it is a single kernel preadv.
class BatchReader {
 public:
  /// `segments` is the iovec fan-out per refill (clamped to [1, 16]);
  /// `buffer_size` 0 means io_buffer_size().
  explicit BatchReader(int fd, int segments = 8, std::size_t buffer_size = 0);

  /// Refill and return the byte count now valid in data(); 0 at EOF, -1
  /// with errno set on error.
  ssize_t fill();
  [[nodiscard]] const char* data() const { return buf_.data(); }

 private:
  int fd_;
  int segments_;
  std::size_t buffer_size_;
  std::vector<char> buf_;  // sized on first fill
  long long pos_ = 0;
};

/// Line-oriented reader over a router fd for grep-style tools; refills
/// through a BatchReader and hands out one line at a time (a big batched
/// buffer keeps container reads from bottlenecking on per-call routing
/// cost when lines are short).
class LineReader {
 public:
  explicit LineReader(int fd) : reader_(fd) {}

  /// False at EOF. The returned line excludes the trailing newline.
  bool next(std::string& line);

 private:
  BatchReader reader_;
  std::string pending_;
  bool eof_ = false;
};

}  // namespace ldplfs::tools
