// Shared scaffolding for the ldp-* command-line tools.
//
// Every tool routes its I/O through core::Router, so each works on PLFS
// containers and plain files alike — the LDPLFS answer (paper §III-D) to
// "how do I cat/grep/md5sum a container without a FUSE mount?".
//
// Mount points come from LDPLFS_MOUNTS / PLFS_MOUNTS / LDPLFS_RC plus any
// number of leading "--mount <dir>" flags.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/router.hpp"

namespace ldplfs::tools {

/// Parsed common command line: mount flags consumed, rest in `args`.
struct ToolArgs {
  std::vector<std::string> args;
  bool help = false;
};

/// Consume --mount/-m flags (registering them), --help/-h, and collect the
/// remaining positional arguments.
ToolArgs parse_common(int argc, char** argv);

/// The router every tool uses (libc + global mount table).
core::Router& router();

/// I/O buffer size for the tools' read/copy loops: LDPLFS_TOOL_BUFFER
/// (accepts "4M"-style suffixes) when set and sane, else `fallback`.
/// Latched on first use. Clamped to [4 KiB, 256 MiB].
std::size_t io_buffer_size(std::size_t fallback = 1u << 20);

/// Copy the whole of `src` to `dst` through the router (either side may be
/// a container). Returns bytes copied or -1 with errno set; prints nothing.
/// `block_size` 0 means io_buffer_size(4 MiB).
long long copy_path(const std::string& src, const std::string& dst,
                    std::size_t block_size = 0);

/// Line-oriented reader over a router fd for grep-style tools; refills an
/// io_buffer_size() heap buffer with read(2) and hands out one line at a
/// time (a big buffer keeps container reads from bottlenecking on per-call
/// routing cost when lines are short).
class LineReader {
 public:
  explicit LineReader(int fd) : fd_(fd) {}

  /// False at EOF. The returned line excludes the trailing newline.
  bool next(std::string& line);

 private:
  int fd_;
  std::string pending_;
  std::vector<char> buf_;  // sized on first refill
  bool eof_ = false;
};

}  // namespace ldplfs::tools
