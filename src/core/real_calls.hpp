// Table of "real" libc entry points used for passthrough and for shadow-fd
// bookkeeping. The preload shim fills this via dlsym(RTLD_NEXT, ...) because
// its own exported symbols shadow libc's; in-process users (unit tests, the
// ldp-* tools) use the default table that calls libc directly.
//
// The default table routes the data-path entries through the fault-injection
// plan (posix/faults.hpp), so LDPLFS_FAULTS reaches passthrough I/O in tools
// and tests. The dlsym table the shim builds is left unwrapped: under
// preload, PLFS-internal I/O is already instrumented via the posix::
// helpers, and faulting every libc call of the host process (shells,
// loaders) would make plans impossible to aim.
#pragma once

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace ldplfs::core {

struct RealCalls {
  int (*open)(const char*, int, mode_t) = nullptr;
  int (*close)(int) = nullptr;
  ssize_t (*read)(int, void*, size_t) = nullptr;
  ssize_t (*write)(int, const void*, size_t) = nullptr;
  ssize_t (*pread)(int, void*, size_t, off_t) = nullptr;
  ssize_t (*pwrite)(int, const void*, size_t, off_t) = nullptr;
  off_t (*lseek)(int, off_t, int) = nullptr;
  int (*dup)(int) = nullptr;
  int (*dup2)(int, int) = nullptr;
  int (*fsync)(int) = nullptr;
  int (*fdatasync)(int) = nullptr;
  int (*ftruncate)(int, off_t) = nullptr;
  int (*truncate)(const char*, off_t) = nullptr;
  int (*unlink)(const char*) = nullptr;
  int (*access)(const char*, int) = nullptr;
  int (*stat)(const char*, struct ::stat*) = nullptr;
  int (*lstat)(const char*, struct ::stat*) = nullptr;
  int (*fstat)(int, struct ::stat*) = nullptr;
  int (*rename)(const char*, const char*) = nullptr;
  int (*mkdir)(const char*, mode_t) = nullptr;
  int (*rmdir)(const char*) = nullptr;
};

/// Table pointing straight at libc (safe when nothing is interposed).
const RealCalls& libc_calls();

}  // namespace ldplfs::core
