#include "core/router.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <ctime>

#include <algorithm>
#include <cerrno>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string_view>
#include <vector>

#include "common/health.hpp"
#include "common/logging.hpp"
#include "common/paths.hpp"
#include "common/stats.hpp"
#include "posix/fd.hpp"

namespace ldplfs::core {

namespace {

/// POSIX-style error return: set errno from a Status/Result error.
int fail(Errno e) {
  errno = e.code;
  return -1;
}

/// FNV-1a 64-bit. Containers are backend directories, so the kernel's
/// st_ino/st_dev describe the directory inode, not the logical file; stat
/// answers synthesize both from the backend path so that tar/du/find's
/// hardlink detection ((dev, ino) pairs) sees distinct, stable identities.
std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

std::string current_dir() {
  char buf[4096];
  if (::getcwd(buf, sizeof buf) == nullptr) return "/";
  return buf;
}

}  // namespace

Router::Resolved Router::resolve(const char* path) const {
  Resolved r;
  if (path == nullptr) return r;
  r.path = normalize_path(path, current_dir());
  r.in_mount = mounts_.match(r.path).has_value();
  return r;
}

bool Router::path_in_mount(const char* path) const {
  return resolve(path).in_mount;
}

bool Router::path_is_container(const char* path) const {
  const Resolved r = resolve(path);
  return r.in_mount && plfs::plfs_is_container(r.path);
}

std::string Router::resolve_path(const char* path) const {
  return resolve(path).path;
}

int Router::make_shadow_fd() {
  const char* tmpdir = std::getenv("TMPDIR");
  if (tmpdir == nullptr || tmpdir[0] == '\0') tmpdir = "/tmp";
#ifdef O_TMPFILE
  int fd = real_.open(tmpdir, O_TMPFILE | O_RDWR, 0600);
  if (fd >= 0) return fd;
#endif
  // Fallback: create-and-unlink with a unique name.
  for (int attempt = 0; attempt < 64; ++attempt) {
    char name[512];
    std::snprintf(name, sizeof name, "%s/.ldplfs.shadow.%ld.%d", tmpdir,
                  static_cast<long>(::getpid()), attempt);
    const int fallback_fd = real_.open(name, O_RDWR | O_CREAT | O_EXCL, 0600);
    if (fallback_fd >= 0) {
      real_.unlink(name);
      return fallback_fd;
    }
    if (errno != EEXIST) break;
  }
  return -1;
}

int Router::open_plfs(const Resolved& where, int flags, mode_t mode) {
  const pid_t pid = ::getpid();
  auto handle = plfs::plfs_open(where.path, flags, pid, mode);
  if (!handle) return fail(handle.error());

  const int shadow = make_shadow_fd();
  if (shadow < 0) {
    // Close the handle we just opened, or its container bookkeeping (open
    // registration, any writer stream a future flush would create) leaks
    // for the life of the process. Logging may clobber errno, so save the
    // open() failure code around both.
    const int saved_errno = errno;
    (void)plfs::plfs_close(handle.value(), pid);
    LDPLFS_LOG_ERROR("cannot create shadow fd for %s", where.path.c_str());
    errno = saved_errno;
    return -1;
  }

  // Note: O_APPEND does not move the initial offset — POSIX starts every
  // open at 0 and appending happens per write (Router::write).

  table_.insert(shadow,
                std::make_shared<OpenFile>(std::move(handle).value(), flags, pid));
  LDPLFS_LOG_DEBUG("open(%s) -> plfs fd %d", where.path.c_str(), shadow);
  return shadow;
}

int Router::open(const char* path, int flags, mode_t mode) {
  stats::Timer timer(stats::Histogram::kRouterOpenLatency);
  const Resolved where = resolve(path);
  if (!where.in_mount) {
    timer.cancel();
    stats::add(stats::Counter::kRouterOpenPassthrough);
    return real_.open(path, flags, mode);
  }
  if (health::bypass_open(where.path)) {
    // LDPLFS_ON_FAILURE=passthrough with the backend's breaker open: route
    // new opens around PLFS entirely — the application talks to the real
    // filesystem until the breaker's half-open probe sees recovery.
    timer.cancel();
    stats::add(stats::Counter::kRouterOpenPassthrough);
    return real_.open(path, flags, mode);
  }

  struct ::stat st{};
  const bool exists = real_.lstat(where.path.c_str(), &st) == 0;
  const bool container = exists && S_ISDIR(st.st_mode) &&
                         plfs::plfs_is_container(where.path);
  if (container) {
    if ((flags & O_DIRECTORY) != 0) {
      // A container is logically a regular file, so O_DIRECTORY must fail
      // exactly as it would on one. coreutils ≥ 9 probe the copy target
      // with open(O_PATH|O_DIRECTORY) — letting this succeed makes
      // `cp src container` try to copy *into* the container.
      timer.cancel();
      stats::add(stats::Counter::kRouterOpenRouted);
      errno = ENOTDIR;
      return -1;
    }
    stats::add(stats::Counter::kRouterOpenRouted);
    return open_plfs(where, flags, mode);
  }
  if (exists) {
    // A plain file or directory inside the backend (dotfiles, the mount
    // root itself, hostdir internals) — not ours, pass straight through.
    timer.cancel();
    stats::add(stats::Counter::kRouterOpenPassthrough);
    return real_.open(path, flags, mode);
  }
  if ((flags & O_CREAT) != 0 && (flags & O_DIRECTORY) == 0) {
    stats::add(stats::Counter::kRouterOpenRouted);
    return open_plfs(where, flags, mode);
  }
  timer.cancel();
  stats::add(stats::Counter::kRouterOpenPassthrough);
  return real_.open(path, flags, mode);
}

int Router::creat(const char* path, mode_t mode) {
  return open(path, O_WRONLY | O_CREAT | O_TRUNC, mode);
}

int Router::dup(int fd) {
  auto of = table_.lookup(fd);
  stats::add(of ? stats::Counter::kRouterMetaRouted
                : stats::Counter::kRouterMetaPassthrough);
  const int newfd = real_.dup(fd);
  if (newfd >= 0 && of) table_.alias(newfd, std::move(of));
  return newfd;
}

int Router::dup2(int oldfd, int newfd) {
  auto of = table_.lookup(oldfd);
  stats::add(of ? stats::Counter::kRouterMetaRouted
                : stats::Counter::kRouterMetaPassthrough);
  // The real dup2 goes first: if it fails (EBADF, EINTR) the kernel left
  // newfd untouched, so its PLFS state — fd-table entry, possibly the last
  // alias of a writer stream — must stay intact too. Only a successful
  // dup2 implicitly closed newfd, and only then is its state retired.
  const int result = real_.dup2(oldfd, newfd);
  if (result < 0 || oldfd == newfd) return result;
  if (auto old_target = table_.erase(newfd)) {
    (void)old_target;  // writer stream closes if this was the last alias
  }
  if (of) table_.alias(result, std::move(of));
  return result;
}

Result<std::uint64_t> Router::append_eof(OpenFile& of) {
  // One process can hold several independent opens of the same logical
  // file (each with its own writer streams and write-behind buffers).
  // Appending at *this* handle's size() would place the bytes at a stale
  // EOF whenever a sibling handle holds a larger buffered tail. Drain and
  // take the max over every open handle: size() is a drain barrier per
  // handle, and the calls run sequentially, so the max is the true
  // EOF-at-flush-time the append must land at.
  auto eof = of.handle().size();
  if (!eof) return eof.error();
  std::uint64_t max_eof = eof.value();
  for (const auto& other : table_.find_all_by_path(of.handle().path())) {
    if (other.get() == &of) continue;
    auto size = other->handle().size();
    if (!size) return size.error();
    max_eof = std::max(max_eof, size.value());
  }
  return max_eof;
}

ssize_t Router::read(int fd, void* buf, size_t count) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterReadPassthrough);
    return real_.read(fd, buf, count);
  }
  stats::add(stats::Counter::kRouterReadRouted);
  stats::Timer timer(stats::Histogram::kRouterReadLatency);

  const off_t cursor = real_.lseek(fd, 0, SEEK_CUR);
  if (cursor < 0) return -1;
  auto n = of->handle().read(
      std::span<std::byte>(static_cast<std::byte*>(buf), count),
      static_cast<std::uint64_t>(cursor));
  if (!n) return fail(n.error());
  real_.lseek(fd, cursor + static_cast<off_t>(n.value()), SEEK_SET);
  stats::add(stats::Counter::kRouterReadBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

ssize_t Router::write(int fd, const void* buf, size_t count) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterWritePassthrough);
    return real_.write(fd, buf, count);
  }
  stats::add(stats::Counter::kRouterWriteRouted);
  stats::Timer timer(stats::Histogram::kRouterWriteLatency);

  std::uint64_t offset;
  if ((of->flags() & O_APPEND) != 0) {
    auto size = append_eof(*of);
    if (!size) return fail(size.error());
    offset = size.value();
  } else {
    const off_t cursor = real_.lseek(fd, 0, SEEK_CUR);
    if (cursor < 0) return -1;
    offset = static_cast<std::uint64_t>(cursor);
  }
  auto n = of->handle().write(
      std::span<const std::byte>(static_cast<const std::byte*>(buf), count),
      offset, of->pid());
  if (!n) return fail(n.error());
  real_.lseek(fd, static_cast<off_t>(offset + n.value()), SEEK_SET);
  stats::add(stats::Counter::kRouterWriteBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

ssize_t Router::pread(int fd, void* buf, size_t count, off_t offset) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterPreadPassthrough);
    return real_.pread(fd, buf, count, offset);
  }
  stats::add(stats::Counter::kRouterPreadRouted);
  stats::Timer timer(stats::Histogram::kRouterPreadLatency);
  auto n = of->handle().read(
      std::span<std::byte>(static_cast<std::byte*>(buf), count),
      static_cast<std::uint64_t>(offset));
  if (!n) return fail(n.error());
  stats::add(stats::Counter::kRouterReadBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

ssize_t Router::pwrite(int fd, const void* buf, size_t count, off_t offset) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterPwritePassthrough);
    return real_.pwrite(fd, buf, count, offset);
  }
  stats::add(stats::Counter::kRouterPwriteRouted);
  stats::Timer timer(stats::Histogram::kRouterPwriteLatency);
  std::uint64_t target = static_cast<std::uint64_t>(offset);
  if ((of->flags() & O_APPEND) != 0) {
    // Linux quirk (pwrite(2) BUGS): on an O_APPEND descriptor pwrite
    // appends at EOF, ignoring the offset. Interposition must match the
    // platform the application was written against.
    auto size = append_eof(*of);
    if (!size) return fail(size.error());
    target = size.value();
  }
  auto n = of->handle().write(
      std::span<const std::byte>(static_cast<const std::byte*>(buf), count),
      target, of->pid());
  if (!n) return fail(n.error());
  stats::add(stats::Counter::kRouterWriteBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

namespace {

/// Address an iovec vector at cumulative offsets from `pos`. Offsets are
/// fixed up front — a batch read only ever lands short at EOF, where the
/// batch ends anyway, so cumulative addressing equals cursor threading.
std::vector<plfs::ReadSegment> read_segments(const struct ::iovec* iov,
                                             int iovcnt, std::uint64_t pos) {
  std::vector<plfs::ReadSegment> segs;
  segs.reserve(iovcnt > 0 ? static_cast<std::size_t>(iovcnt) : 0);
  for (int i = 0; i < iovcnt; ++i) {
    if (iov[i].iov_len == 0) continue;
    segs.push_back(plfs::ReadSegment{
        pos, std::span<std::byte>(static_cast<std::byte*>(iov[i].iov_base),
                                  iov[i].iov_len)});
    pos += iov[i].iov_len;
  }
  return segs;
}

std::vector<plfs::WriteSegment> write_segments(const struct ::iovec* iov,
                                               int iovcnt,
                                               std::uint64_t pos) {
  std::vector<plfs::WriteSegment> segs;
  segs.reserve(iovcnt > 0 ? static_cast<std::size_t>(iovcnt) : 0);
  for (int i = 0; i < iovcnt; ++i) {
    if (iov[i].iov_len == 0) continue;
    segs.push_back(plfs::WriteSegment{
        pos, std::span<const std::byte>(
                 static_cast<const std::byte*>(iov[i].iov_base),
                 iov[i].iov_len)});
    pos += iov[i].iov_len;
  }
  return segs;
}

}  // namespace

ssize_t Router::readv(int fd, const struct ::iovec* iov, int iovcnt) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterReadvPassthrough);
    return ::readv(fd, iov, iovcnt);
  }
  stats::add(stats::Counter::kRouterReadvRouted);
  // Vectored I/O goes through the list-I/O batch API: one fd-table lookup,
  // one shadow-fd cursor round-trip, and one index snapshot for the whole
  // vector (readx), so a snapshot refresh between iovecs can never tear
  // the vector and the cumulative count survives a middle iovec landing
  // short at EOF. POSIX offset-atomicity holds because the cursor only
  // moves through this thread's own calls.
  const off_t start = real_.lseek(fd, 0, SEEK_CUR);
  if (start < 0) return -1;
  const auto segs =
      read_segments(iov, iovcnt, static_cast<std::uint64_t>(start));
  auto n = of->handle().readx(segs);
  if (!n) return fail(n.error());
  real_.lseek(fd, start + static_cast<off_t>(n.value()), SEEK_SET);
  stats::add(stats::Counter::kRouterReadBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

ssize_t Router::writev(int fd, const struct ::iovec* iov, int iovcnt) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterWritevPassthrough);
    return ::writev(fd, iov, iovcnt);
  }
  stats::add(stats::Counter::kRouterWritevRouted);
  std::uint64_t pos;
  if ((of->flags() & O_APPEND) != 0) {
    auto size = append_eof(*of);
    if (!size) return fail(size.error());
    pos = size.value();
  } else {
    const off_t start = real_.lseek(fd, 0, SEEK_CUR);
    if (start < 0) return -1;
    pos = static_cast<std::uint64_t>(start);
  }
  const auto segs = write_segments(iov, iovcnt, pos);
  auto n = of->handle().writex(segs, of->pid());
  if (!n) return fail(n.error());
  real_.lseek(fd, static_cast<off_t>(pos + n.value()), SEEK_SET);
  stats::add(stats::Counter::kRouterWriteBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

ssize_t Router::preadv(int fd, const struct ::iovec* iov, int iovcnt,
                       off_t offset) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterPreadvPassthrough);
    return ::preadv(fd, iov, iovcnt, offset);
  }
  stats::add(stats::Counter::kRouterPreadvRouted);
  const auto segs =
      read_segments(iov, iovcnt, static_cast<std::uint64_t>(offset));
  auto n = of->handle().readx(segs);
  if (!n) return fail(n.error());
  stats::add(stats::Counter::kRouterReadBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

ssize_t Router::pwritev(int fd, const struct ::iovec* iov, int iovcnt,
                        off_t offset) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterPwritevPassthrough);
    return ::pwritev(fd, iov, iovcnt, offset);
  }
  stats::add(stats::Counter::kRouterPwritevRouted);
  std::uint64_t target = static_cast<std::uint64_t>(offset);
  if ((of->flags() & O_APPEND) != 0) {
    // Same Linux quirk as pwrite (pwrite(2) BUGS): O_APPEND wins over the
    // explicit offset and the vector appends at EOF.
    auto size = append_eof(*of);
    if (!size) return fail(size.error());
    target = size.value();
  }
  const auto segs = write_segments(iov, iovcnt, target);
  auto n = of->handle().writex(segs, of->pid());
  if (!n) return fail(n.error());
  stats::add(stats::Counter::kRouterWriteBytes, n.value());
  return static_cast<ssize_t>(n.value());
}

off_t Router::lseek(int fd, off_t offset, int whence) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterLseekPassthrough);
    return real_.lseek(fd, offset, whence);
  }
  stats::add(stats::Counter::kRouterLseekRouted);
  if (whence == SEEK_END) {
    auto size = of->handle().size();
    if (!size) return fail(size.error());
    return real_.lseek(fd, static_cast<off_t>(size.value()) + offset,
                       SEEK_SET);
  }
  // SEEK_SET / SEEK_CUR live entirely in the shadow fd's kernel offset.
  return real_.lseek(fd, offset, whence);
}

int Router::close(int fd) {
  auto of = table_.erase(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterClosePassthrough);
    return real_.close(fd);
  }
  stats::add(stats::Counter::kRouterCloseRouted);
  stats::Timer timer(stats::Histogram::kRouterCloseLatency);
  int result = 0;
  if (of.use_count() == 1) {
    // Last alias: shut down the writer stream and surface its errors here,
    // like close(2) surfaces deferred write errors.
    if (auto s = of->close_stream(); !s) result = fail(s.error());
  }
  if (real_.close(fd) != 0) result = -1;
  return result;
}

int Router::fsync(int fd) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterSyncPassthrough);
    return real_.fsync(fd);
  }
  stats::add(stats::Counter::kRouterSyncRouted);
  if (auto s = of->handle().sync(of->pid()); !s) return fail(s.error());
  return 0;
}

int Router::fdatasync(int fd) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterSyncPassthrough);
    return real_.fdatasync(fd);
  }
  stats::add(stats::Counter::kRouterSyncRouted);
  if (auto s = of->handle().sync(of->pid()); !s) return fail(s.error());
  return 0;
}

int Router::ftruncate(int fd, off_t length) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterMetaPassthrough);
    return real_.ftruncate(fd, length);
  }
  stats::add(stats::Counter::kRouterMetaRouted);
  if (length < 0) return fail(Errno{EINVAL});
  if (auto s = of->handle().truncate(static_cast<std::uint64_t>(length),
                                     of->pid());
      !s) {
    return fail(s.error());
  }
  return 0;
}

int Router::fcntl(int fd, int cmd, long arg) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterMetaPassthrough);
    return ::fcntl(fd, cmd, arg);
  }
  stats::add(stats::Counter::kRouterMetaRouted);
  switch (cmd) {
    case F_DUPFD:
    case F_DUPFD_CLOEXEC: {
      // Same bug class as the dup2 fix (PR 4): the kernel duplicates the
      // shadow fd, and without an alias the duplicate routes nothing — a
      // later close(newfd) would close the shadow behind the table's back
      // while read/write on it hit the empty shadow file. Register it like
      // dup() does; the kernel-shared file description keeps the cursor
      // aliased for free.
      const int newfd = ::fcntl(fd, cmd, arg);
      if (newfd >= 0) table_.alias(newfd, std::move(of));
      return newfd;
    }
    case F_GETFL: {
      // The shadow fd's kernel flags describe the shadow tmpfile (O_RDWR,
      // never O_APPEND), not the logical open. Answer from the fd table,
      // masking the creation-time-only flags the kernel also omits.
      return of->flags() & ~(O_CREAT | O_EXCL | O_NOCTTY | O_TRUNC);
    }
    case F_SETFL: {
      // POSIX: only O_APPEND, O_NONBLOCK (and kernel-side hints we don't
      // model) are settable; access mode and creation flags are ignored.
      constexpr int kSettable = O_APPEND | O_NONBLOCK;
      of->set_flags((of->flags() & ~kSettable) |
                    (static_cast<int>(arg) & kSettable));
      return 0;
    }
    default:
      // F_GETFD/F_SETFD (close-on-exec) and advisory locks act on the
      // shadow, which *is* the kernel descriptor the application owns.
      return ::fcntl(fd, cmd, arg);
  }
}

void Router::fill_stat(struct ::stat* st, const plfs::FileAttr& attr,
                       const std::string& backend_path) const {
  *st = {};
  // The backend inode belongs to the container *directory*; leaving st_ino
  // and st_dev zero made every container a hardlink of every other to any
  // tool that deduplicates on (st_dev, st_ino) — tar, du, find -samefile.
  // Synthesize a stable inode from the backend path and a device id per
  // mount, so identities survive across processes and cache states.
  std::uint64_t ino = fnv1a(backend_path);
  if (ino == 0) ino = 1;  // 0 means "no inode" to several tools
  std::uint64_t dev = fnv1a(mounts_.match(backend_path).value_or("ldplfs"));
  if (dev == 0) dev = 1;
  st->st_ino = static_cast<ino_t>(ino);
  st->st_dev = static_cast<dev_t>(dev);
  st->st_mode = S_IFREG | (attr.mode & 07777);
  st->st_size = static_cast<off_t>(attr.size);
  st->st_nlink = 1;
  st->st_uid = ::getuid();
  st->st_gid = ::getgid();
  st->st_blksize = 4096;
  st->st_blocks = static_cast<blkcnt_t>((attr.size + 511) / 512);
  st->st_mtime = attr.mtime;
  st->st_atime = attr.mtime;
  st->st_ctime = attr.mtime;
}

int Router::stat(const char* path, struct ::stat* st) {
  const Resolved where = resolve(path);
  if (!where.in_mount || !plfs::plfs_is_container(where.path)) {
    stats::add(stats::Counter::kRouterStatPassthrough);
    return real_.stat(path, st);
  }
  stats::add(stats::Counter::kRouterStatRouted);
  // If this process has the file open for writing, unflushed records (and,
  // under write-behind, data still coalescing in the aggregation buffer)
  // make the on-disk index lag; answer from the live handle instead, the
  // way the kernel answers stat from the in-memory inode. size() drains the
  // writers, so the answer includes every acknowledged byte.
  if (auto open_file = table_.find_by_path(where.path)) {
    auto size = open_file->handle().size();
    if (!size) return fail(size.error());
    plfs::FileAttr attr;
    attr.size = size.value();
    auto disk = plfs::plfs_getattr(where.path);
    if (disk) attr.mode = disk.value().mode;
    fill_stat(st, attr, where.path);
    return 0;
  }
  auto attr = plfs::plfs_getattr(where.path);
  if (!attr) return fail(attr.error());
  fill_stat(st, attr.value(), where.path);
  return 0;
}

int Router::lstat(const char* path, struct ::stat* st) {
  // Containers are directories, never symlinks; present them as files.
  return stat(path, st);
}

int Router::fstat(int fd, struct ::stat* st) {
  auto of = table_.lookup(fd);
  if (!of) {
    stats::add(stats::Counter::kRouterStatPassthrough);
    return real_.fstat(fd, st);
  }
  stats::add(stats::Counter::kRouterStatRouted);
  // size() is a drain barrier over this handle's writers (see stat()), so
  // fstat after a burst of buffered writes reports the true logical size.
  auto size = of->handle().size();
  if (!size) return fail(size.error());
  plfs::FileAttr attr;
  attr.size = size.value();
  attr.mtime = ::time(nullptr);  // file is open and live
  // The container's creator file records the real mode; don't fabricate a
  // default for open files when stat() on the same path would not.
  if (auto disk = plfs::plfs_getattr(of->handle().path())) {
    attr.mode = disk.value().mode;
  }
  fill_stat(st, attr, of->handle().path());
  return 0;
}

int Router::unlink(const char* path) {
  const Resolved where = resolve(path);
  if (!where.in_mount || !plfs::plfs_is_container(where.path)) {
    stats::add(stats::Counter::kRouterMetaPassthrough);
    return real_.unlink(path);
  }
  stats::add(stats::Counter::kRouterMetaRouted);
  if (auto s = plfs::plfs_unlink(where.path); !s) return fail(s.error());
  return 0;
}

int Router::access(const char* path, int amode) {
  const Resolved where = resolve(path);
  if (!where.in_mount || !plfs::plfs_is_container(where.path)) {
    stats::add(stats::Counter::kRouterMetaPassthrough);
    return real_.access(path, amode);
  }
  stats::add(stats::Counter::kRouterMetaRouted);
  if (auto s = plfs::plfs_access(where.path, amode); !s) {
    return fail(s.error());
  }
  return 0;
}

int Router::truncate(const char* path, off_t length) {
  const Resolved where = resolve(path);
  if (!where.in_mount || !plfs::plfs_is_container(where.path)) {
    stats::add(stats::Counter::kRouterMetaPassthrough);
    return real_.truncate(path, length);
  }
  stats::add(stats::Counter::kRouterMetaRouted);
  if (length < 0) return fail(Errno{EINVAL});
  if (auto s = plfs::plfs_trunc(where.path,
                                static_cast<std::uint64_t>(length));
      !s) {
    return fail(s.error());
  }
  return 0;
}

int Router::rename(const char* from, const char* to) {
  const Resolved src = resolve(from);
  if (!src.in_mount || !plfs::plfs_is_container(src.path)) {
    stats::add(stats::Counter::kRouterMetaPassthrough);
    return real_.rename(from, to);
  }
  stats::add(stats::Counter::kRouterMetaRouted);
  const Resolved dst = resolve(to);
  if (!dst.in_mount) {
    // Renaming a container out of PLFS would need a copy; EXDEV tells the
    // caller to do exactly what mv(1) does across devices.
    return fail(Errno{EXDEV});
  }
  if (auto s = plfs::plfs_rename(src.path, dst.path); !s) {
    return fail(s.error());
  }
  return 0;
}

Router& Router::instance() {
  static Router router(libc_calls(), MountTable::instance());
  return router;
}

}  // namespace ldplfs::core
