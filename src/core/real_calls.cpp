#include "core/real_calls.hpp"

#include <cstdio>

namespace ldplfs::core {

namespace {

int libc_open(const char* path, int flags, mode_t mode) {
  return ::open(path, flags, mode);
}
int libc_stat(const char* path, struct ::stat* st) { return ::stat(path, st); }
int libc_lstat(const char* path, struct ::stat* st) {
  return ::lstat(path, st);
}
int libc_fstat(int fd, struct ::stat* st) { return ::fstat(fd, st); }

}  // namespace

const RealCalls& libc_calls() {
  static const RealCalls calls = [] {
    RealCalls c;
    c.open = libc_open;
    c.close = ::close;
    c.read = ::read;
    c.write = ::write;
    c.pread = ::pread;
    c.pwrite = ::pwrite;
    c.lseek = ::lseek;
    c.dup = ::dup;
    c.dup2 = ::dup2;
    c.fsync = ::fsync;
    c.fdatasync = ::fdatasync;
    c.ftruncate = ::ftruncate;
    c.truncate = ::truncate;
    c.unlink = ::unlink;
    c.access = ::access;
    c.stat = libc_stat;
    c.lstat = libc_lstat;
    c.fstat = libc_fstat;
    c.rename = ::rename;
    c.mkdir = ::mkdir;
    c.rmdir = ::rmdir;
    return c;
  }();
  return calls;
}

}  // namespace ldplfs::core
