#include "core/real_calls.hpp"

#include <algorithm>
#include <cerrno>
#include <cstdio>

#include "posix/faults.hpp"

namespace ldplfs::core {

namespace {

// The default table consults the fault plan before touching libc, so tools
// and in-process users can have their passthrough I/O failed or shortened
// with LDPLFS_FAULTS exactly like the PLFS-internal posix:: helpers. Each
// wrapper costs one relaxed atomic load when no plan is installed.
namespace faults = ldplfs::posix::faults;

bool fault_fail(faults::Op op, std::size_t requested, std::size_t* cap) {
  const auto fault = faults::next(op, requested);
  if (fault.kind == faults::Outcome::Kind::kFail) {
    errno = fault.err;
    return true;
  }
  if (fault.kind == faults::Outcome::Kind::kShort && cap != nullptr) {
    *cap = std::min(*cap, fault.max_bytes);
  }
  return false;
}

int libc_open(const char* path, int flags, mode_t mode) {
  if (fault_fail(faults::Op::kOpen, 0, nullptr)) return -1;
  return ::open(path, flags, mode);
}
int libc_close(int fd) {
  if (fault_fail(faults::Op::kClose, 0, nullptr)) return -1;
  return ::close(fd);
}
ssize_t libc_read(int fd, void* buf, size_t count) {
  if (fault_fail(faults::Op::kRead, count, &count)) return -1;
  return ::read(fd, buf, count);
}
ssize_t libc_write(int fd, const void* buf, size_t count) {
  if (fault_fail(faults::Op::kWrite, count, &count)) return -1;
  return ::write(fd, buf, count);
}
ssize_t libc_pread(int fd, void* buf, size_t count, off_t offset) {
  if (fault_fail(faults::Op::kPread, count, &count)) return -1;
  return ::pread(fd, buf, count, offset);
}
ssize_t libc_pwrite(int fd, const void* buf, size_t count, off_t offset) {
  if (fault_fail(faults::Op::kPwrite, count, &count)) return -1;
  return ::pwrite(fd, buf, count, offset);
}
int libc_fsync(int fd) {
  if (fault_fail(faults::Op::kFsync, 0, nullptr)) return -1;
  return ::fsync(fd);
}
int libc_unlink(const char* path) {
  if (fault_fail(faults::Op::kUnlink, 0, nullptr)) return -1;
  return ::unlink(path);
}
int libc_rename(const char* from, const char* to) {
  if (fault_fail(faults::Op::kRename, 0, nullptr)) return -1;
  return ::rename(from, to);
}
int libc_mkdir(const char* path, mode_t mode) {
  if (fault_fail(faults::Op::kMkdir, 0, nullptr)) return -1;
  return ::mkdir(path, mode);
}
int libc_stat(const char* path, struct ::stat* st) { return ::stat(path, st); }
int libc_lstat(const char* path, struct ::stat* st) {
  return ::lstat(path, st);
}
int libc_fstat(int fd, struct ::stat* st) { return ::fstat(fd, st); }

}  // namespace

const RealCalls& libc_calls() {
  static const RealCalls calls = [] {
    RealCalls c;
    c.open = libc_open;
    c.close = libc_close;
    c.read = libc_read;
    c.write = libc_write;
    c.pread = libc_pread;
    c.pwrite = libc_pwrite;
    c.lseek = ::lseek;
    c.dup = ::dup;
    c.dup2 = ::dup2;
    c.fsync = libc_fsync;
    c.fdatasync = ::fdatasync;
    c.ftruncate = ::ftruncate;
    c.truncate = ::truncate;
    c.unlink = libc_unlink;
    c.access = ::access;
    c.stat = libc_stat;
    c.lstat = libc_lstat;
    c.fstat = libc_fstat;
    c.rename = libc_rename;
    c.mkdir = libc_mkdir;
    c.rmdir = ::rmdir;
    return c;
  }();
  return calls;
}

}  // namespace ldplfs::core
