// fd → PLFS-handle lookup table (the structure in the paper's Fig. 2).
//
// Every PLFS open is backed by a *shadow fd*: a real, unlinked temporary
// file descriptor returned to the application. The shadow serves two jobs
// the paper describes: it reserves a genuine POSIX fd number, and its kernel
// file offset stores the cursor (maintained with lseek) that the positional
// PLFS API lacks. dup()ed descriptors alias the same table entry and — since
// dup shares the kernel file description — the same cursor, giving correct
// POSIX dup semantics for free.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "plfs/plfs.hpp"

namespace ldplfs::core {

/// State shared by all fds aliasing one PLFS open.
class OpenFile {
 public:
  OpenFile(std::shared_ptr<plfs::FileHandle> handle, int flags, pid_t pid)
      : handle_(std::move(handle)), flags_(flags), pid_(pid) {}
  ~OpenFile() { (void)close_stream(); }

  OpenFile(const OpenFile&) = delete;
  OpenFile& operator=(const OpenFile&) = delete;

  [[nodiscard]] plfs::FileHandle& handle() { return *handle_; }
  [[nodiscard]] int flags() const {
    return flags_.load(std::memory_order_relaxed);
  }
  /// Replace the open flags (fcntl F_SETFL). The caller masks to the
  /// settable bits; access mode and creation flags never change post-open.
  void set_flags(int flags) {
    flags_.store(flags, std::memory_order_relaxed);
  }
  [[nodiscard]] pid_t pid() const { return pid_; }

  /// Close the writer stream once; later calls are no-ops. Goes through
  /// plfs_close so the plfs.handle.opened/closed counters stay paired.
  Status close_stream() {
    if (closed_) return Status::success();
    closed_ = true;
    return plfs::plfs_close(handle_, pid_);
  }

 private:
  std::shared_ptr<plfs::FileHandle> handle_;
  std::atomic<int> flags_;  // F_SETFL may race reads from other threads
  pid_t pid_;
  bool closed_ = false;
};

class FdTable {
 public:
  void insert(int fd, std::shared_ptr<OpenFile> file);

  /// nullptr when `fd` is not a PLFS fd.
  [[nodiscard]] std::shared_ptr<OpenFile> lookup(int fd) const;

  /// Remove the mapping; returns it (possibly the last reference, whose
  /// destruction closes the writer stream). nullptr if absent.
  std::shared_ptr<OpenFile> erase(int fd);

  /// Alias `newfd` to the same open file (dup/dup2).
  void alias(int newfd, std::shared_ptr<OpenFile> file);

  /// Any open file whose handle targets `path` (nullptr if none). Used by
  /// stat to prefer live handle state over the on-disk index.
  [[nodiscard]] std::shared_ptr<OpenFile> find_by_path(
      const std::string& path) const;

  /// Every distinct open file whose handle targets `path`. Used by the
  /// O_APPEND write paths: the append position is EOF over *all* open
  /// handles for the path, not just the one being written through.
  [[nodiscard]] std::vector<std::shared_ptr<OpenFile>> find_all_by_path(
      const std::string& path) const;

  [[nodiscard]] bool contains(int fd) const;
  [[nodiscard]] std::size_t size() const;
  void clear();

 private:
  mutable std::mutex mu_;
  std::unordered_map<int, std::shared_ptr<OpenFile>> table_;
};

}  // namespace ldplfs::core
