#include "core/mounts.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <mutex>

#include "common/health.hpp"
#include "common/logging.hpp"
#include "common/paths.hpp"
#include "common/strings.hpp"
#include "posix/fd.hpp"

namespace ldplfs::core {

namespace {
std::string current_dir() {
  char buf[4096];
  if (::getcwd(buf, sizeof buf) == nullptr) return "/";
  return buf;
}
}  // namespace

void MountTable::add(const std::string& path) {
  std::string normal = normalize_path(path, current_dir());
  // Every mount is a tracked backend: the resilience engine attributes
  // posix-helper outcomes to the innermost registered root.
  health::register_backend(normal);
  std::unique_lock lock(mu_);
  if (std::find(mounts_.begin(), mounts_.end(), normal) == mounts_.end()) {
    mounts_.push_back(std::move(normal));
    // Longest mount first so nested mounts match the innermost root.
    std::sort(mounts_.begin(), mounts_.end(),
              [](const std::string& a, const std::string& b) {
                return a.size() > b.size();
              });
  }
}

bool MountTable::remove(const std::string& path) {
  const std::string normal = normalize_path(path, current_dir());
  std::unique_lock lock(mu_);
  auto it = std::find(mounts_.begin(), mounts_.end(), normal);
  if (it == mounts_.end()) return false;
  mounts_.erase(it);
  return true;
}

void MountTable::clear() {
  std::unique_lock lock(mu_);
  mounts_.clear();
}

std::optional<std::string> MountTable::match(
    const std::string& normalized_path) const {
  std::shared_lock lock(mu_);
  for (const auto& mount : mounts_) {
    if (path_under(normalized_path, mount)) return mount;
  }
  return std::nullopt;
}

std::vector<std::string> MountTable::mounts() const {
  std::shared_lock lock(mu_);
  return mounts_;
}

bool MountTable::empty() const {
  std::shared_lock lock(mu_);
  return mounts_.empty();
}

int MountTable::load_from_env() {
  int added = 0;
  for (const char* var : {"LDPLFS_MOUNTS", "PLFS_MOUNTS"}) {
    if (const char* value = std::getenv(var)) {
      for (const auto& path : split_nonempty(value, ':')) {
        add(path);
        ++added;
      }
    }
  }
  if (const char* rc = std::getenv("LDPLFS_RC")) {
    added += load_rc_file(rc);
  }
  return added;
}

int MountTable::load_rc_file(const std::string& path) {
  auto content = posix::read_file(path);
  if (!content) {
    LDPLFS_LOG_WARN("cannot read rc file %s: %s", path.c_str(),
                    content.error().message().c_str());
    return 0;
  }
  int added = 0;
  for (const auto& raw_line : split(content.value(), '\n')) {
    std::string_view line = trim(raw_line);
    if (line.empty() || line.front() == '#') continue;
    const auto fields = split_nonempty(line, ' ');
    if (fields.size() == 2 && fields[0] == "mount") {
      add(fields[1]);
      ++added;
    } else {
      LDPLFS_LOG_WARN("rc file %s: ignoring malformed line '%.*s'",
                      path.c_str(), static_cast<int>(line.size()),
                      line.data());
    }
  }
  return added;
}

MountTable& MountTable::instance() {
  static MountTable table;
  return table;
}

}  // namespace ldplfs::core
