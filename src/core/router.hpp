// The LDPLFS POSIX-call router (paper §III-A).
//
// Each method has the exact shape of its POSIX counterpart: it returns -1
// and sets errno on failure, so the preload shim can forward verbatim. A
// call whose path/fd is not PLFS-owned passes through to the real libc
// entry points; a PLFS call is retargeted onto the plfs:: API with the two
// pieces of book-keeping the paper describes — shadow fds and cursor
// maintenance via lseek on the shadow.
#pragma once

#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>

#include <string>

#include "core/fd_table.hpp"
#include "core/mounts.hpp"
#include "core/real_calls.hpp"

namespace ldplfs::core {

class Router {
 public:
  Router(const RealCalls& real, MountTable& mounts)
      : real_(real), mounts_(mounts) {}

  // --- fd-producing ---
  int open(const char* path, int flags, mode_t mode);
  int creat(const char* path, mode_t mode);
  int dup(int fd);
  int dup2(int oldfd, int newfd);

  // --- data path ---
  ssize_t read(int fd, void* buf, size_t count);
  ssize_t write(int fd, const void* buf, size_t count);
  ssize_t pread(int fd, void* buf, size_t count, off_t offset);
  ssize_t pwrite(int fd, const void* buf, size_t count, off_t offset);
  ssize_t readv(int fd, const struct ::iovec* iov, int iovcnt);
  ssize_t writev(int fd, const struct ::iovec* iov, int iovcnt);
  ssize_t preadv(int fd, const struct ::iovec* iov, int iovcnt, off_t offset);
  ssize_t pwritev(int fd, const struct ::iovec* iov, int iovcnt, off_t offset);
  off_t lseek(int fd, off_t offset, int whence);
  int close(int fd);
  int fsync(int fd);
  int fdatasync(int fd);
  int ftruncate(int fd, off_t length);
  /// fcntl with the variadic argument already fetched (shim does va_arg).
  /// F_DUPFD/F_DUPFD_CLOEXEC register the duplicate like dup() does;
  /// F_GETFL/F_SETFL answer from the fd table's flags (the shadow fd's
  /// kernel flags describe the shadow, not the logical file); everything
  /// else acts on the shadow fd, which is correct for F_GETFD/F_SETFD and
  /// advisory locks (the shadow is the real kernel descriptor the app owns).
  int fcntl(int fd, int cmd, long arg);

  // --- path metadata ---
  int stat(const char* path, struct ::stat* st);
  int lstat(const char* path, struct ::stat* st);
  int fstat(int fd, struct ::stat* st);
  int unlink(const char* path);
  int access(const char* path, int amode);
  int truncate(const char* path, off_t length);
  int rename(const char* from, const char* to);

  // --- queries used by the shim and by tools ---
  [[nodiscard]] bool is_plfs_fd(int fd) const { return table_.contains(fd); }
  /// True when the (possibly relative) path falls under a PLFS mount.
  [[nodiscard]] bool path_in_mount(const char* path) const;
  /// True when the path is an existing PLFS container.
  [[nodiscard]] bool path_is_container(const char* path) const;
  /// Absolute normalised form of `path` ("" for nullptr) — the key the
  /// plfs:: layer is addressed by (tools use it to probe container shape).
  [[nodiscard]] std::string resolve_path(const char* path) const;

  [[nodiscard]] MountTable& mounts() { return mounts_; }
  [[nodiscard]] FdTable& fd_table() { return table_; }

  /// Process-wide router over libc + the global mount table.
  static Router& instance();

 private:
  /// Normalise against the current working directory and match mounts.
  struct Resolved {
    std::string path;  // absolute, normalised
    bool in_mount = false;
  };
  [[nodiscard]] Resolved resolve(const char* path) const;

  /// Open an unlinked temporary file to serve as a shadow fd.
  int make_shadow_fd();

  int open_plfs(const Resolved& where, int flags, mode_t mode);
  /// EOF for an O_APPEND write through `of`: the maximum size over every
  /// open handle for the path. Each size() call drains that handle's
  /// write-behind buffers, so the result is EOF-at-flush-time — a second
  /// appender's buffered bytes can no longer be silently overwritten.
  Result<std::uint64_t> append_eof(OpenFile& of);
  /// Fill a stat answer for a logical file; `backend_path` seeds the
  /// synthesized (st_dev, st_ino) identity.
  void fill_stat(struct ::stat* st, const plfs::FileAttr& attr,
                 const std::string& backend_path) const;

  const RealCalls& real_;
  MountTable& mounts_;
  FdTable table_;
};

}  // namespace ldplfs::core
