#include "core/fd_table.hpp"

namespace ldplfs::core {

void FdTable::insert(int fd, std::shared_ptr<OpenFile> file) {
  std::lock_guard lock(mu_);
  table_[fd] = std::move(file);
}

std::shared_ptr<OpenFile> FdTable::lookup(int fd) const {
  std::lock_guard lock(mu_);
  auto it = table_.find(fd);
  return it == table_.end() ? nullptr : it->second;
}

std::shared_ptr<OpenFile> FdTable::erase(int fd) {
  std::lock_guard lock(mu_);
  auto it = table_.find(fd);
  if (it == table_.end()) return nullptr;
  auto file = std::move(it->second);
  table_.erase(it);
  return file;
}

std::shared_ptr<OpenFile> FdTable::find_by_path(
    const std::string& path) const {
  std::lock_guard lock(mu_);
  for (const auto& [fd, file] : table_) {
    if (file->handle().path() == path) return file;
  }
  return nullptr;
}

std::vector<std::shared_ptr<OpenFile>> FdTable::find_all_by_path(
    const std::string& path) const {
  std::lock_guard lock(mu_);
  std::vector<std::shared_ptr<OpenFile>> out;
  for (const auto& [fd, file] : table_) {
    if (file->handle().path() != path) continue;
    // dup'd fds alias one OpenFile; report each open file once.
    bool seen = false;
    for (const auto& f : out) {
      if (f.get() == file.get()) {
        seen = true;
        break;
      }
    }
    if (!seen) out.push_back(file);
  }
  return out;
}

void FdTable::alias(int newfd, std::shared_ptr<OpenFile> file) {
  std::lock_guard lock(mu_);
  table_[newfd] = std::move(file);
}

bool FdTable::contains(int fd) const {
  std::lock_guard lock(mu_);
  return table_.count(fd) != 0;
}

std::size_t FdTable::size() const {
  std::lock_guard lock(mu_);
  return table_.size();
}

void FdTable::clear() {
  std::lock_guard lock(mu_);
  table_.clear();
}

}  // namespace ldplfs::core
