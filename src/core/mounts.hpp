// PLFS mount-point table.
//
// LDPLFS decides per POSIX call whether a path belongs to PLFS by matching
// it against this table. Mount points are configured without touching the
// application: the LDPLFS_MOUNTS (or PLFS_MOUNTS) environment variable holds
// a colon-separated list, and/or LDPLFS_RC names a plfsrc-style file with
// "mount <path>" lines. A mount point is simply a backend directory on the
// underlying file system — containers live directly inside it.
#pragma once

#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

namespace ldplfs::core {

class MountTable {
 public:
  MountTable() = default;

  /// Add a mount point (normalised; duplicates ignored). Relative paths are
  /// resolved against the current working directory at call time.
  void add(const std::string& path);
  bool remove(const std::string& path);
  void clear();

  /// Longest-prefix match: the mount point containing `normalized_path`,
  /// or nullopt. The input must already be absolute and normalised.
  [[nodiscard]] std::optional<std::string> match(
      const std::string& normalized_path) const;

  [[nodiscard]] std::vector<std::string> mounts() const;
  [[nodiscard]] bool empty() const;

  /// Populate from LDPLFS_MOUNTS / PLFS_MOUNTS / LDPLFS_RC. Returns the
  /// number of mount points added.
  int load_from_env();

  /// Parse a plfsrc-style config: "mount <path>" lines, '#' comments.
  int load_rc_file(const std::string& path);

  /// Process-wide instance used by the preload shim.
  static MountTable& instance();

 private:
  mutable std::shared_mutex mu_;
  std::vector<std::string> mounts_;
};

}  // namespace ldplfs::core
