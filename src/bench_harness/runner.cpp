#include "bench_harness/runner.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "posix/faults.hpp"
#include "posix/fd.hpp"

namespace ldplfs::bench {
namespace {

std::string make_scratch_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                    "/ldplfs_bench_XXXXXX";
  std::vector<char> buf(dir.begin(), dir.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) std::abort();
  return buf.data();
}

std::uint64_t fnv1a(const std::string& s) {
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

std::uint64_t scenario_seed(std::uint64_t suite_seed,
                            const std::string& name) {
  std::uint64_t state = suite_seed ^ fnv1a(name);
  return splitmix64(state);
}

Result<std::vector<ScenarioResult>> run_suite(const RunOptions& options) {
  if (options.reps < 1 || options.warmup < 0) return Errno{EINVAL};
  auto suite = make_suite();

  // Validate the filter before running anything.
  for (const auto& want : options.only) {
    const bool known = std::any_of(
        suite.begin(), suite.end(),
        [&](const auto& s) { return want == s->name(); });
    if (!known) return Errno{EINVAL};
  }

  const bool modeled = options.modeled_latency_usec > 0;
  const std::string delay_spec =
      "pread:delay=" + std::to_string(options.modeled_latency_usec) +
      ",pwrite:delay=" + std::to_string(options.modeled_latency_usec);

  std::vector<ScenarioResult> results;
  for (auto& scenario : suite) {
    if (!options.only.empty() &&
        std::find(options.only.begin(), options.only.end(),
                  scenario->name()) == options.only.end()) {
      continue;
    }
    Workspace ws;
    ws.dir = make_scratch_dir();
    ws.seed = scenario_seed(options.seed, scenario->name());
    ws.smoke = options.smoke;

    scenario->setup(ws);
    // Flush dirty pages so the previous scenario's writeback is not
    // charged to this one's reps (same settle as the table2 bench).
    ::sync();
    // The modeled-latency plan covers warm-up and timed reps (including
    // any untimed per-rep prep the scenario does — modeled mode is about
    // wall-clock behaviour on a slow backend, not selective charging),
    // but never setup/teardown.
    if (modeled && !posix::faults::configure(delay_spec)) std::abort();
    for (int w = 0; w < options.warmup; ++w) (void)scenario->run_once(ws);
    ScenarioResult result;
    result.samples.reserve(static_cast<std::size_t>(options.reps));
    for (int r = 0; r < options.reps; ++r) {
      result.samples.push_back(scenario->run_once(ws));
    }
    if (modeled) posix::faults::clear();
    scenario->teardown(ws);

    result.name = scenario->name();
    result.family = scenario->family();
    // CI resampling seeded per scenario: same run → bit-identical report.
    result.stats = stats_math::summarize(result.samples,
                                         ws.seed ^ 0xC1C1C1C1ULL);
    result.extras = scenario->extras(ws);
    results.push_back(std::move(result));

    (void)posix::remove_tree(ws.dir);
  }
  return results;
}

}  // namespace ldplfs::bench
