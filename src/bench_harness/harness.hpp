// ldp-bench scenario model.
//
// A Scenario is one named, repeatable measurement: the runner gives it a
// fresh scratch directory and a seed, calls setup() once, then times
// warm-up + K repetitions of run_once(). Scenarios hold the stopwatch
// themselves (run_once returns the timed seconds) so each can exclude its
// own untimed per-rep preparation — building the to-be-recovered container
// for crash_recovery, repopulating the base file for mixed_rw — without
// the runner needing to know.
//
// The suite reproduces the paper's measurement surface and the engines
// this repo has grown since, one family per row:
//
//   unix_tools      Table II: cp / grep / md5sum over a container through
//                   the router (the §III-D "ordinary tools, no FUSE" claim)
//   n1_strided      N-1 checkpoint: all ranks interleave blocks into one
//                   logical file (write and read scenarios)
//   list_io         the noncontiguous batch API: strided_readv (one rank's
//                   slice via readx — data sieving's one-pread-per-dropping
//                   case) and coalesced_write (permuted small writes via
//                   writex — flush-boundary extent coalescing's case)
//   flat_read       zero-copy engine: sequential and strided reads of a
//                   flattened (single-dropping) container with
//                   LDPLFS_MMAP_READS on — the mapped-read fast path
//   nn_per_process  N-N: every rank owns a private file
//   metadata_storm  mdtest-style create / stat / unlink over many names
//   mixed_rw        random interleaved reads and writes in one container
//   crash_recovery  plfs_recover wall time over planted crash debris
//   multiproc       forked child processes sharing one container: repeated
//                   re-opens against a warm cache (the shared metadata
//                   plane's revalidation cost) and an mdtest-style create
//                   storm (LDPLFS_FAST_CREATE's target) — run bare vs with
//                   LDPLFS_SHM/LDPLFS_FAST_CREATE and --compare
//
// All workload shapes come from the seeded generators in
// src/workloads/posix_patterns.hpp, so a fixed --seed reproduces the exact
// byte pattern (the property tests' reproducibility oracle).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace ldplfs::bench {

/// Per-scenario execution context. `dir` is a fresh scratch directory the
/// scenario owns across its reps; `seed` is derived from the suite seed
/// and the scenario *name*, so filtering or reordering scenarios never
/// shifts another scenario's random stream.
struct Workspace {
  std::string dir;
  std::uint64_t seed = 0;
  bool smoke = true;
};

class Scenario {
 public:
  virtual ~Scenario() = default;
  [[nodiscard]] virtual const char* name() const = 0;
  [[nodiscard]] virtual const char* family() const = 0;
  /// Untimed one-off preparation (build source containers, mount tables).
  virtual void setup(Workspace&) {}
  /// One repetition; returns the timed seconds.
  virtual double run_once(Workspace&) = 0;
  virtual void teardown(Workspace&) {}
  /// Derived per-rep quantities (bytes moved, ops issued) for the report.
  [[nodiscard]] virtual std::map<std::string, double> extras(
      const Workspace&) const {
    return {};
  }
};

/// The full named scenario matrix (nine families). Order is the report
/// order.
std::vector<std::unique_ptr<Scenario>> make_suite();

}  // namespace ldplfs::bench
