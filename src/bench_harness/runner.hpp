// Suite runner: warm-up + repetitions + summary statistics per scenario.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "bench_harness/harness.hpp"
#include "common/result.hpp"
#include "common/stats_math.hpp"

namespace ldplfs::bench {

struct RunOptions {
  int reps = 5;     ///< measured repetitions per scenario (K >= 1)
  int warmup = 1;   ///< discarded warm-up repetitions (cache/page warm-in)
  std::uint64_t seed = 42;
  bool smoke = true;  ///< smoke scale (tier-1) vs full scale
  /// When non-zero, every pread/pwrite is charged this many microseconds
  /// via the LDPLFS_FAULTS delay injector for the duration of the timed
  /// reps — the modeled-parallel-file-system regime the paper's results
  /// are about (page-cache-raw numbers mostly measure memcpy).
  unsigned modeled_latency_usec = 0;
  /// Scenario-name filter; empty runs the whole matrix.
  std::vector<std::string> only;
};

struct ScenarioResult {
  std::string name;
  std::string family;
  std::vector<double> samples;  ///< seconds per rep, post-warm-up
  stats_math::Summary stats;    ///< mean/median/stddev/95% bootstrap CI
  std::map<std::string, double> extras;
};

/// Deterministic per-scenario seed: depends only on the suite seed and the
/// scenario *name*, never on suite order or filters.
std::uint64_t scenario_seed(std::uint64_t suite_seed, const std::string& name);

/// Run the (filtered) matrix. EINVAL when a filter name matches nothing.
Result<std::vector<ScenarioResult>> run_suite(const RunOptions& options);

}  // namespace ldplfs::bench
