#include "bench_harness/harness.hpp"

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/md5.hpp"
#include "common/rng.hpp"
#include "core/mounts.hpp"
#include "core/router.hpp"
#include "plfs/compaction.hpp"
#include "plfs/container.hpp"
#include "plfs/index_format.hpp"
#include "plfs/plfs.hpp"
#include "plfs/read_file.hpp"
#include "plfs/recovery.hpp"
#include "posix/fd.hpp"
#include "workloads/posix_patterns.hpp"

namespace ldplfs::bench {
namespace {

using Clock = std::chrono::steady_clock;
using workloads::fill_payload;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

[[noreturn]] void die(const char* scenario, const char* what) {
  std::fprintf(stderr, "ldp-bench: scenario %s: %s failed\n", scenario, what);
  std::abort();
}

/// Scenario sizes. One place, so smoke-vs-full scaling stays coherent:
/// smoke keeps every rep in the tens-of-milliseconds range (the tier-1
/// budget), full multiplies volume ~16x for real measurement runs.
struct Scale {
  int writers;
  int blocks_per_writer;
  std::size_t block_bytes;
  std::uint64_t tool_bytes;   // unix_tools content size
  int storm_files;            // metadata_storm names
  int mixed_ops;              // mixed_rw operations
  std::uint64_t mixed_bytes;  // mixed_rw base file size
};

Scale scale_for(const Workspace& ws) {
  if (ws.smoke) {
    return {4, 16, 64 * 1024, 4ull << 20, 48, 192, 2ull << 20};
  }
  return {16, 64, 64 * 1024, 64ull << 20, 512, 2048, 32ull << 20};
}

/// Write a strided N-1 pattern into a fresh container at `path`,
/// interleaving ranks block-by-block (checkpoint style), then close every
/// rank. Returns the elapsed seconds including the final drain/close.
double write_strided_container(const char* who, const std::string& path,
                               const workloads::StridedPattern& pattern) {
  std::vector<std::byte> buf(pattern.block_bytes);
  const auto start = Clock::now();
  auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
  if (!fd) die(who, "plfs_open");
  for (int b = 0; b < pattern.blocks_per_writer; ++b) {
    for (int w = 0; w < pattern.writers; ++w) {
      const auto& op =
          pattern.per_writer[static_cast<std::size_t>(w)][static_cast<
              std::size_t>(b)];
      fill_payload({buf.data(), op.length}, op.fill_seed);
      if (!fd.value()->write({buf.data(), op.length}, op.offset,
                             1000 + w)) {
        die(who, "write");
      }
    }
  }
  for (int w = 0; w < pattern.writers; ++w) {
    if (!fd.value()->close(1000 + w).ok()) die(who, "close");
  }
  return seconds_since(start);
}

// --- n1_strided -----------------------------------------------------------

class StridedWriteScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "strided_write"; }
  [[nodiscard]] const char* family() const override { return "n1_strided"; }

  double run_once(Workspace& ws) override {
    const Scale s = scale_for(ws);
    const auto pattern = workloads::make_strided_n1(
        s.writers, s.blocks_per_writer, s.block_bytes, ws.seed);
    const std::string path =
        ws.dir + "/strided_write." + std::to_string(rep_++);
    return write_strided_container(name(), path, pattern);
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace& ws) const override {
    const Scale s = scale_for(ws);
    return {{"bytes_per_rep",
             static_cast<double>(workloads::make_strided_n1(
                                     s.writers, s.blocks_per_writer,
                                     s.block_bytes, ws.seed)
                                     .total_bytes())}};
  }

 private:
  int rep_ = 0;
};

class StridedReadScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "strided_read"; }
  [[nodiscard]] const char* family() const override { return "n1_strided"; }

  void setup(Workspace& ws) override {
    const Scale s = scale_for(ws);
    const auto pattern = workloads::make_strided_n1(
        s.writers, s.blocks_per_writer, s.block_bytes, ws.seed);
    path_ = ws.dir + "/strided_read";
    total_ = pattern.total_bytes();
    write_strided_container(name(), path_, pattern);
  }

  double run_once(Workspace&) override {
    std::vector<std::byte> out(total_);
    const auto start = Clock::now();
    auto rf = plfs::ReadFile::open(path_);
    if (!rf) die(name(), "ReadFile::open");
    auto n = rf.value()->read(out, 0);
    const double elapsed = seconds_since(start);
    if (!n || n.value() != total_) die(name(), "read");
    return elapsed;
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace&) const override {
    return {{"bytes_per_rep", static_cast<double>(total_)}};
  }

 private:
  std::string path_;
  std::uint64_t total_ = 0;
};

// --- list_io --------------------------------------------------------------

/// One rank reads back its own strided slice through the list-I/O batch
/// API: logically strided segments, physically contiguous in the rank's
/// dropping — data sieving collapses the whole batch into one covering
/// pread per dropping instead of one per block.
class StridedReadvScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "strided_readv"; }
  [[nodiscard]] const char* family() const override { return "list_io"; }

  void setup(Workspace& ws) override {
    const Scale s = scale_for(ws);
    pattern_ = workloads::make_strided_n1(s.writers, s.blocks_per_writer,
                                          s.block_bytes, ws.seed);
    path_ = ws.dir + "/strided_readv";
    write_strided_container(name(), path_, pattern_);
    slice_bytes_ = static_cast<std::uint64_t>(pattern_.blocks_per_writer) *
                   pattern_.block_bytes;
  }

  double run_once(Workspace& ws) override {
    const int reader = rep_++ % pattern_.writers;
    const auto segs = workloads::make_strided_readv(
        pattern_, reader, ws.seed + static_cast<std::uint64_t>(rep_));
    std::vector<std::byte> arena(slice_bytes_);
    std::vector<plfs::ReadSegment> batch;
    batch.reserve(segs.size());
    std::size_t used = 0;
    for (const auto& seg : segs) {
      batch.push_back({seg.offset, {arena.data() + used, seg.length}});
      used += seg.length;
    }
    const auto start = Clock::now();
    auto fd = plfs::plfs_open(path_, O_RDONLY, 1);
    if (!fd) die(name(), "plfs_open");
    auto n = fd.value()->readx(batch);
    const double elapsed = seconds_since(start);
    if (!n || n.value() != slice_bytes_) die(name(), "readx");
    if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close");
    return elapsed;
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace&) const override {
    return {{"bytes_per_rep", static_cast<double>(slice_bytes_)}};
  }

 private:
  workloads::StridedPattern pattern_;
  std::string path_;
  std::uint64_t slice_bytes_ = 0;
  int rep_ = 0;
};

/// Randomly permuted small writes through the list-I/O batch API with the
/// write-behind engine: scattered at issue time, densely covering the
/// file, so flush-boundary extent coalescing relays each aggregation
/// window into contiguous runs — one pwrite region and one index record
/// per run instead of one per 4 KiB write.
class CoalescedWriteScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override {
    return "coalesced_write";
  }
  [[nodiscard]] const char* family() const override { return "list_io"; }

  void setup(Workspace&) override {
    // The engines under test; latched per stream at the first write, so
    // set for the scenario's whole lifetime (defaults are on — this pins
    // the measurement against ambient overrides).
    ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
    ::setenv("LDPLFS_COALESCE", "1", 1);
  }

  void teardown(Workspace&) override {
    ::unsetenv("LDPLFS_WRITE_BEHIND");
    ::unsetenv("LDPLFS_COALESCE");
  }

  double run_once(Workspace& ws) override {
    const Scale s = scale_for(ws);
    const int nblocks = s.writers * s.blocks_per_writer *
                        static_cast<int>(s.block_bytes / kWriteBlock);
    const auto ops = workloads::make_permuted_writes(
        nblocks, kWriteBlock, ws.seed + static_cast<std::uint64_t>(rep_));
    // Untimed: materialise every payload into one arena so the timed
    // section measures the engine, not the generator.
    std::vector<std::byte> arena(static_cast<std::size_t>(nblocks) *
                                 kWriteBlock);
    std::vector<plfs::WriteSegment> batch;
    batch.reserve(ops.size());
    std::size_t used = 0;
    for (const auto& op : ops) {
      fill_payload({arena.data() + used, op.length}, op.fill_seed);
      batch.push_back({op.offset, {arena.data() + used, op.length}});
      used += op.length;
    }
    const std::string path =
        ws.dir + "/coalesced." + std::to_string(rep_++);
    const auto start = Clock::now();
    auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
    if (!fd) die(name(), "plfs_open");
    auto n = fd.value()->writex(batch, 1);
    if (!n || n.value() != arena.size()) die(name(), "writex");
    if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close");
    return seconds_since(start);
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace& ws) const override {
    const Scale s = scale_for(ws);
    return {{"bytes_per_rep",
             static_cast<double>(s.writers) *
                 static_cast<double>(s.blocks_per_writer) *
                 static_cast<double>(s.block_bytes)}};
  }

 private:
  static constexpr std::size_t kWriteBlock = 4096;
  int rep_ = 0;
};

// --- flat_read (zero-copy mapped reads) -----------------------------------

/// Shared scaffolding for the mapped-read measurements: a strided N-1
/// container flattened by compaction in setup, with LDPLFS_MMAP_READS
/// pinned on for the scenario's lifetime (checked per open, same
/// setenv-in-setup pattern as coalesced_write). Reads are served by memcpy
/// from the registry's mapping of the single dropping — zero preads. An
/// ambient LDPLFS_MMAP_FORCE_FALLBACK=1 fails every acquire and drops the
/// same reps onto the pread/sieve path: that one knob yields both the
/// mapped-vs-pread --compare and the gate's detectable fallback storm.
class FlatReadScenario : public Scenario {
 public:
  [[nodiscard]] const char* family() const override { return "flat_read"; }

  void setup(Workspace& ws) override {
    const Scale s = scale_for(ws);
    pattern_ = workloads::make_strided_n1(s.writers, s.blocks_per_writer,
                                          s.block_bytes, ws.seed);
    path_ = ws.dir + "/" + std::string(name());
    total_ = pattern_.total_bytes();
    write_strided_container(name(), path_, pattern_);
    if (!plfs::plfs_compact(path_)) die(name(), "plfs_compact");
    ::setenv("LDPLFS_MMAP_READS", "1", 1);
  }

  void teardown(Workspace&) override { ::unsetenv("LDPLFS_MMAP_READS"); }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace&) const override {
    return {{"bytes_per_rep", static_cast<double>(bytes_per_rep_)}};
  }

 protected:
  workloads::StridedPattern pattern_;
  std::string path_;
  std::uint64_t total_ = 0;
  std::uint64_t bytes_per_rep_ = 0;
};

class FlatSeqReadScenario final : public FlatReadScenario {
 public:
  [[nodiscard]] const char* name() const override { return "flat_seq_read"; }

  void setup(Workspace& ws) override {
    FlatReadScenario::setup(ws);
    bytes_per_rep_ = total_;
  }

  double run_once(Workspace&) override {
    std::vector<std::byte> out(total_);
    const auto start = Clock::now();
    auto rf = plfs::ReadFile::open(path_);
    if (!rf) die(name(), "ReadFile::open");
    auto n = rf.value()->read(out, 0);
    const double elapsed = seconds_since(start);
    if (!n || n.value() != total_) die(name(), "read");
    return elapsed;
  }
};

class FlatStridedReadScenario final : public FlatReadScenario {
 public:
  [[nodiscard]] const char* name() const override {
    return "flat_strided_read";
  }

  void setup(Workspace& ws) override {
    FlatReadScenario::setup(ws);
    bytes_per_rep_ = static_cast<std::uint64_t>(pattern_.blocks_per_writer) *
                     pattern_.block_bytes;
  }

  double run_once(Workspace& ws) override {
    const int reader = rep_++ % pattern_.writers;
    const auto segs = workloads::make_strided_readv(
        pattern_, reader, ws.seed + static_cast<std::uint64_t>(rep_));
    std::vector<std::byte> arena(bytes_per_rep_);
    std::vector<plfs::ReadSegment> batch;
    batch.reserve(segs.size());
    std::size_t used = 0;
    for (const auto& seg : segs) {
      batch.push_back({seg.offset, {arena.data() + used, seg.length}});
      used += seg.length;
    }
    const auto start = Clock::now();
    auto fd = plfs::plfs_open(path_, O_RDONLY, 1);
    if (!fd) die(name(), "plfs_open");
    auto n = fd.value()->readx(batch);
    const double elapsed = seconds_since(start);
    if (!n || n.value() != bytes_per_rep_) die(name(), "readx");
    if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close");
    return elapsed;
  }

 private:
  int rep_ = 0;
};

// --- nn_per_process -------------------------------------------------------

class NnWriteScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "nn_write"; }
  [[nodiscard]] const char* family() const override {
    return "nn_per_process";
  }

  double run_once(Workspace& ws) override {
    const Scale s = scale_for(ws);
    std::vector<std::byte> buf(s.block_bytes);
    Rng rng(ws.seed);
    const auto start = Clock::now();
    for (int p = 0; p < s.writers; ++p) {
      const std::string path = ws.dir + "/nn." + std::to_string(rep_) + "." +
                               std::to_string(p);
      auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
      if (!fd) die(name(), "plfs_open");
      for (int b = 0; b < s.blocks_per_writer; ++b) {
        fill_payload(buf, rng.next());
        if (!fd.value()->write(buf,
                               static_cast<std::uint64_t>(b) * s.block_bytes,
                               1)) {
          die(name(), "write");
        }
      }
      if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close");
    }
    ++rep_;
    return seconds_since(start);
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace& ws) const override {
    const Scale s = scale_for(ws);
    return {{"bytes_per_rep", static_cast<double>(s.writers) *
                                  static_cast<double>(s.blocks_per_writer) *
                                  static_cast<double>(s.block_bytes)}};
  }

 private:
  int rep_ = 0;
};

// --- metadata_storm -------------------------------------------------------

class MetadataStormScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "metadata_storm"; }
  [[nodiscard]] const char* family() const override {
    return "metadata_storm";
  }

  double run_once(Workspace& ws) override {
    const Scale s = scale_for(ws);
    const auto names = workloads::make_storm_names(s.storm_files, ws.seed);
    const auto start = Clock::now();
    for (const auto& n : names) {
      auto fd = plfs::plfs_open(ws.dir + "/" + n, O_CREAT | O_WRONLY, 1);
      if (!fd) die(name(), "create");
      if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close");
    }
    for (const auto& n : names) {
      if (!plfs::plfs_getattr(ws.dir + "/" + n)) die(name(), "stat");
    }
    for (const auto& n : names) {
      if (!plfs::plfs_unlink(ws.dir + "/" + n).ok()) die(name(), "unlink");
    }
    return seconds_since(start);
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace& ws) const override {
    // create + stat + unlink per name
    return {{"ops_per_rep", 3.0 * scale_for(ws).storm_files}};
  }
};

// --- mixed_rw -------------------------------------------------------------

class MixedRwScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "mixed_rw"; }
  [[nodiscard]] const char* family() const override { return "mixed_rw"; }

  double run_once(Workspace& ws) override {
    const Scale s = scale_for(ws);
    const std::string path = ws.dir + "/mixed." + std::to_string(rep_++);
    // Untimed: populate the base file (sequential seeded content).
    {
      auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
      if (!fd) die(name(), "plfs_open(base)");
      std::vector<std::byte> base(1u << 20);
      std::uint64_t off = 0;
      Rng rng(ws.seed ^ 0x6d69786564ULL);  // "mixed"
      while (off < s.mixed_bytes) {
        const std::size_t n = static_cast<std::size_t>(
            std::min<std::uint64_t>(base.size(), s.mixed_bytes - off));
        fill_payload({base.data(), n}, rng.next());
        if (!fd.value()->write({base.data(), n}, off, 1)) {
          die(name(), "write(base)");
        }
        off += n;
      }
      if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close(base)");
    }
    const auto stream = workloads::make_mixed_rw(
        s.mixed_bytes, s.mixed_ops, 64 * 1024, 0.5, ws.seed);
    std::vector<std::byte> buf(64 * 1024);
    const auto start = Clock::now();
    auto fd = plfs::plfs_open(path, O_RDWR, 1);
    if (!fd) die(name(), "plfs_open(rw)");
    for (const auto& op : stream) {
      if (op.is_read) {
        if (!fd.value()->read({buf.data(), op.length}, op.offset)) {
          die(name(), "read");
        }
      } else {
        fill_payload({buf.data(), op.length}, op.fill_seed);
        if (!fd.value()->write({buf.data(), op.length}, op.offset, 1)) {
          die(name(), "write");
        }
      }
    }
    if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close");
    return seconds_since(start);
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace& ws) const override {
    return {{"ops_per_rep", static_cast<double>(scale_for(ws).mixed_ops)}};
  }

 private:
  int rep_ = 0;
};

// --- unix_tools (Table II) ------------------------------------------------

/// Shared scaffolding: a router whose mount table covers ws.dir/mnt, a
/// text container at mnt/data (NEEDLE lines every ~512), and a flat
/// destination area outside the mount.
class UnixToolScenario : public Scenario {
 public:
  [[nodiscard]] const char* family() const override { return "unix_tools"; }

  void setup(Workspace& ws) override {
    mnt_ = ws.dir + "/mnt";
    flat_ = ws.dir + "/flat";
    if (!posix::make_dirs(mnt_).ok() || !posix::make_dirs(flat_).ok()) {
      die(name(), "mkdir");
    }
    mounts_.add(mnt_);
    router_ = std::make_unique<core::Router>(core::libc_calls(), mounts_);
    src_ = mnt_ + "/data";
    bytes_ = scale_for(ws).tool_bytes;

    const int fd = router_->open(src_.c_str(),
                                 O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) die(name(), "open(src)");
    Rng rng(ws.seed);
    std::vector<char> block(1u << 20);
    std::uint64_t written = 0;
    while (written < bytes_) {
      for (std::size_t i = 0; i < block.size(); i += 64) {
        std::snprintf(block.data() + i, 64,
                      "line %12llu payload %016llx pattern %s",
                      static_cast<unsigned long long>(written + i),
                      static_cast<unsigned long long>(rng.next()),
                      (rng.below(512) == 0) ? "NEEDLE" : "hay");
        block[i + 63] = '\n';
      }
      const auto n = static_cast<std::size_t>(
          std::min<std::uint64_t>(block.size(), bytes_ - written));
      if (router_->write(fd, block.data(), n) != static_cast<ssize_t>(n)) {
        die(name(), "write(src)");
      }
      written += n;
    }
    if (router_->close(fd) != 0) die(name(), "close(src)");
  }

  void teardown(Workspace&) override { router_.reset(); }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace&) const override {
    return {{"bytes_per_rep", static_cast<double>(bytes_)}};
  }

 protected:
  core::MountTable mounts_;
  std::unique_ptr<core::Router> router_;
  std::string mnt_;
  std::string flat_;
  std::string src_;
  std::uint64_t bytes_ = 0;
};

class UnixCpScenario final : public UnixToolScenario {
 public:
  [[nodiscard]] const char* name() const override { return "unix_cp"; }

  double run_once(Workspace&) override {
    const std::string dst = flat_ + "/copy." + std::to_string(rep_++);
    std::vector<char> buf(1u << 20);
    const auto start = Clock::now();
    const int in = router_->open(src_.c_str(), O_RDONLY, 0);
    const int out =
        router_->open(dst.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (in < 0 || out < 0) die(name(), "open");
    ssize_t n;
    while ((n = router_->read(in, buf.data(), buf.size())) > 0) {
      if (router_->write(out, buf.data(), static_cast<std::size_t>(n)) != n) {
        die(name(), "write");
      }
    }
    if (n < 0) die(name(), "read");
    router_->close(in);
    if (router_->close(out) != 0) die(name(), "close");
    return seconds_since(start);
  }

 private:
  int rep_ = 0;
};

class UnixGrepScenario final : public UnixToolScenario {
 public:
  [[nodiscard]] const char* name() const override { return "unix_grep"; }

  double run_once(Workspace&) override {
    std::vector<char> buf(1u << 20);
    const auto start = Clock::now();
    const int fd = router_->open(src_.c_str(), O_RDONLY, 0);
    if (fd < 0) die(name(), "open");
    long long hits = 0;
    std::string carry;  // partial line spanning a buffer boundary
    ssize_t n;
    while ((n = router_->read(fd, buf.data(), buf.size())) > 0) {
      std::string_view chunk(buf.data(), static_cast<std::size_t>(n));
      std::size_t pos = 0;
      while (true) {
        const std::size_t nl = chunk.find('\n', pos);
        if (nl == std::string_view::npos) {
          carry.append(chunk.substr(pos));
          break;
        }
        if (!carry.empty()) {
          carry.append(chunk.substr(pos, nl - pos));
          if (carry.find("NEEDLE") != std::string::npos) ++hits;
          carry.clear();
        } else if (chunk.substr(pos, nl - pos).find("NEEDLE") !=
                   std::string_view::npos) {
          ++hits;
        }
        pos = nl + 1;
      }
    }
    if (n < 0) die(name(), "read");
    router_->close(fd);
    hits_ = hits;
    return seconds_since(start);
  }

 private:
  long long hits_ = 0;
};

class UnixMd5Scenario final : public UnixToolScenario {
 public:
  [[nodiscard]] const char* name() const override { return "unix_md5sum"; }

  double run_once(Workspace&) override {
    std::vector<char> buf(1u << 20);
    const auto start = Clock::now();
    const int fd = router_->open(src_.c_str(), O_RDONLY, 0);
    if (fd < 0) die(name(), "open");
    Md5 hasher;
    ssize_t n;
    while ((n = router_->read(fd, buf.data(), buf.size())) > 0) {
      hasher.update(buf.data(), static_cast<std::size_t>(n));
    }
    if (n < 0) die(name(), "read");
    router_->close(fd);
    digest_ = Md5::to_hex(hasher.finish());
    return seconds_since(start);
  }

 private:
  std::string digest_;
};

// --- crash_recovery -------------------------------------------------------

class CrashRecoveryScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "crash_recovery"; }
  [[nodiscard]] const char* family() const override {
    return "crash_recovery";
  }

  double run_once(Workspace& ws) override {
    const Scale s = scale_for(ws);
    const std::string path = ws.dir + "/crash." + std::to_string(rep_++);
    // Untimed: a healthy container, then the debris a killed writer
    // leaves — an unindexed data dropping, a torn index tail, and a stale
    // openhosts registration (same planting as the recovery tests).
    const auto pattern = workloads::make_strided_n1(
        s.writers, s.blocks_per_writer / 2, s.block_bytes, ws.seed);
    write_strided_container(name(), path, pattern);
    plant_debris(path);
    const auto start = Clock::now();
    auto stats = plfs::plfs_recover(path);
    const double elapsed = seconds_since(start);
    if (!stats || !stats.value().index_readable) die(name(), "plfs_recover");
    if (stats.value().stale_openhosts_removed == 0) {
      die(name(), "debris check");
    }
    return elapsed;
  }

 private:
  void plant_debris(const std::string& path) {
    plfs::ContainerLayout layout(path);
    plfs::WriterId ghost{"benchghost", 4242, plfs::next_timestamp()};
    if (!posix::make_dirs(layout.hostdir_for(ghost.host)).ok()) {
      die(name(), "mkdir(debris)");
    }
    if (!posix::write_file(layout.data_dropping_path(ghost),
                           "never-indexed bytes")
             .ok()) {
      die(name(), "write(orphan)");
    }
    std::string idx = plfs::encode_index_header(
        {"hostdir.0/dropping.data.benchghost"});
    idx.append(23, '\x5a');  // torn record tail
    if (!posix::write_file(layout.index_dropping_path(ghost), idx).ok()) {
      die(name(), "write(torn index)");
    }
    if (!posix::write_file(layout.openhost_path(ghost), "").ok()) {
      die(name(), "write(openhost)");
    }
  }

  int rep_ = 0;
};

// --- multiproc ------------------------------------------------------------
// Cross-process coherence costs — the shared metadata plane's measurement
// surface. Both scenarios fork real child processes, so the ambient
// environment decides the regime: with LDPLFS_SHM set the children share
// one generation table and a warm cache revalidates with one atomic load
// instead of the per-open fingerprint stat storm; with LDPLFS_FAST_CREATE
// the create storm elides the per-file container scaffolding. Run the suite
// once bare and once with the knobs set, then `ldp-bench --compare`.

/// Reap every pid, die()ing unless each exited 0.
void reap_children(const char* who, const std::vector<pid_t>& pids) {
  for (const pid_t pid : pids) {
    int status = 0;
    if (::waitpid(pid, &status, 0) != pid) die(who, "waitpid");
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) die(who, "child");
  }
}

/// N forked readers re-open one multi-writer container over and over. The
/// parent warms its IndexCache in setup, each child starts from a COW copy
/// of it, so every open measures pure revalidation work: list hostdirs +
/// stat every index dropping (baseline) vs one generation load (LDPLFS_SHM).
class MpSharedReopenScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override {
    return "mp_shared_reopen";
  }
  [[nodiscard]] const char* family() const override { return "multiproc"; }

  void setup(Workspace& ws) override {
    const Scale s = scale_for(ws);
    block_bytes_ = s.block_bytes;
    path_ = ws.dir + "/shared";
    const auto pattern = workloads::make_strided_n1(
        s.writers, s.blocks_per_writer, s.block_bytes, ws.seed);
    write_strided_container(name(), path_, pattern);
    // Warm the parent's cache so forked children inherit a populated entry.
    auto fd = plfs::plfs_open(path_, O_RDONLY, 1);
    if (!fd) die(name(), "plfs_open(warm)");
    std::vector<std::byte> probe(64);
    if (!fd.value()->read(probe, 0)) die(name(), "read(warm)");
    if (!plfs::plfs_close(fd.value(), 1).ok()) die(name(), "close(warm)");
  }

  double run_once(Workspace& ws) override {
    const int kids = children(ws);
    const int opens = opens_per_child(ws);
    const auto start = Clock::now();
    std::vector<pid_t> pids;
    for (int c = 0; c < kids; ++c) {
      const pid_t pid = ::fork();
      if (pid == 0) run_reader(c, opens);
      if (pid < 0) die(name(), "fork");
      pids.push_back(pid);
    }
    reap_children(name(), pids);
    return seconds_since(start);
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace& ws) const override {
    return {{"opens_per_rep",
             static_cast<double>(children(ws)) * opens_per_child(ws)}};
  }

 private:
  static int children(const Workspace& ws) { return ws.smoke ? 2 : 4; }
  static int opens_per_child(const Workspace& ws) {
    return ws.smoke ? 24 : 128;
  }

  [[noreturn]] void run_reader(int child, int opens) {
    std::vector<std::byte> buf(block_bytes_);
    for (int i = 0; i < opens; ++i) {
      auto fd = plfs::plfs_open(path_, O_RDONLY, 1);
      if (!fd) ::_exit(10);
      const std::uint64_t offset =
          static_cast<std::uint64_t>((child + i) % 4) * block_bytes_;
      if (!fd.value()->read(buf, offset)) ::_exit(11);
      if (!plfs::plfs_close(fd.value(), 1).ok()) ::_exit(12);
    }
    ::_exit(0);
  }

  std::string path_;
  std::size_t block_bytes_ = 0;
};

/// mdtest-style create storm split across forked children, each creating
/// its own batch of files in a per-rep directory. Measures container
/// create cost end to end; LDPLFS_FAST_CREATE collapses the per-file
/// scaffolding to mkdir + one marker write.
class MpCreateStormScenario final : public Scenario {
 public:
  [[nodiscard]] const char* name() const override { return "mp_create_storm"; }
  [[nodiscard]] const char* family() const override { return "multiproc"; }

  double run_once(Workspace& ws) override {
    const Scale s = scale_for(ws);
    const int kids = ws.smoke ? 2 : 4;
    const int files = s.storm_files / kids;
    // Per-rep unique directory: creates must be creates, never re-opens.
    const std::string dir = ws.dir + "/storm." + std::to_string(rep_++);
    if (!posix::make_dir(dir).ok()) die(name(), "mkdir(rep)");
    const auto start = Clock::now();
    std::vector<pid_t> pids;
    for (int c = 0; c < kids; ++c) {
      const pid_t pid = ::fork();
      if (pid == 0) run_creator(dir, c, files);
      if (pid < 0) die(name(), "fork");
      pids.push_back(pid);
    }
    reap_children(name(), pids);
    return seconds_since(start);
  }

  [[nodiscard]] std::map<std::string, double> extras(
      const Workspace& ws) const override {
    const Scale s = scale_for(ws);
    const int kids = ws.smoke ? 2 : 4;
    return {{"creates_per_rep", static_cast<double>(kids * (s.storm_files /
                                                            kids))}};
  }

 private:
  [[noreturn]] static void run_creator(const std::string& dir, int child,
                                       int files) {
    for (int i = 0; i < files; ++i) {
      const std::string path = dir + "/f." + std::to_string(child) + "." +
                               std::to_string(i);
      auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
      if (!fd) ::_exit(10);
      if (!plfs::plfs_close(fd.value(), 1).ok()) ::_exit(11);
    }
    ::_exit(0);
  }

  int rep_ = 0;
};

}  // namespace

std::vector<std::unique_ptr<Scenario>> make_suite() {
  std::vector<std::unique_ptr<Scenario>> suite;
  suite.push_back(std::make_unique<UnixCpScenario>());
  suite.push_back(std::make_unique<UnixGrepScenario>());
  suite.push_back(std::make_unique<UnixMd5Scenario>());
  suite.push_back(std::make_unique<StridedWriteScenario>());
  suite.push_back(std::make_unique<StridedReadScenario>());
  suite.push_back(std::make_unique<StridedReadvScenario>());
  suite.push_back(std::make_unique<CoalescedWriteScenario>());
  suite.push_back(std::make_unique<FlatSeqReadScenario>());
  suite.push_back(std::make_unique<FlatStridedReadScenario>());
  suite.push_back(std::make_unique<NnWriteScenario>());
  suite.push_back(std::make_unique<MetadataStormScenario>());
  suite.push_back(std::make_unique<MixedRwScenario>());
  suite.push_back(std::make_unique<CrashRecoveryScenario>());
  suite.push_back(std::make_unique<MpSharedReopenScenario>());
  suite.push_back(std::make_unique<MpCreateStormScenario>());
  return suite;
}

}  // namespace ldplfs::bench
