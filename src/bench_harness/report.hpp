// BENCH_suite.json model: emit, load, schema-validate, and compare.
//
// A report is self-describing: it carries the config that produced it
// (seed, reps, warm-up, scale, modeled latency) alongside the raw per-rep
// samples, so `ldp-bench --compare` can rerun the statistics — not just
// eyeball the summaries — and can refuse to draw conclusions from
// mismatched configurations.
//
// The regression verdict is two-gated on purpose: a scenario regresses
// only when the Mann-Whitney U test rejects "same distribution" at `alpha`
// AND the median slowdown exceeds `min_effect`. Either gate alone is
// wrong for a CI gate: p < alpha fires on ~alpha of A/A comparisons by
// construction (100 seeded A/A runs would see ~1-5 false alarms), and a
// bare effect threshold fires on any noisy machine. Jointly they require
// the slowdown to be both statistically real and big enough to care about.
#pragma once

#include <string>
#include <vector>

#include "bench_harness/runner.hpp"
#include "common/json.hpp"
#include "common/result.hpp"

namespace ldplfs::bench {

// v2: list_io family (strided_readv, coalesced_write) joined the matrix.
// v3: flat_read family (flat_seq_read, flat_strided_read) — zero-copy
//     mapped reads of flattened containers.
// v4: multiproc family (mp_shared_reopen, mp_create_storm) — forked-child
//     scenarios for the shared metadata plane and the create fast path.
inline constexpr int kSchemaVersion = 4;

struct Report {
  std::string suite;  ///< "smoke", "full", or "custom"
  RunOptions config;  ///< reps/warmup/seed/smoke/modeled_latency
  std::vector<ScenarioResult> scenarios;
};

json::Value report_to_json(const Report& report);

/// Parse + schema-validate. EINVAL on any schema violation (see
/// validate_report_json for the human-readable complaints).
Result<Report> report_from_json(const json::Value& doc);
Result<Report> load_report(const std::string& path);
Status save_report(const Report& report, const std::string& path);

/// Schema check: returns the list of violations (empty = valid).
std::vector<std::string> validate_report_json(const json::Value& doc);

struct CompareOptions {
  double alpha = 0.01;       ///< two-sided Mann-Whitney significance level
  double min_effect = 0.10;  ///< minimum relative median change (10%)
};

struct Verdict {
  enum class Kind { kRegression, kImprovement, kNoChange };
  std::string name;
  double base_median = 0.0;
  double cand_median = 0.0;
  double rel_change = 0.0;  ///< (cand - base) / base; positive = slower
  double p = 1.0;
  bool exact = false;  ///< exact small-sample U distribution used
  Kind kind = Kind::kNoChange;
};

struct CompareResult {
  std::vector<Verdict> verdicts;
  /// Config mismatches and scenarios present on only one side (filtered
  /// candidate runs are legitimate, so these warn rather than fail; a
  /// comparison with no scenario in common is the caller's error).
  std::vector<std::string> warnings;
  bool regression = false;
};

CompareResult compare_reports(const Report& base, const Report& cand,
                              const CompareOptions& options);

}  // namespace ldplfs::bench
