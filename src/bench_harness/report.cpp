#include "bench_harness/report.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>

namespace ldplfs::bench {

json::Value report_to_json(const Report& report) {
  json::Value doc = json::Value::object();
  doc.set("schema_version", kSchemaVersion);
  doc.set("tool", "ldp-bench");
  doc.set("suite", report.suite);

  json::Value config = json::Value::object();
  config.set("seed", report.config.seed);
  config.set("reps", report.config.reps);
  config.set("warmup", report.config.warmup);
  config.set("smoke", report.config.smoke);
  config.set("modeled_latency_usec",
             static_cast<std::uint64_t>(report.config.modeled_latency_usec));
  doc.set("config", std::move(config));

  json::Value scenarios = json::Value::array();
  for (const auto& s : report.scenarios) {
    json::Value entry = json::Value::object();
    entry.set("name", s.name);
    entry.set("family", s.family);
    entry.set("unit", "seconds");
    entry.set("direction", "lower_is_better");
    json::Value samples = json::Value::array();
    for (double x : s.samples) samples.push_back(x);
    entry.set("samples", std::move(samples));
    entry.set("mean", s.stats.mean);
    entry.set("median", s.stats.median);
    entry.set("stddev", s.stats.stddev);
    json::Value ci = json::Value::object();
    ci.set("lo", s.stats.ci95.lo);
    ci.set("hi", s.stats.ci95.hi);
    entry.set("ci95", std::move(ci));
    if (!s.extras.empty()) {
      json::Value extras = json::Value::object();
      for (const auto& [key, value] : s.extras) extras.set(key, value);
      entry.set("extras", std::move(extras));
    }
    scenarios.push_back(std::move(entry));
  }
  doc.set("scenarios", std::move(scenarios));
  return doc;
}

std::vector<std::string> validate_report_json(const json::Value& doc) {
  std::vector<std::string> problems;
  if (!doc.is_object()) {
    problems.push_back("document is not a JSON object");
    return problems;
  }
  if (doc.number_at("schema_version", -1) != kSchemaVersion) {
    problems.push_back("missing or unsupported schema_version");
  }
  const json::Value* config = doc.find("config");
  if (config == nullptr || !config->is_object()) {
    problems.push_back("missing config object");
  } else {
    for (const char* key : {"seed", "reps", "warmup"}) {
      const json::Value* v = config->find(key);
      if (v == nullptr || !v->is_number()) {
        problems.push_back(std::string("config.") + key +
                           " missing or not a number");
      }
    }
  }
  const json::Value* scenarios = doc.find("scenarios");
  if (scenarios == nullptr || !scenarios->is_array() ||
      scenarios->items().empty()) {
    problems.push_back("missing or empty scenarios array");
    return problems;
  }
  for (const auto& entry : scenarios->items()) {
    const std::string name = entry.string_at("name", "<unnamed>");
    if (!entry.is_object()) {
      problems.push_back("scenario entry is not an object");
      continue;
    }
    if (entry.string_at("name").empty()) {
      problems.push_back("scenario with empty name");
    }
    if (entry.string_at("family").empty()) {
      problems.push_back(name + ": missing family");
    }
    const json::Value* samples = entry.find("samples");
    if (samples == nullptr || !samples->is_array() ||
        samples->items().empty()) {
      problems.push_back(name + ": missing or empty samples");
    } else {
      for (const auto& x : samples->items()) {
        if (!x.is_number() || !(x.as_number() >= 0.0)) {
          problems.push_back(name + ": non-numeric or negative sample");
          break;
        }
      }
    }
    for (const char* key : {"mean", "median", "stddev"}) {
      const json::Value* v = entry.find(key);
      if (v == nullptr || !v->is_number()) {
        problems.push_back(name + ": missing " + key);
      }
    }
    const json::Value* ci = entry.find("ci95");
    if (ci == nullptr || !ci->is_object() || ci->find("lo") == nullptr ||
        ci->find("hi") == nullptr) {
      problems.push_back(name + ": missing ci95 {lo, hi}");
    }
  }
  return problems;
}

Result<Report> report_from_json(const json::Value& doc) {
  if (!validate_report_json(doc).empty()) return Errno{EINVAL};
  Report report;
  report.suite = doc.string_at("suite", "custom");
  const json::Value* config = doc.find("config");
  report.config.seed =
      static_cast<std::uint64_t>(config->number_at("seed"));
  report.config.reps = static_cast<int>(config->number_at("reps"));
  report.config.warmup = static_cast<int>(config->number_at("warmup"));
  const json::Value* smoke = config->find("smoke");
  report.config.smoke = smoke != nullptr && smoke->as_bool();
  report.config.modeled_latency_usec =
      static_cast<unsigned>(config->number_at("modeled_latency_usec"));

  for (const auto& entry : doc.find("scenarios")->items()) {
    ScenarioResult s;
    s.name = entry.string_at("name");
    s.family = entry.string_at("family");
    for (const auto& x : entry.find("samples")->items()) {
      s.samples.push_back(x.as_number());
    }
    s.stats.n = static_cast<int>(s.samples.size());
    s.stats.mean = entry.number_at("mean");
    s.stats.median = entry.number_at("median");
    s.stats.stddev = entry.number_at("stddev");
    const json::Value* ci = entry.find("ci95");
    s.stats.ci95.lo = ci->number_at("lo");
    s.stats.ci95.hi = ci->number_at("hi");
    if (const json::Value* extras = entry.find("extras");
        extras != nullptr && extras->is_object()) {
      for (const auto& [key, value] : extras->members()) {
        if (value.is_number()) s.extras[key] = value.as_number();
      }
    }
    report.scenarios.push_back(std::move(s));
  }
  return report;
}

Result<Report> load_report(const std::string& path) {
  auto doc = json::parse_file(path);
  if (!doc) return doc.error();
  return report_from_json(doc.value());
}

Status save_report(const Report& report, const std::string& path) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Errno{errno != 0 ? errno : EIO};
  out << report_to_json(report).dump(2);
  out.close();
  return out.good() ? Status::success() : Status(Errno{EIO});
}

CompareResult compare_reports(const Report& base, const Report& cand,
                              const CompareOptions& options) {
  CompareResult result;

  if (base.config.seed != cand.config.seed) {
    result.warnings.push_back(
        "seed differs between baseline and candidate (workloads are not "
        "byte-identical)");
  }
  if (base.config.smoke != cand.config.smoke) {
    result.warnings.push_back(
        "scale differs (smoke vs full) — medians are not comparable");
  }
  if (base.config.modeled_latency_usec != cand.config.modeled_latency_usec) {
    result.warnings.push_back(
        "modeled_latency_usec differs between baseline and candidate");
  }

  for (const auto& b : base.scenarios) {
    const ScenarioResult* c = nullptr;
    for (const auto& candidate : cand.scenarios) {
      if (candidate.name == b.name) {
        c = &candidate;
        break;
      }
    }
    if (c == nullptr) {
      result.warnings.push_back("scenario " + b.name +
                                " missing from candidate");
      continue;
    }
    Verdict v;
    v.name = b.name;
    v.base_median = stats_math::median(b.samples);
    v.cand_median = stats_math::median(c->samples);
    v.rel_change = v.base_median > 0.0
                       ? (v.cand_median - v.base_median) / v.base_median
                       : 0.0;
    const auto mw = stats_math::mann_whitney_u(b.samples, c->samples);
    v.p = mw.p;
    v.exact = mw.exact;
    const bool significant = v.p < options.alpha;
    if (significant && v.rel_change > options.min_effect) {
      v.kind = Verdict::Kind::kRegression;
      result.regression = true;
    } else if (significant && v.rel_change < -options.min_effect) {
      v.kind = Verdict::Kind::kImprovement;
    }
    result.verdicts.push_back(std::move(v));
  }
  for (const auto& c : cand.scenarios) {
    const bool known = std::any_of(
        base.scenarios.begin(), base.scenarios.end(),
        [&](const ScenarioResult& b) { return b.name == c.name; });
    if (!known) {
      result.warnings.push_back("scenario " + c.name +
                                " missing from baseline");
    }
  }
  return result;
}

}  // namespace ldplfs::bench
