// MPI-IO middleware over the simulated cluster: the four access routes the
// paper compares, behind one driver interface.
//
//   kMpiio     — plain MPI-IO to a single shared file (ROMIO/UFS): writes
//                are synchronous under extent locks, chunked at the stripe
//                size; collective buffering aggregates to one rank per node.
//   kRomioPlfs — the PLFS ROMIO ADIO driver: every writer gets its own
//                data + index dropping (the n-to-n transformation), writes
//                are log-structured (cache-friendly sequential drain).
//   kLdplfs    — the paper's contribution: same container semantics as
//                kRomioPlfs but reached through interposed POSIX calls; adds
//                only the fd-table/cursor bookkeeping overhead per call.
//   kFuse      — PLFS through a 2012-era FUSE mount: no writeback cache, so
//                every write is chopped into page-sized chunks and each
//                chunk is a synchronous round trip through the daemon.
//
// The ablation knobs (log_structure / partitioning) isolate the two PLFS
// ingredients, which the paper's future-work section asks about.
#pragma once

#include <cstdint>
#include <string>

#include "mpi/collectives.hpp"
#include "mpi/topology.hpp"
#include "simfs/cluster.hpp"

namespace ldplfs::mpiio {

enum class Route { kMpiio, kRomioPlfs, kLdplfs, kFuse };

const char* route_name(Route route);

struct DriverOptions {
  Route route = Route::kMpiio;
  /// Collective buffering: aggregate each node's data onto one aggregator
  /// (ROMIO default on, one aggregator per node — paper footnote 3).
  bool collective_buffering = true;
  /// FUSE transfer unit (pre-writeback-cache kernels: 128 KiB max).
  std::uint64_t fuse_chunk_bytes = 128ull << 10;
  /// PLFS ablations (both true = real PLFS).
  bool plfs_log_structure = true;
  bool plfs_partitioning = true;
  /// Data sieving (ROMIO's second optimisation, paper §II): service small
  /// strided accesses by reading a large covering window and extracting /
  /// merging in memory, trading extra bytes for far fewer I/O ops.
  bool data_sieving = true;
  std::uint64_t sieve_buffer_bytes = 4ull << 20;  // ROMIO ind_rd_buffer-ish
};

/// Aggregated timing of one simulated job.
struct IoStats {
  double open_s = 0.0;
  double write_s = 0.0;
  double read_s = 0.0;
  double close_s = 0.0;
  std::uint64_t bytes_written = 0;
  std::uint64_t bytes_read = 0;
  std::uint64_t meta_ops = 0;

  [[nodiscard]] double total_s() const {
    return open_s + write_s + read_s + close_s;
  }
  /// Paper-style MB/s (decimal) over the whole job.
  [[nodiscard]] double write_bandwidth_mbps() const {
    const double t = open_s + write_s + close_s;
    return t > 0 ? static_cast<double>(bytes_written) / t / 1e6 : 0.0;
  }
  [[nodiscard]] double read_bandwidth_mbps() const {
    const double t = open_s + read_s + close_s;
    return t > 0 ? static_cast<double>(bytes_read) / t / 1e6 : 0.0;
  }
};

class IoDriver {
 public:
  IoDriver(simfs::ClusterModel& cluster, mpi::Topology topo,
           DriverOptions options);

  /// MPI_File_open (+ container/dropping creation for the PLFS routes).
  double open(bool create = true);

  /// One collective write call: every rank contributes `bytes_per_rank` at
  /// the phase's file region. Layout after aggregation is contiguous per
  /// writer (ROMIO file domains).
  double write_collective(std::uint64_t bytes_per_rank,
                          std::uint64_t phase_index);

  /// Independent (non-collective) writes: every rank writes its own block —
  /// the HDF5-style fallback path FLASH-IO takes.
  double write_independent(std::uint64_t bytes_per_rank,
                           std::uint64_t phase_index);

  /// Collective read of the same layout.
  double read_collective(std::uint64_t bytes_per_rank,
                         std::uint64_t phase_index);

  /// Independent strided access: every rank touches `pieces_per_rank`
  /// pieces of `piece_bytes`, interleaved rank-major across the shared
  /// file (the file-view pattern data sieving exists for). With
  /// options_.data_sieving the pieces are serviced through large covering
  /// window reads; without it each piece is its own small random I/O.
  double read_strided(std::uint64_t piece_bytes,
                      std::uint64_t pieces_per_rank,
                      std::uint64_t phase_index);
  double write_strided(std::uint64_t piece_bytes,
                       std::uint64_t pieces_per_rank,
                       std::uint64_t phase_index);

  /// Application compute between I/O phases (caches drain meanwhile).
  void compute(double seconds) { cluster_.advance_time(seconds); }

  /// MPI_File_close (metadata hint drops for PLFS routes).
  double close();

  /// For read-only jobs over a pre-existing container: how many droppings
  /// the index merge must touch.
  void set_prior_writers(std::uint64_t n) { writer_count_ = n; }

  [[nodiscard]] const IoStats& stats() const { return stats_; }
  [[nodiscard]] const DriverOptions& options() const { return options_; }
  [[nodiscard]] const mpi::Topology& topology() const { return topo_; }

 private:
  [[nodiscard]] bool is_plfs() const { return options_.route != Route::kMpiio; }
  /// Writers for a collective call (aggregators when buffering is on).
  [[nodiscard]] std::vector<std::uint32_t> writers(bool collective) const;
  /// Software overhead per I/O call on this route.
  [[nodiscard]] double op_overhead_s() const;
  /// Build the data-op list for one writer writing `bytes` at `offset`.
  void append_write_ops(std::vector<simfs::RankOp>& ops, std::uint32_t writer,
                        std::uint64_t bytes, std::uint64_t offset);
  void append_read_ops(std::vector<simfs::RankOp>& ops, std::uint32_t writer,
                       std::uint64_t bytes, std::uint64_t offset);
  [[nodiscard]] std::uint64_t file_for_writer(std::uint32_t writer) const;

  double run_write(std::uint64_t bytes_per_rank, std::uint64_t phase_index,
                   bool collective);

  simfs::ClusterModel& cluster_;
  mpi::Topology topo_;
  DriverOptions options_;
  mpi::CollectiveModel collectives_;
  IoStats stats_;
  std::uint64_t shared_file_id_;
  std::uint64_t writer_count_ = 0;  // distinct writers so far (index cost)
  bool opened_ = false;

  static std::uint64_t next_file_id_;
};

}  // namespace ldplfs::mpiio
