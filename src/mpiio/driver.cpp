#include "mpiio/driver.hpp"

#include <algorithm>
#include <vector>

namespace ldplfs::mpiio {

std::uint64_t IoDriver::next_file_id_ = 1;

const char* route_name(Route route) {
  switch (route) {
    case Route::kMpiio: return "MPI-IO";
    case Route::kRomioPlfs: return "ROMIO";
    case Route::kLdplfs: return "LDPLFS";
    case Route::kFuse: return "FUSE";
  }
  return "?";
}

IoDriver::IoDriver(simfs::ClusterModel& cluster, mpi::Topology topo,
                   DriverOptions options)
    : cluster_(cluster), topo_(topo), options_(options) {
  // Each job gets a fresh file-id range so lock ownership never leaks
  // between experiments.
  shared_file_id_ = next_file_id_;
  next_file_id_ += static_cast<std::uint64_t>(topo_.nranks()) + 2;
  collectives_.memcpy_bps = cluster_.config().memcpy_bps;
  collectives_.nic_bps = cluster_.config().client_nic.bandwidth_bps;
}

std::vector<std::uint32_t> IoDriver::writers(bool collective) const {
  if (collective && options_.collective_buffering) return topo_.aggregators();
  std::vector<std::uint32_t> all(topo_.nranks());
  for (std::uint32_t r = 0; r < all.size(); ++r) all[r] = r;
  return all;
}

double IoDriver::op_overhead_s() const {
  const auto& cfg = cluster_.config();
  switch (options_.route) {
    case Route::kMpiio: return cfg.mpiio_op_s;
    case Route::kRomioPlfs: return cfg.mpiio_op_s + cfg.plfs_api_op_s;
    case Route::kLdplfs:
      return cfg.mpiio_op_s + cfg.plfs_api_op_s + cfg.ldplfs_op_extra_s;
    case Route::kFuse:
      return cfg.mpiio_op_s + cfg.plfs_api_op_s + cfg.fuse_op_extra_s;
  }
  return cfg.mpiio_op_s;
}

std::uint64_t IoDriver::file_for_writer(std::uint32_t writer) const {
  // Partitioning: one file (dropping) per writer; without it every writer
  // appends to the single shared container log.
  if (is_plfs() && options_.plfs_partitioning) {
    return shared_file_id_ + 1 + writer;
  }
  return shared_file_id_;
}

void IoDriver::append_write_ops(std::vector<simfs::RankOp>& ops,
                                std::uint32_t writer, std::uint64_t bytes,
                                std::uint64_t offset) {
  const auto& cfg = cluster_.config();
  if (!is_plfs()) {
    // Shared file: synchronous locked writes at stripe granularity.
    const std::uint64_t chunk = cfg.stripe_bytes;
    for (std::uint64_t done = 0; done < bytes; done += chunk) {
      simfs::RankOp op;
      op.kind = simfs::OpKind::kWrite;
      op.bytes = std::min(chunk, bytes - done);
      op.file = shared_file_id_;
      op.offset = offset + done;
      op.sequential = false;  // interleaved writer regions at the array
      op.locked = true;
      op.cpu_s = op_overhead_s();
      ops.push_back(op);
    }
    return;
  }

  const std::uint64_t file = file_for_writer(writer);
  const bool log = options_.plfs_log_structure;
  if (options_.route == Route::kFuse) {
    // Write-through in fuse_chunk_bytes pieces, each a full round trip.
    const std::uint64_t chunk = options_.fuse_chunk_bytes;
    for (std::uint64_t done = 0; done < bytes; done += chunk) {
      simfs::RankOp op;
      op.kind = simfs::OpKind::kWrite;
      op.bytes = std::min(chunk, bytes - done);
      op.file = file;
      op.offset = offset + done;
      op.sequential = log;
      op.synchronous = true;
      // Each chunk also pays the user-space copy through the daemon.
      op.cpu_s = op_overhead_s() +
                 static_cast<double>(op.bytes) / cfg.fuse_copy_bps;
      ops.push_back(op);
    }
    return;
  }

  simfs::RankOp op;
  op.kind = simfs::OpKind::kWrite;
  op.bytes = bytes;
  op.file = file;
  op.offset = offset;
  op.sequential = log;
  op.random_drain = !log;
  // Without partitioning all writers funnel through the shared log tail:
  // serialised appends, modelled as locked writes on one domain.
  if (!options_.plfs_partitioning) {
    op.locked = true;
    op.offset = 0;  // single lock domain: the log tail
    op.sequential = log;
  }
  op.cpu_s = op_overhead_s();
  ops.push_back(op);

  // Every data write appends a record to the paired *index* dropping — a
  // tiny write, but a second live stream per writer. The paper's §IV calls
  // this out ("at least one for the data and one for the index") as part
  // of why file counts explode at scale.
  simfs::RankOp index_op;
  index_op.kind = simfs::OpKind::kWrite;
  index_op.bytes = 48;
  index_op.file = file + (1ull << 40);  // the writer's index dropping
  index_op.offset = 0;
  index_op.sequential = true;
  index_op.internal = true;  // bookkeeping bytes, not application data
  index_op.cpu_s = 0.0;
  ops.push_back(index_op);
}

void IoDriver::append_read_ops(std::vector<simfs::RankOp>& ops,
                               std::uint32_t writer, std::uint64_t bytes,
                               std::uint64_t offset) {
  const auto& cfg = cluster_.config();
  std::uint64_t chunk;
  bool sequential;
  std::uint64_t file;
  if (!is_plfs()) {
    chunk = cfg.stripe_bytes;
    sequential = false;  // shared file: interleaved regions
    file = shared_file_id_;
  } else if (options_.route == Route::kFuse) {
    chunk = options_.fuse_chunk_bytes;
    sequential = true;  // own dropping, log order
    file = file_for_writer(writer);
  } else {
    chunk = bytes;  // PLFS read of own region: one streaming request
    sequential = true;
    file = file_for_writer(writer);
  }
  for (std::uint64_t done = 0; done < bytes; done += chunk) {
    simfs::RankOp op;
    op.kind = simfs::OpKind::kRead;
    op.bytes = std::min(chunk, bytes - done);
    op.file = file;
    op.offset = offset + done;
    op.sequential = sequential;
    op.cpu_s = op_overhead_s();
    if (options_.route == Route::kFuse) {
      op.cpu_s += static_cast<double>(op.bytes) / cfg.fuse_copy_bps;
    }
    ops.push_back(op);
  }
}

double IoDriver::open(bool create) {
  std::vector<simfs::RankProgram> programs;
  programs.reserve(topo_.nranks());
  const double sw = op_overhead_s();

  for (std::uint32_t rank = 0; rank < topo_.nranks(); ++rank) {
    simfs::RankProgram program;
    program.rank = rank;
    program.node = topo_.node_of(rank);
    if (!is_plfs()) {
      // Shared file: rank 0 creates, everyone opens.
      if (rank == 0 && create) {
        program.ops.push_back({simfs::OpKind::kMetaCreate, 0,
                               shared_file_id_, 0, true, false, false, false,
                               sw});
      }
      program.ops.push_back({simfs::OpKind::kMetaOpen, 0, shared_file_id_, 0,
                             true, false, false, false, sw});
    } else {
      // PLFS container: rank 0 creates the container skeleton; every rank
      // stats the access marker; every *writer* creates its data + index
      // droppings and registers in openhosts (3 creates).
      if (rank == 0 && create) {
        for (int i = 0; i < 4; ++i) {  // container dir, access, creator, dirs
          program.ops.push_back({simfs::OpKind::kMetaCreate, 0,
                                 shared_file_id_, 0, true, false, false,
                                 false, sw});
        }
      }
      program.ops.push_back({simfs::OpKind::kMetaOpen, 0, shared_file_id_, 0,
                             true, false, false, false, sw});
    }
    programs.push_back(std::move(program));
  }
  const auto result = cluster_.run_phase(programs);
  stats_.open_s += result.duration_s;
  stats_.meta_ops += result.meta_ops;
  opened_ = true;
  return result.duration_s;
}

double IoDriver::run_write(std::uint64_t bytes_per_rank,
                           std::uint64_t phase_index, bool collective) {
  const auto writer_ranks = writers(collective);
  const std::uint64_t writer_bytes =
      bytes_per_rank * topo_.nranks() / writer_ranks.size();
  const std::uint64_t phase_base =
      phase_index * bytes_per_rank * topo_.nranks();
  const double sw = op_overhead_s();

  const bool first_write = writer_count_ == 0;
  std::vector<simfs::RankProgram> programs;
  programs.reserve(writer_ranks.size());
  for (std::size_t w = 0; w < writer_ranks.size(); ++w) {
    const std::uint32_t rank = writer_ranks[w];
    simfs::RankProgram program;
    program.rank = rank;
    program.node = topo_.node_of(rank);

    // Collective buffering: pay the exchange onto the aggregator first.
    if (collective && options_.collective_buffering) {
      program.ops.push_back(
          {simfs::OpKind::kCompute, 0, 0, 0, true, false, false, false,
           collectives_.cb_exchange_s(topo_, bytes_per_rank)});
    }
    // PLFS: a writer's first write creates its droppings + registration.
    if (is_plfs() && first_write) {
      for (int i = 0; i < 3; ++i) {
        program.ops.push_back({simfs::OpKind::kMetaCreate, 0,
                               file_for_writer(rank), 0, true, false, false,
                               false, sw});
      }
    }
    append_write_ops(program.ops, rank,
                     writer_bytes, phase_base + w * writer_bytes);
    programs.push_back(std::move(program));
  }
  if (first_write) writer_count_ = writer_ranks.size();

  const auto result = cluster_.run_phase(programs);
  stats_.write_s += result.duration_s;
  stats_.bytes_written += result.bytes_written;
  stats_.meta_ops += result.meta_ops;
  return result.duration_s;
}

double IoDriver::write_collective(std::uint64_t bytes_per_rank,
                                  std::uint64_t phase_index) {
  return run_write(bytes_per_rank, phase_index, /*collective=*/true);
}

double IoDriver::write_independent(std::uint64_t bytes_per_rank,
                                   std::uint64_t phase_index) {
  return run_write(bytes_per_rank, phase_index, /*collective=*/false);
}

double IoDriver::read_collective(std::uint64_t bytes_per_rank,
                                 std::uint64_t phase_index) {
  const auto reader_ranks = writers(true);
  const std::uint64_t reader_bytes =
      bytes_per_rank * topo_.nranks() / reader_ranks.size();
  const std::uint64_t phase_base =
      phase_index * bytes_per_rank * topo_.nranks();
  const double sw = op_overhead_s();

  std::vector<simfs::RankProgram> programs;
  programs.reserve(reader_ranks.size());
  const bool build_index = is_plfs() && phase_index == 0;
  for (std::size_t w = 0; w < reader_ranks.size(); ++w) {
    const std::uint32_t rank = reader_ranks[w];
    simfs::RankProgram program;
    program.rank = rank;
    program.node = topo_.node_of(rank);

    // PLFS read-open: every reader merges the global index — a metadata
    // lookup per index dropping plus the (small, server-cached) index data
    // itself, modelled as one aggregate read. The per-dropping lookups are
    // what lands on the MDS at scale.
    if (build_index) {
      const std::uint64_t droppings = std::max<std::uint64_t>(
          writer_count_, reader_ranks.size());
      for (std::uint64_t d = 0; d < droppings; ++d) {
        program.ops.push_back({simfs::OpKind::kMetaStat, 0,
                               shared_file_id_ + 1 + d, 0, true, false,
                               false, false, sw});
      }
      simfs::RankOp index_read;
      index_read.kind = simfs::OpKind::kRead;
      index_read.bytes = droppings * 4096;
      index_read.file = shared_file_id_ + 1 + rank;
      index_read.sequential = true;
      index_read.internal = true;
      index_read.cpu_s = sw;
      program.ops.push_back(index_read);
    }
    append_read_ops(program.ops, rank, reader_bytes,
                    phase_base + w * reader_bytes);
    // Scatter back to node peers.
    if (options_.collective_buffering && topo_.ppn > 1) {
      program.ops.push_back(
          {simfs::OpKind::kCompute, 0, 0, 0, true, false, false, false,
           collectives_.cb_scatter_s(topo_, bytes_per_rank)});
    }
    programs.push_back(std::move(program));
  }
  const auto result = cluster_.run_phase(programs);
  stats_.read_s += result.duration_s;
  stats_.bytes_read += result.bytes_read;
  stats_.meta_ops += result.meta_ops;
  return result.duration_s;
}

namespace {

/// Shared strided-access geometry: piece p of rank r sits at
/// ((p * nranks) + r) * piece_bytes within the phase's region.
struct StridedLayout {
  std::uint64_t piece_bytes;
  std::uint64_t pieces_per_rank;
  std::uint32_t nranks;

  [[nodiscard]] std::uint64_t region_bytes() const {
    return piece_bytes * pieces_per_rank * nranks;
  }
  [[nodiscard]] std::uint64_t offset(std::uint32_t rank,
                                     std::uint64_t piece) const {
    return (piece * nranks + rank) * piece_bytes;
  }
};

}  // namespace

double IoDriver::read_strided(std::uint64_t piece_bytes,
                              std::uint64_t pieces_per_rank,
                              std::uint64_t phase_index) {
  const auto& cfg = cluster_.config();
  const StridedLayout layout{piece_bytes, pieces_per_rank, topo_.nranks()};
  const std::uint64_t phase_base = phase_index * layout.region_bytes();
  const double sw = op_overhead_s();

  std::vector<simfs::RankProgram> programs;
  programs.reserve(topo_.nranks());
  for (std::uint32_t rank = 0; rank < topo_.nranks(); ++rank) {
    simfs::RankProgram program;
    program.rank = rank;
    program.node = topo_.node_of(rank);

    if (options_.data_sieving) {
      // One covering window per rank, read in sieve-buffer chunks; the
      // pieces are extracted in memory (memcpy cost on the cpu leg).
      const std::uint64_t window = layout.region_bytes();
      const std::uint64_t chunk =
          std::min<std::uint64_t>(options_.sieve_buffer_bytes, window);
      for (std::uint64_t done = 0; done < window; done += chunk) {
        simfs::RankOp op;
        op.kind = simfs::OpKind::kRead;
        op.bytes = std::min(chunk, window - done);
        op.file = shared_file_id_;
        op.offset = phase_base + done;
        op.sequential = true;  // large contiguous window
        op.cpu_s = sw + static_cast<double>(op.bytes) / cfg.memcpy_bps;
        program.ops.push_back(op);
      }
    } else {
      for (std::uint64_t piece = 0; piece < pieces_per_rank; ++piece) {
        simfs::RankOp op;
        op.kind = simfs::OpKind::kRead;
        op.bytes = piece_bytes;
        op.file = shared_file_id_;
        op.offset = phase_base + layout.offset(rank, piece);
        op.sequential = false;  // strided holes between pieces
        op.cpu_s = sw;
        program.ops.push_back(op);
      }
    }
    programs.push_back(std::move(program));
  }
  const auto result = cluster_.run_phase(programs);
  stats_.read_s += result.duration_s;
  // Only the application-visible bytes count toward bandwidth; the sieving
  // amplification is the cost being modelled, not data delivered.
  stats_.bytes_read += layout.region_bytes();
  return result.duration_s;
}

double IoDriver::write_strided(std::uint64_t piece_bytes,
                               std::uint64_t pieces_per_rank,
                               std::uint64_t phase_index) {
  const auto& cfg = cluster_.config();
  const StridedLayout layout{piece_bytes, pieces_per_rank, topo_.nranks()};
  const std::uint64_t phase_base = phase_index * layout.region_bytes();
  const double sw = op_overhead_s();

  std::vector<simfs::RankProgram> programs;
  programs.reserve(topo_.nranks());
  for (std::uint32_t rank = 0; rank < topo_.nranks(); ++rank) {
    simfs::RankProgram program;
    program.rank = rank;
    program.node = topo_.node_of(rank);

    if (options_.data_sieving) {
      // Write sieving is read-modify-write under the extent lock: read the
      // window chunk, patch the rank's pieces, write the chunk back.
      const std::uint64_t window = layout.region_bytes();
      const std::uint64_t chunk =
          std::min<std::uint64_t>(options_.sieve_buffer_bytes, window);
      for (std::uint64_t done = 0; done < window; done += chunk) {
        const std::uint64_t len = std::min(chunk, window - done);
        simfs::RankOp rd;
        rd.kind = simfs::OpKind::kRead;
        rd.bytes = len;
        rd.file = shared_file_id_;
        rd.offset = phase_base + done;
        rd.sequential = true;
        rd.cpu_s = sw + static_cast<double>(len) / cfg.memcpy_bps;
        program.ops.push_back(rd);
        simfs::RankOp wr;
        wr.kind = simfs::OpKind::kWrite;
        wr.bytes = len;
        wr.file = shared_file_id_;
        wr.offset = phase_base + done;
        wr.sequential = true;
        wr.locked = true;  // RMW must hold the extent lock
        wr.cpu_s = sw;
        program.ops.push_back(wr);
      }
    } else {
      for (std::uint64_t piece = 0; piece < pieces_per_rank; ++piece) {
        simfs::RankOp op;
        op.kind = simfs::OpKind::kWrite;
        op.bytes = piece_bytes;
        op.file = shared_file_id_;
        op.offset = phase_base + layout.offset(rank, piece);
        op.sequential = false;
        op.locked = true;
        op.cpu_s = sw;
        program.ops.push_back(op);
      }
    }
    programs.push_back(std::move(program));
  }
  const auto result = cluster_.run_phase(programs);
  stats_.write_s += result.duration_s;
  stats_.bytes_written += layout.region_bytes();
  return result.duration_s;
}

double IoDriver::close() {
  std::vector<simfs::RankProgram> programs;
  const double sw = op_overhead_s();
  if (is_plfs()) {
    // Each writer drops a metadata hint and removes its openhosts entry.
    const auto writer_ranks = writers(true);
    for (std::uint32_t rank : writer_ranks) {
      simfs::RankProgram program;
      program.rank = rank;
      program.node = topo_.node_of(rank);
      program.ops.push_back({simfs::OpKind::kMetaCreate, 0,
                             file_for_writer(rank), 0, true, false, false,
                             false, sw});
      program.ops.push_back({simfs::OpKind::kMetaRemove, 0,
                             file_for_writer(rank), 0, true, false, false,
                             false, sw});
      programs.push_back(std::move(program));
    }
  } else {
    simfs::RankProgram program;
    program.rank = 0;
    program.node = 0;
    program.ops.push_back({simfs::OpKind::kMetaStat, 0, shared_file_id_, 0,
                           true, false, false, false, sw});
    programs.push_back(std::move(program));
  }
  const auto result = cluster_.run_phase(programs);
  stats_.close_s += result.duration_s;
  stats_.meta_ops += result.meta_ops;
  return result.duration_s;
}

}  // namespace ldplfs::mpiio
