// Cross-process metadata plane (LDPLFS_SHM): one shm_open'd, mmap'd segment
// shared by every preloaded process of a job, making the per-process caches
// (IndexCache, MappedContainerRegistry) cross-process coherent.
//
// The segment holds two fixed tables of lock-free atomics:
//
//   * container generations — one slot per container (keyed by an FNV-1a
//     hash of the container root). Writers bump the generation whenever new
//     on-disk index state becomes visible (sync, close, truncate, unlink,
//     rename, flatten, compaction, recovery). A cache entry that recorded
//     the generation at build time is fresh exactly when the slot still
//     holds that value — one atomic load instead of the stat storm the
//     fingerprint validation pays per open (list every hostdir + stat every
//     index dropping).
//   * writer registration — each open-for-write claims a slot with its pid,
//     so eligibility checks that must see *other processes'* writers
//     (mapped-read/zero-copy gating, LDPLFS_AUTO_FLATTEN) no longer depend
//     on the warn-only openhosts/ files.
//
// Crash safety by construction: there is no mutex to wedge. Every slot
// transition is a CAS or a release store, a zero-filled fresh segment is the
// valid empty state, and a SIGKILL'd process leaves at worst (a) a pid slot
// that scans reclaim once kill(pid, 0) reports ESRCH and (b) a container
// slot whose generation simply stops advancing — both harmless. Generations
// only ever grow (fetch_add), so a stale cache can never be revalidated by
// a wrapped or reused value.
//
// LDPLFS_SHM (latched at first use, like the other engine knobs):
//   unset / "0"        plane off — caches keep fingerprint validation
//   "1" (or any value) on, segment "/ldplfs.<uid>.<hash of LDPLFS_MOUNTS>"
//   "/name"            on, with an explicit segment name (tests use this)
//
// Every cooperating process of a job must agree on the setting: a writer
// running without the plane never bumps generations, so mixing LDPLFS_SHM
// on/off across processes of one job is unsupported (documented in
// docs/FAILURE_MODEL.md). Hash collisions between container roots are safe:
// a shared slot only means spurious bumps, i.e. a spurious rebuild.
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace ldplfs::plfs::shmeta {

inline constexpr std::uint32_t kVersion = 1;
/// Distinct container roots the segment can track; roots that lose the
/// bounded probe fall back to fingerprint validation (shmeta.slots.exhausted).
inline constexpr std::size_t kContainerSlots = 2048;
inline constexpr std::size_t kWriterSlots = 512;
/// Linear-probe bound for container slots.
inline constexpr std::size_t kMaxProbe = 64;

/// True when LDPLFS_SHM enabled the plane *and* the segment attached.
bool active();

/// Segment name in use ("" when inactive).
const std::string& segment_name();

/// Slot key for a container root (FNV-1a, never 0). Exposed for tests.
std::uint64_t key_of(const std::string& root);

/// Current generation of `root`, claiming a slot on first sight. nullopt
/// when the plane is inactive or the slot table is exhausted for this root
/// (callers then fall back to fingerprint validation).
std::optional<std::uint64_t> generation(const std::string& root);

/// Advance `root`'s generation: new on-disk index state is visible. No-op
/// (counted) when inactive or exhausted.
void bump(const std::string& root);

/// Register this process as a writer of `root`. Returns the claimed slot
/// (pass to unregister_writer) or -1 when inactive or the writer table is
/// full — registration is advisory, so -1 is not an error.
int register_writer(const std::string& root);

/// Release a slot claimed by register_writer. Safe with -1.
void unregister_writer(int slot);

/// True when another *live* process is registered as a writer of `root`.
/// Dead registrants (kill(pid, 0) == ESRCH) are reclaimed on the way.
bool has_foreign_writers(const std::string& root);

/// Point-in-time view of the segment for ldp-inspect --shm and tests.
struct WriterView {
  std::uint64_t key = 0;
  pid_t pid = 0;
  bool alive = false;
};
struct SegmentView {
  bool attached = false;
  std::string name;
  std::uint32_t version = 0;
  std::uint64_t reclaims = 0;       // dead-registrant slots reclaimed
  std::size_t containers_used = 0;  // claimed generation slots
  std::vector<WriterView> writers;  // registered writer slots
};
SegmentView inspect();

/// Re-latch LDPLFS_SHM and re-attach (tests toggle the env per fixture).
/// The previous mapping is deliberately leaked — a pool task may still
/// hold a pointer into it.
void reattach_for_testing();

/// shm_unlink the current segment name (test teardown). False when
/// inactive or the unlink failed.
bool unlink_segment();

}  // namespace ldplfs::plfs::shmeta
