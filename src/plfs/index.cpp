#include "plfs/index.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "common/paths.hpp"
#include "common/stats.hpp"
#include "plfs/container.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

namespace {

/// A record tagged with its resolved (global) dropping reference.
struct TaggedRecord {
  IndexRecord rec;
  std::uint32_t global_ref = 0;
  std::uint32_t source = 0;  // tie-break for equal timestamps
};

}  // namespace

void GlobalIndex::apply(const IndexRecord& rec, std::uint32_t global_ref) {
  if (rec.kind == static_cast<std::uint32_t>(RecordKind::kTruncate)) {
    extents_.truncate(rec.length);
    logical_size_ = rec.length;
    return;
  }
  if (rec.length == 0) return;
  extents_.insert(Extent{rec.logical_offset, rec.length, global_ref,
                         rec.physical_offset, rec.timestamp});
  logical_size_ = std::max(logical_size_, rec.logical_offset + rec.length);
}

GlobalIndex GlobalIndex::merge(const std::vector<IndexDropping>& sources) {
  stats::add(stats::Counter::kPlfsIndexMerges);
  stats::Timer timer(stats::Histogram::kPlfsIndexMergeLatency);
  GlobalIndex index;
  std::unordered_map<std::string, std::uint32_t> path_ids;
  std::vector<TaggedRecord> tagged;
  for (std::uint32_t src = 0; src < sources.size(); ++src) {
    const auto& dropping = sources[src];
    // Resolve each source's local path table into the global one.
    std::vector<std::uint32_t> remap(dropping.data_paths.size());
    for (std::size_t i = 0; i < dropping.data_paths.size(); ++i) {
      const auto& path = dropping.data_paths[i];
      auto [it, inserted] = path_ids.try_emplace(
          path, static_cast<std::uint32_t>(index.data_paths_.size()));
      if (inserted) index.data_paths_.push_back(path);
      remap[i] = it->second;
    }
    for (const auto& rec : dropping.records) {
      const std::uint32_t global_ref =
          rec.kind == static_cast<std::uint32_t>(RecordKind::kData)
              ? remap[rec.dropping_ref]
              : 0;
      tagged.push_back({rec, global_ref, src});
    }
  }
  std::stable_sort(tagged.begin(), tagged.end(),
                   [](const TaggedRecord& a, const TaggedRecord& b) {
                     if (a.rec.timestamp != b.rec.timestamp) {
                       return a.rec.timestamp < b.rec.timestamp;
                     }
                     return a.source < b.source;
                   });
  for (const auto& t : tagged) index.apply(t.rec, t.global_ref);
  return index;
}

Result<GlobalIndex> GlobalIndex::build(const std::string& container_root) {
  auto index_paths = find_index_droppings(container_root);
  if (!index_paths) return index_paths.error();
  std::vector<IndexDropping> sources;
  sources.reserve(index_paths.value().size());
  for (const auto& path : index_paths.value()) {
    auto dropping = load_index_dropping(path);
    if (!dropping) return dropping.error();
    sources.push_back(std::move(dropping).value());
  }
  return merge(sources);
}

std::string GlobalIndex::encode_flattened() const {
  std::string out = encode_index_header(data_paths_);
  std::vector<IndexRecord> records;
  for (const auto& extent : extents_.extents()) {
    IndexRecord rec;
    rec.logical_offset = extent.logical;
    rec.length = extent.length;
    rec.physical_offset = extent.physical;
    rec.timestamp = extent.timestamp;
    rec.dropping_ref = extent.dropping;
    rec.kind = static_cast<std::uint32_t>(RecordKind::kData);
    records.push_back(rec);
  }
  // If truncate-up left the size beyond the mapped extent, preserve it.
  if (logical_size_ > extents_.mapped_end()) {
    IndexRecord rec;
    rec.kind = static_cast<std::uint32_t>(RecordKind::kTruncate);
    rec.length = logical_size_;
    rec.timestamp = records.empty() ? 1 : records.back().timestamp;
    records.push_back(rec);
  }
  out.append(reinterpret_cast<const char*>(records.data()),
             records.size() * sizeof(IndexRecord));
  return out;
}

IndexWriter::IndexWriter(IndexWriter&& other) noexcept
    : index_path_(std::move(other.index_path_)),
      fd_(std::exchange(other.fd_, -1)),
      pending_(std::move(other.pending_)),
      records_written_(other.records_written_),
      deferred_errno_(other.deferred_errno_) {}

IndexWriter& IndexWriter::operator=(IndexWriter&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    index_path_ = std::move(other.index_path_);
    fd_ = std::exchange(other.fd_, -1);
    pending_ = std::move(other.pending_);
    records_written_ = other.records_written_;
    deferred_errno_ = other.deferred_errno_;
  }
  return *this;
}

IndexWriter::~IndexWriter() {
  // Best effort: never lose buffered records on destruction.
  (void)close();
}

Result<IndexWriter> IndexWriter::create(const std::string& index_path,
                                        const std::string& data_path_rel) {
  auto fd = posix::open_fd(index_path, O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (!fd) return fd.error();
  const std::string header = encode_index_header({data_path_rel});
  if (auto s = posix::write_all(
          fd.value().get(),
          std::span<const std::byte>(
              reinterpret_cast<const std::byte*>(header.data()),
              header.size()));
      !s) {
    return s.error();
  }
  IndexWriter writer;
  writer.index_path_ = index_path;
  writer.fd_ = fd.value().release();
  return writer;
}

void IndexWriter::add_write(std::uint64_t offset, std::uint64_t length,
                            std::uint64_t physical, std::uint64_t timestamp,
                            std::uint64_t timestamp_first) {
  if (length == 0) return;
  if (timestamp_first == 0) timestamp_first = timestamp;
  // Coalesce with the previous record when both the logical and physical
  // runs continue exactly — the common case for streaming checkpoints —
  // AND the incoming stamp block starts right past the previous record's
  // block end (see the header: the merge re-stamps old bytes, which is
  // only sound when nothing can hold a stamp between the blocks).
  if (!pending_.empty()) {
    IndexRecord& last = pending_.back();
    if (last.kind == static_cast<std::uint32_t>(RecordKind::kData) &&
        last.logical_offset + last.length == offset &&
        last.physical_offset + last.length == physical &&
        timestamp_first == pending_last_stamp_ + 1) {
      last.length += length;
      last.timestamp = timestamp;
      pending_last_stamp_ = timestamp;
      return;
    }
  }
  pending_.push_back(IndexRecord{offset, length, physical, timestamp, 0,
                                 static_cast<std::uint32_t>(RecordKind::kData)});
  pending_last_stamp_ = timestamp;
}

void IndexWriter::add_records(std::span<const IndexRecord> records,
                              std::span<const std::uint64_t> first_stamps) {
  pending_.reserve(pending_.size() + records.size());
  for (std::size_t i = 0; i < records.size(); ++i) {
    const auto& rec = records[i];
    if (rec.kind == static_cast<std::uint32_t>(RecordKind::kData)) {
      add_write(rec.logical_offset, rec.length, rec.physical_offset,
                rec.timestamp,
                i < first_stamps.size() ? first_stamps[i] : rec.timestamp);
    } else {
      add_truncate(rec.length, rec.timestamp);
    }
  }
}

void IndexWriter::add_truncate(std::uint64_t size, std::uint64_t timestamp) {
  pending_.push_back(IndexRecord{
      0, size, 0, timestamp, 0,
      static_cast<std::uint32_t>(RecordKind::kTruncate)});
  pending_last_stamp_ = timestamp;
}

Status IndexWriter::flush() {
  if (deferred_errno_ != 0) return Errno{deferred_errno_};
  if (fd_ < 0) return Errno{EBADF};
  if (pending_.empty()) return Status::success();
  auto s = posix::write_all(
      fd_, std::span<const std::byte>(
               reinterpret_cast<const std::byte*>(pending_.data()),
               pending_.size() * sizeof(IndexRecord)));
  if (!s) {
    // The append may have torn a record at the tail; writing more would
    // misalign everything after it. Poison the writer instead (see header).
    deferred_errno_ = s.error_code();
    pending_.clear();
    return s;
  }
  records_written_ += pending_.size();
  pending_.clear();
  return Status::success();
}

Status IndexWriter::close() {
  if (fd_ < 0) return Status::success();
  Status s = flush();
  if (auto c = posix::close_fd(fd_); !c && s.ok()) s = c;
  fd_ = -1;
  return s;
}

}  // namespace ldplfs::plfs
