#include "plfs/mapped_container.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/paths.hpp"
#include "common/stats.hpp"
#include "plfs/index_cache.hpp"
#include "plfs/shared_meta.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

namespace {

constexpr std::size_t kDefaultCapacity = 16;
constexpr std::size_t kMinCapacity = 2;

std::uint64_t mtime_ns_of(const struct ::stat& st) {
  return static_cast<std::uint64_t>(st.st_mtim.tv_sec) * 1000000000ULL +
         static_cast<std::uint64_t>(st.st_mtim.tv_nsec);
}

}  // namespace

std::optional<std::uint32_t> single_dropping_of(const GlobalIndex& index) {
  const auto extents = index.extent_map().extents();
  if (extents.empty()) return std::nullopt;
  const std::uint32_t dropping = extents.front().dropping;
  for (const auto& e : extents) {
    if (e.dropping != dropping) return std::nullopt;
  }
  return dropping;
}

std::optional<FlatView> identity_flat_view(const GlobalIndex& index) {
  const auto extents = index.extent_map().extents();
  if (extents.empty()) return std::nullopt;
  const std::uint32_t dropping = extents.front().dropping;
  std::uint64_t cursor = 0;
  for (const auto& e : extents) {
    if (e.dropping != dropping) return std::nullopt;  // multi-dropping
    if (e.logical != cursor) return std::nullopt;     // hole before e
    if (e.physical != e.logical) return std::nullopt; // shuffled layout
    cursor += e.length;
  }
  // A truncate-up tail (size past the mapped bytes) has no backing bytes in
  // the dropping, so offset passthrough would read past its EOF.
  if (cursor != index.size()) return std::nullopt;
  return FlatView{index.data_paths()[dropping], cursor};
}

Result<FlatDropping> plfs_flat_dropping(const std::string& root) {
  // A writer in another process can append (or truncate) between this
  // snapshot and the caller's use of the dropping bytes — refuse offset
  // passthrough while any live foreign writer is registered in the shared
  // plane. Without the plane this keeps today's (stat-revalidated) window.
  if (shmeta::has_foreign_writers(root)) return Errno{ENODEV};
  auto index = IndexCache::shared().get(root);
  if (!index) return index.error();
  const auto view = identity_flat_view(*index.value());
  if (!view) return Errno{ENODEV};
  return FlatDropping{path_join(root, view->dropping_rel), view->size};
}

MappedRegion::Entry::~Entry() {
  if (base != nullptr && base != MAP_FAILED) ::munmap(base, len);
}

MappedContainerRegistry::MappedContainerRegistry(std::size_t capacity)
    : capacity_(std::max(capacity, kMinCapacity)) {}

bool MappedContainerRegistry::reads_enabled() {
  const char* env = std::getenv("LDPLFS_MMAP_READS");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

bool MappedContainerRegistry::force_fallback() {
  const char* env = std::getenv("LDPLFS_MMAP_FORCE_FALLBACK");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

MappedContainerRegistry& MappedContainerRegistry::shared() {
  static MappedContainerRegistry* instance = [] {
    std::size_t capacity = kDefaultCapacity;
    if (const char* env = std::getenv("LDPLFS_MMAP_CACHE");
        env != nullptr && *env != '\0') {
      const long parsed = std::strtol(env, nullptr, 10);
      if (parsed > 0) capacity = static_cast<std::size_t>(parsed);
    }
    return new MappedContainerRegistry(capacity);  // never destroyed
  }();
  return *instance;
}

Result<MappedRegion> MappedContainerRegistry::acquire(
    const std::string& path) {
  if (force_fallback()) return Errno{EIO};

  // Shared-plane fast path: the dropping lives at <root>/hostdir.N/<file>,
  // and the container's generation advances whenever its on-disk bytes
  // change — a gen-validated cached mapping needs no stat at all. Read the
  // generation before any validation so a concurrent bump can only make us
  // conservatively remap.
  const std::string root = path_dirname(path_dirname(path));
  const std::optional<std::uint64_t> gen = shmeta::generation(root);
  if (gen.has_value()) {
    std::lock_guard lock(mu_);
    if (auto it = by_path_.find(path); it != by_path_.end()) {
      const EntryPtr& entry = *it->second;
      if (entry->gen_valid && entry->gen == *gen) {
        lru_.splice(lru_.begin(), lru_, it->second);
        ++stats_.hits;
        stats::add(stats::Counter::kShmGenHit);
        stats::add(stats::Counter::kShmStatSkipped);
        return MappedRegion(entry);
      }
      stats::add(stats::Counter::kShmGenStale);
    }
  }

  // Validate against the file as it is now; posix::stat_path keeps fault
  // injection and health accounting in the loop.
  auto st = posix::stat_path(path);
  if (!st) return st.error();
  if (st.value().st_size <= 0) return Errno{ENODATA};
  const auto want_dev = static_cast<std::uint64_t>(st.value().st_dev);
  const auto want_ino = static_cast<std::uint64_t>(st.value().st_ino);
  const auto want_size = static_cast<std::uint64_t>(st.value().st_size);
  const auto want_mtime = mtime_ns_of(st.value());

  std::lock_guard lock(mu_);
  if (auto it = by_path_.find(path); it != by_path_.end()) {
    const EntryPtr& entry = *it->second;
    if (entry->dev == want_dev && entry->ino == want_ino &&
        entry->file_size == want_size && entry->mtime_ns == want_mtime) {
      lru_.splice(lru_.begin(), lru_, it->second);
      ++stats_.hits;
      // Stat says the mapping is current: re-anchor it to the generation
      // read above so the next acquire can skip the stat. Without this, a
      // single bump (even by an unrelated same-container writer) would
      // force a stat on every subsequent acquire forever.
      if (gen.has_value()) {
        entry->gen = *gen;
        entry->gen_valid = true;
      }
      return MappedRegion(entry);
    }
    // Stale (appended-to or replaced): unpin from the registry and remap.
    // The old pages survive under any outstanding MappedRegion pins.
    lru_.erase(it->second);
    by_path_.erase(it);
    ++stats_.invalidations;
  }

  auto fd = posix::open_fd(path, O_RDONLY);
  if (!fd) return fd.error();
  void* base = ::mmap(nullptr, static_cast<std::size_t>(want_size), PROT_READ,
                      MAP_SHARED, fd.value().get(), 0);
  if (base == MAP_FAILED) return Errno{errno};
  // The mapping keeps its own reference to the file; the fd can go.

  auto entry = std::make_shared<MappedRegion::Entry>();
  entry->path = path;
  entry->base = base;
  entry->len = static_cast<std::size_t>(want_size);
  entry->dev = want_dev;
  entry->ino = want_ino;
  entry->file_size = want_size;
  entry->mtime_ns = want_mtime;
  entry->gen = gen.value_or(0);
  entry->gen_valid = gen.has_value();

  lru_.push_front(entry);
  by_path_[path] = lru_.begin();
  ++stats_.misses;
  stats::add(stats::Counter::kMmapMaps);
  evict_excess_locked();
  return MappedRegion(std::move(entry));
}

void MappedContainerRegistry::evict_excess_locked() {
  while (lru_.size() > capacity_) {
    by_path_.erase(lru_.back()->path);
    lru_.pop_back();  // unmaps now unless a pin still holds the entry
  }
}

void MappedContainerRegistry::invalidate(const std::string& prefix) {
  std::lock_guard lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it)->path.rfind(prefix, 0) == 0) {
      by_path_.erase((*it)->path);
      it = lru_.erase(it);
      ++stats_.invalidations;
    } else {
      ++it;
    }
  }
}

std::size_t MappedContainerRegistry::mapped_count() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

MappedContainerRegistry::Stats MappedContainerRegistry::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

}  // namespace ldplfs::plfs
