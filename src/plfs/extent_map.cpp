#include "plfs/extent_map.hpp"

#include <algorithm>

namespace ldplfs::plfs {

namespace {
std::uint64_t extent_end(const Extent& e) { return e.logical + e.length; }
}  // namespace

void ExtentMap::insert(const Extent& e) {
  if (e.length == 0) return;
  const std::uint64_t new_begin = e.logical;
  const std::uint64_t new_end = extent_end(e);

  // Find the first extent that could overlap: the one before new_begin may
  // straddle it.
  auto it = map_.lower_bound(new_begin);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (extent_end(prev->second) > new_begin) it = prev;
  }

  while (it != map_.end() && it->second.logical < new_end) {
    Extent old = it->second;
    it = map_.erase(it);
    // Left remainder of the old extent survives.
    if (old.logical < new_begin) {
      Extent left = old;
      left.length = new_begin - old.logical;
      map_.emplace(left.logical, left);
    }
    // Right remainder survives, shifted within its dropping.
    if (extent_end(old) > new_end) {
      Extent right = old;
      const std::uint64_t cut = new_end - old.logical;
      right.logical = new_end;
      right.physical = old.physical + cut;
      right.length = extent_end(old) - new_end;
      it = map_.emplace(right.logical, right).first;
      ++it;
    }
  }
  map_.emplace(new_begin, e);
}

std::vector<MappedPiece> ExtentMap::lookup(std::uint64_t offset,
                                           std::uint64_t length) const {
  std::vector<MappedPiece> pieces;
  if (length == 0) return pieces;
  const std::uint64_t end = offset + length;
  std::uint64_t cursor = offset;

  auto it = map_.lower_bound(offset);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (extent_end(prev->second) > offset) it = prev;
  }

  while (cursor < end) {
    if (it == map_.end() || it->second.logical >= end) {
      pieces.push_back({cursor, end - cursor, /*hole=*/true, 0, 0});
      break;
    }
    const Extent& e = it->second;
    if (e.logical > cursor) {
      pieces.push_back({cursor, e.logical - cursor, /*hole=*/true, 0, 0});
      cursor = e.logical;
    }
    const std::uint64_t skip = cursor - e.logical;  // offset into this extent
    const std::uint64_t take = std::min(extent_end(e), end) - cursor;
    pieces.push_back(
        {cursor, take, /*hole=*/false, e.dropping, e.physical + skip});
    cursor += take;
    ++it;
  }
  return pieces;
}

void ExtentMap::truncate(std::uint64_t size) {
  auto it = map_.lower_bound(size);
  if (it != map_.begin()) {
    auto prev = std::prev(it);
    if (extent_end(prev->second) > size) {
      prev->second.length = size - prev->second.logical;
      if (prev->second.length == 0) map_.erase(prev);
    }
  }
  map_.erase(map_.lower_bound(size), map_.end());
}

std::uint64_t ExtentMap::mapped_end() const {
  if (map_.empty()) return 0;
  return extent_end(std::prev(map_.end())->second);
}

std::vector<Extent> ExtentMap::extents() const {
  std::vector<Extent> out;
  out.reserve(map_.size());
  for (const auto& [key, extent] : map_) out.push_back(extent);
  return out;
}

bool ExtentMap::check_invariants() const {
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const auto& [key, extent] : map_) {
    if (key != extent.logical) return false;
    if (extent.length == 0) return false;
    if (!first && extent.logical < prev_end) return false;
    prev_end = extent_end(extent);
    first = false;
  }
  return true;
}

}  // namespace ldplfs::plfs
