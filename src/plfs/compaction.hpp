// Container compaction: log garbage collection.
//
// A log-structured container never rewrites history — overwritten and
// truncated bytes stay in the data droppings as dead weight, and long-lived
// files accumulate droppings from every writer that ever touched them.
// Compaction rewrites the container to its minimal form: one data dropping
// holding exactly the live bytes in logical order, plus one flattened index
// describing it.
//
// The rewrite is crash-safe in the usual log-structured way: the new
// droppings are written under fresh names first, the new index is the
// commit point (its records carry timestamps newer than everything they
// replace), and only then are the old droppings unlinked. A reader racing
// the compaction sees either the old state or the new state, never a mix.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace ldplfs::plfs {

struct CompactionStats {
  std::uint64_t live_bytes = 0;        // logical bytes kept
  std::uint64_t reclaimed_bytes = 0;   // dead log bytes dropped
  std::uint64_t droppings_before = 0;  // data droppings before
  std::uint64_t droppings_after = 0;   // data droppings after (0 or 1)
  std::uint64_t extents = 0;           // live extents copied
};

/// Compact the container at `path`. No writer may have the file open
/// (EBUSY otherwise — checked via openhosts/ registrations).
Result<CompactionStats> plfs_compact(const std::string& path);

}  // namespace ldplfs::plfs
