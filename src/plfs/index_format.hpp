// On-disk format of index droppings.
//
//   [ header ]  magic "PLFSIDX1", version, path-table count
//   [ paths  ]  count × (u16 length + bytes) — data-dropping paths relative
//               to the container root; records refer to them by position
//   [ records ] fixed 40-byte records appended until EOF
//
// A writer's own index dropping has a single-entry path table (its paired
// data dropping). A flattened index (ldp-flatten / plfs_flatten) carries the
// full table so one file can describe extents in many data droppings.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace ldplfs::plfs {

inline constexpr char kIndexMagic[8] = {'P', 'L', 'F', 'S',
                                        'I', 'D', 'X', '1'};
inline constexpr std::uint32_t kIndexVersion = 1;

/// Record kinds. A truncate record sets the logical size to `length`
/// (logical/physical are zero) and masks older extents beyond it.
enum class RecordKind : std::uint32_t { kData = 0, kTruncate = 1 };

/// One 40-byte on-disk record. Plain little-endian struct; this codebase
/// targets little-endian hosts (checked statically in index_format.cpp).
struct IndexRecord {
  std::uint64_t logical_offset = 0;
  std::uint64_t length = 0;
  std::uint64_t physical_offset = 0;
  std::uint64_t timestamp = 0;       // next_timestamp() at write time
  std::uint32_t dropping_ref = 0;    // index into the path table
  std::uint32_t kind = 0;            // RecordKind
};
static_assert(sizeof(IndexRecord) == 40, "on-disk record must stay 40 bytes");

/// Parsed contents of one index dropping.
struct IndexDropping {
  std::vector<std::string> data_paths;  // relative to container root
  std::vector<IndexRecord> records;
  /// Bytes of a trailing partial record (a torn crash-time append). The
  /// decoder ignores them; recovery trims them off and reports the count.
  std::uint64_t torn_tail_bytes = 0;
};

/// Serialise header + path table (records are appended afterwards).
std::string encode_index_header(const std::vector<std::string>& data_paths);

/// Parse a complete index dropping from a buffer. EINVAL on corruption;
/// a trailing partial record (torn write) is ignored, matching the
/// crash-consistency story of log-structured droppings.
Result<IndexDropping> decode_index_dropping(const std::string& bytes);

/// Read + parse an index dropping from disk.
Result<IndexDropping> load_index_dropping(const std::string& path);

}  // namespace ldplfs::plfs
