// Global index construction and writer-side index buffering.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "plfs/extent_map.hpp"
#include "plfs/index_format.hpp"

namespace ldplfs::plfs {

/// The merged view of every index dropping in a container: an extent map
/// over data droppings plus the logical file size (which can exceed the
/// mapped extent after truncate-up, and can be cut below it by truncate-down).
class GlobalIndex {
 public:
  /// Merge every index dropping under `container_root`. Records across all
  /// droppings are applied in ascending timestamp order (ties broken by
  /// dropping path for determinism), so later writes overwrite earlier ones.
  static Result<GlobalIndex> build(const std::string& container_root);

  /// Build from already-parsed droppings (unit tests, simulator).
  /// `sources[i]` supplies record dropping_refs into its own path table.
  static GlobalIndex merge(const std::vector<IndexDropping>& sources);

  [[nodiscard]] std::uint64_t size() const { return logical_size_; }
  [[nodiscard]] const ExtentMap& extent_map() const { return extents_; }

  /// Data-dropping paths (relative to the container root); MappedPiece /
  /// Extent `dropping` ids index into this table.
  [[nodiscard]] const std::vector<std::string>& data_paths() const {
    return data_paths_;
  }

  [[nodiscard]] std::vector<MappedPiece> lookup(std::uint64_t offset,
                                                std::uint64_t length) const {
    return extents_.lookup(offset, length);
  }

  /// Serialise this merged index as a single flattened dropping.
  [[nodiscard]] std::string encode_flattened() const;

 private:
  void apply(const IndexRecord& rec, std::uint32_t global_ref);

  ExtentMap extents_;
  std::uint64_t logical_size_ = 0;
  std::vector<std::string> data_paths_;
};

/// Writer-side index buffer: accumulates records for one writer's data
/// dropping and appends them (after the header on first flush) to the
/// index dropping file. Consecutive sequential writes are coalesced into a
/// single record, which is what keeps PLFS index droppings small for
/// checkpoint-style streams.
class IndexWriter {
 public:
  /// `index_path` is created (exclusive); `data_path_rel` goes in the path
  /// table so readers can resolve records.
  static Result<IndexWriter> create(const std::string& index_path,
                                    const std::string& data_path_rel);

  IndexWriter(IndexWriter&& other) noexcept;
  IndexWriter& operator=(IndexWriter&& other) noexcept;
  IndexWriter(const IndexWriter&) = delete;
  IndexWriter& operator=(const IndexWriter&) = delete;
  ~IndexWriter();

  /// Record a write of `length` bytes at logical `offset` stored at
  /// `physical` in the data dropping.
  ///
  /// A record may stand for a *block* of consecutive stamps when the
  /// caller already merged several writes into it: `timestamp` is the
  /// newest stamp of the block and `timestamp_first` the oldest (0 means
  /// the record covers the single stamp `timestamp`). Continuation merges
  /// re-stamp the previous record's bytes with the newer stamp, which is
  /// only sound when nothing anywhere can hold a stamp between the two
  /// blocks — so a merge requires the incoming block to start exactly one
  /// past the previous record's block end. Stamps come from one
  /// process-wide counter, so an interleaved writer stream leaves a gap
  /// and keeps its own record.
  void add_write(std::uint64_t offset, std::uint64_t length,
                 std::uint64_t physical, std::uint64_t timestamp,
                 std::uint64_t timestamp_first = 0);

  /// Record a truncate to `size`.
  void add_truncate(std::uint64_t size, std::uint64_t timestamp);

  /// Batched append for the write-behind engine: records staged against an
  /// aggregation buffer land here in one call once the data flush that
  /// covers them has completed. Re-coalesces across the batch boundary and
  /// obeys the same tear-safety rules as add_write (records reach disk only
  /// through flush(), which is sticky on failure). `first_stamps`, when
  /// non-empty, runs parallel to `records` and carries each record's
  /// stamp-block start (see add_write).
  void add_records(std::span<const IndexRecord> records,
                   std::span<const std::uint64_t> first_stamps = {});

  /// Append buffered records to the file.
  ///
  /// A failed append may have left a torn record at the dropping's tail;
  /// appending anything after that tear would shear every later record out
  /// of 40-byte alignment. So a flush failure is *sticky*: buffered records
  /// are dropped and every subsequent flush()/close() reports the original
  /// errno (POSIX deferred-error semantics, as fsync does for write-back
  /// failures).
  Status flush();

  /// Flush and close. Idempotent.
  Status close();

  [[nodiscard]] std::uint64_t records_written() const {
    return records_written_;
  }

  /// Errno of the first failed append, or 0. See flush().
  [[nodiscard]] int deferred_errno() const { return deferred_errno_; }

 private:
  IndexWriter() = default;

  std::string index_path_;
  int fd_ = -1;
  std::vector<IndexRecord> pending_;
  // Stamp-block end of pending_.back() (== its timestamp field); kept
  // separately so continuation merges can test block adjacency even after
  // pending_ is flushed away.
  std::uint64_t pending_last_stamp_ = 0;
  std::uint64_t records_written_ = 0;
  int deferred_errno_ = 0;
};

}  // namespace ldplfs::plfs
