// MappedContainer: the zero-copy read substrate for flattened containers.
//
// A container that compaction (`plfs_compact` / `ldp-compact`) has rewritten
// holds exactly one data dropping whose physical layout mirrors the logical
// file. That shape is what lets the page cache — not engine buffers — hold
// hot read-mostly data (after SplitFS's split of the data path from the
// metadata path): the dropping can be mmap'd once and served by memcpy (the
// engine fast path, LDPLFS_MMAP_READS) or handed to the application as a
// *real* mapping / a true kernel-side copy (the preload mmap and
// copy_file_range/sendfile paths).
//
// Two eligibility tiers, both derived from a merged GlobalIndex snapshot:
//
//   * single dropping (single_dropping_of): every live extent lives in ONE
//     data dropping. Enough for the engine's mapped reads, which scatter by
//     per-piece physical offsets.
//   * identity-flat (identity_flat_view): one dropping AND logical ==
//     physical, contiguous from 0, no holes, no truncate-up tail. Required
//     whenever the dropping's bytes are exposed at caller-chosen offsets —
//     app mmap, copy_file_range, sendfile — because those paths pass the
//     logical offset straight through to the dropping.
//
// The registry mirrors DroppingFdCache: entries are keyed by absolute
// dropping path, LRU-bounded (LDPLFS_MMAP_CACHE, default 16 maps), and
// acquire() returns a refcounted pin — an evicted or invalidated mapping is
// munmap'd only when the last pin drops, so no reader ever loses its pages
// mid-copy. Every acquire re-stats the dropping and compares a fingerprint
// (dev, ino, size, mtime_ns) exactly like the IndexCache validates index
// droppings; an appended-to or replaced dropping is remapped transparently.
// Container mutators flush the registry through the same invalidation hooks
// that flush the IndexCache and DroppingFdCache (plfs.cpp, compaction.cpp).
//
// LDPLFS_MMAP_FORCE_FALLBACK=1 makes every acquire fail (counted as
// mmap.fallbacks) — the knob the self-testing bench gate uses to prove a
// fallback storm is detectable, and tests use to force the pread path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>

#include "common/result.hpp"
#include "plfs/index.hpp"

namespace ldplfs::plfs {

/// Identity-flat shape of a container (see file comment): the single data
/// dropping, relative to the container root, plus the logical size it
/// covers byte-for-byte.
struct FlatView {
  std::string dropping_rel;
  std::uint64_t size = 0;
};

/// Dropping id when every live extent of `index` lives in one data
/// dropping (the engine-mappable shape); nullopt otherwise or when empty.
std::optional<std::uint32_t> single_dropping_of(const GlobalIndex& index);

/// Identity-flat view of `index`: extents cover [0, size) contiguously with
/// logical == physical in one dropping, no holes, no truncate-up tail.
std::optional<FlatView> identity_flat_view(const GlobalIndex& index);

/// Resolve the identity-flat view of the container at `root` through the
/// IndexCache, with the dropping path made absolute. Errors propagate from
/// the index build; a non-flat container is Errno{ENODEV}.
struct FlatDropping {
  std::string dropping_abs;
  std::uint64_t size = 0;
};
Result<FlatDropping> plfs_flat_dropping(const std::string& root);

/// Pin on one mapped dropping; the pages stay mapped while any pin exists.
class MappedRegion {
 public:
  MappedRegion() = default;

  [[nodiscard]] const std::byte* data() const {
    return entry_ ? static_cast<const std::byte*>(entry_->base) : nullptr;
  }
  [[nodiscard]] std::size_t size() const { return entry_ ? entry_->len : 0; }
  [[nodiscard]] bool valid() const { return entry_ != nullptr; }

 private:
  friend class MappedContainerRegistry;
  struct Entry {
    std::string path;
    void* base = nullptr;
    std::size_t len = 0;
    // Stat fingerprint the mapping was taken against.
    std::uint64_t dev = 0;
    std::uint64_t ino = 0;
    std::uint64_t file_size = 0;
    std::uint64_t mtime_ns = 0;
    // Shared-plane generation of the owning container when the mapping was
    // (re)validated; lets later acquires skip the stat (see acquire()).
    std::uint64_t gen = 0;
    bool gen_valid = false;
    ~Entry();  // munmap
  };
  explicit MappedRegion(std::shared_ptr<Entry> entry)
      : entry_(std::move(entry)) {}
  std::shared_ptr<Entry> entry_;
};

class MappedContainerRegistry {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;  // mapped because absent or stale
    std::uint64_t invalidations = 0;
  };

  explicit MappedContainerRegistry(std::size_t capacity);

  /// Borrow a read-only mapping of the whole file at `path` (an absolute
  /// dropping path), mapping it on a miss and remapping when the stat
  /// fingerprint says the cached mapping is stale. Fails with EIO when
  /// LDPLFS_MMAP_FORCE_FALLBACK=1, ENODATA for an empty file, or the
  /// open/stat/mmap errno.
  Result<MappedRegion> acquire(const std::string& path);

  /// Drop every entry whose path starts with `prefix` (a container root +
  /// "/", or "" for everything). Pinned mappings unmap when pins drop.
  void invalidate(const std::string& prefix);

  [[nodiscard]] std::size_t mapped_count() const;
  [[nodiscard]] Stats stats() const;

  /// Process-wide registry; capacity from LDPLFS_MMAP_CACHE (default 16,
  /// minimum 2) read once at first use.
  static MappedContainerRegistry& shared();

  /// True when LDPLFS_MMAP_READS=1: the engine serves single-dropping
  /// containers from the registry instead of pread (checked per open, so
  /// tests can toggle it). Off by default: mapped reads bypass the posix
  /// helpers, so fault injection and sieve accounting no longer see them.
  static bool reads_enabled();

  /// True when LDPLFS_MMAP_FORCE_FALLBACK=1 (checked per acquire).
  static bool force_fallback();

 private:
  using EntryPtr = std::shared_ptr<MappedRegion::Entry>;
  using LruList = std::list<EntryPtr>;

  void evict_excess_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_path_;
  Stats stats_;
};

}  // namespace ldplfs::plfs
