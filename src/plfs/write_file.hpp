// One writer stream into a container: a data dropping (append-only log) plus
// its paired index dropping. This is the log-structured half of PLFS — every
// write lands at the tail of the data dropping regardless of its logical
// offset, and the index records where it belongs.
//
// The write path runs one of two engines, chosen at open:
//
//   * synchronous (LDPLFS_WRITE_BEHIND=0): every write() issues an immediate
//     pwrite at the log tail — the original behavior, byte-identical output.
//   * write-behind (the default): writes are coalesced into a bounded
//     aggregation buffer (LDPLFS_WRITE_BUFFER bytes) and flushed to the log
//     as large physical appends. Flushes are double-buffered: a full buffer
//     is handed to the shared thread pool while the caller keeps filling the
//     other one, so small strided checkpoint writes cost a memcpy instead of
//     a syscall and the device latency overlaps application compute.
//
// Both engines preserve the same contracts (see write()): sticky deferred
// errors with the first logical failure winning, index records only ever
// describing bytes whose pwrite completed, and sync()/truncate()/close()
// acting as drain barriers so readers and stat see every acknowledged byte.
//
// Drain barriers are hang-proof when LDPLFS_FLUSH_DEADLINE_MS is set: a
// barrier waits at most that long for the in-flight flush. On timeout the
// stream is poisoned with ETIMEDOUT, the backend's circuit breaker is
// tripped (common/health.hpp), and the hung flush is *abandoned* — it owns
// its own dup'd descriptor and buffer, so it can finish or fail harmlessly
// in the background while close() returns in bounded time; whatever bytes
// it eventually lands were never indexed and stay invisible to readers.
#pragma once

#include <sys/types.h>

#include <algorithm>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "plfs/container.hpp"
#include "plfs/index.hpp"

namespace ldplfs::plfs {

/// One segment of a list-I/O write batch: write `buf` at logical `offset`.
struct WriteSegment {
  std::uint64_t offset = 0;
  std::span<const std::byte> buf;
};

class WriteFile {
 public:
  /// Open a new writer stream for `writer` in the container at `root`.
  /// Creates the hostdir bucket on demand and registers in openhosts/.
  /// Latches LDPLFS_WRITE_BEHIND / LDPLFS_WRITE_BUFFER for this stream.
  static Result<std::unique_ptr<WriteFile>> open(const std::string& root,
                                                 const WriterId& writer);

  ~WriteFile();
  WriteFile(const WriteFile&) = delete;
  WriteFile& operator=(const WriteFile&) = delete;

  /// Append `data` to the log and index it at logical `offset`.
  ///
  /// Error semantics are POSIX write-back semantics: the first failed append
  /// (data pwrite or index flush) poisons the stream, and every subsequent
  /// write()/truncate()/sync() — and the final close() — reports the
  /// original errno. Bytes whose pwrite completed before the failure stay
  /// valid and indexed (prefix consistency); bytes of the failed append —
  /// and, under write-behind, any later bytes still buffered when the
  /// failure surfaced — were never indexed and are invisible to readers
  /// (the same way a page-cache write-back failure loses acknowledged but
  /// unsynced data). A background flush failure is detected on the next
  /// write()/sync()/truncate()/close(), whichever comes first.
  Result<std::size_t> write(std::span<const std::byte> data,
                            std::uint64_t offset);

  /// Record a truncation. (Data already in the log is masked by the index;
  /// log-structured stores never rewrite history.) Drain barrier: all
  /// buffered appends reach the log before the truncate record is flushed.
  Status truncate(std::uint64_t size);

  /// Drain barrier: flush the aggregation buffer, then index records, then
  /// fsync the data dropping. After a successful sync every acknowledged
  /// byte is durable and indexed.
  Status sync();

  /// Drain, flush, drop the openhosts registration, leave a metadata size
  /// hint. Idempotent; called by the destructor as a last resort.
  Status close();

  /// Bytes accepted by write() (including any still in the aggregation
  /// buffer; after a drain barrier this equals the data-dropping tail).
  [[nodiscard]] std::uint64_t bytes_written() const { return physical_end_; }
  /// Errno of the first failed append on this stream, or 0. See write().
  [[nodiscard]] int deferred_errno() const { return deferred_errno_; }
  [[nodiscard]] std::uint64_t eof_seen() const { return max_eof_; }
  /// Clamp the EOF this writer will report in its close-time metadata hint
  /// (used when a *different* writer on the same handle truncates).
  void clamp_eof(std::uint64_t size) { max_eof_ = std::min(max_eof_, size); }
  [[nodiscard]] const WriterId& writer() const { return writer_; }
  /// True when this stream aggregates writes (write-behind engine active).
  [[nodiscard]] bool write_behind() const { return write_behind_; }

  /// Parse LDPLFS_WRITE_BEHIND: "0" disables the engine, anything else
  /// (including unset) enables it.
  static bool env_write_behind();
  /// Parse LDPLFS_COALESCE: "0" disables flush-time extent coalescing,
  /// anything else (including unset) enables it. Only meaningful under
  /// write-behind (the synchronous engine never stages extents).
  static bool env_coalesce();
  /// Parse LDPLFS_WRITE_BUFFER ("4M", "512K", plain bytes) into the
  /// aggregation-buffer capacity; malformed/unset falls back to the 4 MiB
  /// default, and values clamp into [4 KiB, 256 MiB].
  static std::size_t env_write_buffer();
  /// Parse LDPLFS_FLUSH_DEADLINE_MS (plain milliseconds) into the drain
  /// barrier deadline; 0 / unset / malformed disables the watchdog
  /// (barriers wait indefinitely, the pre-deadline behavior).
  static std::uint64_t env_flush_deadline_ms();

 private:
  WriteFile(std::string root, WriterId writer);

  /// Immediate pwrite + index record — the synchronous engine, also used
  /// for buffer-dodging oversized writes after a drain.
  Result<std::size_t> write_through(std::span<const std::byte> data,
                                    std::uint64_t offset);
  /// Coalesce a record for bytes staged in the active buffer.
  void stage_record(std::uint64_t offset, std::uint64_t length,
                    std::uint64_t physical);
  /// Flush-boundary extent coalescing (list-I/O write side): rewrite the
  /// active buffer so logically adjacent or overlapping staged extents
  /// become one contiguous run — one pwrite region and one index record
  /// per run instead of one per logical write. Overwritten bytes within
  /// the buffer are eliminated (newest wins), which can shrink the staged
  /// byte count. No-op unless it would reduce the record count or the
  /// buffer size.
  void coalesce_active();
  /// Hand the active buffer to the pool as the in-flight flush.
  /// Caller guarantees no flush is in flight and the buffer is non-empty.
  void submit_active();
  /// Block until the in-flight flush (if any) finishes and absorb its
  /// result: merge its records into the index on success, poison the
  /// stream (dropping everything still buffered) on failure.
  Status complete_inflight();
  /// Non-blocking complete_inflight: absorb the result only if the pool
  /// task already finished, so write() surfaces background failures
  /// promptly without stalling on a healthy in-flight flush.
  void poll_inflight();
  /// Drain barrier body: complete the in-flight flush, then flush the
  /// active buffer synchronously. On return either everything accepted is
  /// in the log and indexed, or the stream is poisoned.
  Status drain();

  std::string root_;
  WriterId writer_;
  int data_fd_ = -1;
  std::string data_path_;  // the data dropping (health/fault attribution)
  std::unique_ptr<IndexWriter> index_;
  std::uint64_t physical_end_ = 0;  // bytes accepted (log tail once drained)
  std::uint64_t max_eof_ = 0;       // highest logical offset+len written
  int deferred_errno_ = 0;          // first failed append poisons the stream
  bool closed_ = false;
  // Shared metadata plane (plfs/shared_meta.hpp): the writer-registration
  // Whether bytes were accepted since the last generation bump —
  // sync/truncate/close bump the container's generation only when new index
  // state actually became visible, so read-your-writes sync loops don't
  // thrash other processes' caches. (The shared-plane writer *registration*
  // lives on the owning FileHandle, which spans every per-pid stream.)
  bool index_dirty_ = false;

  // --- write-behind engine (unused when write_behind_ is false) ---------
  // The in-flight flush is a self-contained heap task: it owns the buffer
  // being flushed and a dup of the data fd, and publishes its result under
  // its own mutex. The caller holds one reference, the pool lambda the
  // other, so a deadline-expired flush can simply be dropped — the task
  // finishes (or fails) against its own descriptor with no use-after-free
  // and no fd-reuse hazard, even after this WriteFile is destroyed. The
  // caller-side record list (inflight_records_) is merged into the index
  // only after the task reports success.
  struct FlushTask;
  bool write_behind_ = false;
  bool coalesce_ = false;  // LDPLFS_COALESCE at open (write-behind only)
  std::size_t buffer_capacity_ = 0;
  std::uint64_t flush_deadline_ms_ = 0;      // 0: barriers wait forever
  std::vector<std::byte> active_;            // buffer being filled
  std::uint64_t active_base_ = 0;            // physical offset of active_[0]
  std::vector<IndexRecord> active_records_;  // coalesced records for active_
  // Runs parallel to active_records_: the oldest stamp each record's
  // merged block covers (its .timestamp is the newest). The pair proves
  // the block contiguous so IndexWriter::add_write can re-merge across
  // the flush boundary exactly like the synchronous path.
  std::vector<std::uint64_t> active_first_stamps_;
  std::shared_ptr<FlushTask> inflight_task_;
  std::uint64_t inflight_base_ = 0;
  std::vector<IndexRecord> inflight_records_;
  std::vector<std::uint64_t> inflight_first_stamps_;
  // Recycled storage, so steady-state rotation allocates nothing: spare_
  // is the buffer reclaimed from the last completed flush task (the next
  // submit hands it back out), scratch_ the coalesce relayout target
  // (swapped with active_, so the two ping-pong).
  std::vector<std::byte> spare_;
  std::vector<std::byte> scratch_;
};

}  // namespace ldplfs::plfs
