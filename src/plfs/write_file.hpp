// One writer stream into a container: a data dropping (append-only log) plus
// its paired index dropping. This is the log-structured half of PLFS — every
// write lands at the tail of the data dropping regardless of its logical
// offset, and the index records where it belongs.
#pragma once

#include <sys/types.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <string>

#include "common/result.hpp"
#include "plfs/container.hpp"
#include "plfs/index.hpp"

namespace ldplfs::plfs {

class WriteFile {
 public:
  /// Open a new writer stream for `writer` in the container at `root`.
  /// Creates the hostdir bucket on demand and registers in openhosts/.
  static Result<std::unique_ptr<WriteFile>> open(const std::string& root,
                                                 const WriterId& writer);

  ~WriteFile();
  WriteFile(const WriteFile&) = delete;
  WriteFile& operator=(const WriteFile&) = delete;

  /// Append `data` to the log and index it at logical `offset`.
  ///
  /// Error semantics are POSIX write-back semantics: the first failed append
  /// (data pwrite or index flush) poisons the stream, and every subsequent
  /// write()/truncate()/sync() — and the final close() — reports the
  /// original errno. Bytes written before the failure stay valid and
  /// indexed (prefix consistency); bytes of the failed append were never
  /// indexed and are invisible to readers.
  Result<std::size_t> write(std::span<const std::byte> data,
                            std::uint64_t offset);

  /// Record a truncation. (Data already in the log is masked by the index;
  /// log-structured stores never rewrite history.)
  Status truncate(std::uint64_t size);

  /// Flush index records and fsync both droppings.
  Status sync();

  /// Flush, drop the openhosts registration, leave a metadata size hint.
  /// Idempotent; called by the destructor as a last resort.
  Status close();

  [[nodiscard]] std::uint64_t bytes_written() const { return physical_end_; }
  /// Errno of the first failed append on this stream, or 0. See write().
  [[nodiscard]] int deferred_errno() const { return deferred_errno_; }
  [[nodiscard]] std::uint64_t eof_seen() const { return max_eof_; }
  /// Clamp the EOF this writer will report in its close-time metadata hint
  /// (used when a *different* writer on the same handle truncates).
  void clamp_eof(std::uint64_t size) { max_eof_ = std::min(max_eof_, size); }
  [[nodiscard]] const WriterId& writer() const { return writer_; }

 private:
  WriteFile(std::string root, WriterId writer);

  std::string root_;
  WriterId writer_;
  int data_fd_ = -1;
  std::unique_ptr<IndexWriter> index_;
  std::uint64_t physical_end_ = 0;  // tail of the data dropping
  std::uint64_t max_eof_ = 0;       // highest logical offset+len written
  int deferred_errno_ = 0;          // first failed append poisons the stream
  bool closed_ = false;
};

}  // namespace ldplfs::plfs
