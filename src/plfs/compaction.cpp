#include "plfs/compaction.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <vector>

#include "common/paths.hpp"
#include "plfs/container.hpp"
#include "plfs/fd_cache.hpp"
#include "plfs/index.hpp"
#include "plfs/index_cache.hpp"
#include "plfs/mapped_container.hpp"
#include "plfs/read_file.hpp"
#include "plfs/shared_meta.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

Result<CompactionStats> plfs_compact(const std::string& path) {
  if (!is_container(path)) return Errno{ENOENT};

  auto open_hosts = read_open_hosts(path);
  if (!open_hosts) return open_hosts.error();
  if (!open_hosts.value().empty()) return Errno{EBUSY};

  auto index = GlobalIndex::build(path);
  if (!index) return index.error();

  auto old_data = find_data_droppings(path);
  if (!old_data) return old_data.error();
  auto old_index = find_index_droppings(path);
  if (!old_index) return old_index.error();

  CompactionStats stats;
  stats.droppings_before = old_data.value().size();
  stats.extents = index.value().extent_map().extent_count();
  for (const auto& dropping : old_data.value()) {
    auto st = posix::stat_path(dropping);
    if (st) {
      stats.reclaimed_bytes += static_cast<std::uint64_t>(st.value().st_size);
    }
  }

  // Nothing live: drop everything (equivalent to truncate-to-zero).
  const auto& extents = index.value().extent_map();
  if (extents.empty() && index.value().size() == 0) {
    for (const auto& p : old_index.value()) {
      if (auto s = posix::remove_file(p); !s) return s.error();
    }
    for (const auto& p : old_data.value()) {
      if (auto s = posix::remove_file(p); !s) return s.error();
    }
    IndexCache::shared().invalidate(path);
    DroppingFdCache::shared().invalidate(path + "/");
    MappedContainerRegistry::shared().invalidate(path + "/");
    shmeta::bump(path);
    return stats;
  }

  // --- write the compacted data dropping -----------------------------------
  ContainerLayout layout(path);
  WriterId compactor{local_hostname(), ::getpid(), next_timestamp()};
  const std::string hostdir = layout.hostdir_for(compactor.host);
  if (auto s = posix::make_dirs(hostdir); !s) return s.error();
  const std::string new_data_path = layout.data_dropping_path(compactor);
  const std::string new_data_rel =
      path_join(path_basename(hostdir),
                ContainerLayout::data_dropping_name(compactor));

  auto reader = ReadFile::with_index(path, std::move(index).value());
  auto out = posix::open_fd(new_data_path, O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (!out) return out.error();

  // Copy live extents in logical order; record them for the new index.
  auto new_index =
      IndexWriter::create(layout.index_dropping_path(compactor), new_data_rel);
  if (!new_index) return new_index.error();

  std::vector<std::byte> buf;
  std::uint64_t physical = 0;
  for (const auto& extent : reader->index().extent_map().extents()) {
    buf.resize(extent.length);
    auto n = reader->read(buf, extent.logical);
    if (!n) return n.error();
    if (n.value() != extent.length) return Errno{EIO};
    if (auto s = posix::write_all(out.value().get(), buf); !s) {
      return s.error();
    }
    new_index.value().add_write(extent.logical, extent.length, physical,
                                next_timestamp());
    physical += extent.length;
    stats.live_bytes += extent.length;
  }
  // Preserve truncate-up tails (size beyond the last mapped byte).
  if (reader->index().size() > reader->index().extent_map().mapped_end()) {
    new_index.value().add_truncate(reader->index().size(), next_timestamp());
  }
  if (::fsync(out.value().get()) != 0) return Errno{errno};
  if (auto s = new_index.value().close(); !s) return s.error();

  const std::uint64_t logical_size = reader->index().size();

  // --- commit: remove everything the new pair replaces ---------------------
  reader.reset();  // release fds on the old droppings before unlinking
  for (const auto& p : old_index.value()) {
    if (auto s = posix::remove_file(p); !s) return s.error();
  }
  for (const auto& p : old_data.value()) {
    if (auto s = posix::remove_file(p); !s) return s.error();
  }
  // Refresh the metadata hint to the compacted truth.
  auto hints = posix::list_dir(layout.metadata_path());
  if (hints) {
    for (const auto& name : hints.value()) {
      (void)posix::remove_file(path_join(layout.metadata_path(), name));
    }
  }
  MetaHint hint{logical_size, stats.live_bytes, compactor.host,
                compactor.pid};
  (void)posix::write_file(
      path_join(layout.metadata_path(), ContainerLayout::meta_name(hint)), "");

  // The container's whole dropping set just changed identity: readers must
  // not serve the pre-compaction snapshot, pinned fds, or mappings of the
  // unlinked droppings from any process-wide cache.
  IndexCache::shared().invalidate(path);
  DroppingFdCache::shared().invalidate(path + "/");
  MappedContainerRegistry::shared().invalidate(path + "/");
  shmeta::bump(path);

  stats.droppings_after = 1;
  stats.reclaimed_bytes -= std::min(stats.reclaimed_bytes, stats.live_bytes);
  return stats;
}

}  // namespace ldplfs::plfs
