// Container recovery after writer crashes.
//
// A writer killed mid-stream leaves four kinds of debris (exercised in
// tests/preload/test_multiprocess.cpp and tests/plfs/test_crash_consistency
// .cpp): a stale openhosts/ registration (which blocks compaction and
// disables the getattr fast path forever), a possibly-torn index dropping
// tail (ignored by the decoder, but dead bytes on disk), a data dropping
// whose paired index dropping never made it to disk (an *orphan* — its
// bytes are invisible because the index is the source of truth), and
// missing/stale metadata size hints. plfs_recover reconciles all of it from
// the one source that survives any crash: the decodable prefix of the index
// droppings.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.hpp"

namespace ldplfs::plfs {

/// Read-only damage report for one container (ldp-inspect, and the first
/// phase of plfs_recover).
struct DamageReport {
  /// Data droppings (container-relative paths) referenced by no index
  /// dropping's path table — a crashed writer's unindexed log, or the data
  /// half of a quarantined index.
  std::vector<std::string> orphaned_droppings;
  /// Index droppings (full path, torn byte count) with a partial record at
  /// the tail.
  std::vector<std::pair<std::string, std::uint64_t>> torn_tails;
  /// Index droppings (full paths) that fail to decode outright — bad magic,
  /// bad version, truncated path table.
  std::vector<std::string> unreadable_droppings;

  [[nodiscard]] std::uint64_t torn_tail_bytes() const {
    std::uint64_t total = 0;
    for (const auto& [path, bytes] : torn_tails) total += bytes;
    return total;
  }
};

/// Scan the container at `path` without modifying anything.
Result<DamageReport> plfs_scan(const std::string& path);

struct RecoveryStats {
  std::uint64_t stale_openhosts_removed = 0;
  std::uint64_t hints_rewritten = 0;      // hints after recovery (0 or 1)
  std::uint64_t logical_size = 0;         // size recovered from the index
  std::uint64_t orphaned_droppings = 0;   // unreferenced data droppings kept
  std::uint64_t torn_tail_bytes = 0;      // partial-record bytes trimmed
  std::uint64_t quarantined_droppings = 0; // undecodable indexes set aside
  bool index_readable = false;            // every index dropping parsed
};

/// Recover the container at `path`: clear openhosts/ registrations, trim
/// torn index tails, rename undecodable index droppings out of the way
/// (quarantined.index.*, preserved for forensics), flatten the surviving
/// index, rebuild the metadata size hint, and report what was found —
/// including orphaned data droppings, which are counted but never deleted
/// (compaction prunes them once the container is healthy). Safe to run on a
/// healthy container (idempotent). The caller asserts no writer is
/// *actually* live (this is the post-crash, post-job repair step — same
/// contract as PLFS's own recovery tooling).
Result<RecoveryStats> plfs_recover(const std::string& path);

}  // namespace ldplfs::plfs
