// Container recovery after writer crashes.
//
// A writer killed mid-stream leaves three kinds of debris (exercised in
// tests/preload/test_multiprocess.cpp): a stale openhosts/ registration
// (which blocks compaction and disables the getattr fast path forever), a
// possibly-torn index dropping tail (ignored by the decoder, but the
// unindexed data-dropping bytes are dead weight), and missing/stale
// metadata size hints. plfs_recover reconciles all of it from the one
// source of truth that survives any crash: the index droppings.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.hpp"

namespace ldplfs::plfs {

struct RecoveryStats {
  std::uint64_t stale_openhosts_removed = 0;
  std::uint64_t hints_rewritten = 0;     // hints after recovery (0 or 1)
  std::uint64_t logical_size = 0;        // size recovered from the index
  bool index_readable = false;           // all droppings parsed
};

/// Recover the container at `path`: clear openhosts/ registrations, rebuild
/// the metadata size hint from a full index merge, and report what was
/// cleaned. Safe to run on a healthy container (idempotent). The caller
/// asserts no writer is *actually* live (this is the post-crash, post-job
/// repair step — same contract as PLFS's own recovery tooling).
Result<RecoveryStats> plfs_recover(const std::string& path);

}  // namespace ldplfs::plfs
