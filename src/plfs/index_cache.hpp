// Process-wide cache of merged global indexes, keyed by container root.
//
// Every plfs open used to re-read and re-merge every index dropping — the
// N-1 re-open cost PLFS is notorious for. This cache memoises the merged
// GlobalIndex and validates it on each hit against a cheap fingerprint of
// the container's index droppings (the sorted path list plus each file's
// mtime and size), so appends by other processes, flattening, compaction
// and recovery are all detected by stat alone. In-process mutators
// (writer close, truncate, rename, unlink — see plfs.cpp) additionally
// invalidate explicitly, which keeps the cache correct even when a
// same-second append leaves mtime unchanged (size still changes; the
// explicit hook is belt and braces plus prompt memory release).
//
// When the shared metadata plane is attached (LDPLFS_SHM, see
// plfs/shared_meta.hpp) the fingerprint stat storm is replaced by one
// atomic load: entries record the container's shared generation at build
// time and a hit is fresh exactly when the slot still holds that value.
// Containers whose slot table is exhausted fall back to fingerprints.
//
// LDPLFS_INDEX_CACHE=0 disables the cache (checked per lookup, so tests
// can toggle it); entries are LRU-bounded so a process touching thousands
// of containers cannot hoard every merged index forever.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.hpp"
#include "plfs/index.hpp"

namespace ldplfs::plfs {

class IndexCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;        // built because absent or stale
    std::uint64_t invalidations = 0;
  };

  explicit IndexCache(std::size_t capacity);

  /// The merged index for the container at `root`: cached when fresh,
  /// rebuilt (and re-cached) otherwise. With the cache disabled this is
  /// exactly GlobalIndex::build.
  Result<std::shared_ptr<const GlobalIndex>> get(const std::string& root);

  /// Drop the entry for `root` (exact key).
  void invalidate(const std::string& root);

  /// Drop everything (tests, truncate-to-zero storms).
  void clear();

  [[nodiscard]] Stats stats() const;

  /// True unless LDPLFS_INDEX_CACHE=0.
  static bool enabled();

  /// Process-wide cache (capacity 64 containers).
  static IndexCache& shared();

 private:
  /// One (path, mtime, mtime_nsec, size) row per index dropping, in
  /// find_index_droppings order.
  struct Fingerprint {
    std::vector<std::string> paths;
    std::vector<std::uint64_t> stamps;  // 2 per path: mtime_ns, size
    bool operator==(const Fingerprint&) const = default;
  };
  struct Entry {
    Fingerprint fp;
    std::shared_ptr<const GlobalIndex> index;
    // Shared-plane generation observed before the index was built;
    // meaningful only when gen_valid (plane attached at build time).
    std::uint64_t gen = 0;
    bool gen_valid = false;
  };
  using LruList = std::list<std::string>;  // front = most recently used

  static Result<Fingerprint> fingerprint(const std::string& root);

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;
  std::unordered_map<std::string, std::pair<Entry, LruList::iterator>> map_;
  Stats stats_;
};

}  // namespace ldplfs::plfs
