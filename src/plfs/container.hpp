// PLFS container layout (paper Fig. 1).
//
// A logical file at <backend>/foo is stored as a directory:
//
//   <backend>/foo/
//     access                       marker: "this directory is a container"
//     creator                      text: creating host/pid/mode
//     openhosts/                   one entry per writer with the file open
//       host.<host>.<pid>
//     metadata/                    size hints dropped at close (name-encoded,
//       meta.<eof>.<bytes>.<host>.<pid>    so reading them costs only readdir)
//     hostdir.<N>/                 N = hash(host) % subdirs
//       dropping.data.<ts>.<host>.<pid>    log-structured data
//       dropping.index.<ts>.<host>.<pid>   extent records for that data
//
// Each writer appends to exactly one data dropping and describes its writes
// in the paired index dropping; readers merge every index dropping into a
// global extent map (see index.hpp).
#pragma once

#include <sys/types.h>

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.hpp"

namespace ldplfs::plfs {

inline constexpr const char* kAccessFile = "access";
inline constexpr const char* kCreatorFile = "creator";
inline constexpr const char* kOpenHostsDir = "openhosts";
inline constexpr const char* kMetadataDir = "metadata";
inline constexpr const char* kHostDirPrefix = "hostdir.";
inline constexpr const char* kDataDroppingPrefix = "dropping.data.";
inline constexpr const char* kIndexDroppingPrefix = "dropping.index.";
/// Number of hostdir buckets a container is created with.
inline constexpr unsigned kDefaultHostDirs = 32;

/// Identity of one writer stream.
struct WriterId {
  std::string host;
  pid_t pid = 0;
  /// Open timestamp (ns); differentiates droppings when the same pid
  /// reopens a file, so physical offsets never collide.
  std::uint64_t open_ts = 0;
};

/// Size hint recovered from a metadata dropping filename.
struct MetaHint {
  std::uint64_t eof = 0;          // highest logical offset + 1 seen by writer
  std::uint64_t bytes = 0;        // total bytes written by writer
  std::string host;
  pid_t pid = 0;
};

/// Pure-layout helper: computes paths within one container root. Stateless
/// apart from the root path; all methods are const.
class ContainerLayout {
 public:
  explicit ContainerLayout(std::string root, unsigned hostdirs = kDefaultHostDirs);

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] unsigned hostdir_count() const { return hostdirs_; }

  [[nodiscard]] std::string access_path() const;
  [[nodiscard]] std::string creator_path() const;
  [[nodiscard]] std::string openhosts_path() const;
  [[nodiscard]] std::string metadata_path() const;

  [[nodiscard]] unsigned hostdir_bucket(const std::string& host) const;
  [[nodiscard]] std::string hostdir_path(unsigned bucket) const;
  [[nodiscard]] std::string hostdir_for(const std::string& host) const;

  /// Dropping file names (relative to their hostdir).
  [[nodiscard]] static std::string data_dropping_name(const WriterId& writer);
  [[nodiscard]] static std::string index_dropping_name(const WriterId& writer);

  /// Full paths for a writer's droppings.
  [[nodiscard]] std::string data_dropping_path(const WriterId& writer) const;
  [[nodiscard]] std::string index_dropping_path(const WriterId& writer) const;

  [[nodiscard]] std::string openhost_path(const WriterId& writer) const;
  [[nodiscard]] static std::string meta_name(const MetaHint& hint);
  /// Parses "meta.<eof>.<bytes>.<host>.<pid>"; false on foreign names.
  static bool parse_meta_name(const std::string& name, MetaHint& out);

 private:
  std::string root_;
  unsigned hostdirs_;
};

/// True when `path` is a PLFS container directory (exists + access marker).
bool is_container(const std::string& path);

/// Create a container directory tree; EEXIST if one is already there.
Status create_container(const std::string& path, mode_t mode,
                        const std::string& host, pid_t pid,
                        unsigned hostdirs = kDefaultHostDirs);

/// True when LDPLFS_FAST_CREATE enables the cheap-create path (checked per
/// create, so tests and per-phase benchmarks can toggle it).
bool fast_create_enabled();

/// Metadata-storm create: mkdir + access marker (which carries the mode),
/// deferring openhosts/, metadata/ and the creator file to their first
/// users. EEXIST if the directory is already there. Crash between the two
/// ops leaves a bare directory (EISDIR at open) — see the implementation
/// comment and docs/FAILURE_MODEL.md.
Status create_container_fast(const std::string& path, mode_t mode);

/// Recursively delete a container. ENOTDIR/ENOENT pass through.
Status remove_container(const std::string& path);

/// Every index-dropping path in the container, sorted for determinism.
Result<std::vector<std::string>> find_index_droppings(const std::string& root);

/// Every data-dropping path in the container, sorted.
Result<std::vector<std::string>> find_data_droppings(const std::string& root);

/// Size hints from the metadata directory (may be empty).
Result<std::vector<MetaHint>> read_meta_hints(const std::string& root);

/// Writers currently registered in openhosts/ (possibly stale after crash).
Result<std::vector<std::string>> read_open_hosts(const std::string& root);

/// Hostname of this machine (cached).
const std::string& local_hostname();

/// Stamp used to order droppings and index records across writers: wall
/// clock (ns) at first use, then a strict +1 counter. Consecutive calls
/// within a process differ by exactly one — the continuation merges in the
/// index layer rely on that to prove no other stamp sits between two
/// merged records (see IndexWriter::add_write).
std::uint64_t next_timestamp();

}  // namespace ldplfs::plfs
