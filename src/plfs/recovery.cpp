#include "plfs/recovery.hpp"

#include <unistd.h>

#include <unordered_set>

#include "common/paths.hpp"
#include "common/strings.hpp"
#include "plfs/container.hpp"
#include "plfs/index.hpp"
#include "plfs/index_format.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

Result<DamageReport> plfs_scan(const std::string& path) {
  if (!is_container(path)) return Errno{ENOENT};
  DamageReport report;

  auto index_paths = find_index_droppings(path);
  if (!index_paths) return index_paths.error();
  // Every data-dropping path any index's path table mentions — including
  // paths of extents that are fully overwritten, so a dropping is only an
  // orphan when *no* index knows it at all.
  std::unordered_set<std::string> referenced;
  for (const auto& index_path : index_paths.value()) {
    auto dropping = load_index_dropping(index_path);
    if (!dropping) {
      report.unreadable_droppings.push_back(index_path);
      continue;
    }
    if (dropping.value().torn_tail_bytes > 0) {
      report.torn_tails.emplace_back(index_path,
                                     dropping.value().torn_tail_bytes);
    }
    for (const auto& rel : dropping.value().data_paths) referenced.insert(rel);
  }

  auto data_paths = find_data_droppings(path);
  if (!data_paths) return data_paths.error();
  std::string prefix = path;
  while (prefix.size() > 1 && prefix.back() == '/') prefix.pop_back();
  prefix += '/';
  for (const auto& full : data_paths.value()) {
    std::string rel = full;
    if (starts_with(full, prefix)) rel = full.substr(prefix.size());
    if (referenced.find(rel) == referenced.end()) {
      report.orphaned_droppings.push_back(rel);
    }
  }
  return report;
}

Result<RecoveryStats> plfs_recover(const std::string& path) {
  if (!is_container(path)) return Errno{ENOENT};
  RecoveryStats stats;
  ContainerLayout layout(path);

  // 1. Clear openhosts registrations — crashed writers never removed
  //    theirs, and a live writer has no business racing recovery.
  auto open_hosts = posix::list_dir(layout.openhosts_path());
  // A fast-created container scaffolds openhosts/ on first writer open; a
  // crash before that leaves no directory — nothing stale to clear.
  if (!open_hosts && open_hosts.error_code() != ENOENT) {
    return open_hosts.error();
  }
  if (open_hosts) {
    for (const auto& name : open_hosts.value()) {
      if (auto s =
              posix::remove_file(path_join(layout.openhosts_path(), name));
          s) {
        ++stats.stale_openhosts_removed;
      }
    }
  }

  // 2. Damage survey: torn index tails, undecodable index droppings, data
  //    droppings no index references.
  auto scan = plfs_scan(path);
  if (!scan) return scan.error();
  stats.orphaned_droppings = scan.value().orphaned_droppings.size();
  stats.torn_tail_bytes = scan.value().torn_tail_bytes();

  // 3. Trim torn tails back to the last whole record. The decoder already
  //    ignores the fragment, but a later writer appending to the same file
  //    (or a naive external parser) must never see records shifted out of
  //    40-byte alignment by it.
  for (const auto& [index_path, torn] : scan.value().torn_tails) {
    auto st = posix::stat_path(index_path);
    if (!st) return st.error();
    const off_t clean =
        st.value().st_size - static_cast<off_t>(torn);
    if (auto s = posix::truncate_path(index_path, clean); !s) return s.error();
  }

  // 4. Quarantine undecodable index droppings instead of failing the whole
  //    recovery: renamed with a "quarantined." prefix they stop matching the
  //    dropping globs (so merges and opens work again) but stay on disk for
  //    forensics. Their data droppings are counted with the orphans above.
  for (const auto& index_path : scan.value().unreadable_droppings) {
    const std::string quarantined =
        path_join(path_dirname(index_path),
                  "quarantined." + path_basename(index_path));
    if (auto s = posix::rename_path(index_path, quarantined); !s) {
      return s.error();
    }
    ++stats.quarantined_droppings;
  }
  stats.index_readable = stats.quarantined_droppings == 0;

  // 5. Rebuild the truth from the surviving index droppings and consolidate
  //    it: recovery flattens to a single index dropping, which both speeds
  //    later opens and re-arms the getattr fast path (one authoritative
  //    hint covering one index dropping). Orphaned data droppings are left
  //    in place — recovery never deletes data; compaction prunes them once
  //    the container is healthy again.
  auto index = GlobalIndex::build(path);
  if (!index) return index.error();
  stats.logical_size = index.value().size();
  if (auto s = plfs_flatten(path); !s) return s.error();

  // 6. Replace all size hints with one accurate hint so the getattr fast
  //    path works again.
  auto hints = posix::list_dir(layout.metadata_path());
  if (hints) {
    for (const auto& name : hints.value()) {
      (void)posix::remove_file(path_join(layout.metadata_path(), name));
    }
  }
  MetaHint hint{stats.logical_size, stats.logical_size, local_hostname(),
                ::getpid()};
  const std::string hint_path =
      path_join(layout.metadata_path(), ContainerLayout::meta_name(hint));
  if (auto s = posix::write_file(hint_path, ""); !s) {
    // Fast-created container whose writer died before its first close:
    // metadata/ was never scaffolded. Create it and retry, same as
    // WriteFile::close does.
    if (s.error_code() == ENOENT &&
        posix::make_dirs(layout.metadata_path()).ok()) {
      s = posix::write_file(hint_path, "");
    }
    if (!s) return s.error();
  }
  stats.hints_rewritten = 1;
  return stats;
}

}  // namespace ldplfs::plfs
