#include "plfs/recovery.hpp"

#include <unistd.h>

#include "common/paths.hpp"
#include "plfs/container.hpp"
#include "plfs/index.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

Result<RecoveryStats> plfs_recover(const std::string& path) {
  if (!is_container(path)) return Errno{ENOENT};
  RecoveryStats stats;
  ContainerLayout layout(path);

  // 1. Clear openhosts registrations — crashed writers never removed
  //    theirs, and a live writer has no business racing recovery.
  auto open_hosts = posix::list_dir(layout.openhosts_path());
  if (!open_hosts) return open_hosts.error();
  for (const auto& name : open_hosts.value()) {
    if (auto s = posix::remove_file(path_join(layout.openhosts_path(), name));
        s) {
      ++stats.stale_openhosts_removed;
    }
  }

  // 2. Rebuild the truth from the index droppings (torn tails are skipped
  //    by the decoder; unindexed data-dropping bytes are simply invisible),
  //    and consolidate it: recovery flattens to a single index dropping,
  //    which both speeds later opens and re-arms the getattr fast path
  //    (one authoritative hint covering one index dropping).
  auto index = GlobalIndex::build(path);
  if (!index) return index.error();
  stats.index_readable = true;
  stats.logical_size = index.value().size();
  if (auto s = plfs_flatten(path); !s) return s.error();

  // 3. Replace all size hints with one accurate hint so the getattr fast
  //    path works again.
  auto hints = posix::list_dir(layout.metadata_path());
  if (hints) {
    for (const auto& name : hints.value()) {
      (void)posix::remove_file(path_join(layout.metadata_path(), name));
    }
  }
  MetaHint hint{stats.logical_size, stats.logical_size, local_hostname(),
                ::getpid()};
  if (auto s = posix::write_file(
          path_join(layout.metadata_path(), ContainerLayout::meta_name(hint)),
          "");
      !s) {
    return s.error();
  }
  stats.hints_rewritten = 1;
  return stats;
}

}  // namespace ldplfs::plfs
