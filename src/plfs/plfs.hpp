// Public PLFS API — the C++ face of the substrate LDPLFS retargets to.
//
// Mirrors the shape of the PLFS user-level API the paper shows in Listing 1:
// positional read/write taking an explicit offset and a pid, an opaque
// per-open handle (Plfs_fd there, FileHandle here), and container-level
// operations (getattr/unlink/trunc/access/rename/readdir/flatten).
//
// Thread safety: FileHandle serialises internal state with a mutex; distinct
// pids writing through one handle get distinct writer streams (data +
// index droppings), which is exactly the paper's n-processes → n-files
// partitioning.
#pragma once

#include <sys/stat.h>
#include <sys/types.h>

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "common/health.hpp"
#include "common/result.hpp"
#include "common/stats.hpp"
#include "plfs/read_file.hpp"
#include "plfs/write_file.hpp"

namespace ldplfs::plfs {

/// Equivalent of Plfs_open_opts: container shape knobs.
struct OpenOptions {
  unsigned hostdirs = kDefaultHostDirs;
  /// Override the writer's host name (simulated ranks use "rankN" so each
  /// gets its own dropping even though everything runs on one machine).
  std::string host_override;
};

/// Attributes of a logical PLFS file.
struct FileAttr {
  std::uint64_t size = 0;
  mode_t mode = 0644;
  /// Modification time: the newest activity visible on the container
  /// (metadata directory or container root).
  time_t mtime = 0;
  /// True when the size came from metadata hints alone (no index merge).
  bool from_hints = false;
};

/// One logical-file open. Analogue of Plfs_fd.
class FileHandle {
 public:
  /// A write-capable handle registers in the shared metadata plane for its
  /// whole lifetime (open → last reference dropped), so other processes'
  /// foreign-writer checks see it even before its first write materializes
  /// a WriteFile stream.
  FileHandle(std::string path, int flags, OpenOptions opts);
  ~FileHandle();

  [[nodiscard]] const std::string& path() const { return path_; }
  [[nodiscard]] int flags() const { return flags_; }

  /// Positional write on behalf of `pid` (paper: plfs_write).
  Result<std::size_t> write(std::span<const std::byte> data,
                            std::uint64_t offset, pid_t pid);

  /// Positional read (paper: plfs_read). Sees this handle's own writes:
  /// writers are flushed and the index snapshot refreshed when stale.
  Result<std::size_t> read(std::span<std::byte> out, std::uint64_t offset);

  /// List-I/O batch read (plfs_readx): every segment is served from ONE
  /// handle lock and ONE reader snapshot — the single-lookup guarantee a
  /// readv decomposed into per-iovec read() calls cannot give. Returns the
  /// cumulative byte count with POSIX readv semantics: segments fill in
  /// order, EOF cutting a segment short ends the batch there, later
  /// segments are not attempted.
  Result<std::size_t> readx(std::span<const ReadSegment> segs);

  /// List-I/O batch write (plfs_writex): every segment goes through the
  /// same writer stream under one handle lock. Returns the cumulative byte
  /// count; a failure after bytes landed reports the partial count, a
  /// failure with nothing landed reports the error (POSIX writev
  /// semantics).
  Result<std::size_t> writex(std::span<const WriteSegment> segs, pid_t pid);

  /// Flush `pid`'s writer stream (plfs_sync).
  Status sync(pid_t pid);

  /// Close `pid`'s writer stream; final close releases everything.
  Status close(pid_t pid);

  /// Current logical size as seen through this handle (flushes writers).
  Result<std::uint64_t> size();

  /// Record a truncation through this handle.
  Status truncate(std::uint64_t size, pid_t pid);

 private:
  Result<WriteFile*> writer_for(pid_t pid);
  Status flush_writers_locked();
  Result<ReadFile*> reader_locked();

  std::mutex mu_;
  std::string path_;
  int flags_;
  OpenOptions opts_;
  std::map<pid_t, std::unique_ptr<WriteFile>> writers_;
  std::unique_ptr<ReadFile> reader_;
  std::uint64_t writes_since_snapshot_ = 0;
  int shm_slot_ = -1;  // shared-plane writer slot (-1: read-only/plane off)
};

/// plfs_open. Honours O_CREAT / O_EXCL / O_TRUNC / O_RDONLY / O_WRONLY /
/// O_RDWR. Returns ENOENT when the path is not a container and O_CREAT is
/// absent; EEXIST for O_CREAT|O_EXCL on an existing container; EISDIR when
/// the path is a plain directory.
Result<std::shared_ptr<FileHandle>> plfs_open(const std::string& path,
                                              int flags, pid_t pid,
                                              mode_t mode = 0644,
                                              OpenOptions opts = {});

Result<std::size_t> plfs_write(FileHandle& fd, std::span<const std::byte> data,
                               std::uint64_t offset, pid_t pid);
Result<std::size_t> plfs_read(FileHandle& fd, std::span<std::byte> out,
                              std::uint64_t offset);

/// List-I/O batch entry points (after PVFS list I/O): one call describes
/// many file regions. Reads are served from one index snapshot (and data
/// sieving coalesces physically-close pieces per dropping, see
/// ReadFile::read_batch); writes stream through one writer and coalesce at
/// flush boundaries (see WriteFile). Segment types: ReadSegment in
/// read_file.hpp, WriteSegment in write_file.hpp.
Result<std::size_t> plfs_readx(FileHandle& fd,
                               std::span<const ReadSegment> segs);
Result<std::size_t> plfs_writex(FileHandle& fd,
                                std::span<const WriteSegment> segs, pid_t pid);
Status plfs_sync(FileHandle& fd, pid_t pid);
Status plfs_close(const std::shared_ptr<FileHandle>& fd, pid_t pid);

/// plfs_getattr: cheap when closed (metadata hints), index merge otherwise.
Result<FileAttr> plfs_getattr(const std::string& path);

Status plfs_unlink(const std::string& path);
Status plfs_trunc(const std::string& path, std::uint64_t size);
Status plfs_access(const std::string& path, int amode);
Status plfs_rename(const std::string& from, const std::string& to);

/// plfs_readdir over a backend directory: container directories appear as
/// logical files, plain entries pass through.
struct DirEntry {
  std::string name;
  bool is_plfs_file = false;
  bool is_directory = false;
};
Result<std::vector<DirEntry>> plfs_readdir(const std::string& path);

/// Merge all index droppings into one flattened dropping (speeds up later
/// opens; paper §II mentions index cost on read).
Status plfs_flatten(const std::string& path);

/// Expose container-ness at the API level for the interposition layer.
bool plfs_is_container(const std::string& path);

/// Merged view of the process-wide op counters/latency histograms
/// (common/stats). Cheap API face for benchmarks and embedding tools;
/// collection must be on (LDPLFS_STATS or stats::force_enable) or every
/// value is zero. See docs/OBSERVABILITY.md.
stats::Snapshot plfs_stats();

/// Per-backend health view (common/health): sliding-window success/failure
/// accounting and circuit-breaker state for every registered mount, plus
/// the default backend once it has seen traffic. Always populated — health
/// tracking is not gated by LDPLFS_STATS. See docs/RESILIENCE.md.
std::vector<health::BackendSnapshot> plfs_health();

}  // namespace ldplfs::plfs
