#include "plfs/read_file.hpp"

#include <algorithm>
#include <cstring>
#include <map>

#include "common/paths.hpp"
#include "common/thread_pool.hpp"
#include "plfs/fd_cache.hpp"
#include "plfs/index_cache.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

ReadFile::ReadFile(std::string root, std::shared_ptr<const GlobalIndex> index)
    : root_(std::move(root)),
      index_(std::move(index)),
      threads_(ThreadPool::env_threads()) {}

Result<std::unique_ptr<ReadFile>> ReadFile::open(const std::string& root) {
  auto index = IndexCache::shared().get(root);
  if (!index) return index.error();
  return std::unique_ptr<ReadFile>(
      new ReadFile(root, std::move(index).value()));
}

std::unique_ptr<ReadFile> ReadFile::with_index(std::string root,
                                               GlobalIndex index) {
  return std::unique_ptr<ReadFile>(new ReadFile(
      std::move(root),
      std::make_shared<const GlobalIndex>(std::move(index))));
}

Result<std::size_t> ReadFile::read_serial(
    const std::vector<MappedPiece>& pieces, std::span<std::byte> out,
    std::uint64_t offset, std::size_t want) {
  for (const auto& piece : pieces) {
    std::byte* dst = out.data() + (piece.logical - offset);
    if (piece.hole) continue;  // pre-zeroed by the caller
    auto fd = DroppingFdCache::shared().acquire(
        path_join(root_, index_->data_paths()[piece.dropping]));
    if (!fd) return fd.error();
    auto s = posix::pread_all(fd.value().get(),
                              std::span<std::byte>(dst, piece.length),
                              static_cast<off_t>(piece.physical));
    if (!s) return s.error();
  }
  return want;
}

Result<std::size_t> ReadFile::read(std::span<std::byte> out,
                                   std::uint64_t offset) {
  const std::uint64_t file_size = index_->size();
  if (offset >= file_size || out.empty()) return std::size_t{0};
  const std::size_t want = static_cast<std::size_t>(
      std::min<std::uint64_t>(out.size(), file_size - offset));

  const auto pieces = index_->lookup(offset, want);

  // Holes are pure memset; do them inline and batch only data pieces.
  // Batching by dropping keeps each worker's preads on one descriptor,
  // which is the unit of parallelism a strided N-1 container exposes.
  std::map<std::uint32_t, std::vector<std::size_t>> batches;
  for (std::size_t i = 0; i < pieces.size(); ++i) {
    const auto& piece = pieces[i];
    if (piece.hole) {
      std::memset(out.data() + (piece.logical - offset), 0, piece.length);
    } else {
      batches[piece.dropping].push_back(i);
    }
  }

  if (threads_ < 2 || batches.size() < 2) {
    return read_serial(pieces, out, offset, want);
  }

  struct BatchOutcome {
    int err = 0;
    std::uint64_t logical = ~std::uint64_t{0};  // of the first failing piece
  };
  std::vector<BatchOutcome> outcomes(batches.size());

  TaskGroup group(ThreadPool::shared());
  std::size_t slot = 0;
  for (const auto& [dropping, batch] : batches) {
    group.run([this, &pieces, &out, offset, dropping = dropping,
               batch = &batch, outcome = &outcomes[slot]] {
      auto fd = DroppingFdCache::shared().acquire(
          path_join(root_, index_->data_paths()[dropping]));
      if (!fd) {
        outcome->err = fd.error_code();
        outcome->logical = pieces[batch->front()].logical;
        return;
      }
      for (const std::size_t i : *batch) {
        const auto& piece = pieces[i];
        auto s = posix::pread_all(
            fd.value().get(),
            std::span<std::byte>(out.data() + (piece.logical - offset),
                                 piece.length),
            static_cast<off_t>(piece.physical));
        if (!s) {
          outcome->err = s.error_code();
          outcome->logical = piece.logical;
          return;
        }
      }
    });
    ++slot;
  }
  group.wait();

  const BatchOutcome* first_error = nullptr;
  for (const auto& outcome : outcomes) {
    if (outcome.err != 0 &&
        (first_error == nullptr || outcome.logical < first_error->logical)) {
      first_error = &outcome;
    }
  }
  if (first_error != nullptr) return Errno{first_error->err};
  return want;
}

}  // namespace ldplfs::plfs
