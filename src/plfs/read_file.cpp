#include "plfs/read_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstring>

#include "common/paths.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

ReadFile::ReadFile(std::string root, GlobalIndex index)
    : root_(std::move(root)), index_(std::move(index)) {
  fds_.assign(index_.data_paths().size(), -1);
}

ReadFile::~ReadFile() {
  for (int fd : fds_) {
    if (fd >= 0) ::close(fd);
  }
}

Result<std::unique_ptr<ReadFile>> ReadFile::open(const std::string& root) {
  auto index = GlobalIndex::build(root);
  if (!index) return index.error();
  return std::unique_ptr<ReadFile>(
      new ReadFile(root, std::move(index).value()));
}

std::unique_ptr<ReadFile> ReadFile::with_index(std::string root,
                                               GlobalIndex index) {
  return std::unique_ptr<ReadFile>(
      new ReadFile(std::move(root), std::move(index)));
}

Result<int> ReadFile::dropping_fd(std::uint32_t id) {
  if (id >= fds_.size()) return Errno{EIO};
  if (fds_[id] >= 0) return fds_[id];
  const std::string path = path_join(root_, index_.data_paths()[id]);
  auto fd = posix::open_fd(path, O_RDONLY);
  if (!fd) return fd.error();
  fds_[id] = fd.value().release();
  return fds_[id];
}

Result<std::size_t> ReadFile::read(std::span<std::byte> out,
                                   std::uint64_t offset) {
  const std::uint64_t file_size = index_.size();
  if (offset >= file_size || out.empty()) return std::size_t{0};
  const std::uint64_t want =
      std::min<std::uint64_t>(out.size(), file_size - offset);

  std::size_t produced = 0;
  for (const auto& piece : index_.lookup(offset, want)) {
    std::byte* dst = out.data() + (piece.logical - offset);
    if (piece.hole) {
      std::memset(dst, 0, piece.length);
    } else {
      auto fd = dropping_fd(piece.dropping);
      if (!fd) return fd.error();
      auto s = posix::pread_all(
          fd.value(), std::span<std::byte>(dst, piece.length),
          static_cast<off_t>(piece.physical));
      if (!s) return s.error();
    }
    produced += piece.length;
  }
  return produced;
}

}  // namespace ldplfs::plfs
