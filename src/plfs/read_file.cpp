#include "plfs/read_file.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <map>

#include "common/paths.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "plfs/fd_cache.hpp"
#include "plfs/index_cache.hpp"
#include "plfs/mapped_container.hpp"
#include "plfs/shared_meta.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

namespace {

constexpr std::size_t kDefaultSieveMaxHole = std::size_t{64} << 10;
constexpr std::size_t kMaxSieveMaxHole = std::size_t{16} << 20;
constexpr std::size_t kDefaultSieveBuffer = std::size_t{4} << 20;
constexpr std::size_t kMinSieveBuffer = std::size_t{64} << 10;
constexpr std::size_t kMaxSieveBuffer = std::size_t{256} << 20;

}  // namespace

bool ReadFile::env_sieve() {
  const char* env = std::getenv("LDPLFS_SIEVE");
  return env == nullptr || std::string(env) != "0";
}

std::size_t ReadFile::env_sieve_max_hole() {
  const char* env = std::getenv("LDPLFS_SIEVE_MAX_HOLE");
  if (env == nullptr || *env == '\0') return kDefaultSieveMaxHole;
  const std::uint64_t parsed = parse_bytes(env);
  if (parsed == 0) return kDefaultSieveMaxHole;  // malformed: stay safe
  return static_cast<std::size_t>(
      std::min<std::uint64_t>(parsed, kMaxSieveMaxHole));
}

std::size_t ReadFile::env_sieve_buffer() {
  const char* env = std::getenv("LDPLFS_SIEVE_BUFFER");
  if (env == nullptr || *env == '\0') return kDefaultSieveBuffer;
  const std::uint64_t parsed = parse_bytes(env);
  if (parsed == 0) return kDefaultSieveBuffer;  // malformed: stay safe
  return static_cast<std::size_t>(
      std::clamp<std::uint64_t>(parsed, kMinSieveBuffer, kMaxSieveBuffer));
}

ReadFile::ReadFile(std::string root, std::shared_ptr<const GlobalIndex> index)
    : root_(std::move(root)),
      index_(std::move(index)),
      threads_(ThreadPool::env_threads()),
      sieve_(env_sieve()),
      sieve_max_hole_(env_sieve_max_hole()),
      sieve_buffer_(env_sieve_buffer()) {
  // Mapped reads bypass the per-read revalidation preads get for free, so
  // keep them off while another process holds the container open for write
  // (registered in the shared plane) — this snapshot would read the live
  // dropping's pages instead of the index's view of them.
  if (MappedContainerRegistry::reads_enabled() &&
      !shmeta::has_foreign_writers(root_)) {
    mapped_dropping_ = single_dropping_of(*index_);
  }
}

Result<std::unique_ptr<ReadFile>> ReadFile::open(const std::string& root) {
  auto index = IndexCache::shared().get(root);
  if (!index) return index.error();
  return std::unique_ptr<ReadFile>(
      new ReadFile(root, std::move(index).value()));
}

std::unique_ptr<ReadFile> ReadFile::with_index(std::string root,
                                               GlobalIndex index) {
  return std::unique_ptr<ReadFile>(new ReadFile(
      std::move(root),
      std::make_shared<const GlobalIndex>(std::move(index))));
}

bool ReadFile::try_mapped_read(const std::vector<PieceRef>& refs) {
  auto region = MappedContainerRegistry::shared().acquire(
      path_join(root_, index_->data_paths()[*mapped_dropping_]));
  if (!region) return false;
  const MappedRegion& map = region.value();
  // All-or-nothing: a piece past the mapping (index ahead of data, torn
  // tail) sends the whole batch down the pread path rather than mixing.
  for (const auto& ref : refs) {
    if (ref.piece.physical + ref.piece.length > map.size()) return false;
  }
  std::uint64_t bytes = 0;
  for (const auto& ref : refs) {
    std::memcpy(ref.dst, map.data() + ref.piece.physical, ref.piece.length);
    bytes += ref.piece.length;
  }
  stats::add(stats::Counter::kMmapReads);
  stats::add(stats::Counter::kMmapBytes, bytes);
  return true;
}

int ReadFile::read_dropping(std::uint32_t dropping,
                            const std::vector<PieceRef>& refs,
                            std::size_t* failing_seq) {
  // Zero-copy fast path: a flattened container's one dropping is served
  // straight from the page cache, no preads at all.
  if (mapped_dropping_ && dropping == *mapped_dropping_) {
    if (try_mapped_read(refs)) return 0;
    stats::add(stats::Counter::kMmapFallbacks);
  }

  auto fd = DroppingFdCache::shared().acquire(
      path_join(root_, index_->data_paths()[dropping]));
  if (!fd) {
    *failing_seq = refs.front().seq;
    return fd.error_code();
  }

  std::vector<std::byte> scratch;  // reused across sieve runs
  std::size_t i = 0;
  while (i < refs.size()) {
    // Grow the run while the next piece is close enough that one covering
    // pread beats separate calls: physical gap bounded by the max-hole
    // knob, covering span bounded by the sieve buffer.
    std::size_t j = i;
    const std::uint64_t base = refs[i].piece.physical;
    std::uint64_t end = base + refs[i].piece.length;
    if (sieve_) {
      while (j + 1 < refs.size()) {
        const auto& next = refs[j + 1].piece;
        const std::uint64_t gap = next.physical > end ? next.physical - end : 0;
        const std::uint64_t reach = std::max(end, next.physical + next.length);
        if (gap > sieve_max_hole_ || reach - base > sieve_buffer_) break;
        end = reach;
        ++j;
      }
    }

    if (j == i) {
      // Singleton run: pread straight into the destination, no extra copy.
      const auto& ref = refs[i];
      stats::add(stats::Counter::kSieveDirectReads);
      auto s = posix::pread_all(
          fd.value().get(), std::span<std::byte>(ref.dst, ref.piece.length),
          static_cast<off_t>(ref.piece.physical));
      if (!s) {
        *failing_seq = ref.seq;
        return s.error_code();
      }
    } else {
      // Sieved run: one covering pread, scatter in memory. The covering
      // range may include bytes no piece asked for (physical holes between
      // pieces); they are read and dropped — that is the sieving trade.
      const std::size_t span = static_cast<std::size_t>(end - base);
      scratch.resize(span);
      auto s = posix::pread_all(fd.value().get(),
                                std::span<std::byte>(scratch.data(), span),
                                static_cast<off_t>(base));
      if (!s) {
        std::size_t seq = refs[i].seq;
        for (std::size_t k = i + 1; k <= j; ++k) {
          seq = std::min(seq, refs[k].seq);
        }
        *failing_seq = seq;
        return s.error_code();
      }
      std::uint64_t delivered = 0;
      for (std::size_t k = i; k <= j; ++k) {
        const auto& ref = refs[k];
        std::memcpy(ref.dst, scratch.data() + (ref.piece.physical - base),
                    ref.piece.length);
        delivered += ref.piece.length;
      }
      stats::add(stats::Counter::kSieveReads);
      stats::add(stats::Counter::kSieveBytesRead, span);
      stats::add(stats::Counter::kSieveBytesDelivered, delivered);
      stats::add(stats::Counter::kSieveHoleBytes, span - delivered);
    }
    i = j + 1;
  }
  return 0;
}

Result<std::size_t> ReadFile::read(std::span<std::byte> out,
                                   std::uint64_t offset) {
  const ReadSegment seg{offset, out};
  return read_batch(std::span<const ReadSegment>(&seg, 1));
}

Result<std::size_t> ReadFile::read_batch(std::span<const ReadSegment> segs) {
  const std::uint64_t file_size = index_->size();

  // Resolve every segment against the snapshot up front. Holes are pure
  // memset; only data pieces queue for I/O. A segment past EOF (or one that
  // EOF cuts short) ends the batch: POSIX readv semantics, the cumulative
  // count covers everything delivered up to that point.
  std::size_t total = 0;
  std::vector<PieceRef> refs;
  for (const auto& seg : segs) {
    if (seg.buf.empty()) continue;
    if (seg.offset >= file_size) break;
    const std::size_t want = static_cast<std::size_t>(
        std::min<std::uint64_t>(seg.buf.size(), file_size - seg.offset));
    const auto pieces = index_->lookup(seg.offset, want);
    for (const auto& piece : pieces) {
      std::byte* dst = seg.buf.data() + (piece.logical - seg.offset);
      if (piece.hole) {
        std::memset(dst, 0, piece.length);
      } else {
        refs.push_back(PieceRef{piece, dst, refs.size()});
      }
    }
    total += want;
    if (want < seg.buf.size()) break;  // EOF inside this segment
  }
  if (refs.empty()) return total;

  // Batching by dropping keeps each worker's preads on one descriptor,
  // which is both the unit of parallelism a strided N-1 container exposes
  // and the unit data sieving coalesces within. Physical order inside a
  // dropping is what makes runs contiguous.
  std::map<std::uint32_t, std::vector<PieceRef>> batches;
  for (const auto& ref : refs) batches[ref.piece.dropping].push_back(ref);
  for (auto& [dropping, batch] : batches) {
    std::sort(batch.begin(), batch.end(),
              [](const PieceRef& a, const PieceRef& b) {
                if (a.piece.physical != b.piece.physical) {
                  return a.piece.physical < b.piece.physical;
                }
                return a.seq < b.seq;
              });
  }

  struct BatchOutcome {
    int err = 0;
    std::size_t seq = ~std::size_t{0};  // of the first failing piece
  };
  std::vector<BatchOutcome> outcomes(batches.size());

  if (threads_ < 2 || batches.size() < 2) {
    std::size_t slot = 0;
    for (const auto& [dropping, batch] : batches) {
      outcomes[slot].err =
          read_dropping(dropping, batch, &outcomes[slot].seq);
      ++slot;
    }
  } else {
    TaskGroup group(ThreadPool::shared());
    std::size_t slot = 0;
    for (const auto& [dropping, batch] : batches) {
      group.run([this, dropping = dropping, batch = &batch,
                 outcome = &outcomes[slot]] {
        outcome->err = read_dropping(dropping, *batch, &outcome->seq);
      });
      ++slot;
    }
    group.wait();
  }

  const BatchOutcome* first_error = nullptr;
  for (const auto& outcome : outcomes) {
    if (outcome.err != 0 &&
        (first_error == nullptr || outcome.seq < first_error->seq)) {
      first_error = &outcome;
    }
  }
  if (first_error != nullptr) return Errno{first_error->err};
  return total;
}

}  // namespace ldplfs::plfs
