// Reader over a container: global index + shared dropping-fd cache +
// parallel read engine with data sieving.
//
// Reads walk the extent map, pread the mapped pieces from their droppings,
// and zero-fill holes. The merged index comes from the process-wide
// IndexCache (stat-validated, so repeated opens of an unchanged container
// skip the merge), and dropping fds come from the process-wide LRU
// DroppingFdCache, so a thousand-dropping container cannot exhaust the fd
// table and concurrent readers share open descriptors.
//
// The engine is batch-first (list-I/O, after PVFS): read_batch() services a
// whole vector of {offset, buffer} segments from one index snapshot.
// Pieces are grouped per dropping, and within one dropping physically-close
// pieces are *sieved* (after MPI-IO data sieving): one covering pread into
// a scratch buffer, scattered into the user buffers in memory, instead of
// one pread per piece. Sieving is governed by LDPLFS_SIEVE (default on),
// LDPLFS_SIEVE_MAX_HOLE (largest physical gap a covering read may span) and
// LDPLFS_SIEVE_BUFFER (largest covering read); pieces that don't form a
// profitable run fall back to direct per-piece preads.
//
// When a batch spans pieces in more than one dropping and LDPLFS_THREADS
// allows it, the per-dropping batches are serviced concurrently on the
// shared thread pool — the strided N-1 read pattern then drives many
// droppings at once instead of one pread at a time. Error semantics match
// the original serial path exactly: any piece failure fails the whole
// batch, and when several droppings fail the error of the
// delivery-order-first failing piece is reported (first error wins, no
// partial credit past an error hole).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "plfs/index.hpp"

namespace ldplfs::plfs {

/// One segment of a list-I/O read batch: fill `buf` from logical `offset`.
struct ReadSegment {
  std::uint64_t offset = 0;
  std::span<std::byte> buf;
};

class ReadFile {
 public:
  /// Prepare to read the container at `root`. The index is a point-in-time
  /// snapshot (served from the IndexCache when fresh); concurrent writers'
  /// later records are not visible (same semantics as PLFS).
  static Result<std::unique_ptr<ReadFile>> open(const std::string& root);

  /// Open with an externally supplied index (used after plfs_flatten and
  /// by tests).
  static std::unique_ptr<ReadFile> with_index(std::string root,
                                              GlobalIndex index);

  ReadFile(const ReadFile&) = delete;
  ReadFile& operator=(const ReadFile&) = delete;

  /// Read up to out.size() bytes at `offset`. Returns bytes read; short
  /// reads happen only at EOF. (A one-segment batch.)
  Result<std::size_t> read(std::span<std::byte> out, std::uint64_t offset);

  /// List-I/O entry point: service every segment against this one index
  /// snapshot and return the cumulative byte count with POSIX readv
  /// semantics — segments fill in order, a segment that lands short of its
  /// buffer means EOF and ends the batch there, and later segments are not
  /// attempted. Segments may overlap, touch, or be out of order; each is
  /// served independently from the snapshot.
  Result<std::size_t> read_batch(std::span<const ReadSegment> segs);

  [[nodiscard]] std::uint64_t size() const { return index_->size(); }
  [[nodiscard]] const GlobalIndex& index() const { return *index_; }

  /// Parse LDPLFS_SIEVE: "0" disables data sieving (every piece becomes a
  /// direct pread), anything else (including unset) enables it.
  static bool env_sieve();
  /// Parse LDPLFS_SIEVE_MAX_HOLE ("64K", plain bytes): the largest physical
  /// gap between two pieces a covering sieve read may span. Malformed or
  /// unset falls back to 64 KiB; values clamp into [1, 16 MiB].
  static std::size_t env_sieve_max_hole();
  /// Parse LDPLFS_SIEVE_BUFFER ("4M", plain bytes): the largest covering
  /// sieve read. Malformed or unset falls back to 4 MiB; values clamp into
  /// [64 KiB, 256 MiB].
  static std::size_t env_sieve_buffer();

 private:
  ReadFile(std::string root, std::shared_ptr<const GlobalIndex> index);

  /// One data piece of a batch: where it lives and where it lands. `seq` is
  /// the delivery order across the whole batch (the first-error-wins key).
  struct PieceRef {
    MappedPiece piece;
    std::byte* dst = nullptr;
    std::size_t seq = 0;
  };

  /// Service one dropping's pieces (sorted by physical offset): form sieve
  /// runs, issue covering or direct preads, scatter into destinations.
  /// Returns 0 or the errno of the first failure; `failing_seq` gets the
  /// smallest seq the failure covers.
  int read_dropping(std::uint32_t dropping, const std::vector<PieceRef>& refs,
                    std::size_t* failing_seq);

  /// Mapped fast path (LDPLFS_MMAP_READS): serve every piece by memcpy from
  /// the registry's mapping of the single data dropping — zero preads.
  /// False (caller falls back to the pread/sieve path and counts
  /// mmap.fallbacks) when the mapping cannot be acquired or does not cover
  /// every piece.
  bool try_mapped_read(const std::vector<PieceRef>& refs);

  std::string root_;
  std::shared_ptr<const GlobalIndex> index_;
  unsigned threads_;  // LDPLFS_THREADS at open; <2 forces the serial path
  bool sieve_;                  // LDPLFS_SIEVE at open
  std::size_t sieve_max_hole_;  // LDPLFS_SIEVE_MAX_HOLE at open
  std::size_t sieve_buffer_;    // LDPLFS_SIEVE_BUFFER at open
  /// Set when LDPLFS_MMAP_READS is on and every extent lives in one data
  /// dropping (the flattened/compacted shape): that dropping's id.
  std::optional<std::uint32_t> mapped_dropping_;
};

}  // namespace ldplfs::plfs
