// Reader over a container: global index + shared dropping-fd cache +
// parallel read engine.
//
// Reads walk the extent map, pread the mapped pieces from their droppings,
// and zero-fill holes. The merged index comes from the process-wide
// IndexCache (stat-validated, so repeated opens of an unchanged container
// skip the merge), and dropping fds come from the process-wide LRU
// DroppingFdCache, so a thousand-dropping container cannot exhaust the fd
// table and concurrent readers share open descriptors.
//
// When a read spans pieces in more than one dropping and LDPLFS_THREADS
// allows it, the pieces are partitioned into per-dropping batches and
// serviced concurrently on the shared thread pool — the strided N-1 read
// pattern then drives many droppings at once instead of one pread at a
// time. Error semantics match the serial path exactly: any piece failure
// fails the whole read, and when several batches fail the error of the
// logically-first failing piece is reported (first error wins, no partial
// credit past an error hole).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "plfs/index.hpp"

namespace ldplfs::plfs {

class ReadFile {
 public:
  /// Prepare to read the container at `root`. The index is a point-in-time
  /// snapshot (served from the IndexCache when fresh); concurrent writers'
  /// later records are not visible (same semantics as PLFS).
  static Result<std::unique_ptr<ReadFile>> open(const std::string& root);

  /// Open with an externally supplied index (used after plfs_flatten and
  /// by tests).
  static std::unique_ptr<ReadFile> with_index(std::string root,
                                              GlobalIndex index);

  ReadFile(const ReadFile&) = delete;
  ReadFile& operator=(const ReadFile&) = delete;

  /// Read up to out.size() bytes at `offset`. Returns bytes read; short
  /// reads happen only at EOF.
  Result<std::size_t> read(std::span<std::byte> out, std::uint64_t offset);

  [[nodiscard]] std::uint64_t size() const { return index_->size(); }
  [[nodiscard]] const GlobalIndex& index() const { return *index_; }

 private:
  ReadFile(std::string root, std::shared_ptr<const GlobalIndex> index);

  Result<std::size_t> read_serial(const std::vector<MappedPiece>& pieces,
                                  std::span<std::byte> out,
                                  std::uint64_t offset, std::size_t want);

  std::string root_;
  std::shared_ptr<const GlobalIndex> index_;
  unsigned threads_;  // LDPLFS_THREADS at open; <2 forces the serial path
};

}  // namespace ldplfs::plfs
