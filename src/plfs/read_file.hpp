// Reader over a container: global index + lazily-opened data droppings.
//
// Reads walk the extent map, pread the mapped pieces from their droppings,
// and zero-fill holes. Dropping fds are opened on first touch and cached —
// a container written by N ranks has N data droppings and a reader usually
// touches only the ones covering its range.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/result.hpp"
#include "plfs/index.hpp"

namespace ldplfs::plfs {

class ReadFile {
 public:
  /// Build the global index for the container at `root` and prepare for
  /// reads. The index is a point-in-time snapshot; concurrent writers'
  /// later records are not visible (same semantics as PLFS).
  static Result<std::unique_ptr<ReadFile>> open(const std::string& root);

  /// Open with an externally supplied index (used after plfs_flatten and
  /// by tests).
  static std::unique_ptr<ReadFile> with_index(std::string root,
                                              GlobalIndex index);

  ~ReadFile();
  ReadFile(const ReadFile&) = delete;
  ReadFile& operator=(const ReadFile&) = delete;

  /// Read up to out.size() bytes at `offset`. Returns bytes read; short
  /// reads happen only at EOF.
  Result<std::size_t> read(std::span<std::byte> out, std::uint64_t offset);

  [[nodiscard]] std::uint64_t size() const { return index_.size(); }
  [[nodiscard]] const GlobalIndex& index() const { return index_; }

 private:
  ReadFile(std::string root, GlobalIndex index);

  Result<int> dropping_fd(std::uint32_t id);

  std::string root_;
  GlobalIndex index_;
  std::vector<int> fds_;  // parallel to index_.data_paths(); -1 = not open
};

}  // namespace ldplfs::plfs
