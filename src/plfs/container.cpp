#include "plfs/container.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <functional>

#include <cstdlib>
#include <cstring>

#include "common/paths.hpp"
#include "common/stats.hpp"
#include "common/strings.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

namespace {

std::string writer_suffix(const WriterId& writer) {
  char buf[160];
  std::snprintf(buf, sizeof buf, "%llu.%s.%ld",
                static_cast<unsigned long long>(writer.open_ts),
                writer.host.c_str(), static_cast<long>(writer.pid));
  return buf;
}

/// Collect droppings with a given filename prefix across all hostdirs.
Result<std::vector<std::string>> find_droppings(const std::string& root,
                                                const char* prefix) {
  auto entries = posix::list_dir(root);
  if (!entries) return entries.error();
  std::vector<std::string> out;
  for (const auto& entry : entries.value()) {
    if (!starts_with(entry, kHostDirPrefix)) continue;
    const std::string hostdir = path_join(root, entry);
    auto files = posix::list_dir(hostdir);
    if (!files) return files.error();
    for (const auto& file : files.value()) {
      if (starts_with(file, prefix)) out.push_back(path_join(hostdir, file));
    }
  }
  // list_dir sorts per directory; the concatenation is already
  // deterministic because hostdir entries are sorted too.
  return out;
}

}  // namespace

ContainerLayout::ContainerLayout(std::string root, unsigned hostdirs)
    : root_(std::move(root)), hostdirs_(hostdirs == 0 ? 1 : hostdirs) {}

std::string ContainerLayout::access_path() const {
  return path_join(root_, kAccessFile);
}
std::string ContainerLayout::creator_path() const {
  return path_join(root_, kCreatorFile);
}
std::string ContainerLayout::openhosts_path() const {
  return path_join(root_, kOpenHostsDir);
}
std::string ContainerLayout::metadata_path() const {
  return path_join(root_, kMetadataDir);
}

unsigned ContainerLayout::hostdir_bucket(const std::string& host) const {
  return static_cast<unsigned>(std::hash<std::string>{}(host) % hostdirs_);
}

std::string ContainerLayout::hostdir_path(unsigned bucket) const {
  return path_join(root_, kHostDirPrefix + std::to_string(bucket));
}

std::string ContainerLayout::hostdir_for(const std::string& host) const {
  return hostdir_path(hostdir_bucket(host));
}

std::string ContainerLayout::data_dropping_name(const WriterId& writer) {
  return kDataDroppingPrefix + writer_suffix(writer);
}

std::string ContainerLayout::index_dropping_name(const WriterId& writer) {
  return kIndexDroppingPrefix + writer_suffix(writer);
}

std::string ContainerLayout::data_dropping_path(const WriterId& writer) const {
  return path_join(hostdir_for(writer.host), data_dropping_name(writer));
}

std::string ContainerLayout::index_dropping_path(const WriterId& writer) const {
  return path_join(hostdir_for(writer.host), index_dropping_name(writer));
}

std::string ContainerLayout::openhost_path(const WriterId& writer) const {
  char buf[160];
  std::snprintf(buf, sizeof buf, "host.%s.%ld.%llu", writer.host.c_str(),
                static_cast<long>(writer.pid),
                static_cast<unsigned long long>(writer.open_ts));
  return path_join(openhosts_path(), buf);
}

std::string ContainerLayout::meta_name(const MetaHint& hint) {
  char buf[200];
  std::snprintf(buf, sizeof buf, "meta.%llu.%llu.%s.%ld",
                static_cast<unsigned long long>(hint.eof),
                static_cast<unsigned long long>(hint.bytes),
                hint.host.c_str(), static_cast<long>(hint.pid));
  return buf;
}

bool ContainerLayout::parse_meta_name(const std::string& name, MetaHint& out) {
  auto parts = split(name, '.');
  if (parts.size() < 5 || parts[0] != "meta") return false;
  const long long eof = parse_ll(parts[1]);
  const long long bytes = parse_ll(parts[2]);
  const long long pid = parse_ll(parts.back());
  if (eof < 0 || bytes < 0 || pid < 0) return false;
  out.eof = static_cast<std::uint64_t>(eof);
  out.bytes = static_cast<std::uint64_t>(bytes);
  // Host may itself contain dots: everything between field 2 and the pid.
  std::vector<std::string> host_parts(parts.begin() + 3, parts.end() - 1);
  out.host = join(host_parts, ".");
  out.pid = static_cast<pid_t>(pid);
  return true;
}

bool is_container(const std::string& path) {
  return posix::is_directory(path) &&
         posix::exists(path_join(path, kAccessFile));
}

Status create_container(const std::string& path, mode_t mode,
                        const std::string& host, pid_t pid,
                        unsigned hostdirs) {
  if (posix::exists(path)) return Errno{EEXIST};
  // Build the container fully formed in a hidden sibling, then rename it
  // into place. The rename is the commit point: a concurrent observer
  // either sees nothing at `path` or a complete container — never a
  // directory without its access file (which plfs_open would misread as a
  // foreign directory and fail with EISDIR). Racing creators both build;
  // the rename loser gets ENOTEMPTY/EEXIST and reports EEXIST, which
  // plfs_open already treats as a benign lost race.
  const std::string staged = path_join(
      path_dirname(path), ".mkplfs." + path_basename(path) + "." + host + "." +
                              std::to_string(static_cast<long>(pid)));
  ContainerLayout layout(staged, hostdirs);
  if (auto s = posix::make_dirs(staged); !s) return s;
  auto fail = [&staged](Status s) {
    (void)posix::remove_tree(staged);
    return s;
  };
  if (auto s = posix::make_dir(layout.openhosts_path()); !s) return fail(s);
  if (auto s = posix::make_dir(layout.metadata_path()); !s) return fail(s);
  char creator[256];
  std::snprintf(creator, sizeof creator, "host=%s pid=%ld mode=%o hostdirs=%u\n",
                host.c_str(), static_cast<long>(pid),
                static_cast<unsigned>(mode), hostdirs);
  if (auto s = posix::write_file(layout.creator_path(), creator); !s) {
    return fail(s);
  }
  if (auto s = posix::write_file(layout.access_path(), ""); !s) return fail(s);
  if (auto s = posix::rename_path(staged, path); !s) {
    const int err = s.error_code();
    (void)posix::remove_tree(staged);
    // rename(2) onto a non-empty directory: another creator won the race.
    if (err == ENOTEMPTY || err == EEXIST) return Errno{EEXIST};
    return s;
  }
  return Status::success();
}

bool fast_create_enabled() {
  const char* env = std::getenv("LDPLFS_FAST_CREATE");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

Status create_container_fast(const std::string& path, mode_t mode) {
  // Metadata-storm create (after posix_2_ime's mknod/open split): publish
  // the minimum that makes the directory a container — the directory itself
  // plus the access marker — and defer openhosts/, metadata/ and the
  // creator file to their first users (WriteFile::open/close create the
  // dirs on demand; the readers tolerate their absence). Two ops instead
  // of the staged-rename path's seven. The access marker doubles as the
  // mode record so getattr needs no creator file.
  //
  // Crash window: a crash between mkdir and the marker write leaves a bare
  // directory that plfs_open reports as EISDIR until removed — the
  // documented tradeoff (docs/FAILURE_MODEL.md) for the storm path; the
  // default staged-rename create keeps its all-or-nothing commit.
  if (auto s = posix::make_dir(path); !s) return s;  // EEXIST passes through
  char marker[32];
  std::snprintf(marker, sizeof marker, "mode=%o\n",
                static_cast<unsigned>(mode));
  if (auto s = posix::write_file(path_join(path, kAccessFile), marker); !s) {
    (void)posix::remove_tree(path);
    return s;
  }
  stats::add(stats::Counter::kShmFastCreate);
  return Status::success();
}

Status remove_container(const std::string& path) {
  if (!is_container(path)) return Errno{ENOENT};
  return posix::remove_tree(path);
}

Result<std::vector<std::string>> find_index_droppings(const std::string& root) {
  return find_droppings(root, kIndexDroppingPrefix);
}

Result<std::vector<std::string>> find_data_droppings(const std::string& root) {
  return find_droppings(root, kDataDroppingPrefix);
}

Result<std::vector<MetaHint>> read_meta_hints(const std::string& root) {
  ContainerLayout layout(root);
  auto entries = posix::list_dir(layout.metadata_path());
  // A fast-created container has no metadata/ until a writer closes:
  // absence means "no hints", not an error.
  if (!entries && entries.error_code() == ENOENT) {
    return std::vector<MetaHint>{};
  }
  if (!entries) return entries.error();
  std::vector<MetaHint> hints;
  for (const auto& name : entries.value()) {
    MetaHint hint;
    if (ContainerLayout::parse_meta_name(name, hint)) hints.push_back(hint);
  }
  return hints;
}

Result<std::vector<std::string>> read_open_hosts(const std::string& root) {
  ContainerLayout layout(root);
  auto entries = posix::list_dir(layout.openhosts_path());
  // No openhosts/ yet (fast-created container, writer never opened): no
  // registered writers.
  if (!entries && entries.error_code() == ENOENT) {
    return std::vector<std::string>{};
  }
  return entries;
}

const std::string& local_hostname() {
  static const std::string name = [] {
    char buf[256] = {0};
    if (::gethostname(buf, sizeof buf - 1) != 0) return std::string("localhost");
    return std::string(buf);
  }();
  return name;
}

std::uint64_t next_timestamp() {
  // Seeded from the wall clock once, then a strict +1 counter. Keeping
  // consecutive calls exactly one apart is load-bearing: the index-record
  // continuation merges (IndexWriter::add_write, WriteFile::stage_record /
  // coalesce_active) re-stamp merged bytes, which is only sound when no
  // stamp can sit between the merged ones — "the stamps are consecutive
  // integers" is precisely that guarantee. Cross-process ordering only
  // drifts from real time by the number of stamps drawn (nanoseconds per
  // call), far below the clock skew the wall-clock scheme tolerated anyway.
  static std::atomic<std::uint64_t> last{[] {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
  }()};
  return last.fetch_add(1, std::memory_order_relaxed) + 1;
}

}  // namespace ldplfs::plfs
