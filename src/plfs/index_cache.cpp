#include "plfs/index_cache.hpp"

#include <cstdlib>

#include "common/stats.hpp"
#include "plfs/container.hpp"
#include "plfs/shared_meta.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

IndexCache::IndexCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool IndexCache::enabled() {
  const char* env = std::getenv("LDPLFS_INDEX_CACHE");
  return env == nullptr || std::string_view(env) != "0";
}

Result<IndexCache::Fingerprint> IndexCache::fingerprint(
    const std::string& root) {
  auto paths = find_index_droppings(root);
  if (!paths) return paths.error();
  Fingerprint fp;
  fp.paths = std::move(paths).value();
  fp.stamps.reserve(fp.paths.size() * 2);
  for (const auto& path : fp.paths) {
    auto st = posix::stat_path(path);
    if (!st) return st.error();  // dropping vanished mid-stat: treat as stale
    const auto& s = st.value();
    fp.stamps.push_back(static_cast<std::uint64_t>(s.st_mtim.tv_sec) *
                            1'000'000'000ull +
                        static_cast<std::uint64_t>(s.st_mtim.tv_nsec));
    fp.stamps.push_back(static_cast<std::uint64_t>(s.st_size));
  }
  return fp;
}

Result<std::shared_ptr<const GlobalIndex>> IndexCache::get(
    const std::string& root) {
  if (!enabled()) {
    auto index = GlobalIndex::build(root);
    if (!index) return index.error();
    return std::make_shared<const GlobalIndex>(std::move(index).value());
  }

  // Read the shared generation BEFORE validating or building: a bump that
  // lands between this load and the build only makes the cached entry look
  // stale earlier than necessary — never fresh when it isn't.
  const std::optional<std::uint64_t> gen = shmeta::generation(root);

  Fingerprint fp_value;
  if (gen.has_value()) {
    // Shared plane active for this root: one atomic load replaces the
    // list-every-hostdir + stat-every-dropping fingerprint storm.
    std::lock_guard lock(mu_);
    auto it = map_.find(root);
    if (it != map_.end() && it->second.first.gen_valid &&
        it->second.first.gen == *gen) {
      lru_.splice(lru_.begin(), lru_, it->second.second);
      it->second.second = lru_.begin();
      ++stats_.hits;
      stats::add(stats::Counter::kCacheIndexHit);
      stats::add(stats::Counter::kShmGenHit);
      stats::add(stats::Counter::kShmStatSkipped);
      return it->second.first.index;
    }
    if (it != map_.end()) stats::add(stats::Counter::kShmGenStale);
  } else {
    auto fp = fingerprint(root);
    if (!fp) return fp.error();
    fp_value = std::move(fp).value();
    std::lock_guard lock(mu_);
    auto it = map_.find(root);
    if (it != map_.end() && it->second.first.fp == fp_value) {
      lru_.splice(lru_.begin(), lru_, it->second.second);
      it->second.second = lru_.begin();
      ++stats_.hits;
      stats::add(stats::Counter::kCacheIndexHit);
      return it->second.first.index;
    }
  }

  // Build outside the lock: merges are the expensive part and distinct
  // containers must not serialise on each other. A racing build of the
  // same root does redundant work but both results are correct snapshots.
  auto index = GlobalIndex::build(root);
  if (!index) return index.error();
  auto shared_index =
      std::make_shared<const GlobalIndex>(std::move(index).value());

  Entry entry{std::move(fp_value), shared_index, gen.value_or(0),
              gen.has_value()};

  std::lock_guard lock(mu_);
  ++stats_.misses;
  stats::add(stats::Counter::kCacheIndexMiss);
  auto it = map_.find(root);
  if (it != map_.end()) {
    it->second.first = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second.second);
    it->second.second = lru_.begin();
  } else {
    lru_.push_front(root);
    map_.emplace(root, std::make_pair(std::move(entry), lru_.begin()));
    while (map_.size() > capacity_) {
      map_.erase(lru_.back());
      lru_.pop_back();
    }
  }
  return shared_index;
}

void IndexCache::invalidate(const std::string& root) {
  std::lock_guard lock(mu_);
  auto it = map_.find(root);
  if (it == map_.end()) return;
  lru_.erase(it->second.second);
  map_.erase(it);
  ++stats_.invalidations;
  stats::add(stats::Counter::kCacheIndexInvalidation);
}

void IndexCache::clear() {
  std::lock_guard lock(mu_);
  stats_.invalidations += map_.size();
  stats::add(stats::Counter::kCacheIndexInvalidation, map_.size());
  map_.clear();
  lru_.clear();
}

IndexCache::Stats IndexCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

IndexCache& IndexCache::shared() {
  // Deliberately leaked — see DroppingFdCache::shared(): exit-drained pool
  // tasks may still consult the cache after static destruction begins.
  static IndexCache* cache = new IndexCache(64);
  return *cache;
}

}  // namespace ldplfs::plfs
