#include "plfs/index_format.hpp"

#include <bit>
#include <cstring>

#include "posix/fd.hpp"

namespace ldplfs::plfs {

static_assert(std::endian::native == std::endian::little,
              "index droppings are little-endian on disk");

std::string encode_index_header(const std::vector<std::string>& data_paths) {
  std::string out;
  out.append(kIndexMagic, sizeof kIndexMagic);
  const std::uint32_t version = kIndexVersion;
  const auto count = static_cast<std::uint32_t>(data_paths.size());
  out.append(reinterpret_cast<const char*>(&version), 4);
  out.append(reinterpret_cast<const char*>(&count), 4);
  for (const auto& path : data_paths) {
    const auto len = static_cast<std::uint16_t>(path.size());
    out.append(reinterpret_cast<const char*>(&len), 2);
    out.append(path);
  }
  return out;
}

Result<IndexDropping> decode_index_dropping(const std::string& bytes) {
  if (bytes.size() < sizeof kIndexMagic + 8) return Errno{EINVAL};
  if (std::memcmp(bytes.data(), kIndexMagic, sizeof kIndexMagic) != 0) {
    return Errno{EINVAL};
  }
  std::size_t pos = sizeof kIndexMagic;
  std::uint32_t version = 0;
  std::uint32_t count = 0;
  std::memcpy(&version, bytes.data() + pos, 4);
  pos += 4;
  std::memcpy(&count, bytes.data() + pos, 4);
  pos += 4;
  if (version != kIndexVersion) return Errno{EINVAL};

  IndexDropping out;
  out.data_paths.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    if (pos + 2 > bytes.size()) return Errno{EINVAL};
    std::uint16_t len = 0;
    std::memcpy(&len, bytes.data() + pos, 2);
    pos += 2;
    if (pos + len > bytes.size()) return Errno{EINVAL};
    out.data_paths.emplace_back(bytes.data() + pos, len);
    pos += len;
  }

  const std::size_t record_bytes = bytes.size() - pos;
  const std::size_t whole = record_bytes / sizeof(IndexRecord);
  out.torn_tail_bytes = record_bytes - whole * sizeof(IndexRecord);
  out.records.resize(whole);
  std::memcpy(out.records.data(), bytes.data() + pos,
              whole * sizeof(IndexRecord));
  for (const auto& rec : out.records) {
    if (rec.kind == static_cast<std::uint32_t>(RecordKind::kData) &&
        rec.dropping_ref >= out.data_paths.size()) {
      return Errno{EINVAL};
    }
  }
  return out;
}

Result<IndexDropping> load_index_dropping(const std::string& path) {
  auto bytes = posix::read_file(path);
  if (!bytes) return bytes.error();
  return decode_index_dropping(bytes.value());
}

}  // namespace ldplfs::plfs
