// Process-wide LRU cache of open data-dropping file descriptors.
//
// The seed kept one unbounded fd vector per ReadFile, so a container with a
// thousand droppings could exhaust the process fd table, and every new
// ReadFile re-opened droppings another reader already had open. This cache
// is shared by all readers: entries are keyed by absolute dropping path,
// capped by LDPLFS_FD_CACHE (default 256), and evicted least-recently-used.
//
// Eviction never closes an fd out from under a reader: acquire() returns a
// CachedFd pin (a shared_ptr under the hood), and an evicted entry's fd
// closes only when the last pin drops. Dropping paths embed a per-open
// timestamp, so a path never names two different files across
// unlink/recreate cycles — a cached fd can go stale only by pointing at a
// deleted file, which invalidate() flushes eagerly on unlink/rename/
// truncate-to-zero to return descriptors to the OS promptly.
#pragma once

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/result.hpp"

namespace ldplfs::plfs {

/// Pin on one cached descriptor; the fd stays open while any pin exists.
class CachedFd {
 public:
  CachedFd() = default;

  [[nodiscard]] int get() const { return entry_ ? entry_->fd : -1; }
  [[nodiscard]] bool valid() const { return entry_ != nullptr; }

 private:
  friend class DroppingFdCache;
  struct Entry {
    std::string path;
    int fd = -1;
    ~Entry();
  };
  explicit CachedFd(std::shared_ptr<Entry> entry) : entry_(std::move(entry)) {}
  std::shared_ptr<Entry> entry_;
};

class DroppingFdCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
  };

  explicit DroppingFdCache(std::size_t capacity);

  /// Borrow an O_RDONLY fd for `path`, opening it on a miss. The pin keeps
  /// the fd alive past eviction.
  Result<CachedFd> acquire(const std::string& path);

  /// Drop every entry whose path starts with `prefix` (a container root,
  /// or "" for everything). Pinned fds close when their pins drop.
  void invalidate(const std::string& prefix);

  [[nodiscard]] std::size_t open_count() const;
  [[nodiscard]] Stats stats() const;

  /// Process-wide cache; capacity from LDPLFS_FD_CACHE (default 256,
  /// minimum 8) read once at first use.
  static DroppingFdCache& shared();

 private:
  using EntryPtr = std::shared_ptr<CachedFd::Entry>;
  using LruList = std::list<EntryPtr>;

  void evict_excess_locked();

  mutable std::mutex mu_;
  std::size_t capacity_;
  LruList lru_;  // front = most recently used
  std::unordered_map<std::string, LruList::iterator> by_path_;
  Stats stats_;
};

}  // namespace ldplfs::plfs
