#include "plfs/write_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <utility>

#include "common/logging.hpp"
#include "common/paths.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

WriteFile::WriteFile(std::string root, WriterId writer)
    : root_(std::move(root)), writer_(std::move(writer)) {}

Result<std::unique_ptr<WriteFile>> WriteFile::open(const std::string& root,
                                                   const WriterId& writer) {
  ContainerLayout layout(root);
  const std::string hostdir = layout.hostdir_for(writer.host);
  if (auto s = posix::make_dirs(hostdir); !s) return s.error();

  auto wf = std::unique_ptr<WriteFile>(new WriteFile(root, writer));

  const std::string data_path = layout.data_dropping_path(writer);
  auto data_fd = posix::open_fd(data_path, O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (!data_fd) return data_fd.error();
  wf->data_fd_ = data_fd.value().release();

  // The path table stores the dropping path relative to the container root
  // so containers stay relocatable (cp -r of a container keeps working).
  const std::string data_rel =
      path_join(path_basename(hostdir),
                ContainerLayout::data_dropping_name(writer));
  auto index = IndexWriter::create(layout.index_dropping_path(writer), data_rel);
  if (!index) {
    // Roll back the data dropping: with no paired index it could only ever
    // be an orphan for recovery to flag.
    (void)posix::close_fd(std::exchange(wf->data_fd_, -1));
    (void)posix::remove_file(data_path);
    return index.error();
  }
  wf->index_ = std::make_unique<IndexWriter>(std::move(index).value());

  if (auto s = posix::write_file(layout.openhost_path(writer), ""); !s) {
    LDPLFS_LOG_WARN("could not register openhost for %s: %s",
                    root.c_str(), s.error().message().c_str());
  }
  return wf;
}

Result<std::size_t> WriteFile::write(std::span<const std::byte> data,
                                     std::uint64_t offset) {
  if (closed_) return Errno{EBADF};
  if (deferred_errno_ != 0) return Errno{deferred_errno_};
  if (data.empty()) return std::size_t{0};
  const std::uint64_t physical = physical_end_;
  if (auto s = posix::pwrite_all(data_fd_, data,
                                 static_cast<off_t>(physical));
      !s) {
    // The log tail may now hold a partial, unindexed append. Never index it,
    // never write past it: poison the stream so sync()/close() surface the
    // failure with this errno (POSIX deferred-error semantics).
    deferred_errno_ = s.error_code();
    return s.error();
  }
  index_->add_write(offset, data.size(), physical, next_timestamp());
  physical_end_ += data.size();
  max_eof_ = std::max(max_eof_, offset + data.size());
  return data.size();
}

Status WriteFile::truncate(std::uint64_t size) {
  if (closed_) return Errno{EBADF};
  if (deferred_errno_ != 0) return Errno{deferred_errno_};
  index_->add_truncate(size, next_timestamp());
  max_eof_ = size;
  // Existing metadata hints describe pre-truncate EOFs; drop them so the
  // plfs_getattr fast path cannot resurrect a stale size. (Writers still
  // open will re-drop a fresh hint when they close.)
  ContainerLayout layout(root_);
  if (auto names = posix::list_dir(layout.metadata_path())) {
    for (const auto& name : names.value()) {
      (void)posix::remove_file(path_join(layout.metadata_path(), name));
    }
  }
  if (auto s = index_->flush(); !s) {
    deferred_errno_ = s.error_code();
    return s;
  }
  return Status::success();
}

Status WriteFile::sync() {
  if (closed_) return Errno{EBADF};
  if (deferred_errno_ != 0) return Errno{deferred_errno_};
  if (auto s = index_->flush(); !s) {
    deferred_errno_ = s.error_code();
    return s;
  }
  if (auto s = posix::fsync_fd(data_fd_); !s) {
    deferred_errno_ = s.error_code();
    return s;
  }
  return Status::success();
}

Status WriteFile::close() {
  if (closed_) return Status::success();
  closed_ = true;
  // index_ is null when WriteFile::open failed part-way and the half-built
  // object is being destroyed; there is no stream to tear down then.
  if (!index_) return Status::success();
  Status result = index_->close();
  if (deferred_errno_ != 0) result = Errno{deferred_errno_};  // original wins
  if (data_fd_ >= 0) {
    if (auto s = posix::close_fd(data_fd_); !s && result.ok()) result = s;
    data_fd_ = -1;
  }

  ContainerLayout layout(root_);
  // Drop the open registration and leave a size hint (name-encoded so that
  // future getattr calls can avoid a full index merge). Failures here do not
  // lose data, but they do leave the container looking writer-occupied,
  // which disables the getattr fast path and blocks compaction until
  // ldp-recover — worth a warning so operators can see why.
  if (auto s = posix::remove_file(layout.openhost_path(writer_)); !s) {
    LDPLFS_LOG_WARN(
        "close(%s): openhost registration not removed (errno=%d %s); "
        "getattr fast path stays disabled until ldp-recover",
        root_.c_str(), s.error_code(), s.error().message().c_str());
  }
  MetaHint hint{max_eof_, physical_end_, writer_.host, writer_.pid};
  if (auto s = posix::write_file(
          path_join(layout.metadata_path(), ContainerLayout::meta_name(hint)),
          "");
      !s) {
    LDPLFS_LOG_WARN(
        "close(%s): metadata size hint not written (errno=%d %s); "
        "stat of this container will need a full index merge",
        root_.c_str(), s.error_code(), s.error().message().c_str());
  }
  return result;
}

WriteFile::~WriteFile() { (void)close(); }

}  // namespace ldplfs::plfs
