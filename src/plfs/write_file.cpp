#include "plfs/write_file.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <mutex>
#include <utility>

#include "common/health.hpp"
#include "common/logging.hpp"
#include "common/paths.hpp"
#include "common/stats.hpp"
#include "common/thread_pool.hpp"
#include "common/units.hpp"
#include "plfs/shared_meta.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

namespace {

constexpr std::size_t kDefaultWriteBuffer = std::size_t{4} << 20;
constexpr std::size_t kMinWriteBuffer = std::size_t{4} << 10;
constexpr std::size_t kMaxWriteBuffer = std::size_t{256} << 20;

}  // namespace

/// One in-flight background flush, self-contained so a deadline-expired
/// flush can be abandoned: the task owns the bytes being flushed and a dup
/// of the data fd (closed by UniqueFd when the last reference dies), and
/// publishes done/err under its own mutex.
struct WriteFile::FlushTask {
  std::vector<std::byte> data;
  std::uint64_t base = 0;
  posix::UniqueFd fd;
  std::mutex mu;
  std::condition_variable cv;
  bool done = false;
  int err = 0;
};

bool WriteFile::env_write_behind() {
  const char* env = std::getenv("LDPLFS_WRITE_BEHIND");
  return env == nullptr || std::string(env) != "0";
}

bool WriteFile::env_coalesce() {
  const char* env = std::getenv("LDPLFS_COALESCE");
  return env == nullptr || std::string(env) != "0";
}

std::size_t WriteFile::env_write_buffer() {
  const char* env = std::getenv("LDPLFS_WRITE_BUFFER");
  if (env == nullptr || *env == '\0') return kDefaultWriteBuffer;
  const std::uint64_t parsed = parse_bytes(env);
  if (parsed == 0) return kDefaultWriteBuffer;  // malformed: stay safe
  return static_cast<std::size_t>(
      std::clamp<std::uint64_t>(parsed, kMinWriteBuffer, kMaxWriteBuffer));
}

std::uint64_t WriteFile::env_flush_deadline_ms() {
  const char* env = std::getenv("LDPLFS_FLUSH_DEADLINE_MS");
  if (env == nullptr || *env == '\0') return 0;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(env, &end, 10);
  if (end == env || *end != '\0') return 0;  // malformed: watchdog off
  return static_cast<std::uint64_t>(parsed);
}

WriteFile::WriteFile(std::string root, WriterId writer)
    : root_(std::move(root)), writer_(std::move(writer)) {}

Result<std::unique_ptr<WriteFile>> WriteFile::open(const std::string& root,
                                                   const WriterId& writer) {
  ContainerLayout layout(root);
  const std::string hostdir = layout.hostdir_for(writer.host);
  if (auto s = posix::make_dirs(hostdir); !s) return s.error();

  auto wf = std::unique_ptr<WriteFile>(new WriteFile(root, writer));

  const std::string data_path = layout.data_dropping_path(writer);
  auto data_fd = posix::open_fd(data_path, O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (!data_fd) return data_fd.error();
  wf->data_fd_ = data_fd.value().release();
  wf->data_path_ = data_path;

  // The path table stores the dropping path relative to the container root
  // so containers stay relocatable (cp -r of a container keeps working).
  const std::string data_rel =
      path_join(path_basename(hostdir),
                ContainerLayout::data_dropping_name(writer));
  auto index = IndexWriter::create(layout.index_dropping_path(writer), data_rel);
  if (!index) {
    // Roll back the data dropping: with no paired index it could only ever
    // be an orphan for recovery to flag.
    (void)posix::close_fd(std::exchange(wf->data_fd_, -1));
    (void)posix::remove_file(data_path);
    return index.error();
  }
  wf->index_ = std::make_unique<IndexWriter>(std::move(index).value());

  wf->write_behind_ = env_write_behind();
  if (wf->write_behind_) {
    wf->coalesce_ = env_coalesce();
    wf->buffer_capacity_ = env_write_buffer();
    wf->active_.reserve(wf->buffer_capacity_);
    wf->flush_deadline_ms_ = env_flush_deadline_ms();
  }

  if (auto s = posix::write_file(layout.openhost_path(writer), ""); !s) {
    // Fast-created containers (see create_container_fast) defer openhosts/
    // scaffolding to the first writer — create it on demand and retry.
    if (s.error_code() == ENOENT &&
        posix::make_dirs(layout.openhosts_path()).ok()) {
      s = posix::write_file(layout.openhost_path(writer), "");
    }
    if (!s) {
      LDPLFS_LOG_WARN("could not register openhost for %s: %s",
                      root.c_str(), s.error().message().c_str());
    }
  }
  stats::add(stats::Counter::kPlfsWriterOpened);
  stats::add(stats::Counter::kPlfsDroppingsOpened);  // the data dropping
  return wf;
}

Result<std::size_t> WriteFile::write_through(std::span<const std::byte> data,
                                             std::uint64_t offset) {
  const std::uint64_t physical = physical_end_;
  if (auto s = posix::pwrite_all(data_fd_, data,
                                 static_cast<off_t>(physical));
      !s) {
    // The log tail may now hold a partial, unindexed append. Never index it,
    // never write past it: poison the stream so sync()/close() surface the
    // failure with this errno (POSIX deferred-error semantics).
    deferred_errno_ = s.error_code();
    return s.error();
  }
  index_->add_write(offset, data.size(), physical, next_timestamp());
  physical_end_ += data.size();
  active_base_ = physical_end_;  // active_ is empty; keep its base at the tail
  max_eof_ = std::max(max_eof_, offset + data.size());
  index_dirty_ = true;
  return data.size();
}

void WriteFile::stage_record(std::uint64_t offset, std::uint64_t length,
                             std::uint64_t physical) {
  // Same coalescing rule as IndexWriter::add_write: extend the previous
  // record when both the logical and physical runs continue exactly AND
  // the stamps are consecutive — extension re-stamps the old bytes, which
  // is only sound when nothing can sit between the two stamps in the
  // global order (an interleaved stream leaves a gap and gets refused).
  const std::uint64_t ts = next_timestamp();
  if (!active_records_.empty()) {
    IndexRecord& last = active_records_.back();
    if (last.logical_offset + last.length == offset &&
        last.physical_offset + last.length == physical &&
        ts == last.timestamp + 1) {
      last.length += length;
      last.timestamp = ts;  // block grows to [first .. ts]
      return;
    }
  }
  active_records_.push_back(
      IndexRecord{offset, length, physical, ts, 0,
                  static_cast<std::uint32_t>(RecordKind::kData)});
  active_first_stamps_.push_back(ts);
}

void WriteFile::coalesce_active() {
  if (!coalesce_ || active_records_.size() < 2) return;
  // Stage order is authority order: replay the staged records through an
  // ExtentMap (newest wins) keyed on buffer-relative physical offsets, so
  // bytes a later staged write overwrote drop out entirely.
  ExtentMap map;
  for (std::size_t i = 0; i < active_records_.size(); ++i) {
    const auto& rec = active_records_[i];
    map.insert(Extent{rec.logical_offset, rec.length,
                      static_cast<std::uint32_t>(i),
                      rec.physical_offset - active_base_, rec.timestamp});
  }
  const auto extents = map.extents();  // logical order, no overlap

  scratch_.clear();
  scratch_.reserve(active_.size());
  std::vector<IndexRecord> records;
  records.reserve(extents.size());
  std::vector<std::uint64_t> firsts;
  firsts.reserve(extents.size());
  // Stamp span [span_first, span_last] of the staged records contributing
  // to records.back(). A merged record carries one stamp for bytes written
  // at several; that is only exact when no record anywhere — another
  // writer stream, an earlier flush — can hold a stamp between the
  // contributors. next_timestamp() hands out consecutive integers, so
  // "the contributing blocks form one contiguous block" guarantees exactly
  // that, and stamping the block end is then sound: anything older than
  // the block loses to every contributor, anything newer beats them all.
  // Back-to-back writes from one stream (the writev / sequential case this
  // optimisation targets) merge; interleaved streams leave stamp gaps and
  // keep their own records.
  //
  // The contributor set stays one contiguous stamp span by construction (a
  // refused merge starts a fresh record), and staged records partition the
  // stamp space disjointly, so membership and adjacency are O(1) interval
  // checks: a candidate block is already a contributor iff its first stamp
  // falls inside the span, and the union stays contiguous iff the block
  // abuts either end. No per-extent rescan of the contributors.
  std::uint64_t span_first = 0, span_last = 0;
  for (const auto& ext : extents) {
    const std::uint64_t physical = active_base_ + scratch_.size();
    const std::byte* src =
        active_.data() + static_cast<std::size_t>(ext.physical);
    scratch_.insert(scratch_.end(), src,
                    src + static_cast<std::size_t>(ext.length));
    // ext.dropping carries the staged-record index (set above); split
    // pieces of one record share its full block.
    const std::uint64_t blk_first = active_first_stamps_[ext.dropping];
    const std::uint64_t blk_last = active_records_[ext.dropping].timestamp;
    if (!records.empty() &&
        records.back().logical_offset + records.back().length ==
            ext.logical) {
      const bool present =
          blk_first >= span_first && blk_first <= span_last;
      const bool adjacent =
          blk_first == span_last + 1 || blk_last + 1 == span_first;
      if (present || adjacent) {
        span_first = std::min(span_first, blk_first);
        span_last = std::max(span_last, blk_last);
        records.back().length += ext.length;
        records.back().timestamp = span_last;
        firsts.back() = span_first;
        continue;
      }
    }
    records.push_back(IndexRecord{ext.logical, ext.length, physical,
                                  blk_last, 0,
                                  static_cast<std::uint32_t>(RecordKind::kData)});
    firsts.push_back(blk_first);
    span_first = blk_first;
    span_last = blk_last;
  }
  // Skip the swap when nothing got cheaper — the rewrite only pays when a
  // record or a byte actually drops out of the flush. (Records can also
  // *grow*: a stamp gap refusing the re-merge of a split record; only go
  // through with that when overlap elimination shrank the data.)
  if (records.size() >= active_records_.size() &&
      scratch_.size() == active_.size()) {
    return;
  }
  if (records.size() < active_records_.size()) {
    stats::add(stats::Counter::kWbCoalesceMerged,
               active_records_.size() - records.size());
  }
  active_.swap(scratch_);
  active_records_.swap(records);
  active_first_stamps_.swap(firsts);
  // Overlap elimination may have shrunk the staged bytes; the accepted-byte
  // counter must keep matching the log tail the drained stream will have.
  physical_end_ = active_base_ + active_.size();
}

void WriteFile::submit_active() {
  coalesce_active();
  auto task = std::make_shared<FlushTask>();
  task->data.swap(active_);
  active_.swap(spare_);  // reuse the last completed flush's storage
  active_.clear();
  inflight_records_.swap(active_records_);
  active_records_.clear();
  inflight_first_stamps_.swap(active_first_stamps_);
  active_first_stamps_.clear();
  task->base = active_base_;
  inflight_base_ = task->base;
  active_base_ = task->base + task->data.size();
  inflight_task_ = task;
  stats::add(stats::Counter::kWbFlushBytes, task->data.size());

  // The task flushes through its own dup of the data fd so that an
  // abandoned (deadline-expired) flush keeps a valid descriptor no matter
  // what this WriteFile does afterwards. Register the dup's origin so the
  // health tracker and path=-scoped fault clauses attribute it correctly.
  task->fd = posix::UniqueFd(::fcntl(data_fd_, F_DUPFD_CLOEXEC, 0));
  if (!task->fd.valid()) {
    // Out of descriptors: flush inline on the caller and pre-complete the
    // task; the next complete_inflight() absorbs the result as usual.
    stats::add(stats::Counter::kWbFlushSync);
    stats::Timer flush_timer(stats::Histogram::kWbFlushLatency);
    auto s = posix::pwrite_all(
        data_fd_,
        std::span<const std::byte>(task->data.data(), task->data.size()),
        static_cast<off_t>(task->base));
    flush_timer.stop();
    task->err = s.ok() ? 0 : s.error_code();
    task->done = true;
    return;
  }
  posix::note_fd_origin(task->fd.get(), data_path_);
  stats::add(stats::Counter::kWbFlushAsync);
  ThreadPool::shared().submit([task] {
    stats::Timer flush_timer(stats::Histogram::kWbFlushLatency);
    auto s = posix::pwrite_all(
        task->fd.get(),
        std::span<const std::byte>(task->data.data(), task->data.size()),
        static_cast<off_t>(task->base));
    flush_timer.stop();
    // Publish under the task's lock: a waiter may drop its reference the
    // moment it observes done, so the lambda must be finished with the
    // shared state before any waiter can get past the mutex.
    std::lock_guard lock(task->mu);
    task->err = s.ok() ? 0 : s.error_code();
    task->done = true;
    task->cv.notify_all();
  });
}

Status WriteFile::complete_inflight() {
  if (!inflight_task_) {
    return deferred_errno_ == 0 ? Status::success()
                                : Status(Errno{deferred_errno_});
  }
  const std::shared_ptr<FlushTask> task = inflight_task_;
  int err = 0;
  bool timed_out = false;
  {
    std::unique_lock lock(task->mu);
    if (flush_deadline_ms_ == 0) {
      task->cv.wait(lock, [&task] { return task->done; });
    } else if (!task->cv.wait_for(lock,
                                  std::chrono::milliseconds(flush_deadline_ms_),
                                  [&task] { return task->done; })) {
      timed_out = true;
    }
    if (!timed_out) err = task->err;
  }
  inflight_task_.reset();
  if (timed_out) {
    // The flush blew its deadline: abandon it rather than wait out a hung
    // backend. The task owns its own descriptor and buffer, so it finishes
    // (or fails) harmlessly in the background; any bytes it eventually
    // lands were never indexed and stay invisible. Poison the stream with
    // ETIMEDOUT and trip the backend's breaker so sibling streams fail
    // fast instead of queueing up behind the same hang.
    err = ETIMEDOUT;
    stats::add(stats::Counter::kWbFlushTimeout);
    LDPLFS_LOG_WARN(
        "flush of %s missed the %llu ms deadline; abandoning it and "
        "poisoning the stream (ETIMEDOUT)",
        data_path_.c_str(),
        static_cast<unsigned long long>(flush_deadline_ms_));
    health::trip(data_path_, ETIMEDOUT);
  }
  if (err != 0) {
    // The flush tore the log tail at some point inside [inflight_base_,
    // inflight_base_ + size): nothing from this buffer gets indexed, and
    // nothing may ever be appended past the tear — drop the in-flight
    // records *and* everything still staged behind them. The first logical
    // failure wins; later barriers keep reporting this errno.
    if (deferred_errno_ == 0) {
      deferred_errno_ = err;
      stats::add(stats::Counter::kWbPoisoned);
    }
    inflight_records_.clear();
    inflight_first_stamps_.clear();
    active_.clear();
    active_records_.clear();
    active_first_stamps_.clear();
    physical_end_ = inflight_base_;
    active_base_ = inflight_base_;
    return Errno{deferred_errno_};
  }
  // Sole owner of the finished task (the pool lambda has dropped its
  // reference): reclaim its buffer so the next rotation reuses the pages
  // instead of growing a cold vector from scratch.
  if (task.use_count() == 1 && spare_.capacity() < task->data.capacity()) {
    spare_ = std::move(task->data);
    spare_.clear();
  }
  // The data is in the log; only now may its records reach the index
  // (the index must always describe bytes that are really there).
  index_->add_records(inflight_records_, inflight_first_stamps_);
  inflight_records_.clear();
  inflight_first_stamps_.clear();
  return deferred_errno_ == 0 ? Status::success()
                              : Status(Errno{deferred_errno_});
}

void WriteFile::poll_inflight() {
  if (!inflight_task_) return;
  {
    std::lock_guard lock(inflight_task_->mu);
    if (!inflight_task_->done) return;
  }
  (void)complete_inflight();  // will not block: the task has finished
}

Status WriteFile::drain() {
  if (auto s = complete_inflight(); !s) return s;
  if (active_.empty()) return Status::success();
  if (flush_deadline_ms_ > 0) {
    // Under a deadline the barrier flush goes through the abandonable task
    // machinery too, so even a never-rotated buffer cannot hang close().
    submit_active();
    return complete_inflight();
  }
  coalesce_active();
  stats::add(stats::Counter::kWbFlushSync);
  stats::add(stats::Counter::kWbFlushBytes, active_.size());
  stats::Timer flush_timer(stats::Histogram::kWbFlushLatency);
  if (auto s = posix::pwrite_all(
          data_fd_,
          std::span<const std::byte>(active_.data(), active_.size()),
          static_cast<off_t>(active_base_));
      !s) {
    if (deferred_errno_ == 0) stats::add(stats::Counter::kWbPoisoned);
    deferred_errno_ = s.error_code();
    active_.clear();
    active_records_.clear();
    active_first_stamps_.clear();
    physical_end_ = active_base_;
    return s;
  }
  index_->add_records(active_records_, active_first_stamps_);
  active_records_.clear();
  active_first_stamps_.clear();
  active_base_ += active_.size();
  active_.clear();
  return Status::success();
}

Result<std::size_t> WriteFile::write(std::span<const std::byte> data,
                                     std::uint64_t offset) {
  if (closed_) return Errno{EBADF};
  poll_inflight();  // surface a finished background-flush failure now
  if (deferred_errno_ != 0) return Errno{deferred_errno_};
  if (data.empty()) return std::size_t{0};
  if (!write_behind_) return write_through(data, offset);

  // Oversized writes dodge the buffer: after a drain the log tail is
  // current, and one big pwrite beats staging through a smaller buffer.
  if (data.size() >= buffer_capacity_) {
    stats::add(stats::Counter::kWbBypass);
    if (auto s = drain(); !s) return s.error();
    return write_through(data, offset);
  }

  // One up-front reservation per buffer generation: the staging loop may
  // append thousands of small writes, and growing to capacity through
  // vector doubling would copy the whole window several times over.
  if (active_.capacity() < buffer_capacity_) active_.reserve(buffer_capacity_);

  std::size_t copied = 0;
  while (copied < data.size()) {
    if (active_.size() == buffer_capacity_) {
      // Double-buffer rotation: absorb the previous flush (this is the
      // only point a healthy stream ever waits on the pool), then hand
      // the full buffer over and keep filling the other one.
      if (auto s = complete_inflight(); !s) return s.error();
      submit_active();
    }
    const std::size_t take =
        std::min(buffer_capacity_ - active_.size(), data.size() - copied);
    stage_record(offset + copied, take, active_base_ + active_.size());
    active_.insert(active_.end(), data.begin() + static_cast<std::ptrdiff_t>(copied),
                   data.begin() + static_cast<std::ptrdiff_t>(copied + take));
    copied += take;
    physical_end_ += take;
    stats::add(stats::Counter::kWbBufferedBytes, take);
  }
  max_eof_ = std::max(max_eof_, offset + data.size());
  index_dirty_ = true;
  return data.size();
}

Status WriteFile::truncate(std::uint64_t size) {
  if (closed_) return Errno{EBADF};
  if (deferred_errno_ != 0) return Errno{deferred_errno_};
  // Drain barrier: every buffered append must be in the log (and its
  // records staged ahead of the truncate record) before the truncate is
  // made visible, or replay order would mask acknowledged writes.
  if (auto s = drain(); !s) return s;
  index_->add_truncate(size, next_timestamp());
  max_eof_ = size;
  // Existing metadata hints describe pre-truncate EOFs; drop them so the
  // plfs_getattr fast path cannot resurrect a stale size. (Writers still
  // open will re-drop a fresh hint when they close.)
  ContainerLayout layout(root_);
  if (auto names = posix::list_dir(layout.metadata_path())) {
    for (const auto& name : names.value()) {
      (void)posix::remove_file(path_join(layout.metadata_path(), name));
    }
  } else if (names.error_code() == ENOENT) {
    // Fast-created container: no metadata/ dir yet means no hints to drop.
  } else {
    // Failing to drop stale hints does not lose data, but it can let the
    // getattr fast path serve a pre-truncate size until the next writer
    // close rewrites them — worth a warning, like the close() path.
    LDPLFS_LOG_WARN(
        "truncate(%s): could not list metadata dir to drop stale size "
        "hints (errno=%d %s); stat may overreport until the next close",
        root_.c_str(), names.error_code(), names.error().message().c_str());
  }
  if (auto s = index_->flush(); !s) {
    deferred_errno_ = s.error_code();
    return s;
  }
  // The truncate record is on disk: other processes' cached indexes are
  // stale regardless of whether any bytes were staged since the last bump.
  shmeta::bump(root_);
  index_dirty_ = false;
  return Status::success();
}

Status WriteFile::sync() {
  if (closed_) return Errno{EBADF};
  if (deferred_errno_ != 0) return Errno{deferred_errno_};
  // Drain barrier first: index records may only be flushed once the data
  // they describe is in the log.
  if (auto s = drain(); !s) return s;
  if (auto s = index_->flush(); !s) {
    deferred_errno_ = s.error_code();
    return s;
  }
  if (auto s = posix::fsync_fd(data_fd_); !s) {
    deferred_errno_ = s.error_code();
    return s;
  }
  if (index_dirty_) {
    shmeta::bump(root_);
    index_dirty_ = false;
  }
  return Status::success();
}

Status WriteFile::close() {
  if (closed_) return Status::success();
  closed_ = true;
  // index_ is null when WriteFile::open failed part-way and the half-built
  // object is being destroyed; there is no stream to tear down then.
  if (!index_) return Status::success();
  stats::add(stats::Counter::kPlfsWriterClosed);
  // Drain barrier. Bounded by LDPLFS_FLUSH_DEADLINE_MS when set; a flush
  // that misses the deadline is abandoned to finish against its own dup'd
  // descriptor, so nothing here can block forever and nothing the task
  // still touches belongs to this object. A failure (or timeout) poisons
  // deferred_errno_ and is surfaced below.
  (void)drain();
  Status result = index_->close();
  if (deferred_errno_ != 0) result = Errno{deferred_errno_};  // original wins
  if (data_fd_ >= 0) {
    if (auto s = posix::close_fd(data_fd_); !s && result.ok()) result = s;
    data_fd_ = -1;
  }

  ContainerLayout layout(root_);
  // Drop the open registration and leave a size hint (name-encoded so that
  // future getattr calls can avoid a full index merge). Failures here do not
  // lose data, but they do leave the container looking writer-occupied,
  // which disables the getattr fast path and blocks compaction until
  // ldp-recover — worth a warning so operators can see why.
  if (auto s = posix::remove_file(layout.openhost_path(writer_)); !s) {
    LDPLFS_LOG_WARN(
        "close(%s): openhost registration not removed (errno=%d %s); "
        "getattr fast path stays disabled until ldp-recover",
        root_.c_str(), s.error_code(), s.error().message().c_str());
  }
  MetaHint hint{max_eof_, physical_end_, writer_.host, writer_.pid};
  const std::string hint_path =
      path_join(layout.metadata_path(), ContainerLayout::meta_name(hint));
  if (auto s = posix::write_file(hint_path, ""); !s) {
    // Fast-created containers defer metadata/ to the first closing writer.
    if (s.error_code() == ENOENT &&
        posix::make_dirs(layout.metadata_path()).ok()) {
      s = posix::write_file(hint_path, "");
    }
    if (!s) {
      LDPLFS_LOG_WARN(
          "close(%s): metadata size hint not written (errno=%d %s); "
          "stat of this container will need a full index merge",
          root_.c_str(), s.error_code(), s.error().message().c_str());
    }
  }
  // Everything this stream made visible is on disk: tell the other
  // processes' caches. The writer *registration* outlives this stream —
  // it is held by the owning FileHandle for the whole open, so a
  // foreign-writer check can never miss both the registration and the bump.
  if (index_dirty_) {
    shmeta::bump(root_);
    index_dirty_ = false;
  }
  return result;
}

WriteFile::~WriteFile() { (void)close(); }

}  // namespace ldplfs::plfs
