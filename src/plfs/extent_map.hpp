// ExtentMap: the core data structure behind PLFS reads.
//
// Maps logical byte ranges of a file onto (data-dropping, physical-offset)
// pairs. Inserts carry "newest wins" semantics: the caller feeds extents in
// authority order (ascending timestamp) and each insert overwrites whatever
// it overlaps, splitting older extents as needed. Lookups return a gap-free
// cover of the requested range where unmapped bytes appear as holes (reads
// of holes are zero-filled, giving POSIX sparse-file semantics).
#pragma once

#include <cstdint>
#include <map>
#include <vector>

namespace ldplfs::plfs {

/// One mapped run of bytes.
struct Extent {
  std::uint64_t logical = 0;    // logical start offset
  std::uint64_t length = 0;     // bytes
  std::uint32_t dropping = 0;   // data-dropping id (caller-defined)
  std::uint64_t physical = 0;   // offset within that dropping
  std::uint64_t timestamp = 0;  // authority order (diagnostics only here)
};

/// Piece of a lookup result; covers part of the requested range.
struct MappedPiece {
  std::uint64_t logical = 0;
  std::uint64_t length = 0;
  bool hole = false;            // true: no data, read as zeros
  std::uint32_t dropping = 0;   // valid when !hole
  std::uint64_t physical = 0;   // valid when !hole
};

class ExtentMap {
 public:
  /// Insert with overwrite: `e` takes priority over anything it overlaps.
  /// Zero-length extents are ignored.
  void insert(const Extent& e);

  /// Cover [offset, offset+length) with pieces (data runs and holes), in
  /// logical order, with no gaps and no overlap. length == 0 → empty.
  [[nodiscard]] std::vector<MappedPiece> lookup(std::uint64_t offset,
                                                std::uint64_t length) const;

  /// Drop all mapping at or beyond `size`; extents straddling it are cut.
  void truncate(std::uint64_t size);

  /// One past the last mapped byte (0 when empty). Note: the *file* size can
  /// exceed this after truncate-up; GlobalIndex tracks that separately.
  [[nodiscard]] std::uint64_t mapped_end() const;

  [[nodiscard]] std::size_t extent_count() const { return map_.size(); }
  [[nodiscard]] bool empty() const { return map_.empty(); }

  /// All extents in logical order (for flattening and inspection).
  [[nodiscard]] std::vector<Extent> extents() const;

  /// Internal invariant checker used by tests: sorted, non-overlapping,
  /// non-empty, key matches extent.logical.
  [[nodiscard]] bool check_invariants() const;

 private:
  // Key = logical start. Values never overlap and never have length 0.
  std::map<std::uint64_t, Extent> map_;
};

}  // namespace ldplfs::plfs
