#include "plfs/shared_meta.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

#include "common/logging.hpp"
#include "common/stats.hpp"

namespace ldplfs::plfs::shmeta {

namespace {

constexpr std::uint64_t kMagic = 0x4c44504c46535348ULL;  // "LDPLFSSH"

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

// Segment layout. A fresh shm segment is zero-filled by ftruncate, and the
// all-zero state is the valid empty state (magic 0 = "first attacher may
// stamp it", every slot free, every generation 0) — initialization needs no
// lock, only one CAS on the magic.
struct Header {
  std::atomic<std::uint64_t> magic;
  std::atomic<std::uint32_t> version;
  std::atomic<std::uint32_t> reserved;
  std::atomic<std::uint64_t> reclaims;
};

struct ContainerSlot {
  std::atomic<std::uint64_t> key;  // key_of(root); 0 = free. Never released.
  std::atomic<std::uint64_t> gen;
};

// Claim order: pid first (CAS 0 -> mypid), then key (release store).
// Release order: key first, then pid. Readers require key match AND pid !=
// 0, so a slot mid-claim or mid-release matches nothing.
struct WriterSlot {
  std::atomic<std::uint64_t> key;
  std::atomic<std::int64_t> pid;
};

constexpr std::size_t kSegmentBytes = sizeof(Header) +
                                      kContainerSlots * sizeof(ContainerSlot) +
                                      kWriterSlots * sizeof(WriterSlot);

struct Plane {
  bool is_active = false;
  std::string name;
  Header* header = nullptr;
  ContainerSlot* containers = nullptr;
  WriterSlot* writers = nullptr;
};

std::string default_segment_name() {
  const char* mounts = std::getenv("LDPLFS_MOUNTS");
  char buf[96];
  std::snprintf(buf, sizeof buf, "/ldplfs.%lu.%016llx",
                static_cast<unsigned long>(::getuid()),
                static_cast<unsigned long long>(
                    fnv1a(mounts != nullptr ? mounts : "")));
  return buf;
}

Plane* attach() {
  auto* plane = new Plane();
  const char* env = std::getenv("LDPLFS_SHM");
  if (env == nullptr || *env == '\0' || std::strcmp(env, "0") == 0) {
    return plane;  // plane off
  }
  plane->name = env[0] == '/' ? std::string(env) : default_segment_name();

  const int fd = ::shm_open(plane->name.c_str(), O_RDWR | O_CREAT, 0600);
  if (fd < 0) {
    LDPLFS_LOG_WARN("shmeta: shm_open(%s) failed (errno=%d); plane disabled",
                    plane->name.c_str(), errno);
    return plane;
  }
  // Concurrent attachers may race the ftruncate; growing to the same size
  // is idempotent and new pages arrive zero-filled either way.
  struct ::stat st{};
  if (::fstat(fd, &st) != 0 ||
      (static_cast<std::size_t>(st.st_size) < kSegmentBytes &&
       ::ftruncate(fd, static_cast<off_t>(kSegmentBytes)) != 0)) {
    LDPLFS_LOG_WARN("shmeta: cannot size segment %s (errno=%d); disabled",
                    plane->name.c_str(), errno);
    ::close(fd);
    return plane;
  }
  void* base = ::mmap(nullptr, kSegmentBytes, PROT_READ | PROT_WRITE,
                      MAP_SHARED, fd, 0);
  ::close(fd);  // the mapping keeps its own reference
  if (base == MAP_FAILED) {
    LDPLFS_LOG_WARN("shmeta: mmap of %s failed (errno=%d); plane disabled",
                    plane->name.c_str(), errno);
    return plane;
  }

  auto* bytes = static_cast<char*>(base);
  plane->header = reinterpret_cast<Header*>(bytes);
  plane->containers = reinterpret_cast<ContainerSlot*>(bytes + sizeof(Header));
  plane->writers = reinterpret_cast<WriterSlot*>(
      bytes + sizeof(Header) + kContainerSlots * sizeof(ContainerSlot));

  std::uint64_t magic = plane->header->magic.load(std::memory_order_acquire);
  if (magic == 0) {
    plane->header->version.store(kVersion, std::memory_order_relaxed);
    if (!plane->header->magic.compare_exchange_strong(
            magic, kMagic, std::memory_order_acq_rel)) {
      // Another attacher stamped it first; fall through to validate.
    }
    magic = kMagic;
  }
  if (magic != kMagic ||
      plane->header->version.load(std::memory_order_relaxed) != kVersion) {
    LDPLFS_LOG_WARN(
        "shmeta: segment %s has foreign magic/version; plane disabled",
        plane->name.c_str());
    ::munmap(base, kSegmentBytes);
    plane->header = nullptr;
    plane->containers = nullptr;
    plane->writers = nullptr;
    return plane;
  }
  plane->is_active = true;
  return plane;
}

std::mutex g_attach_mu;
std::atomic<Plane*> g_plane{nullptr};

Plane* current() {
  Plane* p = g_plane.load(std::memory_order_acquire);
  if (p != nullptr) return p;
  std::lock_guard lock(g_attach_mu);
  p = g_plane.load(std::memory_order_relaxed);
  if (p == nullptr) {
    p = attach();
    g_plane.store(p, std::memory_order_release);
  }
  return p;
}

/// Find (or claim) the generation slot for `key`; nullptr when the bounded
/// probe finds neither the key nor a free slot.
ContainerSlot* find_or_claim(Plane* p, std::uint64_t key) {
  const std::size_t start = static_cast<std::size_t>(key) % kContainerSlots;
  for (std::size_t i = 0; i < kMaxProbe; ++i) {
    ContainerSlot& slot = p->containers[(start + i) % kContainerSlots];
    std::uint64_t k = slot.key.load(std::memory_order_acquire);
    if (k == key) return &slot;
    if (k == 0) {
      if (slot.key.compare_exchange_strong(k, key,
                                           std::memory_order_acq_rel)) {
        return &slot;
      }
      if (k == key) return &slot;  // racing claimer of the same root
    }
  }
  stats::add(stats::Counter::kShmSlotsExhausted);
  return nullptr;
}

bool pid_gone(pid_t pid) {
  return ::kill(pid, 0) != 0 && errno == ESRCH;
}

/// Reclaim a writer slot whose registrant died without unregistering.
void reclaim_writer(Plane* p, WriterSlot& slot, std::int64_t dead_pid) {
  if (slot.pid.compare_exchange_strong(dead_pid, 0,
                                       std::memory_order_acq_rel)) {
    slot.key.store(0, std::memory_order_release);
    p->header->reclaims.fetch_add(1, std::memory_order_relaxed);
    stats::add(stats::Counter::kShmWriterReclaimed);
  }
}

}  // namespace

bool active() { return current()->is_active; }

const std::string& segment_name() { return current()->name; }

std::uint64_t key_of(const std::string& root) {
  const std::uint64_t key = fnv1a(root);
  return key == 0 ? 1 : key;  // 0 means "free slot"
}

std::optional<std::uint64_t> generation(const std::string& root) {
  Plane* p = current();
  if (!p->is_active) return std::nullopt;
  ContainerSlot* slot = find_or_claim(p, key_of(root));
  if (slot == nullptr) return std::nullopt;
  return slot->gen.load(std::memory_order_acquire);
}

void bump(const std::string& root) {
  Plane* p = current();
  if (!p->is_active) return;
  ContainerSlot* slot = find_or_claim(p, key_of(root));
  if (slot == nullptr) return;  // exhausted: fingerprint path still catches it
  slot->gen.fetch_add(1, std::memory_order_acq_rel);
  stats::add(stats::Counter::kShmGenBump);
}

int register_writer(const std::string& root) {
  Plane* p = current();
  if (!p->is_active) return -1;
  const std::uint64_t key = key_of(root);
  const auto mypid = static_cast<std::int64_t>(::getpid());
  const std::size_t start = static_cast<std::size_t>(key) % kWriterSlots;
  for (std::size_t i = 0; i < kWriterSlots; ++i) {
    WriterSlot& slot = p->writers[(start + i) % kWriterSlots];
    std::int64_t pid = slot.pid.load(std::memory_order_acquire);
    if (pid != 0 && pid != mypid &&
        pid_gone(static_cast<pid_t>(pid))) {
      reclaim_writer(p, slot, pid);
      pid = slot.pid.load(std::memory_order_acquire);
    }
    if (pid == 0) {
      std::int64_t expected = 0;
      if (slot.pid.compare_exchange_strong(expected, mypid,
                                           std::memory_order_acq_rel)) {
        slot.key.store(key, std::memory_order_release);
        stats::add(stats::Counter::kShmWriterRegistered);
        return static_cast<int>((start + i) % kWriterSlots);
      }
    }
  }
  stats::add(stats::Counter::kShmSlotsExhausted);
  return -1;  // advisory only: callers degrade to openhosts/-file signals
}

void unregister_writer(int slot) {
  Plane* p = current();
  if (!p->is_active || slot < 0 ||
      static_cast<std::size_t>(slot) >= kWriterSlots) {
    return;
  }
  p->writers[slot].key.store(0, std::memory_order_release);
  p->writers[slot].pid.store(0, std::memory_order_release);
}

bool has_foreign_writers(const std::string& root) {
  Plane* p = current();
  if (!p->is_active) return false;
  const std::uint64_t key = key_of(root);
  const auto mypid = static_cast<std::int64_t>(::getpid());
  for (std::size_t i = 0; i < kWriterSlots; ++i) {
    WriterSlot& slot = p->writers[i];
    const std::int64_t pid = slot.pid.load(std::memory_order_acquire);
    if (pid == 0 || pid == mypid) continue;
    if (slot.key.load(std::memory_order_acquire) != key) continue;
    if (pid_gone(static_cast<pid_t>(pid))) {
      reclaim_writer(p, slot, pid);
      continue;
    }
    // A recycled pid belonging to an unrelated process reads as a live
    // writer until that pid exits — conservative (skips an optimization,
    // never corrupts data).
    stats::add(stats::Counter::kShmForeignWriter);
    return true;
  }
  return false;
}

SegmentView inspect() {
  SegmentView view;
  Plane* p = current();
  view.attached = p->is_active;
  view.name = p->name;
  if (!p->is_active) return view;
  view.version = p->header->version.load(std::memory_order_relaxed);
  view.reclaims = p->header->reclaims.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < kContainerSlots; ++i) {
    if (p->containers[i].key.load(std::memory_order_acquire) != 0) {
      ++view.containers_used;
    }
  }
  for (std::size_t i = 0; i < kWriterSlots; ++i) {
    const std::int64_t pid = p->writers[i].pid.load(std::memory_order_acquire);
    const std::uint64_t key = p->writers[i].key.load(std::memory_order_acquire);
    if (pid == 0 || key == 0) continue;
    view.writers.push_back(WriterView{key, static_cast<pid_t>(pid),
                                      !pid_gone(static_cast<pid_t>(pid))});
  }
  return view;
}

void reattach_for_testing() {
  std::lock_guard lock(g_attach_mu);
  // Leak the previous Plane and its mapping: a background pool task may
  // still dereference them. Segments are ~100 KiB; tests reattach a
  // handful of times.
  g_plane.store(attach(), std::memory_order_release);
}

bool unlink_segment() {
  Plane* p = current();
  if (p->name.empty()) return false;
  return ::shm_unlink(p->name.c_str()) == 0;
}

}  // namespace ldplfs::plfs::shmeta
