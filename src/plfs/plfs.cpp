#include "plfs/plfs.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <set>

#include "common/logging.hpp"
#include "common/paths.hpp"
#include "common/strings.hpp"
#include "common/thread_pool.hpp"
#include "plfs/compaction.hpp"
#include "plfs/fd_cache.hpp"
#include "plfs/index_cache.hpp"
#include "plfs/mapped_container.hpp"
#include "plfs/shared_meta.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

namespace {

/// A mutation removed or renamed droppings under `root`: flush every
/// process-wide cache for it. (Appends don't need this — the IndexCache and
/// MappedContainerRegistry fingerprints catch them — but removals must also
/// release cached fds and mappings.)
void drop_container_caches(const std::string& root) {
  IndexCache::shared().invalidate(root);
  DroppingFdCache::shared().invalidate(root + "/");
  MappedContainerRegistry::shared().invalidate(root + "/");
  // Other processes' caches can only learn of the mutation through the
  // shared metadata plane.
  shmeta::bump(root);
}

/// True when LDPLFS_AUTO_FLATTEN is set and not "0" (default off).
bool auto_flatten_enabled() {
  const char* env = std::getenv("LDPLFS_AUTO_FLATTEN");
  return env != nullptr && *env != '\0' && std::strcmp(env, "0") != 0;
}

/// "Flatten when read-mostly": a read-only open is the signal that the
/// container has entered its consumption phase, so kick a background
/// compaction to converge it to the single-dropping, mmap-servable shape.
/// Consults health (a degraded backend is not churned further) and the
/// container's own state (already-flat and writer-occupied containers are
/// skipped; plfs_compact re-checks openhosts and bows out EBUSY on a race).
/// At most one attempt per container per process.
void maybe_auto_flatten(const std::string& path) {
  if (!auto_flatten_enabled()) return;
  if (health::bypass_open(path)) return;
  static std::mutex mu;
  static auto* attempted = new std::set<std::string>();  // never destroyed
  {
    std::lock_guard lock(mu);
    if (!attempted->insert(path).second) return;
  }
  auto data = find_data_droppings(path);
  auto index = find_index_droppings(path);
  if (!data || !index) return;
  if (data.value().size() < 2 && index.value().size() < 2) return;
  auto hosts = read_open_hosts(path);
  if (!hosts || !hosts.value().empty()) return;
  // The openhosts/ files are warn-only (a writer may fail to register);
  // the shared plane's registration is authoritative when attached.
  if (shmeta::has_foreign_writers(path)) return;
  stats::add(stats::Counter::kAutoFlattenKicked);
  // Touch the caches compaction uses while the process is demonstrably
  // alive, so the task never constructs a static during exit processing.
  (void)IndexCache::shared();
  (void)DroppingFdCache::shared();
  (void)MappedContainerRegistry::shared();
  ThreadPool::shared().submit([path] {
    // Best-effort: a short-lived process reaches the pool's exit drain with
    // this task still queued — skip it rather than compact mid-shutdown.
    if (ThreadPool::shared().stopping()) return;
    (void)plfs_compact(path);  // invalidates caches itself on success
  });
}

/// How many writes may accumulate before a read re-snapshots the index.
/// Any write invalidates the snapshot; the counter exists only to avoid
/// rebuilding when nothing changed.
constexpr std::uint64_t kAlwaysRefresh = 0;

std::string writer_host(const OpenOptions& opts) {
  return opts.host_override.empty() ? local_hostname() : opts.host_override;
}

}  // namespace

FileHandle::FileHandle(std::string path, int flags, OpenOptions opts)
    : path_(std::move(path)), flags_(flags), opts_(std::move(opts)) {
  if ((flags_ & O_ACCMODE) != O_RDONLY) {
    shm_slot_ = shmeta::register_writer(path_);
  }
}

FileHandle::~FileHandle() {
  // Close any streams plfs_close did not reach (their close() bumps the
  // generation if dirty), then drop the registration — in that order, so a
  // foreign-writer check can never miss both the registration and the bump.
  writers_.clear();
  shmeta::unregister_writer(shm_slot_);
}

Result<WriteFile*> FileHandle::writer_for(pid_t pid) {
  auto it = writers_.find(pid);
  if (it != writers_.end()) return it->second.get();
  WriterId id{writer_host(opts_), pid, next_timestamp()};
  auto wf = WriteFile::open(path_, id);
  if (!wf) return wf.error();
  WriteFile* raw = wf.value().get();
  writers_.emplace(pid, std::move(wf).value());
  return raw;
}

Result<std::size_t> FileHandle::write(std::span<const std::byte> data,
                                      std::uint64_t offset, pid_t pid) {
  if ((flags_ & O_ACCMODE) == O_RDONLY) return Errno{EBADF};
  std::lock_guard lock(mu_);
  auto writer = writer_for(pid);
  if (!writer) return writer.error();
  auto n = writer.value()->write(data, offset);
  if (n) ++writes_since_snapshot_;
  return n;
}

Status FileHandle::flush_writers_locked() {
  // sync() is a drain barrier: it empties each writer's write-behind
  // aggregation buffer into the log *and* flushes the index records, so a
  // snapshot taken after this sees every acknowledged byte (read-your-writes
  // holds even while appends are still coalescing in user space).
  for (auto& [pid, writer] : writers_) {
    if (auto s = writer->sync(); !s) return s;
  }
  return Status::success();
}

Result<ReadFile*> FileHandle::reader_locked() {
  if (reader_ && writes_since_snapshot_ == kAlwaysRefresh) {
    return reader_.get();
  }
  if (auto s = flush_writers_locked(); !s) return s.error();
  auto rf = ReadFile::open(path_);
  if (!rf) return rf.error();
  reader_ = std::move(rf).value();
  writes_since_snapshot_ = 0;
  return reader_.get();
}

Result<std::size_t> FileHandle::read(std::span<std::byte> out,
                                     std::uint64_t offset) {
  if ((flags_ & O_ACCMODE) == O_WRONLY) return Errno{EBADF};
  std::lock_guard lock(mu_);
  auto reader = reader_locked();
  if (!reader) return reader.error();
  return reader.value()->read(out, offset);
}

Result<std::size_t> FileHandle::readx(std::span<const ReadSegment> segs) {
  if ((flags_ & O_ACCMODE) == O_WRONLY) return Errno{EBADF};
  std::lock_guard lock(mu_);
  // One snapshot for the whole batch: every segment sees the same index
  // state, no matter what concurrent writers do between segments.
  auto reader = reader_locked();
  if (!reader) return reader.error();
  return reader.value()->read_batch(segs);
}

Result<std::size_t> FileHandle::writex(std::span<const WriteSegment> segs,
                                       pid_t pid) {
  if ((flags_ & O_ACCMODE) == O_RDONLY) return Errno{EBADF};
  std::lock_guard lock(mu_);
  auto writer = writer_for(pid);
  if (!writer) return writer.error();
  std::size_t total = 0;
  for (const auto& seg : segs) {
    if (seg.buf.empty()) continue;
    auto n = writer.value()->write(seg.buf, seg.offset);
    if (!n) {
      if (total > 0) break;  // partial success: report what landed
      return n.error();
    }
    ++writes_since_snapshot_;
    total += n.value();
  }
  return total;
}

Status FileHandle::sync(pid_t pid) {
  std::lock_guard lock(mu_);
  auto it = writers_.find(pid);
  if (it == writers_.end()) return Status::success();
  return it->second->sync();
}

Status FileHandle::close(pid_t pid) {
  std::lock_guard lock(mu_);
  auto it = writers_.find(pid);
  if (it != writers_.end()) {
    Status s = it->second->close();
    writers_.erase(it);
    // Writer close changed the on-disk index (flush + metadata hint); other
    // handles must re-merge rather than serve the pre-close snapshot.
    IndexCache::shared().invalidate(path_);
    return s;
  }
  return Status::success();
}

Result<std::uint64_t> FileHandle::size() {
  std::lock_guard lock(mu_);
  auto reader = reader_locked();
  if (!reader) return reader.error();
  return reader.value()->size();
}

Status FileHandle::truncate(std::uint64_t size, pid_t pid) {
  if ((flags_ & O_ACCMODE) == O_RDONLY) return Errno{EBADF};
  std::lock_guard lock(mu_);
  auto writer = writer_for(pid);
  if (!writer) return writer.error();
  ++writes_since_snapshot_;
  if (auto s = writer.value()->truncate(size); !s) return s;
  // Sibling writer streams on this handle must not later re-advertise a
  // pre-truncate EOF in their metadata hints.
  for (auto& [other_pid, other] : writers_) {
    if (other_pid != pid) other->clamp_eof(size);
  }
  IndexCache::shared().invalidate(path_);
  return Status::success();
}

Result<std::shared_ptr<FileHandle>> plfs_open(const std::string& path,
                                              int flags, pid_t pid,
                                              mode_t mode, OpenOptions opts) {
  const bool exists = posix::exists(path);
  const bool container = exists && is_container(path);
  if (exists && !container) {
    // A plain directory (or foreign file) occupies the name.
    return Errno{posix::is_directory(path) ? EISDIR : ENOTSUP};
  }
  if (!container) {
    if ((flags & O_CREAT) == 0) return Errno{ENOENT};
    if (auto s = fast_create_enabled()
                     ? create_container_fast(path, mode)
                     : create_container(path, mode, writer_host(opts), pid,
                                        opts.hostdirs);
        !s) {
      // A concurrent creator racing us is fine unless O_EXCL.
      if (s.error_code() != EEXIST || (flags & O_EXCL) != 0) return s.error();
    }
  } else {
    if ((flags & O_CREAT) != 0 && (flags & O_EXCL) != 0) return Errno{EEXIST};
  }

  if ((flags & O_TRUNC) != 0 && (flags & O_ACCMODE) != O_RDONLY && container) {
    // Truncate-to-zero at open clears the container's droppings outright
    // (rather than masking them with a truncate record), so repeated
    // O_TRUNC checkpoint cycles do not accumulate dead log data.
    if (auto s = plfs_trunc(path, 0); !s) return s.error();
  }
  if (container && (flags & O_ACCMODE) == O_RDONLY) maybe_auto_flatten(path);
  stats::add(stats::Counter::kPlfsHandleOpened);
  return std::make_shared<FileHandle>(path, flags, opts);
}

Result<std::size_t> plfs_write(FileHandle& fd, std::span<const std::byte> data,
                               std::uint64_t offset, pid_t pid) {
  return fd.write(data, offset, pid);
}

Result<std::size_t> plfs_read(FileHandle& fd, std::span<std::byte> out,
                              std::uint64_t offset) {
  return fd.read(out, offset);
}

Result<std::size_t> plfs_readx(FileHandle& fd,
                               std::span<const ReadSegment> segs) {
  return fd.readx(segs);
}

Result<std::size_t> plfs_writex(FileHandle& fd,
                                std::span<const WriteSegment> segs,
                                pid_t pid) {
  return fd.writex(segs, pid);
}

Status plfs_sync(FileHandle& fd, pid_t pid) { return fd.sync(pid); }

Status plfs_close(const std::shared_ptr<FileHandle>& fd, pid_t pid) {
  if (!fd) return Errno{EBADF};
  stats::add(stats::Counter::kPlfsHandleClosed);
  return fd->close(pid);
}

Result<FileAttr> plfs_getattr(const std::string& path) {
  if (!is_container(path)) return Errno{ENOENT};
  FileAttr attr;

  // mtime: closes drop metadata hints, so the metadata directory's mtime
  // tracks the last completed write burst; fall back to the container dir.
  ContainerLayout mtime_layout(path);
  if (auto st = posix::stat_path(mtime_layout.metadata_path())) {
    attr.mtime = st.value().st_mtime;
  }
  if (auto st = posix::stat_path(path)) {
    attr.mtime = std::max(attr.mtime, st.value().st_mtime);
  }

  // The creator file records the mode; fast-created containers have no
  // creator and carry "mode=..." in the access marker instead.
  auto creator = posix::read_file(path_join(path, kCreatorFile));
  if (!creator) creator = posix::read_file(path_join(path, kAccessFile));
  if (creator) {
    const auto pos = creator.value().find("mode=");
    if (pos != std::string::npos) {
      attr.mode = static_cast<mode_t>(
          std::strtoul(creator.value().c_str() + pos + 5, nullptr, 8));
    }
  }

  // Fast path (same trick as PLFS): when no writer has the file open, the
  // name-encoded metadata hints give the size without touching any index.
  auto open_hosts = read_open_hosts(path);
  if (open_hosts && open_hosts.value().empty()) {
    auto hints = read_meta_hints(path);
    if (hints && !hints.value().empty()) {
      // Hints are per-writer; also count index droppings so that a writer
      // that crashed before dropping a hint does not go unnoticed.
      auto droppings = find_index_droppings(path);
      if (droppings &&
          droppings.value().size() <= hints.value().size()) {
        for (const auto& hint : hints.value()) {
          attr.size = std::max(attr.size, hint.eof);
        }
        attr.from_hints = true;
        return attr;
      }
    }
  }

  auto index = IndexCache::shared().get(path);
  if (!index) return index.error();
  attr.size = index.value()->size();
  return attr;
}

Status plfs_unlink(const std::string& path) {
  drop_container_caches(path);
  return remove_container(path);
}

Status plfs_trunc(const std::string& path, std::uint64_t size) {
  if (!is_container(path)) return Errno{ENOENT};
  drop_container_caches(path);
  if (size == 0) {
    // Truncate-to-zero drops history entirely: remove droppings and hints
    // rather than masking them (this is what keeps repeated O_TRUNC
    // checkpoint cycles from growing the container forever).
    auto index_paths = find_index_droppings(path);
    if (!index_paths) return index_paths.error();
    for (const auto& p : index_paths.value()) {
      if (auto s = posix::remove_file(p); !s) return s;
    }
    auto data_paths = find_data_droppings(path);
    if (!data_paths) return data_paths.error();
    for (const auto& p : data_paths.value()) {
      if (auto s = posix::remove_file(p); !s) return s;
    }
    ContainerLayout layout(path);
    auto metas = posix::list_dir(layout.metadata_path());
    if (metas) {
      for (const auto& name : metas.value()) {
        (void)posix::remove_file(path_join(layout.metadata_path(), name));
      }
    }
    return Status::success();
  }
  // Non-zero truncate: record it through a short-lived writer stream.
  WriterId id{local_hostname(), ::getpid(), next_timestamp()};
  auto wf = WriteFile::open(path, id);
  if (!wf) return wf.error();
  if (auto s = wf.value()->truncate(size); !s) return s;
  return wf.value()->close();
}

Status plfs_access(const std::string& path, int amode) {
  if (!is_container(path)) return Errno{ENOENT};
  const std::string marker = path_join(path, kAccessFile);
  if (::access(marker.c_str(), amode & ~X_OK) != 0) return Errno{errno};
  return Status::success();
}

Status plfs_rename(const std::string& from, const std::string& to) {
  if (!is_container(from)) return Errno{ENOENT};
  drop_container_caches(from);
  drop_container_caches(to);
  if (is_container(to)) {
    if (auto s = remove_container(to); !s) return s;
  }
  return posix::rename_path(from, to);
}

Result<std::vector<DirEntry>> plfs_readdir(const std::string& path) {
  auto names = posix::list_dir(path);
  if (!names) return names.error();
  std::vector<DirEntry> out;
  out.reserve(names.value().size());
  for (const auto& name : names.value()) {
    const std::string full = path_join(path, name);
    DirEntry entry;
    entry.name = name;
    entry.is_plfs_file = is_container(full);
    entry.is_directory = !entry.is_plfs_file && posix::is_directory(full);
    out.push_back(std::move(entry));
  }
  return out;
}

Status plfs_flatten(const std::string& path) {
  if (!is_container(path)) return Errno{ENOENT};
  auto index = IndexCache::shared().get(path);
  if (!index) return index.error();
  auto old_droppings = find_index_droppings(path);
  if (!old_droppings) return old_droppings.error();

  ContainerLayout layout(path);
  WriterId id{local_hostname(), ::getpid(), next_timestamp()};
  const std::string hostdir = layout.hostdir_for(id.host);
  if (auto s = posix::make_dirs(hostdir); !s) return s;
  const std::string flat_path =
      path_join(hostdir, ContainerLayout::index_dropping_name(id));
  if (auto s = posix::write_file(flat_path, index.value()->encode_flattened());
      !s) {
    return s;
  }
  for (const auto& old : old_droppings.value()) {
    if (auto s = posix::remove_file(old); !s) return s;
  }
  IndexCache::shared().invalidate(path);
  shmeta::bump(path);
  return Status::success();
}

bool plfs_is_container(const std::string& path) { return is_container(path); }

stats::Snapshot plfs_stats() { return stats::snapshot(); }

std::vector<health::BackendSnapshot> plfs_health() {
  return health::snapshot();
}

}  // namespace ldplfs::plfs
