#include "plfs/fd_cache.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>

#include "common/stats.hpp"
#include "posix/fd.hpp"

namespace ldplfs::plfs {

CachedFd::Entry::~Entry() {
  if (fd >= 0) ::close(fd);
}

DroppingFdCache::DroppingFdCache(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

Result<CachedFd> DroppingFdCache::acquire(const std::string& path) {
  {
    std::lock_guard lock(mu_);
    auto it = by_path_.find(path);
    if (it != by_path_.end()) {
      lru_.splice(lru_.begin(), lru_, it->second);
      it->second = lru_.begin();
      ++stats_.hits;
      stats::add(stats::Counter::kCacheFdHit);
      return CachedFd(*it->second);
    }
  }
  // Open outside the lock so concurrent first-touch opens of different
  // droppings (the parallel read engine's cold start) do not serialise.
  auto fd = posix::open_fd(path, O_RDONLY);
  if (!fd) return fd.error();
  auto entry = std::make_shared<CachedFd::Entry>();
  entry->path = path;
  entry->fd = fd.value().release();

  std::lock_guard lock(mu_);
  auto it = by_path_.find(path);
  if (it != by_path_.end()) {
    // Lost a race with another opener; theirs is already tracked, use it
    // (ours closes when `entry` goes out of scope).
    lru_.splice(lru_.begin(), lru_, it->second);
    it->second = lru_.begin();
    ++stats_.hits;
    stats::add(stats::Counter::kCacheFdHit);
    return CachedFd(*it->second);
  }
  ++stats_.misses;
  stats::add(stats::Counter::kCacheFdMiss);
  stats::add(stats::Counter::kPlfsDroppingsOpened);
  lru_.push_front(entry);
  by_path_[path] = lru_.begin();
  evict_excess_locked();
  return CachedFd(std::move(entry));
}

void DroppingFdCache::evict_excess_locked() {
  while (lru_.size() > capacity_) {
    by_path_.erase(lru_.back()->path);
    lru_.pop_back();  // fd closes now, or when the last pin drops
    ++stats_.evictions;
    stats::add(stats::Counter::kCacheFdEviction);
  }
}

void DroppingFdCache::invalidate(const std::string& prefix) {
  std::lock_guard lock(mu_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    if ((*it)->path.compare(0, prefix.size(), prefix) == 0) {
      by_path_.erase((*it)->path);
      it = lru_.erase(it);
    } else {
      ++it;
    }
  }
}

std::size_t DroppingFdCache::open_count() const {
  std::lock_guard lock(mu_);
  return lru_.size();
}

DroppingFdCache::Stats DroppingFdCache::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

DroppingFdCache& DroppingFdCache::shared() {
  // Deliberately leaked: pool threads drained at process exit (background
  // auto-flatten, abandoned flushes) may still touch the cache after a
  // by-value static's destructor would have run. The OS reclaims the fds.
  static DroppingFdCache* cache = new DroppingFdCache([] {
    const char* env = std::getenv("LDPLFS_FD_CACHE");
    if (env == nullptr || *env == '\0') return std::size_t{256};
    char* end = nullptr;
    const unsigned long value = std::strtoul(env, &end, 10);
    if (end == env || *end != '\0') return std::size_t{256};
    return value < 8 ? std::size_t{8} : static_cast<std::size_t>(value);
  }());
  return *cache;
}

}  // namespace ldplfs::plfs
