// Static interposition via the linker's --wrap mechanism (paper §III-A:
// "For systems where dynamic linking is either not available or is only
// available in a limited capacity (such as on an IBM BlueGene system), a
// static LDPLFS library can be compiled and, through the use of the -wrap
// functionality found in some compilers, can be linked at compile time").
//
// Link an application with
//
//   -lldplfs_wrap -Wl,--wrap=open,--wrap=open64,--wrap=creat,--wrap=close,
//       --wrap=read,--wrap=write,--wrap=pread,--wrap=pwrite,--wrap=lseek,
//       --wrap=dup,--wrap=dup2,--wrap=fsync,--wrap=fdatasync,
//       --wrap=ftruncate,--wrap=truncate,--wrap=unlink,--wrap=access,
//       --wrap=stat,--wrap=lstat,--wrap=fstat,--wrap=rename
//
// and every wrapped call routes through the LDPLFS core; `__real_*` symbols
// (provided by the linker) serve as the passthrough targets, so no dlsym
// and no dynamic loader are involved.
#include <fcntl.h>
#include <stdarg.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include "common/logging.hpp"
#include "core/mounts.hpp"
#include "core/real_calls.hpp"
#include "core/router.hpp"

extern "C" {

// Linker-provided real entry points.
int __real_open(const char* path, int flags, ...);
int __real_close(int fd);
ssize_t __real_read(int fd, void* buf, size_t count);
ssize_t __real_write(int fd, const void* buf, size_t count);
ssize_t __real_pread(int fd, void* buf, size_t count, off_t offset);
ssize_t __real_pwrite(int fd, const void* buf, size_t count, off_t offset);
off_t __real_lseek(int fd, off_t offset, int whence);
int __real_dup(int fd);
int __real_dup2(int oldfd, int newfd);
int __real_fsync(int fd);
int __real_fdatasync(int fd);
int __real_ftruncate(int fd, off_t length);
int __real_truncate(const char* path, off_t length);
int __real_unlink(const char* path);
int __real_access(const char* path, int amode);
int __real_stat(const char* path, struct ::stat* st);
int __real_lstat(const char* path, struct ::stat* st);
int __real_fstat(int fd, struct ::stat* st);
int __real_rename(const char* from, const char* to);

}  // extern "C"

namespace {

using ldplfs::core::MountTable;
using ldplfs::core::RealCalls;
using ldplfs::core::Router;

int real_open3(const char* path, int flags, mode_t mode) {
  return __real_open(path, flags, mode);
}

const RealCalls& wrap_real_calls() {
  static const RealCalls calls = [] {
    RealCalls c;
    c.open = real_open3;
    c.close = __real_close;
    c.read = __real_read;
    c.write = __real_write;
    c.pread = __real_pread;
    c.pwrite = __real_pwrite;
    c.lseek = __real_lseek;
    c.dup = __real_dup;
    c.dup2 = __real_dup2;
    c.fsync = __real_fsync;
    c.fdatasync = __real_fdatasync;
    c.ftruncate = __real_ftruncate;
    c.truncate = __real_truncate;
    c.unlink = __real_unlink;
    c.access = __real_access;
    c.stat = __real_stat;
    c.lstat = __real_lstat;
    c.fstat = __real_fstat;
    c.rename = __real_rename;
    // mkdir/rmdir are not interposed in wrap mode; plain libc is the
    // passthrough target.
    c.mkdir = ::mkdir;
    c.rmdir = ::rmdir;
    return c;
  }();
  return calls;
}

Router& wrap_router() {
  static Router instance = [] {
    MountTable::instance().load_from_env();
    LDPLFS_LOG_INFO("ldplfs --wrap mode active; %zu mount point(s)",
                    MountTable::instance().mounts().size());
    return Router(wrap_real_calls(), MountTable::instance());
  }();
  return instance;
}

// The PLFS library underneath calls the unwrapped libc symbols directly
// (they are only wrapped in the *application's* link), so no reentrancy
// guard is needed in this mode when ldplfs_wrap is linked as a separate
// library. A guard is kept anyway for the fully-static case where the
// whole program, PLFS included, is wrapped.
thread_local int g_in_wrap = 0;

class WrapGuard {
 public:
  WrapGuard() { ++g_in_wrap; }
  ~WrapGuard() { --g_in_wrap; }
  [[nodiscard]] bool outermost() const { return g_in_wrap == 1; }
};

}  // namespace

extern "C" {

int __wrap_open(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0
#ifdef O_TMPFILE
      || (flags & O_TMPFILE) == O_TMPFILE
#endif
  ) {
    va_list args;
    va_start(args, flags);
    mode = static_cast<mode_t>(va_arg(args, int));
    va_end(args);
  }
  WrapGuard guard;
  if (!guard.outermost()) return __real_open(path, flags, mode);
  return wrap_router().open(path, flags, mode);
}

int __wrap_open64(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0
#ifdef O_TMPFILE
      || (flags & O_TMPFILE) == O_TMPFILE
#endif
  ) {
    va_list args;
    va_start(args, flags);
    mode = static_cast<mode_t>(va_arg(args, int));
    va_end(args);
  }
  WrapGuard guard;
  if (!guard.outermost()) return __real_open(path, flags | O_LARGEFILE, mode);
  return wrap_router().open(path, flags | O_LARGEFILE, mode);
}

int __wrap_creat(const char* path, mode_t mode) {
  WrapGuard guard;
  if (!guard.outermost()) {
    return __real_open(path, O_WRONLY | O_CREAT | O_TRUNC, mode);
  }
  return wrap_router().creat(path, mode);
}

int __wrap_close(int fd) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_close(fd);
  return wrap_router().close(fd);
}

ssize_t __wrap_read(int fd, void* buf, size_t count) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_read(fd, buf, count);
  return wrap_router().read(fd, buf, count);
}

ssize_t __wrap_write(int fd, const void* buf, size_t count) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_write(fd, buf, count);
  return wrap_router().write(fd, buf, count);
}

ssize_t __wrap_pread(int fd, void* buf, size_t count, off_t offset) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_pread(fd, buf, count, offset);
  return wrap_router().pread(fd, buf, count, offset);
}

ssize_t __wrap_pwrite(int fd, const void* buf, size_t count, off_t offset) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_pwrite(fd, buf, count, offset);
  return wrap_router().pwrite(fd, buf, count, offset);
}

off_t __wrap_lseek(int fd, off_t offset, int whence) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_lseek(fd, offset, whence);
  return wrap_router().lseek(fd, offset, whence);
}

int __wrap_dup(int fd) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_dup(fd);
  return wrap_router().dup(fd);
}

int __wrap_dup2(int oldfd, int newfd) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_dup2(oldfd, newfd);
  return wrap_router().dup2(oldfd, newfd);
}

int __wrap_fsync(int fd) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_fsync(fd);
  return wrap_router().fsync(fd);
}

int __wrap_fdatasync(int fd) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_fdatasync(fd);
  return wrap_router().fdatasync(fd);
}

int __wrap_ftruncate(int fd, off_t length) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_ftruncate(fd, length);
  return wrap_router().ftruncate(fd, length);
}

int __wrap_truncate(const char* path, off_t length) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_truncate(path, length);
  return wrap_router().truncate(path, length);
}

int __wrap_unlink(const char* path) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_unlink(path);
  return wrap_router().unlink(path);
}

int __wrap_access(const char* path, int amode) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_access(path, amode);
  return wrap_router().access(path, amode);
}

int __wrap_stat(const char* path, struct ::stat* st) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_stat(path, st);
  return wrap_router().stat(path, st);
}

int __wrap_lstat(const char* path, struct ::stat* st) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_lstat(path, st);
  return wrap_router().lstat(path, st);
}

int __wrap_fstat(int fd, struct ::stat* st) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_fstat(fd, st);
  return wrap_router().fstat(fd, st);
}

int __wrap_rename(const char* from, const char* to) {
  WrapGuard guard;
  if (!guard.outermost()) return __real_rename(from, to);
  return wrap_router().rename(from, to);
}

}  // extern "C"
