// libldplfs.so — the LD_PRELOAD entry point (the paper's deliverable).
//
//   $ export LDPLFS_MOUNTS=/path/to/plfs/backend
//   $ LD_PRELOAD=/path/to/libldplfs.so ./unmodified_application
//
// Every exported symbol below shadows its libc namesake. Calls are routed
// through core::Router; paths outside the configured PLFS mount points pass
// straight through to the real libc entry points resolved with
// dlsym(RTLD_NEXT, ...).
//
// Reentrancy: the PLFS library underneath the router performs its own POSIX
// I/O on droppings. Inside libldplfs.so those calls bind to *our* exported
// symbols, so a thread-local guard marks "already inside LDPLFS" frames and
// forwards them to the real functions untouched. (The same technique is
// used by Darshan and other LD_PRELOAD I/O tools.)
//
// Variadic open(2): the mode argument is fetched iff O_CREAT or O_TMPFILE
// is present, as the libc contract requires.

#include <dlfcn.h>
#include <fcntl.h>
#include <stdarg.h>
#include <stdio.h>
#include <sys/mman.h>
#include <sys/sendfile.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <map>
#include <mutex>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "core/mounts.hpp"
#include "core/real_calls.hpp"
#include "core/router.hpp"
#include "plfs/mapped_container.hpp"

namespace {

using ldplfs::core::MountTable;
using ldplfs::core::RealCalls;
using ldplfs::core::Router;

// ---------------------------------------------------------------------------
// Real-call resolution.
// ---------------------------------------------------------------------------

template <typename Fn>
Fn next_symbol(const char* name) {
  // dlsym may legitimately return nullptr only if the symbol is absent;
  // for core libc I/O symbols that would be fatal anyway.
  void* sym = ::dlsym(RTLD_NEXT, name);
  return reinterpret_cast<Fn>(sym);
}

RealCalls resolve_real_calls() {
  RealCalls c;
  c.open = next_symbol<int (*)(const char*, int, mode_t)>("open");
  c.close = next_symbol<int (*)(int)>("close");
  c.read = next_symbol<ssize_t (*)(int, void*, size_t)>("read");
  c.write = next_symbol<ssize_t (*)(int, const void*, size_t)>("write");
  c.pread = next_symbol<ssize_t (*)(int, void*, size_t, off_t)>("pread");
  c.pwrite =
      next_symbol<ssize_t (*)(int, const void*, size_t, off_t)>("pwrite");
  c.lseek = next_symbol<off_t (*)(int, off_t, int)>("lseek");
  c.dup = next_symbol<int (*)(int)>("dup");
  c.dup2 = next_symbol<int (*)(int, int)>("dup2");
  c.fsync = next_symbol<int (*)(int)>("fsync");
  c.fdatasync = next_symbol<int (*)(int)>("fdatasync");
  c.ftruncate = next_symbol<int (*)(int, off_t)>("ftruncate");
  c.truncate = next_symbol<int (*)(const char*, off_t)>("truncate");
  c.unlink = next_symbol<int (*)(const char*)>("unlink");
  c.access = next_symbol<int (*)(const char*, int)>("access");
  c.stat = next_symbol<int (*)(const char*, struct ::stat*)>("stat");
  c.lstat = next_symbol<int (*)(const char*, struct ::stat*)>("lstat");
  c.fstat = next_symbol<int (*)(int, struct ::stat*)>("fstat");
  c.rename = next_symbol<int (*)(const char*, const char*)>("rename");
  c.mkdir = next_symbol<int (*)(const char*, mode_t)>("mkdir");
  c.rmdir = next_symbol<int (*)(const char*)>("rmdir");
  return c;
}

const RealCalls& real() {
  static const RealCalls calls = resolve_real_calls();
  return calls;
}

// ---------------------------------------------------------------------------
// Router bootstrap + reentrancy guard.
// ---------------------------------------------------------------------------

Router& router() {
  static Router instance = [] {
    MountTable::instance().load_from_env();
    LDPLFS_LOG_INFO("libldplfs loaded; %zu mount point(s)",
                    MountTable::instance().mounts().size());
    return Router(real(), MountTable::instance());
  }();
  return instance;
}

thread_local int g_in_ldplfs = 0;

class ReentryGuard {
 public:
  ReentryGuard() { ++g_in_ldplfs; }
  ~ReentryGuard() { --g_in_ldplfs; }
  /// True when this is the outermost (application) frame.
  [[nodiscard]] bool outermost() const { return g_in_ldplfs == 1; }
};

}  // namespace

// ---------------------------------------------------------------------------
// Interposed symbols. Each forwards to the real call when (a) the frame is
// reentrant, or (b) the router declines ownership — the router itself does
// the passthrough in case (b).
// ---------------------------------------------------------------------------

extern "C" {

int open(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0
#ifdef O_TMPFILE
      || (flags & O_TMPFILE) == O_TMPFILE
#endif
  ) {
    va_list args;
    va_start(args, flags);
    mode = static_cast<mode_t>(va_arg(args, int));
    va_end(args);
  }
  ReentryGuard guard;
  if (!guard.outermost()) return real().open(path, flags, mode);
  return router().open(path, flags, mode);
}

int open64(const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0
#ifdef O_TMPFILE
      || (flags & O_TMPFILE) == O_TMPFILE
#endif
  ) {
    va_list args;
    va_start(args, flags);
    mode = static_cast<mode_t>(va_arg(args, int));
    va_end(args);
  }
  ReentryGuard guard;
  if (!guard.outermost()) return real().open(path, flags | O_LARGEFILE, mode);
  return router().open(path, flags | O_LARGEFILE, mode);
}

int creat(const char* path, mode_t mode) {
  ReentryGuard guard;
  if (!guard.outermost()) {
    return real().open(path, O_WRONLY | O_CREAT | O_TRUNC, mode);
  }
  return router().creat(path, mode);
}

int close(int fd) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().close(fd);
  return router().close(fd);
}

ssize_t read(int fd, void* buf, size_t count) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().read(fd, buf, count);
  return router().read(fd, buf, count);
}

ssize_t write(int fd, const void* buf, size_t count) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().write(fd, buf, count);
  return router().write(fd, buf, count);
}

ssize_t pread(int fd, void* buf, size_t count, off_t offset) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().pread(fd, buf, count, offset);
  return router().pread(fd, buf, count, offset);
}

ssize_t pwrite(int fd, const void* buf, size_t count, off_t offset) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().pwrite(fd, buf, count, offset);
  return router().pwrite(fd, buf, count, offset);
}

ssize_t readv(int fd, const struct ::iovec* iov, int iovcnt) {
  using ReadvFn = ssize_t (*)(int, const struct ::iovec*, int);
  static ReadvFn real_readv = next_symbol<ReadvFn>("readv");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_readv(fd, iov, iovcnt);
  }
  return router().readv(fd, iov, iovcnt);
}

ssize_t writev(int fd, const struct ::iovec* iov, int iovcnt) {
  using WritevFn = ssize_t (*)(int, const struct ::iovec*, int);
  static WritevFn real_writev = next_symbol<WritevFn>("writev");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_writev(fd, iov, iovcnt);
  }
  return router().writev(fd, iov, iovcnt);
}

ssize_t preadv(int fd, const struct ::iovec* iov, int iovcnt, off_t offset) {
  using PreadvFn = ssize_t (*)(int, const struct ::iovec*, int, off_t);
  static PreadvFn real_preadv = next_symbol<PreadvFn>("preadv");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_preadv(fd, iov, iovcnt, offset);
  }
  return router().preadv(fd, iov, iovcnt, offset);
}

ssize_t pwritev(int fd, const struct ::iovec* iov, int iovcnt, off_t offset) {
  using PwritevFn = ssize_t (*)(int, const struct ::iovec*, int, off_t);
  static PwritevFn real_pwritev = next_symbol<PwritevFn>("pwritev");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_pwritev(fd, iov, iovcnt, offset);
  }
  return router().pwritev(fd, iov, iovcnt, offset);
}

ssize_t preadv64(int fd, const struct ::iovec* iov, int iovcnt, off_t offset) {
  return preadv(fd, iov, iovcnt, offset);
}

ssize_t pwritev64(int fd, const struct ::iovec* iov, int iovcnt,
                  off_t offset) {
  return pwritev(fd, iov, iovcnt, offset);
}

ssize_t pread64(int fd, void* buf, size_t count, off_t offset) {
  return pread(fd, buf, count, offset);
}

ssize_t pwrite64(int fd, const void* buf, size_t count, off_t offset) {
  return pwrite(fd, buf, count, offset);
}

off_t lseek(int fd, off_t offset, int whence) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().lseek(fd, offset, whence);
  return router().lseek(fd, offset, whence);
}

off_t lseek64(int fd, off_t offset, int whence) {
  return lseek(fd, offset, whence);
}

int dup(int fd) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().dup(fd);
  return router().dup(fd);
}

int dup2(int oldfd, int newfd) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().dup2(oldfd, newfd);
  return router().dup2(oldfd, newfd);
}

// fcntl is variadic; the integer-argument commands (F_DUPFD, F_SETFL, ...)
// and the pointer-argument ones (F_SETLK, F_GETOWN_EX, ...) all fit in a
// long on the platforms we support, so fetch one long unconditionally and
// pass it through. F_DUPFD on a routed fd must register the duplicate in
// the fd table exactly like dup() — missing that was the same bug class as
// the dup2 aliasing fix.
int fcntl(int fd, int cmd, ...) {
  va_list args;
  va_start(args, cmd);
  const long arg = va_arg(args, long);
  va_end(args);
  static const auto real_fcntl =
      next_symbol<int (*)(int, int, long)>("fcntl");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_fcntl(fd, cmd, arg);
  }
  return router().fcntl(fd, cmd, arg);
}

int fcntl64(int fd, int cmd, ...) {
  va_list args;
  va_start(args, cmd);
  const long arg = va_arg(args, long);
  va_end(args);
  static const auto real_fcntl64 =
      next_symbol<int (*)(int, int, long)>("fcntl64");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_fcntl64(fd, cmd, arg);
  }
  return router().fcntl(fd, cmd, arg);
}

int fsync(int fd) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().fsync(fd);
  return router().fsync(fd);
}

int fdatasync(int fd) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().fdatasync(fd);
  return router().fdatasync(fd);
}

int ftruncate(int fd, off_t length) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().ftruncate(fd, length);
  return router().ftruncate(fd, length);
}

int truncate(const char* path, off_t length) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().truncate(path, length);
  return router().truncate(path, length);
}

int unlink(const char* path) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().unlink(path);
  return router().unlink(path);
}

int access(const char* path, int amode) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().access(path, amode);
  return router().access(path, amode);
}

int stat(const char* path, struct ::stat* st) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().stat(path, st);
  return router().stat(path, st);
}

int lstat(const char* path, struct ::stat* st) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().lstat(path, st);
  return router().lstat(path, st);
}

int fstat(int fd, struct ::stat* st) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().fstat(fd, st);
  return router().fstat(fd, st);
}

// The *64 variants used to reinterpret_cast stat64* to stat* and fill the
// 32-bit-layout path directly — an accident of LP64 glibc defining the two
// structs identically, not a contract (and wrong wherever they differ,
// e.g. 32-bit with _LARGEFILE64_SOURCE). Fill a proper struct stat and
// convert field by field instead.
static void copy_stat_to_stat64(const struct ::stat& in, struct ::stat64* out) {
  *out = {};
  out->st_dev = in.st_dev;
  out->st_ino = static_cast<decltype(out->st_ino)>(in.st_ino);
  out->st_mode = in.st_mode;
  out->st_nlink = static_cast<decltype(out->st_nlink)>(in.st_nlink);
  out->st_uid = in.st_uid;
  out->st_gid = in.st_gid;
  out->st_rdev = in.st_rdev;
  out->st_size = static_cast<decltype(out->st_size)>(in.st_size);
  out->st_blksize = static_cast<decltype(out->st_blksize)>(in.st_blksize);
  out->st_blocks = static_cast<decltype(out->st_blocks)>(in.st_blocks);
  out->st_atim = in.st_atim;
  out->st_mtim = in.st_mtim;
  out->st_ctim = in.st_ctim;
}

int stat64(const char* path, struct ::stat64* st) {
  struct ::stat tmp{};
  const int rc = stat(path, &tmp);  // the interposer above; guard inside
  if (rc == 0) copy_stat_to_stat64(tmp, st);
  return rc;
}

int lstat64(const char* path, struct ::stat64* st) {
  struct ::stat tmp{};
  const int rc = lstat(path, &tmp);
  if (rc == 0) copy_stat_to_stat64(tmp, st);
  return rc;
}

int fstat64(int fd, struct ::stat64* st) {
  struct ::stat tmp{};
  const int rc = fstat(fd, &tmp);
  if (rc == 0) copy_stat_to_stat64(tmp, st);
  return rc;
}

int __xstat(int ver, const char* path, struct ::stat* st) {
  (void)ver;
  return stat(path, st);
}

int __lxstat(int ver, const char* path, struct ::stat* st) {
  (void)ver;
  return lstat(path, st);
}

int __fxstat(int ver, int fd, struct ::stat* st) {
  (void)ver;
  return fstat(fd, st);
}

int rename(const char* from, const char* to) {
  ReentryGuard guard;
  if (!guard.outermost()) return real().rename(from, to);
  return router().rename(from, to);
}

// ---------------------------------------------------------------------------
// *at() variants and statx. Modern coreutils (cp, mv, rm) reach files via
// dirfd-relative calls, so interposing only the classic entry points is not
// enough. Calls relative to AT_FDCWD (or with absolute paths) are routed
// through the path-based router; calls relative to a real directory fd pass
// through, since PLFS containers are only addressed by path here.
// ---------------------------------------------------------------------------

static bool routable_at(int dirfd, const char* path) {
  return path != nullptr && (dirfd == AT_FDCWD || path[0] == '/');
}

int openat(int dirfd, const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0
#ifdef O_TMPFILE
      || (flags & O_TMPFILE) == O_TMPFILE
#endif
  ) {
    va_list args;
    va_start(args, flags);
    mode = static_cast<mode_t>(va_arg(args, int));
    va_end(args);
  }
  using OpenatFn = int (*)(int, const char*, int, ...);
  static OpenatFn real_openat = next_symbol<OpenatFn>("openat");
  ReentryGuard guard;
  if (guard.outermost() && routable_at(dirfd, path)) {
    return router().open(path, flags, mode);
  }
  return real_openat(dirfd, path, flags, mode);
}

int openat64(int dirfd, const char* path, int flags, ...) {
  mode_t mode = 0;
  if ((flags & O_CREAT) != 0
#ifdef O_TMPFILE
      || (flags & O_TMPFILE) == O_TMPFILE
#endif
  ) {
    va_list args;
    va_start(args, flags);
    mode = static_cast<mode_t>(va_arg(args, int));
    va_end(args);
  }
  return openat(dirfd, path, flags | O_LARGEFILE, mode);
}

int fstatat(int dirfd, const char* path, struct ::stat* st, int at_flags) {
  using FstatatFn = int (*)(int, const char*, struct ::stat*, int);
  static FstatatFn real_fstatat = next_symbol<FstatatFn>("fstatat");
  ReentryGuard guard;
  if (guard.outermost() && routable_at(dirfd, path) &&
      router().path_is_container(path)) {
    // Containers are never symlinks, so AT_SYMLINK_NOFOLLOW is moot.
    return router().stat(path, st);
  }
  return real_fstatat(dirfd, path, st, at_flags);
}

int fstatat64(int dirfd, const char* path, struct ::stat64* st, int at_flags) {
  // Same layout bug as the stat64 family above: never alias the stat64
  // buffer as a struct stat — fill one properly and convert.
  struct ::stat tmp{};
  const int rc = fstatat(dirfd, path, &tmp, at_flags);
  if (rc == 0) copy_stat_to_stat64(tmp, st);
  return rc;
}

int newfstatat(int dirfd, const char* path, struct ::stat* st, int at_flags) {
  return fstatat(dirfd, path, st, at_flags);
}

int __fxstatat(int ver, int dirfd, const char* path, struct ::stat* st,
               int at_flags) {
  (void)ver;
  return fstatat(dirfd, path, st, at_flags);
}

int statx(int dirfd, const char* path, int at_flags, unsigned int mask,
          struct ::statx* stx) {
  using StatxFn = int (*)(int, const char*, int, unsigned int,
                          struct ::statx*);
  static StatxFn real_statx = next_symbol<StatxFn>("statx");
  ReentryGuard guard;
  if (guard.outermost() && routable_at(dirfd, path) &&
      router().path_is_container(path)) {
    struct ::stat st{};
    if (router().stat(path, &st) != 0) return -1;
    *stx = {};
    stx->stx_mask = STATX_BASIC_STATS & mask;
    stx->stx_blksize = static_cast<std::uint32_t>(st.st_blksize);
    stx->stx_nlink = static_cast<std::uint32_t>(st.st_nlink);
    stx->stx_uid = st.st_uid;
    stx->stx_gid = st.st_gid;
    stx->stx_mode = static_cast<std::uint16_t>(st.st_mode);
    stx->stx_size = static_cast<std::uint64_t>(st.st_size);
    stx->stx_blocks = static_cast<std::uint64_t>(st.st_blocks);
    stx->stx_mtime.tv_sec = st.st_mtime;
    stx->stx_atime.tv_sec = st.st_atime;
    stx->stx_ctime.tv_sec = st.st_ctime;
    return 0;
  }
  return real_statx(dirfd, path, at_flags, mask, stx);
}

int unlinkat(int dirfd, const char* path, int at_flags) {
  using UnlinkatFn = int (*)(int, const char*, int);
  static UnlinkatFn real_unlinkat = next_symbol<UnlinkatFn>("unlinkat");
  ReentryGuard guard;
  if (guard.outermost() && routable_at(dirfd, path) &&
      (at_flags & AT_REMOVEDIR) == 0 && router().path_is_container(path)) {
    return router().unlink(path);
  }
  return real_unlinkat(dirfd, path, at_flags);
}

int renameat(int olddirfd, const char* oldpath, int newdirfd,
             const char* newpath) {
  using RenameatFn = int (*)(int, const char*, int, const char*);
  static RenameatFn real_renameat = next_symbol<RenameatFn>("renameat");
  ReentryGuard guard;
  if (guard.outermost() && routable_at(olddirfd, oldpath) &&
      routable_at(newdirfd, newpath) && router().path_is_container(oldpath)) {
    return router().rename(oldpath, newpath);
  }
  return real_renameat(olddirfd, oldpath, newdirfd, newpath);
}

int faccessat(int dirfd, const char* path, int amode, int at_flags) {
  using FaccessatFn = int (*)(int, const char*, int, int);
  static FaccessatFn real_faccessat = next_symbol<FaccessatFn>("faccessat");
  ReentryGuard guard;
  if (guard.outermost() && routable_at(dirfd, path) &&
      router().path_is_container(path)) {
    return router().access(path, amode);
  }
  return real_faccessat(dirfd, path, amode, at_flags);
}

// ---------------------------------------------------------------------------
// fd-to-fd fast paths. copy_file_range/sendfile move bytes entirely inside
// the kernel, which would bypass PLFS and land data in the shadow tmpfile.
// A read-only PLFS source over an *identity-flat* container (one compacted
// data dropping, logical == physical) gets true zero-copy: the real kernel
// call runs against the backing dropping with the logical offset passed
// straight through. Every other PLFS combination is emulated with a
// user-space read/write loop through the router; pure non-PLFS calls pass
// through untouched.
// ---------------------------------------------------------------------------

extern "C++" {
namespace {

/// flat_zero_copy result meaning "not a flat read-only source — emulate".
constexpr ssize_t kNotFlat = -2;

/// When `fd` is a read-only PLFS fd whose container is identity-flat, an
/// O_RDONLY real fd on the backing dropping (caller closes); `size_out`
/// gets the logical size. -1 otherwise.
int flat_in_fd(int fd, std::uint64_t* size_out) {
  auto of = router().fd_table().lookup(fd);
  if (of == nullptr) return -1;
  if ((of->flags() & O_ACCMODE) != O_RDONLY) return -1;
  auto flat = ldplfs::plfs::plfs_flat_dropping(of->handle().path());
  if (!flat) return -1;
  *size_out = flat.value().size;
  return real().open(flat.value().dropping_abs.c_str(), O_RDONLY, 0);
}

/// Shared zero-copy harness: resolve the flat dropping behind `fd_in`,
/// resolve the source offset (explicit or the shadow cursor), clamp to the
/// logical EOF, run `do_copy(src_fd, offset, want)` (the real
/// copy_file_range or sendfile against the dropping), then write back the
/// offset/cursor. Returns kNotFlat when the source does not qualify; must
/// run inside the reentry guard.
template <typename DoCopy>
ssize_t flat_zero_copy(int fd_in, off64_t* off_in, size_t len,
                       DoCopy&& do_copy) {
  std::uint64_t size = 0;
  const int src = flat_in_fd(fd_in, &size);
  if (src < 0) return kNotFlat;
  off64_t local;
  if (off_in != nullptr) {
    local = *off_in;
  } else {
    const off_t cur = router().lseek(fd_in, 0, SEEK_CUR);
    if (cur < 0) {
      const int saved = errno;
      real().close(src);
      errno = saved;
      return -1;
    }
    local = cur;
  }
  // The dropping holds exactly the logical bytes, so clamping to the
  // logical size and to the dropping EOF are the same thing.
  const std::uint64_t avail =
      (local < 0 || static_cast<std::uint64_t>(local) >= size)
          ? 0
          : size - static_cast<std::uint64_t>(local);
  const size_t want = static_cast<size_t>(std::min<std::uint64_t>(len, avail));
  ssize_t n = 0;
  if (want > 0) n = do_copy(src, local, want);
  const int saved = errno;
  real().close(src);
  errno = saved;
  if (n < 0) return -1;
  if (n > 0) {
    if (off_in != nullptr) {
      *off_in = local + n;
    } else if (router().lseek(fd_in, static_cast<off_t>(local + n),
                              SEEK_SET) < 0) {
      return -1;
    }
    ldplfs::stats::add(ldplfs::stats::Counter::kZeroCopyOps);
    ldplfs::stats::add(ldplfs::stats::Counter::kZeroCopyBytes,
                       static_cast<std::uint64_t>(n));
  }
  return n;
}

ssize_t emulated_copy(int fd_in, off64_t* off_in, int fd_out,
                      off64_t* off_out, size_t len) {
  // Reads and writes below go through the interposed symbols on purpose:
  // each side independently routes to PLFS or the real fd.
  static thread_local char buf[1 << 20];
  size_t total = 0;
  while (total < len) {
    const size_t chunk = std::min(len - total, sizeof buf);
    ssize_t n;
    if (off_in != nullptr) {
      n = pread(fd_in, buf, chunk, static_cast<off_t>(*off_in));
      if (n > 0) *off_in += n;
    } else {
      n = read(fd_in, buf, chunk);
    }
    if (n < 0) return total > 0 ? static_cast<ssize_t>(total) : -1;
    if (n == 0) break;
    ssize_t w;
    if (off_out != nullptr) {
      w = pwrite(fd_out, buf, static_cast<size_t>(n),
                 static_cast<off_t>(*off_out));
      if (w > 0) *off_out += w;
    } else {
      w = write(fd_out, buf, static_cast<size_t>(n));
    }
    if (w < 0) return total > 0 ? static_cast<ssize_t>(total) : -1;
    total += static_cast<size_t>(w);
    if (w < n) break;
  }
  return static_cast<ssize_t>(total);
}

}  // namespace
}  // extern "C++"

ssize_t copy_file_range(int fd_in, off64_t* off_in, int fd_out,
                        off64_t* off_out, size_t len, unsigned int cfr_flags) {
  using CfrFn =
      ssize_t (*)(int, off64_t*, int, off64_t*, size_t, unsigned int);
  static CfrFn real_cfr = next_symbol<CfrFn>("copy_file_range");
  {
    ReentryGuard guard;
    const bool in_plfs = guard.outermost() && router().is_plfs_fd(fd_in);
    const bool out_plfs = guard.outermost() && router().is_plfs_fd(fd_out);
    if (!guard.outermost() || (!in_plfs && !out_plfs)) {
      return real_cfr(fd_in, off_in, fd_out, off_out, len, cfr_flags);
    }
    if (in_plfs && !out_plfs) {
      const ssize_t n = flat_zero_copy(
          fd_in, off_in, len, [&](int src, off64_t at, size_t want) {
            off64_t src_off = at;
            return real_cfr(src, &src_off, fd_out, off_out, want, cfr_flags);
          });
      if (n != kNotFlat) return n;
    }
  }
  // Emulate outside the guard so the per-chunk read/write route normally.
  return emulated_copy(fd_in, off_in, fd_out, off_out, len);
}

ssize_t sendfile(int out_fd, int in_fd, off_t* offset, size_t count) {
  using SendfileFn = ssize_t (*)(int, int, off_t*, size_t);
  static SendfileFn real_sendfile = next_symbol<SendfileFn>("sendfile");
  off64_t off64_local = offset != nullptr ? *offset : 0;
  off64_t* off_in = offset != nullptr ? &off64_local : nullptr;
  {
    ReentryGuard guard;
    const bool in_plfs = guard.outermost() && router().is_plfs_fd(in_fd);
    const bool out_plfs = guard.outermost() && router().is_plfs_fd(out_fd);
    if (!guard.outermost() || (!in_plfs && !out_plfs)) {
      return real_sendfile(out_fd, in_fd, offset, count);
    }
    if (in_plfs && !out_plfs) {
      const ssize_t zn = flat_zero_copy(
          in_fd, off_in, count, [&](int src, off64_t at, size_t want) {
            off_t src_off = static_cast<off_t>(at);
            return real_sendfile(out_fd, src, &src_off, want);
          });
      if (zn != kNotFlat) {
        if (offset != nullptr && zn >= 0) {
          *offset = static_cast<off_t>(off64_local);
        }
        return zn;
      }
    }
  }
  const ssize_t n = emulated_copy(in_fd, off_in, out_fd, nullptr, count);
  if (offset != nullptr && n >= 0) *offset = static_cast<off_t>(off64_local);
  return n;
}

ssize_t sendfile64(int out_fd, int in_fd, off64_t* offset, size_t count) {
  using Sendfile64Fn = ssize_t (*)(int, int, off64_t*, size_t);
  static Sendfile64Fn real_sendfile64 = next_symbol<Sendfile64Fn>("sendfile64");
  {
    ReentryGuard guard;
    const bool in_plfs = guard.outermost() && router().is_plfs_fd(in_fd);
    const bool out_plfs = guard.outermost() && router().is_plfs_fd(out_fd);
    if (!guard.outermost() || (!in_plfs && !out_plfs)) {
      return real_sendfile64(out_fd, in_fd, offset, count);
    }
    if (in_plfs && !out_plfs) {
      const ssize_t zn = flat_zero_copy(
          in_fd, offset, count, [&](int src, off64_t at, size_t want) {
            off64_t src_off = at;
            return real_sendfile64(out_fd, src, &src_off, want);
          });
      if (zn != kNotFlat) return zn;
    }
  }
  const ssize_t n = emulated_copy(in_fd, offset, out_fd, nullptr, count);
  return n;
}

int fallocate(int fd, int mode, off_t offset, off_t len) {
  using FallocateFn = int (*)(int, int, off_t, off_t);
  static FallocateFn real_fallocate = next_symbol<FallocateFn>("fallocate");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_fallocate(fd, mode, offset, len);
  }
  // Preallocation is meaningless for a log-structured container; report
  // success so cp/tar-style preallocation does not abort the copy.
  (void)mode;
  (void)offset;
  (void)len;
  return 0;
}

int posix_fallocate(int fd, off_t offset, off_t len) {
  using PfFn = int (*)(int, off_t, off_t);
  static PfFn real_pf = next_symbol<PfFn>("posix_fallocate");
  ReentryGuard guard;
  if (!guard.outermost() || !router().is_plfs_fd(fd)) {
    return real_pf(fd, offset, len);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// mmap. An identity-flat (compacted) container's one data dropping mirrors
// the logical file byte-for-byte, so a read-only mapping request is served
// by mapping the dropping itself at the caller's offset — a real,
// kernel-backed mapping (SplitFS-style data-path split; mmap consumers like
// GNU grep get the page cache instead of the refusal slow path). Writable
// MAP_SHARED requests and log-structured containers keep the deterministic
// ENODEV refusal so callers fall back to read(2). mmap and mmap64 share the
// off64_t implementation — the old route through mmap truncated large
// offsets via the off_t cast.
// ---------------------------------------------------------------------------

extern "C++" {
namespace {

/// Application mappings served from droppings (base addr → length). Purely
/// bookkeeping: the kernel owns the pages and munmap works regardless; the
/// table keeps the served-map population observable (tests, diagnostics).
std::mutex g_app_maps_mu;
std::map<void*, size_t>& app_maps() {
  static auto* maps = new std::map<void*, size_t>();  // never destroyed
  return *maps;
}

void* mmap_impl(void* addr, size_t length, int prot, int mmap_flags, int fd,
                off64_t offset) {
  using Mmap64Fn = void* (*)(void*, size_t, int, int, int, off64_t);
  static Mmap64Fn real_mmap64 = [] {
    auto fn = next_symbol<Mmap64Fn>("mmap64");
    // LP64 Linux: off_t == off64_t, mmap has the same ABI.
    return fn != nullptr ? fn : next_symbol<Mmap64Fn>("mmap");
  }();
  ReentryGuard guard;
  if (!guard.outermost() || fd < 0 || (mmap_flags & MAP_ANONYMOUS) != 0 ||
      !router().is_plfs_fd(fd)) {
    return real_mmap64(addr, length, prot, mmap_flags, fd, offset);
  }

  // Serve when nothing can write through the mapping into the dropping:
  // the fd is read-only and the request is PROT_READ or MAP_PRIVATE (COW
  // keeps even PROT_WRITE|MAP_PRIVATE stores out of the file).
  auto of = router().fd_table().lookup(fd);
  const bool no_shared_writes =
      (prot & PROT_WRITE) == 0 || (mmap_flags & MAP_PRIVATE) != 0;
  if (of != nullptr && no_shared_writes &&
      (of->flags() & O_ACCMODE) == O_RDONLY) {
    auto flat = ldplfs::plfs::plfs_flat_dropping(of->handle().path());
    if (flat) {
      const int dfd = real().open(flat.value().dropping_abs.c_str(),
                                  O_RDONLY, 0);
      if (dfd >= 0) {
        void* base = real_mmap64(addr, length, prot, mmap_flags, dfd, offset);
        const int saved = errno;
        real().close(dfd);
        errno = saved;
        if (base != MAP_FAILED) {
          std::lock_guard lock(g_app_maps_mu);
          app_maps()[base] = length;
          ldplfs::stats::add(ldplfs::stats::Counter::kMmapAppMaps);
        }
        // Success, or the kernel's own verdict (EINVAL for a misaligned
        // offset behaves exactly as it would on a plain file).
        return base;
      }
    }
  }

  // Log-structured container (or shared-writable request): mapping the
  // shadow tmpfile would show garbage; refuse deterministically so callers
  // (e.g. GNU grep) fall back to read(2).
  ldplfs::stats::add(ldplfs::stats::Counter::kMmapFallbacks);
  errno = ENODEV;
  return MAP_FAILED;
}

}  // namespace
}  // extern "C++"

void* mmap(void* addr, size_t length, int prot, int mmap_flags, int fd,
           off_t offset) {
  return mmap_impl(addr, length, prot, mmap_flags, fd,
                   static_cast<off64_t>(offset));
}

void* mmap64(void* addr, size_t length, int prot, int mmap_flags, int fd,
             off64_t offset) {
  return mmap_impl(addr, length, prot, mmap_flags, fd, offset);
}

int munmap(void* addr, size_t length) {
  using MunmapFn = int (*)(void*, size_t);
  static MunmapFn real_munmap = next_symbol<MunmapFn>("munmap");
  {
    // Retire bookkeeping for a full unmap of a served base address; partial
    // unmaps keep the entry (the kernel splits the VMA either way).
    std::lock_guard lock(g_app_maps_mu);
    auto& maps = app_maps();
    if (auto it = maps.find(addr); it != maps.end() && length >= it->second) {
      maps.erase(it);
    }
  }
  return real_munmap(addr, length);
}

// ---------------------------------------------------------------------------
// stdio interposition: fopen on a PLFS path returns a fopencookie-backed
// FILE* whose cookie I/O functions drive the router. fread/fwrite/fseek/
// fclose then work unmodified — this is what lets cat/grep/md5sum (stdio
// users) operate on containers (paper §III-D).
// ---------------------------------------------------------------------------

static ssize_t cookie_read(void* cookie, char* buf, size_t size) {
  const int fd = static_cast<int>(reinterpret_cast<intptr_t>(cookie));
  ReentryGuard guard;
  return router().read(fd, buf, size);
}

static ssize_t cookie_write(void* cookie, const char* buf, size_t size) {
  const int fd = static_cast<int>(reinterpret_cast<intptr_t>(cookie));
  ReentryGuard guard;
  const ssize_t n = router().write(fd, buf, size);
  // stdio treats short writes as errors; our writes are all-or-nothing.
  return n;
}

static int cookie_seek(void* cookie, off64_t* offset, int whence) {
  const int fd = static_cast<int>(reinterpret_cast<intptr_t>(cookie));
  ReentryGuard guard;
  const off_t result =
      router().lseek(fd, static_cast<off_t>(*offset), whence);
  if (result < 0) return -1;
  *offset = result;
  return 0;
}

static int cookie_close(void* cookie) {
  const int fd = static_cast<int>(reinterpret_cast<intptr_t>(cookie));
  ReentryGuard guard;
  return router().close(fd);
}

FILE* fopen(const char* path, const char* mode) {
  using FopenFn = FILE* (*)(const char*, const char*);
  static FopenFn real_fopen = next_symbol<FopenFn>("fopen");

  ReentryGuard guard;
  if (!guard.outermost() || path == nullptr || mode == nullptr) {
    return real_fopen(path, mode);
  }
  if (!router().path_in_mount(path)) return real_fopen(path, mode);

  // Translate the stdio mode string to open(2) flags, honoring the glibc
  // modifiers: '+' (read-write), 'x' (O_EXCL — dropping it silently
  // truncated existing containers on "wx"), 'e' (O_CLOEXEC), and 'b'/'t'
  // and ',ccs=' charset suffixes, which change nothing at the fd layer and
  // are explicitly ignored rather than tripping EINVAL.
  int flags;
  const bool plus = std::strchr(mode, '+') != nullptr;
  switch (mode[0]) {
    case 'r': flags = plus ? O_RDWR : O_RDONLY; break;
    case 'w': flags = (plus ? O_RDWR : O_WRONLY) | O_CREAT | O_TRUNC; break;
    case 'a': flags = (plus ? O_RDWR : O_WRONLY) | O_CREAT | O_APPEND; break;
    default: errno = EINVAL; return nullptr;
  }
  for (const char* m = mode + 1; *m != '\0' && *m != ','; ++m) {
    switch (*m) {
      case 'x': flags |= O_EXCL; break;
      case 'e': flags |= O_CLOEXEC; break;
      default: break;  // 'b', 't', '+', 'm' — no fd-level effect
    }
  }
  const int fd = router().open(path, flags, 0644);
  if (fd < 0) return nullptr;
  if (!router().is_plfs_fd(fd)) {
    // Plain file inside the backend: hand it to stdio the normal way.
    FILE* stream = ::fdopen(fd, mode);
    if (stream == nullptr) router().close(fd);
    return stream;
  }

  cookie_io_functions_t io{};
  io.read = cookie_read;
  io.write = cookie_write;
  io.seek = cookie_seek;
  io.close = cookie_close;
  FILE* stream =
      ::fopencookie(reinterpret_cast<void*>(static_cast<intptr_t>(fd)),
                    mode, io);
  if (stream == nullptr) router().close(fd);
  return stream;
}

FILE* fopen64(const char* path, const char* mode) { return fopen(path, mode); }

}  // extern "C"
