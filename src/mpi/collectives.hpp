// Cost model for the MPI collectives the I/O middleware relies on.
//
// Standard LogP-flavoured estimates: tree barriers/allreduces in
// log2(p) rounds; the collective-buffering data exchange as a gather of
// each node's data onto its aggregator (intra-node through shared memory,
// negligible network), plus a small allreduce for offset agreement. These
// costs are what make adding processes per node slightly *slow down*
// node-constant I/O in Fig. 3 — the paper calls out exactly this on-node
// communication/synchronisation overhead.
#pragma once

#include <bit>
#include <cstdint>

#include "mpi/topology.hpp"

namespace ldplfs::mpi {

struct CollectiveModel {
  double point_latency_s = 3e-6;   // one message hop
  double memcpy_bps = 6e9;         // intra-node staging rate
  double nic_bps = 3.2e9;          // inter-node rate (used when ppn spans)

  [[nodiscard]] static std::uint32_t log2_ceil(std::uint32_t p) {
    return p <= 1 ? 0 : 32 - std::countl_zero(p - 1);
  }

  /// Barrier / small allreduce across p ranks.
  [[nodiscard]] double barrier_s(std::uint32_t p) const {
    return 2.0 * point_latency_s * log2_ceil(p);
  }

  /// Two-phase collective-buffering exchange: ranks redistribute their
  /// (generally strided) data onto the aggregators. Intra-node shares move
  /// at memcpy speed; with strided file layouts roughly half of each
  /// node's aggregate crosses the network to remote aggregators.
  [[nodiscard]] double cb_exchange_s(const Topology& topo,
                                     std::uint64_t bytes_per_rank) const {
    const double node_bytes =
        static_cast<double>(bytes_per_rank) * static_cast<double>(topo.ppn);
    const double remote = 0.5 * node_bytes / nic_bps;
    double staged = 0.0;
    if (topo.ppn > 1) {
      staged = static_cast<double>(bytes_per_rank) *
               static_cast<double>(topo.ppn - 1) / memcpy_bps;
    }
    return staged + remote + barrier_s(topo.nranks());
  }

  /// Read-side redistribution: aggregator scatters to node peers.
  [[nodiscard]] double cb_scatter_s(const Topology& topo,
                                    std::uint64_t bytes_per_rank) const {
    return cb_exchange_s(topo, bytes_per_rank);
  }
};

}  // namespace ldplfs::mpi
