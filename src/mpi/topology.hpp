// Process topology for simulated MPI jobs: ranks laid out block-wise over
// nodes (rank / ppn = node), matching how mpirun fills nodes on the paper's
// clusters. Collective buffering uses one aggregator per node (the ROMIO
// default the paper's footnote 3 cites).
#pragma once

#include <cstdint>
#include <vector>

namespace ldplfs::mpi {

struct Topology {
  std::uint32_t nodes = 1;
  std::uint32_t ppn = 1;  // processes per node

  [[nodiscard]] std::uint32_t nranks() const { return nodes * ppn; }
  [[nodiscard]] std::uint32_t node_of(std::uint32_t rank) const {
    return rank / ppn;
  }
  [[nodiscard]] bool is_aggregator(std::uint32_t rank) const {
    return rank % ppn == 0;  // first rank on each node
  }
  [[nodiscard]] std::uint32_t aggregator_of_node(std::uint32_t node) const {
    return node * ppn;
  }
  [[nodiscard]] std::vector<std::uint32_t> aggregators() const {
    std::vector<std::uint32_t> out;
    out.reserve(nodes);
    for (std::uint32_t n = 0; n < nodes; ++n) {
      out.push_back(aggregator_of_node(n));
    }
    return out;
  }
};

}  // namespace ldplfs::mpi
