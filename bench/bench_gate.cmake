# The tier-1 regression gate, self-testing and machine-independent.
#
# A committed baseline of absolute seconds would make tier-1 flaky on any
# machine other than the one that produced it, so the gate instead proves
# both halves of the detector *on this machine, in this session*:
#
#   1. A/A: two fresh runs of the same build must compare clean
#      (exit 0) — the detector does not fire on run-to-run noise.
#   2. Injection: a candidate run with LDPLFS_FAULTS="pwrite:delay=2000"
#      (2 ms per backend pwrite, a 4-6x slowdown at smoke scale) must be
#      flagged as a statistically significant regression (exit 1).
#   3. Injection, read side: LDPLFS_FAULTS="pread:delay=2000" must be
#      flagged too — strided_readv is in the measured set, so a data-
#      sieving regression that multiplies the pread count (or any
#      slowdown on the batch read path) cannot slip through the gate.
#
# Thresholds: reps 6 so full separation under the exact Mann-Whitney
# distribution gives p = 2/924 < alpha = 0.01, and --min-effect 0.5 so
# back-to-back machine drift (measured ~±12% median) has 4x headroom while
# the injected effect clears it by another ~8x.
#
# Run as: cmake -DLDP_BENCH=<binary> -DWORK=<scratch dir> -P bench_gate.cmake
if(NOT DEFINED LDP_BENCH OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DLDP_BENCH=<ldp-bench binary> -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

set(measure_args --scenario strided_write,mixed_rw,strided_readv --reps 6 --warmup 1 --seed 7)

function(run_measure json)
  execute_process(
    COMMAND "${LDP_BENCH}" ${measure_args} --json "${json}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "measurement run failed (exit ${rc}):\n${out}${err}")
  endif()
endfunction()

run_measure("${WORK}/base.json")
run_measure("${WORK}/aa.json")

set(ENV{LDPLFS_FAULTS} "pwrite:delay=2000")
run_measure("${WORK}/delayed.json")
unset(ENV{LDPLFS_FAULTS})

set(ENV{LDPLFS_FAULTS} "pread:delay=2000")
run_measure("${WORK}/read_delayed.json")
unset(ENV{LDPLFS_FAULTS})

# Half 1: A/A must be clean.
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/base.json" "${WORK}/aa.json"
          --alpha 0.01 --min-effect 0.5
  RESULT_VARIABLE aa_rc OUTPUT_VARIABLE aa_out ERROR_VARIABLE aa_err)
if(NOT aa_rc EQUAL 0)
  message(FATAL_ERROR
    "gate FAILED: A/A comparison flagged a regression (exit ${aa_rc}) — "
    "the detector fires on noise:\n${aa_out}${aa_err}")
endif()

# Half 2: the injected delay must be caught.
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/base.json" "${WORK}/delayed.json"
          --alpha 0.01 --min-effect 0.5
  RESULT_VARIABLE inj_rc OUTPUT_VARIABLE inj_out ERROR_VARIABLE inj_err)
if(NOT inj_rc EQUAL 1)
  message(FATAL_ERROR
    "gate FAILED: injected 2 ms/pwrite delay was NOT flagged "
    "(exit ${inj_rc}, expected 1) — the detector is blind:\n${inj_out}${inj_err}")
endif()

# Half 3: the injected read delay must be caught (the strided_readv batch
# still issues real preads — one covering read per dropping — so per-pread
# delay lands squarely on it).
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/base.json" "${WORK}/read_delayed.json"
          --alpha 0.01 --min-effect 0.5
  RESULT_VARIABLE rinj_rc OUTPUT_VARIABLE rinj_out ERROR_VARIABLE rinj_err)
if(NOT rinj_rc EQUAL 1)
  message(FATAL_ERROR
    "gate FAILED: injected 2 ms/pread delay was NOT flagged "
    "(exit ${rinj_rc}, expected 1) — the read-side detector is blind:\n${rinj_out}${rinj_err}")
endif()

message(STATUS "bench gate passed: A/A clean, injected write and read delays flagged")
