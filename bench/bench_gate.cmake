# The tier-1 regression gate, self-testing and machine-independent.
#
# A committed baseline of absolute seconds would make tier-1 flaky on any
# machine other than the one that produced it, so the gate instead proves
# both halves of the detector *on this machine, in this session*:
#
#   1. A/A: two fresh runs of the same build must compare clean
#      (exit 0) — the detector does not fire on run-to-run noise.
#   2. Injection: a candidate run with LDPLFS_FAULTS="pwrite:delay=2000"
#      (2 ms per backend pwrite, a 4-6x slowdown at smoke scale) must be
#      flagged as a statistically significant regression (exit 1).
#   3. Injection, read side: LDPLFS_FAULTS="pread:delay=2000" must be
#      flagged too — strided_readv is in the measured set, so a data-
#      sieving regression that multiplies the pread count (or any
#      slowdown on the batch read path) cannot slip through the gate.
#   4. Zero-copy immunity: flat_strided_read runs with LDPLFS_MMAP_READS
#      pinned on, so a per-pread delay must NOT move it — the mapped path
#      issues no preads at all. A clean compare here is the machine-checked
#      proof of "zero preads on the mapped path".
#   5. Fallback storm: the same pread delay WITH
#      LDPLFS_MMAP_FORCE_FALLBACK=1 (every map acquire fails, every read
#      drops to the pread/sieve path) must be flagged — a regression that
#      silently degrades mapped reads into preads cannot slip through.
#
# Thresholds: reps 6 so full separation under the exact Mann-Whitney
# distribution gives p = 2/924 < alpha = 0.01, and --min-effect 0.5 so
# back-to-back machine drift (measured ~±12% median) has 4x headroom while
# the injected effect clears it by another ~8x.
#
# Run as: cmake -DLDP_BENCH=<binary> -DWORK=<scratch dir> -P bench_gate.cmake
if(NOT DEFINED LDP_BENCH OR NOT DEFINED WORK)
  message(FATAL_ERROR "pass -DLDP_BENCH=<ldp-bench binary> -DWORK=<scratch dir>")
endif()

file(REMOVE_RECURSE "${WORK}")
file(MAKE_DIRECTORY "${WORK}")

set(measure_args --scenario strided_write,mixed_rw,strided_readv --reps 6 --warmup 1 --seed 7)
set(flat_args --scenario flat_strided_read --reps 6 --warmup 1 --seed 7)

function(run_measure json)
  execute_process(
    COMMAND "${LDP_BENCH}" ${measure_args} --json "${json}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "measurement run failed (exit ${rc}):\n${out}${err}")
  endif()
endfunction()

function(run_flat json)
  execute_process(
    COMMAND "${LDP_BENCH}" ${flat_args} --json "${json}"
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "flat_read run failed (exit ${rc}):\n${out}${err}")
  endif()
endfunction()

run_measure("${WORK}/base.json")
run_measure("${WORK}/aa.json")

set(ENV{LDPLFS_FAULTS} "pwrite:delay=2000")
run_measure("${WORK}/delayed.json")
unset(ENV{LDPLFS_FAULTS})

set(ENV{LDPLFS_FAULTS} "pread:delay=2000")
run_measure("${WORK}/read_delayed.json")
unset(ENV{LDPLFS_FAULTS})

run_flat("${WORK}/flat_base.json")

set(ENV{LDPLFS_FAULTS} "pread:delay=2000")
run_flat("${WORK}/flat_mapped_delayed.json")
set(ENV{LDPLFS_MMAP_FORCE_FALLBACK} "1")
run_flat("${WORK}/flat_storm.json")
unset(ENV{LDPLFS_MMAP_FORCE_FALLBACK})
unset(ENV{LDPLFS_FAULTS})

# Half 1: A/A must be clean.
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/base.json" "${WORK}/aa.json"
          --alpha 0.01 --min-effect 0.5
  RESULT_VARIABLE aa_rc OUTPUT_VARIABLE aa_out ERROR_VARIABLE aa_err)
if(NOT aa_rc EQUAL 0)
  message(FATAL_ERROR
    "gate FAILED: A/A comparison flagged a regression (exit ${aa_rc}) — "
    "the detector fires on noise:\n${aa_out}${aa_err}")
endif()

# Half 2: the injected delay must be caught.
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/base.json" "${WORK}/delayed.json"
          --alpha 0.01 --min-effect 0.5
  RESULT_VARIABLE inj_rc OUTPUT_VARIABLE inj_out ERROR_VARIABLE inj_err)
if(NOT inj_rc EQUAL 1)
  message(FATAL_ERROR
    "gate FAILED: injected 2 ms/pwrite delay was NOT flagged "
    "(exit ${inj_rc}, expected 1) — the detector is blind:\n${inj_out}${inj_err}")
endif()

# Half 3: the injected read delay must be caught (the strided_readv batch
# still issues real preads — one covering read per dropping — so per-pread
# delay lands squarely on it).
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/base.json" "${WORK}/read_delayed.json"
          --alpha 0.01 --min-effect 0.5
  RESULT_VARIABLE rinj_rc OUTPUT_VARIABLE rinj_out ERROR_VARIABLE rinj_err)
if(NOT rinj_rc EQUAL 1)
  message(FATAL_ERROR
    "gate FAILED: injected 2 ms/pread delay was NOT flagged "
    "(exit ${rinj_rc}, expected 1) — the read-side detector is blind:\n${rinj_out}${rinj_err}")
endif()

# Half 4: the mapped read path must shrug off a per-pread delay — it does
# not issue preads. Anything flagged here means reads are leaking onto the
# pread path while LDPLFS_MMAP_READS says they should be served by the map.
# --min-effect 4.0: the reps are ~100 µs, so the armed fault machinery's
# fixed bookkeeping overhead alone can register as a sub-2x change; a
# single real 2 ms delayed pread per rep is still a >20x swing.
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/flat_base.json"
          "${WORK}/flat_mapped_delayed.json" --alpha 0.01 --min-effect 4.0
  RESULT_VARIABLE imm_rc OUTPUT_VARIABLE imm_out ERROR_VARIABLE imm_err)
if(NOT imm_rc EQUAL 0)
  message(FATAL_ERROR
    "gate FAILED: mapped flat_strided_read slowed under a pread delay "
    "(exit ${imm_rc}) — the zero-copy path is issuing preads:\n${imm_out}${imm_err}")
endif()

# Half 5: a fallback storm (every map acquire refused, every read demoted
# to the delayed pread path) must be flagged.
execute_process(
  COMMAND "${LDP_BENCH}" --compare "${WORK}/flat_base.json"
          "${WORK}/flat_storm.json" --alpha 0.01 --min-effect 0.5
  RESULT_VARIABLE storm_rc OUTPUT_VARIABLE storm_out ERROR_VARIABLE storm_err)
if(NOT storm_rc EQUAL 1)
  message(FATAL_ERROR
    "gate FAILED: mmap fallback storm was NOT flagged "
    "(exit ${storm_rc}, expected 1) — a silent mapped-to-pread demotion "
    "would slip through:\n${storm_out}${storm_err}")
endif()

message(STATUS
  "bench gate passed: A/A clean, injected write/read delays flagged, "
  "mapped path pread-immune, fallback storm flagged")
