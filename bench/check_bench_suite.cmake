# Asserts that an ldp-bench --json report carries the versioned schema with
# per-scenario raw samples and summary statistics for all nine scenario
# families. Run as: cmake -DJSON=<path> -P check_bench_suite.cmake
if(NOT DEFINED JSON)
  message(FATAL_ERROR "pass -DJSON=<path to BENCH_suite json>")
endif()
file(READ "${JSON}" body)
foreach(needle
    # envelope
    "\"schema_version\": 4"
    "\"tool\": \"ldp-bench\""
    "\"suite\""
    "\"config\""
    "\"seed\""
    "\"reps\""
    "\"scenarios\""
    # all nine scenario families
    "\"family\": \"unix_tools\""
    "\"family\": \"n1_strided\""
    "\"family\": \"list_io\""
    "\"family\": \"flat_read\""
    "\"family\": \"nn_per_process\""
    "\"family\": \"metadata_storm\""
    "\"family\": \"mixed_rw\""
    "\"family\": \"crash_recovery\""
    "\"family\": \"multiproc\""
    # the full scenario matrix
    "\"name\": \"unix_cp\""
    "\"name\": \"unix_grep\""
    "\"name\": \"unix_md5sum\""
    "\"name\": \"strided_write\""
    "\"name\": \"strided_read\""
    "\"name\": \"strided_readv\""
    "\"name\": \"coalesced_write\""
    "\"name\": \"flat_seq_read\""
    "\"name\": \"flat_strided_read\""
    "\"name\": \"nn_write\""
    "\"name\": \"metadata_storm\""
    "\"name\": \"mixed_rw\""
    "\"name\": \"crash_recovery\""
    "\"name\": \"mp_shared_reopen\""
    "\"name\": \"mp_create_storm\""
    # per-scenario statistics
    "\"samples\""
    "\"mean\""
    "\"median\""
    "\"stddev\""
    "\"ci95\""
    "\"unit\": \"seconds\""
    "\"direction\": \"lower_is_better\"")
  string(FIND "${body}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "bench suite schema check failed: '${needle}' not found in ${JSON}")
  endif()
endforeach()
message(STATUS "BENCH_suite schema valid: nine families with full statistics in ${JSON}")
