// Table II reproduction — with REAL I/O. Unlike the figure benches (which
// model the paper's clusters), this one exercises the actual PLFS library
// and LDPLFS router on the local file system, exactly what the paper did on
// Minerva's login node: time cp/cat/grep/md5sum against a PLFS container
// and against a flat UNIX file of the same content.
//
// Absolute times depend on this machine; the property that reproduces the
// paper is *parity* — container ops through LDPLFS cost about the same as
// flat-file ops (the paper found the container marginally faster thanks to
// extra file streams; on a single local disk expect rough equality).
//
// Usage: table2_unix_tools [--size BYTES] [--dir DIR]
//   default size 256 MiB (the paper used 4 GB; pass --size 4G to match)
#include <fcntl.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/md5.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "core/mounts.hpp"
#include "core/router.hpp"
#include "posix/fd.hpp"
#include "tools/tool_common.hpp"

using namespace ldplfs;

namespace {

double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Flush all dirty pages so one timing's writeback does not bleed into the
/// next (the timings themselves are page-cache-warm, like the paper's
/// login-node runs).
void settle() { ::sync(); }

/// Fill `path` through the router with `size` pseudo-random bytes.
bool fill_file(core::Router& router, const std::string& path,
               std::uint64_t size) {
  const int fd = router.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return false;
  Rng rng(42);
  std::vector<char> block(4u << 20);
  std::uint64_t written = 0;
  while (written < size) {
    // Mostly-text content so grep has lines to scan.
    for (std::size_t i = 0; i < block.size(); i += 64) {
      std::snprintf(block.data() + i, 64,
                    "line %12llu payload %016llx pattern %s\n",
                    static_cast<unsigned long long>(written + i),
                    static_cast<unsigned long long>(rng.next()),
                    (rng.below(1000) == 0) ? "NEEDLE" : "hay");
      block[i + 63] = '\n';
    }
    const std::uint64_t n = std::min<std::uint64_t>(block.size(), size - written);
    if (router.write(fd, block.data(), n) != static_cast<ssize_t>(n)) {
      router.close(fd);
      return false;
    }
    written += n;
  }
  return router.close(fd) == 0;
}

double time_cat(core::Router& router, const std::string& path) {
  const auto start = std::chrono::steady_clock::now();
  const int fd = router.open(path.c_str(), O_RDONLY, 0);
  std::vector<char> buf(4u << 20);
  ssize_t n;
  std::uint64_t total = 0;
  while ((n = router.read(fd, buf.data(), buf.size())) > 0) total += n;
  router.close(fd);
  return seconds_since(start);
}

double time_grep(core::Router& router, const std::string& path,
                 long long& hits) {
  const auto start = std::chrono::steady_clock::now();
  const int fd = router.open(path.c_str(), O_RDONLY, 0);
  tools::LineReader reader(fd);
  std::string line;
  hits = 0;
  while (reader.next(line)) {
    if (line.find("NEEDLE") != std::string::npos) ++hits;
  }
  router.close(fd);
  return seconds_since(start);
}

double time_md5(core::Router& router, const std::string& path,
                std::string& digest) {
  const auto start = std::chrono::steady_clock::now();
  const int fd = router.open(path.c_str(), O_RDONLY, 0);
  Md5 hasher;
  std::vector<char> buf(4u << 20);
  ssize_t n;
  while ((n = router.read(fd, buf.data(), buf.size())) > 0) {
    hasher.update(buf.data(), static_cast<std::size_t>(n));
  }
  router.close(fd);
  digest = Md5::to_hex(hasher.finish());
  return seconds_since(start);
}

double time_cp(const std::string& src, const std::string& dst) {
  const auto start = std::chrono::steady_clock::now();
  if (tools::copy_path(src, dst) < 0) return -1.0;
  return seconds_since(start);
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t size =
      parse_bytes(bench::arg_value(argc, argv, "--size", "256M"));
  std::string dir = bench::arg_value(argc, argv, "--dir", "");
  if (dir.empty()) {
    const char* tmp = std::getenv("TMPDIR");
    dir = std::string(tmp != nullptr ? tmp : "/tmp") + "/ldplfs_table2";
  }
  (void)posix::remove_tree(dir);
  if (!posix::make_dirs(dir)) {
    std::fprintf(stderr, "cannot create %s\n", dir.c_str());
    return 1;
  }
  const std::string mount = dir + "/mount";
  (void)posix::make_dirs(mount);
  core::MountTable::instance().add(mount);
  auto& router = tools::router();

  const std::string container = mount + "/bench.dat";
  const std::string flat = dir + "/bench.flat";

  std::printf("Table II: UNIX tool timings, %s file, real I/O in %s\n\n",
              format_bytes(size).c_str(), dir.c_str());

  if (!fill_file(router, container, size) || !fill_file(router, flat, size)) {
    std::fprintf(stderr, "fill failed\n");
    return 1;
  }

  // cp: container -> flat (read side), flat -> container (write side),
  // flat -> flat (baseline, the paper's single UNIX-file column).
  settle();
  const double cp_read = time_cp(container, dir + "/out.fromplfs");
  settle();
  const double cp_write = time_cp(flat, mount + "/out.toplfs.dat");
  settle();
  const double cp_flat = time_cp(flat, dir + "/out.flat");

  settle();
  const double cat_plfs = time_cat(router, container);
  settle();
  const double cat_flat = time_cat(router, flat);

  long long hits_plfs = 0, hits_flat = 0;
  settle();
  const double grep_plfs = time_grep(router, container, hits_plfs);
  settle();
  const double grep_flat = time_grep(router, flat, hits_flat);

  std::string md5_plfs, md5_flat;
  settle();
  const double md5_plfs_s = time_md5(router, container, md5_plfs);
  settle();
  const double md5_flat_s = time_md5(router, flat, md5_flat);

  std::printf("%-14s%22s%22s\n", "", "PLFS Container", "Standard UNIX File");
  std::printf("%-14s%20.3fs%20.3fs\n", "cp (read)", cp_read, cp_flat);
  std::printf("%-14s%20.3fs%22s\n", "cp (write)", cp_write, "");
  std::printf("%-14s%20.3fs%20.3fs\n", "cat", cat_plfs, cat_flat);
  std::printf("%-14s%20.3fs%20.3fs\n", "grep", grep_plfs, grep_flat);
  std::printf("%-14s%20.3fs%20.3fs\n", "md5sum", md5_plfs_s, md5_flat_s);

  int rc = 0;
  if (md5_plfs != md5_flat) {
    std::fprintf(stderr, "\nFAIL: digests differ (%s vs %s)\n",
                 md5_plfs.c_str(), md5_flat.c_str());
    rc = 1;
  } else {
    std::printf("\ncontent verified: md5 %s, grep hits %lld == %lld\n",
                md5_plfs.c_str(), hits_plfs, hits_flat);
  }
  if (hits_plfs != hits_flat) rc = 1;
  (void)posix::remove_tree(dir);
  return rc;
}
