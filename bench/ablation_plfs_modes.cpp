// Ablation (paper §V-A future work): how much of PLFS's win comes from the
// log structure and how much from file partitioning? Runs FLASH-IO on the
// Sierra model with the two ingredients toggled independently:
//
//   both        — real PLFS (log-structured + file-per-writer)
//   log only    — one shared container log, serialised appends
//   part. only  — file per writer, but in-place (seek-bound drain)
//   neither     — plain shared-file MPI-IO, for reference
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "simfs/presets.hpp"
#include "workloads/flash_io.hpp"

using namespace ldplfs;

namespace {

double run_mode(std::uint64_t cores, bool log, bool part) {
  mpi::Topology topo{static_cast<std::uint32_t>(cores / 12), 12};
  simfs::ClusterModel cluster(simfs::sierra());
  mpiio::DriverOptions options;
  options.route = mpiio::Route::kRomioPlfs;
  options.collective_buffering = false;
  options.plfs_log_structure = log;
  options.plfs_partitioning = part;
  mpiio::IoDriver driver(cluster, topo, options);

  workloads::FlashIoParams params;
  const std::uint64_t per_var = params.per_rank_bytes / params.num_variables;
  driver.open(true);
  for (std::uint32_t v = 0; v < params.num_variables; ++v) {
    if (v != 0) driver.compute(params.compute_between_vars_s);
    driver.write_independent(per_var, v);
  }
  driver.close();
  return driver.stats().write_bandwidth_mbps();
}

double run_mpiio(std::uint64_t cores) {
  mpi::Topology topo{static_cast<std::uint32_t>(cores / 12), 12};
  const auto result = workloads::run_flash_io(
      simfs::sierra(), topo, mpiio::Route::kMpiio, {});
  return result.write_mbps;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv = bench::arg_value(argc, argv, "--csv");
  const std::vector<std::uint64_t> cores{48, 192, 768, 3072};

  std::printf("Ablation: PLFS ingredients in isolation "
              "(FLASH-IO on the Sierra model)\n");
  std::vector<bench::Series> series{
      {"both", {}}, {"log-only", {}}, {"part-only", {}}, {"neither", {}}};
  for (std::uint64_t c : cores) {
    series[0].values.push_back(run_mode(c, true, true));
    series[1].values.push_back(run_mode(c, true, false));
    series[2].values.push_back(run_mode(c, false, true));
    series[3].values.push_back(run_mpiio(c));
  }
  bench::print_panel("PLFS mode ablation", "cores", cores, series);
  bench::append_csv(csv, "ablation_modes", cores, series);

  std::printf(
      "\nReading: partitioning is the load-bearing ingredient at small and\n"
      "medium scale (no shared-tail serialisation); the log structure's\n"
      "sequential drain multiplies it. The paper's future work (§V-A) asks\n"
      "exactly this question.\n");
  return 0;
}
