// Microbenchmarks (google-benchmark) for the real stratum: the costs that
// determine LDPLFS's per-op overhead claim — fd-table routing, extent-map
// operations, index merge, MD5 — measured on this machine.
//
// The headline microbenchmark is BM_RouterOverhead vs BM_RawSyscall: the
// paper's pitch is that interposition adds only bookkeeping (a table lookup
// and an lseek) per POSIX call.
//
// A second mode, `micro_real --json=BENCH_micro.json [--smoke]`, skips the
// google-benchmark suite and measures the numbers the I/O engines are
// accountable for across PRs — strided N-1 read bandwidth (serial vs
// parallel, raw and with modeled per-pread latency), small strided write
// bandwidth (synchronous vs write-behind, raw and with modeled per-pwrite
// latency), and plfs-open index latency (cold merge vs warm IndexCache
// hit) — writing them as machine-readable JSON. The `bench_smoke` ctest
// (label `bench-smoke`) runs a tiny configuration of this mode in tier-1.
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "common/md5.hpp"
#include "common/stats.hpp"
#include "common/stats_math.hpp"
#include "common/rng.hpp"
#include "core/mounts.hpp"
#include "core/router.hpp"
#include "plfs/extent_map.hpp"
#include "plfs/index.hpp"
#include "plfs/index_cache.hpp"
#include "plfs/plfs.hpp"
#include "plfs/read_file.hpp"
#include "posix/faults.hpp"
#include "posix/fd.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ldplfs;

std::string scratch_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                    "/ldplfs_micro_XXXXXX";
  std::vector<char> buf(dir.begin(), dir.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) std::abort();
  return buf.data();
}

// --- ExtentMap ---------------------------------------------------------

void BM_ExtentMapSequentialInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    plfs::ExtentMap map;
    for (std::uint64_t i = 0; i < n; ++i) {
      map.insert({i * 100, 100, 0, i * 100, i});
    }
    benchmark::DoNotOptimize(map.extent_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExtentMapSequentialInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ExtentMapOverlappingInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(7);
  std::vector<plfs::Extent> extents;
  extents.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t off = rng.below(n * 50);
    extents.push_back({off, 1 + rng.below(400), 0, off, i});
  }
  for (auto _ : state) {
    plfs::ExtentMap map;
    for (const auto& e : extents) map.insert(e);
    benchmark::DoNotOptimize(map.extent_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExtentMapOverlappingInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ExtentMapLookup(benchmark::State& state) {
  plfs::ExtentMap map;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    map.insert({i * 100, 100, 0, i * 100, i});
  }
  Rng rng(9);
  for (auto _ : state) {
    const std::uint64_t off = rng.below(100000 * 100 - 8192);
    benchmark::DoNotOptimize(map.lookup(off, 8192));
  }
}
BENCHMARK(BM_ExtentMapLookup);

// --- Index merge --------------------------------------------------------

void BM_GlobalIndexMerge(benchmark::State& state) {
  // `writers` droppings, each with 1000 coalesce-resistant records.
  const auto writers = static_cast<std::size_t>(state.range(0));
  std::vector<plfs::IndexDropping> sources(writers);
  for (std::size_t w = 0; w < writers; ++w) {
    sources[w].data_paths = {"hostdir.0/dropping.data." + std::to_string(w)};
    for (std::uint64_t i = 0; i < 1000; ++i) {
      sources[w].records.push_back(
          {(i * writers + w) * 4096, 4096, i * 4096, i * writers + w, 0, 0});
    }
  }
  for (auto _ : state) {
    auto index = plfs::GlobalIndex::merge(sources);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(writers * 1000));
}
BENCHMARK(BM_GlobalIndexMerge)->Arg(4)->Arg(16)->Arg(64);

// --- MD5 ---------------------------------------------------------------

void BM_Md5Throughput(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> data(size, std::byte{0x5a});
  for (auto _ : state) {
    Md5 hasher;
    hasher.update(data.data(), data.size());
    benchmark::DoNotOptimize(hasher.finish());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_Md5Throughput)->Arg(64 << 10)->Arg(4 << 20);

// --- Router overhead: the LDPLFS per-op cost claim -----------------------

void BM_RawSyscallWrite(benchmark::State& state) {
  const std::string dir = scratch_dir();
  const std::string path = dir + "/raw";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  char buf[4096] = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(::write(fd, buf, sizeof buf));
    ::lseek(fd, 0, SEEK_SET);
  }
  ::close(fd);
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RawSyscallWrite);

void BM_RouterPlfsWrite(benchmark::State& state) {
  const std::string dir = scratch_dir();
  core::MountTable mounts;
  mounts.add(dir);
  core::Router router(core::libc_calls(), mounts);
  const std::string path = dir + "/routed";
  const int fd = router.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  char buf[4096] = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.write(fd, buf, sizeof buf));
    router.lseek(fd, 0, SEEK_SET);
  }
  router.close(fd);
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RouterPlfsWrite);

void BM_RouterPassthroughWrite(benchmark::State& state) {
  // Same router, path outside any mount: measures pure routing overhead.
  const std::string dir = scratch_dir();
  core::MountTable mounts;
  mounts.add(dir + "/not-here");
  core::Router router(core::libc_calls(), mounts);
  const std::string path = dir + "/plain";
  const int fd = router.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  char buf[4096] = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.write(fd, buf, sizeof buf));
    router.lseek(fd, 0, SEEK_SET);
  }
  router.close(fd);
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RouterPassthroughWrite);

// --- PLFS end-to-end throughput on local disk ----------------------------

void BM_PlfsStreamWrite(benchmark::State& state) {
  const std::string dir = scratch_dir();
  const auto block = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> buf(block, std::byte{0x77});
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = dir + "/f" + std::to_string(total);
    state.ResumeTiming();
    auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
    std::uint64_t off = 0;
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(fd.value()->write(buf, off, 1));
      off += block;
    }
    (void)plfs::plfs_close(fd.value(), 1);
    ++total;
  }
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(block) *
                          16);
}
BENCHMARK(BM_PlfsStreamWrite)->Arg(64 << 10)->Arg(1 << 20);

// --- Simulator engine speed ----------------------------------------------

void BM_SimEngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t count = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule_at(static_cast<double>(i) * 1e-6,
                         [&count] { ++count; });
    }
    engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimEngineEvents);

// --- JSON mode: the perf-trajectory numbers tracked across PRs ------------

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// Strided N-1 container: block b of the logical file belongs to writer
/// b % writers, so every writer owns one data dropping and a whole-file
/// read touches all of them block-interleaved (coalesce-resistant index).
void build_strided_container(const std::string& path, int writers,
                             int blocks_per_writer, std::size_t block) {
  auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
  if (!fd) std::abort();
  std::vector<std::byte> buf(block, std::byte{0x5a});
  for (int w = 0; w < writers; ++w) {
    for (int b = 0; b < blocks_per_writer; ++b) {
      const std::uint64_t index =
          static_cast<std::uint64_t>(b) * writers + static_cast<std::uint64_t>(w);
      if (!fd.value()->write(buf, index * block, 1000 + w)) std::abort();
    }
  }
  for (int w = 0; w < writers; ++w) {
    if (!fd.value()->close(1000 + w).ok()) std::abort();
  }
}

/// Timed whole-file reads, one sample (seconds) per rep. Headline numbers
/// use best-of-reps (page-cache noise is one-sided), but every sample is
/// kept so the report can state the per-phase variance. LDPLFS_THREADS is
/// set by the caller before the ReadFile is opened (the engine latches it
/// then).
std::vector<double> time_full_read(const std::string& path, std::size_t total,
                                   int reps) {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  std::vector<std::byte> out(total);
  for (int r = 0; r < reps; ++r) {
    auto rf = plfs::ReadFile::open(path);
    if (!rf) std::abort();
    const auto start = Clock::now();
    auto n = rf.value()->read(out, 0);
    const double elapsed = seconds_since(start);
    if (!n || n.value() != total) std::abort();
    samples.push_back(elapsed);
  }
  return samples;
}

double best_of(const std::vector<double>& samples) {
  return *std::min_element(samples.begin(), samples.end());
}

/// One "phases" entry: raw per-rep samples plus mean/stddev, so the JSON
/// states how tight each headline (best-of) number actually is.
std::string phase_json(const char* name, const std::vector<double>& samples) {
  const auto s = stats_math::summarize(samples, 1);
  std::string out = "    \"" + std::string(name) + "\": {\"samples_s\": [";
  char num[96];
  for (std::size_t i = 0; i < samples.size(); ++i) {
    std::snprintf(num, sizeof num, "%s%.6f", i != 0 ? ", " : "", samples[i]);
    out += num;
  }
  std::snprintf(num, sizeof num,
                "], \"mean_s\": %.6f, \"stddev_s\": %.6f}", s.mean, s.stddev);
  out += num;
  return out;
}

/// Known-count router workload for the stats section: every op goes through
/// a local Router over a fresh mount, with collection forced on, and the
/// plfs_stats() delta must match the issued counts *exactly* — the bench
/// fails (non-zero exit, so bench_smoke goes red) on any mismatch. This is
/// the end-to-end proof that the LDPLFS_STATS counters mean what they say.
struct StatsPhase {
  static constexpr int kOps = 32;
  static constexpr std::size_t kBlock = 4096;
  bool pass = false;
  stats::Snapshot delta;

  void run() {
    const std::string dir = scratch_dir();
    core::MountTable mounts;
    mounts.add(dir);
    core::Router router(core::libc_calls(), mounts);
    const std::string path = dir + "/stats-workload";

    stats::force_enable(true);
    const stats::Snapshot before = plfs::plfs_stats();

    std::vector<char> buf(kBlock, 0x42);
    const int fd = router.open(path.c_str(), O_CREAT | O_RDWR | O_TRUNC, 0644);
    if (fd < 0) std::abort();
    for (int i = 0; i < kOps; ++i) {
      if (router.write(fd, buf.data(), kBlock) !=
          static_cast<ssize_t>(kBlock)) {
        std::abort();
      }
    }
    if (router.lseek(fd, 0, SEEK_SET) != 0) std::abort();
    for (int i = 0; i < kOps; ++i) {
      if (router.read(fd, buf.data(), kBlock) !=
          static_cast<ssize_t>(kBlock)) {
        std::abort();
      }
    }
    struct ::stat st{};
    if (router.fstat(fd, &st) != 0) std::abort();
    if (router.close(fd) != 0) std::abort();

    delta = plfs::plfs_stats().since(before);
    (void)posix::remove_tree(dir);

    using C = stats::Counter;
    const std::uint64_t bytes =
        static_cast<std::uint64_t>(kOps) * kBlock;
    pass = delta.get(C::kRouterOpenRouted) == 1 &&
           delta.get(C::kRouterWriteRouted) == kOps &&
           delta.get(C::kRouterWriteBytes) == bytes &&
           delta.get(C::kRouterReadRouted) == kOps &&
           delta.get(C::kRouterReadBytes) == bytes &&
           delta.get(C::kRouterLseekRouted) == 1 &&
           delta.get(C::kRouterStatRouted) == 1 &&
           delta.get(C::kRouterCloseRouted) == 1;
    if (!pass) {
      std::fprintf(
          stderr,
          "stats self-check FAILED: open %llu/1 write %llu/%d (%llu/%llu B) "
          "read %llu/%d (%llu/%llu B) lseek %llu/1 stat %llu/1 close %llu/1\n",
          (unsigned long long)delta.get(C::kRouterOpenRouted),
          (unsigned long long)delta.get(C::kRouterWriteRouted), kOps,
          (unsigned long long)delta.get(C::kRouterWriteBytes),
          (unsigned long long)bytes,
          (unsigned long long)delta.get(C::kRouterReadRouted), kOps,
          (unsigned long long)delta.get(C::kRouterReadBytes),
          (unsigned long long)bytes,
          (unsigned long long)delta.get(C::kRouterLseekRouted),
          (unsigned long long)delta.get(C::kRouterStatRouted),
          (unsigned long long)delta.get(C::kRouterCloseRouted));
    }
  }

  [[nodiscard]] std::uint64_t avg_ns(stats::Histogram h) const {
    const auto& hist = delta.get(h);
    return hist.count == 0 ? 0 : hist.sum_ns / hist.count;
  }
};

/// Small coalesce-resistant strided writes into a fresh container per rep,
/// timed open→writes→sync→close so drain barriers and the final fsync are
/// charged to the engine being measured. One sample (seconds) per rep.
std::vector<double> time_strided_write(const std::string& dir,
                                       const std::string& tag,
                                       bool write_behind, int nblocks,
                                       std::size_t block, int reps) {
  ::setenv("LDPLFS_WRITE_BEHIND", write_behind ? "1" : "0", 1);
  std::vector<std::byte> buf(block, std::byte{0x3c});
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    const std::string path = dir + "/" + tag + "." + std::to_string(r);
    const auto start = Clock::now();
    auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
    if (!fd) std::abort();
    for (int b = 0; b < nblocks; ++b) {
      // (b * 17) mod nblocks permutes [0, nblocks) for power-of-two counts:
      // logically scattered checkpoint-style writes that no index record
      // can coalesce, while the log still absorbs them as pure appends.
      const std::uint64_t logical =
          (static_cast<std::uint64_t>(b) * 17) %
          static_cast<std::uint64_t>(nblocks);
      if (!fd.value()->write(buf, logical * block, 1)) std::abort();
    }
    if (!fd.value()->sync(1).ok()) std::abort();
    if (!plfs::plfs_close(fd.value(), 1).ok()) std::abort();
    samples.push_back(seconds_since(start));
  }
  ::unsetenv("LDPLFS_WRITE_BEHIND");
  return samples;
}

int run_json_bench(const std::string& json_path, bool smoke) {
  // The shared thread pool latches LDPLFS_THREADS at first use, and the
  // write-behind engine already uses it while building the read container
  // below — pin the size the parallel phases expect before anything runs.
  ::setenv("LDPLFS_THREADS", "8", 1);
  const int writers = smoke ? 4 : 16;
  const int blocks_per_writer = smoke ? 8 : 64;
  const std::size_t block = 64 * 1024;
  const std::size_t total =
      static_cast<std::size_t>(writers) * blocks_per_writer * block;
  const int parallel_threads = 8;
  const unsigned delay_usec = smoke ? 100 : 200;
  const int reps = smoke ? 3 : 5;

  const std::string dir = scratch_dir();
  const std::string path = dir + "/strided";
  build_strided_container(path, writers, blocks_per_writer, block);

  // Open latency: cold = stat + full index merge; warm = stat-validated
  // IndexCache hit. Best of k so page-cache noise doesn't pollute the ratio.
  std::vector<double> open_cold_s;
  std::vector<double> open_warm_s;
  const int open_reps = smoke ? 5 : 10;
  for (int r = 0; r < open_reps; ++r) {
    plfs::IndexCache::shared().clear();
    auto start = Clock::now();
    if (!plfs::ReadFile::open(path)) std::abort();
    open_cold_s.push_back(seconds_since(start));
    start = Clock::now();
    if (!plfs::ReadFile::open(path)) std::abort();
    open_warm_s.push_back(seconds_since(start));
  }
  const double open_cold = best_of(open_cold_s);
  const double open_warm = best_of(open_warm_s);

  // Strided read bandwidth, serial engine vs parallel engine. "raw" is
  // page-cache speed (memcpy-bound — on a single-core host the two paths
  // tie); "modeled" charges every pread the per-op latency a parallel
  // file system imposes (via the LDPLFS_FAULTS delay injector), which is
  // the regime the paper's N-1 read results are about: the parallel
  // engine overlaps those waits across droppings.
  ::setenv("LDPLFS_THREADS", "0", 1);
  const auto serial_raw_s = time_full_read(path, total, reps);
  const double serial_raw = best_of(serial_raw_s);
  ::setenv("LDPLFS_THREADS", std::to_string(parallel_threads).c_str(), 1);
  const auto parallel_raw_s = time_full_read(path, total, reps);
  const double parallel_raw = best_of(parallel_raw_s);

  const std::string delay_spec = "pread:delay=" + std::to_string(delay_usec);
  ::setenv("LDPLFS_THREADS", "0", 1);
  if (!posix::faults::configure(delay_spec)) std::abort();
  const auto serial_modeled_s = time_full_read(path, total, reps);
  const double serial_modeled = best_of(serial_modeled_s);
  posix::faults::clear();
  ::setenv("LDPLFS_THREADS", std::to_string(parallel_threads).c_str(), 1);
  if (!posix::faults::configure(delay_spec)) std::abort();
  const auto parallel_modeled_s = time_full_read(path, total, reps);
  const double parallel_modeled = best_of(parallel_modeled_s);
  posix::faults::clear();

  // Small strided write bandwidth, synchronous engine vs write-behind.
  // "raw" is page-cache speed (the engines differ only by syscall count);
  // "modeled" charges every data pwrite the per-op latency a parallel file
  // system imposes, which is the regime aggregation is for: 4 KiB writes
  // cost a memcpy while the few large flushes absorb the device latency on
  // the pool thread.
  const int write_blocks = smoke ? 256 : 4096;
  const std::size_t write_block = 4 * 1024;
  const std::size_t write_total =
      static_cast<std::size_t>(write_blocks) * write_block;
  const unsigned write_delay_usec = smoke ? 100 : 150;
  const auto wsync_raw_s =
      time_strided_write(dir, "wsync", false, write_blocks, write_block, reps);
  const double wsync_raw = best_of(wsync_raw_s);
  const auto wwb_raw_s =
      time_strided_write(dir, "wwb", true, write_blocks, write_block, reps);
  const double wwb_raw = best_of(wwb_raw_s);
  const std::string write_delay_spec =
      "pwrite:delay=" + std::to_string(write_delay_usec);
  if (!posix::faults::configure(write_delay_spec)) std::abort();
  const auto wsync_modeled_s = time_strided_write(dir, "wsyncd", false,
                                                  write_blocks, write_block,
                                                  reps);
  const double wsync_modeled = best_of(wsync_modeled_s);
  const auto wwb_modeled_s =
      time_strided_write(dir, "wwbd", true, write_blocks, write_block, reps);
  const double wwb_modeled = best_of(wwb_modeled_s);
  posix::faults::clear();

  // Sieve self-check (not timed): the strided container interleaves the
  // logical file across `writers` droppings, each physically contiguous, so
  // a whole-file read must collapse into EXACTLY one covering pread per
  // dropping — no per-piece fallback reads, no hole bytes fetched. Counted
  // via the sieve stats counters so a regression in run formation fails the
  // benchmark, not just slows it.
  stats::force_enable(true);
  const auto sieve_before = stats::snapshot();
  {
    ::setenv("LDPLFS_THREADS", "0", 1);
    auto rf = plfs::ReadFile::open(path);
    if (!rf) std::abort();
    std::vector<std::byte> sieve_buf(total);
    auto n = rf.value()->read(sieve_buf, 0);
    if (!n || n.value() != total) std::abort();
  }
  const auto sieve_delta = stats::snapshot().since(sieve_before);
  const std::uint64_t sieve_reads =
      sieve_delta.get(stats::Counter::kSieveReads);
  const std::uint64_t sieve_direct =
      sieve_delta.get(stats::Counter::kSieveDirectReads);
  const std::uint64_t sieve_read_bytes =
      sieve_delta.get(stats::Counter::kSieveBytesRead);
  const std::uint64_t sieve_delivered =
      sieve_delta.get(stats::Counter::kSieveBytesDelivered);
  const bool sieve_pass =
      sieve_reads == static_cast<std::uint64_t>(writers) &&
      sieve_direct == 0 && sieve_read_bytes == total &&
      sieve_delivered == total;

  (void)posix::remove_tree(dir);

  // Router-workload stats phase last, so forcing collection on cannot
  // perturb the timed phases above (when LDPLFS_STATS is unset they run
  // with the one-relaxed-load disabled fast path).
  StatsPhase stats_phase;
  stats_phase.run();

  const double gib = static_cast<double>(total) / (1024.0 * 1024.0 * 1024.0);
  const double wgib =
      static_cast<double>(write_total) / (1024.0 * 1024.0 * 1024.0);
  std::ofstream out(json_path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  char buf[4096];
  std::snprintf(
      buf, sizeof buf,
      "{\n"
      "  \"config\": {\"writers\": %d, \"blocks_per_writer\": %d,\n"
      "    \"block_bytes\": %zu, \"total_bytes\": %zu,\n"
      "    \"parallel_threads\": %d, \"modeled_pread_delay_usec\": %u,\n"
      "    \"write_blocks\": %d, \"write_block_bytes\": %zu,\n"
      "    \"write_total_bytes\": %zu, \"modeled_pwrite_delay_usec\": %u,\n"
      "    \"reps\": %d, \"open_reps\": %d,\n"
      "    \"headline_policy\": \"best-of-reps; per-phase samples and "
      "variance under phases\",\n"
      "    \"smoke\": %s},\n"
      "  \"strided_read\": {\n"
      "    \"raw\": {\"serial_gbps\": %.3f, \"parallel_gbps\": %.3f,\n"
      "      \"speedup\": %.2f},\n"
      "    \"modeled_latency\": {\"serial_gbps\": %.3f, \"parallel_gbps\": "
      "%.3f,\n"
      "      \"speedup\": %.2f},\n"
      "    \"speedup\": %.2f,\n"
      "    \"speedup_basis\": \"modeled per-pread latency (%u usec via "
      "LDPLFS_FAULTS pread:delay)\"\n"
      "  },\n"
      "  \"strided_write\": {\n"
      "    \"raw\": {\"serial_gbps\": %.3f, \"write_behind_gbps\": %.3f,\n"
      "      \"speedup\": %.2f},\n"
      "    \"modeled_latency\": {\"serial_gbps\": %.3f, "
      "\"write_behind_gbps\": %.3f,\n"
      "      \"speedup\": %.2f},\n"
      "    \"speedup\": %.2f,\n"
      "    \"speedup_basis\": \"modeled per-pwrite latency (%u usec via "
      "LDPLFS_FAULTS pwrite:delay)\"\n"
      "  },\n"
      "  \"open_latency\": {\"cold_usec\": %.1f, \"warm_usec\": %.1f,\n"
      "    \"speedup\": %.2f},\n",
      writers, blocks_per_writer, block, total, parallel_threads, delay_usec,
      write_blocks, write_block, write_total, write_delay_usec, reps,
      open_reps, smoke ? "true" : "false", gib / serial_raw, gib / parallel_raw,
      serial_raw / parallel_raw, gib / serial_modeled, gib / parallel_modeled,
      serial_modeled / parallel_modeled, serial_modeled / parallel_modeled,
      delay_usec, wgib / wsync_raw, wgib / wwb_raw, wsync_raw / wwb_raw,
      wgib / wsync_modeled, wgib / wwb_modeled, wsync_modeled / wwb_modeled,
      wsync_modeled / wwb_modeled, write_delay_usec, open_cold * 1e6,
      open_warm * 1e6, open_cold / open_warm);

  // Per-phase raw samples + variance: the headline speedups above are
  // best-of ratios, so this section is what says how stable they are.
  std::string phases = "  \"phases\": {\n";
  phases += phase_json("read_serial_raw", serial_raw_s) + ",\n";
  phases += phase_json("read_parallel_raw", parallel_raw_s) + ",\n";
  phases += phase_json("read_serial_modeled", serial_modeled_s) + ",\n";
  phases += phase_json("read_parallel_modeled", parallel_modeled_s) + ",\n";
  phases += phase_json("write_sync_raw", wsync_raw_s) + ",\n";
  phases += phase_json("write_behind_raw", wwb_raw_s) + ",\n";
  phases += phase_json("write_sync_modeled", wsync_modeled_s) + ",\n";
  phases += phase_json("write_behind_modeled", wwb_modeled_s) + ",\n";
  phases += phase_json("open_cold", open_cold_s) + ",\n";
  phases += phase_json("open_warm", open_warm_s) + "\n  },\n";

  // Tracked, accepted deviations — so a BENCH_micro.json reader (or the
  // per-PR manual comparison) can tell a known trade-off from a new
  // regression. The strided_write.raw.speedup entry (accepted at 0.45) is
  // retired: flush-boundary extent coalescing made the staging path
  // allocation-free at steady state and collapses permuted writes into one
  // pwrite region and one index record per contiguous run, and the
  // remaining raw-ratio movement is kernel-writeback noise (2-3x swings on
  // the same build), which a hand-tracked accepted value cannot separate
  // from a real relapse — the Mann-Whitney-gated coalesced_write scenario
  // in ldp-bench can, and is now the regression surface for this path.
  // The retired entry stays in the JSON (with the live ratio) for context.
  char known_buf[1024];
  std::snprintf(
      known_buf, sizeof known_buf,
      "  \"known_regressions\": [],\n"
      "  \"retired_regressions\": [{\n"
      "    \"metric\": \"strided_write.raw.speedup\",\n"
      "    \"accepted_value\": 0.45,\n"
      "    \"current\": %.2f,\n"
      "    \"status\": \"retired\",\n"
      "    \"resolution\": \"flush-boundary extent coalescing "
      "(LDPLFS_COALESCE) collapses permuted small writes into one pwrite "
      "region and one index record per contiguous run, and the staging "
      "path reuses its buffers across flush rotations; the residual raw "
      "ratio is dominated by kernel writeback state, so regressions on "
      "this path are now caught statistically by the coalesced_write "
      "scenario in ldp-bench (bench_suite_gate) instead of a hand-tracked "
      "accepted value.\"\n"
      "  }],\n",
      wsync_raw / wwb_raw);

  // Sieve self-check numbers (counted above, before the container teardown).
  char sieve_buf[512];
  std::snprintf(
      sieve_buf, sizeof sieve_buf,
      "  \"sieve\": {\n"
      "    \"self_check\": \"%s\",\n"
      "    \"expected_reads\": %d,\n"
      "    \"reads\": %llu,\n"
      "    \"direct_reads\": %llu,\n"
      "    \"bytes_read\": %llu,\n"
      "    \"bytes_delivered\": %llu\n"
      "  },\n",
      sieve_pass ? "pass" : "fail", writers, (unsigned long long)sieve_reads,
      (unsigned long long)sieve_direct, (unsigned long long)sieve_read_bytes,
      (unsigned long long)sieve_delivered);

  // Per-op breakdown from the known-count router workload: counts from the
  // LDPLFS_STATS counters, per-op mean latency from the log2 histograms.
  using C = stats::Counter;
  using H = stats::Histogram;
  const auto& d = stats_phase.delta;
  const std::uint64_t expected_bytes =
      static_cast<std::uint64_t>(StatsPhase::kOps) * StatsPhase::kBlock;
  char stats_buf[2048];
  std::snprintf(
      stats_buf, sizeof stats_buf,
      "  \"stats\": {\n"
      "    \"self_check\": \"%s\",\n"
      "    \"expected\": {\"ops\": %d, \"bytes\": %llu},\n"
      "    \"router\": {\n"
      "      \"open\":  {\"count\": %llu, \"avg_ns\": %llu},\n"
      "      \"write\": {\"count\": %llu, \"bytes\": %llu, \"avg_ns\": %llu},\n"
      "      \"read\":  {\"count\": %llu, \"bytes\": %llu, \"avg_ns\": %llu},\n"
      "      \"lseek\": {\"count\": %llu},\n"
      "      \"stat\":  {\"count\": %llu},\n"
      "      \"close\": {\"count\": %llu, \"avg_ns\": %llu}\n"
      "    },\n"
      "    \"plfs\": {\"index_merges\": %llu, \"droppings_opened\": %llu},\n"
      "    \"write_behind\": {\"flush_async\": %llu, \"flush_sync\": %llu,\n"
      "      \"flush_bytes\": %llu, \"bypass\": %llu}\n"
      "  }\n"
      "}\n",
      stats_phase.pass ? "pass" : "fail", StatsPhase::kOps,
      (unsigned long long)expected_bytes,
      (unsigned long long)d.get(C::kRouterOpenRouted),
      (unsigned long long)stats_phase.avg_ns(H::kRouterOpenLatency),
      (unsigned long long)d.get(C::kRouterWriteRouted),
      (unsigned long long)d.get(C::kRouterWriteBytes),
      (unsigned long long)stats_phase.avg_ns(H::kRouterWriteLatency),
      (unsigned long long)d.get(C::kRouterReadRouted),
      (unsigned long long)d.get(C::kRouterReadBytes),
      (unsigned long long)stats_phase.avg_ns(H::kRouterReadLatency),
      (unsigned long long)d.get(C::kRouterLseekRouted),
      (unsigned long long)d.get(C::kRouterStatRouted),
      (unsigned long long)d.get(C::kRouterCloseRouted),
      (unsigned long long)stats_phase.avg_ns(H::kRouterCloseLatency),
      (unsigned long long)d.get(C::kPlfsIndexMerges),
      (unsigned long long)d.get(C::kPlfsDroppingsOpened),
      (unsigned long long)d.get(C::kWbFlushAsync),
      (unsigned long long)d.get(C::kWbFlushSync),
      (unsigned long long)d.get(C::kWbFlushBytes),
      (unsigned long long)d.get(C::kWbBypass));
  out << buf << phases << known_buf << sieve_buf << stats_buf;
  out.close();
  std::fputs(buf, stdout);
  std::fputs(phases.c_str(), stdout);
  std::fputs(known_buf, stdout);
  std::fputs(sieve_buf, stdout);
  std::fputs(stats_buf, stdout);
  return (stats_phase.pass && sieve_pass) ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  bool smoke = false;
  std::vector<char*> passthrough = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!json_path.empty()) return run_json_bench(json_path, smoke);

  int bench_argc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&bench_argc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
