// Microbenchmarks (google-benchmark) for the real stratum: the costs that
// determine LDPLFS's per-op overhead claim — fd-table routing, extent-map
// operations, index merge, MD5 — measured on this machine.
//
// The headline microbenchmark is BM_RouterOverhead vs BM_RawSyscall: the
// paper's pitch is that interposition adds only bookkeeping (a table lookup
// and an lseek) per POSIX call.
#include <benchmark/benchmark.h>
#include <fcntl.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "common/md5.hpp"
#include "common/rng.hpp"
#include "core/mounts.hpp"
#include "core/router.hpp"
#include "plfs/extent_map.hpp"
#include "plfs/index.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"
#include "sim/engine.hpp"

namespace {

using namespace ldplfs;

std::string scratch_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string dir = std::string(tmp != nullptr ? tmp : "/tmp") +
                    "/ldplfs_micro_XXXXXX";
  std::vector<char> buf(dir.begin(), dir.end());
  buf.push_back('\0');
  if (::mkdtemp(buf.data()) == nullptr) std::abort();
  return buf.data();
}

// --- ExtentMap ---------------------------------------------------------

void BM_ExtentMapSequentialInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    plfs::ExtentMap map;
    for (std::uint64_t i = 0; i < n; ++i) {
      map.insert({i * 100, 100, 0, i * 100, i});
    }
    benchmark::DoNotOptimize(map.extent_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExtentMapSequentialInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ExtentMapOverlappingInsert(benchmark::State& state) {
  const auto n = static_cast<std::uint64_t>(state.range(0));
  Rng rng(7);
  std::vector<plfs::Extent> extents;
  extents.reserve(n);
  for (std::uint64_t i = 0; i < n; ++i) {
    const std::uint64_t off = rng.below(n * 50);
    extents.push_back({off, 1 + rng.below(400), 0, off, i});
  }
  for (auto _ : state) {
    plfs::ExtentMap map;
    for (const auto& e : extents) map.insert(e);
    benchmark::DoNotOptimize(map.extent_count());
  }
  state.SetItemsProcessed(state.iterations() * static_cast<int64_t>(n));
}
BENCHMARK(BM_ExtentMapOverlappingInsert)->Arg(1000)->Arg(10000)->Arg(100000);

void BM_ExtentMapLookup(benchmark::State& state) {
  plfs::ExtentMap map;
  for (std::uint64_t i = 0; i < 100000; ++i) {
    map.insert({i * 100, 100, 0, i * 100, i});
  }
  Rng rng(9);
  for (auto _ : state) {
    const std::uint64_t off = rng.below(100000 * 100 - 8192);
    benchmark::DoNotOptimize(map.lookup(off, 8192));
  }
}
BENCHMARK(BM_ExtentMapLookup);

// --- Index merge --------------------------------------------------------

void BM_GlobalIndexMerge(benchmark::State& state) {
  // `writers` droppings, each with 1000 coalesce-resistant records.
  const auto writers = static_cast<std::size_t>(state.range(0));
  std::vector<plfs::IndexDropping> sources(writers);
  for (std::size_t w = 0; w < writers; ++w) {
    sources[w].data_paths = {"hostdir.0/dropping.data." + std::to_string(w)};
    for (std::uint64_t i = 0; i < 1000; ++i) {
      sources[w].records.push_back(
          {(i * writers + w) * 4096, 4096, i * 4096, i * writers + w, 0, 0});
    }
  }
  for (auto _ : state) {
    auto index = plfs::GlobalIndex::merge(sources);
    benchmark::DoNotOptimize(index.size());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(writers * 1000));
}
BENCHMARK(BM_GlobalIndexMerge)->Arg(4)->Arg(16)->Arg(64);

// --- MD5 ---------------------------------------------------------------

void BM_Md5Throughput(benchmark::State& state) {
  const auto size = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> data(size, std::byte{0x5a});
  for (auto _ : state) {
    Md5 hasher;
    hasher.update(data.data(), data.size());
    benchmark::DoNotOptimize(hasher.finish());
  }
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(size));
}
BENCHMARK(BM_Md5Throughput)->Arg(64 << 10)->Arg(4 << 20);

// --- Router overhead: the LDPLFS per-op cost claim -----------------------

void BM_RawSyscallWrite(benchmark::State& state) {
  const std::string dir = scratch_dir();
  const std::string path = dir + "/raw";
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  char buf[4096] = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(::write(fd, buf, sizeof buf));
    ::lseek(fd, 0, SEEK_SET);
  }
  ::close(fd);
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RawSyscallWrite);

void BM_RouterPlfsWrite(benchmark::State& state) {
  const std::string dir = scratch_dir();
  core::MountTable mounts;
  mounts.add(dir);
  core::Router router(core::libc_calls(), mounts);
  const std::string path = dir + "/routed";
  const int fd = router.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  char buf[4096] = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.write(fd, buf, sizeof buf));
    router.lseek(fd, 0, SEEK_SET);
  }
  router.close(fd);
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RouterPlfsWrite);

void BM_RouterPassthroughWrite(benchmark::State& state) {
  // Same router, path outside any mount: measures pure routing overhead.
  const std::string dir = scratch_dir();
  core::MountTable mounts;
  mounts.add(dir + "/not-here");
  core::Router router(core::libc_calls(), mounts);
  const std::string path = dir + "/plain";
  const int fd = router.open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  char buf[4096] = {1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.write(fd, buf, sizeof buf));
    router.lseek(fd, 0, SEEK_SET);
  }
  router.close(fd);
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * 4096);
}
BENCHMARK(BM_RouterPassthroughWrite);

// --- PLFS end-to-end throughput on local disk ----------------------------

void BM_PlfsStreamWrite(benchmark::State& state) {
  const std::string dir = scratch_dir();
  const auto block = static_cast<std::size_t>(state.range(0));
  std::vector<std::byte> buf(block, std::byte{0x77});
  std::uint64_t total = 0;
  for (auto _ : state) {
    state.PauseTiming();
    const std::string path = dir + "/f" + std::to_string(total);
    state.ResumeTiming();
    auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
    std::uint64_t off = 0;
    for (int i = 0; i < 16; ++i) {
      benchmark::DoNotOptimize(fd.value()->write(buf, off, 1));
      off += block;
    }
    (void)plfs::plfs_close(fd.value(), 1);
    ++total;
  }
  (void)posix::remove_tree(dir);
  state.SetBytesProcessed(state.iterations() * static_cast<int64_t>(block) *
                          16);
}
BENCHMARK(BM_PlfsStreamWrite)->Arg(64 << 10)->Arg(1 << 20);

// --- Simulator engine speed ----------------------------------------------

void BM_SimEngineEvents(benchmark::State& state) {
  for (auto _ : state) {
    sim::Engine engine;
    std::uint64_t count = 0;
    for (int i = 0; i < 10000; ++i) {
      engine.schedule_at(static_cast<double>(i) * 1e-6,
                         [&count] { ++count; });
    }
    engine.run();
    benchmark::DoNotOptimize(count);
  }
  state.SetItemsProcessed(state.iterations() * 10000);
}
BENCHMARK(BM_SimEngineEvents);

}  // namespace

BENCHMARK_MAIN();
