# Asserts that a micro_real --json output contains the stats section with a
# passing self-check. Run as: cmake -DJSON=<path> -P check_stats_section.cmake
if(NOT DEFINED JSON)
  message(FATAL_ERROR "pass -DJSON=<path to BENCH_micro json>")
endif()
file(READ "${JSON}" body)
foreach(needle
    "\"stats\""
    "\"self_check\": \"pass\""
    "\"router\""
    "\"write\": {\"count\": 32, \"bytes\": 131072"
    "\"read\":  {\"count\": 32, \"bytes\": 131072"
    # repetition accounting + per-phase variance
    "\"reps\":"
    "\"phases\""
    "\"samples_s\""
    "\"stddev_s\""
    # tracked deviations must stay annotated (the list may be empty, but the
    # key — and the retirement trail — must survive)
    "\"known_regressions\""
    "\"retired_regressions\""
    "\"metric\": \"strided_write.raw.speedup\""
    # data-sieving exact-count self-check: one covering pread per dropping
    "\"sieve\""
    "\"direct_reads\": 0")
  string(FIND "${body}" "${needle}" pos)
  if(pos EQUAL -1)
    message(FATAL_ERROR "stats section check failed: '${needle}' not found in ${JSON}")
  endif()
endforeach()
message(STATUS "stats section present and self-check passed in ${JSON}")
