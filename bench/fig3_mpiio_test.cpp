// Figure 3 reproduction: MPI-IO Test bandwidths on the Minerva (GPFS)
// model — six panels: write and read at 1, 2 and 4 processes per node over
// 1..64 nodes, comparing plain MPI-IO, PLFS-through-FUSE, the PLFS ROMIO
// driver, and LDPLFS.
//
// Usage: fig3_mpiio_test [--quick] [--csv out.csv]
//   --quick  scales the per-process volume down 8x (same shapes, faster)
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "simfs/presets.hpp"
#include "workloads/mpiio_test.hpp"

using namespace ldplfs;
using namespace ldplfs::literals;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  const std::string csv = bench::arg_value(argc, argv, "--csv");

  workloads::MpiioTestParams params;
  // Quick mode halves the volume; it must stay well above the client cache
  // or the PLFS curves degenerate into pure memcpy speed.
  params.per_rank_bytes = quick ? 512_MiB : 1_GiB;
  params.block_bytes = 8_MiB;

  const std::vector<std::uint64_t> node_counts{1, 2, 4, 8, 16, 32, 64};
  const std::vector<std::pair<mpiio::Route, const char*>> routes{
      {mpiio::Route::kMpiio, "MPI-IO"},
      {mpiio::Route::kFuse, "FUSE"},
      {mpiio::Route::kRomioPlfs, "ROMIO"},
      {mpiio::Route::kLdplfs, "LDPLFS"},
  };

  std::printf("Figure 3: MPI-IO Test on the Minerva/GPFS model "
              "(%s per process, 8 MiB blocks, collective buffering on)\n",
              format_bytes(params.per_rank_bytes).c_str());

  for (std::uint32_t ppn : {1u, 2u, 4u}) {
    std::vector<bench::Series> write_series;
    std::vector<bench::Series> read_series;
    for (const auto& [route, name] : routes) {
      bench::Series ws{name, {}};
      bench::Series rs{name, {}};
      for (std::uint64_t nodes : node_counts) {
        mpi::Topology topo{static_cast<std::uint32_t>(nodes), ppn};
        const auto result =
            workloads::run_mpiio_test(simfs::minerva(), topo, route, params);
        ws.values.push_back(result.write_mbps);
        rs.values.push_back(result.read_mbps);
      }
      write_series.push_back(std::move(ws));
      read_series.push_back(std::move(rs));
    }
    char title[64];
    std::snprintf(title, sizeof title, "Fig 3: Write (%u proc/node)", ppn);
    bench::print_panel(title, "nodes", node_counts, write_series);
    bench::append_csv(csv, title, node_counts, write_series);
    std::snprintf(title, sizeof title, "Fig 3: Read (%u proc/node)", ppn);
    bench::print_panel(title, "nodes", node_counts, read_series);
    bench::append_csv(csv, title, node_counts, read_series);
  }
  return 0;
}
