// Ablation: collective buffering on/off and processes per node (the paper's
// footnote 3 fixes one aggregator per node; Fig. 3 varies ppn and finds
// node-wise performance roughly constant). Runs the MPI-IO Test write side
// at a fixed node count, sweeping ppn, with and without collective
// buffering, on the Minerva model.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "mpiio/driver.hpp"
#include "simfs/presets.hpp"

using namespace ldplfs;
using namespace ldplfs::literals;

namespace {

double run(std::uint32_t ppn, mpiio::Route route, bool cb) {
  const mpi::Topology topo{16, ppn};
  simfs::ClusterModel cluster(simfs::minerva());
  mpiio::DriverOptions options;
  options.route = route;
  options.collective_buffering = cb;
  mpiio::IoDriver driver(cluster, topo, options);
  const std::uint64_t per_rank = 256_MiB;
  const std::uint64_t block = 8_MiB;
  driver.open(true);
  for (std::uint64_t phase = 0; phase < per_rank / block; ++phase) {
    driver.write_collective(block, phase);
  }
  driver.close();
  return driver.stats().write_bandwidth_mbps();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv = bench::arg_value(argc, argv, "--csv");
  std::printf("Ablation: collective buffering & processes per node "
              "(MPI-IO Test writes, 16 Minerva nodes, 256 MiB/proc)\n");

  const std::vector<std::uint64_t> ppns{1, 2, 4, 8, 12};
  bench::Series mpiio_cb{"MPI-IO+cb", {}};
  bench::Series mpiio_nocb{"MPI-IO", {}};
  bench::Series plfs_cb{"LDPLFS+cb", {}};
  bench::Series plfs_nocb{"LDPLFS", {}};
  for (std::uint64_t ppn : ppns) {
    const auto p = static_cast<std::uint32_t>(ppn);
    mpiio_cb.values.push_back(run(p, mpiio::Route::kMpiio, true));
    mpiio_nocb.values.push_back(run(p, mpiio::Route::kMpiio, false));
    plfs_cb.values.push_back(run(p, mpiio::Route::kLdplfs, true));
    plfs_nocb.values.push_back(run(p, mpiio::Route::kLdplfs, false));
  }
  bench::print_panel("Write bandwidth vs ppn (16 nodes)", "ppn", ppns,
                     {mpiio_cb, mpiio_nocb, plfs_cb, plfs_nocb});
  bench::append_csv(csv, "ablation_aggregators", ppns,
                    {mpiio_cb, mpiio_nocb, plfs_cb, plfs_nocb});

  std::printf(
      "\nReading: with buffering on, node-wise bandwidth stays roughly\n"
      "constant as ppn grows (one aggregator per node does all the I/O,\n"
      "exactly the paper's footnote-3 setup, with a small on-node exchange\n"
      "overhead). Without buffering, the shared-file MPI-IO path degrades\n"
      "with ppn (more writers fighting over extent locks), while PLFS\n"
      "degrades only via more concurrent streams.\n");
  return 0;
}
