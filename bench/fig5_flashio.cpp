// Figure 5 reproduction: FLASH-IO weak-scaled on the Sierra/Lustre model,
// 12..3072 cores (all 12 cores per node), MPI-IO vs PLFS through ROMIO and
// LDPLFS. The headline shape: MPI-IO creeps up to a ~550 MB/s plateau;
// PLFS peaks around 16 nodes (~1.6 GB/s) and then *collapses below MPI-IO*
// as the dedicated MDS and the per-process file explosion take over.
//
// Usage: fig5_flashio [--quick] [--csv out.csv]
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "simfs/presets.hpp"
#include "simfs/report.hpp"
#include "workloads/flash_io.hpp"

using namespace ldplfs;
using namespace ldplfs::literals;

int main(int argc, char** argv) {
  const bool quick = bench::has_flag(argc, argv, "--quick");
  const std::string csv = bench::arg_value(argc, argv, "--csv");

  workloads::FlashIoParams params;
  if (quick) params.per_rank_bytes = 64_MiB;

  const std::vector<std::uint64_t> cores{12,  24,  48,   96,  192,
                                         384, 768, 1536, 3072};
  const std::vector<std::pair<mpiio::Route, const char*>> routes{
      {mpiio::Route::kMpiio, "MPI-IO"},
      {mpiio::Route::kRomioPlfs, "ROMIO"},
      {mpiio::Route::kLdplfs, "LDPLFS"},
  };

  std::printf("Figure 5: FLASH-IO weak scaling on the Sierra/Lustre model "
              "(%s per process, %u variables)\n",
              format_bytes(params.per_rank_bytes).c_str(),
              params.num_variables);

  std::vector<bench::Series> series;
  for (const auto& [route, name] : routes) {
    bench::Series s{name, {}};
    for (std::uint64_t c : cores) {
      mpi::Topology topo{static_cast<std::uint32_t>(c / 12), 12};
      if (topo.nodes == 0) topo = {1, static_cast<std::uint32_t>(c)};
      const auto result =
          workloads::run_flash_io(simfs::sierra(), topo, route, params);
      s.values.push_back(result.write_mbps);
    }
    series.push_back(std::move(s));
  }
  bench::print_panel("Fig 5: FLASH-IO write bandwidth", "cores", cores,
                     series);
  bench::append_csv(csv, "Fig 5", cores, series);

  if (bench::has_flag(argc, argv, "--stats")) {
    // Where does the time go at the collapse point? Re-run 3,072 cores
    // keeping the cluster, then dump the resource report.
    std::printf("\n-- resource report @3072 cores, ROMIO-PLFS --\n");
    simfs::ClusterModel cluster(simfs::sierra());
    mpiio::DriverOptions options;
    options.route = mpiio::Route::kRomioPlfs;
    options.collective_buffering = false;
    mpiio::IoDriver driver(cluster, {256, 12}, options);
    driver.open(true);
    const std::uint64_t per_var = params.per_rank_bytes / params.num_variables;
    for (std::uint32_t v = 0; v < params.num_variables; ++v) {
      driver.write_independent(per_var, v);
    }
    driver.close();
    simfs::collect_report(cluster).print();
  }
  return 0;
}
