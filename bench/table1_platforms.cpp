// Table I reproduction: the benchmarking-platform spec table, printed from
// the same preset structs that parameterise the simulator, so the model
// inputs are auditable against the paper.
#include <cstdio>

#include "simfs/presets.hpp"

int main() {
  const auto specs = ldplfs::simfs::all_platform_specs();
  std::printf("Table I: Benchmarking platforms\n\n");
  std::printf("%-24s", "");
  for (const auto& s : specs) std::printf("%-28s", s.name.c_str());
  std::printf("\n");

  auto row = [&](const char* label, auto getter) {
    std::printf("%-24s", label);
    for (const auto& s : specs) std::printf("%-28s", getter(s).c_str());
    std::printf("\n");
  };
  using Spec = ldplfs::simfs::PlatformSpec;
  row("Processor", [](const Spec& s) { return s.processor; });
  row("CPU Speed", [](const Spec& s) { return s.cpu_speed; });
  row("Cores per Node",
      [](const Spec& s) { return std::to_string(s.cores_per_node); });
  row("Nodes", [](const Spec& s) { return std::to_string(s.nodes); });
  row("Interconnect", [](const Spec& s) { return s.interconnect; });
  row("File System", [](const Spec& s) { return s.file_system; });
  row("I/O Servers / OSS",
      [](const Spec& s) { return std::to_string(s.io_servers); });
  row("Theoretical Bandwidth",
      [](const Spec& s) { return s.theoretical_bandwidth; });
  std::printf("%-24s\n", "Storage Disks");
  row("  Number of Disks",
      [](const Spec& s) { return std::to_string(s.data_disks); });
  row("  Disk Type", [](const Spec& s) { return s.data_disk_type; });
  row("  Disk Speed", [](const Spec& s) { return s.data_disk_speed; });
  row("  Raid Level", [](const Spec& s) { return s.data_raid; });
  std::printf("%-24s\n", "Metadata Disks");
  row("  Number of Disks",
      [](const Spec& s) { return std::to_string(s.metadata_disks); });
  row("  Disk Type", [](const Spec& s) { return s.metadata_disk_type; });
  row("  Disk Speed", [](const Spec& s) { return s.metadata_disk_speed; });
  row("  Raid Level", [](const Spec& s) { return s.metadata_raid; });

  // Derived model parameters, for auditability.
  std::printf("\nCalibrated model parameters (see EXPERIMENTS.md):\n");
  for (const auto& cfg : {ldplfs::simfs::minerva(), ldplfs::simfs::sierra()}) {
    std::printf(
        "  %-8s backend %.0f MB/s effective, client %.0f MB/s, cache %llu "
        "MiB/node, MDS %s\n",
        cfg.name.c_str(), cfg.backend_streaming_bps() / 1e6,
        cfg.client_nic.bandwidth_bps / 1e6,
        static_cast<unsigned long long>(cfg.client_cache_bytes >> 20),
        cfg.dedicated_mds ? "dedicated (congestible)" : "distributed");
  }
  return 0;
}
