// Model validation: the closed-form performance model (src/simfs/analytic)
// against the discrete-event simulation, at the paper's operating points.
// This is the §V-A future-work deliverable — "assess the benefits of PLFS
// on future I/O backplanes without requiring extensive benchmarking" — so
// the table quantifies how much trust the algebra deserves.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "simfs/analytic.hpp"
#include "simfs/presets.hpp"
#include "workloads/flash_io.hpp"

using namespace ldplfs;
using namespace ldplfs::simfs;

namespace {

WorkloadShape flash_shape(std::uint32_t nodes) {
  WorkloadShape shape;
  shape.nodes = nodes;
  shape.ppn = 12;
  shape.bytes_per_rank_per_phase = (205ull << 20) / 24;
  shape.phases = 24;
  shape.compute_between_phases_s = 0.02;
  shape.independent_writers = true;
  return shape;
}

double simulate(const ClusterConfig& config, std::uint32_t nodes,
                mpiio::Route route) {
  return workloads::run_flash_io(config, {nodes, 12}, route, {}).write_mbps;
}

}  // namespace

int main() {
  std::printf("Closed-form model vs discrete-event simulation "
              "(FLASH-IO on the Sierra model)\n\n");
  std::printf("%-8s%12s%12s%8s  %10s%12s%12s%8s\n", "nodes", "PLFS-model",
              "PLFS-sim", "err%", "regime", "UFS-model", "UFS-sim", "err%");

  const std::vector<std::uint32_t> node_counts{1, 2, 4, 8, 16, 32, 64, 128,
                                               256};
  double worst_err = 0.0;
  for (std::uint32_t nodes : node_counts) {
    const auto shape = flash_shape(nodes);
    const auto plfs = predict_plfs(sierra(), shape);
    const double plfs_sim = simulate(sierra(), nodes, mpiio::Route::kLdplfs);
    const auto ufs = predict_mpiio(sierra(), shape);
    const double ufs_sim = simulate(sierra(), nodes, mpiio::Route::kMpiio);

    const double plfs_err =
        100.0 * (plfs.bandwidth_mbps - plfs_sim) / plfs_sim;
    const double ufs_err = 100.0 * (ufs.bandwidth_mbps - ufs_sim) / ufs_sim;
    worst_err = std::max({worst_err, std::abs(plfs_err), std::abs(ufs_err)});
    std::printf("%-8u%12.0f%12.0f%7.1f%%  %10s%12.0f%12.0f%7.1f%%\n", nodes,
                plfs.bandwidth_mbps, plfs_sim, plfs_err,
                regime_name(plfs.regime), ufs.bandwidth_mbps, ufs_sim,
                ufs_err);
  }
  std::printf("\nworst-case error: %.1f%%\n", worst_err);
  std::printf(
      "\nThe model answers the paper's deployment question in microseconds:\n"
      "PLFS speedup at 8 nodes = %.1fx, at 256 nodes = %.2fx (deploy\n"
      "mid-scale, avoid full-machine file-per-process checkpoints).\n",
      plfs_speedup(sierra(), flash_shape(8)),
      plfs_speedup(sierra(), flash_shape(256)));
  return 0;
}
