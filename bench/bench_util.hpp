// Shared output helpers for the paper-reproduction bench binaries: aligned
// series tables on stdout plus optional CSV (--csv PATH) for plotting.
#pragma once

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

namespace ldplfs::bench {

/// One plotted series: name + y value per x point.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Print a panel like the paper's figures: x column + one column per series.
inline void print_panel(const std::string& title, const std::string& x_label,
                        const std::vector<std::uint64_t>& xs,
                        const std::vector<Series>& series,
                        const std::string& unit = "MB/s") {
  std::printf("\n== %s ==\n", title.c_str());
  std::printf("%-8s", x_label.c_str());
  for (const auto& s : series) std::printf("%14s", s.name.c_str());
  std::printf("   [%s]\n", unit.c_str());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    std::printf("%-8llu", static_cast<unsigned long long>(xs[i]));
    for (const auto& s : series) std::printf("%14.1f", s.values[i]);
    std::printf("\n");
  }
}

/// Append a panel to a CSV file (long format: panel,x,series,value).
inline void append_csv(const std::string& path, const std::string& panel,
                       const std::vector<std::uint64_t>& xs,
                       const std::vector<Series>& series) {
  if (path.empty()) return;
  std::ofstream out(path, std::ios::app);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    for (const auto& s : series) {
      out << panel << ',' << xs[i] << ',' << s.name << ',' << s.values[i]
          << '\n';
    }
  }
}

/// Tiny arg scan: returns the value after `flag`, or fallback.
inline std::string arg_value(int argc, char** argv, const std::string& flag,
                             const std::string& fallback = {}) {
  for (int i = 1; i + 1 < argc; ++i) {
    if (flag == argv[i]) return argv[i + 1];
  }
  return fallback;
}

inline bool has_flag(int argc, char** argv, const std::string& flag) {
  for (int i = 1; i < argc; ++i) {
    if (flag == argv[i]) return true;
  }
  return false;
}

}  // namespace ldplfs::bench
