// Ablation: client write-cache size vs the BT class D dip (paper §IV).
// The paper explains Fig. 4(b)'s 1,024-core dip as per-process writes
// "marginally too large for the system's cache" (~7 MB vs the per-stream
// grant). Sweeping the per-stream dirty limit locates the dip exactly.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "simfs/presets.hpp"
#include "workloads/bt_io.hpp"

using namespace ldplfs;
using namespace ldplfs::literals;

int main(int argc, char** argv) {
  const std::string csv = bench::arg_value(argc, argv, "--csv");
  std::printf("Ablation: BT class D at 1,024 and 4,096 cores vs per-stream "
              "write-cache grant\n");

  const std::vector<std::uint64_t> grants_mib{8, 16, 32, 64, 128, 256};
  bench::Series at1024{"D@1024", {}};
  bench::Series at4096{"D@4096", {}};
  for (std::uint64_t grant : grants_mib) {
    auto cfg = simfs::sierra();
    cfg.per_stream_cache_bytes = grant * 1_MiB;
    // Let the node bound scale so the per-stream limit is what binds.
    cfg.client_cache_bytes = 4_GiB;
    at1024.values.push_back(
        workloads::run_bt(cfg, workloads::bt_topology(1024, 12),
                          mpiio::Route::kLdplfs, workloads::bt_class_d())
            .write_mbps);
    at4096.values.push_back(
        workloads::run_bt(cfg, workloads::bt_topology(4096, 12),
                          mpiio::Route::kLdplfs, workloads::bt_class_d())
            .write_mbps);
  }
  bench::print_panel("BT-D bandwidth vs per-stream grant (MiB)", "grant",
                     grants_mib, {at1024, at4096});
  bench::append_csv(csv, "ablation_cache", grants_mib, {at1024, at4096});

  std::printf(
      "\nReading: at 1,024 cores each rank writes ~136 MB total (~7 MB per\n"
      "call) — only very large grants absorb it, so bandwidth collapses to\n"
      "the drain rate at realistic grant sizes. At 4,096 cores the ~34 MB\n"
      "per-rank total crosses from blocked to absorbed right around the\n"
      "32 MiB grant Lustre actually defaults to — the paper's dip-and-\n"
      "recovery in one sweep.\n");
  return 0;
}
