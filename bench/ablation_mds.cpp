// Ablation: MDS sensitivity (the paper's §V-A wish to "correct the negative
// effects seen at scale in Figure 5"). Sweeps the Lustre MDS service rate
// and congestion at the Fig. 5 collapse point (3,072 cores) to show what
// metadata provisioning would have been needed for PLFS not to fall below
// plain MPI-IO, and how much of the collapse is metadata vs data-path
// thrash.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "simfs/presets.hpp"
#include "workloads/flash_io.hpp"

using namespace ldplfs;

int main(int argc, char** argv) {
  const std::string csv = bench::arg_value(argc, argv, "--csv");
  const mpi::Topology topo{256, 12};  // 3,072 cores

  std::printf("Ablation: Fig. 5 collapse point (3,072 cores) vs MDS and "
              "thrash provisioning\n");

  // Panel 1: MDS speed sweep (service time divisor).
  const std::vector<std::uint64_t> speedups{1, 2, 4, 8, 16};
  bench::Series plfs{"PLFS", {}};
  bench::Series plfs_nothrash{"PLFS-nothrash", {}};
  bench::Series mpiio{"MPI-IO", {}};
  for (std::uint64_t speedup : speedups) {
    auto cfg = simfs::sierra();
    cfg.meta_op_s /= static_cast<double>(speedup);
    cfg.mds_congestion.alpha /= static_cast<double>(speedup);
    plfs.values.push_back(
        workloads::run_flash_io(cfg, topo, mpiio::Route::kRomioPlfs, {})
            .write_mbps);
    auto cfg2 = cfg;
    cfg2.stream_thrash_alpha = 0.0;
    plfs_nothrash.values.push_back(
        workloads::run_flash_io(cfg2, topo, mpiio::Route::kRomioPlfs, {})
            .write_mbps);
    mpiio.values.push_back(
        workloads::run_flash_io(cfg, topo, mpiio::Route::kMpiio, {})
            .write_mbps);
  }
  bench::print_panel("FLASH-IO @3072 cores vs MDS speedup", "mds_x",
                     speedups, {plfs, plfs_nothrash, mpiio});
  bench::append_csv(csv, "ablation_mds", speedups,
                    {plfs, plfs_nothrash, mpiio});

  std::printf(
      "\nReading: a faster MDS alone does not rescue PLFS at this scale —\n"
      "the many-stream data-path thrash dominates; removing thrash\n"
      "(PLFS-nothrash) restores the win regardless of MDS speed. The\n"
      "paper attributes the collapse to the MDS; the model says the file\n"
      "explosion hurts on the data path too, which is consistent with the\n"
      "paper's own \"overhead of managing hundreds or thousands of files\"\n"
      "phrasing (§V).\n");
  return 0;
}
