// Ablation: data sieving (ROMIO's second optimisation, paper §II — "shown
// to be extremely beneficial when utilising file views to manage
// interleaved writes"). Sweeps the strided piece size on the Minerva model
// with sieving on/off for reads and writes, locating the crossover: tiny
// pieces are dominated by per-op positioning (sieving wins big), large
// pieces make the sieving window's amplification a pure loss.
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "common/units.hpp"
#include "mpiio/driver.hpp"
#include "simfs/presets.hpp"

using namespace ldplfs;
using namespace ldplfs::literals;

namespace {

constexpr std::uint64_t kRegionPerRank = 4_MiB;  // bytes each rank touches

double run(std::uint64_t piece, bool sieving, bool write_side) {
  const mpi::Topology topo{8, 2};
  simfs::ClusterModel cluster(simfs::minerva());
  mpiio::DriverOptions options;
  options.route = mpiio::Route::kMpiio;
  options.data_sieving = sieving;
  mpiio::IoDriver driver(cluster, topo, options);
  driver.open(true);
  const std::uint64_t pieces = kRegionPerRank / piece;
  if (write_side) {
    driver.write_strided(piece, pieces, 0);
  } else {
    driver.read_strided(piece, pieces, 0);
  }
  driver.close();
  return write_side ? driver.stats().write_bandwidth_mbps()
                    : driver.stats().read_bandwidth_mbps();
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv = bench::arg_value(argc, argv, "--csv");
  std::printf("Ablation: data sieving vs strided piece size "
              "(16 ranks on the Minerva model, %s per rank)\n",
              format_bytes(kRegionPerRank).c_str());

  const std::vector<std::uint64_t> piece_kib{4, 16, 64, 256, 1024};
  bench::Series read_sieve{"read+sieve", {}};
  bench::Series read_naive{"read", {}};
  bench::Series write_sieve{"write+sieve", {}};
  bench::Series write_naive{"write", {}};
  for (std::uint64_t kib : piece_kib) {
    const std::uint64_t piece = kib * 1_KiB;
    read_sieve.values.push_back(run(piece, true, false));
    read_naive.values.push_back(run(piece, false, false));
    write_sieve.values.push_back(run(piece, true, true));
    write_naive.values.push_back(run(piece, false, true));
  }
  bench::print_panel("Strided bandwidth vs piece size (KiB)", "piece",
                     piece_kib,
                     {read_sieve, read_naive, write_sieve, write_naive});
  bench::append_csv(csv, "ablation_sieving", piece_kib,
                    {read_sieve, read_naive, write_sieve, write_naive});

  std::printf(
      "\nReading: for KB-scale strided pieces the naive path drowns in\n"
      "per-piece positioning and lock traffic; sieving turns the same\n"
      "access into a handful of large sequential window transfers. As the\n"
      "piece size approaches the sieve buffer the window amplification\n"
      "stops paying for itself — the classic ROMIO trade-off the paper\n"
      "cites, and one reason LDPLFS's \"keep ROMIO above PLFS\" layering\n"
      "matters (the PLFS API alone gets neither optimisation).\n");
  return 0;
}
