// Figure 4 reproduction: NAS BT solution-dump bandwidth on the
// Sierra/Lustre model, strong-scaled. Panel (a): class C (6.4 GB total,
// 4–1024 cores); panel (b): class D (136 GB, 64–4096 cores). Routes:
// MPI-IO, PLFS through ROMIO, PLFS through LDPLFS.
//
// The shapes that matter (paper §IV): PLFS ≫ MPI-IO once per-rank writes
// are small enough to be absorbed by the client write cache; class D dips
// back to MPI-IO levels at 1024 cores (≈7 MB per write is "marginally too
// large" for the cache) and recovers at 4096 (<2 MB per write).
//
// Usage: fig4_bt [--csv out.csv]
#include <cstdio>
#include <vector>

#include "bench/bench_util.hpp"
#include "simfs/presets.hpp"
#include "workloads/bt_io.hpp"

using namespace ldplfs;

namespace {

void run_panel(const char* title, const workloads::BtClass& problem,
               const std::vector<std::uint64_t>& cores,
               const std::string& csv) {
  const std::vector<std::pair<mpiio::Route, const char*>> routes{
      {mpiio::Route::kMpiio, "MPI-IO"},
      {mpiio::Route::kRomioPlfs, "ROMIO"},
      {mpiio::Route::kLdplfs, "LDPLFS"},
  };
  std::vector<bench::Series> series;
  for (const auto& [route, name] : routes) {
    bench::Series s{name, {}};
    for (std::uint64_t c : cores) {
      const auto topo =
          workloads::bt_topology(static_cast<std::uint32_t>(c), 12);
      const auto result =
          workloads::run_bt(simfs::sierra(), topo, route, problem);
      s.values.push_back(result.write_mbps);
    }
    series.push_back(std::move(s));
  }
  bench::print_panel(title, "cores", cores, series);
  bench::append_csv(csv, title, cores, series);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string csv = bench::arg_value(argc, argv, "--csv");
  std::printf("Figure 4: NAS BT write bandwidth on the Sierra/Lustre model "
              "(strong scaled, 20 collective writes per run)\n");
  run_panel("Fig 4a: BT class C", workloads::bt_class_c(),
            {4, 16, 64, 256, 1024}, csv);
  run_panel("Fig 4b: BT class D", workloads::bt_class_d(),
            {64, 256, 1024, 4096}, csv);
  return 0;
}
