# Empty dependencies file for container_tools.
# This may be replaced when dependencies are built.
