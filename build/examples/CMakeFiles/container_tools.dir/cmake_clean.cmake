file(REMOVE_RECURSE
  "CMakeFiles/container_tools.dir/container_tools.cpp.o"
  "CMakeFiles/container_tools.dir/container_tools.cpp.o.d"
  "container_tools"
  "container_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/container_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
