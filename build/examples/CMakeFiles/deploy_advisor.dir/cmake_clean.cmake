file(REMOVE_RECURSE
  "CMakeFiles/deploy_advisor.dir/deploy_advisor.cpp.o"
  "CMakeFiles/deploy_advisor.dir/deploy_advisor.cpp.o.d"
  "deploy_advisor"
  "deploy_advisor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deploy_advisor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
