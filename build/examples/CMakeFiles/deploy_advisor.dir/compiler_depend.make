# Empty compiler generated dependencies file for deploy_advisor.
# This may be replaced when dependencies are built.
