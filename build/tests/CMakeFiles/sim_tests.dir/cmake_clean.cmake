file(REMOVE_RECURSE
  "CMakeFiles/sim_tests.dir/sim/test_cache.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_cache.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_devices.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_devices.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_engine.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_engine.cpp.o.d"
  "CMakeFiles/sim_tests.dir/sim/test_station.cpp.o"
  "CMakeFiles/sim_tests.dir/sim/test_station.cpp.o.d"
  "sim_tests"
  "sim_tests.pdb"
  "sim_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
