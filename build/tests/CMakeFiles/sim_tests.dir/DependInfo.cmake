
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim/test_cache.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_cache.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_cache.cpp.o.d"
  "/root/repo/tests/sim/test_devices.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_devices.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_devices.cpp.o.d"
  "/root/repo/tests/sim/test_engine.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_engine.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_engine.cpp.o.d"
  "/root/repo/tests/sim/test_station.cpp" "tests/CMakeFiles/sim_tests.dir/sim/test_station.cpp.o" "gcc" "tests/CMakeFiles/sim_tests.dir/sim/test_station.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ldplfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
