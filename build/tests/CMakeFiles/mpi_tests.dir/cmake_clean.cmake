file(REMOVE_RECURSE
  "CMakeFiles/mpi_tests.dir/mpi/test_mpi.cpp.o"
  "CMakeFiles/mpi_tests.dir/mpi/test_mpi.cpp.o.d"
  "mpi_tests"
  "mpi_tests.pdb"
  "mpi_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpi_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
