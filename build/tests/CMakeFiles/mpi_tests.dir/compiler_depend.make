# Empty compiler generated dependencies file for mpi_tests.
# This may be replaced when dependencies are built.
