# Empty compiler generated dependencies file for mpiio_tests.
# This may be replaced when dependencies are built.
