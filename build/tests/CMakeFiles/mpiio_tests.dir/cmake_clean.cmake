file(REMOVE_RECURSE
  "CMakeFiles/mpiio_tests.dir/mpiio/test_driver.cpp.o"
  "CMakeFiles/mpiio_tests.dir/mpiio/test_driver.cpp.o.d"
  "mpiio_tests"
  "mpiio_tests.pdb"
  "mpiio_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mpiio_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
