# Empty dependencies file for preload_victim.
# This may be replaced when dependencies are built.
