file(REMOVE_RECURSE
  "CMakeFiles/preload_victim.dir/preload/preload_victim.cpp.o"
  "CMakeFiles/preload_victim.dir/preload/preload_victim.cpp.o.d"
  "preload_victim"
  "preload_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preload_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
