file(REMOVE_RECURSE
  "CMakeFiles/simfs_tests.dir/simfs/test_analytic.cpp.o"
  "CMakeFiles/simfs_tests.dir/simfs/test_analytic.cpp.o.d"
  "CMakeFiles/simfs_tests.dir/simfs/test_cluster.cpp.o"
  "CMakeFiles/simfs_tests.dir/simfs/test_cluster.cpp.o.d"
  "CMakeFiles/simfs_tests.dir/simfs/test_report.cpp.o"
  "CMakeFiles/simfs_tests.dir/simfs/test_report.cpp.o.d"
  "simfs_tests"
  "simfs_tests.pdb"
  "simfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
