
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_fd_table.cpp" "tests/CMakeFiles/core_tests.dir/core/test_fd_table.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_fd_table.cpp.o.d"
  "/root/repo/tests/core/test_mounts.cpp" "tests/CMakeFiles/core_tests.dir/core/test_mounts.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_mounts.cpp.o.d"
  "/root/repo/tests/core/test_router.cpp" "tests/CMakeFiles/core_tests.dir/core/test_router.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_router.cpp.o.d"
  "/root/repo/tests/core/test_router_differential.cpp" "tests/CMakeFiles/core_tests.dir/core/test_router_differential.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_router_differential.cpp.o.d"
  "/root/repo/tests/core/test_router_threads.cpp" "tests/CMakeFiles/core_tests.dir/core/test_router_threads.cpp.o" "gcc" "tests/CMakeFiles/core_tests.dir/core/test_router_threads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ldplfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/ldplfs_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ldplfs_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
