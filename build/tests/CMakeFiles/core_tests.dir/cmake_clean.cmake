file(REMOVE_RECURSE
  "CMakeFiles/core_tests.dir/core/test_fd_table.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_fd_table.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_mounts.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_mounts.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_router.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_router.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_router_differential.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_router_differential.cpp.o.d"
  "CMakeFiles/core_tests.dir/core/test_router_threads.cpp.o"
  "CMakeFiles/core_tests.dir/core/test_router_threads.cpp.o.d"
  "core_tests"
  "core_tests.pdb"
  "core_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
