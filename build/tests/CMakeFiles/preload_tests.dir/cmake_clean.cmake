file(REMOVE_RECURSE
  "CMakeFiles/preload_tests.dir/preload/test_multiprocess.cpp.o"
  "CMakeFiles/preload_tests.dir/preload/test_multiprocess.cpp.o.d"
  "CMakeFiles/preload_tests.dir/preload/test_preload_e2e.cpp.o"
  "CMakeFiles/preload_tests.dir/preload/test_preload_e2e.cpp.o.d"
  "preload_tests"
  "preload_tests.pdb"
  "preload_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/preload_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
