# Empty dependencies file for preload_tests.
# This may be replaced when dependencies are built.
