# Empty compiler generated dependencies file for wrap_victim.
# This may be replaced when dependencies are built.
