file(REMOVE_RECURSE
  "CMakeFiles/wrap_victim.dir/preload/preload_victim.cpp.o"
  "CMakeFiles/wrap_victim.dir/preload/preload_victim.cpp.o.d"
  "wrap_victim"
  "wrap_victim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrap_victim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
