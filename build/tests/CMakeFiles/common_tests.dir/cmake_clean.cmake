file(REMOVE_RECURSE
  "CMakeFiles/common_tests.dir/common/test_md5.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_md5.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_paths.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_paths.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_rng.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_rng.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_strings.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_strings.cpp.o.d"
  "CMakeFiles/common_tests.dir/common/test_units.cpp.o"
  "CMakeFiles/common_tests.dir/common/test_units.cpp.o.d"
  "common_tests"
  "common_tests.pdb"
  "common_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
