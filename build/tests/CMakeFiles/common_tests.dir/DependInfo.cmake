
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/common/test_md5.cpp" "tests/CMakeFiles/common_tests.dir/common/test_md5.cpp.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/test_md5.cpp.o.d"
  "/root/repo/tests/common/test_paths.cpp" "tests/CMakeFiles/common_tests.dir/common/test_paths.cpp.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/test_paths.cpp.o.d"
  "/root/repo/tests/common/test_rng.cpp" "tests/CMakeFiles/common_tests.dir/common/test_rng.cpp.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/test_rng.cpp.o.d"
  "/root/repo/tests/common/test_strings.cpp" "tests/CMakeFiles/common_tests.dir/common/test_strings.cpp.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/test_strings.cpp.o.d"
  "/root/repo/tests/common/test_units.cpp" "tests/CMakeFiles/common_tests.dir/common/test_units.cpp.o" "gcc" "tests/CMakeFiles/common_tests.dir/common/test_units.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ldplfs_posix.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
