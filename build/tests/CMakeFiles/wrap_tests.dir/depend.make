# Empty dependencies file for wrap_tests.
# This may be replaced when dependencies are built.
