file(REMOVE_RECURSE
  "CMakeFiles/wrap_tests.dir/preload/test_wrap_e2e.cpp.o"
  "CMakeFiles/wrap_tests.dir/preload/test_wrap_e2e.cpp.o.d"
  "wrap_tests"
  "wrap_tests.pdb"
  "wrap_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wrap_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
