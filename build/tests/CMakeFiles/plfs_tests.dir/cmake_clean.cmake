file(REMOVE_RECURSE
  "CMakeFiles/plfs_tests.dir/plfs/test_compaction.cpp.o"
  "CMakeFiles/plfs_tests.dir/plfs/test_compaction.cpp.o.d"
  "CMakeFiles/plfs_tests.dir/plfs/test_container.cpp.o"
  "CMakeFiles/plfs_tests.dir/plfs/test_container.cpp.o.d"
  "CMakeFiles/plfs_tests.dir/plfs/test_extent_map.cpp.o"
  "CMakeFiles/plfs_tests.dir/plfs/test_extent_map.cpp.o.d"
  "CMakeFiles/plfs_tests.dir/plfs/test_index_format.cpp.o"
  "CMakeFiles/plfs_tests.dir/plfs/test_index_format.cpp.o.d"
  "CMakeFiles/plfs_tests.dir/plfs/test_plfs_api.cpp.o"
  "CMakeFiles/plfs_tests.dir/plfs/test_plfs_api.cpp.o.d"
  "CMakeFiles/plfs_tests.dir/plfs/test_recovery.cpp.o"
  "CMakeFiles/plfs_tests.dir/plfs/test_recovery.cpp.o.d"
  "plfs_tests"
  "plfs_tests.pdb"
  "plfs_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plfs_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
