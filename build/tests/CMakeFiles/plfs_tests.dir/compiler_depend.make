# Empty compiler generated dependencies file for plfs_tests.
# This may be replaced when dependencies are built.
