
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/plfs/test_compaction.cpp" "tests/CMakeFiles/plfs_tests.dir/plfs/test_compaction.cpp.o" "gcc" "tests/CMakeFiles/plfs_tests.dir/plfs/test_compaction.cpp.o.d"
  "/root/repo/tests/plfs/test_container.cpp" "tests/CMakeFiles/plfs_tests.dir/plfs/test_container.cpp.o" "gcc" "tests/CMakeFiles/plfs_tests.dir/plfs/test_container.cpp.o.d"
  "/root/repo/tests/plfs/test_extent_map.cpp" "tests/CMakeFiles/plfs_tests.dir/plfs/test_extent_map.cpp.o" "gcc" "tests/CMakeFiles/plfs_tests.dir/plfs/test_extent_map.cpp.o.d"
  "/root/repo/tests/plfs/test_index_format.cpp" "tests/CMakeFiles/plfs_tests.dir/plfs/test_index_format.cpp.o" "gcc" "tests/CMakeFiles/plfs_tests.dir/plfs/test_index_format.cpp.o.d"
  "/root/repo/tests/plfs/test_plfs_api.cpp" "tests/CMakeFiles/plfs_tests.dir/plfs/test_plfs_api.cpp.o" "gcc" "tests/CMakeFiles/plfs_tests.dir/plfs/test_plfs_api.cpp.o.d"
  "/root/repo/tests/plfs/test_recovery.cpp" "tests/CMakeFiles/plfs_tests.dir/plfs/test_recovery.cpp.o" "gcc" "tests/CMakeFiles/plfs_tests.dir/plfs/test_recovery.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plfs/CMakeFiles/ldplfs_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ldplfs_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
