# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_tests[1]_include.cmake")
include("/root/repo/build/tests/plfs_tests[1]_include.cmake")
include("/root/repo/build/tests/core_tests[1]_include.cmake")
include("/root/repo/build/tests/preload_tests[1]_include.cmake")
include("/root/repo/build/tests/sim_tests[1]_include.cmake")
include("/root/repo/build/tests/simfs_tests[1]_include.cmake")
include("/root/repo/build/tests/mpi_tests[1]_include.cmake")
include("/root/repo/build/tests/mpiio_tests[1]_include.cmake")
include("/root/repo/build/tests/workloads_tests[1]_include.cmake")
include("/root/repo/build/tests/wrap_tests[1]_include.cmake")
include("/root/repo/build/tests/tools_tests[1]_include.cmake")
