# Empty dependencies file for table2_unix_tools.
# This may be replaced when dependencies are built.
