# Empty compiler generated dependencies file for ablation_aggregators.
# This may be replaced when dependencies are built.
