file(REMOVE_RECURSE
  "CMakeFiles/ablation_aggregators.dir/ablation_aggregators.cpp.o"
  "CMakeFiles/ablation_aggregators.dir/ablation_aggregators.cpp.o.d"
  "ablation_aggregators"
  "ablation_aggregators.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_aggregators.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
