# Empty dependencies file for fig3_mpiio_test.
# This may be replaced when dependencies are built.
