file(REMOVE_RECURSE
  "CMakeFiles/fig3_mpiio_test.dir/fig3_mpiio_test.cpp.o"
  "CMakeFiles/fig3_mpiio_test.dir/fig3_mpiio_test.cpp.o.d"
  "fig3_mpiio_test"
  "fig3_mpiio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_mpiio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
