# Empty dependencies file for fig4_bt.
# This may be replaced when dependencies are built.
