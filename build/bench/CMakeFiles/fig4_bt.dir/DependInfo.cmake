
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_bt.cpp" "bench/CMakeFiles/fig4_bt.dir/fig4_bt.cpp.o" "gcc" "bench/CMakeFiles/fig4_bt.dir/fig4_bt.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ldplfs_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/mpiio/CMakeFiles/ldplfs_mpiio.dir/DependInfo.cmake"
  "/root/repo/build/src/simfs/CMakeFiles/ldplfs_simfs.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ldplfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
