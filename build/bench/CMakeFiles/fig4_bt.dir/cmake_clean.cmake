file(REMOVE_RECURSE
  "CMakeFiles/fig4_bt.dir/fig4_bt.cpp.o"
  "CMakeFiles/fig4_bt.dir/fig4_bt.cpp.o.d"
  "fig4_bt"
  "fig4_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
