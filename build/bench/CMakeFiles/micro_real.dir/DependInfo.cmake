
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_real.cpp" "bench/CMakeFiles/micro_real.dir/micro_real.cpp.o" "gcc" "bench/CMakeFiles/micro_real.dir/micro_real.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ldplfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ldplfs_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/ldplfs_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ldplfs_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
