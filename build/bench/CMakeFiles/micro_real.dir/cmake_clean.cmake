file(REMOVE_RECURSE
  "CMakeFiles/micro_real.dir/micro_real.cpp.o"
  "CMakeFiles/micro_real.dir/micro_real.cpp.o.d"
  "micro_real"
  "micro_real.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_real.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
