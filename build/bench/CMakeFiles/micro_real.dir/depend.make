# Empty dependencies file for micro_real.
# This may be replaced when dependencies are built.
