# Empty compiler generated dependencies file for ablation_plfs_modes.
# This may be replaced when dependencies are built.
