file(REMOVE_RECURSE
  "CMakeFiles/ablation_plfs_modes.dir/ablation_plfs_modes.cpp.o"
  "CMakeFiles/ablation_plfs_modes.dir/ablation_plfs_modes.cpp.o.d"
  "ablation_plfs_modes"
  "ablation_plfs_modes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_plfs_modes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
