# Empty dependencies file for fig5_flashio.
# This may be replaced when dependencies are built.
