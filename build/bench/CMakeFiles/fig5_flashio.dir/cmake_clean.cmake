file(REMOVE_RECURSE
  "CMakeFiles/fig5_flashio.dir/fig5_flashio.cpp.o"
  "CMakeFiles/fig5_flashio.dir/fig5_flashio.cpp.o.d"
  "fig5_flashio"
  "fig5_flashio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_flashio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
