# Empty compiler generated dependencies file for ablation_mds.
# This may be replaced when dependencies are built.
