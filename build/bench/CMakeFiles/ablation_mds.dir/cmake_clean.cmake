file(REMOVE_RECURSE
  "CMakeFiles/ablation_mds.dir/ablation_mds.cpp.o"
  "CMakeFiles/ablation_mds.dir/ablation_mds.cpp.o.d"
  "ablation_mds"
  "ablation_mds.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_mds.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
