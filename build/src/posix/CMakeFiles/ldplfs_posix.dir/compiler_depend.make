# Empty compiler generated dependencies file for ldplfs_posix.
# This may be replaced when dependencies are built.
