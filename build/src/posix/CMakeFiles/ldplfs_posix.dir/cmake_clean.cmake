file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_posix.dir/fd.cpp.o"
  "CMakeFiles/ldplfs_posix.dir/fd.cpp.o.d"
  "libldplfs_posix.a"
  "libldplfs_posix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_posix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
