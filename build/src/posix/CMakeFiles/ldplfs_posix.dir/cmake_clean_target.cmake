file(REMOVE_RECURSE
  "libldplfs_posix.a"
)
