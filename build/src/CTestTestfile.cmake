# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("posix")
subdirs("plfs")
subdirs("core")
subdirs("preload")
subdirs("tools")
subdirs("sim")
subdirs("simfs")
subdirs("mpi")
subdirs("mpiio")
subdirs("workloads")
