file(REMOVE_RECURSE
  "libldplfs_workloads.a"
)
