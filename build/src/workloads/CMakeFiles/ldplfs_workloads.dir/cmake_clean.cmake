file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_workloads.dir/bt_io.cpp.o"
  "CMakeFiles/ldplfs_workloads.dir/bt_io.cpp.o.d"
  "CMakeFiles/ldplfs_workloads.dir/flash_io.cpp.o"
  "CMakeFiles/ldplfs_workloads.dir/flash_io.cpp.o.d"
  "CMakeFiles/ldplfs_workloads.dir/mpiio_test.cpp.o"
  "CMakeFiles/ldplfs_workloads.dir/mpiio_test.cpp.o.d"
  "libldplfs_workloads.a"
  "libldplfs_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
