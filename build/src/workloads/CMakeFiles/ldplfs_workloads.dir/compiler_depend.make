# Empty compiler generated dependencies file for ldplfs_workloads.
# This may be replaced when dependencies are built.
