# Empty compiler generated dependencies file for ldplfs_plfs.
# This may be replaced when dependencies are built.
