file(REMOVE_RECURSE
  "libldplfs_plfs.a"
)
