
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/plfs/compaction.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/compaction.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/compaction.cpp.o.d"
  "/root/repo/src/plfs/container.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/container.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/container.cpp.o.d"
  "/root/repo/src/plfs/extent_map.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/extent_map.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/extent_map.cpp.o.d"
  "/root/repo/src/plfs/index.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/index.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/index.cpp.o.d"
  "/root/repo/src/plfs/index_format.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/index_format.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/index_format.cpp.o.d"
  "/root/repo/src/plfs/plfs.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/plfs.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/plfs.cpp.o.d"
  "/root/repo/src/plfs/read_file.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/read_file.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/read_file.cpp.o.d"
  "/root/repo/src/plfs/recovery.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/recovery.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/recovery.cpp.o.d"
  "/root/repo/src/plfs/write_file.cpp" "src/plfs/CMakeFiles/ldplfs_plfs.dir/write_file.cpp.o" "gcc" "src/plfs/CMakeFiles/ldplfs_plfs.dir/write_file.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/posix/CMakeFiles/ldplfs_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
