file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_plfs.dir/compaction.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/compaction.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/container.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/container.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/extent_map.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/extent_map.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/index.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/index.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/index_format.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/index_format.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/plfs.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/plfs.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/read_file.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/read_file.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/recovery.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/recovery.cpp.o.d"
  "CMakeFiles/ldplfs_plfs.dir/write_file.cpp.o"
  "CMakeFiles/ldplfs_plfs.dir/write_file.cpp.o.d"
  "libldplfs_plfs.a"
  "libldplfs_plfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_plfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
