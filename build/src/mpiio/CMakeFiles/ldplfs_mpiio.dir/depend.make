# Empty dependencies file for ldplfs_mpiio.
# This may be replaced when dependencies are built.
