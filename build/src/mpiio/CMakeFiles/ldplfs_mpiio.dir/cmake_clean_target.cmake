file(REMOVE_RECURSE
  "libldplfs_mpiio.a"
)
