file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_mpiio.dir/driver.cpp.o"
  "CMakeFiles/ldplfs_mpiio.dir/driver.cpp.o.d"
  "libldplfs_mpiio.a"
  "libldplfs_mpiio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_mpiio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
