file(REMOVE_RECURSE
  "libldplfs_core.a"
)
