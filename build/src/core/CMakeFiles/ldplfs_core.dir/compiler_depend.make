# Empty compiler generated dependencies file for ldplfs_core.
# This may be replaced when dependencies are built.
