
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fd_table.cpp" "src/core/CMakeFiles/ldplfs_core.dir/fd_table.cpp.o" "gcc" "src/core/CMakeFiles/ldplfs_core.dir/fd_table.cpp.o.d"
  "/root/repo/src/core/mounts.cpp" "src/core/CMakeFiles/ldplfs_core.dir/mounts.cpp.o" "gcc" "src/core/CMakeFiles/ldplfs_core.dir/mounts.cpp.o.d"
  "/root/repo/src/core/real_calls.cpp" "src/core/CMakeFiles/ldplfs_core.dir/real_calls.cpp.o" "gcc" "src/core/CMakeFiles/ldplfs_core.dir/real_calls.cpp.o.d"
  "/root/repo/src/core/router.cpp" "src/core/CMakeFiles/ldplfs_core.dir/router.cpp.o" "gcc" "src/core/CMakeFiles/ldplfs_core.dir/router.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/plfs/CMakeFiles/ldplfs_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ldplfs_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
