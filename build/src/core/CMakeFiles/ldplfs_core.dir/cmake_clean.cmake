file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_core.dir/fd_table.cpp.o"
  "CMakeFiles/ldplfs_core.dir/fd_table.cpp.o.d"
  "CMakeFiles/ldplfs_core.dir/mounts.cpp.o"
  "CMakeFiles/ldplfs_core.dir/mounts.cpp.o.d"
  "CMakeFiles/ldplfs_core.dir/real_calls.cpp.o"
  "CMakeFiles/ldplfs_core.dir/real_calls.cpp.o.d"
  "CMakeFiles/ldplfs_core.dir/router.cpp.o"
  "CMakeFiles/ldplfs_core.dir/router.cpp.o.d"
  "libldplfs_core.a"
  "libldplfs_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
