file(REMOVE_RECURSE
  "CMakeFiles/ldp-recover.dir/ldp_recover.cpp.o"
  "CMakeFiles/ldp-recover.dir/ldp_recover.cpp.o.d"
  "ldp-recover"
  "ldp-recover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-recover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
