# Empty compiler generated dependencies file for ldp-recover.
# This may be replaced when dependencies are built.
