# Empty dependencies file for ldp-cat.
# This may be replaced when dependencies are built.
