file(REMOVE_RECURSE
  "CMakeFiles/ldp-cat.dir/ldp_cat.cpp.o"
  "CMakeFiles/ldp-cat.dir/ldp_cat.cpp.o.d"
  "ldp-cat"
  "ldp-cat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-cat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
