# Empty dependencies file for ldp-ls.
# This may be replaced when dependencies are built.
