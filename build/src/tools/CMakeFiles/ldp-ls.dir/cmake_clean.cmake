file(REMOVE_RECURSE
  "CMakeFiles/ldp-ls.dir/ldp_ls.cpp.o"
  "CMakeFiles/ldp-ls.dir/ldp_ls.cpp.o.d"
  "ldp-ls"
  "ldp-ls.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-ls.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
