# Empty compiler generated dependencies file for ldp-compact.
# This may be replaced when dependencies are built.
