file(REMOVE_RECURSE
  "CMakeFiles/ldp-compact.dir/ldp_compact.cpp.o"
  "CMakeFiles/ldp-compact.dir/ldp_compact.cpp.o.d"
  "ldp-compact"
  "ldp-compact.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-compact.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
