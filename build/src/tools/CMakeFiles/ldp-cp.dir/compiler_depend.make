# Empty compiler generated dependencies file for ldp-cp.
# This may be replaced when dependencies are built.
