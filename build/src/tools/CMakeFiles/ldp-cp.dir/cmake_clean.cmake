file(REMOVE_RECURSE
  "CMakeFiles/ldp-cp.dir/ldp_cp.cpp.o"
  "CMakeFiles/ldp-cp.dir/ldp_cp.cpp.o.d"
  "ldp-cp"
  "ldp-cp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-cp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
