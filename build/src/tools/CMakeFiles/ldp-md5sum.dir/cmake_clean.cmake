file(REMOVE_RECURSE
  "CMakeFiles/ldp-md5sum.dir/ldp_md5sum.cpp.o"
  "CMakeFiles/ldp-md5sum.dir/ldp_md5sum.cpp.o.d"
  "ldp-md5sum"
  "ldp-md5sum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-md5sum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
