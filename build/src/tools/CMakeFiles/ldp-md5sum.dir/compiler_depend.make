# Empty compiler generated dependencies file for ldp-md5sum.
# This may be replaced when dependencies are built.
