file(REMOVE_RECURSE
  "CMakeFiles/ldp-inspect.dir/ldp_inspect.cpp.o"
  "CMakeFiles/ldp-inspect.dir/ldp_inspect.cpp.o.d"
  "ldp-inspect"
  "ldp-inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
