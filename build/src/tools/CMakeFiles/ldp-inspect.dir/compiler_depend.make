# Empty compiler generated dependencies file for ldp-inspect.
# This may be replaced when dependencies are built.
