# Empty compiler generated dependencies file for ldp-grep.
# This may be replaced when dependencies are built.
