file(REMOVE_RECURSE
  "CMakeFiles/ldp-grep.dir/ldp_grep.cpp.o"
  "CMakeFiles/ldp-grep.dir/ldp_grep.cpp.o.d"
  "ldp-grep"
  "ldp-grep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-grep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
