file(REMOVE_RECURSE
  "CMakeFiles/ldp-flatten.dir/ldp_flatten.cpp.o"
  "CMakeFiles/ldp-flatten.dir/ldp_flatten.cpp.o.d"
  "ldp-flatten"
  "ldp-flatten.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-flatten.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
