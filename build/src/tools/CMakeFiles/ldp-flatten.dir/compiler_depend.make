# Empty compiler generated dependencies file for ldp-flatten.
# This may be replaced when dependencies are built.
