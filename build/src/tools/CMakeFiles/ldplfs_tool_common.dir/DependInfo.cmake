
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tools/tool_common.cpp" "src/tools/CMakeFiles/ldplfs_tool_common.dir/tool_common.cpp.o" "gcc" "src/tools/CMakeFiles/ldplfs_tool_common.dir/tool_common.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ldplfs_core.dir/DependInfo.cmake"
  "/root/repo/build/src/plfs/CMakeFiles/ldplfs_plfs.dir/DependInfo.cmake"
  "/root/repo/build/src/posix/CMakeFiles/ldplfs_posix.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ldplfs_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
