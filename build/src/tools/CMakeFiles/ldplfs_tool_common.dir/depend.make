# Empty dependencies file for ldplfs_tool_common.
# This may be replaced when dependencies are built.
