file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_tool_common.dir/tool_common.cpp.o"
  "CMakeFiles/ldplfs_tool_common.dir/tool_common.cpp.o.d"
  "libldplfs_tool_common.a"
  "libldplfs_tool_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_tool_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
