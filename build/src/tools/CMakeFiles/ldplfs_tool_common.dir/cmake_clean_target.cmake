file(REMOVE_RECURSE
  "libldplfs_tool_common.a"
)
