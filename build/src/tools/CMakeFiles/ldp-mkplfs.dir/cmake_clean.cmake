file(REMOVE_RECURSE
  "CMakeFiles/ldp-mkplfs.dir/ldp_mkplfs.cpp.o"
  "CMakeFiles/ldp-mkplfs.dir/ldp_mkplfs.cpp.o.d"
  "ldp-mkplfs"
  "ldp-mkplfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldp-mkplfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
