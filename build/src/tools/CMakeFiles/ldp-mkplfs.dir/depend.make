# Empty dependencies file for ldp-mkplfs.
# This may be replaced when dependencies are built.
