# Empty dependencies file for ldplfs_common.
# This may be replaced when dependencies are built.
