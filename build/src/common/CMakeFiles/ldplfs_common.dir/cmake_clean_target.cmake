file(REMOVE_RECURSE
  "libldplfs_common.a"
)
