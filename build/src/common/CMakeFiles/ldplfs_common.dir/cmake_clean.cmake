file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_common.dir/logging.cpp.o"
  "CMakeFiles/ldplfs_common.dir/logging.cpp.o.d"
  "CMakeFiles/ldplfs_common.dir/md5.cpp.o"
  "CMakeFiles/ldplfs_common.dir/md5.cpp.o.d"
  "CMakeFiles/ldplfs_common.dir/paths.cpp.o"
  "CMakeFiles/ldplfs_common.dir/paths.cpp.o.d"
  "CMakeFiles/ldplfs_common.dir/strings.cpp.o"
  "CMakeFiles/ldplfs_common.dir/strings.cpp.o.d"
  "CMakeFiles/ldplfs_common.dir/units.cpp.o"
  "CMakeFiles/ldplfs_common.dir/units.cpp.o.d"
  "libldplfs_common.a"
  "libldplfs_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
