file(REMOVE_RECURSE
  "libldplfs_sim.a"
)
