file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_sim.dir/engine.cpp.o"
  "CMakeFiles/ldplfs_sim.dir/engine.cpp.o.d"
  "CMakeFiles/ldplfs_sim.dir/station.cpp.o"
  "CMakeFiles/ldplfs_sim.dir/station.cpp.o.d"
  "libldplfs_sim.a"
  "libldplfs_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
