# Empty dependencies file for ldplfs_sim.
# This may be replaced when dependencies are built.
