# Empty dependencies file for ldplfs_simfs.
# This may be replaced when dependencies are built.
