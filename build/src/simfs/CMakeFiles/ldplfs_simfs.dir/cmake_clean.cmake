file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_simfs.dir/analytic.cpp.o"
  "CMakeFiles/ldplfs_simfs.dir/analytic.cpp.o.d"
  "CMakeFiles/ldplfs_simfs.dir/cluster.cpp.o"
  "CMakeFiles/ldplfs_simfs.dir/cluster.cpp.o.d"
  "CMakeFiles/ldplfs_simfs.dir/presets.cpp.o"
  "CMakeFiles/ldplfs_simfs.dir/presets.cpp.o.d"
  "CMakeFiles/ldplfs_simfs.dir/report.cpp.o"
  "CMakeFiles/ldplfs_simfs.dir/report.cpp.o.d"
  "libldplfs_simfs.a"
  "libldplfs_simfs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_simfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
