file(REMOVE_RECURSE
  "libldplfs_simfs.a"
)
