# Empty compiler generated dependencies file for ldplfs.
# This may be replaced when dependencies are built.
