file(REMOVE_RECURSE
  "CMakeFiles/ldplfs.dir/preload.cpp.o"
  "CMakeFiles/ldplfs.dir/preload.cpp.o.d"
  "libldplfs.pdb"
  "libldplfs.so"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
