# Empty dependencies file for ldplfs.
# This may be replaced when dependencies are built.
