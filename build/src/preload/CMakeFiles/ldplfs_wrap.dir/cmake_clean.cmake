file(REMOVE_RECURSE
  "CMakeFiles/ldplfs_wrap.dir/wrap.cpp.o"
  "CMakeFiles/ldplfs_wrap.dir/wrap.cpp.o.d"
  "libldplfs_wrap.a"
  "libldplfs_wrap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ldplfs_wrap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
