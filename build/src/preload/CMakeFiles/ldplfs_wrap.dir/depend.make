# Empty dependencies file for ldplfs_wrap.
# This may be replaced when dependencies are built.
