file(REMOVE_RECURSE
  "libldplfs_wrap.a"
)
