// Differential property test: the LDPLFS router over a PLFS mount must be
// observationally equivalent to raw POSIX on a plain file.
//
// A random sequence of {open, close, read, write, pread, pwrite, lseek,
// ftruncate, stat, append-reopen} is applied twice — through the router
// against a container, and with raw syscalls against a control file — and
// every return value, errno class, cursor position, size and byte read
// must agree. This is the strongest statement of the paper's transparency
// claim that can be tested mechanically.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/router.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::core {
namespace {

class Differential {
 public:
  Differential()
      : router_(libc_calls(), mounts_),
        plfs_path_(mount_.sub("subject.dat")),
        control_path_(control_.sub("control.dat")) {
    mounts_.add(mount_.path());
  }

  ~Differential() {
    if (plfs_fd_ >= 0) router_.close(plfs_fd_);
    if (ctrl_fd_ >= 0) ::close(ctrl_fd_);
  }

  void open(int flags) {
    plfs_fd_ = router_.open(plfs_path_.c_str(), flags, 0644);
    ctrl_fd_ = ::open(control_path_.c_str(), flags, 0644);
    ASSERT_EQ(plfs_fd_ >= 0, ctrl_fd_ >= 0);
  }

  void close() {
    if (plfs_fd_ >= 0) EXPECT_EQ(router_.close(plfs_fd_), 0);
    if (ctrl_fd_ >= 0) EXPECT_EQ(::close(ctrl_fd_), 0);
    plfs_fd_ = ctrl_fd_ = -1;
  }

  void write(const std::vector<char>& data) {
    const ssize_t a = router_.write(plfs_fd_, data.data(), data.size());
    const ssize_t b = ::write(ctrl_fd_, data.data(), data.size());
    ASSERT_EQ(a, b);
  }

  void pwrite(const std::vector<char>& data, off_t offset) {
    const ssize_t a =
        router_.pwrite(plfs_fd_, data.data(), data.size(), offset);
    const ssize_t b = ::pwrite(ctrl_fd_, data.data(), data.size(), offset);
    ASSERT_EQ(a, b);
  }

  void read(std::size_t len) {
    std::vector<char> a(len, '\1');
    std::vector<char> b(len, '\2');
    const ssize_t na = router_.read(plfs_fd_, a.data(), len);
    const ssize_t nb = ::read(ctrl_fd_, b.data(), len);
    ASSERT_EQ(na, nb);
    if (na > 0) {
      ASSERT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(na)), 0);
    }
  }

  void pread(std::size_t len, off_t offset) {
    std::vector<char> a(len, '\1');
    std::vector<char> b(len, '\2');
    const ssize_t na = router_.pread(plfs_fd_, a.data(), len, offset);
    const ssize_t nb = ::pread(ctrl_fd_, b.data(), len, offset);
    ASSERT_EQ(na, nb);
    if (na > 0) {
      ASSERT_EQ(std::memcmp(a.data(), b.data(), static_cast<size_t>(na)), 0);
    }
  }

  void lseek(off_t offset, int whence) {
    const off_t a = router_.lseek(plfs_fd_, offset, whence);
    const off_t b = ::lseek(ctrl_fd_, offset, whence);
    ASSERT_EQ(a, b);
  }

  void ftruncate(off_t len) {
    ASSERT_EQ(router_.ftruncate(plfs_fd_, len), ::ftruncate(ctrl_fd_, len));
  }

  void check_cursor() {
    ASSERT_EQ(router_.lseek(plfs_fd_, 0, SEEK_CUR),
              ::lseek(ctrl_fd_, 0, SEEK_CUR));
  }

  void check_stat() {
    struct ::stat sa{}, sb{};
    const int ra = router_.stat(plfs_path_.c_str(), &sa);
    const int rb = ::stat(control_path_.c_str(), &sb);
    ASSERT_EQ(ra, rb);
    if (ra == 0) {
      ASSERT_EQ(sa.st_size, sb.st_size);
      ASSERT_EQ(S_ISREG(sa.st_mode), S_ISREG(sb.st_mode));
    }
  }

  void check_full_content() {
    struct ::stat sb{};
    ASSERT_EQ(::stat(control_path_.c_str(), &sb), 0);
    const auto size = static_cast<std::size_t>(sb.st_size);
    std::vector<char> a(size + 1);
    std::vector<char> b(size + 1);
    const ssize_t na =
        router_.pread(plfs_fd_, a.data(), a.size(), 0);
    const ssize_t nb = ::pread(ctrl_fd_, b.data(), b.size(), 0);
    ASSERT_EQ(na, nb);
    ASSERT_EQ(static_cast<std::size_t>(na), size);
    ASSERT_EQ(std::memcmp(a.data(), b.data(), size), 0);
  }

  [[nodiscard]] bool is_open() const { return plfs_fd_ >= 0; }

 private:
  ldplfs::testing::TempDir mount_;
  ldplfs::testing::TempDir control_;
  MountTable mounts_;
  Router router_;
  std::string plfs_path_;
  std::string control_path_;
  int plfs_fd_ = -1;
  int ctrl_fd_ = -1;
};

std::vector<char> random_payload(Rng& rng, std::size_t max_len) {
  std::vector<char> data(1 + rng.below(max_len));
  for (auto& c : data) c = static_cast<char>(rng.next() & 0xFF);
  return data;
}

class RouterDifferentialTest : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RouterDifferentialTest, RandomOpSequenceMatchesPosix) {
  Rng rng(GetParam() * 1009 + 77);
  Differential diff;
  diff.open(O_RDWR | O_CREAT | O_TRUNC);

  constexpr std::size_t kMaxIo = 16 * 1024;
  constexpr off_t kMaxOffset = 256 * 1024;
  for (int op = 0; op < 250; ++op) {
    if (!diff.is_open()) {
      // Reopen in a random mode that permits both reads and writes of the
      // sequence (O_RDWR always; sometimes O_APPEND).
      diff.open(rng.below(3) == 0 ? (O_RDWR | O_APPEND) : O_RDWR);
    }
    switch (rng.below(10)) {
      case 0:
        diff.write(random_payload(rng, kMaxIo));
        break;
      case 1:
        diff.pwrite(random_payload(rng, kMaxIo),
                    static_cast<off_t>(rng.below(kMaxOffset)));
        break;
      case 2:
        diff.read(1 + rng.below(kMaxIo));
        break;
      case 3:
        diff.pread(1 + rng.below(kMaxIo),
                   static_cast<off_t>(rng.below(kMaxOffset)));
        break;
      case 4:
        diff.lseek(static_cast<off_t>(rng.below(kMaxOffset)), SEEK_SET);
        break;
      case 5:
        diff.lseek(0, SEEK_END);
        break;
      case 6:
        diff.ftruncate(static_cast<off_t>(rng.below(kMaxOffset)));
        break;
      case 7:
        diff.check_stat();
        break;
      case 8:
        diff.check_cursor();
        break;
      case 9:
        diff.close();
        break;
    }
    if (::testing::Test::HasFatalFailure()) {
      FAIL() << "divergence at op " << op;
    }
  }
  if (!diff.is_open()) diff.open(O_RDWR);
  diff.check_full_content();
  diff.close();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterDifferentialTest,
                         ::testing::Range<std::uint64_t>(0, 10));

}  // namespace
}  // namespace ldplfs::core
