// In-process tests of the LDPLFS router: POSIX calls against a temp mount,
// verifying both the PLFS path and the passthrough path, plus the cursor
// bookkeeping the paper describes (lseek on the shadow fd).
#include "core/router.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "plfs/container.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::core {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : router_(libc_calls(), mounts_) {
    mounts_.add(mount_.path());
  }

  std::string mpath(const std::string& name) { return mount_.sub(name); }

  ssize_t write_str(int fd, const std::string& s) {
    return router_.write(fd, s.data(), s.size());
  }

  std::string read_str(int fd, std::size_t n) {
    std::string out(n, '\0');
    const ssize_t got = router_.read(fd, out.data(), n);
    EXPECT_GE(got, 0);
    out.resize(got > 0 ? static_cast<std::size_t>(got) : 0);
    return out;
  }

  ldplfs::testing::TempDir mount_;
  ldplfs::testing::TempDir outside_;
  MountTable mounts_;
  Router router_;
};

TEST_F(RouterTest, CreateInsideMountMakesContainer) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd));
  EXPECT_EQ(write_str(fd, "hello"), 5);
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_TRUE(plfs::is_container(mpath("f")));
}

TEST_F(RouterTest, CreateOutsideMountIsPlainFile) {
  const std::string path = outside_.sub("f");
  const int fd = router_.open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(router_.is_plfs_fd(fd));
  EXPECT_EQ(write_str(fd, "hello"), 5);
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_FALSE(plfs::is_container(path));
  auto content = posix::read_file(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello");
}

TEST_F(RouterTest, SequentialWritesAdvanceCursor) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_str(fd, "abc"), 3);
  EXPECT_EQ(write_str(fd, "def"), 3);
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(read_str(fd, 6), "abcdef");
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, LseekSetCurEnd) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "0123456789");
  EXPECT_EQ(router_.lseek(fd, 2, SEEK_SET), 2);
  EXPECT_EQ(read_str(fd, 3), "234");
  EXPECT_EQ(router_.lseek(fd, 1, SEEK_CUR), 6);
  EXPECT_EQ(read_str(fd, 2), "67");
  EXPECT_EQ(router_.lseek(fd, -4, SEEK_END), 6);
  EXPECT_EQ(read_str(fd, 4), "6789");
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_END), 10);
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, SeekBeyondEofThenWriteCreatesHole) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "X");
  EXPECT_EQ(router_.lseek(fd, 10, SEEK_SET), 10);
  write_str(fd, "Y");
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  const std::string content = read_str(fd, 16);
  ASSERT_EQ(content.size(), 11u);
  EXPECT_EQ(content[0], 'X');
  EXPECT_EQ(content[10], 'Y');
  for (int i = 1; i < 10; ++i) EXPECT_EQ(content[i], '\0') << i;
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, PreadPwriteDoNotMoveCursor) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "base");
  EXPECT_EQ(router_.pwrite(fd, "ZZ", 2, 1), 2);
  char buf[4] = {0};
  EXPECT_EQ(router_.pread(fd, buf, 3, 0), 3);
  EXPECT_EQ(std::string(buf, 3), "bZZ");
  // Cursor still at 4 from the initial write.
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_CUR), 4);
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, AppendModeWritesAtEof) {
  {
    const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
    write_str(fd, "12345");
    router_.close(fd);
  }
  const int fd =
      router_.open(mpath("f").c_str(), O_WRONLY | O_APPEND, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "678");
  // Cursor after append = new EOF.
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_CUR), 8);
  router_.close(fd);

  const int rd = router_.open(mpath("f").c_str(), O_RDONLY, 0);
  EXPECT_EQ(read_str(rd, 16), "12345678");
  router_.close(rd);
}

TEST_F(RouterTest, StatSynthesizesRegularFile) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0640);
  write_str(fd, "0123456789");
  router_.close(fd);

  struct ::stat st{};
  ASSERT_EQ(router_.stat(mpath("f").c_str(), &st), 0);
  EXPECT_TRUE(S_ISREG(st.st_mode));
  EXPECT_EQ(st.st_size, 10);
  EXPECT_EQ(st.st_mode & 07777, 0640u);
}

TEST_F(RouterTest, FstatOnPlfsFd) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "0123456789");
  struct ::stat st{};
  ASSERT_EQ(router_.fstat(fd, &st), 0);
  EXPECT_TRUE(S_ISREG(st.st_mode));
  EXPECT_EQ(st.st_size, 10);
  router_.close(fd);
}

TEST_F(RouterTest, StatPassthroughOutsideMount) {
  const std::string path = outside_.sub("plain");
  ASSERT_TRUE(posix::write_file(path, "xy").ok());
  struct ::stat st{};
  ASSERT_EQ(router_.stat(path.c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 2);
}

TEST_F(RouterTest, UnlinkContainer) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  router_.close(fd);
  ASSERT_TRUE(plfs::is_container(mpath("f")));
  EXPECT_EQ(router_.unlink(mpath("f").c_str()), 0);
  EXPECT_FALSE(posix::exists(mpath("f")));
}

TEST_F(RouterTest, UnlinkMissingSetsEnoent) {
  errno = 0;
  EXPECT_EQ(router_.unlink(mpath("absent").c_str()), -1);
  EXPECT_EQ(errno, ENOENT);
}

TEST_F(RouterTest, TruncatePathAndFtruncate) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "0123456789");
  EXPECT_EQ(router_.ftruncate(fd, 4), 0);
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(read_str(fd, 16), "0123");
  router_.close(fd);

  EXPECT_EQ(router_.truncate(mpath("f").c_str(), 2), 0);
  struct ::stat st{};
  ASSERT_EQ(router_.stat(mpath("f").c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 2);
}

TEST_F(RouterTest, DupSharesCursor) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "abcdef");
  router_.lseek(fd, 0, SEEK_SET);
  const int fd2 = router_.dup(fd);
  ASSERT_GE(fd2, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd2));
  EXPECT_EQ(read_str(fd, 2), "ab");
  EXPECT_EQ(read_str(fd2, 2), "cd");  // shared kernel offset on the shadow
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_EQ(read_str(fd2, 2), "ef");  // still usable after first close
  EXPECT_EQ(router_.close(fd2), 0);
}

TEST_F(RouterTest, RenameWithinMount) {
  const int fd = router_.open(mpath("a").c_str(), O_WRONLY | O_CREAT, 0644);
  write_str(fd, "data");
  router_.close(fd);
  EXPECT_EQ(router_.rename(mpath("a").c_str(), mpath("b").c_str()), 0);
  const int rd = router_.open(mpath("b").c_str(), O_RDONLY, 0);
  EXPECT_EQ(read_str(rd, 4), "data");
  router_.close(rd);
}

TEST_F(RouterTest, RenameOutOfMountIsExdev) {
  const int fd = router_.open(mpath("a").c_str(), O_WRONLY | O_CREAT, 0644);
  router_.close(fd);
  errno = 0;
  EXPECT_EQ(router_.rename(mpath("a").c_str(), outside_.sub("b").c_str()), -1);
  EXPECT_EQ(errno, EXDEV);
}

TEST_F(RouterTest, AccessOnContainer) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  router_.close(fd);
  EXPECT_EQ(router_.access(mpath("f").c_str(), F_OK), 0);
  EXPECT_EQ(router_.access(mpath("f").c_str(), R_OK | W_OK), 0);
  EXPECT_EQ(router_.access(mpath("ghost").c_str(), F_OK), -1);
}

TEST_F(RouterTest, ForeignFileInsideMountPassesThrough) {
  // Files created behind LDPLFS's back stay plain files.
  ASSERT_TRUE(posix::write_file(mpath("foreign"), "plain bytes").ok());
  const int fd = router_.open(mpath("foreign").c_str(), O_RDONLY, 0);
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(router_.is_plfs_fd(fd));
  EXPECT_EQ(read_str(fd, 64), "plain bytes");
  router_.close(fd);
}

TEST_F(RouterTest, RelativePathResolvesAgainstCwd) {
  char oldcwd[4096];
  ASSERT_NE(::getcwd(oldcwd, sizeof oldcwd), nullptr);
  ASSERT_EQ(::chdir(mount_.path().c_str()), 0);
  const int fd = router_.open("relfile", O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd));
  write_str(fd, "rel");
  router_.close(fd);
  ASSERT_EQ(::chdir(oldcwd), 0);
  EXPECT_TRUE(plfs::is_container(mpath("relfile")));
}

TEST_F(RouterTest, FsyncOnPlfsFdSucceeds) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  write_str(fd, "x");
  EXPECT_EQ(router_.fsync(fd), 0);
  EXPECT_EQ(router_.fdatasync(fd), 0);
  router_.close(fd);
}

TEST_F(RouterTest, OTruncDropsOldContent) {
  {
    const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
    write_str(fd, "long old content");
    router_.close(fd);
  }
  const int fd =
      router_.open(mpath("f").c_str(), O_WRONLY | O_TRUNC, 0644);
  write_str(fd, "new");
  router_.close(fd);
  struct ::stat st{};
  ASSERT_EQ(router_.stat(mpath("f").c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 3);
}

TEST_F(RouterTest, ReadWriteOnNonPlfsFdPassesThrough) {
  const std::string path = outside_.sub("p");
  const int fd = router_.open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_str(fd, "pass"), 4);
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(read_str(fd, 4), "pass");
  EXPECT_EQ(router_.close(fd), 0);
}

}  // namespace
}  // namespace ldplfs::core
