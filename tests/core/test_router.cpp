// In-process tests of the LDPLFS router: POSIX calls against a temp mount,
// verifying both the PLFS path and the passthrough path, plus the cursor
// bookkeeping the paper describes (lseek on the shadow fd).
#include "core/router.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>

#include "common/stats.hpp"
#include "plfs/container.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::core {
namespace {

class RouterTest : public ::testing::Test {
 protected:
  RouterTest() : router_(libc_calls(), mounts_) {
    mounts_.add(mount_.path());
  }

  std::string mpath(const std::string& name) { return mount_.sub(name); }

  ssize_t write_str(int fd, const std::string& s) {
    return router_.write(fd, s.data(), s.size());
  }

  std::string read_str(int fd, std::size_t n) {
    std::string out(n, '\0');
    const ssize_t got = router_.read(fd, out.data(), n);
    EXPECT_GE(got, 0);
    out.resize(got > 0 ? static_cast<std::size_t>(got) : 0);
    return out;
  }

  ldplfs::testing::TempDir mount_;
  ldplfs::testing::TempDir outside_;
  MountTable mounts_;
  Router router_;
};

TEST_F(RouterTest, CreateInsideMountMakesContainer) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd));
  EXPECT_EQ(write_str(fd, "hello"), 5);
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_TRUE(plfs::is_container(mpath("f")));
}

TEST_F(RouterTest, CreateOutsideMountIsPlainFile) {
  const std::string path = outside_.sub("f");
  const int fd = router_.open(path.c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(router_.is_plfs_fd(fd));
  EXPECT_EQ(write_str(fd, "hello"), 5);
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_FALSE(plfs::is_container(path));
  auto content = posix::read_file(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "hello");
}

TEST_F(RouterTest, SequentialWritesAdvanceCursor) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_str(fd, "abc"), 3);
  EXPECT_EQ(write_str(fd, "def"), 3);
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(read_str(fd, 6), "abcdef");
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, LseekSetCurEnd) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "0123456789");
  EXPECT_EQ(router_.lseek(fd, 2, SEEK_SET), 2);
  EXPECT_EQ(read_str(fd, 3), "234");
  EXPECT_EQ(router_.lseek(fd, 1, SEEK_CUR), 6);
  EXPECT_EQ(read_str(fd, 2), "67");
  EXPECT_EQ(router_.lseek(fd, -4, SEEK_END), 6);
  EXPECT_EQ(read_str(fd, 4), "6789");
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_END), 10);
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, SeekBeyondEofThenWriteCreatesHole) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "X");
  EXPECT_EQ(router_.lseek(fd, 10, SEEK_SET), 10);
  write_str(fd, "Y");
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  const std::string content = read_str(fd, 16);
  ASSERT_EQ(content.size(), 11u);
  EXPECT_EQ(content[0], 'X');
  EXPECT_EQ(content[10], 'Y');
  for (int i = 1; i < 10; ++i) EXPECT_EQ(content[i], '\0') << i;
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, PreadPwriteDoNotMoveCursor) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "base");
  EXPECT_EQ(router_.pwrite(fd, "ZZ", 2, 1), 2);
  char buf[4] = {0};
  EXPECT_EQ(router_.pread(fd, buf, 3, 0), 3);
  EXPECT_EQ(std::string(buf, 3), "bZZ");
  // Cursor still at 4 from the initial write.
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_CUR), 4);
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, AppendModeWritesAtEof) {
  {
    const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
    write_str(fd, "12345");
    router_.close(fd);
  }
  const int fd =
      router_.open(mpath("f").c_str(), O_WRONLY | O_APPEND, 0644);
  ASSERT_GE(fd, 0);
  write_str(fd, "678");
  // Cursor after append = new EOF.
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_CUR), 8);
  router_.close(fd);

  const int rd = router_.open(mpath("f").c_str(), O_RDONLY, 0);
  EXPECT_EQ(read_str(rd, 16), "12345678");
  router_.close(rd);
}

TEST_F(RouterTest, StatSynthesizesRegularFile) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0640);
  write_str(fd, "0123456789");
  router_.close(fd);

  struct ::stat st{};
  ASSERT_EQ(router_.stat(mpath("f").c_str(), &st), 0);
  EXPECT_TRUE(S_ISREG(st.st_mode));
  EXPECT_EQ(st.st_size, 10);
  EXPECT_EQ(st.st_mode & 07777, 0640u);
}

TEST_F(RouterTest, FstatOnPlfsFd) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "0123456789");
  struct ::stat st{};
  ASSERT_EQ(router_.fstat(fd, &st), 0);
  EXPECT_TRUE(S_ISREG(st.st_mode));
  EXPECT_EQ(st.st_size, 10);
  router_.close(fd);
}

TEST_F(RouterTest, StatPassthroughOutsideMount) {
  const std::string path = outside_.sub("plain");
  ASSERT_TRUE(posix::write_file(path, "xy").ok());
  struct ::stat st{};
  ASSERT_EQ(router_.stat(path.c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 2);
}

TEST_F(RouterTest, UnlinkContainer) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  router_.close(fd);
  ASSERT_TRUE(plfs::is_container(mpath("f")));
  EXPECT_EQ(router_.unlink(mpath("f").c_str()), 0);
  EXPECT_FALSE(posix::exists(mpath("f")));
}

TEST_F(RouterTest, UnlinkMissingSetsEnoent) {
  errno = 0;
  EXPECT_EQ(router_.unlink(mpath("absent").c_str()), -1);
  EXPECT_EQ(errno, ENOENT);
}

TEST_F(RouterTest, TruncatePathAndFtruncate) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "0123456789");
  EXPECT_EQ(router_.ftruncate(fd, 4), 0);
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(read_str(fd, 16), "0123");
  router_.close(fd);

  EXPECT_EQ(router_.truncate(mpath("f").c_str(), 2), 0);
  struct ::stat st{};
  ASSERT_EQ(router_.stat(mpath("f").c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 2);
}

TEST_F(RouterTest, DupSharesCursor) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "abcdef");
  router_.lseek(fd, 0, SEEK_SET);
  const int fd2 = router_.dup(fd);
  ASSERT_GE(fd2, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd2));
  EXPECT_EQ(read_str(fd, 2), "ab");
  EXPECT_EQ(read_str(fd2, 2), "cd");  // shared kernel offset on the shadow
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_EQ(read_str(fd2, 2), "ef");  // still usable after first close
  EXPECT_EQ(router_.close(fd2), 0);
}

TEST_F(RouterTest, FcntlDupfdRegistersAlias) {
  // F_DUPFD must register the duplicate in the fd table exactly like dup():
  // before the fix the new fd silently passed through to the shadow file.
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "abcdef");
  router_.lseek(fd, 0, SEEK_SET);
  const int fd2 = router_.fcntl(fd, F_DUPFD, 0);
  ASSERT_GE(fd2, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd2));
  EXPECT_EQ(read_str(fd, 2), "ab");
  EXPECT_EQ(read_str(fd2, 2), "cd");  // shared kernel offset on the shadow
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_EQ(read_str(fd2, 2), "ef");
  EXPECT_EQ(router_.close(fd2), 0);
}

TEST_F(RouterTest, FcntlGetflReportsLogicalFlags) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  const int fl = router_.fcntl(fd, F_GETFL, 0);
  ASSERT_GE(fl, 0);
  EXPECT_EQ(fl & O_ACCMODE, O_RDWR);
  EXPECT_EQ(fl & O_APPEND, 0);
  EXPECT_EQ(fl & O_CREAT, 0);  // creation flags are not reported back
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, FcntlSetflTurnsOnAppendSemantics) {
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "abc");
  router_.lseek(fd, 0, SEEK_SET);
  const int fl = router_.fcntl(fd, F_GETFL, 0);
  ASSERT_EQ(router_.fcntl(fd, F_SETFL, fl | O_APPEND), 0);
  EXPECT_EQ(router_.fcntl(fd, F_GETFL, 0) & O_APPEND, O_APPEND);
  // The write must now land at EOF even though the cursor sits at 0.
  write_str(fd, "def");
  router_.lseek(fd, 0, SEEK_SET);
  EXPECT_EQ(read_str(fd, 8), "abcdef");
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, DirectoryOpenOfContainerFailsNotdir) {
  // A container is logically a regular file: open with O_DIRECTORY must
  // fail ENOTDIR just as it would on one. coreutils >= 9 probe the copy
  // target with open(O_PATH|O_DIRECTORY) — before the fix the probe
  // succeeded and `cp src container` copied *into* the container.
  const int fd = router_.open(mpath("f").c_str(), O_RDWR | O_CREAT, 0644);
  write_str(fd, "abc");
  EXPECT_EQ(router_.close(fd), 0);
  errno = 0;
  EXPECT_EQ(router_.open(mpath("f").c_str(), O_DIRECTORY | O_RDONLY, 0), -1);
  EXPECT_EQ(errno, ENOTDIR);
#ifdef O_PATH
  errno = 0;
  EXPECT_EQ(router_.open(mpath("f").c_str(), O_PATH | O_DIRECTORY, 0), -1);
  EXPECT_EQ(errno, ENOTDIR);
#endif
  // The mount root is a real directory — the probe must keep succeeding.
  const int dirfd =
      router_.open(mount_.path().c_str(), O_DIRECTORY | O_RDONLY, 0);
  EXPECT_GE(dirfd, 0);
  if (dirfd >= 0) EXPECT_EQ(router_.close(dirfd), 0);
}

TEST_F(RouterTest, FcntlPassthroughOutsideMount) {
  const std::string path = outside_.sub("plain");
  const int fd = router_.open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  ASSERT_FALSE(router_.is_plfs_fd(fd));
  const int fl = router_.fcntl(fd, F_GETFL, 0);
  ASSERT_GE(fl, 0);
  EXPECT_EQ(fl & O_ACCMODE, O_RDWR);
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, TwoAppendersInterleaveAtEof) {
  // Two O_APPEND handles on one logical file in one process. Each handle
  // buffers through its own write-behind stream, so the append position
  // must be EOF over *all* open handles at flush time — before the fix a
  // handle only drained itself and overwrote the other's buffered bytes.
  const int fd1 =
      router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  ASSERT_GE(fd1, 0);
  const int fd2 = router_.open(mpath("f").c_str(), O_WRONLY | O_APPEND, 0644);
  ASSERT_GE(fd2, 0);

  EXPECT_EQ(write_str(fd1, "aaa"), 3);
  EXPECT_EQ(write_str(fd2, "bb"), 2);   // must land at 3, not 0
  EXPECT_EQ(write_str(fd1, "c"), 1);    // must land at 5
  EXPECT_EQ(router_.close(fd1), 0);
  EXPECT_EQ(router_.close(fd2), 0);

  const int rd = router_.open(mpath("f").c_str(), O_RDONLY, 0);
  EXPECT_EQ(read_str(rd, 16), "aaabbc");
  struct ::stat st{};
  ASSERT_EQ(router_.fstat(rd, &st), 0);
  EXPECT_EQ(st.st_size, 6);
  EXPECT_EQ(router_.close(rd), 0);
}

TEST_F(RouterTest, RenameWithinMount) {
  const int fd = router_.open(mpath("a").c_str(), O_WRONLY | O_CREAT, 0644);
  write_str(fd, "data");
  router_.close(fd);
  EXPECT_EQ(router_.rename(mpath("a").c_str(), mpath("b").c_str()), 0);
  const int rd = router_.open(mpath("b").c_str(), O_RDONLY, 0);
  EXPECT_EQ(read_str(rd, 4), "data");
  router_.close(rd);
}

TEST_F(RouterTest, RenameOutOfMountIsExdev) {
  const int fd = router_.open(mpath("a").c_str(), O_WRONLY | O_CREAT, 0644);
  router_.close(fd);
  errno = 0;
  EXPECT_EQ(router_.rename(mpath("a").c_str(), outside_.sub("b").c_str()), -1);
  EXPECT_EQ(errno, EXDEV);
}

TEST_F(RouterTest, AccessOnContainer) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  router_.close(fd);
  EXPECT_EQ(router_.access(mpath("f").c_str(), F_OK), 0);
  EXPECT_EQ(router_.access(mpath("f").c_str(), R_OK | W_OK), 0);
  EXPECT_EQ(router_.access(mpath("ghost").c_str(), F_OK), -1);
}

TEST_F(RouterTest, ForeignFileInsideMountPassesThrough) {
  // Files created behind LDPLFS's back stay plain files.
  ASSERT_TRUE(posix::write_file(mpath("foreign"), "plain bytes").ok());
  const int fd = router_.open(mpath("foreign").c_str(), O_RDONLY, 0);
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(router_.is_plfs_fd(fd));
  EXPECT_EQ(read_str(fd, 64), "plain bytes");
  router_.close(fd);
}

TEST_F(RouterTest, RelativePathResolvesAgainstCwd) {
  char oldcwd[4096];
  ASSERT_NE(::getcwd(oldcwd, sizeof oldcwd), nullptr);
  ASSERT_EQ(::chdir(mount_.path().c_str()), 0);
  const int fd = router_.open("relfile", O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd));
  write_str(fd, "rel");
  router_.close(fd);
  ASSERT_EQ(::chdir(oldcwd), 0);
  EXPECT_TRUE(plfs::is_container(mpath("relfile")));
}

TEST_F(RouterTest, FsyncOnPlfsFdSucceeds) {
  const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
  write_str(fd, "x");
  EXPECT_EQ(router_.fsync(fd), 0);
  EXPECT_EQ(router_.fdatasync(fd), 0);
  router_.close(fd);
}

TEST_F(RouterTest, OTruncDropsOldContent) {
  {
    const int fd = router_.open(mpath("f").c_str(), O_WRONLY | O_CREAT, 0644);
    write_str(fd, "long old content");
    router_.close(fd);
  }
  const int fd =
      router_.open(mpath("f").c_str(), O_WRONLY | O_TRUNC, 0644);
  write_str(fd, "new");
  router_.close(fd);
  struct ::stat st{};
  ASSERT_EQ(router_.stat(mpath("f").c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 3);
}

TEST_F(RouterTest, ReadWriteOnNonPlfsFdPassesThrough) {
  const std::string path = outside_.sub("p");
  const int fd = router_.open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_str(fd, "pass"), 4);
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(read_str(fd, 4), "pass");
  EXPECT_EQ(router_.close(fd), 0);
}

TEST_F(RouterTest, StatSynthesizesStableUniqueIdentity) {
  for (const char* name : {"ident_a", "ident_b"}) {
    const int fd = router_.open(mpath(name).c_str(), O_WRONLY | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    write_str(fd, "x");
    router_.close(fd);
  }

  struct ::stat a1{};
  struct ::stat a2{};
  struct ::stat b{};
  ASSERT_EQ(router_.stat(mpath("ident_a").c_str(), &a1), 0);
  ASSERT_EQ(router_.stat(mpath("ident_a").c_str(), &a2), 0);
  ASSERT_EQ(router_.stat(mpath("ident_b").c_str(), &b), 0);

  // Tools like `find`, tar and rsync key on (st_dev, st_ino); all-zero
  // answers make every logical file look identical.
  EXPECT_NE(a1.st_ino, 0u);
  EXPECT_NE(a1.st_dev, 0u);
  EXPECT_EQ(a1.st_ino, a2.st_ino);  // stable across calls
  EXPECT_EQ(a1.st_dev, a2.st_dev);
  EXPECT_NE(a1.st_ino, b.st_ino);   // distinct files, distinct inodes
  EXPECT_EQ(a1.st_dev, b.st_dev);   // same mount, same device

  // fstat must agree with stat on the same logical file.
  const int fd = router_.open(mpath("ident_a").c_str(), O_RDONLY, 0);
  ASSERT_GE(fd, 0);
  struct ::stat fs{};
  ASSERT_EQ(router_.fstat(fd, &fs), 0);
  EXPECT_EQ(fs.st_ino, a1.st_ino);
  EXPECT_EQ(fs.st_dev, a1.st_dev);
  router_.close(fd);
}

TEST(RouterDup2Test, FailedDup2PreservesNewfdState) {
  ldplfs::testing::TempDir mount;
  MountTable mounts;
  mounts.add(mount.path());
  RealCalls rc = libc_calls();
  rc.dup2 = [](int, int) -> int {
    errno = EINTR;
    return -1;
  };
  Router router(rc, mounts);

  const int fd1 =
      router.open((mount.path() + "/a").c_str(), O_RDWR | O_CREAT, 0644);
  const int fd2 =
      router.open((mount.path() + "/b").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd1, 0);
  ASSERT_GE(fd2, 0);
  ASSERT_EQ(router.write(fd2, "keep", 4), 4);

  // dup2 fails at the kernel level: newfd's PLFS state must survive. The
  // old code retired newfd before calling real dup2, so a failure orphaned
  // a perfectly good descriptor.
  errno = 0;
  EXPECT_EQ(router.dup2(fd1, fd2), -1);
  EXPECT_EQ(errno, EINTR);
  EXPECT_TRUE(router.is_plfs_fd(fd2));

  ASSERT_EQ(router.lseek(fd2, 0, SEEK_SET), 0);
  char buf[4] = {0};
  EXPECT_EQ(router.read(fd2, buf, 4), 4);
  EXPECT_EQ(std::memcmp(buf, "keep", 4), 0);
  EXPECT_EQ(router.close(fd1), 0);
  EXPECT_EQ(router.close(fd2), 0);
}

TEST(RouterShadowFdTest, ShadowFdFailureClosesPlfsHandle) {
  ldplfs::testing::TempDir mount;
  MountTable mounts;
  mounts.add(mount.path());
  // Fail every real open: plfs_open succeeds (it bypasses RealCalls), then
  // make_shadow_fd cannot get a descriptor and open() must unwind.
  RealCalls rc = libc_calls();
  rc.open = [](const char*, int, mode_t) -> int {
    errno = ENFILE;
    return -1;
  };
  Router router(rc, mounts);

  stats::force_enable(true);
  const auto before = stats::snapshot();
  errno = 0;
  const int fd = router.open((mount.path() + "/f").c_str(),
                             O_WRONLY | O_CREAT, 0644);
  EXPECT_EQ(fd, -1);
  EXPECT_EQ(errno, ENFILE);

  // The handle opened before the shadow-fd failure must have been closed
  // again, or its container bookkeeping leaks for the process lifetime.
  const auto delta = stats::snapshot().since(before);
  EXPECT_EQ(delta.get(stats::Counter::kPlfsHandleOpened), 1u);
  EXPECT_EQ(delta.get(stats::Counter::kPlfsHandleClosed),
            delta.get(stats::Counter::kPlfsHandleOpened));
}

TEST_F(RouterTest, RoutedOpsAreCountedExactly) {
  stats::force_enable(true);
  const auto before = stats::snapshot();

  const int fd = router_.open(mpath("counted").c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_EQ(write_str(fd, "12345678"), 8);
  EXPECT_EQ(router_.lseek(fd, 0, SEEK_SET), 0);
  EXPECT_EQ(read_str(fd, 8), "12345678");
  EXPECT_EQ(router_.close(fd), 0);

  const auto delta = stats::snapshot().since(before);
  using C = stats::Counter;
  EXPECT_EQ(delta.get(C::kRouterOpenRouted), 1u);
  EXPECT_EQ(delta.get(C::kRouterWriteRouted), 1u);
  EXPECT_EQ(delta.get(C::kRouterWriteBytes), 8u);
  EXPECT_EQ(delta.get(C::kRouterReadRouted), 1u);
  EXPECT_EQ(delta.get(C::kRouterReadBytes), 8u);
  EXPECT_EQ(delta.get(C::kRouterLseekRouted), 1u);
  EXPECT_EQ(delta.get(C::kRouterCloseRouted), 1u);
  EXPECT_EQ(delta.get(C::kRouterOpenPassthrough), 0u);
}

}  // namespace
}  // namespace ldplfs::core
