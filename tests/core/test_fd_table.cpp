#include "core/fd_table.hpp"

#include <fcntl.h>
#include <gtest/gtest.h>

#include "plfs/plfs.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::core {
namespace {

std::shared_ptr<OpenFile> make_open_file(const std::string& path) {
  auto handle = plfs::plfs_open(path, O_CREAT | O_RDWR, 42);
  EXPECT_TRUE(handle.ok());
  return std::make_shared<OpenFile>(std::move(handle).value(),
                                    O_CREAT | O_RDWR, 42);
}

TEST(FdTableTest, InsertLookupErase) {
  ldplfs::testing::TempDir tmp;
  FdTable table;
  auto of = make_open_file(tmp.sub("f"));
  table.insert(10, of);
  EXPECT_TRUE(table.contains(10));
  EXPECT_EQ(table.lookup(10), of);
  EXPECT_EQ(table.size(), 1u);
  auto removed = table.erase(10);
  EXPECT_EQ(removed, of);
  EXPECT_FALSE(table.contains(10));
  EXPECT_EQ(table.lookup(10), nullptr);
}

TEST(FdTableTest, EraseMissingReturnsNull) {
  FdTable table;
  EXPECT_EQ(table.erase(99), nullptr);
}

TEST(FdTableTest, AliasSharesEntry) {
  ldplfs::testing::TempDir tmp;
  FdTable table;
  auto of = make_open_file(tmp.sub("f"));
  table.insert(10, of);
  table.alias(20, of);
  EXPECT_EQ(table.lookup(10), table.lookup(20));
  EXPECT_EQ(table.size(), 2u);
  table.erase(10);
  EXPECT_TRUE(table.contains(20));  // alias survives
}

TEST(FdTableTest, InsertOverwritesExisting) {
  ldplfs::testing::TempDir tmp;
  FdTable table;
  auto a = make_open_file(tmp.sub("a"));
  auto b = make_open_file(tmp.sub("b"));
  table.insert(5, a);
  table.insert(5, b);
  EXPECT_EQ(table.lookup(5), b);
  EXPECT_EQ(table.size(), 1u);
}

TEST(FdTableTest, ClearEmptiesTable) {
  ldplfs::testing::TempDir tmp;
  FdTable table;
  table.insert(1, make_open_file(tmp.sub("a")));
  table.insert(2, make_open_file(tmp.sub("b")));
  table.clear();
  EXPECT_EQ(table.size(), 0u);
}

TEST(OpenFileTest, CloseStreamIsIdempotent) {
  ldplfs::testing::TempDir tmp;
  auto of = make_open_file(tmp.sub("f"));
  EXPECT_TRUE(of->close_stream().ok());
  EXPECT_TRUE(of->close_stream().ok());
}

TEST(OpenFileTest, DestructorDropsOpenhostRegistration) {
  ldplfs::testing::TempDir tmp;
  const std::string path = tmp.sub("f");
  {
    auto of = make_open_file(path);
    const std::string data = "x";
    ASSERT_TRUE(of->handle()
                    .write(ldplfs::testing::as_bytes(data), 0, of->pid())
                    .ok());
    auto open_hosts = plfs::read_open_hosts(path);
    ASSERT_TRUE(open_hosts.ok());
    EXPECT_EQ(open_hosts.value().size(), 1u);
  }
  auto open_hosts = plfs::read_open_hosts(path);
  ASSERT_TRUE(open_hosts.ok());
  EXPECT_TRUE(open_hosts.value().empty());
}

}  // namespace
}  // namespace ldplfs::core
