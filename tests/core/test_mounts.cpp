#include "core/mounts.hpp"

#include <gtest/gtest.h>
#include <stdlib.h>

#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::core {
namespace {

TEST(MountTableTest, AddMatchRemove) {
  MountTable table;
  EXPECT_TRUE(table.empty());
  table.add("/mnt/plfs");
  EXPECT_FALSE(table.empty());
  EXPECT_EQ(table.match("/mnt/plfs/file"), "/mnt/plfs");
  EXPECT_EQ(table.match("/mnt/plfs"), "/mnt/plfs");
  EXPECT_FALSE(table.match("/mnt/plfsx").has_value());
  EXPECT_FALSE(table.match("/other").has_value());
  EXPECT_TRUE(table.remove("/mnt/plfs"));
  EXPECT_FALSE(table.remove("/mnt/plfs"));
  EXPECT_FALSE(table.match("/mnt/plfs/file").has_value());
}

TEST(MountTableTest, DuplicateAddIgnored) {
  MountTable table;
  table.add("/a");
  table.add("/a");
  table.add("/a/");
  EXPECT_EQ(table.mounts().size(), 1u);
}

TEST(MountTableTest, NestedMountsInnermostWins) {
  MountTable table;
  table.add("/outer");
  table.add("/outer/inner");
  EXPECT_EQ(table.match("/outer/inner/f"), "/outer/inner");
  EXPECT_EQ(table.match("/outer/f"), "/outer");
}

TEST(MountTableTest, NormalisesOnAdd) {
  MountTable table;
  table.add("/mnt//plfs/./x/..");
  EXPECT_EQ(table.match("/mnt/plfs/f"), "/mnt/plfs");
}

TEST(MountTableTest, LoadFromEnvColonList) {
  ::setenv("LDPLFS_MOUNTS", "/env/a:/env/b", 1);
  ::unsetenv("PLFS_MOUNTS");
  ::unsetenv("LDPLFS_RC");
  MountTable table;
  EXPECT_EQ(table.load_from_env(), 2);
  EXPECT_TRUE(table.match("/env/a/x").has_value());
  EXPECT_TRUE(table.match("/env/b/x").has_value());
  ::unsetenv("LDPLFS_MOUNTS");
}

TEST(MountTableTest, LoadFromPlfsMountsAlias) {
  ::unsetenv("LDPLFS_MOUNTS");
  ::setenv("PLFS_MOUNTS", "/alias/mount", 1);
  MountTable table;
  EXPECT_EQ(table.load_from_env(), 1);
  EXPECT_TRUE(table.match("/alias/mount/f").has_value());
  ::unsetenv("PLFS_MOUNTS");
}

TEST(MountTableTest, RcFileParsing) {
  ldplfs::testing::TempDir tmp;
  const std::string rc = tmp.sub("plfsrc");
  ASSERT_TRUE(posix::write_file(rc,
                                "# comment\n"
                                "mount /rc/one\n"
                                "\n"
                                "garbage line here\n"
                                "mount /rc/two\n")
                  .ok());
  MountTable table;
  EXPECT_EQ(table.load_rc_file(rc), 2);
  EXPECT_TRUE(table.match("/rc/one/f").has_value());
  EXPECT_TRUE(table.match("/rc/two/f").has_value());
}

TEST(MountTableTest, RcFileMissingIsZero) {
  MountTable table;
  EXPECT_EQ(table.load_rc_file("/definitely/not/here"), 0);
}

}  // namespace
}  // namespace ldplfs::core
