// Concurrency tests: the router (and everything under it) is hit by real
// applications from many threads at once — OpenMP I/O phases, background
// checkpoint threads. These tests hammer shared state (mount table, fd
// table, one container's writer map) from std::threads and verify nothing
// tears. Run under the default build; they are also the interesting ones
// under TSan.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "core/router.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::core {
namespace {

class RouterThreadsTest : public ::testing::Test {
 protected:
  RouterThreadsTest() : router_(libc_calls(), mounts_) {
    mounts_.add(mount_.path());
  }
  ldplfs::testing::TempDir mount_;
  MountTable mounts_;
  Router router_;
};

TEST_F(RouterThreadsTest, ThreadsOnSeparateFiles) {
  constexpr int kThreads = 8;
  constexpr int kBlocks = 32;
  std::atomic<int> failures{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string path =
          mount_.sub("file" + std::to_string(t) + ".dat");
      const int fd = router_.open(path.c_str(),
                                  O_RDWR | O_CREAT | O_TRUNC, 0644);
      if (fd < 0) {
        ++failures;
        return;
      }
      std::vector<char> block(4096, static_cast<char>('A' + t));
      for (int b = 0; b < kBlocks; ++b) {
        if (router_.write(fd, block.data(), block.size()) !=
            static_cast<ssize_t>(block.size())) {
          ++failures;
        }
      }
      // Verify own content.
      std::vector<char> check(4096);
      for (int b = 0; b < kBlocks; ++b) {
        if (router_.pread(fd, check.data(), check.size(), b * 4096) !=
                static_cast<ssize_t>(check.size()) ||
            std::memcmp(check.data(), block.data(), check.size()) != 0) {
          ++failures;
        }
      }
      if (router_.close(fd) != 0) ++failures;
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

TEST_F(RouterThreadsTest, ThreadsShareOneLogicalFileViaPwrite) {
  // The checkpoint pattern: each thread owns a disjoint region of one file
  // and uses positional I/O (no shared cursor).
  constexpr int kThreads = 8;
  constexpr std::size_t kRegion = 64 * 1024;
  const std::string path = mount_.sub("shared.dat");
  const int fd = router_.open(path.c_str(), O_RDWR | O_CREAT, 0644);
  ASSERT_GE(fd, 0);

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<char> data(kRegion, static_cast<char>('a' + t));
      if (router_.pwrite(fd, data.data(), data.size(),
                         static_cast<off_t>(t * kRegion)) !=
          static_cast<ssize_t>(kRegion)) {
        ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_EQ(failures.load(), 0);

  for (int t = 0; t < kThreads; ++t) {
    std::vector<char> check(kRegion);
    ASSERT_EQ(router_.pread(fd, check.data(), check.size(),
                            static_cast<off_t>(t * kRegion)),
              static_cast<ssize_t>(kRegion));
    for (std::size_t i = 0; i < kRegion; i += 4097) {
      ASSERT_EQ(check[i], 'a' + t) << "region " << t << " byte " << i;
    }
  }
  EXPECT_EQ(router_.close(fd), 0);

  struct ::stat st{};
  ASSERT_EQ(router_.stat(path.c_str(), &st), 0);
  EXPECT_EQ(st.st_size, static_cast<off_t>(kThreads * kRegion));
}

TEST_F(RouterThreadsTest, ConcurrentOpenCloseChurn) {
  // fd table churn: threads open/close the same container repeatedly while
  // others stat it. No crashes, no fd leaks into wrong entries.
  const std::string path = mount_.sub("churn.dat");
  {
    const int fd = router_.open(path.c_str(), O_WRONLY | O_CREAT, 0644);
    ASSERT_GE(fd, 0);
    router_.write(fd, "seed", 4);
    router_.close(fd);
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        const int fd = router_.open(path.c_str(), O_RDONLY, 0);
        if (fd < 0) {
          ++failures;
          continue;
        }
        char buf[4];
        if (router_.pread(fd, buf, 4, 0) != 4 ||
            std::memcmp(buf, "seed", 4) != 0) {
          ++failures;
        }
        if (router_.close(fd) != 0) ++failures;
      }
    });
  }
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        struct ::stat st{};
        if (router_.stat(path.c_str(), &st) != 0 || st.st_size != 4) {
          ++failures;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_EQ(router_.fd_table().size(), 0u);
}

TEST_F(RouterThreadsTest, MountTableConcurrentReaders) {
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 1000; ++i) {
        if (!router_.path_in_mount(mount_.sub("x").c_str())) ++failures;
        if (router_.path_in_mount("/definitely/elsewhere")) ++failures;
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace ldplfs::core
