// Resilience engine: the configurable transient-retry policy (LDPLFS_RETRY).
//
// Exercises parse_retry / next_backoff_ms directly, then pins the exact
// attempt accounting of every posix helper that owns a retry budget:
// `errno=EAGAIN:count=K` fault plans must produce exactly K retry.attempted
// bumps (success, budget not exhausted), and an unbounded transient clause
// must burn precisely `attempts` retries before surfacing the errno and
// bumping retry.exhausted once.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <pthread.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdint>
#include <span>
#include <string>
#include <thread>

#include "common/health.hpp"
#include "common/stats.hpp"
#include "posix/faults.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::posix {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

std::uint64_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Deterministic ground state: no fault plan, default health policies with
/// zero-length backoff sleeps (exact counts, fast tests), stats collection
/// forced on so the retry counters are observable.
class RetryPolicyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::clear();
    health::reset();
    health::set_retry_policy({4, 0, 0});
    stats::force_enable(true);
    stats::reset();
  }
  void TearDown() override {
    faults::clear();
    health::reset();
    stats::reset();
    stats::force_enable(false);
  }

  stats::Snapshot since(const stats::Snapshot& before) {
    return stats::snapshot().since(before);
  }

  TempDir tmp_;
};

TEST_F(RetryPolicyTest, ParseRetryAcceptsAndRejects) {
  health::RetryPolicy p;
  ASSERT_TRUE(health::parse_retry("6,2,50", p));
  EXPECT_EQ(p.attempts, 6);
  EXPECT_EQ(p.base_ms, 2u);
  EXPECT_EQ(p.max_ms, 50u);
  ASSERT_TRUE(health::parse_retry("0,0,0", p));  // retries can be disabled
  EXPECT_EQ(p.attempts, 0);

  std::string error;
  EXPECT_FALSE(health::parse_retry("", p, &error));
  EXPECT_FALSE(health::parse_retry("4,1", p, &error));
  EXPECT_FALSE(health::parse_retry("a,b,c", p, &error));
  EXPECT_FALSE(health::parse_retry("-1,1,8", p, &error));
  EXPECT_FALSE(health::parse_retry("4,8,2", p, &error));  // max < base
  EXPECT_NE(error.find("max_ms"), std::string::npos);
  EXPECT_FALSE(health::parse_retry("5000,1,8", p, &error));  // absurd budget
}

TEST_F(RetryPolicyTest, BackoffIsDecorrelatedJitterWithinBounds) {
  health::set_retry_policy({4, 5, 40});
  // First retry sleeps exactly base_ms.
  EXPECT_EQ(health::next_backoff_ms(0), 5u);
  // Later sleeps are uniform in [base, min(max, 3 * prev)].
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t next = health::next_backoff_ms(8);
    EXPECT_GE(next, 5u);
    EXPECT_LE(next, 24u);
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_LE(health::next_backoff_ms(1000), 40u);  // clamped to the ceiling
  }
}

TEST_F(RetryPolicyTest, PwriteAllCountsRetriesExactly) {
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(faults::configure("pwrite:errno=EAGAIN:count=3"));
  const auto before = stats::snapshot();
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("data"), 0).ok());
  const auto d = since(before);
  EXPECT_EQ(d.get(stats::Counter::kRetryAttempted), 3u);
  EXPECT_EQ(d.get(stats::Counter::kRetryExhausted), 0u);
}

TEST_F(RetryPolicyTest, PwriteAllExhaustsTheBudget) {
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(faults::configure("pwrite:errno=EAGAIN"));
  const auto before = stats::snapshot();
  EXPECT_EQ(pwrite_all(fd.value().get(), as_bytes("data"), 0).error_code(),
            EAGAIN);
  const auto d = since(before);
  // 1 initial try + `attempts` retries, then the errno surfaces.
  EXPECT_EQ(d.get(stats::Counter::kRetryAttempted), 4u);
  EXPECT_EQ(d.get(stats::Counter::kRetryExhausted), 1u);
}

TEST_F(RetryPolicyTest, WriteAllCountsRetriesExactly) {
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(faults::configure("write:errno=EAGAIN:count=2"));
  const auto before = stats::snapshot();
  EXPECT_TRUE(write_all(fd.value().get(), as_bytes("data")).ok());
  EXPECT_EQ(since(before).get(stats::Counter::kRetryAttempted), 2u);

  ASSERT_TRUE(faults::configure("write:errno=EAGAIN"));
  const auto mid = stats::snapshot();
  EXPECT_EQ(write_all(fd.value().get(), as_bytes("more")).error_code(),
            EAGAIN);
  const auto d = since(mid);
  EXPECT_EQ(d.get(stats::Counter::kRetryAttempted), 4u);
  EXPECT_EQ(d.get(stats::Counter::kRetryExhausted), 1u);
}

TEST_F(RetryPolicyTest, PreadAllCountsRetriesExactly) {
  const std::string path = tmp_.sub("f");
  ASSERT_TRUE(write_file(path, "0123456789").ok());
  auto fd = open_fd(path, O_RDONLY);
  ASSERT_TRUE(fd.ok());

  ASSERT_TRUE(faults::configure("pread:errno=EAGAIN:count=2"));
  std::string out(10, '\0');
  const auto before = stats::snapshot();
  EXPECT_TRUE(pread_all(fd.value().get(),
                        std::span<std::byte>(
                            reinterpret_cast<std::byte*>(out.data()),
                            out.size()),
                        0)
                  .ok());
  EXPECT_EQ(out, "0123456789");  // retried reads still move the right bytes
  EXPECT_EQ(since(before).get(stats::Counter::kRetryAttempted), 2u);

  ASSERT_TRUE(faults::configure("pread:errno=EAGAIN"));
  const auto mid = stats::snapshot();
  EXPECT_EQ(pread_all(fd.value().get(),
                      std::span<std::byte>(
                          reinterpret_cast<std::byte*>(out.data()),
                          out.size()),
                      0)
                .error_code(),
            EAGAIN);
  const auto d = since(mid);
  EXPECT_EQ(d.get(stats::Counter::kRetryAttempted), 4u);
  EXPECT_EQ(d.get(stats::Counter::kRetryExhausted), 1u);
}

TEST_F(RetryPolicyTest, OpenFdCountsRetriesExactly) {
  ASSERT_TRUE(faults::configure("open:errno=EAGAIN:count=2"));
  const auto before = stats::snapshot();
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  EXPECT_TRUE(fd.ok());
  EXPECT_EQ(since(before).get(stats::Counter::kRetryAttempted), 2u);

  ASSERT_TRUE(faults::configure("open:errno=EAGAIN"));
  const auto mid = stats::snapshot();
  EXPECT_EQ(open_fd(tmp_.sub("g"), O_WRONLY | O_CREAT, 0644).error_code(),
            EAGAIN);
  const auto d = since(mid);
  EXPECT_EQ(d.get(stats::Counter::kRetryAttempted), 4u);
  EXPECT_EQ(d.get(stats::Counter::kRetryExhausted), 1u);
}

TEST_F(RetryPolicyTest, FsyncAndCloseGetTheSameTreatment) {
  // The satellite fix: fsync and close used to surface the first transient
  // error while the data movers retried it. Now one budget covers them all.
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());

  ASSERT_TRUE(faults::configure("fsync:errno=EIO:count=2"));
  const auto before = stats::snapshot();
  EXPECT_TRUE(fsync_fd(fd.value().get()).ok());
  EXPECT_EQ(since(before).get(stats::Counter::kRetryAttempted), 2u);

  ASSERT_TRUE(faults::configure("close:errno=EAGAIN:count=1"));
  const auto mid = stats::snapshot();
  EXPECT_TRUE(close_fd(fd.value().release()).ok());
  EXPECT_EQ(since(mid).get(stats::Counter::kRetryAttempted), 1u);
}

TEST_F(RetryPolicyTest, CustomBudgetIsHonoured) {
  health::set_retry_policy({2, 0, 0});
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(faults::configure("pwrite:errno=EAGAIN"));
  const auto before = stats::snapshot();
  EXPECT_EQ(pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
            EAGAIN);
  auto d = since(before);
  EXPECT_EQ(d.get(stats::Counter::kRetryAttempted), 2u);
  EXPECT_EQ(d.get(stats::Counter::kRetryExhausted), 1u);

  // attempts=0 disables retries entirely: the first transient surfaces.
  health::set_retry_policy({0, 0, 0});
  const auto mid = stats::snapshot();
  EXPECT_EQ(pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
            EAGAIN);
  d = since(mid);
  EXPECT_EQ(d.get(stats::Counter::kRetryAttempted), 0u);
  EXPECT_EQ(d.get(stats::Counter::kRetryExhausted), 1u);
}

TEST_F(RetryPolicyTest, BackoffActuallySleeps) {
  health::set_retry_policy({2, 10, 20});
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(faults::configure("pwrite:errno=EAGAIN:count=2"));
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("data"), 0).ok());
  // Two backoff sleeps, each at least base_ms = 10ms.
  EXPECT_GE(elapsed_ms(start), 18u);
}

extern "C" void retry_test_noop_handler(int) {}

TEST_F(RetryPolicyTest, BackoffSurvivesSignalStorms) {
  // The satellite fix for backoff_sleep: an EINTR used to truncate the
  // sleep, so a signal-heavy process burned its whole retry budget in
  // microseconds. nanosleep must now resume with the remaining time.
  struct sigaction sa{};
  sa.sa_handler = retry_test_noop_handler;
  ::sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // deliberately no SA_RESTART: every signal EINTRs
  struct sigaction old{};
  ASSERT_EQ(::sigaction(SIGUSR2, &sa, &old), 0);

  health::set_retry_policy({1, 60, 60});
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(faults::configure("pwrite:errno=EAGAIN:count=1"));

  std::atomic<bool> stop{false};
  pthread_t victim = ::pthread_self();
  std::thread pinger([&stop, victim] {
    while (!stop.load(std::memory_order_relaxed)) {
      ::pthread_kill(victim, SIGUSR2);
      ::usleep(2000);
    }
  });
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("data"), 0).ok());
  const std::uint64_t took = elapsed_ms(start);
  stop.store(true);
  pinger.join();
  ::sigaction(SIGUSR2, &old, nullptr);
  // One 60ms backoff under a ~2ms signal storm: the truncation bug would
  // finish in a couple of milliseconds.
  EXPECT_GE(took, 50u);
}

}  // namespace
}  // namespace ldplfs::posix
