// Resilience engine: the per-backend circuit breaker and its degraded modes.
//
// Covers the full state machine (closed → open → half-open → closed/open),
// sticky-errno fail-fast, the LDPLFS_ON_FAILURE policies (errors / readonly
// / passthrough), and the acceptance criterion of the issue: a 1000-op
// victim against a hard-failing backend must complete in a small fraction
// of the naive retry-budget time because the breaker fails fast.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iterator>
#include <span>
#include <string>
#include <vector>

#include "common/health.hpp"
#include "common/stats.hpp"
#include "core/router.hpp"
#include "plfs/plfs.hpp"
#include "posix/faults.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;
namespace faults = ldplfs::posix::faults;

constexpr pid_t kPid = 4242;

std::uint64_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

/// Snapshot entry for the backend owning `path` ("*" fallback when no mount
/// is registered). Fails the test when the backend is untracked.
health::BackendSnapshot backend_snapshot(const std::string& root) {
  for (const auto& b : health::snapshot()) {
    if (b.root == root) return b;
  }
  ADD_FAILURE() << "no tracked backend with root " << root;
  return {};
}

class BreakerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::clear();
    health::reset();
    health::set_retry_policy({0, 0, 0});  // isolate the breaker from retries
    stats::force_enable(true);
    stats::reset();
  }
  void TearDown() override {
    faults::clear();
    health::reset();
    stats::reset();
    stats::force_enable(false);
  }

  TempDir tmp_;
};

TEST_F(BreakerTest, ParseBreakerAcceptsAndRejects) {
  health::BreakerConfig c;
  ASSERT_TRUE(health::parse_breaker("3,16,250", c));
  EXPECT_TRUE(c.enabled);  // naming a config arms the breaker
  EXPECT_EQ(c.threshold, 3u);
  EXPECT_EQ(c.window, 16u);
  EXPECT_EQ(c.cooldown_ms, 250u);

  EXPECT_FALSE(health::parse_breaker("", c));
  EXPECT_FALSE(health::parse_breaker("3,16", c));
  EXPECT_FALSE(health::parse_breaker("0,16,250", c));   // threshold > 0
  EXPECT_FALSE(health::parse_breaker("16,3,250", c));   // window >= threshold
  EXPECT_FALSE(health::parse_breaker("1,9999,0", c));   // window cap
  EXPECT_FALSE(health::parse_breaker("a,b,c", c));

  health::FailurePolicy p;
  EXPECT_TRUE(health::parse_failure_policy("errors", p));
  EXPECT_TRUE(health::parse_failure_policy("readonly", p));
  EXPECT_TRUE(health::parse_failure_policy("passthrough", p));
  EXPECT_FALSE(health::parse_failure_policy("explode", p));
}

TEST_F(BreakerTest, DisabledBreakerNeverRejects) {
  // Default config: health tracking on, breaker off — persistent failures
  // keep surfacing their real errno and nothing fails fast.
  ASSERT_TRUE(faults::configure("pwrite:errno=ENOSPC"));
  auto fd = posix::open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(
        posix::pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
        ENOSPC);
  }
  const auto b = backend_snapshot("*");
  EXPECT_EQ(b.state, health::BreakerState::kClosed);
  EXPECT_EQ(b.fast_fails, 0u);
  EXPECT_EQ(b.trips, 0u);
  EXPECT_EQ(b.failures, 20u);
}

TEST_F(BreakerTest, TripsFailsFastAndRecoversThroughAProbe) {
  health::set_breaker_config({true, 2, 8, 100});
  auto fd = posix::open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());

  ASSERT_TRUE(faults::configure("pwrite:errno=ENOSPC"));
  EXPECT_EQ(
      posix::pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
      ENOSPC);
  EXPECT_EQ(
      posix::pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
      ENOSPC);
  auto b = backend_snapshot("*");
  EXPECT_EQ(b.state, health::BreakerState::kOpen);
  EXPECT_EQ(b.sticky_errno, ENOSPC);
  EXPECT_EQ(b.trips, 1u);

  // Fail fast with the sticky errno: the fault plan is gone, the breaker
  // alone produces the error and no syscall is issued.
  faults::clear();
  EXPECT_EQ(
      posix::pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
      ENOSPC);
  b = backend_snapshot("*");
  EXPECT_GE(b.fast_fails, 1u);

  // Before the cooldown elapses every op keeps failing fast.
  EXPECT_EQ(
      posix::pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
      ENOSPC);

  // After the cooldown one op is admitted as the half-open probe; its
  // success closes the breaker and full service resumes.
  ::usleep(150 * 1000);
  EXPECT_TRUE(posix::pwrite_all(fd.value().get(), as_bytes("ok"), 0).ok());
  b = backend_snapshot("*");
  EXPECT_EQ(b.state, health::BreakerState::kClosed);
  EXPECT_EQ(b.sticky_errno, 0);
  EXPECT_EQ(b.probes_ok, 1u);
  EXPECT_TRUE(posix::pwrite_all(fd.value().get(), as_bytes("!!"), 2).ok());
}

TEST_F(BreakerTest, FailedProbeReopensTheBreaker) {
  health::set_breaker_config({true, 2, 8, 80});
  auto fd = posix::open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(faults::configure("pwrite:errno=ENOSPC"));
  (void)posix::pwrite_all(fd.value().get(), as_bytes("x"), 0);
  (void)posix::pwrite_all(fd.value().get(), as_bytes("x"), 0);
  ASSERT_EQ(backend_snapshot("*").state, health::BreakerState::kOpen);

  // The backend is still sick: the probe fails and the breaker re-opens,
  // restarting the cooldown clock.
  ::usleep(120 * 1000);
  EXPECT_EQ(
      posix::pwrite_all(fd.value().get(), as_bytes("x"), 0).error_code(),
      ENOSPC);
  auto b = backend_snapshot("*");
  EXPECT_EQ(b.state, health::BreakerState::kOpen);
  EXPECT_EQ(b.probes_failed, 1u);
  EXPECT_EQ(b.trips, 2u);

  // Second probe, backend healthy again: recovery completes.
  faults::clear();
  ::usleep(120 * 1000);
  EXPECT_TRUE(posix::pwrite_all(fd.value().get(), as_bytes("ok"), 0).ok());
  b = backend_snapshot("*");
  EXPECT_EQ(b.state, health::BreakerState::kClosed);
  EXPECT_EQ(b.probes_ok, 1u);
}

TEST_F(BreakerTest, ThousandOpVictimFailsFastWithinBudget) {
  // Acceptance criterion: with LDPLFS_RETRY=4,1,8 a naive 1000-op victim
  // against a dead backend would sleep >= 1000 * 4 * 1ms = 4s in backoff
  // alone. The breaker must cut that to a small fraction.
  health::set_retry_policy({4, 1, 8});
  health::set_breaker_config({true, 8, 32, 60'000});
  ASSERT_TRUE(faults::configure("pwrite:errno=EIO"));
  auto fd = posix::open_fd(tmp_.sub("victim"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());

  const auto start = std::chrono::steady_clock::now();
  int failures = 0;
  for (int i = 0; i < 1000; ++i) {
    const auto st = posix::pwrite_all(fd.value().get(), as_bytes("data"), 0);
    if (!st.ok() && st.error_code() == EIO) ++failures;
  }
  const std::uint64_t took = elapsed_ms(start);
  EXPECT_EQ(failures, 1000);
  EXPECT_LT(took, 2000u);  // vs >= 4000ms of pure backoff without a breaker

  const auto b = backend_snapshot("*");
  EXPECT_EQ(b.state, health::BreakerState::kOpen);
  EXPECT_EQ(b.sticky_errno, EIO);
  EXPECT_EQ(b.trips, 1u);
  EXPECT_GE(b.fast_fails, 990u);
  EXPECT_GE(stats::snapshot().get(stats::Counter::kBreakerFastFail), 990u);
}

TEST_F(BreakerTest, ReadonlyModeKeepsServingReads) {
  // Build a healthy container first.
  const std::string path = tmp_.sub("container");
  const std::string payload = "bytes that must stay readable";
  {
    auto fd = plfs::plfs_open(path, O_CREAT | O_WRONLY, kPid);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(
        fd.value()->write(as_bytes(payload), 0, kPid).ok());
    ASSERT_TRUE(plfs::plfs_close(fd.value(), kPid).ok());
  }

  // Degrade: breaker open, readonly policy, long cooldown so no probe
  // sneaks in mid-test.
  health::set_failure_policy(health::FailurePolicy::kReadonly);
  health::set_breaker_config({true, 1, 8, 60'000});
  health::trip(path, EIO);
  ASSERT_EQ(backend_snapshot("*").state, health::BreakerState::kOpen);

  // Writes are refused with EROFS...
  EXPECT_EQ(plfs::plfs_open(tmp_.sub("new"), O_CREAT | O_WRONLY, kPid)
                .error_code(),
            EROFS);
  {
    auto fd = plfs::plfs_open(path, O_WRONLY, kPid);
    if (fd.ok()) {
      EXPECT_EQ(
          fd.value()->write(as_bytes("nope"), 0, kPid).error_code(), EROFS);
      (void)plfs::plfs_close(fd.value(), kPid);
    } else {
      EXPECT_EQ(fd.error_code(), EROFS);
    }
  }

  // ...but reads of the existing container still serve the exact bytes.
  auto rd = plfs::plfs_open(path, O_RDONLY, kPid);
  ASSERT_TRUE(rd.ok());
  std::string got(payload.size(), '\0');
  auto n = plfs::plfs_read(
      *rd.value(),
      std::span<std::byte>(reinterpret_cast<std::byte*>(got.data()),
                           got.size()),
      0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_TRUE(plfs::plfs_close(rd.value(), kPid).ok());
}

/// Router-level passthrough: while the breaker is open the router routes
/// new opens around PLFS to the real filesystem.
class PassthroughTest : public ::testing::Test {
 protected:
  PassthroughTest() : router_(core::libc_calls(), mounts_) {
    faults::clear();
    health::reset();
    mounts_.add(mount_.path());  // registers the mount as a health backend
    stats::force_enable(true);
    stats::reset();
  }
  ~PassthroughTest() override {
    faults::clear();
    health::reset();
    stats::reset();
    stats::force_enable(false);
  }

  std::string mpath(const std::string& name) { return mount_.sub(name); }

  TempDir mount_;
  core::MountTable mounts_;
  core::Router router_;
};

TEST_F(PassthroughTest, OpenBypassesPlfsWhileBreakerIsOpen) {
  health::set_failure_policy(health::FailurePolicy::kPassthrough);
  health::set_breaker_config({true, 1, 8, 60'000});

  // Healthy: opens inside the mount are routed into PLFS.
  int fd = router_.open(mpath("routed").c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_TRUE(router_.is_plfs_fd(fd));
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_TRUE(plfs::plfs_is_container(mpath("routed")));

  // Breaker open: the same open falls through to the real filesystem —
  // the application keeps running, just without PLFS semantics.
  health::trip(mpath("routed"), EIO);
  fd = router_.open(mpath("bypassed").c_str(), O_WRONLY | O_CREAT, 0644);
  ASSERT_GE(fd, 0);
  EXPECT_FALSE(router_.is_plfs_fd(fd));
  const char* text = "plain bytes";
  EXPECT_EQ(router_.write(fd, text, std::strlen(text)),
            static_cast<ssize_t>(std::strlen(text)));
  EXPECT_EQ(router_.close(fd), 0);
  EXPECT_FALSE(plfs::plfs_is_container(mpath("bypassed")));
  // Read back with plain iostreams: the posix helpers are admission-gated
  // under passthrough (only *opens* are rerouted), which is the point.
  std::ifstream in(mpath("bypassed"), std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, text);
}

}  // namespace
}  // namespace ldplfs
