// Resilience engine soak: a flapping backend under a randomized (but
// deterministically seeded) fault schedule, several PLFS streams at once.
//
// Alternating rounds inject probabilistic EIO on the data-dropping pwrites
// (p=, path= fault grammar) and then lift the faults. The run must observe
// the breaker tripping at least once, the backend recovering through a
// half-open probe after the faults clear, and — the actual point — every
// chunk that a stream successfully sync()ed must read back byte-exact
// afterwards, no matter when its stream died.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/health.hpp"
#include "common/stats.hpp"
#include "plfs/plfs.hpp"
#include "posix/faults.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::random_bytes;
using ldplfs::testing::to_string;
namespace faults = ldplfs::posix::faults;

constexpr pid_t kPid = 11;
constexpr std::size_t kChunk = 2048;
constexpr int kStreams = 4;
constexpr int kRounds = 10;

class ResilienceSoakTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::clear();
    health::reset();
    health::set_retry_policy({1, 0, 1});
    health::set_breaker_config({true, 5, 20, 50});
    stats::force_enable(true);
    stats::reset();
    ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
    ::setenv("LDPLFS_WRITE_BUFFER", "4096", 1);
  }
  void TearDown() override {
    faults::clear();
    health::reset();
    stats::reset();
    stats::force_enable(false);
    ::unsetenv("LDPLFS_WRITE_BEHIND");
    ::unsetenv("LDPLFS_WRITE_BUFFER");
  }

  std::string chunk_for(int stream, int round) {
    return to_string(random_bytes(
        kChunk, 1000ull * static_cast<std::uint64_t>(stream) +
                    static_cast<std::uint64_t>(round)));
  }

  TempDir tmp_;
};

TEST_F(ResilienceSoakTest, FlappingBackendTripsRecoversAndLosesNoSyncedData) {
  struct Stream {
    std::shared_ptr<FileHandle> fd;
    std::vector<int> synced_rounds;  // rounds whose sync() returned success
    bool dead = false;
  };
  std::vector<Stream> streams(kStreams);
  for (int i = 0; i < kStreams; ++i) {
    auto fd =
        plfs_open(tmp_.sub("c" + std::to_string(i)), O_CREAT | O_WRONLY, kPid);
    ASSERT_TRUE(fd.ok());
    streams[i].fd = fd.value();
  }

  for (int round = 0; round < kRounds; ++round) {
    if (round % 2 == 1) {
      // Flap on: most data-dropping pwrites fail with EIO. Index and
      // metadata writes stay healthy (path= scoping), so only the data
      // path and the breaker are in play.
      ASSERT_TRUE(
          faults::configure("pwrite:p=0.85:errno=EIO:path=dropping.data"));
    } else {
      faults::clear();
    }
    for (int i = 0; i < kStreams; ++i) {
      Stream& s = streams[i];
      if (s.dead) continue;  // poisoned streams stay sticky, by design
      const std::string chunk = chunk_for(i, round);
      const auto wrote = s.fd->write(
          ldplfs::testing::as_bytes(chunk),
          static_cast<std::uint64_t>(round) * kChunk, kPid);
      if (!wrote.ok() || !s.fd->sync(kPid).ok()) {
        s.dead = true;  // a write or sync failure poisons the stream
        continue;
      }
      s.synced_rounds.push_back(round);
    }
  }
  faults::clear();

  // The flapping must have tripped the breaker at least once. (The fault
  // schedule is deterministically seeded, so this is stable across runs.)
  const auto after_rounds = stats::snapshot();
  EXPECT_GE(after_rounds.get(stats::Counter::kBreakerOpened), 1u);
  EXPECT_GE(after_rounds.get(stats::Counter::kBreakerFastFail), 1u);

  // Tear the writers down; poisoned streams report their sticky errno.
  for (auto& s : streams) {
    (void)plfs_close(s.fd, kPid);
    s.fd.reset();
  }

  // With the faults gone the backend must heal: after the cooldown a probe
  // closes the breaker and fresh streams work end to end.
  ::usleep(100 * 1000);
  bool recovered = false;
  for (int attempt = 0; attempt < 50 && !recovered; ++attempt) {
    auto fd = plfs_open(tmp_.sub("recovery" + std::to_string(attempt)),
                        O_CREAT | O_WRONLY, kPid);
    if (fd.ok() && fd.value()->write(ldplfs::testing::as_bytes("probe"), 0,
                                     kPid)
                       .ok() &&
        plfs_sync(*fd.value(), kPid).ok() &&
        plfs_close(fd.value(), kPid).ok()) {
      recovered = true;
      break;
    }
    ::usleep(20 * 1000);
  }
  EXPECT_TRUE(recovered);
  EXPECT_GE(stats::snapshot().get(stats::Counter::kBreakerClosed), 1u);
  for (const auto& b : health::snapshot()) {
    EXPECT_EQ(b.state, health::BreakerState::kClosed) << "backend " << b.root;
  }

  // Zero data loss on acknowledged syncs: every synced chunk reads back
  // byte-exact from its container.
  std::size_t verified = 0;
  for (int i = 0; i < kStreams; ++i) {
    if (streams[i].synced_rounds.empty()) continue;
    auto rd = plfs_open(tmp_.sub("c" + std::to_string(i)), O_RDONLY, kPid);
    ASSERT_TRUE(rd.ok());
    for (const int round : streams[i].synced_rounds) {
      const std::string want = chunk_for(i, round);
      std::string got(kChunk, '\0');
      auto n = plfs_read(
          *rd.value(),
          std::span<std::byte>(reinterpret_cast<std::byte*>(got.data()),
                               got.size()),
          static_cast<std::uint64_t>(round) * kChunk);
      ASSERT_TRUE(n.ok());
      EXPECT_EQ(n.value(), kChunk);
      EXPECT_EQ(got, want) << "stream " << i << " round " << round;
      ++verified;
    }
    EXPECT_TRUE(plfs_close(rd.value(), kPid).ok());
  }
  // The even (healthy) rounds guarantee some acknowledged data exists even
  // if every stream eventually died during a flap.
  EXPECT_GT(verified, 0u);
}

}  // namespace
}  // namespace ldplfs::plfs
