// Resilience engine: the LDPLFS_FLUSH_DEADLINE_MS flush watchdog.
//
// A hung backend pwrite (modelled with a pwrite:delay fault scoped to the
// data dropping) must not hang the drain barriers: close()/sync() abandon
// the in-flight flush when the deadline expires, poison the stream with
// ETIMEDOUT, bump wb.flush.timeout, and trip the backend's breaker. Data
// synced before the hang stays readable; the abandoned bytes were never
// indexed and stay invisible.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <span>
#include <string>

#include "common/health.hpp"
#include "common/stats.hpp"
#include "plfs/plfs.hpp"
#include "plfs/write_file.hpp"
#include "posix/faults.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::plfs {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;
using ldplfs::testing::random_bytes;
namespace faults = ldplfs::posix::faults;

constexpr pid_t kPid = 7;

std::uint64_t elapsed_ms(std::chrono::steady_clock::time_point start) {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

class FlushDeadlineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    faults::clear();
    health::reset();
    stats::force_enable(true);
    stats::reset();
    ::setenv("LDPLFS_WRITE_BEHIND", "1", 1);
    ::unsetenv("LDPLFS_WRITE_BUFFER");
    ::unsetenv("LDPLFS_FLUSH_DEADLINE_MS");
  }
  void TearDown() override {
    faults::clear();
    health::reset();
    stats::reset();
    stats::force_enable(false);
    ::unsetenv("LDPLFS_WRITE_BEHIND");
    ::unsetenv("LDPLFS_WRITE_BUFFER");
    ::unsetenv("LDPLFS_FLUSH_DEADLINE_MS");
  }

  TempDir tmp_;
};

TEST_F(FlushDeadlineTest, EnvKnobParsesDefensively) {
  ::unsetenv("LDPLFS_FLUSH_DEADLINE_MS");
  EXPECT_EQ(WriteFile::env_flush_deadline_ms(), 0u);  // watchdog off
  ::setenv("LDPLFS_FLUSH_DEADLINE_MS", "250", 1);
  EXPECT_EQ(WriteFile::env_flush_deadline_ms(), 250u);
  ::setenv("LDPLFS_FLUSH_DEADLINE_MS", "", 1);
  EXPECT_EQ(WriteFile::env_flush_deadline_ms(), 0u);
  ::setenv("LDPLFS_FLUSH_DEADLINE_MS", "abc", 1);
  EXPECT_EQ(WriteFile::env_flush_deadline_ms(), 0u);
  ::setenv("LDPLFS_FLUSH_DEADLINE_MS", "120xyz", 1);
  EXPECT_EQ(WriteFile::env_flush_deadline_ms(), 0u);
}

TEST_F(FlushDeadlineTest, HungFlushTimesOutAtCloseAndTripsTheBreaker) {
  ::setenv("LDPLFS_FLUSH_DEADLINE_MS", "250", 1);
  health::set_breaker_config({true, 8, 32, 60'000});

  const std::string path = tmp_.sub("hung");
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("doomed bytes"), 0, kPid).ok());

  // The backend "hangs": the data-dropping flush sleeps 2s per pwrite.
  // Scoped to dropping.data so index/metadata writes stay healthy.
  ASSERT_TRUE(faults::configure("pwrite:delay=2000000:path=dropping.data"));

  const auto start = std::chrono::steady_clock::now();
  EXPECT_EQ(plfs_close(fd.value(), kPid).error_code(), ETIMEDOUT);
  const std::uint64_t took = elapsed_ms(start);
  // Bounded: the 250ms deadline, not the 2s hang, decides when close()
  // returns (generous ceiling for slow CI).
  EXPECT_LT(took, 1500u);
  EXPECT_GE(stats::snapshot().get(stats::Counter::kWbFlushTimeout), 1u);

  // The watchdog feeds the breaker: the hang is a backend failure and
  // sibling streams must fail fast instead of queueing behind it.
  bool found = false;
  for (const auto& b : health::snapshot()) {
    if (b.root != "*") continue;
    found = true;
    EXPECT_EQ(b.state, health::BreakerState::kOpen);
    EXPECT_EQ(b.sticky_errno, ETIMEDOUT);
  }
  EXPECT_TRUE(found);
}

TEST_F(FlushDeadlineTest, SyncedDataSurvivesALaterTimeout) {
  ::setenv("LDPLFS_FLUSH_DEADLINE_MS", "300", 1);
  const std::string path = tmp_.sub("survivor");
  const std::string chunk_a = ldplfs::testing::to_string(random_bytes(1024, 1));

  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes(chunk_a), 0, kPid).ok());
  ASSERT_TRUE(plfs_sync(*fd.value(), kPid).ok());  // chunk A is durable

  ASSERT_TRUE(faults::configure("pwrite:delay=2000000:path=dropping.data"));
  ASSERT_TRUE(
      fd.value()->write(as_bytes("never indexed"), chunk_a.size(), kPid).ok());
  EXPECT_EQ(plfs_close(fd.value(), kPid).error_code(), ETIMEDOUT);
  EXPECT_GE(stats::snapshot().get(stats::Counter::kWbFlushTimeout), 1u);
  faults::clear();

  // Chunk A reads back byte-exact; the timed-out chunk was never indexed.
  auto rd = plfs_open(path, O_RDONLY, kPid);
  ASSERT_TRUE(rd.ok());
  std::string got(chunk_a.size(), '\0');
  auto n = plfs_read(
      *rd.value(),
      std::span<std::byte>(reinterpret_cast<std::byte*>(got.data()),
                           got.size()),
      0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(n.value(), chunk_a.size());
  EXPECT_EQ(got, chunk_a);
  EXPECT_TRUE(plfs_close(rd.value(), kPid).ok());
}

TEST_F(FlushDeadlineTest, NoDeadlineMeansSlowFlushesStillComplete) {
  // Default (unset) keeps the historical semantics: the drain waits out a
  // slow backend and the data lands.
  const std::string path = tmp_.sub("slow");
  ASSERT_TRUE(faults::configure("pwrite:delay=100000:path=dropping.data"));
  auto fd = plfs_open(path, O_CREAT | O_WRONLY, kPid);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(as_bytes("patient bytes"), 0, kPid).ok());
  EXPECT_TRUE(plfs_close(fd.value(), kPid).ok());
  EXPECT_EQ(stats::snapshot().get(stats::Counter::kWbFlushTimeout), 0u);
  faults::clear();

  auto rd = plfs_open(path, O_RDONLY, kPid);
  ASSERT_TRUE(rd.ok());
  std::string got(13, '\0');
  auto n = plfs_read(
      *rd.value(),
      std::span<std::byte>(reinterpret_cast<std::byte*>(got.data()),
                           got.size()),
      0);
  ASSERT_TRUE(n.ok());
  EXPECT_EQ(got, "patient bytes");
  EXPECT_TRUE(plfs_close(rd.value(), kPid).ok());
}

}  // namespace
}  // namespace ldplfs::plfs
