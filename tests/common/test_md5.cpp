#include "common/md5.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"

namespace ldplfs {
namespace {

// RFC 1321 appendix A.5 test suite.
struct Rfc1321Case {
  const char* input;
  const char* digest;
};

class Md5Rfc1321Test : public ::testing::TestWithParam<Rfc1321Case> {};

TEST_P(Md5Rfc1321Test, MatchesReferenceVectors) {
  const auto& c = GetParam();
  EXPECT_EQ(Md5::hex_digest(std::string(c.input)), c.digest);
}

INSTANTIATE_TEST_SUITE_P(
    Vectors, Md5Rfc1321Test,
    ::testing::Values(
        Rfc1321Case{"", "d41d8cd98f00b204e9800998ecf8427e"},
        Rfc1321Case{"a", "0cc175b9c0f1b6a831c399e269772661"},
        Rfc1321Case{"abc", "900150983cd24fb0d6963f7d28e17f72"},
        Rfc1321Case{"message digest", "f96b697d7cb7938d525a2f31aaf161d0"},
        Rfc1321Case{"abcdefghijklmnopqrstuvwxyz",
                    "c3fcd3d76192e4007dfb496cca67e13b"},
        Rfc1321Case{"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123"
                    "456789",
                    "d174ab98d277d9f5a5611c2c9f419d9f"},
        Rfc1321Case{"1234567890123456789012345678901234567890123456789012345"
                    "6789012345678901234567890",
                    "57edf4a22be3c955ac49da2e2107b67a"}));

TEST(Md5StreamingTest, ChunkedUpdatesMatchOneShot) {
  // Hash the same data in different chunkings; digests must agree.
  Rng rng(7);
  std::string data(100000, '\0');
  for (auto& c : data) c = static_cast<char>('A' + rng.below(26));
  const std::string oneshot = Md5::hex_digest(data);

  for (std::size_t chunk : {std::size_t{1}, std::size_t{7}, std::size_t{63},
                            std::size_t{64}, std::size_t{65},
                            std::size_t{4096}, std::size_t{99999}}) {
    Md5 hasher;
    for (std::size_t i = 0; i < data.size(); i += chunk) {
      hasher.update(data.data() + i, std::min(chunk, data.size() - i));
    }
    EXPECT_EQ(Md5::to_hex(hasher.finish()), oneshot) << "chunk=" << chunk;
  }
}

TEST(Md5StreamingTest, PaddingBoundaries) {
  // Lengths around the 56/64-byte padding edge are the classic bug nest.
  for (std::size_t len : {std::size_t{55}, std::size_t{56}, std::size_t{57},
                          std::size_t{63}, std::size_t{64}, std::size_t{65},
                          std::size_t{119}, std::size_t{120}}) {
    const std::string data(len, 'x');
    Md5 a;
    a.update(data.data(), data.size());
    Md5 b;
    for (char c : data) b.update(&c, 1);
    EXPECT_EQ(Md5::to_hex(a.finish()), Md5::to_hex(b.finish()))
        << "len=" << len;
  }
}

}  // namespace
}  // namespace ldplfs
