#include "common/paths.hpp"

#include <gtest/gtest.h>

namespace ldplfs {
namespace {

struct NormCase {
  const char* input;
  const char* cwd;
  const char* expected;
};

class NormalizePathTest : public ::testing::TestWithParam<NormCase> {};

TEST_P(NormalizePathTest, Normalizes) {
  const auto& c = GetParam();
  EXPECT_EQ(normalize_path(c.input, c.cwd), c.expected);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, NormalizePathTest,
    ::testing::Values(
        NormCase{"/a/b/c", "", "/a/b/c"},
        NormCase{"/a//b///c", "", "/a/b/c"},
        NormCase{"/a/./b/.", "", "/a/b"},
        NormCase{"/a/b/../c", "", "/a/c"},
        NormCase{"/a/b/c/../../d", "", "/a/d"},
        NormCase{"/../x", "", "/x"},
        NormCase{"/..", "", "/"},
        NormCase{"/", "", "/"},
        NormCase{"rel/path", "/cwd", "/cwd/rel/path"},
        NormCase{"./rel", "/cwd", "/cwd/rel"},
        NormCase{"../up", "/cwd/sub", "/cwd/up"},
        NormCase{".", "/cwd", "/cwd"},
        NormCase{"a/../..", "/x/y", "/x"},
        NormCase{"trailing/", "/c", "/c/trailing"},
        NormCase{"rel", "", "rel"},
        NormCase{"a/./b/../c", "", "a/c"},
        NormCase{"../../z", "", "../../z"}));

TEST(PathUnderTest, ExactMatch) {
  EXPECT_TRUE(path_under("/mnt/plfs", "/mnt/plfs"));
}

TEST(PathUnderTest, Child) {
  EXPECT_TRUE(path_under("/mnt/plfs/a", "/mnt/plfs"));
  EXPECT_TRUE(path_under("/mnt/plfs/a/b/c", "/mnt/plfs"));
}

TEST(PathUnderTest, SiblingPrefixIsNotUnder) {
  EXPECT_FALSE(path_under("/mnt/plfsx", "/mnt/plfs"));
  EXPECT_FALSE(path_under("/mnt/plfs2/a", "/mnt/plfs"));
}

TEST(PathUnderTest, ParentIsNotUnder) {
  EXPECT_FALSE(path_under("/mnt", "/mnt/plfs"));
  EXPECT_FALSE(path_under("/", "/mnt/plfs"));
}

TEST(PathUnderTest, TrailingSlashOnRoot) {
  EXPECT_TRUE(path_under("/mnt/plfs/a", "/mnt/plfs/"));
  EXPECT_TRUE(path_under("/mnt/plfs", "/mnt/plfs/"));
}

TEST(PathUnderTest, EmptyRootNeverMatches) {
  EXPECT_FALSE(path_under("/a", ""));
}

TEST(PathSuffixTest, Basic) {
  EXPECT_EQ(path_suffix("/mnt/plfs/a/b", "/mnt/plfs"), "a/b");
  EXPECT_EQ(path_suffix("/mnt/plfs", "/mnt/plfs"), "");
  EXPECT_EQ(path_suffix("/mnt/plfs/x", "/mnt/plfs/"), "x");
}

TEST(PathJoinTest, Cases) {
  EXPECT_EQ(path_join("/a", "b"), "/a/b");
  EXPECT_EQ(path_join("/a/", "b"), "/a/b");
  EXPECT_EQ(path_join("/a", "/b"), "/a/b");
  EXPECT_EQ(path_join("/", "b"), "/b");
  EXPECT_EQ(path_join("", "b"), "b");
  EXPECT_EQ(path_join("/a", ""), "/a");
}

TEST(PathBasenameTest, Cases) {
  EXPECT_EQ(path_basename("/a/b/c"), "c");
  EXPECT_EQ(path_basename("/a/b/"), "b");
  EXPECT_EQ(path_basename("c"), "c");
  EXPECT_EQ(path_basename("/"), "/");
}

TEST(PathDirnameTest, Cases) {
  EXPECT_EQ(path_dirname("/a/b/c"), "/a/b");
  EXPECT_EQ(path_dirname("/a"), "/");
  EXPECT_EQ(path_dirname("c"), ".");
  EXPECT_EQ(path_dirname("/a/b/"), "/a");
}

}  // namespace
}  // namespace ldplfs
