// ThreadPool / TaskGroup: the fork/join substrate under the parallel read
// engine. These run under TSan via the `tsan` ctest label.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/thread_pool.hpp"

namespace ldplfs {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int i = 0; i < 1000; ++i) {
    group.run([&counter] { ++counter; });
  }
  group.wait();
  EXPECT_EQ(counter.load(), 1000);
}

TEST(ThreadPoolTest, ZeroWorkersRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  const auto main_id = std::this_thread::get_id();
  std::thread::id ran_on;
  TaskGroup group(pool);
  group.run([&ran_on] { ran_on = std::this_thread::get_id(); });
  group.wait();
  EXPECT_EQ(ran_on, main_id);
}

TEST(ThreadPoolTest, TasksRunOffTheSubmittingThread) {
  ThreadPool pool(2);
  const auto main_id = std::this_thread::get_id();
  std::atomic<int> off_thread{0};
  TaskGroup group(pool);
  for (int i = 0; i < 64; ++i) {
    group.run([&off_thread, main_id] {
      if (std::this_thread::get_id() != main_id) ++off_thread;
    });
  }
  group.wait();
  EXPECT_EQ(off_thread.load(), 64);
}

TEST(ThreadPoolTest, WaitBlocksUntilSlowTasksFinish) {
  ThreadPool pool(4);
  std::atomic<int> done{0};
  TaskGroup group(pool);
  for (int i = 0; i < 8; ++i) {
    group.run([&done] {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      ++done;
    });
  }
  group.wait();
  EXPECT_EQ(done.load(), 8);
}

TEST(ThreadPoolTest, TaskGroupIsReusableAfterWait) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  TaskGroup group(pool);
  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 10; ++i) group.run([&counter] { ++counter; });
    group.wait();
    EXPECT_EQ(counter.load(), (round + 1) * 10);
  }
}

TEST(ThreadPoolTest, ConcurrentSubmitters) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  std::vector<std::thread> submitters;
  for (int t = 0; t < 4; ++t) {
    submitters.emplace_back([&pool, &counter] {
      TaskGroup group(pool);
      for (int i = 0; i < 200; ++i) group.run([&counter] { ++counter; });
      group.wait();
    });
  }
  for (auto& t : submitters) t.join();
  EXPECT_EQ(counter.load(), 800);
}

TEST(ThreadPoolTest, EnvThreadsParsing) {
  const char* saved = std::getenv("LDPLFS_THREADS");
  const std::string restore = saved != nullptr ? saved : "";

  ::setenv("LDPLFS_THREADS", "0", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 0u);
  ::setenv("LDPLFS_THREADS", "7", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 7u);
  ::setenv("LDPLFS_THREADS", "9999", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 256u);  // clamped
  ::setenv("LDPLFS_THREADS", "bogus", 1);
  EXPECT_EQ(ThreadPool::env_threads(), 1u);  // malformed stays serial-safe
  ::unsetenv("LDPLFS_THREADS");
  EXPECT_GE(ThreadPool::env_threads(), 1u);  // hardware_concurrency floor

  if (saved != nullptr) {
    ::setenv("LDPLFS_THREADS", restore.c_str(), 1);
  }
}

}  // namespace
}  // namespace ldplfs
