// Unit tests for the LDPLFS_STATS registry: counter/histogram placement,
// exact multi-thread merging (live shards + the retired accumulator), the
// disabled fast path, JSON serialisation, and the dump hooks.
#include "common/stats.hpp"

#include <gtest/gtest.h>
#include <signal.h>
#include <unistd.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "testing/temp_dir.hpp"

namespace ldplfs::stats {
namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class StatsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    force_enable(true);
    reset();
  }
  void TearDown() override { reset(); }
};

TEST_F(StatsTest, DumpNamesAreStable) {
  // These names are interface: ldp-stats, BENCH_micro.json and the docs
  // key on them.
  EXPECT_STREQ(name(Counter::kRouterOpenRouted), "router.open.routed");
  EXPECT_STREQ(name(Counter::kRouterWriteBytes), "router.write.bytes");
  EXPECT_STREQ(name(Counter::kCacheFdEviction), "cache.fd.eviction");
  EXPECT_STREQ(name(Counter::kWbPoisoned), "wb.poisoned");
  EXPECT_STREQ(name(Histogram::kRouterOpenLatency), "router.open.latency");
  EXPECT_STREQ(name(Histogram::kPoolQueueDepth), "pool.queue.depth");
}

TEST_F(StatsTest, BucketBoundaries) {
  EXPECT_EQ(bucket_for(0), 0u);
  EXPECT_EQ(bucket_for(1), 1u);
  EXPECT_EQ(bucket_for(2), 2u);
  EXPECT_EQ(bucket_for(3), 2u);
  EXPECT_EQ(bucket_for(4), 3u);
  // Saturates at the last bucket rather than overflowing.
  EXPECT_EQ(bucket_for(~0ull), kHistogramBuckets - 1);
  // Every sample sits at or below its bucket's inclusive upper bound.
  for (const std::uint64_t ns : {0ull, 1ull, 7ull, 1024ull, 999999937ull}) {
    EXPECT_GE(bucket_upper_ns(bucket_for(ns)), ns) << ns;
  }
}

TEST_F(StatsTest, DisabledCollectsNothing) {
  force_enable(false);
  add(Counter::kRouterOpenRouted);
  record(Histogram::kRouterOpenLatency, 123);
  {
    Timer t(Histogram::kRouterReadLatency);
  }
  force_enable(true);
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.get(Counter::kRouterOpenRouted), 0u);
  EXPECT_EQ(snap.get(Histogram::kRouterOpenLatency).count, 0u);
  EXPECT_EQ(snap.get(Histogram::kRouterReadLatency).count, 0u);
}

TEST_F(StatsTest, CountersAccumulate) {
  add(Counter::kRouterReadRouted);
  add(Counter::kRouterReadRouted);
  add(Counter::kRouterReadBytes, 4096);
  add(Counter::kRouterReadBytes, 512);
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.get(Counter::kRouterReadRouted), 2u);
  EXPECT_EQ(snap.get(Counter::kRouterReadBytes), 4608u);
  EXPECT_EQ(snap.get(Counter::kRouterWriteRouted), 0u);
}

TEST_F(StatsTest, HistogramPlacementAndStats) {
  record(Histogram::kRouterWriteLatency, 0);
  record(Histogram::kRouterWriteLatency, 5);
  record(Histogram::kRouterWriteLatency, 1000);
  const Snapshot snap = snapshot();
  const HistogramSnapshot& h = snap.get(Histogram::kRouterWriteLatency);
  EXPECT_EQ(h.count, 3u);
  EXPECT_EQ(h.sum_ns, 1005u);
  EXPECT_EQ(h.max_ns, 1000u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[bucket_for(5)], 1u);
  EXPECT_EQ(h.buckets[bucket_for(1000)], 1u);
  // p0 lands in the smallest bucket, p100 at or below the recorded max.
  EXPECT_EQ(h.percentile_ns(0.0), 0u);
  EXPECT_LE(h.percentile_ns(1.0), h.max_ns);
}

TEST_F(StatsTest, TimerRecordsOnceAndCancelDiscards) {
  {
    Timer t(Histogram::kRouterCloseLatency);
    t.stop();
    t.stop();  // second stop is a no-op
  }
  {
    Timer t(Histogram::kRouterCloseLatency);
    t.cancel();
  }  // destructor after cancel must not record
  EXPECT_EQ(snapshot().get(Histogram::kRouterCloseLatency).count, 1u);
}

TEST_F(StatsTest, SnapshotSinceSubtracts) {
  add(Counter::kPlfsIndexMerges, 3);
  record(Histogram::kPlfsIndexMergeLatency, 100);
  const Snapshot before = snapshot();
  add(Counter::kPlfsIndexMerges, 2);
  record(Histogram::kPlfsIndexMergeLatency, 200);
  const Snapshot delta = snapshot().since(before);
  EXPECT_EQ(delta.get(Counter::kPlfsIndexMerges), 2u);
  EXPECT_EQ(delta.get(Histogram::kPlfsIndexMergeLatency).count, 1u);
  EXPECT_EQ(delta.get(Histogram::kPlfsIndexMergeLatency).sum_ns, 200u);
}

TEST_F(StatsTest, MultiThreadedMergeIsExact) {
  // Worker threads hammer their own shards, then exit — exercising both the
  // live-shard merge and the retired-accumulator fold. Not one sample may
  // be lost or double counted.
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([] {
      for (int i = 0; i < kIncrements; ++i) {
        add(Counter::kPoolCompleted);
        record(Histogram::kPoolTaskLatency, 64);
      }
    });
  }
  for (auto& w : workers) w.join();
  const Snapshot snap = snapshot();
  EXPECT_EQ(snap.get(Counter::kPoolCompleted),
            static_cast<std::uint64_t>(kThreads) * kIncrements);
  const HistogramSnapshot& h = snap.get(Histogram::kPoolTaskLatency);
  EXPECT_EQ(h.count, static_cast<std::uint64_t>(kThreads) * kIncrements);
  EXPECT_EQ(h.sum_ns, static_cast<std::uint64_t>(kThreads) * kIncrements * 64);
  EXPECT_EQ(h.max_ns, 64u);
}

TEST_F(StatsTest, SnapshotWhileWritersRunDoesNotTearOrRace) {
  // TSan target: concurrent add() with snapshot() merging live shards.
  std::atomic<bool> stop{false};
  std::thread writer([&stop] {
    while (!stop.load(std::memory_order_relaxed)) {
      add(Counter::kCacheFdHit);
      record(Histogram::kPoolQueueDelay, 32);
    }
  });
  std::uint64_t last = 0;
  for (int i = 0; i < 100; ++i) {
    const std::uint64_t now = snapshot().get(Counter::kCacheFdHit);
    EXPECT_GE(now, last);  // monotone under concurrent increments
    last = now;
  }
  stop.store(true);
  writer.join();
}

TEST_F(StatsTest, ToJsonCarriesCountersAndHistograms) {
  add(Counter::kRouterWriteRouted, 7);
  record(Histogram::kRouterWriteLatency, 9);
  const std::string json = to_json(snapshot());
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"router.write.routed\": 7"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"router.write.latency\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);
}

TEST_F(StatsTest, DumpNowWritesConfiguredFile) {
  ldplfs::testing::TempDir dir;
  const std::string dump = dir.sub("stats.json");
  configure_dump(dump);
  add(Counter::kRouterStatRouted, 2);
  dump_now();
  const std::string body = slurp(dump);
  EXPECT_NE(body.find("\"router.stat.routed\": 2"), std::string::npos);
}

TEST_F(StatsTest, Sigusr1TriggersDeferredDump) {
  // The handler is async-signal-safe: it only raises a flag, and the next
  // instrumented operation writes the dump from ordinary thread context.
  ldplfs::testing::TempDir dir;
  const std::string dump = dir.sub("sig.json");
  configure_dump(dump);
  add(Counter::kRouterLseekRouted, 5);
  ASSERT_EQ(::raise(SIGUSR1), 0);
  EXPECT_EQ(slurp(dump), "");  // nothing written inside the handler
  add(Counter::kRouterLseekRouted, 0);  // first op after the signal dumps
  const std::string body = slurp(dump);
  EXPECT_NE(body.find("\"router.lseek.routed\": 5"), std::string::npos);
}

}  // namespace
}  // namespace ldplfs::stats
