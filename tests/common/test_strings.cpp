#include "common/strings.hpp"

#include <gtest/gtest.h>

namespace ldplfs {
namespace {

TEST(SplitTest, KeepsEmptyFields) {
  EXPECT_EQ(split("a:b:c", ':'), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("a::c", ':'), (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(split(":", ':'), (std::vector<std::string>{"", ""}));
  EXPECT_EQ(split("", ':'), (std::vector<std::string>{""}));
}

TEST(SplitNonemptyTest, DropsEmptyFields) {
  EXPECT_EQ(split_nonempty("a::c:", ':'),
            (std::vector<std::string>{"a", "c"}));
  EXPECT_TRUE(split_nonempty("::::", ':').empty());
}

TEST(JoinTest, RoundTripsSplit) {
  const std::vector<std::string> parts{"x", "y", "z"};
  EXPECT_EQ(join(parts, ":"), "x:y:z");
  EXPECT_EQ(split(join(parts, ":"), ':'), parts);
  EXPECT_EQ(join({}, ":"), "");
  EXPECT_EQ(join({"solo"}, ":"), "solo");
}

TEST(StartsEndsWithTest, Basics) {
  EXPECT_TRUE(starts_with("dropping.data.x", "dropping.data."));
  EXPECT_FALSE(starts_with("drop", "dropping"));
  EXPECT_TRUE(ends_with("file.idx", ".idx"));
  EXPECT_FALSE(ends_with("idx", "file.idx"));
  EXPECT_TRUE(starts_with("abc", ""));
  EXPECT_TRUE(ends_with("abc", ""));
}

TEST(TrimTest, Whitespace) {
  EXPECT_EQ(trim("  a b  "), "a b");
  EXPECT_EQ(trim("\t\nx\r "), "x");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
}

TEST(ParseLlTest, ValidAndInvalid) {
  EXPECT_EQ(parse_ll("0"), 0);
  EXPECT_EQ(parse_ll("12345"), 12345);
  EXPECT_EQ(parse_ll(" 42 "), 42);
  EXPECT_EQ(parse_ll(""), -1);
  EXPECT_EQ(parse_ll("-5"), -1);
  EXPECT_EQ(parse_ll("12a"), -1);
}

}  // namespace
}  // namespace ldplfs
