#include "common/units.hpp"

#include <gtest/gtest.h>

namespace ldplfs {
namespace {

using namespace ldplfs::literals;

TEST(UnitsTest, Literals) {
  EXPECT_EQ(8_KiB, 8192u);
  EXPECT_EQ(8_MiB, 8u * 1024 * 1024);
  EXPECT_EQ(1_GiB, 1073741824u);
}

TEST(FormatBytesTest, Rendering) {
  EXPECT_EQ(format_bytes(0), "0 B");
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(1024), "1.0 KiB");
  EXPECT_EQ(format_bytes(8_MiB), "8.0 MiB");
  EXPECT_EQ(format_bytes(1536), "1.5 KiB");
  EXPECT_EQ(format_bytes(3_GiB + 512_MiB), "3.5 GiB");
}

TEST(ParseBytesTest, SuffixesAndPlainNumbers) {
  EXPECT_EQ(parse_bytes("4096"), 4096u);
  EXPECT_EQ(parse_bytes("8M"), 8_MiB);
  EXPECT_EQ(parse_bytes("8MiB"), 8_MiB);
  EXPECT_EQ(parse_bytes("1G"), 1_GiB);
  EXPECT_EQ(parse_bytes("512K"), 512_KiB);
  EXPECT_EQ(parse_bytes("1.5M"), 1_MiB + 512_KiB);
  EXPECT_EQ(parse_bytes("2T"), 2 * TiB);
  EXPECT_EQ(parse_bytes("100B"), 100u);
}

TEST(ParseBytesTest, Malformed) {
  EXPECT_EQ(parse_bytes(""), 0u);
  EXPECT_EQ(parse_bytes("abc"), 0u);
  EXPECT_EQ(parse_bytes("-5M"), 0u);
  EXPECT_EQ(parse_bytes("5X"), 0u);
}

TEST(ParseFormatRoundTrip, PowerOfTwoSizes) {
  for (std::uint64_t v : {1_KiB, 8_MiB, 1_GiB, 64_GiB}) {
    EXPECT_EQ(parse_bytes(format_bytes(v)), v);
  }
}

}  // namespace
}  // namespace ldplfs
