#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <set>

namespace ldplfs {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (std::uint64_t bound : {1ull, 2ull, 7ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.below(bound), bound);
  }
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(5, 8);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 8u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all four values hit
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(11);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, SplitStreamsAreIndependent) {
  Rng parent(123);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 100; ++i) same += child1.next() == child2.next();
  EXPECT_LT(same, 3);
}

TEST(SplitMixTest, KnownExpansion) {
  // SplitMix64 must be stable across builds: simulator reproducibility
  // depends on it.
  std::uint64_t state = 0;
  const std::uint64_t first = splitmix64(state);
  std::uint64_t state2 = 0;
  EXPECT_EQ(first, splitmix64(state2));
  EXPECT_NE(splitmix64(state), first);  // state advanced
}

}  // namespace
}  // namespace ldplfs
