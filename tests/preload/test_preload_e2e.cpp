// End-to-end LD_PRELOAD tests: spawn an unmodified POSIX binary (the
// "victim") with libldplfs.so preloaded and a temp mount configured, then
// verify from outside that containers were created and logical contents
// match. These are the executable form of the paper's core claim — no
// application modification needed.
//
// Build passes -DLDPLFS_PRELOAD_LIB / -DLDPLFS_VICTIM_BIN with the artifact
// paths.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "plfs/compaction.hpp"
#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace {

using ldplfs::testing::TempDir;

struct RunResult {
  int exit_code = -1;
  std::string stdout_text;
  std::string stderr_text;
};

/// Run the victim with given scenario/path; `preload` toggles libldplfs.
/// `extra_env` entries are NAME=VALUE pairs set in the child only.
RunResult run_victim(const std::string& scenario, const std::string& path,
                     const std::string& mount, bool preload = true,
                     const std::vector<std::pair<std::string, std::string>>&
                         extra_env = {}) {
  int out_pipe[2];
  int err_pipe[2];
  EXPECT_EQ(::pipe(out_pipe), 0);
  EXPECT_EQ(::pipe(err_pipe), 0);

  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::dup2(err_pipe[1], STDERR_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    ::close(err_pipe[0]);
    ::close(err_pipe[1]);
    if (preload) {
      ::setenv("LD_PRELOAD", LDPLFS_PRELOAD_LIB, 1);
      ::setenv("LDPLFS_MOUNTS", mount.c_str(), 1);
    } else {
      ::unsetenv("LD_PRELOAD");
      ::unsetenv("LDPLFS_MOUNTS");
    }
    for (const auto& [key, value] : extra_env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    ::execl(LDPLFS_VICTIM_BIN, LDPLFS_VICTIM_BIN, scenario.c_str(),
            path.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  ::close(out_pipe[1]);
  ::close(err_pipe[1]);

  RunResult result;
  auto drain = [](int fd, std::string& into) {
    char buf[4096];
    ssize_t n;
    while ((n = ::read(fd, buf, sizeof buf)) > 0) {
      into.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
  };
  drain(out_pipe[0], result.stdout_text);
  drain(err_pipe[0], result.stderr_text);

  int status = 0;
  ::waitpid(pid, &status, 0);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

std::string plfs_content(const std::string& container) {
  auto fd = ldplfs::plfs::plfs_open(container, O_RDONLY, 1);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) return {};
  std::string out(1 << 16, '\0');
  auto n = fd.value()->read(
      std::span<std::byte>(reinterpret_cast<std::byte*>(out.data()),
                           out.size()),
      0);
  EXPECT_TRUE(n.ok());
  out.resize(n.ok() ? n.value() : 0);
  return out;
}

TEST(PreloadE2eTest, WriteCreatesContainerWithCorrectContent) {
  TempDir mount;
  const std::string file = mount.sub("victim.out");
  const auto result = run_victim("write", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  ASSERT_TRUE(ldplfs::plfs::is_container(file));
  EXPECT_EQ(plfs_content(file), "HELLO world!");
}

TEST(PreloadE2eTest, WithoutPreloadWritesPlainFile) {
  TempDir mount;
  const std::string file = mount.sub("victim.out");
  const auto result = run_victim("write", file, mount.path(), false);
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_FALSE(ldplfs::plfs::is_container(file));
  auto content = ldplfs::posix::read_file(file);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "HELLO world!");
}

TEST(PreloadE2eTest, ReadsBackContainerWrittenViaApi) {
  TempDir mount;
  const std::string file = mount.sub("api.dat");
  {
    auto fd = ldplfs::plfs::plfs_open(file, O_CREAT | O_WRONLY, 1);
    ASSERT_TRUE(fd.ok());
    const std::string payload = "written by the PLFS API directly";
    ASSERT_TRUE(fd.value()
                    ->write(ldplfs::testing::as_bytes(payload), 0, 1)
                    .ok());
    ASSERT_TRUE(ldplfs::plfs::plfs_close(fd.value(), 1).ok());
  }
  const auto result = run_victim("read", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stdout_text, "written by the PLFS API directly");
}

TEST(PreloadE2eTest, StdioRoundTripThroughFopencookie) {
  TempDir mount;
  const std::string file = mount.sub("stdio.txt");
  const auto result = run_victim("stdio", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_TRUE(ldplfs::plfs::is_container(file));
  EXPECT_EQ(plfs_content(file), "stdio line one\nvalue=42\n");
}

TEST(PreloadE2eTest, StatReportsLogicalSize) {
  TempDir mount;
  const std::string file = mount.sub("s.dat");
  ASSERT_EQ(run_victim("write", file, mount.path()).exit_code, 0);
  const auto result = run_victim("stat", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stdout_text, "12\n");
}

TEST(PreloadE2eTest, Stat64FamilyReportsLogicalSize) {
  // stat64/fstatat64 used to alias the caller's stat64 buffer as a struct
  // stat; the victim poisons the buffer and cross-checks all three entry
  // points, so a layout regression shows up as a size/mode mismatch.
  TempDir mount;
  const std::string file = mount.sub("s64.dat");
  ASSERT_EQ(run_victim("write", file, mount.path()).exit_code, 0);
  const auto result = run_victim("statat64", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stdout_text, "12\n");
}

TEST(PreloadE2eTest, FcntlDupflagsAndAppendOnRoutedFd) {
  TempDir mount;
  const std::string file = mount.sub("fcntl.dat");
  const auto result = run_victim("fcntl", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_TRUE(ldplfs::plfs::is_container(file));
  EXPECT_EQ(plfs_content(file), "0123456789END");
}

TEST(PreloadE2eTest, UnlinkRemovesContainer) {
  TempDir mount;
  const std::string file = mount.sub("u.dat");
  ASSERT_EQ(run_victim("write", file, mount.path()).exit_code, 0);
  ASSERT_TRUE(ldplfs::plfs::is_container(file));
  const auto result = run_victim("unlink", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_FALSE(ldplfs::posix::exists(file));
}

TEST(PreloadE2eTest, PositionalIoDupAndAppend) {
  TempDir mount;
  const auto result =
      run_victim("pread", mount.sub("p.dat"), mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
}

TEST(PreloadE2eTest, EightMiBBlockStream) {
  TempDir mount;
  const std::string file = mount.sub("big.dat");
  const auto result = run_victim("bigblocks", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  auto attr = ldplfs::plfs::plfs_getattr(file);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 4ull * (8u << 20));
}

TEST(PreloadE2eTest, VectoredIoThroughShim) {
  TempDir mount;
  const std::string file = mount.sub("v.dat");
  const auto result = run_victim("vectored", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(plfs_content(file), "alpha-bravo-charlie");
}

TEST(PreloadE2eTest, StdioExclusiveHonorsModeModifiers) {
  // fopen("wx") on an existing container must fail EEXIST without
  // truncating; "b"/"e" modifiers must be accepted. The victim asserts the
  // mode semantics itself; we assert the surviving content from outside.
  TempDir mount;
  const std::string file = mount.sub("excl.txt");
  const auto result = run_victim("stdio_excl", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_TRUE(ldplfs::plfs::is_container(file));
  EXPECT_EQ(plfs_content(file), "first\nsecond\n");
}

TEST(PreloadE2eTest, StatsDumpMatchesIssuedOps) {
  // LDPLFS_STATS=/path.json on an unmodified victim: the exit-time dump's
  // routed-op counts and byte totals must equal exactly what the victim
  // issued (scenario "write": 1 open, 3 writes totalling 17 bytes, 1 lseek,
  // 1 close — see scenario_write in preload_victim.cpp).
  TempDir mount;
  TempDir scratch;
  const std::string dump = scratch.sub("stats.json");
  const auto result = run_victim("write", mount.sub("s.out"), mount.path(),
                                 true, {{"LDPLFS_STATS", dump}});
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  auto body = ldplfs::posix::read_file(dump);
  ASSERT_TRUE(body.ok());
  for (const char* needle :
       {"\"router.open.routed\": 1", "\"router.write.routed\": 3",
        "\"router.write.bytes\": 17", "\"router.lseek.routed\": 1",
        "\"router.close.routed\": 1"}) {
    EXPECT_NE(body.value().find(needle), std::string::npos)
        << "missing " << needle << " in:\n"
        << body.value();
  }
}

TEST(PreloadE2eTest, FileOutsideMountIsUntouched) {
  TempDir mount;
  TempDir outside;
  const std::string file = outside.sub("plain.out");
  const auto result = run_victim("write", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_FALSE(ldplfs::plfs::is_container(file));
  auto content = ldplfs::posix::read_file(file);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "HELLO world!");
}

// --- mmap / zero-copy interposition --------------------------------------

/// A container written through the PLFS API, then flattened by compaction
/// into the identity-flat shape the mmap/zero-copy paths require.
void make_flat_container(const std::string& path, const std::string& content) {
  auto fd = ldplfs::plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(ldplfs::testing::as_bytes(content), 0, 1).ok());
  ASSERT_TRUE(ldplfs::plfs::plfs_close(fd.value(), 1).ok());
  ASSERT_TRUE(ldplfs::plfs::plfs_compact(path).ok());
}

/// A container whose extents span two data droppings — not mappable.
void make_log_container(const std::string& path, const std::string& a,
                        const std::string& b) {
  auto fd = ldplfs::plfs::plfs_open(path, O_CREAT | O_WRONLY, 1);
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(fd.value()->write(ldplfs::testing::as_bytes(a), 0, 1).ok());
  ASSERT_TRUE(
      fd.value()->write(ldplfs::testing::as_bytes(b), a.size(), 2).ok());
  ASSERT_TRUE(fd.value()->close(1).ok());
  ASSERT_TRUE(ldplfs::plfs::plfs_close(fd.value(), 2).ok());
}

TEST(PreloadMmapTest, FlattenedContainerGetsRealMapping) {
  TempDir mount;
  const std::string file = mount.sub("flat.dat");
  const std::string content = "mapped straight from the dropping\n";
  make_flat_container(file, content);
  const auto result = run_victim("mmap_cat", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stderr_text, "MMAP_SERVED\n");
  EXPECT_EQ(result.stdout_text, content);
}

TEST(PreloadMmapTest, LogContainerRefusalFallsBackToReadLikeGrep) {
  // The regression the deterministic ENODEV exists for: a GNU-grep-style
  // caller must see the refusal, fall back to read(2), and still get the
  // right logical bytes.
  TempDir mount;
  const std::string file = mount.sub("log.dat");
  make_log_container(file, "first dropping, ", "second dropping");
  const auto result = run_victim("mmap_cat", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stderr_text, "MMAP_FALLBACK\n");
  EXPECT_EQ(result.stdout_text, "first dropping, second dropping");
}

TEST(PreloadMmapTest, MappingSurvivesFdClose) {
  TempDir mount;
  const std::string file = mount.sub("flat.dat");
  const std::string content = "pages outlive the fd\n";
  make_flat_container(file, content);
  const auto result = run_victim("mmap_after_close", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stdout_text, content);
}

TEST(PreloadMmapTest, MapAtPageOffsetIsNotTruncated) {
  // mmap64's offset must reach the dropping untruncated (the old route
  // through mmap cast it to off_t); a second-page map must see page two.
  TempDir mount;
  const std::string file = mount.sub("paged.dat");
  const std::string content = std::string(4096, 'A') + std::string(4096, 'B');
  make_flat_container(file, content);
  const auto result = run_victim("mmap_offset", file, mount.path());
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  EXPECT_EQ(result.stdout_text, std::string(4096, 'B'));
}

TEST(PreloadZeroCopyTest, CopyFileRangeAndSendfileOutOfFlatContainer) {
  TempDir mount;
  TempDir scratch;
  const std::string file = mount.sub("src.dat");
  const std::string content = "zero copies of this payload were made\n";
  make_flat_container(file, content);
  const std::string dump = scratch.sub("stats.json");
  const auto result = run_victim(
      "copy_out", file, mount.path(), true,
      {{"VICTIM_DEST", scratch.sub("out")}, {"LDPLFS_STATS", dump}});
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  for (const char* suffix : {".cfr", ".sf"}) {
    auto copied = ldplfs::posix::read_file(scratch.sub("out") + suffix);
    ASSERT_TRUE(copied.ok()) << suffix;
    EXPECT_EQ(copied.value(), content) << suffix;
  }
  // Both copies must have taken the true kernel-side path, not the
  // emulated read/write loop.
  auto body = ldplfs::posix::read_file(dump);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body.value().find("\"zerocopy.ops\": 2"), std::string::npos)
      << body.value();
}

TEST(PreloadZeroCopyTest, LogContainerCopiesThroughEmulation) {
  // Non-flat input keeps the emulated loop — correctness over speed.
  TempDir mount;
  TempDir scratch;
  const std::string file = mount.sub("log.dat");
  make_log_container(file, "part one and ", "part two");
  const std::string dump = scratch.sub("stats.json");
  const auto result = run_victim(
      "copy_out", file, mount.path(), true,
      {{"VICTIM_DEST", scratch.sub("out")}, {"LDPLFS_STATS", dump}});
  EXPECT_EQ(result.exit_code, 0) << result.stderr_text;
  for (const char* suffix : {".cfr", ".sf"}) {
    auto copied = ldplfs::posix::read_file(scratch.sub("out") + suffix);
    ASSERT_TRUE(copied.ok()) << suffix;
    EXPECT_EQ(copied.value(), "part one and part two") << suffix;
  }
  auto body = ldplfs::posix::read_file(dump);
  ASSERT_TRUE(body.ok());
  EXPECT_NE(body.value().find("\"zerocopy.ops\": 0"), std::string::npos)
      << body.value();
}

}  // namespace
