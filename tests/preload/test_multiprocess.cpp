// Multi-process tests: the regime LDPLFS exists for — several independent
// processes (think MPI ranks on one node) writing one logical file
// concurrently through the preload shim, each getting its own dropping;
// plus crash-consistency: a writer killed mid-stream must not corrupt what
// other writers and later readers see.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "plfs/container.hpp"
#include "plfs/index.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace {

using ldplfs::testing::TempDir;

/// Child body: open the shared logical file via plain POSIX (the preload
/// shim is simulated here by linking the router in-process would defeat
/// the point — instead we exec the victim binary for true isolation).
pid_t spawn_region_writer(const std::string& mount, const std::string& file,
                          int region, std::size_t region_bytes, char fill) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::setenv("LD_PRELOAD", LDPLFS_PRELOAD_LIB, 1);
    ::setenv("LDPLFS_MOUNTS", mount.c_str(), 1);
    // Re-exec through /bin/sh to get a genuinely fresh address space with
    // the preload applied, running a tiny dd-like region write.
    char cmd[1024];
    std::snprintf(cmd, sizeof cmd,
                  "head -c %zu /dev/zero | tr '\\0' '%c' | "
                  "dd of=%s bs=%zu seek=%d conv=notrunc status=none",
                  region_bytes, fill, file.c_str(), region_bytes, region);
    ::execl("/bin/sh", "sh", "-c", cmd, static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

std::string container_content(const std::string& path, std::size_t limit) {
  auto fd = ldplfs::plfs::plfs_open(path, O_RDONLY, 1);
  EXPECT_TRUE(fd.ok());
  if (!fd.ok()) return {};
  std::string out(limit, '\0');
  auto n = fd.value()->read(
      {reinterpret_cast<std::byte*>(out.data()), out.size()}, 0);
  EXPECT_TRUE(n.ok());
  out.resize(n.ok() ? n.value() : 0);
  return out;
}

TEST(MultiProcessTest, ConcurrentRegionWritersMerge) {
  TempDir mount;
  const std::string file = mount.sub("shared.dat");
  constexpr int kWriters = 4;
  constexpr std::size_t kRegion = 64 * 1024;

  // Pre-create the container so racing creators are not part of this test.
  {
    auto fd = ldplfs::plfs::plfs_open(file, O_CREAT | O_WRONLY, 1);
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(ldplfs::plfs::plfs_close(fd.value(), 1).ok());
  }

  std::vector<pid_t> children;
  for (int w = 0; w < kWriters; ++w) {
    children.push_back(spawn_region_writer(mount.path(), file, w, kRegion,
                                           static_cast<char>('A' + w)));
  }
  for (pid_t pid : children) {
    int status = 0;
    ASSERT_EQ(::waitpid(pid, &status, 0), pid);
    ASSERT_TRUE(WIFEXITED(status));
    ASSERT_EQ(WEXITSTATUS(status), 0);
  }

  // Every process produced its own dropping.
  auto droppings = ldplfs::plfs::find_data_droppings(file);
  ASSERT_TRUE(droppings.ok());
  EXPECT_EQ(droppings.value().size(), static_cast<std::size_t>(kWriters));

  // Merged logical content: region w filled with 'A'+w.
  const std::string content = container_content(file, kWriters * kRegion + 1);
  ASSERT_EQ(content.size(), kWriters * kRegion);
  for (int w = 0; w < kWriters; ++w) {
    for (std::size_t i = 0; i < kRegion; i += 7919) {
      ASSERT_EQ(content[w * kRegion + i], 'A' + w)
          << "region " << w << " offset " << i;
    }
  }
}

TEST(MultiProcessTest, KilledWriterDoesNotCorruptSurvivors) {
  TempDir mount;
  const std::string file = mount.sub("crashy.dat");

  // Survivor writes its region cleanly first.
  {
    auto fd = ldplfs::plfs::plfs_open(file, O_CREAT | O_WRONLY, 1);
    ASSERT_TRUE(fd.ok());
    const std::string good(4096, 'G');
    ASSERT_TRUE(fd.value()
                    ->write({reinterpret_cast<const std::byte*>(good.data()),
                             good.size()},
                            0, 1)
                    .ok());
    ASSERT_TRUE(ldplfs::plfs::plfs_close(fd.value(), 1).ok());
  }

  // A second "writer" dies mid-flight: simulate the crash artefacts it
  // leaves — a torn index dropping (half a record at the tail) and a stale
  // openhosts registration, which is exactly the on-disk state after
  // SIGKILL between pwrite and flush.
  {
    ldplfs::plfs::ContainerLayout layout(file);
    ldplfs::plfs::WriterId ghost{"deadhost", 4242,
                                 ldplfs::plfs::next_timestamp()};
    ASSERT_TRUE(
        ldplfs::posix::make_dirs(layout.hostdir_for(ghost.host)).ok());
    // Data dropping with some bytes that were never indexed.
    ASSERT_TRUE(ldplfs::posix::write_file(layout.data_dropping_path(ghost),
                                          "unindexed-bytes")
                    .ok());
    // Index dropping: valid header + torn half-record.
    std::string idx = ldplfs::plfs::encode_index_header(
        {"hostdir.0/dropping.data.ghost"});
    idx.append(20, '\x7f');  // half of a 40-byte record
    ASSERT_TRUE(
        ldplfs::posix::write_file(layout.index_dropping_path(ghost), idx)
            .ok());
    ASSERT_TRUE(
        ldplfs::posix::write_file(layout.openhost_path(ghost), "").ok());
  }

  // Readers must still see the survivor's bytes, and only those.
  const std::string content = container_content(file, 8192);
  ASSERT_EQ(content.size(), 4096u);
  for (std::size_t i = 0; i < content.size(); i += 509) {
    ASSERT_EQ(content[i], 'G') << i;
  }

  // getattr falls back to a full index merge (stale openhost present) and
  // still answers correctly.
  auto attr = ldplfs::plfs::plfs_getattr(file);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 4096u);
  EXPECT_FALSE(attr.value().from_hints);
}

TEST(MultiProcessTest, RacingCreatorsBothSucceed) {
  TempDir mount;
  const std::string file = mount.sub("race.dat");
  std::vector<pid_t> children;
  for (int w = 0; w < 2; ++w) {
    children.push_back(spawn_region_writer(mount.path(), file, w, 4096,
                                           static_cast<char>('x' + w)));
  }
  bool all_ok = true;
  for (pid_t pid : children) {
    int status = 0;
    ::waitpid(pid, &status, 0);
    all_ok &= WIFEXITED(status) && WEXITSTATUS(status) == 0;
  }
  EXPECT_TRUE(all_ok);
  EXPECT_TRUE(ldplfs::plfs::is_container(file));
  const std::string content = container_content(file, 16384);
  EXPECT_EQ(content.size(), 8192u);
}

}  // namespace
