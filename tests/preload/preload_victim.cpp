// Victim program for LD_PRELOAD end-to-end tests. Deliberately built as a
// plain POSIX/stdio binary with no LDPLFS linkage — the whole point is that
// interposition must work on unmodified executables. Scenarios are selected
// by argv[1]; nonzero exit = scenario assertion failed.
#include <errno.h>
#include <fcntl.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <sys/mman.h>
#include <sys/sendfile.h>
#include <sys/stat.h>
#include <sys/uio.h>
#include <unistd.h>

#include <string>

namespace {

int fail(const char* what) {
  perror(what);
  return 1;
}

int scenario_write(const char* path) {
  const int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  if (write(fd, "hello ", 6) != 6) return fail("write1");
  if (write(fd, "world!", 6) != 6) return fail("write2");
  if (lseek(fd, 0, SEEK_SET) != 0) return fail("lseek");
  if (write(fd, "HELLO", 5) != 5) return fail("write3");
  if (close(fd) != 0) return fail("close");
  return 0;
}

int scenario_read(const char* path) {
  const int fd = open(path, O_RDONLY);
  if (fd < 0) return fail("open");
  char buf[4096];
  ssize_t n;
  while ((n = read(fd, buf, sizeof buf)) > 0) {
    if (write(STDOUT_FILENO, buf, static_cast<size_t>(n)) != n) {
      return fail("stdout");
    }
  }
  if (n < 0) return fail("read");
  if (close(fd) != 0) return fail("close");
  return 0;
}

int scenario_stdio(const char* path) {
  FILE* f = fopen(path, "w");
  if (f == nullptr) return fail("fopen w");
  if (fputs("stdio line one\n", f) == EOF) return fail("fputs");
  if (fprintf(f, "value=%d\n", 42) < 0) return fail("fprintf");
  if (fclose(f) != 0) return fail("fclose");

  f = fopen(path, "r");
  if (f == nullptr) return fail("fopen r");
  char line[128];
  if (fgets(line, sizeof line, f) == nullptr) return fail("fgets1");
  if (strcmp(line, "stdio line one\n") != 0) {
    fprintf(stderr, "bad line1: %s", line);
    return 1;
  }
  if (fseek(f, 0, SEEK_SET) != 0) return fail("fseek");
  if (fgets(line, sizeof line, f) == nullptr) return fail("fgets2");
  if (strcmp(line, "stdio line one\n") != 0) {
    fprintf(stderr, "bad reread: %s", line);
    return 1;
  }
  if (fgets(line, sizeof line, f) == nullptr) return fail("fgets3");
  if (strcmp(line, "value=42\n") != 0) {
    fprintf(stderr, "bad line2: %s", line);
    return 1;
  }
  if (fclose(f) != 0) return fail("fclose r");
  return 0;
}

int scenario_stdio_excl(const char* path) {
  // glibc fopen mode modifiers: 'x' => O_EXCL, 'b' is a no-op on POSIX,
  // 'e' => O_CLOEXEC. An interposing shim must honour all three.
  FILE* f = fopen(path, "wbx");
  if (f == nullptr) return fail("fopen wbx fresh");
  if (fputs("first\n", f) == EOF) return fail("fputs first");
  if (fclose(f) != 0) return fail("fclose first");

  // Exclusive create on an existing file must fail with EEXIST — and must
  // NOT truncate what is already there.
  errno = 0;
  f = fopen(path, "wx");
  if (f != nullptr) {
    fclose(f);
    fprintf(stderr, "fopen(\"wx\") succeeded on an existing file\n");
    return 1;
  }
  if (errno != EEXIST) {
    fprintf(stderr, "fopen(\"wx\") set errno %d, want EEXIST\n", errno);
    return 1;
  }

  f = fopen(path, "ab");
  if (f == nullptr) return fail("fopen ab");
  if (fputs("second\n", f) == EOF) return fail("fputs second");
  if (fclose(f) != 0) return fail("fclose append");

  f = fopen(path, "rbe");
  if (f == nullptr) return fail("fopen rbe");
  char buf[64] = {0};
  const size_t n = fread(buf, 1, sizeof buf - 1, f);
  if (fclose(f) != 0) return fail("fclose read");
  if (n != 13 || strcmp(buf, "first\nsecond\n") != 0) {
    fprintf(stderr, "content after failed wx: %zu bytes: %s\n", n, buf);
    return 1;
  }
  return 0;
}

int scenario_stat(const char* path) {
  struct stat st;
  if (stat(path, &st) != 0) return fail("stat");
  if (!S_ISREG(st.st_mode)) {
    fprintf(stderr, "not a regular file (mode %o)\n", st.st_mode);
    return 1;
  }
  printf("%lld\n", static_cast<long long>(st.st_size));
  return 0;
}

int scenario_unlink(const char* path) {
  if (unlink(path) != 0) return fail("unlink");
  struct stat st;
  if (stat(path, &st) == 0) {
    fprintf(stderr, "still exists after unlink\n");
    return 1;
  }
  return 0;
}

int scenario_pread(const char* path) {
  // Positional I/O + dup + O_APPEND combined.
  int fd = open(path, O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  if (pwrite(fd, "0123456789", 10, 0) != 10) return fail("pwrite");
  char buf[4] = {0};
  if (pread(fd, buf, 3, 4) != 3) return fail("pread");
  if (memcmp(buf, "456", 3) != 0) {
    fprintf(stderr, "pread mismatch: %s\n", buf);
    return 1;
  }
  const int fd2 = dup(fd);
  if (fd2 < 0) return fail("dup");
  if (close(fd) != 0) return fail("close fd");
  if (pwrite(fd2, "XX", 2, 10) != 2) return fail("pwrite dup");
  if (close(fd2) != 0) return fail("close fd2");

  fd = open(path, O_WRONLY | O_APPEND);
  if (fd < 0) return fail("open append");
  if (write(fd, "END", 3) != 3) return fail("append write");
  if (close(fd) != 0) return fail("close append");

  fd = open(path, O_RDONLY);
  char all[32] = {0};
  const ssize_t n = read(fd, all, sizeof all);
  if (n != 15) {
    fprintf(stderr, "expected 15 bytes, got %zd (%s)\n", n, all);
    return 1;
  }
  if (memcmp(all, "0123456789XXEND", 15) != 0) {
    fprintf(stderr, "content mismatch: %s\n", all);
    return 1;
  }
  close(fd);
  return 0;
}

int scenario_bigblocks(const char* path) {
  // 8 MiB-block streaming write + verify, the MPI-IO Test access shape.
  const size_t block = 8u << 20;
  const int blocks = 4;
  char* buf = static_cast<char*>(malloc(block));
  if (buf == nullptr) return fail("malloc");
  int fd = open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  for (int b = 0; b < blocks; ++b) {
    memset(buf, 'A' + b, block);
    if (write(fd, buf, block) != static_cast<ssize_t>(block)) {
      return fail("write");
    }
  }
  if (close(fd) != 0) return fail("close");

  fd = open(path, O_RDONLY);
  if (fd < 0) return fail("open r");
  for (int b = 0; b < blocks; ++b) {
    size_t got = 0;
    while (got < block) {
      const ssize_t n = read(fd, buf + got, block - got);
      if (n <= 0) return fail("read");
      got += static_cast<size_t>(n);
    }
    for (size_t i = 0; i < block; i += 4099) {
      if (buf[i] != 'A' + b) {
        fprintf(stderr, "mismatch at block %d offset %zu\n", b, i);
        free(buf);
        return 1;
      }
    }
  }
  free(buf);
  close(fd);
  return 0;
}

int scenario_vectored(const char* path) {
  // writev/readv through the shim.
  int fd = open(path, O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  char a[] = "alpha-";
  char b[] = "bravo-";
  char c[] = "charlie";
  struct iovec out[3] = {{a, 6}, {b, 6}, {c, 7}};
  if (writev(fd, out, 3) != 19) return fail("writev");
  if (lseek(fd, 0, SEEK_SET) != 0) return fail("lseek");
  char r1[6], r2[13];
  struct iovec in[2] = {{r1, 6}, {r2, 13}};
  if (readv(fd, in, 2) != 19) return fail("readv");
  if (memcmp(r1, "alpha-", 6) != 0 || memcmp(r2, "bravo-charlie", 13) != 0) {
    fprintf(stderr, "vectored content mismatch\n");
    return 1;
  }
  if (close(fd) != 0) return fail("close");
  return 0;
}

int scenario_mmap_cat(const char* path) {
  // GNU-grep style: try a read-only private map first; on ENODEV fall back
  // to read(2). Tags the path taken on stderr so tests can assert which
  // one served the bytes.
  const int fd = open(path, O_RDONLY);
  if (fd < 0) return fail("open");
  struct stat st;
  if (fstat(fd, &st) != 0) return fail("fstat");
  const size_t size = static_cast<size_t>(st.st_size);
  void* p = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (p == MAP_FAILED) {
    if (errno != ENODEV) return fail("mmap (expected ENODEV fallback)");
    fprintf(stderr, "MMAP_FALLBACK\n");
    char buf[4096];
    ssize_t n;
    while ((n = read(fd, buf, sizeof buf)) > 0) {
      if (write(STDOUT_FILENO, buf, static_cast<size_t>(n)) != n) {
        return fail("stdout");
      }
    }
    if (n < 0) return fail("read");
  } else {
    fprintf(stderr, "MMAP_SERVED\n");
    if (write(STDOUT_FILENO, p, size) != static_cast<ssize_t>(size)) {
      return fail("stdout");
    }
    if (munmap(p, size) != 0) return fail("munmap");
  }
  if (close(fd) != 0) return fail("close");
  return 0;
}

int scenario_mmap_after_close(const char* path) {
  // POSIX: closing the fd does not invalidate the mapping.
  const int fd = open(path, O_RDONLY);
  if (fd < 0) return fail("open");
  struct stat st;
  if (fstat(fd, &st) != 0) return fail("fstat");
  const size_t size = static_cast<size_t>(st.st_size);
  void* p = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  if (p == MAP_FAILED) return fail("mmap");
  if (close(fd) != 0) return fail("close");
  if (write(STDOUT_FILENO, p, size) != static_cast<ssize_t>(size)) {
    return fail("stdout");
  }
  if (munmap(p, size) != 0) return fail("munmap");
  return 0;
}

int scenario_mmap_offset(const char* path) {
  // Map the second page only: the shim must pass the caller's offset
  // through to the dropping without truncation.
  const int fd = open(path, O_RDONLY);
  if (fd < 0) return fail("open");
  struct stat st;
  if (fstat(fd, &st) != 0) return fail("fstat");
  if (st.st_size <= 4096) {
    fprintf(stderr, "file too small for offset map\n");
    return 1;
  }
  const size_t size = static_cast<size_t>(st.st_size) - 4096;
  void* p = mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 4096);
  if (p == MAP_FAILED) return fail("mmap offset");
  if (write(STDOUT_FILENO, p, size) != static_cast<ssize_t>(size)) {
    return fail("stdout");
  }
  if (munmap(p, size) != 0) return fail("munmap");
  if (close(fd) != 0) return fail("close");
  return 0;
}

int scenario_copy_out(const char* path) {
  // copy_file_range and sendfile from the (container) path to plain files
  // named by $VICTIM_DEST — the kernel-to-kernel fast path cp/install use.
  const char* dest = getenv("VICTIM_DEST");
  if (dest == nullptr) {
    fprintf(stderr, "VICTIM_DEST not set\n");
    return 2;
  }
  const int fd = open(path, O_RDONLY);
  if (fd < 0) return fail("open");
  struct stat st;
  if (fstat(fd, &st) != 0) return fail("fstat");
  const size_t size = static_cast<size_t>(st.st_size);

  const std::string cfr_dest = std::string(dest) + ".cfr";
  int out = open(cfr_dest.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out < 0) return fail("open cfr dest");
  off_t off_in = 0;
  size_t left = size;
  while (left > 0) {
    const ssize_t n = copy_file_range(fd, &off_in, out, nullptr, left, 0);
    if (n <= 0) return fail("copy_file_range");
    left -= static_cast<size_t>(n);
  }
  if (off_in != st.st_size) {
    fprintf(stderr, "cfr offset %lld != size\n",
            static_cast<long long>(off_in));
    return 1;
  }
  if (close(out) != 0) return fail("close cfr dest");

  const std::string sf_dest = std::string(dest) + ".sf";
  out = open(sf_dest.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (out < 0) return fail("open sf dest");
  off_t off = 0;
  left = size;
  while (left > 0) {
    const ssize_t n = sendfile(out, fd, &off, left);
    if (n <= 0) return fail("sendfile");
    left -= static_cast<size_t>(n);
  }
  if (off != st.st_size) {
    fprintf(stderr, "sendfile offset %lld != size\n",
            static_cast<long long>(off));
    return 1;
  }
  if (close(out) != 0) return fail("close sf dest");
  if (close(fd) != 0) return fail("close");
  return 0;
}

int scenario_statat64(const char* path) {
  // The LFS64 stat family: glibc's stat64/fstatat64 entry points must fill
  // a real struct stat64 (the shim used to alias the buffer as struct stat).
  struct stat64 st;
  memset(&st, 0xAA, sizeof st);  // poison: stale bytes must be overwritten
  if (fstatat64(AT_FDCWD, path, &st, 0) != 0) return fail("fstatat64");
  if (!S_ISREG(st.st_mode)) {
    fprintf(stderr, "fstatat64: not a regular file (mode %o)\n", st.st_mode);
    return 1;
  }
  struct stat64 st2;
  memset(&st2, 0x55, sizeof st2);
  if (stat64(path, &st2) != 0) return fail("stat64");
  if (st2.st_size != st.st_size || st2.st_mode != st.st_mode) {
    fprintf(stderr, "stat64 and fstatat64 disagree\n");
    return 1;
  }
  struct stat plain;
  if (stat(path, &plain) != 0) return fail("stat");
  if (st.st_size != plain.st_size || st.st_ino != (ino64_t)plain.st_ino) {
    fprintf(stderr, "stat64 and stat disagree\n");
    return 1;
  }
  printf("%lld\n", static_cast<long long>(st.st_size));
  return 0;
}

int scenario_fcntl(const char* path) {
  // fcntl on a routed fd: F_DUPFD must alias the PLFS handle (shared
  // cursor), F_GETFL must report the logical open flags, F_SETFL O_APPEND
  // must change write placement, and F_SETFD must keep working.
  int fd = open(path, O_RDWR | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return fail("open");
  if (write(fd, "0123456789", 10) != 10) return fail("write");
  if (lseek(fd, 0, SEEK_SET) != 0) return fail("lseek");

  const int fd2 = fcntl(fd, F_DUPFD, 10);
  if (fd2 < 10) return fail("fcntl F_DUPFD");
  char a[5], b[5];
  if (read(fd, a, 5) != 5) return fail("read fd");
  if (read(fd2, b, 5) != 5) return fail("read fd2");
  if (memcmp(a, "01234", 5) != 0 || memcmp(b, "56789", 5) != 0) {
    fprintf(stderr, "dup'd fd does not share the cursor\n");
    return 1;
  }

  const int fl = fcntl(fd2, F_GETFL);
  if (fl < 0) return fail("fcntl F_GETFL");
  if ((fl & O_ACCMODE) != O_RDWR) {
    fprintf(stderr, "F_GETFL accmode %d, want O_RDWR\n", fl & O_ACCMODE);
    return 1;
  }
  if (fcntl(fd2, F_SETFL, fl | O_APPEND) != 0) return fail("fcntl F_SETFL");
  if ((fcntl(fd2, F_GETFL) & O_APPEND) == 0) {
    fprintf(stderr, "F_SETFL O_APPEND did not stick\n");
    return 1;
  }
  if (lseek(fd2, 0, SEEK_SET) != 0) return fail("lseek fd2");
  if (write(fd2, "END", 3) != 3) return fail("append write");

  if (fcntl(fd, F_SETFD, FD_CLOEXEC) != 0) return fail("fcntl F_SETFD");
  if ((fcntl(fd, F_GETFD) & FD_CLOEXEC) == 0) {
    fprintf(stderr, "F_SETFD FD_CLOEXEC did not stick\n");
    return 1;
  }
  if (close(fd) != 0) return fail("close fd");
  if (close(fd2) != 0) return fail("close fd2");

  fd = open(path, O_RDONLY);
  if (fd < 0) return fail("reopen");
  char all[32] = {0};
  const ssize_t n = read(fd, all, sizeof all);
  if (n != 13 || memcmp(all, "0123456789END", 13) != 0) {
    fprintf(stderr, "expected 0123456789END, got %zd bytes: %s\n", n, all);
    return 1;
  }
  close(fd);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 3) {
    fprintf(stderr, "usage: preload_victim SCENARIO PATH\n");
    return 2;
  }
  const std::string scenario = argv[1];
  const char* path = argv[2];
  if (scenario == "write") return scenario_write(path);
  if (scenario == "read") return scenario_read(path);
  if (scenario == "stdio") return scenario_stdio(path);
  if (scenario == "stdio_excl") return scenario_stdio_excl(path);
  if (scenario == "stat") return scenario_stat(path);
  if (scenario == "unlink") return scenario_unlink(path);
  if (scenario == "pread") return scenario_pread(path);
  if (scenario == "bigblocks") return scenario_bigblocks(path);
  if (scenario == "vectored") return scenario_vectored(path);
  if (scenario == "mmap_cat") return scenario_mmap_cat(path);
  if (scenario == "mmap_after_close") return scenario_mmap_after_close(path);
  if (scenario == "mmap_offset") return scenario_mmap_offset(path);
  if (scenario == "copy_out") return scenario_copy_out(path);
  if (scenario == "statat64") return scenario_statat64(path);
  if (scenario == "fcntl") return scenario_fcntl(path);
  fprintf(stderr, "unknown scenario %s\n", scenario.c_str());
  return 2;
}
