// End-to-end tests of the static --wrap interposition mode: the same victim
// scenarios as the LD_PRELOAD suite, but the victim binary has LDPLFS
// linked in at build time with -Wl,--wrap=... — no dynamic loader involved
// (the paper's answer for BlueGene-style systems).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>

#include "plfs/container.hpp"
#include "plfs/plfs.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace {

using ldplfs::testing::TempDir;

int run_wrap_victim(const std::string& scenario, const std::string& path,
                    const std::string& mount) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::setenv("LDPLFS_MOUNTS", mount.c_str(), 1);
    const int devnull = ::open("/dev/null", O_WRONLY);
    ::dup2(devnull, STDOUT_FILENO);
    ::execl(LDPLFS_WRAP_VICTIM_BIN, LDPLFS_WRAP_VICTIM_BIN, scenario.c_str(),
            path.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  int status = 0;
  ::waitpid(pid, &status, 0);
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(WrapE2eTest, WriteCreatesContainer) {
  TempDir mount;
  const std::string file = mount.sub("w.dat");
  ASSERT_EQ(run_wrap_victim("write", file, mount.path()), 0);
  EXPECT_TRUE(ldplfs::plfs::is_container(file));
  auto attr = ldplfs::plfs::plfs_getattr(file);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 12u);
}

TEST(WrapE2eTest, PositionalIoDupAndAppend) {
  TempDir mount;
  EXPECT_EQ(run_wrap_victim("pread", mount.sub("p.dat"), mount.path()), 0);
}

TEST(WrapE2eTest, StatAndUnlink) {
  TempDir mount;
  const std::string file = mount.sub("s.dat");
  ASSERT_EQ(run_wrap_victim("write", file, mount.path()), 0);
  ASSERT_EQ(run_wrap_victim("stat", file, mount.path()), 0);
  ASSERT_EQ(run_wrap_victim("unlink", file, mount.path()), 0);
  EXPECT_FALSE(ldplfs::posix::exists(file));
}

TEST(WrapE2eTest, BigBlockStream) {
  TempDir mount;
  const std::string file = mount.sub("big.dat");
  ASSERT_EQ(run_wrap_victim("bigblocks", file, mount.path()), 0);
  auto attr = ldplfs::plfs::plfs_getattr(file);
  ASSERT_TRUE(attr.ok());
  EXPECT_EQ(attr.value().size, 4ull * (8u << 20));
}

}  // namespace
