// End-to-end regression-gate test: spawn the real ldp-bench binary.
//
// The gate property is self-testing and machine-independent: two runs of
// the same build on the same machine (A/A) must compare clean, while a
// candidate run with an injected per-pwrite delay (LDPLFS_FAULTS) must be
// flagged as a statistically significant regression with a non-zero exit.
// This is the same pair of checks the tier-1 `bench_suite_gate` ctest
// performs via bench/bench_gate.cmake — here in-process so a failure
// pinpoints which half broke.
//
// Thresholds mirror the ctest gate: reps 6 at smoke scale, alpha 0.01
// (exact Mann-Whitney: full separation at 6v6 gives p = 2/924), and
// --min-effect 0.5 — the injected 2 ms/pwrite delay produces a multiple-x
// slowdown, so detection clears 50% with huge margin while back-to-back
// A/A runs never drift that far.
//
// Binary location comes in via -DLDPLFS_BENCH_BIN.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "bench_harness/report.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace {

using ldplfs::testing::TempDir;

struct BenchResult {
  int exit_code = -1;
  std::string output;  // stdout
};

/// Run ldp-bench with `args`; when `faults` is non-empty it is exported as
/// LDPLFS_FAULTS in the child only, and `extra_env` name=value pairs are
/// exported alongside it.
BenchResult run_bench(
    const std::vector<std::string>& args, const std::string& faults = "",
    const std::vector<std::pair<std::string, std::string>>& extra_env = {}) {
  int out_pipe[2];
  EXPECT_EQ(::pipe(out_pipe), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(out_pipe[1], STDOUT_FILENO);
    ::close(out_pipe[0]);
    ::close(out_pipe[1]);
    if (!faults.empty()) ::setenv("LDPLFS_FAULTS", faults.c_str(), 1);
    for (const auto& [name, value] : extra_env) {
      ::setenv(name.c_str(), value.c_str(), 1);
    }
    std::vector<char*> argv;
    const std::string bin = LDPLFS_BENCH_BIN;
    argv.push_back(const_cast<char*>(bin.c_str()));
    for (const auto& arg : args) {
      argv.push_back(const_cast<char*>(arg.c_str()));
    }
    argv.push_back(nullptr);
    ::execv(bin.c_str(), argv.data());
    _exit(127);
  }
  ::close(out_pipe[1]);
  BenchResult result;
  char buf[4096];
  ssize_t n;
  while ((n = ::read(out_pipe[0], buf, sizeof buf)) > 0) {
    result.output.append(buf, static_cast<std::size_t>(n));
  }
  ::close(out_pipe[0]);
  int status = 0;
  ::waitpid(pid, &status, 0);
  result.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : -1;
  return result;
}

/// One measurement run over the gate's scenario subset.
BenchResult run_measure(const std::string& json_path,
                        const std::string& faults = "") {
  return run_bench({"--scenario", "strided_write,mixed_rw", "--reps", "6",
                    "--warmup", "1", "--seed", "7", "--json", json_path},
                   faults);
}

class RegressionGateTest : public ::testing::Test {
 protected:
  // The three measurement runs are shared across tests: they are the
  // expensive part, and every test only re-compares the JSON artifacts.
  static void SetUpTestSuite() {
    dir_ = new TempDir;
    const auto base = run_measure(base_json());
    ASSERT_EQ(base.exit_code, 0) << base.output;
    const auto aa = run_measure(aa_json());
    ASSERT_EQ(aa.exit_code, 0) << aa.output;
    const auto delayed = run_measure(delayed_json(), "pwrite:delay=2000");
    ASSERT_EQ(delayed.exit_code, 0) << delayed.output;
  }

  static void TearDownTestSuite() {
    delete dir_;
    dir_ = nullptr;
  }

  static std::string base_json() { return dir_->sub("base.json"); }
  static std::string aa_json() { return dir_->sub("aa.json"); }
  static std::string delayed_json() { return dir_->sub("delayed.json"); }

  static TempDir* dir_;
};

TempDir* RegressionGateTest::dir_ = nullptr;

TEST_F(RegressionGateTest, EmittedReportIsSchemaValid) {
  auto report = ldplfs::bench::load_report(base_json());
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report.value().scenarios.size(), 2u);
  for (const auto& s : report.value().scenarios) {
    EXPECT_EQ(s.samples.size(), 6u);
  }
}

TEST_F(RegressionGateTest, AaCompareReportsNoRegressionAndExitsZero) {
  const auto cmp = run_bench({"--compare", base_json(), aa_json(), "--alpha",
                              "0.01", "--min-effect", "0.5"});
  EXPECT_EQ(cmp.exit_code, 0) << cmp.output;
  EXPECT_NE(cmp.output.find("no statistically significant regression"),
            std::string::npos)
      << cmp.output;
  EXPECT_EQ(cmp.output.find("REGRESSION"), std::string::npos) << cmp.output;
}

TEST_F(RegressionGateTest, InjectedDelayIsFlaggedAsRegressionNonZeroExit) {
  const auto cmp = run_bench({"--compare", base_json(), delayed_json(),
                              "--alpha", "0.01", "--min-effect", "0.5"});
  EXPECT_EQ(cmp.exit_code, 1) << cmp.output;
  EXPECT_NE(cmp.output.find("REGRESSION"), std::string::npos) << cmp.output;
  EXPECT_NE(cmp.output.find("statistically significant regression detected"),
            std::string::npos)
      << cmp.output;
}

TEST_F(RegressionGateTest, ImprovementDirectionDoesNotGate) {
  // Swapping baseline and candidate turns the regression into an
  // improvement: still significant, but the gate must not fail the build
  // for getting faster.
  const auto cmp = run_bench({"--compare", delayed_json(), base_json(),
                              "--alpha", "0.01", "--min-effect", "0.5"});
  EXPECT_EQ(cmp.exit_code, 0) << cmp.output;
  EXPECT_NE(cmp.output.find("improvement"), std::string::npos) << cmp.output;
}

/// One measurement run of the zero-copy scenario (mapped reads pinned on
/// by the scenario itself).
BenchResult run_flat(const std::string& json_path,
                     const std::string& faults = "",
                     const std::vector<std::pair<std::string, std::string>>&
                         extra_env = {}) {
  return run_bench({"--scenario", "flat_strided_read", "--reps", "6",
                    "--warmup", "1", "--seed", "7", "--json", json_path},
                   faults, extra_env);
}

TEST_F(RegressionGateTest, MmapFallbackStormIsFlaggedAndMappedPathIsImmune) {
  // Base: mapped reads served from the registry's mapping — zero preads.
  const auto base = run_flat(dir_->sub("flat_base.json"));
  ASSERT_EQ(base.exit_code, 0) << base.output;
  // A per-pread delay cannot move the mapped path (it issues no preads).
  // The reps are ~100 µs, so the fault machinery's fixed bookkeeping
  // overhead alone can register as a sub-2x "change"; --min-effect 4.0
  // ignores that while still catching even a couple of real 2 ms delayed
  // preads per rep (a >40x swing).
  const auto mapped = run_flat(dir_->sub("flat_mapped.json"),
                               "pread:delay=2000");
  ASSERT_EQ(mapped.exit_code, 0) << mapped.output;
  const auto immune =
      run_bench({"--compare", dir_->sub("flat_base.json"),
                 dir_->sub("flat_mapped.json"), "--alpha", "0.01",
                 "--min-effect", "4.0"});
  EXPECT_EQ(immune.exit_code, 0) << immune.output;
  // ...but a fallback storm (every acquire refused, every read demoted to
  // the delayed pread path) must be flagged as a regression.
  const auto storm =
      run_flat(dir_->sub("flat_storm.json"), "pread:delay=2000",
               {{"LDPLFS_MMAP_FORCE_FALLBACK", "1"}});
  ASSERT_EQ(storm.exit_code, 0) << storm.output;
  const auto cmp =
      run_bench({"--compare", dir_->sub("flat_base.json"),
                 dir_->sub("flat_storm.json"), "--alpha", "0.01",
                 "--min-effect", "0.5"});
  EXPECT_EQ(cmp.exit_code, 1) << cmp.output;
  EXPECT_NE(cmp.output.find("REGRESSION"), std::string::npos) << cmp.output;
}

TEST_F(RegressionGateTest, CompareRejectsInvalidReports) {
  ASSERT_TRUE(
      ldplfs::posix::write_file(dir_->sub("garbage.json"), "not json").ok());
  const auto cmp =
      run_bench({"--compare", base_json(), dir_->sub("garbage.json")});
  EXPECT_EQ(cmp.exit_code, 2);
  const auto missing =
      run_bench({"--compare", base_json(), dir_->sub("nonexistent.json")});
  EXPECT_EQ(missing.exit_code, 2);
}

TEST_F(RegressionGateTest, BadUsageExitsTwo) {
  EXPECT_EQ(run_bench({"--compare", base_json()}).exit_code, 2);
  EXPECT_EQ(run_bench({"--suite", "nope"}).exit_code, 2);
  EXPECT_EQ(run_bench({"--scenario", "no_such_scenario", "--reps", "1"})
                .exit_code,
            2);
}

}  // namespace
