// Property tests for the ldp-bench scenario matrix and its seeded
// generators (workloads/posix_patterns).
//
// The reproducibility oracle: a scenario driven twice with the same seed
// in two fresh workspaces must leave byte-identical *logical* container
// contents — every offset, length, and payload byte derives from the seed.
// Physically the containers may differ (hostnames, timestamps, dropping
// interleave); logically they may not. Plus the hygiene property: the
// metadata storm leaves zero residue.
#include <algorithm>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "bench_harness/harness.hpp"
#include "bench_harness/runner.hpp"
#include "plfs/plfs.hpp"
#include "plfs/read_file.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"
#include "workloads/posix_patterns.hpp"

namespace ldplfs::bench {
namespace {

using testing::TempDir;

std::unique_ptr<Scenario> scenario_by_name(const std::string& name) {
  auto suite = make_suite();
  for (auto& s : suite) {
    if (name == s->name()) return std::move(s);
  }
  return nullptr;
}

/// Run `name` once in a fresh workspace (setup + single rep + teardown)
/// and return the workspace directory path (owned by `dir`).
void run_scenario_once(const std::string& name, const TempDir& dir,
                       std::uint64_t seed) {
  auto scenario = scenario_by_name(name);
  ASSERT_NE(scenario, nullptr);
  Workspace ws;
  ws.dir = dir.path();
  ws.seed = seed;
  ws.smoke = true;
  scenario->setup(ws);
  (void)scenario->run_once(ws);
  scenario->teardown(ws);
}

/// Full logical contents of the PLFS container at `path`.
std::vector<std::byte> logical_bytes(const std::string& path) {
  auto attr = plfs::plfs_getattr(path);
  EXPECT_TRUE(attr.ok()) << path;
  std::vector<std::byte> out(attr.value().size);
  auto rf = plfs::ReadFile::open(path);
  EXPECT_TRUE(rf.ok()) << path;
  auto n = rf.value()->read(out, 0);
  EXPECT_TRUE(n.ok());
  EXPECT_EQ(n.value(), out.size());
  return out;
}

// --- generator determinism ------------------------------------------------

TEST(PosixPatternsTest, StridedN1IsDeterministicInSeed) {
  const auto a = workloads::make_strided_n1(4, 8, 4096, 77);
  const auto b = workloads::make_strided_n1(4, 8, 4096, 77);
  ASSERT_EQ(a.per_writer.size(), b.per_writer.size());
  for (std::size_t w = 0; w < a.per_writer.size(); ++w) {
    ASSERT_EQ(a.per_writer[w].size(), b.per_writer[w].size());
    for (std::size_t i = 0; i < a.per_writer[w].size(); ++i) {
      EXPECT_EQ(a.per_writer[w][i].offset, b.per_writer[w][i].offset);
      EXPECT_EQ(a.per_writer[w][i].length, b.per_writer[w][i].length);
      EXPECT_EQ(a.per_writer[w][i].fill_seed, b.per_writer[w][i].fill_seed);
    }
  }
  // A different seed changes the payload stream (and usually the rank
  // permutation).
  const auto c = workloads::make_strided_n1(4, 8, 4096, 78);
  EXPECT_NE(a.per_writer[0][0].fill_seed, c.per_writer[0][0].fill_seed);
}

TEST(PosixPatternsTest, StridedN1CoversEveryBlockExactlyOnce) {
  const auto p = workloads::make_strided_n1(4, 8, 4096, 123);
  std::vector<std::uint64_t> offsets;
  for (const auto& ops : p.per_writer) {
    for (const auto& op : ops) {
      EXPECT_EQ(op.length, 4096u);
      EXPECT_EQ(op.offset % 4096, 0u);
      offsets.push_back(op.offset);
    }
  }
  std::sort(offsets.begin(), offsets.end());
  ASSERT_EQ(offsets.size(), 32u);
  for (std::size_t i = 0; i < offsets.size(); ++i) {
    EXPECT_EQ(offsets[i], i * 4096);  // dense, no gaps, no overlap
  }
}

TEST(PosixPatternsTest, MixedRwIsDeterministicAndBounded) {
  const auto a = workloads::make_mixed_rw(1 << 20, 300, 65536, 0.5, 9);
  const auto b = workloads::make_mixed_rw(1 << 20, 300, 65536, 0.5, 9);
  ASSERT_EQ(a.size(), b.size());
  int reads = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].is_read, b[i].is_read);
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].length, b[i].length);
    EXPECT_EQ(a[i].fill_seed, b[i].fill_seed);
    // Ops never extend the file: the final logical size must stay a pure
    // function of the op list.
    EXPECT_LE(a[i].offset + a[i].length, 1u << 20);
    EXPECT_GE(a[i].length, 1u);
    reads += a[i].is_read ? 1 : 0;
  }
  // read_fraction = 0.5 should land in a generous middle band.
  EXPECT_GT(reads, 75);
  EXPECT_LT(reads, 225);
}

TEST(PosixPatternsTest, StormNamesAreDistinctAndSeedStable) {
  const auto a = workloads::make_storm_names(64, 5);
  const auto b = workloads::make_storm_names(64, 5);
  EXPECT_EQ(a, b);
  auto sorted = a;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
  const auto c = workloads::make_storm_names(64, 6);
  EXPECT_NE(a, c);
}

TEST(PosixPatternsTest, FillPayloadIsAPureFunctionOfSeed) {
  std::vector<std::byte> x(1000);
  std::vector<std::byte> y(1000);
  workloads::fill_payload(x, 42);
  workloads::fill_payload(y, 42);
  EXPECT_EQ(std::memcmp(x.data(), y.data(), x.size()), 0);
  workloads::fill_payload(y, 43);
  EXPECT_NE(std::memcmp(x.data(), y.data(), x.size()), 0);
}

// --- runner seed derivation -----------------------------------------------

TEST(RunnerSeedTest, ScenarioSeedDependsOnSuiteSeedAndName) {
  EXPECT_EQ(scenario_seed(42, "mixed_rw"), scenario_seed(42, "mixed_rw"));
  EXPECT_NE(scenario_seed(42, "mixed_rw"), scenario_seed(43, "mixed_rw"));
  // Name-keyed: filtering/reordering scenarios cannot shift another
  // scenario's stream.
  EXPECT_NE(scenario_seed(42, "mixed_rw"), scenario_seed(42, "strided_write"));
}

// --- scenario reproducibility oracle --------------------------------------

TEST(ScenarioPropertyTest, StridedWriteContentsAreByteIdenticalAcrossRuns) {
  TempDir run1;
  TempDir run2;
  run_scenario_once("strided_write", run1, 0xBEEF);
  run_scenario_once("strided_write", run2, 0xBEEF);
  const auto bytes1 = logical_bytes(run1.sub("strided_write.0"));
  const auto bytes2 = logical_bytes(run2.sub("strided_write.0"));
  ASSERT_FALSE(bytes1.empty());
  ASSERT_EQ(bytes1.size(), bytes2.size());
  EXPECT_EQ(std::memcmp(bytes1.data(), bytes2.data(), bytes1.size()), 0);

  // And a different seed yields different contents (same size, different
  // payload) — the oracle is not trivially satisfied by constant output.
  TempDir run3;
  run_scenario_once("strided_write", run3, 0xBEF0);
  const auto bytes3 = logical_bytes(run3.sub("strided_write.0"));
  ASSERT_EQ(bytes1.size(), bytes3.size());
  EXPECT_NE(std::memcmp(bytes1.data(), bytes3.data(), bytes1.size()), 0);
}

TEST(ScenarioPropertyTest, MixedRwContentsAreByteIdenticalAcrossRuns) {
  TempDir run1;
  TempDir run2;
  run_scenario_once("mixed_rw", run1, 0xF00D);
  run_scenario_once("mixed_rw", run2, 0xF00D);
  const auto bytes1 = logical_bytes(run1.sub("mixed.0"));
  const auto bytes2 = logical_bytes(run2.sub("mixed.0"));
  ASSERT_FALSE(bytes1.empty());
  ASSERT_EQ(bytes1.size(), bytes2.size());
  EXPECT_EQ(std::memcmp(bytes1.data(), bytes2.data(), bytes1.size()), 0);
}

TEST(ScenarioPropertyTest, MetadataStormLeavesZeroResidue) {
  TempDir dir;
  run_scenario_once("metadata_storm", dir, 0xD00F);
  auto entries = posix::list_dir(dir.path());
  ASSERT_TRUE(entries.ok());
  EXPECT_TRUE(entries.value().empty())
      << entries.value().size() << " entries left behind, first: "
      << (entries.value().empty() ? "" : entries.value().front());
}

// --- runner plumbing ------------------------------------------------------

TEST(RunnerTest, RejectsUnknownScenarioFilter) {
  RunOptions options;
  options.only = {"no_such_scenario"};
  auto r = run_suite(options);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error_code(), EINVAL);
}

TEST(RunnerTest, ProducesRequestedRepsAndStats) {
  RunOptions options;
  options.reps = 3;
  options.warmup = 0;
  options.seed = 1234;
  options.only = {"metadata_storm"};
  auto r = run_suite(options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 1u);
  const auto& res = r.value()[0];
  EXPECT_EQ(res.name, "metadata_storm");
  EXPECT_EQ(res.family, "metadata_storm");
  ASSERT_EQ(res.samples.size(), 3u);
  for (double s : res.samples) EXPECT_GT(s, 0.0);
  EXPECT_EQ(res.stats.n, 3);
  EXPECT_LE(res.stats.ci95.lo, res.stats.ci95.hi);
  EXPECT_GT(res.extras.count("ops_per_rep"), 0u);
}

}  // namespace
}  // namespace ldplfs::bench
