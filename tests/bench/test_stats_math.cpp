// Unit tests for the harness statistics (common/stats_math) against known
// distributions: bootstrap CI coverage, Mann-Whitney U behaviour on
// shifted vs identical samples (including the exact small-sample path the
// K=5 gate depends on), and the A/A no-false-positive property of the
// two-gated regression verdict across 100 seeded runs.
#include "common/stats_math.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/rng.hpp"

namespace ldplfs::stats_math {
namespace {

/// Box-Muller normal deviate from the repo Rng.
double normal(Rng& rng, double mu, double sigma) {
  double u1 = rng.uniform();
  while (u1 <= 0.0) u1 = rng.uniform();
  const double u2 = rng.uniform();
  return mu + sigma * std::sqrt(-2.0 * std::log(u1)) *
                  std::cos(2.0 * 3.14159265358979323846 * u2);
}

TEST(StatsMathTest, SummaryBasics) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_DOUBLE_EQ(median(xs), 2.5);
  const std::vector<double> odd = {5.0, 1.0, 3.0};
  EXPECT_DOUBLE_EQ(median(odd), 3.0);
  // Sample stddev of {1,2,3,4}: sqrt(5/3).
  EXPECT_NEAR(sample_stddev(xs), std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_DOUBLE_EQ(mean({}), 0.0);
  EXPECT_DOUBLE_EQ(sample_stddev({{7.0}}), 0.0);
}

TEST(StatsMathTest, NormalCdf) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-12);
  EXPECT_NEAR(normal_cdf(1.959963985), 0.975, 1e-6);
  EXPECT_NEAR(normal_cdf(-1.959963985), 0.025, 1e-6);
}

TEST(StatsMathTest, BootstrapCiDegenerateCases) {
  EXPECT_DOUBLE_EQ(bootstrap_ci_mean({}).lo, 0.0);
  const std::vector<double> one = {3.5};
  const auto ci = bootstrap_ci_mean(one);
  EXPECT_DOUBLE_EQ(ci.lo, 3.5);
  EXPECT_DOUBLE_EQ(ci.hi, 3.5);
}

TEST(StatsMathTest, BootstrapCiIsDeterministicInSeed) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0, 5.0, 6.0};
  const auto a = bootstrap_ci_mean(xs, 0.95, 2000, 99);
  const auto b = bootstrap_ci_mean(xs, 0.95, 2000, 99);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
  // Seed-sensitivity: a single pair of seeds can coincide at the 2.5/97.5
  // percentiles, but across a band of seeds the interval must move.
  bool any_differs = false;
  for (std::uint64_t seed = 100; seed <= 120 && !any_differs; ++seed) {
    const auto c = bootstrap_ci_mean(xs, 0.95, 2000, seed);
    any_differs = c.lo != a.lo || c.hi != a.hi;
  }
  EXPECT_TRUE(any_differs);
}

TEST(StatsMathTest, BootstrapCiCoverageOnKnownDistribution) {
  // Draw 200 samples of n=20 from N(10, 2); the 95% CI for the mean must
  // contain 10 in roughly 95% of trials. The percentile bootstrap is known
  // to under-cover slightly at small n, so accept [85%, 100%]. Seeded:
  // this is a fixed arithmetic fact, not a statistical roll of the dice.
  Rng rng(2024);
  int covered = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    std::vector<double> xs;
    xs.reserve(20);
    for (int i = 0; i < 20; ++i) xs.push_back(normal(rng, 10.0, 2.0));
    const auto ci = bootstrap_ci_mean(xs, 0.95, 1000, 7000 + t);
    if (ci.lo <= 10.0 && 10.0 <= ci.hi) ++covered;
  }
  EXPECT_GE(covered, 170);  // 85%
  EXPECT_LE(covered, trials);
  // And the interval is never inverted or absurdly wide.
  std::vector<double> xs;
  for (int i = 0; i < 20; ++i) xs.push_back(normal(rng, 10.0, 2.0));
  const auto ci = bootstrap_ci_mean(xs, 0.95, 1000, 1);
  EXPECT_LE(ci.lo, ci.hi);
  EXPECT_GE(ci.lo, 5.0);
  EXPECT_LE(ci.hi, 15.0);
}

TEST(MannWhitneyTest, IdenticalSamplesAreNotSignificant) {
  const std::vector<double> a = {1.0, 2.0, 3.0, 4.0, 5.0};
  const auto r = mann_whitney_u(a, a);
  EXPECT_GE(r.p, 0.99);
}

TEST(MannWhitneyTest, ExactSmallSampleValues) {
  // a = {1,2}, b = {3,4}: U_a = 0. Two-sided exact p = 2 * P(U <= 0)
  // = 2 * (1 / C(4,2)) = 1/3.
  const std::vector<double> a = {1.0, 2.0};
  const std::vector<double> b = {3.0, 4.0};
  const auto r = mann_whitney_u(a, b);
  EXPECT_TRUE(r.exact);
  EXPECT_NEAR(r.p, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(r.u_a, 0.0);

  // Complete separation at 5 vs 5: p = 2 / C(10,5) = 2/252 — *below* an
  // alpha = 0.01 gate. The normal approximation would misreport ~0.012;
  // this is exactly why the exact path exists.
  const std::vector<double> lo = {1.0, 2.0, 3.0, 4.0, 5.0};
  const std::vector<double> hi = {10.0, 11.0, 12.0, 13.0, 14.0};
  const auto sep = mann_whitney_u(lo, hi);
  EXPECT_TRUE(sep.exact);
  EXPECT_NEAR(sep.p, 2.0 / 252.0, 1e-12);
  EXPECT_LT(sep.p, 0.01);
}

TEST(MannWhitneyTest, SymmetricInArguments) {
  const std::vector<double> a = {1.0, 2.2, 3.1, 4.7, 5.0};
  const std::vector<double> b = {2.5, 3.3, 4.1, 6.9, 7.2};
  const auto ab = mann_whitney_u(a, b);
  const auto ba = mann_whitney_u(b, a);
  EXPECT_NEAR(ab.p, ba.p, 1e-12);
}

TEST(MannWhitneyTest, ShiftedSamplesAreSignificant) {
  // Clear shift, moderate n: exact path.
  Rng rng(11);
  std::vector<double> a;
  std::vector<double> b;
  for (int i = 0; i < 10; ++i) {
    a.push_back(normal(rng, 1.0, 0.05));
    b.push_back(normal(rng, 1.5, 0.05));
  }
  const auto r = mann_whitney_u(a, b);
  EXPECT_TRUE(r.exact);
  EXPECT_LT(r.p, 0.001);

  // Large n: normal-approximation path, still significant.
  for (int i = 0; i < 20; ++i) {
    a.push_back(normal(rng, 1.0, 0.05));
    b.push_back(normal(rng, 1.5, 0.05));
  }
  const auto big = mann_whitney_u(a, b);
  EXPECT_FALSE(big.exact);
  EXPECT_LT(big.p, 1e-6);
}

TEST(MannWhitneyTest, TiesFallBackToMidrankApproximation) {
  const std::vector<double> a = {1.0, 1.0, 2.0, 2.0, 3.0};
  const std::vector<double> b = {1.0, 2.0, 2.0, 3.0, 3.0};
  const auto r = mann_whitney_u(a, b);
  EXPECT_FALSE(r.exact);
  EXPECT_GT(r.p, 0.3);  // nearly identical distributions
  // All-identical data: zero variance, no evidence of a shift.
  const std::vector<double> same(6, 2.0);
  const auto flat = mann_whitney_u(same, same);
  EXPECT_DOUBLE_EQ(flat.p, 1.0);
}

TEST(MannWhitneyTest, EmptySampleIsNeverSignificant) {
  const std::vector<double> a = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(mann_whitney_u(a, {}).p, 1.0);
  EXPECT_DOUBLE_EQ(mann_whitney_u({}, a).p, 1.0);
}

TEST(AaTest, NoFalsePositiveRegressionAcross100SeededRuns) {
  // The regression verdict used by `ldp-bench --compare` is two-gated:
  // Mann-Whitney p < alpha AND median slowdown > min_effect. Draw 100
  // seeded baseline/candidate pairs from the SAME distribution (timing
  // noise modeled as N(1.0, 0.03), K = 5 reps like the smoke gate) and
  // assert the verdict never fires. With only the p-gate it WOULD fire —
  // full separation happens with probability 2/252 per pair — so also
  // record that the significance gate alone is not enough.
  const double alpha = 0.01;
  const double min_effect = 0.10;
  Rng rng(424242);
  int false_positives = 0;
  int p_only_alarms = 0;
  for (int run = 0; run < 100; ++run) {
    std::vector<double> base;
    std::vector<double> cand;
    for (int i = 0; i < 5; ++i) {
      base.push_back(normal(rng, 1.0, 0.03));
      cand.push_back(normal(rng, 1.0, 0.03));
    }
    const auto mw = mann_whitney_u(base, cand);
    const double rel = (median(cand) - median(base)) / median(base);
    if (mw.p < 0.05) ++p_only_alarms;
    if (mw.p < alpha && rel > min_effect) ++false_positives;
  }
  EXPECT_EQ(false_positives, 0);
  // With sigma = 3% noise, a fully-separated fluke still cannot clear the
  // 10% median-effect gate; that is the design, not luck.
  (void)p_only_alarms;
}

}  // namespace
}  // namespace ldplfs::stats_math
