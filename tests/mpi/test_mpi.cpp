#include <gtest/gtest.h>

#include "mpi/collectives.hpp"
#include "mpi/topology.hpp"

namespace ldplfs::mpi {
namespace {

TEST(TopologyTest, RankNodeMapping) {
  Topology topo{4, 3};
  EXPECT_EQ(topo.nranks(), 12u);
  EXPECT_EQ(topo.node_of(0), 0u);
  EXPECT_EQ(topo.node_of(2), 0u);
  EXPECT_EQ(topo.node_of(3), 1u);
  EXPECT_EQ(topo.node_of(11), 3u);
}

TEST(TopologyTest, AggregatorsOnePerNode) {
  Topology topo{4, 3};
  const auto aggs = topo.aggregators();
  ASSERT_EQ(aggs.size(), 4u);
  EXPECT_EQ(aggs[0], 0u);
  EXPECT_EQ(aggs[1], 3u);
  EXPECT_EQ(aggs[3], 9u);
  for (auto a : aggs) EXPECT_TRUE(topo.is_aggregator(a));
  EXPECT_FALSE(topo.is_aggregator(1));
}

TEST(TopologyTest, SingleProcessPerNode) {
  Topology topo{8, 1};
  for (std::uint32_t r = 0; r < 8; ++r) {
    EXPECT_TRUE(topo.is_aggregator(r));
    EXPECT_EQ(topo.node_of(r), r);
  }
}

TEST(CollectiveModelTest, Log2Ceil) {
  EXPECT_EQ(CollectiveModel::log2_ceil(1), 0u);
  EXPECT_EQ(CollectiveModel::log2_ceil(2), 1u);
  EXPECT_EQ(CollectiveModel::log2_ceil(3), 2u);
  EXPECT_EQ(CollectiveModel::log2_ceil(1024), 10u);
  EXPECT_EQ(CollectiveModel::log2_ceil(1025), 11u);
}

TEST(CollectiveModelTest, BarrierGrowsLogarithmically) {
  CollectiveModel model;
  EXPECT_EQ(model.barrier_s(1), 0.0);
  EXPECT_LT(model.barrier_s(16), model.barrier_s(1024));
  EXPECT_NEAR(model.barrier_s(1024) / model.barrier_s(32), 2.0, 1e-9);
}

TEST(CollectiveModelTest, ExchangeScalesWithPpnAndBytes) {
  CollectiveModel model;
  Topology one{16, 1};
  Topology four{16, 4};
  const std::uint64_t bytes = 8 << 20;
  // More ppn -> more data staged through the aggregator.
  EXPECT_GT(model.cb_exchange_s(four, bytes), model.cb_exchange_s(one, bytes));
  // More bytes -> longer exchange.
  EXPECT_GT(model.cb_exchange_s(four, 2 * bytes),
            model.cb_exchange_s(four, bytes));
}

TEST(CollectiveModelTest, ScatterMirrorsExchange) {
  CollectiveModel model;
  Topology topo{8, 4};
  EXPECT_DOUBLE_EQ(model.cb_scatter_s(topo, 1 << 20),
                   model.cb_exchange_s(topo, 1 << 20));
}

}  // namespace
}  // namespace ldplfs::mpi
