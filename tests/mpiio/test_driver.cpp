// Semantics of the MPI-IO driver layer: routing, bookkeeping, and the
// relative-cost invariants that the figure benches rely on.
#include "mpiio/driver.hpp"

#include <gtest/gtest.h>

#include "simfs/presets.hpp"

namespace ldplfs::mpiio {
namespace {

mpi::Topology small_topo() { return {4, 2}; }

double write_job(simfs::ClusterModel& cluster, DriverOptions options,
                 std::uint64_t per_rank, int phases, IoStats* stats = nullptr,
                 mpi::Topology topo = small_topo()) {
  IoDriver driver(cluster, topo, options);
  driver.open(true);
  for (int p = 0; p < phases; ++p) {
    driver.write_collective(per_rank, static_cast<std::uint64_t>(p));
  }
  driver.close();
  if (stats != nullptr) *stats = driver.stats();
  return driver.stats().write_bandwidth_mbps();
}

TEST(DriverTest, RouteNames) {
  EXPECT_STREQ(route_name(Route::kMpiio), "MPI-IO");
  EXPECT_STREQ(route_name(Route::kRomioPlfs), "ROMIO");
  EXPECT_STREQ(route_name(Route::kLdplfs), "LDPLFS");
  EXPECT_STREQ(route_name(Route::kFuse), "FUSE");
}

TEST(DriverTest, StatsAccumulateBytes) {
  simfs::ClusterModel cluster(simfs::minerva());
  IoStats stats;
  write_job(cluster, {Route::kMpiio}, 1 << 20, 3, &stats);
  EXPECT_EQ(stats.bytes_written, 3ull * (1 << 20) * small_topo().nranks());
  EXPECT_GT(stats.open_s, 0.0);
  EXPECT_GT(stats.write_s, 0.0);
  EXPECT_GT(stats.close_s, 0.0);
  EXPECT_GT(stats.meta_ops, 0u);
}

TEST(DriverTest, PlfsRoutesCreateMoreMetadata) {
  simfs::ClusterModel cluster(simfs::sierra());
  IoStats ufs, plfs;
  write_job(cluster, {Route::kMpiio}, 1 << 20, 1, &ufs);
  write_job(cluster, {Route::kRomioPlfs}, 1 << 20, 1, &plfs);
  // Container skeleton + per-writer droppings + close hints.
  EXPECT_GT(plfs.meta_ops, ufs.meta_ops);
}

// Comparative tests run each job on a fresh cluster: consecutive jobs on
// one instance would inherit each other's dirty caches.
double fresh_write_job(DriverOptions options, std::uint64_t per_rank,
                       int phases) {
  simfs::ClusterModel cluster(simfs::minerva());
  return write_job(cluster, options, per_rank, phases);
}

TEST(DriverTest, LdplfsCostCloseToRomio) {
  // The paper's central result: LDPLFS ≈ PLFS-through-ROMIO.
  const double romio = fresh_write_job({Route::kRomioPlfs}, 32 << 20, 4);
  const double ldplfs = fresh_write_job({Route::kLdplfs}, 32 << 20, 4);
  EXPECT_NEAR(ldplfs / romio, 1.0, 0.05);
}

TEST(DriverTest, FuseSlowerThanRomio) {
  const double romio = fresh_write_job({Route::kRomioPlfs}, 32 << 20, 4);
  const double fuse = fresh_write_job({Route::kFuse}, 32 << 20, 4);
  EXPECT_LT(fuse, romio);
}

TEST(DriverTest, PlfsBeatsSharedFileForManyRankWrites) {
  const double ufs = fresh_write_job({Route::kMpiio}, 64 << 20, 4);
  const double plfs = fresh_write_job({Route::kRomioPlfs}, 64 << 20, 4);
  EXPECT_GT(plfs, ufs);
}

TEST(DriverTest, IndependentWritesUseAllRanks) {
  simfs::ClusterModel cluster(simfs::sierra());
  DriverOptions options{Route::kRomioPlfs};
  options.collective_buffering = false;
  IoDriver driver(cluster, small_topo(), options);
  driver.open(true);
  driver.write_independent(1 << 20, 0);
  driver.close();
  // All 8 ranks write => 8 writers x (3 creates) at first write + skeleton.
  EXPECT_GE(driver.stats().meta_ops, 8u * 3u);
}

TEST(DriverTest, ReadBandwidthPositive) {
  simfs::ClusterModel cluster(simfs::minerva());
  DriverOptions options{Route::kLdplfs};
  IoDriver writer(cluster, small_topo(), options);
  writer.open(true);
  writer.write_collective(8 << 20, 0);
  writer.close();

  IoDriver reader(cluster, small_topo(), options);
  reader.set_prior_writers(4);
  reader.open(false);
  reader.read_collective(8 << 20, 0);
  reader.close();
  EXPECT_GT(reader.stats().read_bandwidth_mbps(), 0.0);
  // Index-dropping loads are internal and excluded from the byte count.
  EXPECT_EQ(reader.stats().bytes_read,
            8ull * (1 << 20) * small_topo().nranks());
}

TEST(DriverTest, AblationLogOnlySlowerThanBoth) {
  DriverOptions both{Route::kRomioPlfs};
  both.collective_buffering = false;
  DriverOptions log_only = both;
  log_only.plfs_partitioning = false;
  simfs::ClusterModel c1(simfs::sierra());
  simfs::ClusterModel c2(simfs::sierra());
  const double bw_both = write_job(c1, both, 16 << 20, 2);
  const double bw_log = write_job(c2, log_only, 16 << 20, 2);
  EXPECT_LT(bw_log, bw_both);
}

TEST(DriverTest, AblationInPlaceSlowerThanLog) {
  DriverOptions both{Route::kRomioPlfs};
  both.collective_buffering = false;
  DriverOptions inplace = both;
  inplace.plfs_log_structure = false;
  // Make drain the binding constraint.
  simfs::ClusterModel c1(simfs::sierra());
  simfs::ClusterModel c2(simfs::sierra());
  const double bw_both = write_job(c1, both, 256 << 20, 2);
  const double bw_inplace = write_job(c2, inplace, 256 << 20, 2);
  EXPECT_LT(bw_inplace, bw_both);
}

TEST(DriverTest, SievingWinsForTinyStridedPieces) {
  auto run = [](bool sieving) {
    simfs::ClusterModel cluster(simfs::minerva());
    DriverOptions options{Route::kMpiio};
    options.data_sieving = sieving;
    IoDriver driver(cluster, {4, 2}, options);
    driver.open(true);
    driver.read_strided(4 << 10, 64, 0);   // 4 KiB pieces
    driver.close();
    return driver.stats().read_bandwidth_mbps();
  };
  EXPECT_GT(run(true), 3.0 * run(false));
}

TEST(DriverTest, SievingLosesForLargeStridedPieces) {
  auto run = [](bool sieving) {
    simfs::ClusterModel cluster(simfs::minerva());
    DriverOptions options{Route::kMpiio};
    options.data_sieving = sieving;
    IoDriver driver(cluster, {4, 2}, options);
    driver.open(true);
    driver.read_strided(1 << 20, 4, 0);   // 1 MiB pieces
    driver.close();
    return driver.stats().read_bandwidth_mbps();
  };
  EXPECT_LT(run(true), run(false));
}

TEST(DriverTest, StridedWriteSievingUsesLockedRmw) {
  simfs::ClusterModel cluster(simfs::minerva());
  DriverOptions options{Route::kMpiio};
  options.data_sieving = true;
  IoDriver driver(cluster, {2, 1}, options);
  driver.open(true);
  const double t = driver.write_strided(8 << 10, 16, 0);
  EXPECT_GT(t, 0.0);
  // Application-visible bytes only, despite window amplification.
  EXPECT_EQ(driver.stats().bytes_written, 8ull * 1024 * 16 * 2);
}

TEST(DriverTest, BandwidthDefinitionsConsistent) {
  IoStats stats;
  stats.open_s = 1.0;
  stats.write_s = 3.0;
  stats.close_s = 1.0;
  stats.bytes_written = 500 * 1000 * 1000;
  EXPECT_NEAR(stats.write_bandwidth_mbps(), 100.0, 1e-9);
  EXPECT_EQ(stats.read_bandwidth_mbps(), 0.0);
  EXPECT_NEAR(stats.total_s(), 5.0, 1e-12);
}

}  // namespace
}  // namespace ldplfs::mpiio
