// Unit tests for the LDPLFS_FAULTS fault-injection layer: plan parsing,
// deterministic triggering through the posix:: helpers and the core
// RealCalls table, short transfers, transient-retry absorption, and the
// crash clause (observed from a forked child).
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "core/real_calls.hpp"
#include "posix/faults.hpp"
#include "posix/fd.hpp"
#include "testing/temp_dir.hpp"

namespace ldplfs::posix {
namespace {

using ldplfs::testing::TempDir;
using ldplfs::testing::as_bytes;

/// Every test leaves the process with no plan installed.
class FaultsTest : public ::testing::Test {
 protected:
  void SetUp() override { faults::clear(); }
  void TearDown() override { faults::clear(); }
  TempDir tmp_;
};

TEST_F(FaultsTest, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(faults::configure("pwrote:after=1", &error));
  EXPECT_NE(error.find("unknown fault op"), std::string::npos);
  EXPECT_FALSE(faults::configure("pwrite:errno=EWHAT", &error));
  EXPECT_FALSE(faults::configure("pwrite:after=x", &error));
  EXPECT_FALSE(faults::configure("pwrite:short=0", &error));
  EXPECT_FALSE(faults::configure("pwrite:bogus=1", &error));
  // p= must be a probability in (0, 1]; path= needs a substring.
  EXPECT_FALSE(faults::configure("pwrite:p=0", &error));
  EXPECT_FALSE(faults::configure("pwrite:p=1.5", &error));
  EXPECT_FALSE(faults::configure("pwrite:p=banana", &error));
  EXPECT_FALSE(faults::configure("pwrite:path=", &error));
  EXPECT_TRUE(faults::configure("pwrite:p=1:errno=EIO"));  // p=1 is valid
  faults::clear();
  EXPECT_FALSE(faults::active());
}

TEST_F(FaultsTest, PathScopedClauseFiresOnlyOnMatchingPaths) {
  ASSERT_TRUE(faults::configure("pwrite:errno=ENOSPC:path=victim"));
  auto victim = open_fd(tmp_.sub("victim"), O_WRONLY | O_CREAT, 0644);
  auto other = open_fd(tmp_.sub("other"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(pwrite_all(other.value().get(), as_bytes("ok"), 0).ok());
  EXPECT_EQ(pwrite_all(victim.value().get(), as_bytes("xx"), 0).error_code(),
            ENOSPC);
  EXPECT_TRUE(pwrite_all(other.value().get(), as_bytes("ok"), 2).ok());
}

TEST_F(FaultsTest, PathScopedClauseDoesNotCountForeignOps) {
  // after=1 must be consumed by the first *matching* op: pwrites to other
  // paths are invisible to the clause and advance no counters.
  ASSERT_TRUE(faults::configure("pwrite:after=1:errno=ENOSPC:path=victim"));
  auto victim = open_fd(tmp_.sub("victim"), O_WRONLY | O_CREAT, 0644);
  auto other = open_fd(tmp_.sub("other"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_TRUE(pwrite_all(other.value().get(), as_bytes("aa"), 0).ok());
  EXPECT_TRUE(pwrite_all(other.value().get(), as_bytes("bb"), 2).ok());
  EXPECT_TRUE(pwrite_all(victim.value().get(), as_bytes("cc"), 0).ok());
  EXPECT_EQ(pwrite_all(victim.value().get(), as_bytes("dd"), 2).error_code(),
            ENOSPC);
}

TEST_F(FaultsTest, ProbabilisticClauseIsDeterministicallySeeded) {
  // ENOSPC is not transient, so each pwrite_all consults the plan exactly
  // once and the firing pattern is a pure function of the reseeded rng.
  const auto run_pattern = [&](const char* name) {
    EXPECT_TRUE(faults::configure("pwrite:p=0.5:errno=ENOSPC"));
    auto fd = open_fd(tmp_.sub(name), O_WRONLY | O_CREAT, 0644);
    EXPECT_TRUE(fd.ok());
    std::vector<bool> fired;
    for (int i = 0; i < 200; ++i) {
      fired.push_back(
          !pwrite_all(fd.value().get(), as_bytes("x"), i).ok());
    }
    return fired;
  };
  const auto first = run_pattern("p1");
  const auto second = run_pattern("p2");
  EXPECT_EQ(first, second);  // configure() reseeds: identical replay
  const auto fires =
      std::count(first.begin(), first.end(), true);
  EXPECT_GT(fires, 0);    // p=0.5 over 200 ops: both outcomes must appear
  EXPECT_LT(fires, 200);
}

TEST_F(FaultsTest, EmptySpecClears) {
  ASSERT_TRUE(faults::configure("pwrite:errno=EIO"));
  EXPECT_TRUE(faults::active());
  ASSERT_TRUE(faults::configure(""));
  EXPECT_FALSE(faults::active());
}

TEST_F(FaultsTest, NthPwriteFailsSticky) {
  ASSERT_TRUE(faults::configure("pwrite:after=2:errno=ENOSPC"));
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("aa"), 0).ok());
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("bb"), 2).ok());
  // Third and every later pwrite fails; ENOSPC is not transient, no retry.
  EXPECT_EQ(pwrite_all(fd.value().get(), as_bytes("cc"), 4).error_code(),
            ENOSPC);
  EXPECT_EQ(pwrite_all(fd.value().get(), as_bytes("dd"), 4).error_code(),
            ENOSPC);
}

TEST_F(FaultsTest, ShortWritesAreLoopedToCompletion) {
  ASSERT_TRUE(faults::configure("write:short=3"));
  const std::string path = tmp_.sub("short");
  ASSERT_TRUE(write_file(path, "0123456789").ok());
  faults::clear();
  auto content = read_file(path);
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "0123456789");
}

TEST_F(FaultsTest, TransientEagainIsRetriedAway) {
  ASSERT_TRUE(faults::configure("pwrite:errno=EAGAIN:count=2"));
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  // Two injected EAGAINs are absorbed by the bounded retry loop.
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("data"), 0).ok());
}

TEST_F(FaultsTest, PersistentEagainEventuallySurfaces) {
  ASSERT_TRUE(faults::configure("pwrite:errno=EAGAIN"));
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  EXPECT_EQ(pwrite_all(fd.value().get(), as_bytes("data"), 0).error_code(),
            EAGAIN);
}

TEST_F(FaultsTest, OpenAndFsyncAndUnlinkClauses) {
  // Non-transient errnos: fsync and open share the data movers' transient
  // retry since the resilience engine, so a count=1 EIO/EAGAIN would be
  // absorbed by the budget rather than surface (covered by the resilience
  // retry suite).
  ASSERT_TRUE(faults::configure(
      "open:after=1:errno=EMFILE:count=1,fsync:errno=ENOSPC:count=1,"
      "unlink:errno=EACCES:count=1"));
  auto ok = open_fd(tmp_.sub("a"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(open_fd(tmp_.sub("b"), O_WRONLY | O_CREAT, 0644).error_code(),
            EMFILE);
  EXPECT_EQ(fsync_fd(ok.value().get()).error_code(), ENOSPC);
  EXPECT_TRUE(fsync_fd(ok.value().get()).ok());  // count=1 exhausted
  EXPECT_EQ(remove_file(tmp_.sub("a")).error_code(), EACCES);
  EXPECT_TRUE(remove_file(tmp_.sub("a")).ok());
}

TEST_F(FaultsTest, PwriteDelayAddsLatencyWithoutFailing) {
  // delay= models per-op device latency (bench/micro_real uses pwrite:delay
  // to model write latency against the write-behind engine): the op must
  // still succeed, just later.
  ASSERT_TRUE(faults::configure("pwrite:delay=20000"));
  auto fd = open_fd(tmp_.sub("slow"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  const auto start = std::chrono::steady_clock::now();
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("data"), 0).ok());
  EXPECT_TRUE(pwrite_all(fd.value().get(), as_bytes("more"), 4).ok());
  const auto elapsed = std::chrono::steady_clock::now() - start;
  EXPECT_GE(std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
                .count(),
            2 * 20000);
  faults::clear();
  auto content = read_file(tmp_.sub("slow"));
  ASSERT_TRUE(content.ok());
  EXPECT_EQ(content.value(), "datamore");
}

TEST_F(FaultsTest, RealCallsTableHonoursPlan) {
  ASSERT_TRUE(faults::configure("write:errno=ENOSPC:count=1"));
  const auto& real = core::libc_calls();
  auto fd = open_fd(tmp_.sub("f"), O_WRONLY | O_CREAT, 0644);
  ASSERT_TRUE(fd.ok());
  errno = 0;
  EXPECT_EQ(real.write(fd.value().get(), "x", 1), -1);
  EXPECT_EQ(errno, ENOSPC);
  EXPECT_EQ(real.write(fd.value().get(), "x", 1), 1);
}

TEST_F(FaultsTest, CrashClauseKillsTheProcess) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    faults::clear();
    if (!faults::configure("crash:after=2")) _exit(3);
    auto fd = open_fd(tmp_.sub("crash"), O_WRONLY | O_CREAT, 0644);  // op 1
    if (!fd.ok()) _exit(4);
    (void)pwrite_all(fd.value().get(), as_bytes("a"), 0);  // op 2
    (void)pwrite_all(fd.value().get(), as_bytes("b"), 1);  // op 3: boom
    _exit(0);  // unreachable if the crash clause fired
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 137);
}

TEST_F(FaultsTest, CrashBeyondOpCountNeverFires) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    faults::clear();
    if (!faults::configure("crash:after=1000")) _exit(3);
    auto fd = open_fd(tmp_.sub("nocrash"), O_WRONLY | O_CREAT, 0644);
    if (!fd.ok()) _exit(4);
    if (!pwrite_all(fd.value().get(), as_bytes("a"), 0).ok()) _exit(5);
    _exit(0);
  }
  ASSERT_GT(pid, 0);
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
}

}  // namespace
}  // namespace ldplfs::posix
